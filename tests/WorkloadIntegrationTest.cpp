//===- tests/WorkloadIntegrationTest.cpp - end-to-end suite -------------------==//
//
// The project's main correctness oracle, run over every workload: every
// software transformation (conventional VRP, proposed VRP, VRS at several
// test costs, under both ISA policies) must leave the output stream
// byte-identical, and the whole pipeline must hold its structural
// invariants.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "program/Verifier.h"
#include "vrp/Narrowing.h"
#include "vrs/Specializer.h"

#include <gtest/gtest.h>

using namespace og;

namespace {
constexpr double TestScale = 0.05; // keep unit-test runtimes low
}

class WorkloadTest : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadTest, RunsToCompletionDeterministically) {
  Workload W = makeWorkload(GetParam(), TestScale);
  RunResult A = runProgram(W.Prog, W.Ref);
  ASSERT_EQ(A.Status, RunStatus::Halted) << A.Message;
  EXPECT_FALSE(A.Output.empty());
  EXPECT_GT(A.Stats.DynInsts, 1000u);
  RunResult B = runProgram(W.Prog, W.Ref);
  EXPECT_EQ(A.Output, B.Output);
}

TEST_P(WorkloadTest, RespectsCalleeSaveDiscipline) {
  Workload W = makeWorkload(GetParam(), TestScale);
  RunOptions O = W.Train;
  O.CheckCalleeSaved = true;
  RunResult R = runProgram(W.Prog, O);
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.Message;
}

TEST_P(WorkloadTest, TrainAndRefDiffer) {
  Workload W = makeWorkload(GetParam(), TestScale);
  RunResult T = runProgram(W.Prog, W.Train);
  RunResult R = runProgram(W.Prog, W.Ref);
  ASSERT_EQ(T.Status, RunStatus::Halted);
  EXPECT_LT(T.Stats.DynInsts, R.Stats.DynInsts);
}

TEST_P(WorkloadTest, VrpPreservesOutput) {
  Workload W = makeWorkload(GetParam(), TestScale);
  Program P = W.Prog;
  NarrowingReport Rep = narrowProgram(P);
  EXPECT_GT(Rep.NumNarrowed, 0u) << "VRP should narrow something";
  EXPECT_TRUE(verifyProgram(P));
  RunResult A = runProgram(W.Prog, W.Ref);
  RunResult B = runProgram(P, W.Ref);
  ASSERT_EQ(B.Status, RunStatus::Halted) << B.Message;
  EXPECT_EQ(A.Output, B.Output);
}

TEST_P(WorkloadTest, ConventionalVrpPreservesOutput) {
  Workload W = makeWorkload(GetParam(), TestScale);
  Program P = W.Prog;
  NarrowingOptions O;
  O.UseUsefulWidths = false;
  narrowProgram(P, O);
  RunResult A = runProgram(W.Prog, W.Ref);
  RunResult B = runProgram(P, W.Ref);
  EXPECT_EQ(A.Output, B.Output);
}

TEST_P(WorkloadTest, BaseAlphaPolicyPreservesOutput) {
  Workload W = makeWorkload(GetParam(), TestScale);
  Program P = W.Prog;
  NarrowingOptions O;
  O.Policy = IsaPolicy::BaseAlpha;
  narrowProgram(P, O);
  RunResult A = runProgram(W.Prog, W.Ref);
  RunResult B = runProgram(P, W.Ref);
  EXPECT_EQ(A.Output, B.Output);
}

TEST_P(WorkloadTest, UsefulThroughArithAblationPreservesOutput) {
  Workload W = makeWorkload(GetParam(), TestScale);
  Program P = W.Prog;
  NarrowingOptions O;
  O.UsefulThroughArith = true;
  narrowProgram(P, O);
  RunResult A = runProgram(W.Prog, W.Ref);
  RunResult B = runProgram(P, W.Ref);
  EXPECT_EQ(A.Output, B.Output);
}

TEST_P(WorkloadTest, VrpConvergesMonotonically) {
  // Re-running VRP may narrow further (narrow ops sharpen ranges), but it
  // must converge quickly, never widen, and preserve output throughout.
  Workload W = makeWorkload(GetParam(), TestScale);
  Program P = W.Prog;
  uint64_t Prev = narrowProgram(P).NumNarrowed;
  bool Converged = false;
  for (int I = 0; I < 4; ++I) {
    uint64_t Next = narrowProgram(P).NumNarrowed;
    EXPECT_LE(Next, Prev == 0 ? 0 : SIZE_MAX); // monotone byte-count only
    if (Next == 0) {
      Converged = true;
      break;
    }
    Prev = Next;
  }
  EXPECT_TRUE(Converged);
  RunResult A = runProgram(W.Prog, W.Ref);
  RunResult B = runProgram(P, W.Ref);
  EXPECT_EQ(A.Output, B.Output);
}

TEST_P(WorkloadTest, VrpOnlyShrinksWidths) {
  Workload W = makeWorkload(GetParam(), TestScale);
  Program P = W.Prog;
  narrowProgram(P);
  for (size_t FI = 0; FI < P.Funcs.size(); ++FI)
    for (size_t BI = 0; BI < P.Funcs[FI].Blocks.size(); ++BI)
      for (size_t II = 0; II < P.Funcs[FI].Blocks[BI].Insts.size(); ++II) {
        const Instruction &Orig = W.Prog.Funcs[FI].Blocks[BI].Insts[II];
        const Instruction &New = P.Funcs[FI].Blocks[BI].Insts[II];
        EXPECT_LE(static_cast<unsigned>(New.W),
                  static_cast<unsigned>(Orig.W));
        EXPECT_EQ(New.Opc, Orig.Opc);
      }
}

TEST_P(WorkloadTest, VrsPreservesOutputAcrossTestCosts) {
  Workload W = makeWorkload(GetParam(), TestScale);
  RunResult A = runProgram(W.Prog, W.Ref);
  for (double Cost : {30.0, 70.0, 110.0}) {
    Program P = W.Prog;
    narrowProgram(P);
    VrsOptions Opts;
    Opts.Energy.TestCostNJ = Cost;
    VrsReport Rep = specializeProgram(P, W.Train, Opts);
    EXPECT_TRUE(verifyProgram(P));
    EXPECT_EQ(Rep.PointsProfiled, Rep.PointsSpecialized +
                                      Rep.PointsDependent +
                                      Rep.PointsNoBenefit);
    RunResult B = runProgram(P, W.Ref);
    ASSERT_EQ(B.Status, RunStatus::Halted) << B.Message;
    EXPECT_EQ(A.Output, B.Output) << "cost " << Cost;
  }
}

TEST_P(WorkloadTest, PipelineEnergyOrdering) {
  Workload W = makeWorkload(GetParam(), TestScale);
  PipelineConfig Base;
  Base.Sw = SoftwareMode::None;
  Base.Scheme = GatingScheme::None;
  PipelineResult B = runPipeline(W, Base);

  PipelineConfig Sw;
  Sw.Sw = SoftwareMode::Vrp;
  Sw.Scheme = GatingScheme::Software;
  Sw.CheckOutputEquivalence = true;
  PipelineResult V = runPipeline(W, Sw);

  PipelineConfig Hw;
  Hw.Sw = SoftwareMode::None;
  Hw.Scheme = GatingScheme::HwSignificance;
  PipelineResult H = runPipeline(W, Hw);

  // Gating saves energy; the VRP binary has identical cycle count (it only
  // re-encodes opcodes, §4.4).
  EXPECT_GT(V.Report.energySaving(B.Report), 0.0);
  EXPECT_GT(H.Report.energySaving(B.Report), 0.0);
  EXPECT_EQ(V.Report.Uarch.Cycles, B.Report.Uarch.Cycles);
  EXPECT_EQ(V.Report.Uarch.Insts, B.Report.Uarch.Insts);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::Values("compress", "gcc", "go", "ijpeg",
                                           "li", "m88ksim", "perl",
                                           "vortex"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

TEST(WorkloadRegistry, AllEightPresent) {
  auto All = makeAllWorkloads(TestScale);
  ASSERT_EQ(All.size(), 8u);
  const char *Names[] = {"compress", "gcc",     "go",   "ijpeg",
                         "li",       "m88ksim", "perl", "vortex"};
  for (size_t I = 0; I < 8; ++I)
    EXPECT_EQ(All[I].Name, Names[I]);
}

TEST(Pipeline, CombinedSchemeUsesMinOfBoth) {
  Workload W = makeWorkload("compress", TestScale);
  PipelineConfig Base;
  Base.Sw = SoftwareMode::None;
  Base.Scheme = GatingScheme::None;
  PipelineResult B = runPipeline(W, Base);

  PipelineConfig Comb;
  Comb.Sw = SoftwareMode::Vrp;
  Comb.Scheme = GatingScheme::Combined;
  PipelineResult C = runPipeline(W, Comb);

  PipelineConfig SwOnly;
  SwOnly.Sw = SoftwareMode::Vrp;
  SwOnly.Scheme = GatingScheme::Software;
  PipelineResult S = runPipeline(W, SwOnly);

  // §4.7: the combination gates at least as much as software alone (the
  // tag overhead is small next to the per-value wins).
  EXPECT_GT(C.Report.energySaving(B.Report),
            S.Report.energySaving(B.Report) - 0.02);
}
