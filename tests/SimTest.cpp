//===- tests/SimTest.cpp - functional simulator tests ------------------------==//

#include "program/Builder.h"
#include "sim/ExecEngine.h"
#include "sim/Interpreter.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace og;

namespace {

/// Runs a single ALU op through a real program and returns the result.
int64_t runOp(Op O, Width W, int64_t A, int64_t B) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, A);
  F.ldi(RegT1, B);
  if (O == Op::Sext)
    F.emit(Instruction::sext(W, RegT2, RegT0));
  else if (O == Op::Mov) {
    Instruction I = Instruction::mov(RegT2, RegT0);
    I.W = W;
    F.emit(I);
  } else {
    F.emit(Instruction::alu(O, W, RegT2, RegT0, RegT1));
  }
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Status, RunStatus::Halted);
  return R.Output.at(0);
}

} // namespace

// --- evalAluOp semantics, exhaustive over interesting operand pairs.

struct AluCase {
  Op O;
  Width W;
  int64_t A, B, Expect;
};

class AluSemanticsTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemanticsTest, EvalMatches) {
  const AluCase &C = GetParam();
  EXPECT_EQ(evalAluOp(C.O, C.W, C.A, C.B, /*OldRd=*/-7), C.Expect);
  // The interpreter agrees with the pure evaluator for non-cmov ops.
  if (!isCmov(C.O)) {
    EXPECT_EQ(runOp(C.O, C.W, C.A, C.B), C.Expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluSemanticsTest,
    ::testing::Values(
        AluCase{Op::Add, Width::Q, 2, 3, 5},
        AluCase{Op::Add, Width::B, 100, 100, -56}, // 200 wraps to -56
        AluCase{Op::Add, Width::H, 0x7FFF, 1, -32768},
        AluCase{Op::Add, Width::W, INT32_MAX, 1, INT32_MIN},
        AluCase{Op::Add, Width::Q, INT64_MAX, 1, INT64_MIN},
        AluCase{Op::Sub, Width::Q, 2, 3, -1},
        AluCase{Op::Sub, Width::B, -128, 1, 127},
        AluCase{Op::Mul, Width::Q, -4, 6, -24},
        AluCase{Op::Mul, Width::B, 16, 16, 0}, // 256 wraps to 0
        AluCase{Op::Mul, Width::W, 1 << 16, 1 << 16, 0}));

INSTANTIATE_TEST_SUITE_P(
    Logical, AluSemanticsTest,
    ::testing::Values(
        AluCase{Op::And, Width::Q, 0xFF00FF, 0x00FFFF, 0x0000FF},
        AluCase{Op::And, Width::B, 0x1FF, 0xFF, -1}, // low bytes all ones
        AluCase{Op::Or, Width::Q, 0xF0, 0x0F, 0xFF},
        AluCase{Op::Xor, Width::Q, 0xFF, 0x0F, 0xF0},
        AluCase{Op::Bic, Width::Q, 0xFF, 0x0F, 0xF0},
        AluCase{Op::Or, Width::B, 0x80, 0x01, -127}));

INSTANTIATE_TEST_SUITE_P(
    Shifts, AluSemanticsTest,
    ::testing::Values(
        AluCase{Op::Sll, Width::Q, 1, 8, 256},
        AluCase{Op::Sll, Width::B, 1, 7, -128},
        AluCase{Op::Sll, Width::Q, 1, 64 + 3, 8}, // amount masked to 6 bits
        AluCase{Op::Srl, Width::Q, -1, 56, 255},
        AluCase{Op::Srl, Width::B, 0x80, 1, 0x40},
        AluCase{Op::Srl, Width::B, 0x80, 0, -128}, // identity keeps sign
        AluCase{Op::Sra, Width::Q, -256, 4, -16},
        AluCase{Op::Sra, Width::B, 0x80, 4, -8},
        AluCase{Op::Sra, Width::Q, -1, 63, -1}));

INSTANTIATE_TEST_SUITE_P(
    Compares, AluSemanticsTest,
    ::testing::Values(
        AluCase{Op::CmpEq, Width::Q, 5, 5, 1},
        AluCase{Op::CmpEq, Width::B, 0x100, 0, 1}, // equal at byte width
        AluCase{Op::CmpLt, Width::Q, -1, 0, 1},
        AluCase{Op::CmpLt, Width::B, 0xFF, 0, 1}, // 0xFF is -1 as a byte
        AluCase{Op::CmpLe, Width::Q, 3, 3, 1},
        AluCase{Op::CmpUlt, Width::Q, -1, 0, 0}, // unsigned: huge > 0
        AluCase{Op::CmpUlt, Width::B, 0xFF, 3, 0},
        AluCase{Op::CmpUle, Width::B, 1, 0xFF, 1}));

INSTANTIATE_TEST_SUITE_P(
    Moves, AluSemanticsTest,
    ::testing::Values(
        AluCase{Op::Sext, Width::B, 0xFF, 0, -1},
        AluCase{Op::Sext, Width::H, 0x8000, 0, -32768},
        AluCase{Op::Mov, Width::Q, -42, 0, -42},
        AluCase{Op::Mov, Width::B, 0x17F, 0, 0x7F},
        AluCase{Op::CmovEq, Width::Q, 0, 9, 9},    // cond true: moves
        AluCase{Op::CmovEq, Width::Q, 1, 9, -7},   // cond false: keeps OldRd
        AluCase{Op::CmovNe, Width::Q, 1, 9, 9},
        AluCase{Op::CmovLt, Width::Q, -1, 9, 9},
        AluCase{Op::CmovGe, Width::Q, 0, 9, 9},
        AluCase{Op::CmovLt, Width::B, 0x80, 9, 9})); // byte -128 < 0

// Property: for any op, the width-Q result sign-extended to a narrower
// width equals evaluating at that width directly when operands fit.
TEST(AluSemantics, NarrowConsistencyProperty) {
  Rng R(123);
  const Op Ops[] = {Op::Add, Op::Sub, Op::Mul, Op::And, Op::Or, Op::Xor};
  for (int I = 0; I < 4000; ++I) {
    Op O = Ops[R.below(6)];
    Width W = static_cast<Width>(R.below(3)); // B, H, W
    unsigned Bytes = widthBytes(W);
    int64_t A = truncSignExtend(static_cast<int64_t>(R.next()), Bytes);
    int64_t B = truncSignExtend(static_cast<int64_t>(R.next()), Bytes);
    int64_t Wide = evalAluOp(O, Width::Q, A, B, 0);
    int64_t Narrow = evalAluOp(O, W, A, B, 0);
    EXPECT_EQ(truncSignExtend(Wide, Bytes), Narrow)
        << opInfo(O).Mnemonic << " " << A << "," << B;
  }
}

// Property: unsigned compare of sign-extended width-fitting values matches
// the narrow unsigned compare (the CmpUlt narrowing rule).
TEST(AluSemantics, UnsignedCompareSignExtensionProperty) {
  Rng R(99);
  for (int I = 0; I < 4000; ++I) {
    Width W = static_cast<Width>(R.below(3));
    unsigned Bytes = widthBytes(W);
    int64_t A = truncSignExtend(static_cast<int64_t>(R.next()), Bytes);
    int64_t B = truncSignExtend(static_cast<int64_t>(R.next()), Bytes);
    EXPECT_EQ(evalAluOp(Op::CmpUlt, Width::Q, A, B, 0),
              evalAluOp(Op::CmpUlt, W, A, B, 0));
    EXPECT_EQ(evalAluOp(Op::CmpUle, Width::Q, A, B, 0),
              evalAluOp(Op::CmpUle, W, A, B, 0));
  }
}

// --- Memory and control flow.

TEST(Interpreter, LoadSemanticsPerWidth) {
  ProgramBuilder PB;
  uint64_t Addr = PB.addQuadData({static_cast<int64_t>(0xFFFFFFFF80C3B2A1ull)});
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(Addr));
  F.ld(Width::B, RegT1, RegT0, 0);
  F.out(RegT1); // zero-extended byte
  F.ld(Width::H, RegT1, RegT0, 0);
  F.out(RegT1); // zero-extended halfword
  F.ld(Width::W, RegT1, RegT0, 0);
  F.out(RegT1); // sign-extended word
  F.ld(Width::Q, RegT1, RegT0, 0);
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  ASSERT_EQ(R.Output.size(), 4u);
  EXPECT_EQ(R.Output[0], 0xA1);
  EXPECT_EQ(R.Output[1], 0xB2A1);
  EXPECT_EQ(R.Output[2], signExtend(0x80C3B2A1, 32));
  EXPECT_EQ(R.Output[3], static_cast<int64_t>(0xFFFFFFFF80C3B2A1ull));
}

TEST(Interpreter, StoreWidthsArePartial) {
  ProgramBuilder PB;
  uint64_t Addr = PB.addQuadData({-1});
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(Addr));
  F.ldi(RegT1, 0);
  F.st(Width::B, RegT1, RegT0, 0); // clear only the low byte
  F.ld(Width::Q, RegT2, RegT0, 0);
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Output.at(0), static_cast<int64_t>(0xFFFFFFFFFFFFFF00ull));
}

TEST(Interpreter, MskExtractsZeroExtendedFields) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(0x1122334455667788ull));
  F.msk(Width::B, RegT1, RegT0, 0);
  F.out(RegT1);
  F.msk(Width::B, RegT1, RegT0, 7);
  F.out(RegT1);
  F.msk(Width::H, RegT1, RegT0, 2);
  F.out(RegT1);
  F.msk(Width::W, RegT1, RegT0, 4);
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Output[0], 0x88); // little-endian: byte 0 is the low byte
  EXPECT_EQ(R.Output[1], 0x11);
  EXPECT_EQ(R.Output[2], 0x5566);
  EXPECT_EQ(R.Output[3], 0x11223344);
}

TEST(Interpreter, BranchDirections) {
  // Test all six branch ops against negative/zero/positive.
  for (auto [O, V, Taken] : std::vector<std::tuple<Op, int64_t, bool>>{
           {Op::Beq, 0, true},   {Op::Beq, 1, false},
           {Op::Bne, 0, false},  {Op::Bne, -1, true},
           {Op::Blt, -1, true},  {Op::Blt, 0, false},
           {Op::Ble, 0, true},   {Op::Ble, 1, false},
           {Op::Bgt, 1, true},   {Op::Bgt, 0, false},
           {Op::Bge, 0, true},   {Op::Bge, -1, false}}) {
    ProgramBuilder PB;
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.ldi(RegT0, V);
    switch (O) {
    case Op::Beq:
      F.beq(RegT0, "yes", "no");
      break;
    case Op::Bne:
      F.bne(RegT0, "yes", "no");
      break;
    case Op::Blt:
      F.blt(RegT0, "yes", "no");
      break;
    case Op::Ble:
      F.ble(RegT0, "yes", "no");
      break;
    case Op::Bgt:
      F.bgt(RegT0, "yes", "no");
      break;
    default:
      F.bge(RegT0, "yes", "no");
      break;
    }
    F.block("no");
    F.ldi(RegT1, 0);
    F.out(RegT1);
    F.halt();
    F.block("yes");
    F.ldi(RegT1, 1);
    F.out(RegT1);
    F.halt();
    // Fix the fallthrough of entry's conditional branch.
    Program P = PB.finish();
    RunResult R = runProgram(P, RunOptions());
    ASSERT_EQ(R.Output.size(), 1u);
    EXPECT_EQ(R.Output[0], Taken ? 1 : 0)
        << opInfo(O).Mnemonic << " of " << V;
  }
}

TEST(Interpreter, OutOfFuel) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.block("spin");
  F.addi(RegT0, RegT0, 1);
  F.br("spin");
  Program P = PB.finish();
  RunOptions O;
  O.Fuel = 1000;
  RunResult R = runProgram(P, O);
  EXPECT_EQ(R.Status, RunStatus::OutOfFuel);
  EXPECT_EQ(R.Stats.DynInsts, 1000u);
}

TEST(Interpreter, MemoryFaultReported) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, -8);
  F.ld(Width::Q, RegT1, RegT0, 0);
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Status, RunStatus::Fault);
  EXPECT_NE(R.Message.find("load fault"), std::string::npos);
}

TEST(Interpreter, CallDepthLimit) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.jsr("main"); // unbounded recursion
  F.halt();
  Program P = PB.finish();
  RunOptions O;
  O.MaxCallDepth = 64;
  RunResult R = runProgram(P, O);
  EXPECT_EQ(R.Status, RunStatus::Fault);
  EXPECT_NE(R.Message.find("depth"), std::string::npos);
}

TEST(Interpreter, CalleeSaveViolationDetected) {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegS0, 5);
  Main.jsr("bad");
  Main.halt();
  FunctionBuilder &Bad = PB.beginFunction("bad");
  Bad.block("entry");
  Bad.ldi(RegS0, 99); // clobbers callee-saved without restoring
  Bad.ret();
  Program P = PB.finish();
  RunOptions O;
  O.CheckCalleeSaved = true;
  RunResult R = runProgram(P, O);
  EXPECT_EQ(R.Status, RunStatus::CalleeSaveViolation);
}

TEST(Interpreter, ReturnFromEntryHalts) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegV0, 3);
  F.out(RegV0);
  F.ret();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Status, RunStatus::Halted);
  EXPECT_EQ(R.Output.at(0), 3);
}

TEST(Interpreter, ZeroRegisterIgnoresWrites) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegZero, 42);
  F.out(RegZero);
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Output.at(0), 0);
}

TEST(Interpreter, StatsCountClassesAndWidths) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.emit(Instruction::aluImm(Op::Add, Width::B, RegT0, RegT0, 1));
  F.emit(Instruction::aluImm(Op::Add, Width::B, RegT0, RegT0, 1));
  F.emit(Instruction::aluImm(Op::Add, Width::Q, RegT0, RegT0, 1));
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  unsigned AddClass = static_cast<unsigned>(OpClass::Add);
  EXPECT_EQ(R.Stats.ClassWidth[AddClass][0], 2u);
  EXPECT_EQ(R.Stats.ClassWidth[AddClass][3], 1u);
  EXPECT_EQ(R.Stats.DynInsts, 4u);
}

TEST(Interpreter, BlockCountsMatchExecution) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 0);
  F.block("loop");
  F.addi(RegT0, RegT0, 1);
  F.cmpltImm(RegT1, RegT0, 7);
  F.bne(RegT1, "loop", "done");
  F.block("done");
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Stats.BlockCounts[0][0], 1u);
  EXPECT_EQ(R.Stats.BlockCounts[0][1], 7u);
  EXPECT_EQ(R.Stats.BlockCounts[0][2], 1u);
}

TEST(Interpreter, TraceStreamIsCompleteAndOrdered) {
  Program P = [] {
    ProgramBuilder PB;
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.ldi(RegT0, 1);
    F.addi(RegT1, RegT0, 2);
    F.out(RegT1);
    F.halt();
    return PB.finish();
  }();
  std::vector<uint64_t> Pcs;
  std::vector<int64_t> Results;
  FnTraceSink Sink([&](const DynInst &D) {
    Pcs.push_back(D.Pc);
    if (D.WroteDest)
      Results.push_back(D.Result);
  });
  RunOptions O;
  O.Sink = &Sink;
  RunResult R = runProgram(P, O);
  EXPECT_EQ(R.Stats.DynInsts, Pcs.size());
  for (size_t I = 1; I < Pcs.size(); ++I)
    EXPECT_EQ(Pcs[I], Pcs[I - 1] + 4); // straight-line code
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Results[1], 3);
}

TEST(Interpreter, DeterministicAcrossRuns) {
  ProgramBuilder PB;
  uint64_t Data = PB.addQuadData({5, 6, 7});
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(Data));
  F.ld(Width::Q, RegT1, RegT0, 8);
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  RunResult A = runProgram(P, RunOptions());
  RunResult B = runProgram(P, RunOptions());
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Stats.DynInsts, B.Stats.DynInsts);
}

// Parameterized width sweeps for the memory and field-extract ops.

class MskSweepTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(MskSweepTest, FieldMatchesShiftAndMask) {
  Width W = static_cast<Width>(std::get<0>(GetParam()));
  unsigned Offset = std::get<1>(GetParam());
  const uint64_t Pattern = 0xF1E2D3C4B5A69788ull;
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(Pattern));
  F.msk(W, RegT1, RegT0, Offset);
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  unsigned Bytes = widthBytes(W);
  uint64_t Expected = Pattern >> (8 * Offset);
  if (Bytes < 8)
    Expected &= (uint64_t(1) << (8 * Bytes)) - 1;
  EXPECT_EQ(static_cast<uint64_t>(R.Output.at(0)), Expected);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsTimesOffsets, MskSweepTest,
    ::testing::Combine(::testing::Range(0u, 4u), ::testing::Range(0u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, unsigned>> &I) {
      return std::string(1, widthSuffix(static_cast<Width>(
                                std::get<0>(I.param)))) +
             "_off" + std::to_string(std::get<1>(I.param));
    });

class StoreLoadSweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(StoreLoadSweepTest, StoreThenLoadRoundTrips) {
  Width W = static_cast<Width>(GetParam());
  unsigned Bytes = widthBytes(W);
  const int64_t Value = -0x123456789ABCDEFll;
  ProgramBuilder PB;
  uint64_t Addr = PB.addZeroData(16);
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(Addr));
  F.ldi(RegT1, Value);
  F.st(W, RegT1, RegT0, 0);
  F.ld(W, RegT2, RegT0, 0);
  F.out(RegT2);
  F.ld(Width::Q, RegT3, RegT0, 8); // the next quad stays zero
  F.out(RegT3);
  F.halt();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  // Loads zero-extend B/H, sign-extend W, are exact for Q.
  int64_t Expected;
  if (W == Width::B || W == Width::H)
    Expected = static_cast<int64_t>(
        zeroExtend(static_cast<uint64_t>(Value), 8 * Bytes));
  else if (W == Width::W)
    Expected = truncSignExtend(Value, 4);
  else
    Expected = Value;
  EXPECT_EQ(R.Output.at(0), Expected);
  EXPECT_EQ(R.Output.at(1), 0); // no spill past the store width
}

INSTANTIATE_TEST_SUITE_P(AllWidths, StoreLoadSweepTest,
                         ::testing::Range(0u, 4u),
                         [](const ::testing::TestParamInfo<unsigned> &I) {
                           return std::string(
                               1, widthSuffix(static_cast<Width>(I.param)));
                         });

// --- Trace batching: the batched sink must observe exactly the stream a
// per-instruction callback sees, delivered in full batches plus one
// partial final batch.

namespace {

/// Records raw batches as delivered.
struct BatchRecorder final : TraceSink {
  std::vector<DynInst> Seq;
  std::vector<size_t> BatchSizes;
  void onBatch(const DynInst *Batch, size_t N) override {
    BatchSizes.push_back(N);
    Seq.insert(Seq.end(), Batch, Batch + N);
  }
};

void expectSameDynInst(const DynInst &A, const DynInst &B, size_t At) {
  EXPECT_EQ(A.I, B.I) << "record " << At;
  EXPECT_EQ(A.Func, B.Func) << "record " << At;
  EXPECT_EQ(A.Block, B.Block) << "record " << At;
  EXPECT_EQ(A.Index, B.Index) << "record " << At;
  EXPECT_EQ(A.Pc, B.Pc) << "record " << At;
  EXPECT_EQ(A.NextPc, B.NextPc) << "record " << At;
  EXPECT_EQ(A.SeqPc, B.SeqPc) << "record " << At;
  ASSERT_EQ(A.NumSrcs, B.NumSrcs) << "record " << At;
  for (unsigned S = 0; S < A.NumSrcs; ++S)
    EXPECT_EQ(A.SrcVals[S], B.SrcVals[S]) << "record " << At;
  EXPECT_EQ(A.WroteDest, B.WroteDest) << "record " << At;
  EXPECT_EQ(A.Result, B.Result) << "record " << At;
  EXPECT_EQ(A.IsMem, B.IsMem) << "record " << At;
  EXPECT_EQ(A.MemAddr, B.MemAddr) << "record " << At;
  EXPECT_EQ(A.IsBranch, B.IsBranch) << "record " << At;
  EXPECT_EQ(A.Taken, B.Taken) << "record " << At;
}

void expectSameStats(const ExecStats &A, const ExecStats &B) {
  EXPECT_EQ(A.DynInsts, B.DynInsts);
  for (unsigned C = 0; C < 18; ++C)
    for (unsigned W = 0; W < 4; ++W)
      EXPECT_EQ(A.ClassWidth[C][W], B.ClassWidth[C][W]) << C << "/" << W;
  for (unsigned I = 0; I < 9; ++I)
    EXPECT_EQ(A.ValueSizeBytes[I], B.ValueSizeBytes[I]) << "bytes " << I;
  EXPECT_EQ(A.BlockCounts, B.BlockCounts);
}

/// Branchy loop: ~5 instructions per iteration with a taken/not-taken
/// conditional each time; > TraceBatchCapacity dynamic instructions.
Program branchyProgram() {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 0);
  F.ldi(RegS0, 0);
  F.block("loop");
  F.addi(RegT0, RegT0, 1);
  F.andi(RegT1, RegT0, 1);
  F.beq(RegT1, "even", "odd");
  F.block("odd");
  F.addi(RegS0, RegS0, 3);
  F.br("next");
  F.block("even");
  F.addi(RegS0, RegS0, -1);
  F.block("next");
  F.cmpltImm(RegT1, RegT0, 1500);
  F.bne(RegT1, "loop", "done");
  F.block("done");
  F.out(RegS0);
  F.halt();
  return PB.finish();
}

/// Recursion through calls and returns.
Program recursiveProgram() {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegA0, 60);
  Main.jsr("rec");
  Main.out(RegV0);
  Main.halt();
  FunctionBuilder &Rec = PB.beginFunction("rec");
  Rec.block("entry");
  Rec.ble(RegA0, "base", "go");
  Rec.block("go");
  Rec.addi(RegA0, RegA0, -1);
  Rec.jsr("rec");
  Rec.addi(RegV0, RegV0, 1);
  Rec.ret();
  Rec.block("base");
  Rec.ldi(RegV0, 0);
  Rec.ret();
  return PB.finish();
}

/// Walks loads downward until the address leaves memory: the run faults
/// mid-loop, and the faulting load must still appear in the trace.
Program faultingProgram() {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 40);
  F.block("loop");
  F.ld(Width::Q, RegT1, RegT0, 0);
  F.addi(RegT0, RegT0, -8);
  F.br("loop");
  return PB.finish();
}

} // namespace

class TraceBatchingTest : public ::testing::TestWithParam<int> {
protected:
  Program makeProgram() const {
    switch (GetParam()) {
    case 0:
      return branchyProgram();
    case 1:
      return recursiveProgram();
    default:
      return faultingProgram();
    }
  }
};

TEST_P(TraceBatchingTest, BatchedSinkSeesPerInstructionStream) {
  Program P = makeProgram();
  DecodedProgram Decoded(P);

  // Reference stream through the per-instruction adapter.
  std::vector<DynInst> PerInst;
  FnTraceSink Fn([&](const DynInst &D) { PerInst.push_back(D); });
  RunOptions FnOpts;
  FnOpts.Sink = &Fn;
  RunResult FnRun = runProgram(P, FnOpts);

  // Raw batches from the decoded-program run.
  BatchRecorder Rec;
  RunOptions RecOpts;
  RecOpts.Sink = &Rec;
  RunResult RecRun = runProgram(Decoded, RecOpts);

  // Same terminal state and same stream, record by record.
  EXPECT_EQ(FnRun.Status, RecRun.Status);
  EXPECT_EQ(FnRun.Message, RecRun.Message);
  EXPECT_EQ(FnRun.Output, RecRun.Output);
  expectSameStats(FnRun.Stats, RecRun.Stats);
  ASSERT_EQ(PerInst.size(), Rec.Seq.size());
  EXPECT_EQ(Rec.Seq.size(), RecRun.Stats.DynInsts);
  for (size_t I = 0; I < PerInst.size(); ++I)
    expectSameDynInst(PerInst[I], Rec.Seq[I], I);

  // Batch shape: every delivery full except a final partial remainder.
  ASSERT_FALSE(Rec.BatchSizes.empty());
  for (size_t I = 0; I + 1 < Rec.BatchSizes.size(); ++I)
    EXPECT_EQ(Rec.BatchSizes[I], TraceBatchCapacity) << "batch " << I;
  size_t Tail = RecRun.Stats.DynInsts % TraceBatchCapacity;
  EXPECT_EQ(Rec.BatchSizes.back(), Tail == 0 ? TraceBatchCapacity : Tail);

  // A sink-free run reports identical results (tracing is observation).
  RunResult Plain = runProgram(Decoded, RunOptions());
  EXPECT_EQ(Plain.Status, RecRun.Status);
  EXPECT_EQ(Plain.Output, RecRun.Output);
  expectSameStats(Plain.Stats, RecRun.Stats);
}

static std::string traceBatchingCaseName(
    const ::testing::TestParamInfo<int> &I) {
  switch (I.param) {
  case 0:
    return "branchy";
  case 1:
    return "recursive";
  default:
    return "faulting";
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, TraceBatchingTest,
                         ::testing::Values(0, 1, 2), traceBatchingCaseName);

TEST(TraceBatching, PartialFinalBatchOnly) {
  // A short straight-line program: one delivery, well under capacity.
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 1);
  F.addi(RegT0, RegT0, 2);
  F.out(RegT0);
  F.halt();
  Program P = PB.finish();
  BatchRecorder Rec;
  RunOptions O;
  O.Sink = &Rec;
  RunResult R = runProgram(P, O);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(Rec.BatchSizes.size(), 1u);
  EXPECT_EQ(Rec.BatchSizes[0], 4u);
  EXPECT_EQ(Rec.Seq.size(), R.Stats.DynInsts);
}

TEST(TraceBatching, BranchyStreamExceedsOneBatch) {
  // Guard against the fixture silently shrinking below batch capacity.
  RunResult R = runProgram(branchyProgram(), RunOptions());
  EXPECT_GT(R.Stats.DynInsts, TraceBatchCapacity);
}

TEST(DecodedProgramTest, ReusableAcrossRuns) {
  Program P = branchyProgram();
  DecodedProgram Decoded(P);
  RunResult A = runProgram(Decoded, RunOptions());
  RunResult B = runProgram(Decoded, RunOptions());
  RunResult C = runProgram(P, RunOptions()); // convenience decode-and-run
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Output, C.Output);
  expectSameStats(A.Stats, B.Stats);
  expectSameStats(A.Stats, C.Stats);
  EXPECT_EQ(Decoded.numInsts(), P.numInstructions());
}
