//===- tests/VrpTest.cpp - Value Range Propagation tests ---------------------==//

#include "program/Builder.h"
#include "sim/Interpreter.h"
#include "support/Rng.h"
#include "vrp/Narrowing.h"
#include "vrp/RangeAnalysis.h"
#include "vrp/Transfer.h"
#include "vrp/UsefulWidth.h"

#include <gtest/gtest.h>

using namespace og;

// --- ValueRange algebra.

TEST(ValueRange, Basics) {
  ValueRange Full;
  EXPECT_TRUE(Full.isFull());
  ValueRange C = ValueRange::constant(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.bytes(), 1u);
  EXPECT_TRUE(C.contains(7));
  EXPECT_FALSE(C.contains(8));
  EXPECT_EQ(ValueRange(0, 255).bytes(), 2u);
  EXPECT_EQ(ValueRange(-128, 127).bytes(), 1u);
  EXPECT_EQ(ValueRange(0, 255).width(), Width::H);
}

TEST(ValueRange, UnionAndIntersect) {
  ValueRange A(0, 10), B(5, 20);
  EXPECT_EQ(A.unionWith(B), ValueRange(0, 20));
  EXPECT_EQ(A.intersectWith(B), ValueRange(5, 10));
  ValueRange Dis(100, 200);
  EXPECT_TRUE(A.disjointFrom(Dis));
  EXPECT_FALSE(A.disjointFrom(B));
}

TEST(ValueRange, AddWrapsToFull) {
  bool W = false;
  ValueRange R = ValueRange::add(ValueRange(0, INT64_MAX),
                                 ValueRange(1, 1), W);
  EXPECT_TRUE(W);
  EXPECT_TRUE(R.isFull());
  W = false;
  EXPECT_EQ(ValueRange::add(ValueRange(1, 2), ValueRange(3, 4), W),
            ValueRange(4, 6));
  EXPECT_FALSE(W);
}

TEST(ValueRange, MulCorners) {
  bool W = false;
  EXPECT_EQ(ValueRange::mul(ValueRange(-2, 3), ValueRange(-5, 7), W),
            ValueRange(-15, 21));
  EXPECT_FALSE(W);
  ValueRange Big = ValueRange::mul(ValueRange(INT64_MAX / 2, INT64_MAX),
                                   ValueRange(4, 4), W);
  EXPECT_TRUE(W);
  EXPECT_TRUE(Big.isFull());
}

// Property: forward interval ops contain all concrete results.
TEST(ValueRange, ForwardSoundnessProperty) {
  Rng R(2024);
  for (int Trial = 0; Trial < 3000; ++Trial) {
    int64_t ALo = R.range(-1000, 1000);
    int64_t AHi = ALo + R.range(0, 100);
    int64_t BLo = R.range(-1000, 1000);
    int64_t BHi = BLo + R.range(0, 100);
    ValueRange A(ALo, AHi), B(BLo, BHi);
    int64_t X = R.range(ALo, AHi);
    int64_t Y = R.range(BLo, BHi);
    bool W = false;
    EXPECT_TRUE(ValueRange::add(A, B, W).contains(X + Y));
    EXPECT_TRUE(ValueRange::sub(A, B, W).contains(X - Y));
    EXPECT_TRUE(ValueRange::mul(A, B, W).contains(X * Y));
    EXPECT_TRUE(ValueRange::bitAnd(A, B).contains(X & Y));
    EXPECT_TRUE(ValueRange::bitOr(A, B).contains(X | Y));
    EXPECT_TRUE(ValueRange::bitXor(A, B).contains(X ^ Y));
    EXPECT_TRUE(ValueRange::bitClear(A, B).contains(X & ~Y));
    unsigned Amt = static_cast<unsigned>(R.below(20));
    EXPECT_TRUE(ValueRange::shiftRightArith(A, ValueRange::constant(Amt))
                    .contains(X >> Amt));
    if (X >= 0) {
      EXPECT_TRUE(
          ValueRange::shiftRightLogical(ValueRange(0, AHi < 0 ? 0 : AHi),
                                        ValueRange::constant(Amt))
              .contains((X < 0 ? 0 : X) >> Amt));
    }
  }
}

// --- Forward transfer functions.

namespace {

ValueRange fwd(const Instruction &I, ValueRange A, ValueRange B) {
  bool W = false;
  return forwardTransfer(I, A, B, ValueRange::full(), W);
}

} // namespace

TEST(Transfer, LoadRangesFollowOpcode) {
  EXPECT_EQ(fwd(Instruction::load(Width::B, RegT0, RegT1, 0),
                ValueRange::full(), ValueRange::full()),
            ValueRange(0, 0xFF));
  EXPECT_EQ(fwd(Instruction::load(Width::H, RegT0, RegT1, 0),
                ValueRange::full(), ValueRange::full()),
            ValueRange(0, 0xFFFF));
  EXPECT_EQ(fwd(Instruction::load(Width::W, RegT0, RegT1, 0),
                ValueRange::full(), ValueRange::full()),
            ValueRange(INT32_MIN, INT32_MAX));
  EXPECT_TRUE(fwd(Instruction::load(Width::Q, RegT0, RegT1, 0),
                  ValueRange::full(), ValueRange::full())
                  .isFull());
}

TEST(Transfer, NarrowAddClampsToWidthHull) {
  Instruction I = Instruction::alu(Op::Add, Width::B, RegT0, RegT1, RegT2);
  bool MayWrap = false;
  ValueRange R = forwardTransfer(I, ValueRange(100, 120), ValueRange(20, 30),
                                 ValueRange::full(), MayWrap);
  EXPECT_TRUE(MayWrap); // 150 does not fit a signed byte
  EXPECT_EQ(R, ValueRange(-128, 127));
  MayWrap = false;
  R = forwardTransfer(I, ValueRange(1, 5), ValueRange(2, 3),
                      ValueRange::full(), MayWrap);
  EXPECT_FALSE(MayWrap);
  EXPECT_EQ(R, ValueRange(3, 8));
}

TEST(Transfer, CompareProducesBit) {
  Instruction I = Instruction::aluImm(Op::CmpLt, Width::Q, RegT0, RegT1, 10);
  EXPECT_EQ(fwd(I, ValueRange(0, 5), ValueRange::constant(10)),
            ValueRange::constant(1));
  EXPECT_EQ(fwd(I, ValueRange(20, 30), ValueRange::constant(10)),
            ValueRange::constant(0));
  EXPECT_EQ(fwd(I, ValueRange(0, 30), ValueRange::constant(10)),
            ValueRange(0, 1));
}

TEST(Transfer, MskZeroExtends) {
  Instruction I = Instruction::msk(Width::B, RegT0, RegT1, 0);
  EXPECT_EQ(fwd(I, ValueRange(0, 77), ValueRange::full()),
            ValueRange(0, 77));
  EXPECT_EQ(fwd(I, ValueRange::full(), ValueRange::full()),
            ValueRange(0, 255));
  Instruction H = Instruction::msk(Width::H, RegT0, RegT1, 1);
  EXPECT_EQ(fwd(H, ValueRange::full(), ValueRange::full()),
            ValueRange(0, 0xFFFF));
}

TEST(Transfer, CmovUnionsBothSources) {
  Instruction I = Instruction::alu(Op::CmovNe, Width::Q, RegT0, RegT1, RegT2);
  bool W = false;
  ValueRange R = forwardTransfer(I, ValueRange(0, 1), ValueRange(5, 6),
                                 ValueRange(10, 11), W);
  EXPECT_EQ(R, ValueRange(5, 11));
  // Statically-decided condition collapses.
  R = forwardTransfer(I, ValueRange::constant(1), ValueRange(5, 6),
                      ValueRange(10, 11), W);
  EXPECT_EQ(R, ValueRange(5, 6));
  R = forwardTransfer(I, ValueRange::constant(0), ValueRange(5, 6),
                      ValueRange(10, 11), W);
  EXPECT_EQ(R, ValueRange(10, 11));
}

TEST(Transfer, BackwardAddRefinesPaperStyle) {
  // Paper 2.2.1: RangeIn1 = Out - In2 intersected with the old input.
  Instruction I = Instruction::alu(Op::Add, Width::Q, RegT0, RegT1, RegT2);
  ValueRange A = ValueRange::full();
  ValueRange B(1, 1);
  backwardTransfer(I, /*Out=*/ValueRange(1, 100), A, B);
  EXPECT_EQ(A, ValueRange(0, 99)); // the Figure-1 a1in example
}

TEST(Transfer, BackwardMulByConstant) {
  Instruction I = Instruction::aluImm(Op::Mul, Width::Q, RegT0, RegT1, 4);
  ValueRange A = ValueRange::full();
  ValueRange B = ValueRange::constant(4);
  backwardTransfer(I, ValueRange(0, 396), A, B);
  EXPECT_EQ(A, ValueRange(0, 99));
}

TEST(Transfer, BranchConstraintsFromCompare) {
  Instruction Cmp = Instruction::aluImm(Op::CmpLt, Width::Q, RegT1, RegT0, 100);
  Instruction Br = Instruction::condBr(Op::Bne, RegT1, 1);
  std::vector<EdgeConstraint> Cs;
  branchConstraints(Br, &Cmp, /*OnTaken=*/true, Cs);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].R, RegT0);
  EXPECT_EQ(Cs[0].Range, ValueRange(INT64_MIN, 99));
  Cs.clear();
  branchConstraints(Br, &Cmp, /*OnTaken=*/false, Cs);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].Range, ValueRange(100, INT64_MAX));
}

TEST(Transfer, BranchConstraintsDirectZeroTests) {
  Instruction Br = Instruction::condBr(Op::Bge, RegT0, 1);
  std::vector<EdgeConstraint> Cs;
  branchConstraints(Br, nullptr, true, Cs);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].Range, ValueRange(0, INT64_MAX));
  Cs.clear();
  branchConstraints(Br, nullptr, false, Cs);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].Range, ValueRange(INT64_MIN, -1));
}

// --- Whole-function range analysis: the paper's Figure 1 example.
//   for (i = 0; i < 100; i++) a[i] = i;
TEST(RangeAnalysis, Figure1Example) {
  ProgramBuilder PB;
  uint64_t Arr = PB.addZeroData(800);
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(Arr)); // a0 = @a
  F.ldi(RegT1, 0);                         // a1 = 0
  F.block("loop");
  F.muli(RegT3, RegT1, 8);                 // a3 = a1*8 (quad elements)
  F.add(RegT2, RegT0, RegT3);              // a2 = a0+a3
  F.st(Width::Q, RegT1, RegT2, 0);         // mem[a2] = a1
  F.addi(RegT1, RegT1, 1);                 // a1 = a1+1
  F.cmpltImm(RegT4, RegT1, 100);
  F.bne(RegT4, "loop", "exit");            // a1 < 100
  F.block("exit");
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();

  RangeAnalysis RA(P);
  RA.run();
  const FunctionRanges &FR = RA.func(0);

  // The iterator is bounded by the trip count: body sees [0, 99].
  size_t MulId = FR.idOf(1, 0);
  EXPECT_TRUE(ValueRange(0, 99).contains(FR.InA[MulId]));
  // a3 = a1 * 8 is in [0, 792] (the paper's step 9, scaled by 8).
  EXPECT_TRUE(ValueRange(0, 792).contains(FR.Out[MulId]));
  // After the loop a1 is exactly 100.
  size_t OutId = FR.idOf(2, 0);
  EXPECT_EQ(FR.InA[OutId], ValueRange::constant(100));
  // The increment's output spans the loop range plus the final value.
  size_t IncId = FR.idOf(1, 3);
  EXPECT_TRUE(ValueRange(1, 100).contains(FR.Out[IncId]));
}

TEST(RangeAnalysis, BranchRefinementSplitsPaths) {
  // if (a0 <= 100) use-narrow else use-wide (paper 2.2.4 example).
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.cmpleImm(RegT0, RegA0, 100);
  F.bne(RegT0, "small", "big");
  F.block("big");
  F.mov(RegT1, RegA0);
  F.out(RegT1);
  F.halt();
  F.block("small");
  F.mov(RegT2, RegA0);
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();
  RangeAnalysis::Options O;
  O.Interprocedural = false;
  RangeAnalysis RA(P, O);
  RA.run();
  const FunctionRanges &FR = RA.func(0);
  // Branch targets are created at first reference: "small" (the taken
  // label) becomes block 1, "big" block 2.
  int32_t SmallBB = 1, BigBB = 2;
  ASSERT_EQ(P.Funcs[0].Blocks[SmallBB].Label, "small");
  size_t SmallMov = FR.idOf(SmallBB, 0);
  size_t BigMov = FR.idOf(BigBB, 0);
  EXPECT_LE(FR.InA[SmallMov].max(), 100);
  EXPECT_GE(FR.InA[BigMov].min(), 101);
}

TEST(RangeAnalysis, InterproceduralArgAndReturn) {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegA0, 7);
  Main.jsr("f");
  Main.out(RegV0);
  Main.ldi(RegA0, 9);
  Main.jsr("f");
  Main.out(RegV0);
  Main.halt();
  FunctionBuilder &Fn = PB.beginFunction("f");
  Fn.block("entry");
  Fn.addi(RegV0, RegA0, 1);
  Fn.ret();
  Program P = PB.finish();
  RangeAnalysis RA(P);
  RA.run();
  int32_t FId = P.findFunction("f")->Id;
  // f's argument summary is the union of both call sites.
  EXPECT_EQ(RA.argRange(FId, 0), ValueRange(7, 9));
  // f's return is arg+1.
  EXPECT_EQ(RA.returnRange(FId), ValueRange(8, 10));
}

TEST(RangeAnalysis, CallsClobberCallerSaved) {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegT0, 1);  // caller-saved
  Main.ldi(RegS1, 2);  // callee-saved
  Main.jsr("f");
  Main.out(RegT0);
  Main.out(RegS1);
  Main.halt();
  FunctionBuilder &Fn = PB.beginFunction("f");
  Fn.block("entry");
  Fn.ret();
  Program P = PB.finish();
  RangeAnalysis RA(P);
  RA.run();
  const FunctionRanges &FR = RA.func(0);
  size_t OutT0 = FR.idOf(0, 3);
  size_t OutS1 = FR.idOf(0, 4);
  EXPECT_TRUE(FR.InA[OutT0].isFull());               // clobbered
  EXPECT_EQ(FR.InA[OutS1], ValueRange::constant(2)); // preserved
}

TEST(RangeAnalysis, EdgeConstraintSeeding) {
  // VRS-style seed: the guard edge pins t0 in [0, 7].
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ld(Width::Q, RegT0, RegSP, -8); // unknown value
  F.br("body");
  F.block("body");
  F.addi(RegT1, RegT0, 1);
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  RangeAnalysis RA(P);
  RA.addEdgeConstraint(0, 0, 1, RegT0, ValueRange(0, 7));
  RA.run();
  const FunctionRanges &FR = RA.func(0);
  size_t AddId = FR.idOf(1, 0);
  EXPECT_EQ(FR.InA[AddId], ValueRange(0, 7));
  EXPECT_EQ(FR.Out[AddId], ValueRange(1, 8));
}

// --- Useful widths (paper 2.2.5).

TEST(UsefulWidth, AndMaskDemandsLowByte) {
  // The paper's flagship example: AND R1, 0xFF kills demand above byte 0.
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ld(Width::Q, RegT0, RegSP, -8);
  F.addi(RegT1, RegT0, 12345); // chain feeding only the AND
  F.andi(RegT2, RegT1, 0xFF);
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  UsefulWidth UW(P.Funcs[0], RD);
  size_t AddId = RD.instId(0, 1);
  size_t AndId = RD.instId(0, 2);
  // The AND's output feeds OUT: all 8 bytes demanded of the AND...
  EXPECT_EQ(UW.usefulBytes(AndId), 8u);
  // ...but the AND itself only needs one byte of its input chain. The
  // add's demand would be 1 were demand propagated through arithmetic;
  // the paper forbids that, so the add is demanded at... the AND's
  // contribution min(out-demand, mask) = 1.
  EXPECT_EQ(UW.usefulBytes(AddId), 1u);
}

TEST(UsefulWidth, ArithmeticBlocksDemandByDefault) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ld(Width::Q, RegT0, RegSP, -8);
  F.addi(RegT1, RegT0, 1);   // t1 = t0 + 1
  F.andi(RegT2, RegT1, 0xFF);
  F.addi(RegT3, RegT2, 1);   // consumer of the AND through arithmetic
  F.st(Width::B, RegT3, RegSP, -16);
  F.halt();
  Program P = PB.finish();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  // Default: no demand through add -> the AND is fully demanded.
  UsefulWidth UW(P.Funcs[0], RD);
  EXPECT_EQ(UW.usefulBytes(RD.instId(0, 2)), 8u);
  // Ablation: with ThroughArithmetic the store width (1 byte) flows up.
  UsefulWidth::Options O;
  O.ThroughArithmetic = true;
  UsefulWidth UW2(P.Funcs[0], RD, O);
  EXPECT_EQ(UW2.usefulBytes(RD.instId(0, 2)), 1u);
}

TEST(UsefulWidth, ShiftAmountIsOneByte) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ld(Width::Q, RegT0, RegSP, -8);  // shift amount source
  F.mov(RegT1, RegT0);
  F.sll(RegT2, RegA0, RegT1);        // t1 used only as an amount
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  UsefulWidth UW(P.Funcs[0], RD);
  EXPECT_EQ(UW.usefulBytes(RD.instId(0, 1)), 1u); // the mov feeding amt
}

TEST(UsefulWidth, StoreWidthDemandsValue) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ld(Width::Q, RegT0, RegSP, -8);
  F.mov(RegT1, RegT0);
  F.st(Width::H, RegT1, RegSP, -16);
  F.halt();
  Program P = PB.finish();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  UsefulWidth UW(P.Funcs[0], RD);
  EXPECT_EQ(UW.usefulBytes(RD.instId(0, 1)), 2u);
}

TEST(UsefulWidth, WidestUseWins) {
  // Paper: "if R1 is used somewhere else with a wider range, the wider
  // range is used."
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ld(Width::Q, RegT0, RegSP, -8);
  F.mov(RegT1, RegT0);
  F.andi(RegT2, RegT1, 0xFF); // narrow use
  F.out(RegT1);               // wide use of the same value
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  UsefulWidth UW(P.Funcs[0], RD);
  EXPECT_EQ(UW.usefulBytes(RD.instId(0, 1)), 8u);
}

// --- Narrowing end-to-end.

TEST(Narrowing, AssignsMinimalWidths) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 5);
  F.ldi(RegT1, 1000);
  F.add(RegT2, RegT0, RegT1);
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();
  NarrowingReport R = narrowProgram(P);
  EXPECT_GT(R.NumNarrowed, 0u);
  // ldi 5 fits a byte; ldi 1000 a halfword; the add fits a halfword.
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts[0].W, Width::B);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts[1].W, Width::H);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts[2].W, Width::H);
}

TEST(Narrowing, RespectsIsaPolicy) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 5);
  F.andi(RegT1, RegT0, 3); // byte-able AND
  F.out(RegT1);
  F.halt();
  Program Base = PB.finish();
  Program Ext = Base;

  NarrowingOptions BaseOpts;
  BaseOpts.Policy = IsaPolicy::BaseAlpha;
  narrowProgram(Base, BaseOpts);
  // Stock Alpha has no byte AND: stays Q.
  EXPECT_EQ(Base.Funcs[0].Blocks[0].Insts[1].W, Width::Q);

  narrowProgram(Ext); // Extended by default
  EXPECT_EQ(Ext.Funcs[0].Blocks[0].Insts[1].W, Width::B);
}

TEST(Narrowing, NeverWidensExistingNarrowOps) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ld(Width::Q, RegT0, RegSP, -8);
  F.emit(Instruction::alu(Op::Add, Width::B, RegT1, RegT0, RegT0));
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  narrowProgram(P);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts[1].W, Width::B);
}

TEST(Narrowing, MemoryWidthsUntouched) {
  ProgramBuilder PB;
  uint64_t D = PB.addQuadData({1});
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(D));
  F.ld(Width::W, RegT1, RegT0, 0);
  F.st(Width::H, RegT1, RegT0, 0);
  F.halt();
  Program P = PB.finish();
  narrowProgram(P);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts[1].W, Width::W);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts[2].W, Width::H);
}

TEST(Narrowing, ConventionalVsUsefulDistribution) {
  // Useful-range propagation must never be *worse* than conventional.
  ProgramBuilder PB;
  uint64_t D = PB.addZeroData(64);
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(D));
  F.ld(Width::Q, RegT1, RegT0, 0);
  F.slli(RegT2, RegT1, 3);
  F.andi(RegT3, RegT2, 0xFF);
  F.out(RegT3);
  F.halt();
  Program Conv = PB.finish();
  Program Useful = Conv;

  NarrowingOptions ConvOpts;
  ConvOpts.UseUsefulWidths = false;
  NarrowingReport CR = narrowProgram(Conv, ConvOpts);
  NarrowingReport UR = narrowProgram(Useful);
  // Weighted static width under useful <= conventional.
  auto weight = [](const NarrowingReport &R) {
    return R.StaticWidth[0] * 1 + R.StaticWidth[1] * 2 +
           R.StaticWidth[2] * 4 + R.StaticWidth[3] * 8;
  };
  EXPECT_LE(weight(UR), weight(CR));
  // The sll feeding only the AND narrows under useful widths.
  EXPECT_EQ(Useful.Funcs[0].Blocks[0].Insts[2].W, Width::B);
  EXPECT_EQ(Conv.Funcs[0].Blocks[0].Insts[2].W, Width::Q);
}

// Property: narrowing preserves program output on randomized programs.
TEST(Narrowing, RandomProgramEquivalenceProperty) {
  Rng R(7777);
  for (int Trial = 0; Trial < 40; ++Trial) {
    ProgramBuilder PB;
    uint64_t Data = PB.addQuadData(
        {R.range(-1000, 1000), R.range(0, 255), R.range(-5, 5)});
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.ldi(RegT0, static_cast<int64_t>(Data));
    F.ld(Width::Q, RegT1, RegT0, 0);
    F.ld(Width::B, RegT2, RegT0, 8);
    F.ldi(RegT3, R.range(-100, 100));
    // A short random op chain.
    const Op Pool[] = {Op::Add, Op::Sub, Op::Mul, Op::And,
                       Op::Or,  Op::Xor, Op::Sll, Op::Sra};
    Reg Regs[] = {RegT1, RegT2, RegT3, RegT4, RegT5};
    for (int K = 0; K < 8; ++K) {
      Op O = Pool[R.below(8)];
      Reg Rd = Regs[R.below(5)];
      Reg Ra = Regs[R.below(5)];
      if (isShift(O)) {
        F.emit(Instruction::aluImm(O, Width::Q, Rd, Ra,
                                   static_cast<int64_t>(R.below(8))));
      } else if (R.below(2)) {
        F.emit(Instruction::aluImm(O, Width::Q, Rd, Ra, R.range(-64, 64)));
      } else {
        F.emit(Instruction::alu(O, Width::Q, Rd, Ra, Regs[R.below(5)]));
      }
    }
    for (Reg Out : Regs)
      F.out(Out);
    F.halt();
    Program P = PB.finish();
    Program Narrowed = P;
    narrowProgram(Narrowed);
    RunResult A = runProgram(P, RunOptions());
    RunResult B = runProgram(Narrowed, RunOptions());
    ASSERT_EQ(A.Status, RunStatus::Halted);
    EXPECT_EQ(A.Output, B.Output) << "trial " << Trial;
  }
}

// --- Soundness regressions for tricky narrowing interactions.

TEST(Narrowing, CompareConsumersBlockDemandNarrowing) {
  // A value feeding both an AND mask and a full compare must stay wide
  // enough for the compare (the paper's widest-use rule).
  ProgramBuilder PB;
  uint64_t D = PB.addQuadData({1000000, 1000000});
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(D));
  F.ld(Width::Q, RegT1, RegT0, 0);
  F.ld(Width::Q, RegT2, RegT0, 8);
  F.andi(RegT3, RegT1, 0xFF);     // narrow use of t1
  F.cmpeq(RegT4, RegT1, RegT2);   // wide use of t1
  F.out(RegT3);
  F.out(RegT4);
  F.halt();
  Program P = PB.finish();
  Program N = P;
  narrowProgram(N);
  RunResult A = runProgram(P, RunOptions());
  RunResult B = runProgram(N, RunOptions());
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Output.at(1), 1); // the compare still sees equal values
}

TEST(Narrowing, CmovKeptValueSurvivesNarrowing) {
  // cmov at a narrow width must not corrupt the kept-old-value path.
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 1);              // condition: nonzero
  F.ldi(RegT1, 5);              // narrow candidate value
  F.ldi(RegT2, 1 << 20);        // wide old value
  F.emit(Instruction::alu(Op::CmovEq, Width::Q, RegT2, RegT0, RegT1));
  F.out(RegT2);                 // cond false: old (wide) value kept
  F.halt();
  Program P = PB.finish();
  Program N = P;
  narrowProgram(N);
  RunResult A = runProgram(P, RunOptions());
  RunResult B = runProgram(N, RunOptions());
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(B.Output.at(0), 1 << 20);
}

TEST(Narrowing, WrapAroundAddStaysWide) {
  // Byte-wrapping arithmetic must not be range-narrowed into different
  // results: with operands that overflow a byte, the add keeps a width
  // that preserves the 64-bit semantics.
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 100);
  F.ldi(RegT1, 100);
  F.add(RegT2, RegT0, RegT1); // 200: overflows a signed byte
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();
  narrowProgram(P);
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Output.at(0), 200);
  // The add must sit at halfword or wider.
  EXPECT_GE(static_cast<unsigned>(P.Funcs[0].Blocks[0].Insts[2].W),
            static_cast<unsigned>(Width::H));
}

TEST(RangeAnalysis, RecursionStaysConservative) {
  // Direct recursion: summaries must settle without unsound tightening.
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegA0, 5);
  Main.jsr("fact");
  Main.out(RegV0);
  Main.halt();
  FunctionBuilder &Fact = PB.beginFunction("fact");
  Fact.block("entry");
  Fact.bgt(RegA0, "rec", "base");
  Fact.block("base");
  Fact.ldi(RegV0, 1);
  Fact.ret();
  Fact.block("rec");
  Fact.subi(RegSP, RegSP, 16);
  Fact.st(Width::Q, RegA0, RegSP, 0);
  Fact.subi(RegA0, RegA0, 1);
  Fact.jsr("fact");
  Fact.ld(Width::Q, RegT0, RegSP, 0);
  Fact.addi(RegSP, RegSP, 16);
  Fact.mul(RegV0, RegV0, RegT0);
  Fact.ret();
  Program P = PB.finish();
  Program N = P;
  narrowProgram(N);
  RunResult A = runProgram(P, RunOptions());
  RunResult B = runProgram(N, RunOptions());
  ASSERT_EQ(A.Status, RunStatus::Halted);
  EXPECT_EQ(A.Output.at(0), 120);
  EXPECT_EQ(A.Output, B.Output);
}
