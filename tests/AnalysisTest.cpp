//===- tests/AnalysisTest.cpp - analysis/ unit tests -------------------------==//

#include "analysis/CallGraph.h"
#include "analysis/Cfg.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/ReachingDefs.h"
#include "program/Builder.h"

#include <gtest/gtest.h>

using namespace og;

namespace {

/// Diamond: entry -> (left | right) -> join, then a loop around body.
Program diamondWithLoop() {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");       // 0
  F.ldi(RegT0, 0);
  F.beq(RegA0, "left", "right");
  F.block("left");        // 1
  F.ldi(RegT1, 1);
  F.br("join");
  F.block("right");       // 2
  F.ldi(RegT1, 2);
  F.br("join");
  F.block("join");        // 3
  F.ldi(RegT2, 0);
  F.block("loop");        // 4
  F.addi(RegT2, RegT2, 1);
  F.cmpltImm(RegT3, RegT2, 50);
  F.bne(RegT3, "loop", "exit");
  F.block("exit");        // 5
  F.out(RegT1);
  F.halt();
  return PB.finish();
}

} // namespace

TEST(Cfg, SuccessorsAndPredecessors) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  EXPECT_EQ(G.successors(0), (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(G.successors(1), (std::vector<int32_t>{3}));
  EXPECT_EQ(G.successors(4), (std::vector<int32_t>{4, 5}));
  EXPECT_EQ(G.predecessors(3), (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(G.predecessors(4).size(), 2u); // join + self
}

TEST(Cfg, RpoVisitsEverythingReachable) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  EXPECT_EQ(G.rpo().size(), 6u);
  EXPECT_EQ(G.rpo().front(), 0);
  // Entry before everything; join before loop; loop before exit.
  EXPECT_LT(G.rpoIndex(0), G.rpoIndex(3));
  EXPECT_LT(G.rpoIndex(3), G.rpoIndex(4));
  EXPECT_LT(G.rpoIndex(4), G.rpoIndex(5));
}

TEST(Cfg, UnreachableBlockExcluded) {
  Program P = diamondWithLoop();
  // Add an unreachable block (valid: ends in halt).
  BasicBlock &BB = P.Funcs[0].addBlock("dead");
  BB.Insts.push_back(Instruction::halt());
  Cfg G(P.Funcs[0]);
  EXPECT_FALSE(G.isReachable(BB.Id));
  EXPECT_EQ(G.rpo().size(), 6u);
}

TEST(Dominators, DiamondStructure) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  DominatorTree DT(G);
  EXPECT_EQ(DT.idom(1), 0);
  EXPECT_EQ(DT.idom(2), 0);
  EXPECT_EQ(DT.idom(3), 0); // join dominated by entry, not a side
  EXPECT_EQ(DT.idom(4), 3);
  EXPECT_EQ(DT.idom(5), 4);
  EXPECT_TRUE(DT.dominates(0, 5));
  EXPECT_TRUE(DT.dominates(3, 4));
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_TRUE(DT.dominates(4, 4)); // reflexive
  EXPECT_EQ(DT.dominated(3), (std::vector<int32_t>{3, 4, 5}));
}

TEST(Loops, DetectsNaturalLoopAndIterator) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, 4);
  EXPECT_EQ(L.Blocks, (std::vector<int32_t>{4}));
  ASSERT_TRUE(L.Iterator.has_value());
  EXPECT_EQ(L.Iterator->X, RegT2);
  EXPECT_EQ(L.Iterator->Step, 1);
  EXPECT_EQ(L.Iterator->Bound, 50);
  EXPECT_EQ(L.Iterator->CmpOp, Op::CmpLt);
  EXPECT_TRUE(L.Iterator->ContinueWhenTrue);
  EXPECT_EQ(LI.innermostLoop(4), &L);
  EXPECT_EQ(LI.innermostLoop(0), nullptr);
}

TEST(Loops, IteratorBoundsUpwardLt) {
  AffineIterator It;
  It.X = RegT0;
  It.Step = 1;
  It.CmpOp = Op::CmpLt;
  It.Bound = 100;
  It.ContinueWhenTrue = true;
  IteratorBounds B;
  ASSERT_TRUE(computeIteratorBounds(It, 0, B));
  EXPECT_EQ(B.BodyMin, 0);
  EXPECT_EQ(B.BodyMax, 99);
  EXPECT_EQ(B.HeaderMin, 0);
  EXPECT_EQ(B.HeaderMax, 100);
  EXPECT_EQ(B.TripCount, 100u);
}

TEST(Loops, IteratorBoundsStride3) {
  AffineIterator It;
  It.Step = 3;
  It.CmpOp = Op::CmpLt;
  It.Bound = 10;
  It.ContinueWhenTrue = true;
  IteratorBounds B;
  ASSERT_TRUE(computeIteratorBounds(It, 0, B));
  // Values 0,3,6,9 then 12 fails.
  EXPECT_EQ(B.TripCount, 4u);
  EXPECT_EQ(B.BodyMax, 9);
  EXPECT_GE(B.HeaderMax, 12);
}

TEST(Loops, IteratorBoundsDownward) {
  AffineIterator It;
  It.Step = -2;
  It.CmpOp = Op::CmpLe; // continue while !(x <= 0) i.e. x > 0
  It.Bound = 0;
  It.ContinueWhenTrue = false;
  IteratorBounds B;
  ASSERT_TRUE(computeIteratorBounds(It, 10, B));
  // x = 10,8,6,4,2 then 0 fails.
  EXPECT_EQ(B.TripCount, 5u);
  EXPECT_EQ(B.BodyMin, 1);
  EXPECT_EQ(B.BodyMax, 10);
  EXPECT_LE(B.HeaderMin, 0);
}

TEST(Loops, IteratorBoundsNeDivisible) {
  AffineIterator It;
  It.Step = 5;
  It.CmpOp = Op::CmpEq;
  It.Bound = 20;
  It.ContinueWhenTrue = false; // continue while x != 20
  IteratorBounds B;
  ASSERT_TRUE(computeIteratorBounds(It, 0, B));
  EXPECT_EQ(B.TripCount, 4u);
  EXPECT_EQ(B.HeaderMax, 20);
}

TEST(Loops, IteratorBoundsNeNonDivisibleFails) {
  AffineIterator It;
  It.Step = 5;
  It.CmpOp = Op::CmpEq;
  It.Bound = 21;
  It.ContinueWhenTrue = false;
  IteratorBounds B;
  EXPECT_FALSE(computeIteratorBounds(It, 0, B)); // never hits 21: diverges
}

TEST(Loops, ZeroTripCount) {
  AffineIterator It;
  It.Step = 1;
  It.CmpOp = Op::CmpLt;
  It.Bound = 5;
  It.ContinueWhenTrue = true;
  IteratorBounds B;
  ASSERT_TRUE(computeIteratorBounds(It, 9, B));
  EXPECT_EQ(B.TripCount, 0u);
}

TEST(Loops, NonTerminatingShapeRejected) {
  AffineIterator It;
  It.Step = 1;
  It.CmpOp = Op::CmpLt; // continue while !(x < 0): x >= 0 going up: forever
  It.Bound = 0;
  It.ContinueWhenTrue = false;
  IteratorBounds B;
  EXPECT_FALSE(computeIteratorBounds(It, 5, B));
}

TEST(ReachingDefs, LocalDefWins) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  // In block exit, the use of t1 (out) sees defs from both sides.
  std::vector<ReachingDefs::Def> Defs;
  RD.reachingDefs(5, 0, RegT1, Defs);
  ASSERT_EQ(Defs.size(), 2u);
  EXPECT_EQ(Defs[0].Kind, ReachingDefs::Def::InstDef);
  EXPECT_EQ(Defs[1].Kind, ReachingDefs::Def::InstDef);
}

TEST(ReachingDefs, EntryDefForArguments) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  // The branch in entry reads a0, defined only by function entry.
  std::vector<ReachingDefs::Def> Defs;
  RD.reachingDefs(0, 1, RegA0, Defs);
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0].Kind, ReachingDefs::Def::EntryDef);
}

TEST(ReachingDefs, UseDefChains) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  // t2's init (join block) is used by the loop's increment.
  size_t InitId = RD.instId(3, 0);
  const auto &Uses = RD.usesOf(InitId);
  ASSERT_FALSE(Uses.empty());
  bool FoundInc = false;
  for (size_t U : Uses)
    FoundInc |= RD.inst(U).Opc == Op::Add;
  EXPECT_TRUE(FoundInc);
}

TEST(ReachingDefs, UniqueReachingInstDef) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  ReachingDefs RD(P.Funcs[0], G);
  // In the loop block, t3's use by bne has the unique cmplt def.
  EXPECT_NE(RD.uniqueReachingInstDef(4, 2, RegT3), SIZE_MAX);
  // t1 at exit has two defs: not unique.
  EXPECT_EQ(RD.uniqueReachingInstDef(5, 0, RegT1), SIZE_MAX);
}

TEST(Liveness, LoopKeepsIteratorLive) {
  Program P = diamondWithLoop();
  Cfg G(P.Funcs[0]);
  Liveness LV(P.Funcs[0], G);
  EXPECT_TRUE(LV.liveIn(4) & (1u << RegT2));  // iterator live into loop
  EXPECT_TRUE(LV.liveIn(4) & (1u << RegT1));  // needed at exit
  EXPECT_FALSE(LV.liveIn(5) & (1u << RegT2)); // dead after loop
  EXPECT_TRUE(LV.liveAfter(3, 0, RegT2));
}

TEST(Liveness, CallDefsAndUses) {
  Instruction Call = Instruction::jsr(0);
  uint32_t Used = Liveness::usedRegs(Call);
  EXPECT_TRUE(Used & (1u << RegA0));
  EXPECT_TRUE(Used & (1u << RegSP));
  uint32_t Defined = Liveness::definedRegs(Call);
  EXPECT_TRUE(Defined & (1u << RegV0));
  EXPECT_FALSE(Defined & (1u << RegS0)); // callee-saved survive
  Instruction Ret = Instruction::ret();
  EXPECT_TRUE(Liveness::usedRegs(Ret) & (1u << RegV0));
  EXPECT_TRUE(Liveness::usedRegs(Ret) & (1u << RegS0));
}

TEST(CallGraph, EdgesAndOrder) {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.jsr("a");
  Main.jsr("b");
  Main.halt();
  FunctionBuilder &A = PB.beginFunction("a");
  A.block("entry");
  A.jsr("b");
  A.ret();
  FunctionBuilder &B = PB.beginFunction("b");
  B.block("entry");
  B.ret();
  Program P = PB.finish();

  CallGraph CG(P);
  EXPECT_EQ(CG.callees(0), (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(CG.callees(1), (std::vector<int32_t>{2}));
  EXPECT_EQ(CG.callers(2), (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(CG.callSites().size(), 3u);
  EXPECT_EQ(CG.callSitesOf(2).size(), 2u);
  // Bottom-up: b before a before main.
  const auto &BU = CG.bottomUpOrder();
  auto pos = [&](int32_t F) {
    return std::find(BU.begin(), BU.end(), F) - BU.begin();
  };
  EXPECT_LT(pos(2), pos(1));
  EXPECT_LT(pos(1), pos(0));
}
