#!/usr/bin/env python3
"""Minimal RV32I assembler + static ELF32 writer for the test fixtures.

The repository ships pre-built RV32I ELF fixtures so CI never needs a
RISC-V cross-toolchain; this script is how they are (re)generated:

    python3 rvasm.py checksum.s -o checksum.elf

Supported surface (exactly what the fixtures use):
  - sections .text / .data, labels, .globl (exported as STT_FUNC in
    .text, STT_OBJECT in .data), .word/.byte/.space/.align/.bss
  - all RV32I instructions by ABI register names, plus the classic
    pseudo-instructions (li, la, mv, not, neg, seqz, snez, j, jr, call,
    ret, nop, beqz/bnez/bltz/bgez/blez/bgtz)
  - text links at 0x10000 (the simulator's flat data base), data on the
    next 4 KiB boundary; `.bss N` extends the data segment's memsz past
    its filesz to exercise the loader's zero-fill path

Output is a little-endian ET_EXEC EM_RISCV ELF32 with two PT_LOAD
segments and a symbol table, i.e. the exact shape frontend/ElfFile.cpp
consumes. Deterministic: same input bytes -> same output bytes.
"""

import argparse
import re
import struct
import sys

TEXT_BASE = 0x10000
PAGE = 0x1000

ABI = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}
for _i in range(32):
    ABI[f"x{_i}"] = _i

R_FUNCT = {  # op -> (funct3, funct7)
    "add": (0, 0x00), "sub": (0, 0x20), "sll": (1, 0x00), "slt": (2, 0x00),
    "sltu": (3, 0x00), "xor": (4, 0x00), "srl": (5, 0x00), "sra": (5, 0x20),
    "or": (6, 0x00), "and": (7, 0x00),
}
I_FUNCT = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
SHIFT_FUNCT = {"slli": (1, 0x00), "srli": (5, 0x00), "srai": (5, 0x20)}
LOAD_FUNCT = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
STORE_FUNCT = {"sb": 0, "sh": 1, "sw": 2}
BRANCH_FUNCT = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}


def reg(tok):
    tok = tok.strip()
    if tok not in ABI:
        raise ValueError(f"unknown register '{tok}'")
    return ABI[tok]


def enc_r(op, rd, rs1, rs2):
    f3, f7 = R_FUNCT[op]
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | 0x33


def enc_i(opc, f3, rd, rs1, imm):
    assert -2048 <= imm < 2048, f"I-imm {imm} out of range"
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc


def enc_shift(op, rd, rs1, shamt):
    f3, f7 = SHIFT_FUNCT[op]
    assert 0 <= shamt < 32, f"shamt {shamt} out of range"
    return (f7 << 25) | (shamt << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | 0x13


def enc_s(op, rs2, rs1, imm):
    assert -2048 <= imm < 2048, f"S-imm {imm} out of range"
    f3 = STORE_FUNCT[op]
    lo, hi = imm & 0x1F, (imm >> 5) & 0x7F
    return (hi << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (lo << 7) | 0x23


def enc_b(op, rs1, rs2, off):
    assert off % 2 == 0 and -4096 <= off < 4096, f"B-off {off} out of range"
    f3 = BRANCH_FUNCT[op]
    u = off & 0x1FFF
    w = ((u >> 12) << 31) | (((u >> 5) & 0x3F) << 25) | (rs2 << 20)
    w |= (rs1 << 15) | (f3 << 12) | (((u >> 1) & 0xF) << 8)
    w |= (((u >> 11) & 1) << 7) | 0x63
    return w


def enc_u(opc, rd, imm20):
    return ((imm20 & 0xFFFFF) << 12) | (rd << 7) | opc


def enc_j(rd, off):
    assert off % 2 == 0 and -(1 << 20) <= off < (1 << 20), f"J-off {off}"
    u = off & 0x1FFFFF
    w = ((u >> 20) << 31) | (((u >> 1) & 0x3FF) << 21) | (((u >> 11) & 1) << 20)
    w |= (((u >> 12) & 0xFF) << 12) | (rd << 7) | 0x6F
    return w


def split_hi_lo(value):
    value &= 0xFFFFFFFF
    hi = ((value + 0x800) >> 12) & 0xFFFFF
    lo = value - ((hi << 12) & 0xFFFFFFFF)
    lo = ((lo + 0x800) & 0xFFF) - 0x800  # sign-extend to [-2048, 2048)
    return hi, lo


class Stmt:
    def __init__(self, kind, args, line):
        self.kind = kind      # mnemonic or directive
        self.args = args
        self.line = line
        self.addr = 0


def parse_operands(rest):
    # split on commas not inside parentheses (there are none nested)
    return [p.strip() for p in rest.split(",")] if rest.strip() else []


def parse_mem(tok):
    m = re.fullmatch(r"(-?[\w$]+)\((\w+)\)", tok.strip())
    if not m:
        raise ValueError(f"bad memory operand '{tok}'")
    return m.group(1), reg(m.group(2))


class Assembler:
    def __init__(self):
        self.text = []   # list of Stmt
        self.data = bytearray()
        self.bss = 0
        self.labels = {}      # name -> (section, offset)
        self.globls = []      # (name, section)
        self.entry_label = "_start"

    def size_of(self, st):
        """Instruction byte size, fixed in pass 1 (pseudo expansion is
        size-stable by construction)."""
        if st.kind in ("li", "la"):
            if st.kind == "li":
                try:
                    v = int(st.args[1], 0)
                    if -2048 <= v < 2048:
                        return 4
                except ValueError:
                    pass
            return 8
        return 4

    def assemble(self, source):
        section = "text"
        for lineno, raw in enumerate(source.splitlines(), 1):
            line = raw.split("#")[0].strip()
            if not line:
                continue
            while True:
                m = re.match(r"([\w$.]+):\s*", line)
                if not m:
                    break
                name = m.group(1)
                if section == "text":
                    off = sum(self.size_of(s) for s in self.text)
                else:
                    off = len(self.data)
                if name in self.labels:
                    raise ValueError(f"line {lineno}: duplicate label {name}")
                self.labels[name] = (section, off)
                line = line[m.end():]
            if not line:
                continue
            parts = line.split(None, 1)
            kind = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            if kind == ".text":
                section = "text"
            elif kind == ".data":
                section = "data"
            elif kind == ".globl":
                self.globls.append((rest.strip(), section))
            elif kind == ".word":
                assert section == "data"
                for tok in parse_operands(rest):
                    self.data += struct.pack("<i", int(tok, 0))
            elif kind == ".byte":
                assert section == "data"
                for tok in parse_operands(rest):
                    self.data += struct.pack("<B", int(tok, 0) & 0xFF)
            elif kind == ".half":
                assert section == "data"
                for tok in parse_operands(rest):
                    self.data += struct.pack("<H", int(tok, 0) & 0xFFFF)
            elif kind == ".space":
                assert section == "data"
                self.data += bytes(int(rest.strip(), 0))
            elif kind == ".align":
                n = 1 << int(rest.strip(), 0)
                if section == "data":
                    while len(self.data) % n:
                        self.data.append(0)
                else:
                    raise ValueError(".align only supported in .data")
            elif kind == ".bss":
                assert section == "data"
                self.bss += int(rest.strip(), 0)
            elif kind.startswith("."):
                raise ValueError(f"line {lineno}: unknown directive {kind}")
            else:
                if section != "text":
                    raise ValueError(f"line {lineno}: instruction in .data")
                self.text.append(Stmt(kind, parse_operands(rest), lineno))

        # Assign addresses.
        addr = TEXT_BASE
        for st in self.text:
            st.addr = addr
            addr += self.size_of(st)
        self.text_size = addr - TEXT_BASE
        self.data_base = (addr + PAGE - 1) // PAGE * PAGE

        words = []
        for st in self.text:
            words += self.encode(st)
        assert len(words) * 4 == self.text_size
        return b"".join(struct.pack("<I", w & 0xFFFFFFFF) for w in words)

    def sym_addr(self, name):
        if name not in self.labels:
            raise ValueError(f"undefined symbol '{name}'")
        section, off = self.labels[name]
        return (TEXT_BASE if section == "text" else self.data_base) + off

    def imm_or_sym(self, tok):
        try:
            return int(tok, 0)
        except ValueError:
            return self.sym_addr(tok)

    def encode(self, st):
        k, a = st.kind, st.args
        try:
            return self.encode_inner(k, a, st.addr)
        except (ValueError, AssertionError, IndexError, KeyError) as e:
            raise SystemExit(f"line {st.line}: {k} {', '.join(a)}: {e}")

    def encode_inner(self, k, a, addr):
        if k in R_FUNCT:
            return [enc_r(k, reg(a[0]), reg(a[1]), reg(a[2]))]
        if k in I_FUNCT:
            return [enc_i(0x13, I_FUNCT[k], reg(a[0]), reg(a[1]),
                          int(a[2], 0))]
        if k in SHIFT_FUNCT:
            return [enc_shift(k, reg(a[0]), reg(a[1]), int(a[2], 0))]
        if k in LOAD_FUNCT:
            off, base = parse_mem(a[1])
            return [enc_i(0x03, LOAD_FUNCT[k], reg(a[0]), base, int(off, 0))]
        if k in STORE_FUNCT:
            off, base = parse_mem(a[1])
            return [enc_s(k, reg(a[0]), base, int(off, 0))]
        if k in BRANCH_FUNCT:
            return [enc_b(k, reg(a[0]), reg(a[1]),
                          self.sym_addr(a[2]) - addr)]
        if k == "lui":
            return [enc_u(0x37, reg(a[0]), int(a[1], 0))]
        if k == "auipc":
            return [enc_u(0x17, reg(a[0]), int(a[1], 0))]
        if k == "jal":
            if len(a) == 1:
                return [enc_j(1, self.sym_addr(a[0]) - addr)]
            return [enc_j(reg(a[0]), self.sym_addr(a[1]) - addr)]
        if k == "jalr":
            if len(a) == 1:
                return [enc_i(0x67, 0, 1, reg(a[0]), 0)]
            off, base = parse_mem(a[1])
            return [enc_i(0x67, 0, reg(a[0]), base, int(off, 0))]
        if k == "ecall":
            return [0x00000073]
        if k == "ebreak":
            return [0x00100073]
        if k == "fence":
            return [0x0FF0000F]  # fence iorw, iorw
        # --- pseudo-instructions ---
        if k == "nop":
            return [enc_i(0x13, 0, 0, 0, 0)]
        if k == "mv":
            return [enc_i(0x13, 0, reg(a[0]), reg(a[1]), 0)]
        if k == "not":
            return [enc_i(0x13, 4, reg(a[0]), reg(a[1]), -1)]
        if k == "neg":
            return [enc_r("sub", reg(a[0]), 0, reg(a[1]))]
        if k == "seqz":
            return [enc_i(0x13, 3, reg(a[0]), reg(a[1]), 1)]
        if k == "snez":
            return [enc_r("sltu", reg(a[0]), 0, reg(a[1]))]
        if k == "j":
            return [enc_j(0, self.sym_addr(a[0]) - addr)]
        if k == "jr":
            return [enc_i(0x67, 0, 0, reg(a[0]), 0)]
        if k == "call":
            return [enc_j(1, self.sym_addr(a[0]) - addr)]
        if k == "ret":
            return [enc_i(0x67, 0, 0, 1, 0)]
        if k in ("beqz", "bnez", "bltz", "bgez"):
            base = {"beqz": "beq", "bnez": "bne",
                    "bltz": "blt", "bgez": "bge"}[k]
            return [enc_b(base, reg(a[0]), 0, self.sym_addr(a[1]) - addr)]
        if k == "blez":  # rs <= 0  ==  0 >= rs  ==  bge x0, rs
            return [enc_b("bge", 0, reg(a[0]), self.sym_addr(a[1]) - addr)]
        if k == "bgtz":  # rs > 0   ==  0 < rs   ==  blt x0, rs
            return [enc_b("blt", 0, reg(a[0]), self.sym_addr(a[1]) - addr)]
        if k == "li":
            rd, v = reg(a[0]), int(a[1], 0)
            if -2048 <= v < 2048:
                return [enc_i(0x13, 0, rd, 0, v)]
            hi, lo = split_hi_lo(v)
            return [enc_u(0x37, rd, hi), enc_i(0x13, 0, rd, rd, lo)]
        if k == "la":
            rd, v = reg(a[0]), self.sym_addr(a[1])
            hi, lo = split_hi_lo(v)
            return [enc_u(0x37, rd, hi), enc_i(0x13, 0, rd, rd, lo)]
        raise ValueError("unknown mnemonic")


def build_elf(asm, text_bytes):
    data_base = asm.data_base
    data_bytes = bytes(asm.data)
    text_off = PAGE
    data_off = text_off + (data_base - TEXT_BASE)

    # Symbol and string tables: null symbol, then the .globl exports.
    strtab = bytearray(b"\0")
    syms = bytearray(bytes(16))  # null symbol
    for name, section in asm.globls:
        name_off = len(strtab)
        strtab += name.encode() + b"\0"
        value = asm.sym_addr(name)
        stype = 2 if section == "text" else 1  # STT_FUNC / STT_OBJECT
        shndx = 1 if section == "text" else 2
        syms += struct.pack("<IIIBBH", name_off, value, 0,
                            (1 << 4) | stype, 0, shndx)

    shstrtab = b"\0.text\0.data\0.symtab\0.strtab\0.shstrtab\0"
    sym_off = data_off + len(data_bytes)
    str_off = sym_off + len(syms)
    shstr_off = str_off + len(strtab)
    sh_off = (shstr_off + len(shstrtab) + 3) & ~3

    def shdr(name, stype, flags, addr, off, size, link=0, info=0,
             align=1, entsize=0):
        return struct.pack("<10I", name, stype, flags, addr, off, size,
                           link, info, align, entsize)

    shdrs = b"".join([
        shdr(0, 0, 0, 0, 0, 0),
        shdr(1, 1, 0x6, TEXT_BASE, text_off, len(text_bytes), align=4),
        shdr(7, 1, 0x3, data_base, data_off, len(data_bytes), align=4),
        shdr(13, 2, 0, 0, sym_off, len(syms), link=4, info=1,
             align=4, entsize=16),
        shdr(21, 3, 0, 0, str_off, len(strtab)),
        shdr(29, 3, 0, 0, shstr_off, len(shstrtab)),
    ])

    entry = asm.sym_addr(asm.entry_label)
    ehdr = struct.pack(
        "<4sBBBBB7xHHIIIIIHHHHHH",
        b"\x7fELF", 1, 1, 1, 0, 0,   # ELFCLASS32, LSB, version, SysV
        2, 243, 1,                    # ET_EXEC, EM_RISCV, EV_CURRENT
        entry, 52, sh_off, 0,         # entry, phoff, shoff, flags
        52, 32, 2,                    # ehsize, phentsize, phnum
        40, 6, 5)                     # shentsize, shnum, shstrndx
    phdrs = struct.pack("<8I", 1, text_off, TEXT_BASE, TEXT_BASE,
                        len(text_bytes), len(text_bytes), 0x5, PAGE)
    phdrs += struct.pack("<8I", 1, data_off, data_base, data_base,
                         len(data_bytes), len(data_bytes) + asm.bss,
                         0x6, PAGE)

    out = bytearray()
    out += ehdr + phdrs
    out += bytes(text_off - len(out))
    out += text_bytes
    out += bytes(data_off - len(out))
    out += data_bytes
    assert len(out) == sym_off
    out += syms + strtab + shstrtab
    out += bytes(sh_off - len(out))
    out += shdrs
    return bytes(out)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("input")
    ap.add_argument("-o", "--output", required=True)
    args = ap.parse_args()
    asm = Assembler()
    with open(args.input) as f:
        text = asm.assemble(f.read())
    if asm.entry_label not in asm.labels:
        sys.exit("no _start label")
    with open(args.output, "wb") as f:
        f.write(build_elf(asm, text))
    print(f"{args.output}: {len(text)} text bytes, {len(asm.data)} data, "
          f"{asm.bss} bss, entry {hex(asm.sym_addr('_start'))}")


if __name__ == "__main__":
    main()
