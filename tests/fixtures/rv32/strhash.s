# strhash — halfword-table hashing plus recursive fibonacci. Exercises
# the call stack (sw/lw of ra and s-registers around recursion), signed
# halfword/byte loads (lh/lb sign-extension paths), and shift-add
# multiplies.
#
# a0: input selector (0 = train, 1 = ref); picks the recursion depth
# a1: unit count; 0 means 1
# out: two values (fib accumulator, table hash)

    .text
    .globl _start
_start:
    lui sp, 0x400
    mv s0, a0
    mv s1, a1
    bnez s1, have_units
    li s1, 1
have_units:
    # Fill a 256-entry halfword table with a shift-add generator.
    la s2, table
    li t0, 12345
    add t0, t0, s0
    li t1, 0
fill:
    slli t2, t0, 3           # x = x + 8x + 7
    add t0, t0, t2
    addi t0, t0, 7
    slli t3, t1, 1
    add t3, s2, t3
    sh t0, 0(t3)
    addi t1, t1, 1
    li t4, 256
    blt t1, t4, fill
    li s3, 0                 # fib accumulator
    li s4, 0                 # hash accumulator
    li s5, 0                 # unit counter
unit_loop:
    li a0, 10                # train depth 10, ref depth 11
    add a0, a0, s0
    call fib
    add s3, s3, a0
    # h = h*33 + table[i] (signed halfwords)
    li t1, 0
hash_loop:
    slli t3, t1, 1
    add t3, s2, t3
    lh t4, 0(t3)
    slli t5, s4, 5
    add s4, t5, s4
    add s4, s4, t4
    addi t1, t1, 1
    li t6, 256
    blt t1, t6, hash_loop
    # fold in 128 signed bytes too (lb path)
    li t1, 0
byte_loop:
    add t3, s2, t1
    lb t4, 0(t3)
    xor s4, s4, t4
    srai t5, s4, 1
    add s4, s4, t5
    addi t1, t1, 1
    li t6, 128
    blt t1, t6, byte_loop
    addi s5, s5, 1
    blt s5, s1, unit_loop
    mv a0, s3
    li a7, 1
    ecall
    mv a0, s4
    li a7, 1
    ecall
    li a7, 93
    ecall
    ebreak                   # trap if exit returns (keeps the lifter's ecall continuation decodable)

    .globl fib
fib:
    # a0 = n -> a0 = fib(n), the naive recursion
    li t0, 2
    blt a0, t0, fib_ret
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    mv s0, a0
    addi a0, a0, -1
    call fib
    mv s1, a0
    addi a0, s0, -2
    call fib
    add a0, a0, s1
    lw s1, 4(sp)
    lw s0, 8(sp)
    lw ra, 12(sp)
    addi sp, sp, 16
fib_ret:
    ret

    .data
    .globl table
table:
    .space 512
