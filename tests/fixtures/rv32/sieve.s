# sieve — byte sieve of Eratosthenes, the classic embedded benchmark.
# Exercises byte stores/loads, nested loops, and unsigned-free index
# arithmetic; prime counts are the output oracle.
#
# a0: input selector (0 = train: N=512, 1 = ref: N=2048)
# a1: unit count (full sieve repetitions); 0 means 1
# out: one value (total primes found across units)

    .text
    .globl _start
_start:
    lui sp, 0x400
    mv s0, a0
    mv s1, a1
    bnez s1, have_units
    li s1, 1
have_units:
    li s2, 512
    beqz s0, size_done
    li s2, 2048
size_done:
    la s3, flags
    li s4, 0                 # unit counter
    li s5, 0                 # total prime count
unit_loop:
    li t0, 0
clear:
    add t1, s3, t0
    sb zero, 0(t1)
    addi t0, t0, 1
    blt t0, s2, clear
    li t0, 2                 # candidate i
    li t2, 0                 # primes this unit
iloop:
    add t1, s3, t0
    lbu t3, 0(t1)
    bnez t3, not_prime
    addi t2, t2, 1
    add t4, t0, t0           # j = 2i
jloop:
    bge t4, s2, not_prime
    add t5, s3, t4
    li t6, 1
    sb t6, 0(t5)
    add t4, t4, t0
    j jloop
not_prime:
    addi t0, t0, 1
    blt t0, s2, iloop
    add s5, s5, t2
    addi s4, s4, 1
    blt s4, s1, unit_loop
    mv a0, s5
    li a7, 1
    ecall
    li a7, 93
    ecall
    ebreak                   # trap if exit returns (keeps the lifter's ecall continuation decodable)

    .data
    .globl flags
flags:
    .bss 2048
