# checksum — xorshift32-filled byte buffer, Adler-style checksum with
# conditional-subtract modulo (RV32I has no divide). Byte loads and
# 16-bit accumulators give the narrowing pass real sub-32-bit widths.
#
# a0: input selector (0 = train, 1 = ref); picks buffer size and seed
# a1: unit count (outer checksum passes); 0 means 1
# out: one value (folded checksum sum)

    .text
    .globl _start
_start:
    lui sp, 0x400            # sp = 0x400000; the IR machine gives us 8 MiB
    mv s0, a0
    mv s1, a1
    bnez s1, have_units
    li s1, 1
have_units:
    li s2, 256               # train buffer size
    beqz s0, size_done
    li s2, 1024              # ref buffer size
size_done:
    la s3, buf
    li t0, 0x9E3779B9        # xorshift32 state
    add t0, t0, s0
    li t1, 0
fill:
    slli t2, t0, 13
    xor t0, t0, t2
    srli t2, t0, 17
    xor t0, t0, t2
    slli t2, t0, 5
    xor t0, t0, t2
    add t3, s3, t1
    sb t0, 0(t3)
    addi t1, t1, 1
    blt t1, s2, fill
    li s4, 0                 # pass counter
    li s5, 0                 # checksum accumulator
pass_loop:
    mv a0, s3
    mv a1, s2
    call adler
    add s5, s5, a0
    addi s4, s4, 1
    blt s4, s1, pass_loop
    mv a0, s5
    li a7, 1                 # print a0
    ecall
    li a7, 93                # exit
    ecall
    ebreak                   # trap if exit returns (keeps the lifter's ecall continuation decodable)

    .globl adler
adler:
    # a0 = buffer, a1 = length -> a0 = (s2 << 16) | s1; clobbers t0-t5
    li t0, 1
    li t1, 0
    li t2, 0
    li t5, 65521
adler_loop:
    add t3, a0, t2
    lbu t4, 0(t3)
    add t0, t0, t4
    blt t0, t5, no_mod1
    sub t0, t0, t5
no_mod1:
    add t1, t1, t0
    blt t1, t5, no_mod2
    sub t1, t1, t5
no_mod2:
    addi t2, t2, 1
    blt t2, a1, adler_loop
    slli a0, t1, 16
    or a0, a0, t0
    ret

    .data
    .globl buf
buf:
    .space 1024
