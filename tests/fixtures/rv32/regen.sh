#!/bin/sh
# Regenerates every checked-in .elf fixture from its .s source with
# rvasm.py (deterministic: same sources -> same bytes). Run from
# anywhere; exits non-zero if any fixture fails to assemble or the
# output would be empty. After regenerating, re-run FrontendTest — the
# decode goldens and run oracles pin the fixtures' semantics.
set -eu
cd "$(dirname "$0")"
for SRC in *.s; do
  OUT="${SRC%.s}.elf"
  python3 rvasm.py "$SRC" -o "$OUT"
  [ -s "$OUT" ] || { echo "regen: $OUT is empty" >&2; exit 1; }
  echo "regen: $OUT ($(wc -c < "$OUT") bytes)"
done
