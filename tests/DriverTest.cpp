//===- tests/DriverTest.cpp - Parallel experiment driver tests ----------------==//
//
// The contracts the sweep driver promises: the aggregate report is
// byte-identical for any worker count, sharding hands every job out
// exactly once, per-job Rng streams depend only on the spec, and a
// throwing job fails the run with its spec named.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/JobQueue.h"
#include "driver/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace og;

namespace {

/// A small but real sweep: two workloads x two configurations at a tiny
/// scale, enough to produce non-trivial aggregate rows quickly.
std::vector<ExperimentSpec> smallRealSweep() {
  std::vector<ExperimentSpec> Specs;
  for (const char *W : {"compress", "li"})
    for (ExperimentSpec S : standardConfigs()) {
      if (S.ConfigLabel != "baseline" && S.ConfigLabel != "vrp")
        continue;
      S.Workload = W;
      S.Scale = 0.02;
      S.Seed = specSeed(S);
      Specs.push_back(std::move(S));
    }
  return Specs;
}

std::string aggregateReport(const SweepResult &R) {
  std::ostringstream OS;
  R.Aggregate.print(OS);
  return OS.str();
}

/// Specs for custom-job tests; the job never looks at the pipeline
/// config, only the name/seed.
std::vector<ExperimentSpec> syntheticSpecs(size_t N) {
  std::vector<ExperimentSpec> Specs(N);
  for (size_t I = 0; I < N; ++I) {
    Specs[I].Workload = "job" + std::to_string(I);
    Specs[I].ConfigLabel = "cfg";
    Specs[I].Seed = specSeed(Specs[I]);
  }
  return Specs;
}

} // namespace

TEST(Driver, AggregateIdenticalAcrossJobCounts) {
  std::vector<ExperimentSpec> Specs = smallRealSweep();
  SweepOptions O1, O4, O8;
  O1.Jobs = 1;
  O4.Jobs = 4;
  O8.Jobs = 8;
  SweepResult R1 = runSweep(Specs, O1);
  SweepResult R4 = runSweep(Specs, O4);
  SweepResult R8 = runSweep(Specs, O8);
  ASSERT_TRUE(R1.AllOk) << R1.FirstError;
  ASSERT_TRUE(R4.AllOk) << R4.FirstError;
  ASSERT_TRUE(R8.AllOk) << R8.FirstError;

  std::string Rep1 = aggregateReport(R1);
  EXPECT_FALSE(Rep1.empty());
  EXPECT_EQ(Rep1, aggregateReport(R4));
  EXPECT_EQ(Rep1, aggregateReport(R8));
  // And the per-cell outputs really are the same runs.
  for (size_t I = 0; I < Specs.size(); ++I)
    EXPECT_EQ(R1.Outcomes[I].Result.Output, R8.Outcomes[I].Result.Output)
        << Specs[I].name();
}

TEST(Driver, SharedDecodeMatchesPerSpecPipeline) {
  // The default job shares one Workload + DecodedProgram per (workload,
  // scale) across the sweep; runSpecPipeline rebuilds and re-decodes per
  // spec. Cell outputs and the aggregate report must not notice.
  std::vector<ExperimentSpec> Specs = smallRealSweep();
  SweepOptions Shared;
  Shared.Jobs = 4;
  SweepOptions PerSpec;
  PerSpec.Jobs = 4;
  PerSpec.Job = runSpecPipeline;
  SweepResult A = runSweep(Specs, Shared);
  SweepResult B = runSweep(Specs, PerSpec);
  ASSERT_TRUE(A.AllOk) << A.FirstError;
  ASSERT_TRUE(B.AllOk) << B.FirstError;
  EXPECT_EQ(aggregateReport(A), aggregateReport(B));
  for (size_t I = 0; I < Specs.size(); ++I) {
    EXPECT_EQ(A.Outcomes[I].Result.Output, B.Outcomes[I].Result.Output)
        << Specs[I].name();
    EXPECT_EQ(A.Outcomes[I].Result.RefStats.DynInsts,
              B.Outcomes[I].Result.RefStats.DynInsts)
        << Specs[I].name();
  }
}

TEST(Driver, ShardsCoverEveryJobExactlyOnce) {
  for (unsigned Jobs : {1u, 3u, 8u}) {
    const size_t N = 13; // deliberately not a multiple of any job count
    std::vector<ExperimentSpec> Specs = syntheticSpecs(N);
    std::vector<std::atomic<int>> Ran(N);
    for (auto &A : Ran)
      A = 0;
    SweepOptions Opts;
    Opts.Jobs = Jobs;
    Opts.Job = [&](const ExperimentSpec &S, Rng &) {
      size_t I = std::stoul(S.Workload.substr(3));
      ++Ran[I];
      return PipelineResult();
    };
    SweepResult R = runSweep(Specs, Opts);
    ASSERT_TRUE(R.AllOk) << "jobs=" << Jobs << ": " << R.FirstError;
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Ran[I].load(), 1)
          << "jobs=" << Jobs << " job " << I << " ran a wrong number of times";
  }
}

TEST(Driver, PerJobSeedsAreDeterministicAcrossWorkerCounts) {
  const size_t N = 9;
  std::vector<ExperimentSpec> Specs = syntheticSpecs(N);
  auto Draws = [&](unsigned Jobs) {
    std::vector<uint64_t> D(N);
    SweepOptions Opts;
    Opts.Jobs = Jobs;
    Opts.Job = [&](const ExperimentSpec &S, Rng &R) {
      D[std::stoul(S.Workload.substr(3))] = R.next();
      return PipelineResult();
    };
    EXPECT_TRUE(runSweep(Specs, Opts).AllOk);
    return D;
  };
  std::vector<uint64_t> Serial = Draws(1), Parallel = Draws(8);
  EXPECT_EQ(Serial, Parallel);
  // Distinct specs get distinct streams.
  for (size_t I = 1; I < N; ++I)
    EXPECT_NE(Serial[0], Serial[I]);
}

TEST(Driver, ThrowingJobFailsRunAndNamesSpec) {
  std::vector<ExperimentSpec> Specs = syntheticSpecs(8);
  Specs[3].Workload = "doomed";
  SweepOptions Opts;
  Opts.Jobs = 4;
  Opts.Job = [&](const ExperimentSpec &S, Rng &) {
    if (S.Workload == "doomed")
      throw std::runtime_error("synthetic crash");
    return PipelineResult();
  };
  SweepResult R = runSweep(Specs, Opts);
  EXPECT_FALSE(R.AllOk);
  EXPECT_NE(R.FirstError.find("doomed/cfg"), std::string::npos)
      << R.FirstError;
  EXPECT_NE(R.FirstError.find("synthetic crash"), std::string::npos)
      << R.FirstError;
  EXPECT_FALSE(R.Outcomes[3].Ok);
}

TEST(Driver, KeepGoingRunsEveryJobDespiteFailure) {
  const size_t N = 10;
  std::vector<ExperimentSpec> Specs = syntheticSpecs(N);
  std::atomic<int> Ran{0};
  SweepOptions Opts;
  Opts.Jobs = 2;
  Opts.KeepGoing = true;
  Opts.Job = [&](const ExperimentSpec &S, Rng &) {
    ++Ran;
    if (S.Workload == "job0")
      throw std::runtime_error("early crash");
    return PipelineResult();
  };
  SweepResult R = runSweep(Specs, Opts);
  EXPECT_FALSE(R.AllOk);
  EXPECT_EQ(Ran.load(), static_cast<int>(N));
  // Only the crashed job is marked failed.
  for (size_t I = 1; I < N; ++I)
    EXPECT_TRUE(R.Outcomes[I].Ok) << "job " << I;
}

TEST(JobQueue, PopsEachIndexOnceAndCancelStops) {
  JobQueue Q(100);
  std::vector<std::atomic<int>> Seen(100);
  for (auto &A : Seen)
    A = 0;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&] {
      size_t I;
      while (Q.pop(I))
        ++Seen[I];
    });
  for (auto &T : Ts)
    T.join();
  for (size_t I = 0; I < 100; ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "index " << I;

  JobQueue Q2(100);
  size_t I;
  ASSERT_TRUE(Q2.pop(I));
  Q2.cancel();
  EXPECT_FALSE(Q2.pop(I));
  EXPECT_TRUE(Q2.cancelled());
}

TEST(ThreadPool, RunsAllTasksAndWaits) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I < 64; ++I)
    Pool.submit([&] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 64);

  // Inline pool: tasks run on the submitting thread immediately.
  ThreadPool Inline(1);
  EXPECT_EQ(Inline.numThreads(), 0u);
  std::thread::id Tid;
  Inline.submit([&] { Tid = std::this_thread::get_id(); });
  EXPECT_EQ(Tid, std::this_thread::get_id());
}

TEST(ExperimentSpec, SeedsAreStableAndIdentityDerived) {
  ExperimentSpec A;
  A.Workload = "compress";
  A.ConfigLabel = "vrp";
  A.Scale = 0.25;
  ExperimentSpec B = A;
  EXPECT_EQ(specSeed(A), specSeed(B));
  B.ConfigLabel = "baseline";
  EXPECT_NE(specSeed(A), specSeed(B));
  B = A;
  B.Scale = 0.5;
  EXPECT_NE(specSeed(A), specSeed(B));
  // Seed 0 means "derive": effectiveSeed never returns 0.
  EXPECT_NE(effectiveSeed(A), 0u);
  A.Seed = 77;
  EXPECT_EQ(effectiveSeed(A), 77u);
}

TEST(ExperimentSpec, SweepsEnumerateTheFullMatrix) {
  std::vector<ExperimentSpec> Std = makeStandardSweep(0.1);
  EXPECT_EQ(Std.size(), allWorkloadNames().size() * standardConfigs().size());
  // Deterministic order and unique names.
  std::vector<ExperimentSpec> Again = makeStandardSweep(0.1);
  ASSERT_EQ(Std.size(), Again.size());
  for (size_t I = 0; I < Std.size(); ++I) {
    EXPECT_EQ(Std[I].name(), Again[I].name());
    EXPECT_EQ(Std[I].Seed, Again[I].Seed);
  }

  std::vector<ExperimentSpec> M = makeMatrixSweep({"compress", "go"}, 0.1);
  EXPECT_EQ(M.size(), 2u * 10u); // 3 policy-free + 3 sw modes x 2 policies + 1 combined
  size_t BaseAlpha = 0;
  for (const ExperimentSpec &S : M)
    if (S.ConfigLabel.find("base-alpha") != std::string::npos) {
      ++BaseAlpha;
      EXPECT_EQ(static_cast<int>(S.Config.Narrow.Policy),
                static_cast<int>(IsaPolicy::BaseAlpha));
    }
  EXPECT_EQ(BaseAlpha, 2u * 3u);
}
