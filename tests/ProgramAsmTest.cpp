//===- tests/ProgramAsmTest.cpp - program/ and asm/ tests --------------------==//

#include "asm/Assembler.h"
#include "asm/Disassembler.h"
#include "program/Builder.h"
#include "program/Clone.h"
#include "program/Verifier.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace og;

namespace {

Program tinyLoop() {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 0);
  F.block("loop");
  F.addi(RegT0, RegT0, 1);
  F.cmpltImm(RegT1, RegT0, 10);
  F.bne(RegT1, "loop", "done");
  F.block("done");
  F.out(RegT0);
  F.halt();
  return PB.finish();
}

} // namespace

TEST(Builder, ProducesVerifiedProgram) {
  Program P = tinyLoop();
  std::string Diag;
  EXPECT_TRUE(verifyProgram(P, &Diag)) << Diag;
  EXPECT_EQ(P.Funcs.size(), 1u);
  EXPECT_EQ(P.Funcs[0].Blocks.size(), 3u);
  EXPECT_EQ(P.numInstructions(), 6u);
}

TEST(Builder, FallthroughInstalledOnBlockSwitch) {
  Program P = tinyLoop();
  // entry falls through to loop.
  EXPECT_EQ(P.Funcs[0].Blocks[0].FallthroughSucc, 1);
  // loop's conditional branch falls through to done.
  EXPECT_EQ(P.Funcs[0].Blocks[1].FallthroughSucc, 2);
}

TEST(Builder, CallsResolvedByName) {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.jsr("helper");
  Main.out(RegV0);
  Main.halt();
  FunctionBuilder &H = PB.beginFunction("helper");
  H.block("entry");
  H.ldi(RegV0, 7);
  H.ret();
  Program P = PB.finish();
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], 7);
}

TEST(Builder, DataSegmentAllocation) {
  ProgramBuilder PB;
  uint64_t A = PB.addQuadData({1, 2, 3});
  uint64_t B = PB.addZeroData(10);
  uint64_t C = PB.addByteData({9, 8});
  EXPECT_EQ(A, Program::DataBase);
  EXPECT_EQ(B, Program::DataBase + 24);
  EXPECT_EQ(C % 8, 0u); // aligned
  EXPECT_GT(C, B);
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.halt();
  Program P = PB.finish();
  EXPECT_GE(P.Data.size(), 24u + 10u + 2u);
}

TEST(Verifier, CatchesBadBranchTarget) {
  Program P = tinyLoop();
  P.Funcs[0].Blocks[1].Insts.back().Target = 99;
  std::string Diag;
  EXPECT_FALSE(verifyProgram(P, &Diag));
  EXPECT_NE(Diag.find("target"), std::string::npos);
}

TEST(Verifier, CatchesMissingFallthrough) {
  Program P = tinyLoop();
  P.Funcs[0].Blocks[1].FallthroughSucc = NoTarget;
  EXPECT_FALSE(verifyProgram(P));
}

TEST(Verifier, CatchesTerminatorMidBlock) {
  Program P = tinyLoop();
  P.Funcs[0].Blocks[2].Insts.insert(P.Funcs[0].Blocks[2].Insts.begin(),
                                    Instruction::halt());
  EXPECT_FALSE(verifyProgram(P));
}

TEST(Verifier, CatchesDanglingFallthroughOnBr) {
  Program P = tinyLoop();
  P.Funcs[0].Blocks[2].FallthroughSucc = 0; // halt block with fallthrough
  EXPECT_FALSE(verifyProgram(P));
}

TEST(Verifier, CatchesBadCallee) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.halt();
  Program P = PB.finish();
  P.Funcs[0].Blocks[0].Insts.insert(P.Funcs[0].Blocks[0].Insts.begin(),
                                    Instruction::jsr(5));
  EXPECT_FALSE(verifyProgram(P));
}

TEST(Clone, RemapsIntraRegionEdges) {
  Program P = tinyLoop();
  Function &F = P.Funcs[0];
  auto Mapping = cloneRegion(F, {1, 2}); // loop + done
  ASSERT_EQ(Mapping.size(), 2u);
  int32_t CloneLoop = Mapping.at(1);
  int32_t CloneDone = Mapping.at(2);
  // Clone's self-branch targets the cloned loop, fallthrough the cloned
  // done block.
  EXPECT_EQ(F.Blocks[CloneLoop].Insts.back().Target, CloneLoop);
  EXPECT_EQ(F.Blocks[CloneLoop].FallthroughSucc, CloneDone);
  // The original is untouched.
  EXPECT_EQ(F.Blocks[1].Insts.back().Target, 1);
  EXPECT_TRUE(verifyProgram(P));
}

TEST(Clone, EdgesLeavingRegionKeepTargets) {
  Program P = tinyLoop();
  Function &F = P.Funcs[0];
  auto Mapping = cloneRegion(F, {1}); // loop only
  int32_t CloneLoop = Mapping.at(1);
  EXPECT_EQ(F.Blocks[CloneLoop].FallthroughSucc, 2); // original done
}

// --- Assembler/disassembler.

TEST(Assembler, RoundTripsTinyProgram) {
  Program P = tinyLoop();
  std::string Text = disassembleToString(P);
  Expected<Program> Q = assembleProgram(Text);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error();
  // Executions agree.
  RunResult A = runProgram(P, RunOptions());
  RunResult B = runProgram(*Q, RunOptions());
  EXPECT_EQ(A.Output, B.Output);
  // Disassembly is a fixpoint after one round.
  EXPECT_EQ(disassembleToString(*Q), Text);
}

TEST(Assembler, ParsesDataAndSymbols) {
  const char *Src = R"(
.data
tbl: .quad 10, 20, 30
buf: .zero 8
bs:  .byte 1, 2, 255

.func main
entry:
  ldi a0, =tbl
  ldq t0, 8(a0)
  out t0
  halt
)";
  Expected<Program> P = assembleProgram(Src);
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  RunResult R = runProgram(*P, RunOptions());
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], 20);
}

TEST(Assembler, WidthSuffixes) {
  const char *Src = R"(
.func main
entry:
  ldi t0, #300
  addb t1, t0, #1
  addh t2, t0, #1
  addw t3, t0, #1
  addq t4, t0, #1
  out t1
  out t2
  halt
)";
  Expected<Program> P = assembleProgram(Src);
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  RunResult R = runProgram(*P, RunOptions());
  // 300 = 0x12C; low byte 0x2C=44; 44+1=45. Halfword: 300+1=301.
  EXPECT_EQ(R.Output[0], 45);
  EXPECT_EQ(R.Output[1], 301);
}

TEST(Assembler, ImplicitFallthroughIsNextLabel) {
  const char *Src = R"(
.func main
entry:
  ldi t0, #0
  beq t0, yes
  out t0
  halt
yes:
  ldi t1, #1
  out t1
  halt
)";
  Expected<Program> P = assembleProgram(Src);
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  RunResult R = runProgram(*P, RunOptions());
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], 1); // branch taken to yes
}

struct AsmErrorCase {
  const char *Name;
  const char *Src;
  const char *ExpectSubstring;
};

class AssemblerErrorTest : public ::testing::TestWithParam<AsmErrorCase> {};

TEST_P(AssemblerErrorTest, Diagnoses) {
  Expected<Program> P = assembleProgram(GetParam().Src);
  ASSERT_FALSE(static_cast<bool>(P));
  EXPECT_NE(P.error().find(GetParam().ExpectSubstring), std::string::npos)
      << P.error();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrorTest,
    ::testing::Values(
        AsmErrorCase{"BadMnemonic", ".func main\n adq t0, t1, t2\n halt\n",
                     "unknown mnemonic"},
        AsmErrorCase{"BadRegister", ".func main\n add t0, t1, r99\n halt\n",
                     "bad register"},
        AsmErrorCase{"UndefLabel", ".func main\n br nowhere\n", "undefined"},
        AsmErrorCase{"UndefFunc", ".func main\n jsr nofn\n halt\n",
                     "undefined function"},
        AsmErrorCase{"UndefData", ".func main\n ldi t0, =nodata\n halt\n",
                     "undefined data label"},
        AsmErrorCase{"CodeOutsideFunc", "add t0, t1, t2\n", "outside"},
        AsmErrorCase{"MskRange", ".func main\n mskb t0, t1, #9\n halt\n",
                     "offset out of range"},
        AsmErrorCase{"FallsOffEnd", ".func main\n ldi t0, #1\n",
                     "falls off"},
        AsmErrorCase{"BadDirective", ".bogus\n", "unknown directive"},
        AsmErrorCase{"NoEntry", ".entry nope\n.func main\n halt\n",
                     "not defined"}),
    [](const ::testing::TestParamInfo<AsmErrorCase> &I) {
      return I.param.Name;
    });

TEST(Disassembler, EmitsExplicitBrForNonAdjacentFallthrough) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 1);
  F.br("far");
  F.block("mid");
  F.out(RegT0);
  F.halt();
  F.block("far");
  F.addi(RegT0, RegT0, 1);
  F.br("mid"); // mid is *before* far in layout
  Program P = PB.finish();
  std::string Text = disassembleToString(P);
  Expected<Program> Q = assembleProgram(Text);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error();
  RunResult A = runProgram(P, RunOptions());
  RunResult B = runProgram(*Q, RunOptions());
  EXPECT_EQ(A.Output, B.Output);
  ASSERT_EQ(A.Output.size(), 1u);
  EXPECT_EQ(A.Output[0], 2);
}
