//===- tests/FrontendTest.cpp - Binary frontend unit tests --------------------==//
//
// The RV32I binary frontend, bottom to top: ELF parse rejections over
// systematically corrupted headers, per-mnemonic decode goldens (encodings
// produced by the independent fixture assembler, tests/fixtures/rv32/
// rvasm.py), strict-decode rejections for everything outside RV32I, lifter
// semantics differentially checked against both a C++ model and hand-built
// IR, and the checked-in fixtures: Verifier-clean, correct oracles, and
// disassemble -> reassemble round-trips that preserve the structural hash.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "asm/Disassembler.h"
#include "frontend/ElfFile.h"
#include "frontend/Lifter.h"
#include "frontend/Rv32Decoder.h"
#include "program/Verifier.h"
#include "sim/Interpreter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

using namespace og;

namespace {

std::string fixture(const std::string &Name) {
  return std::string(OG_RV32_FIXTURE_DIR) + "/" + Name;
}

// --- Synthetic ELF images -------------------------------------------------
//
// Small hand-rolled ELF32 writer so parse-rejection and lifter-semantics
// tests need no files on disk. Layout: ehdr, phdrs, text payload, data
// payload; no section headers.

void putU16(std::vector<uint8_t> &B, size_t Off, uint16_t V) {
  B[Off] = V & 0xFF;
  B[Off + 1] = V >> 8;
}

void putU32(std::vector<uint8_t> &B, size_t Off, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B[Off + I] = (V >> (8 * I)) & 0xFF;
}

struct TestElf {
  std::vector<uint32_t> Text;
  std::vector<uint8_t> Data;
  uint32_t TextVaddr = 0x10000;
  uint32_t DataVaddr = 0x11000;
  uint32_t Entry = 0x10000;
  uint32_t DataMemSize = 0; ///< 0 = Data.size(); larger adds BSS
};

std::vector<uint8_t> elfBytes(const TestElf &T) {
  const uint32_t DataMem =
      T.DataMemSize ? T.DataMemSize : static_cast<uint32_t>(T.Data.size());
  const uint16_t Phnum = DataMem ? 2 : 1;
  const uint32_t TextOff = 52 + 32u * Phnum;
  const uint32_t DataOff = TextOff + 4 * static_cast<uint32_t>(T.Text.size());

  std::vector<uint8_t> B(DataOff + T.Data.size(), 0);
  B[0] = 0x7F;
  B[1] = 'E';
  B[2] = 'L';
  B[3] = 'F';
  B[4] = 1; // ELFCLASS32
  B[5] = 1; // little-endian
  B[6] = 1; // EV_CURRENT
  putU16(B, 16, 2);   // ET_EXEC
  putU16(B, 18, 243); // EM_RISCV
  putU32(B, 20, 1);
  putU32(B, 24, T.Entry);
  putU32(B, 28, 52); // phoff
  putU16(B, 40, 52); // ehsize
  putU16(B, 42, 32); // phentsize
  putU16(B, 44, Phnum);

  auto phdr = [&B](size_t Off, uint32_t FileOff, uint32_t Vaddr,
                   uint32_t Filesz, uint32_t Memsz, uint32_t Flags) {
    putU32(B, Off + 0, 1); // PT_LOAD
    putU32(B, Off + 4, FileOff);
    putU32(B, Off + 8, Vaddr);
    putU32(B, Off + 12, Vaddr);
    putU32(B, Off + 16, Filesz);
    putU32(B, Off + 20, Memsz);
    putU32(B, Off + 24, Flags);
    putU32(B, Off + 28, 4);
  };
  const uint32_t TextBytes = 4 * static_cast<uint32_t>(T.Text.size());
  phdr(52, TextOff, T.TextVaddr, TextBytes, TextBytes, /*R+X*/ 5);
  if (Phnum == 2)
    phdr(84, DataOff, T.DataVaddr, static_cast<uint32_t>(T.Data.size()),
         DataMem, /*R+W*/ 6);

  for (size_t I = 0; I < T.Text.size(); ++I)
    putU32(B, TextOff + 4 * I, T.Text[I]);
  std::copy(T.Data.begin(), T.Data.end(), B.begin() + DataOff);
  return B;
}

// --- RV32I encoders (synthesis only) --------------------------------------
//
// Decode *correctness* is pinned by the golden table below, whose words
// come from the independent Python assembler; these encoders only build
// programs for the lifter-semantics tests.

uint32_t encR(uint32_t F7, uint32_t Rs2, uint32_t Rs1, uint32_t F3,
              uint32_t Rd, uint32_t Opc) {
  return (F7 << 25) | (Rs2 << 20) | (Rs1 << 15) | (F3 << 12) | (Rd << 7) |
         Opc;
}

uint32_t encI(uint32_t Imm, uint32_t Rs1, uint32_t F3, uint32_t Rd,
              uint32_t Opc) {
  return ((Imm & 0xFFF) << 20) | (Rs1 << 15) | (F3 << 12) | (Rd << 7) | Opc;
}

uint32_t encS(uint32_t Imm, uint32_t Rs2, uint32_t Rs1, uint32_t F3) {
  return (((Imm >> 5) & 0x7F) << 25) | (Rs2 << 20) | (Rs1 << 15) |
         (F3 << 12) | ((Imm & 0x1F) << 7) | 0x23;
}

uint32_t addi(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(static_cast<uint32_t>(Imm), Rs1, 0, Rd, 0x13);
}
uint32_t lui(uint32_t Rd, uint32_t Imm20) {
  return (Imm20 << 12) | (Rd << 7) | 0x37;
}
uint32_t printA0() { return encI(1, 0, 0, 17, 0x13); } // addi a7, x0, 1
uint32_t exitA7() { return encI(93, 0, 0, 17, 0x13); } // addi a7, x0, 93
constexpr uint32_t Ecall = 0x00000073;
constexpr uint32_t Ebreak = 0x00100073;

/// Builds, parses, lifts, verifies, and runs a synthetic text-only binary;
/// returns the OUT stream. The program must halt on its own.
std::vector<int64_t> runText(const std::vector<uint32_t> &Text,
                             const std::vector<uint8_t> &Data = {}) {
  TestElf T;
  T.Text = Text;
  T.Data = Data;
  Expected<ElfFile> E = ElfFile::parse(elfBytes(T));
  EXPECT_TRUE(bool(E)) << (E ? "" : E.error());
  if (!E)
    return {};
  Expected<LiftedProgram> L = liftElf(*E);
  EXPECT_TRUE(bool(L)) << (L ? "" : L.error());
  if (!L)
    return {};
  std::string Diag;
  EXPECT_TRUE(verifyProgram(L->Prog, &Diag)) << Diag;
  RunOptions O;
  RunResult R = runProgram(L->Prog, O);
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.Message;
  return R.Output;
}

std::string liftError(const std::vector<uint32_t> &Text) {
  TestElf T;
  T.Text = Text;
  Expected<ElfFile> E = ElfFile::parse(elfBytes(T));
  EXPECT_TRUE(bool(E)) << (E ? "" : E.error());
  if (!E)
    return {};
  Expected<LiftedProgram> L = liftElf(*E);
  EXPECT_FALSE(bool(L)) << "expected a lift failure";
  return L ? std::string() : L.error();
}

} // namespace

// --- ELF parsing ----------------------------------------------------------

namespace {

/// A well-formed single-segment image the corruption tests mutate.
std::vector<uint8_t> goodElf() {
  TestElf T;
  T.Text = {exitA7(), Ecall, Ebreak};
  return elfBytes(T);
}

std::string parseError(std::vector<uint8_t> Bytes) {
  Expected<ElfFile> E = ElfFile::parse(std::move(Bytes));
  EXPECT_FALSE(bool(E)) << "expected a parse failure";
  return E ? std::string() : E.error();
}

} // namespace

TEST(ElfParse, GoodImageParses) {
  Expected<ElfFile> E = ElfFile::parse(goodElf());
  ASSERT_TRUE(bool(E)) << (E ? "" : E.error());
  EXPECT_EQ(E->entry(), 0x10000u);
  ASSERT_EQ(E->segments().size(), 1u);
  EXPECT_TRUE(E->segments()[0].isExec());
  EXPECT_EQ(E->segments()[0].Vaddr, 0x10000u);
  EXPECT_EQ(E->segments()[0].FileSize, 12u);
}

TEST(ElfParse, TruncatedFile) {
  std::vector<uint8_t> B = goodElf();
  B.resize(10);
  EXPECT_NE(parseError(B).find("too small"), std::string::npos);
}

TEST(ElfParse, BadMagic) {
  std::vector<uint8_t> B = goodElf();
  B[1] = 'X';
  EXPECT_NE(parseError(B).find("bad magic"), std::string::npos);
}

TEST(ElfParse, Rejects64Bit) {
  std::vector<uint8_t> B = goodElf();
  B[4] = 2; // ELFCLASS64
  EXPECT_NE(parseError(B).find("ELFCLASS32"), std::string::npos);
}

TEST(ElfParse, RejectsBigEndian) {
  std::vector<uint8_t> B = goodElf();
  B[5] = 2;
  EXPECT_NE(parseError(B).find("little-endian"), std::string::npos);
}

TEST(ElfParse, RejectsSharedObject) {
  std::vector<uint8_t> B = goodElf();
  B[16] = 3; // ET_DYN
  EXPECT_NE(parseError(B).find("ET_EXEC"), std::string::npos);
}

TEST(ElfParse, RejectsWrongMachine) {
  std::vector<uint8_t> B = goodElf();
  B[18] = 62; // EM_X86_64
  EXPECT_NE(parseError(B).find("EM_RISCV"), std::string::npos);
}

TEST(ElfParse, RejectsMissingSegments) {
  std::vector<uint8_t> B = goodElf();
  putU16(B, 44, 0); // phnum = 0
  EXPECT_NE(parseError(B).find("no program headers"), std::string::npos);
}

TEST(ElfParse, RejectsPhdrTablePastEof) {
  std::vector<uint8_t> B = goodElf();
  putU32(B, 28, static_cast<uint32_t>(B.size())); // phoff at EOF
  EXPECT_NE(parseError(B).find("past end of file"), std::string::npos);
}

TEST(ElfParse, RejectsFileszOverMemsz) {
  std::vector<uint8_t> B = goodElf();
  putU32(B, 52 + 20, 4); // memsz < filesz (12)
  EXPECT_NE(parseError(B).find("filesz exceeds memsz"), std::string::npos);
}

TEST(ElfParse, RejectsSegmentPastEof) {
  std::vector<uint8_t> B = goodElf();
  putU32(B, 52 + 16, 0x10000); // filesz way past the file
  putU32(B, 52 + 20, 0x10000);
  EXPECT_NE(parseError(B).find("past end of file"), std::string::npos);
}

TEST(ElfParse, RejectsOverlappingSegments) {
  TestElf T;
  T.Text = {exitA7(), Ecall, Ebreak};
  T.Data = {1, 2, 3, 4};
  T.DataVaddr = T.TextVaddr + 4; // inside text
  EXPECT_NE(parseError(elfBytes(T)).find("overlap"), std::string::npos);
}

TEST(ElfParse, RejectsEntryOutsideExec) {
  TestElf T;
  T.Text = {exitA7(), Ecall, Ebreak};
  T.Data = {1, 2, 3, 4};
  T.Entry = T.DataVaddr; // data segment is not executable
  EXPECT_NE(parseError(elfBytes(T)).find("entry point"), std::string::npos);
}

TEST(ElfParse, LoadErrorNamesThePath) {
  Expected<ElfFile> E = ElfFile::load("/nonexistent/no.elf");
  ASSERT_FALSE(bool(E));
  EXPECT_NE(E.error().find("/nonexistent/no.elf"), std::string::npos);
}

TEST(ElfParse, FixtureSymbolsAreVisible) {
  Expected<ElfFile> E = ElfFile::load(fixture("checksum.elf"));
  ASSERT_TRUE(bool(E)) << (E ? "" : E.error());
  bool SawStart = false, SawAdler = false;
  for (const ElfSymbol &S : E->symbols()) {
    if (S.Name == "_start" && S.isFunc())
      SawStart = true;
    if (S.Name == "adler" && S.isFunc())
      SawAdler = true;
  }
  EXPECT_TRUE(SawStart);
  EXPECT_TRUE(SawAdler);
}

// --- Decoder goldens ------------------------------------------------------
//
// One row per RV32I mnemonic (several for the immediate corner cases).
// The words were produced by tests/fixtures/rv32/rvasm.py, an independent
// encoder, so a shared encode/decode bug cannot hide here.

TEST(Rv32Decode, Goldens) {
  static const struct {
    uint32_t Word;
    const char *Str;
  } Rows[] = {
      {0xfffff2b7, "lui x5, -4096"},
      {0x123450b7, "lui x1, 305418240"},
      {0x00001517, "auipc x10, 4096"},
      {0x801ff0ef, "jal x1, -2048"},
      {0x7ffff06f, "jal x0, 1048574"},
      {0x00008067, "jalr x0, 0(x1)"},
      {0xffc302e7, "jalr x5, -4(x6)"},
      {0x80208063, "beq x1, x2, -4096"},
      {0x7e419fe3, "bne x3, x4, 4094"},
      {0xfe62cfe3, "blt x5, x6, -2"},
      {0x0083d463, "bge x7, x8, 8"},
      {0x00a4e863, "bltu x9, x10, 16"},
      {0xfec5f8e3, "bgeu x11, x12, -16"},
      {0xfff10283, "lb x5, -1(x2)"},
      {0x00219303, "lh x6, 2(x3)"},
      {0x7ff22383, "lw x7, 2047(x4)"},
      {0x8002c403, "lbu x8, -2048(x5)"},
      {0x00035483, "lhu x9, 0(x6)"},
      {0xfea10fa3, "sb x10, -1(x2)"},
      {0x02b19523, "sh x11, 42(x3)"},
      {0x80c22023, "sw x12, -2048(x4)"},
      {0xfff30293, "addi x5, x6, -1"},
      {0x06442393, "slti x7, x8, 100"},
      {0x7ff53493, "sltiu x9, x10, 2047"},
      {0xf0064593, "xori x11, x12, -256"},
      {0x00776693, "ori x13, x14, 7"},
      {0x0ff87793, "andi x15, x16, 255"},
      {0x00091893, "slli x17, x18, 0"},
      {0x01f91893, "slli x17, x18, 31"},
      {0x001a5993, "srli x19, x20, 1"},
      {0x41fb5a93, "srai x21, x22, 31"},
      {0x003100b3, "add x1, x2, x3"},
      {0x40628233, "sub x4, x5, x6"},
      {0x009413b3, "sll x7, x8, x9"},
      {0x00c5a533, "slt x10, x11, x12"},
      {0x00f736b3, "sltu x13, x14, x15"},
      {0x0128c833, "xor x16, x17, x18"},
      {0x015a59b3, "srl x19, x20, x21"},
      {0x418bdb33, "sra x22, x23, x24"},
      {0x01bd6cb3, "or x25, x26, x27"},
      {0x01eefe33, "and x28, x29, x30"},
      {0x0000000f, "fence"},
      {0x0ff0000f, "fence"}, // fence iorw, iorw
      {0x00000073, "ecall"},
      {0x00100073, "ebreak"},
  };
  for (const auto &Row : Rows) {
    Expected<RvInst> I = decodeRv32(Row.Word);
    ASSERT_TRUE(bool(I)) << Row.Str << ": " << (I ? "" : I.error());
    EXPECT_EQ(rvInstStr(*I), Row.Str);
  }
}

TEST(Rv32Decode, UnusedFieldsAreZero) {
  Expected<RvInst> Lui = decodeRv32(0x123450b7);
  ASSERT_TRUE(bool(Lui));
  EXPECT_EQ(Lui->Rs1, 0);
  EXPECT_EQ(Lui->Rs2, 0);
  Expected<RvInst> Eb = decodeRv32(0x00100073); // ebreak has imm bit 20 set
  ASSERT_TRUE(bool(Eb));
  EXPECT_EQ(Eb->Rd, 0);
  EXPECT_EQ(Eb->Rs1, 0);
  EXPECT_EQ(Eb->Rs2, 0);
}

TEST(Rv32Decode, RejectsEverythingOutsideRv32i) {
  static const struct {
    uint32_t Word;
    const char *What;
  } Rows[] = {
      {0x00000001, "not a 32-bit encoding"}, // RVC quadrant
      {0x0000001f, ">32-bit encoding"},      // 48-bit prefix
      {0x00001067, "jalr requires funct3=0"},
      {0x00002063, "reserved branch funct3"},
      {0x00003003, "reserved load funct3"},
      {0x00006003, "reserved load funct3"},
      {0x00003023, "reserved store funct3"},
      {0x02001013, "slli requires funct7=0"},
      {0x20005013, "reserved shift funct7"},
      {0x02000033, "RV32M"},                 // mul
      {0x04000033, "reserved OP funct7"},
      {0x40001033, "reserved OP encoding"},  // funct7=0x20, funct3=1
      {0x0000100f, "fence.i"},
      {0x0000200f, "reserved misc-mem"},
      {0x00001073, "CSR"},                   // csrrw
      {0x00200073, "reserved SYSTEM"},
      {0x0000002f, "unknown major opcode"},  // AMO (A extension)
  };
  for (const auto &Row : Rows) {
    Expected<RvInst> I = decodeRv32(Row.Word);
    ASSERT_FALSE(bool(I)) << "decoded " << std::hex << Row.Word;
    EXPECT_NE(I.error().find("cannot decode word 0x"), std::string::npos)
        << I.error();
    EXPECT_NE(I.error().find(Row.What), std::string::npos) << I.error();
  }
}

// --- Lifter semantics -----------------------------------------------------
//
// Each case builds a synthetic binary around one RV32I semantic subtlety
// and checks the lifted program's OUT stream against the architectural
// result. Failures here mean the translation, not the fixture, is wrong.

TEST(Lifter, RegisterShiftMasksTo5Bits) {
  // RV32 shifts use the low 5 bits of rs2; the IR shifts use 6. sll by 33
  // must behave as a shift by 1.
  std::vector<int64_t> Out = runText({
      addi(5, 0, 1),            // t0 = 1
      addi(6, 0, 33),           // t1 = 33
      encR(0, 6, 5, 1, 10, 0x33), // sll a0, t0, t1
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  });
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 2);
}

TEST(Lifter, SraIsArithmeticAndMasked) {
  std::vector<int64_t> Out = runText({
      addi(5, 0, -8),           // t0 = -8
      addi(6, 0, 33),           // shift amount 33 -> 1
      encR(0x20, 6, 5, 5, 10, 0x33), // sra a0, t0, t1
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  });
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], -4);
}

TEST(Lifter, SignedAndUnsignedLoads) {
  // data[0] = 0xFF: lb sees -1, lbu sees 255. data[4..5] = 0x8000: lh
  // sees -32768, lhu sees 32768.
  const uint32_t LuiData = lui(5, 0x11); // t0 = 0x11000
  std::vector<int64_t> Out = runText(
      {
          LuiData,
          encI(0, 5, 0, 10, 0x03), // lb a0, 0(t0)
          printA0(), Ecall,
          encI(0, 5, 4, 10, 0x03), // lbu a0, 0(t0)
          printA0(), Ecall,
          encI(4, 5, 1, 10, 0x03), // lh a0, 4(t0)
          printA0(), Ecall,
          encI(4, 5, 5, 10, 0x03), // lhu a0, 4(t0)
          printA0(), Ecall,
          exitA7(), Ecall, Ebreak,
      },
      {0xFF, 0, 0, 0, 0x00, 0x80});
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0], -1);
  EXPECT_EQ(Out[1], 255);
  EXPECT_EQ(Out[2], -32768);
  EXPECT_EQ(Out[3], 32768);
}

TEST(Lifter, StoresAreWidthCorrect) {
  // sh then lw: the upper half of the word must be untouched.
  const uint32_t LuiData = lui(5, 0x11);
  std::vector<int64_t> Out = runText(
      {
          LuiData,
          addi(6, 0, -1),          // t1 = 0xFFFFFFFF
          encS(0, 6, 5, 1),        // sh t1, 0(t0)
          encI(0, 5, 2, 10, 0x03), // lw a0, 0(t0)
          printA0(), Ecall,
          exitA7(), Ecall, Ebreak,
      },
      {0, 0, 0x12, 0x40});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 0x4012FFFF);
}

TEST(Lifter, UnsignedComparisons) {
  std::vector<int64_t> Out = runText({
      addi(5, 0, -1),                // t0 = 0xFFFFFFFF
      addi(6, 0, 1),                 // t1 = 1
      encR(0, 6, 5, 3, 10, 0x33),    // sltu a0, t0, t1 -> 0 (max unsigned)
      printA0(), Ecall,
      encR(0, 6, 5, 2, 10, 0x33),    // slt a0, t0, t1 -> 1 (signed -1)
      printA0(), Ecall,
      encI(0, 5, 3, 10, 0x13),       // sltiu a0, t0, 0 -> 0
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  });
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0], 0);
  EXPECT_EQ(Out[1], 1);
  EXPECT_EQ(Out[2], 0);
}

TEST(Lifter, X0WritesAreDiscarded) {
  std::vector<int64_t> Out = runText({
      addi(0, 0, 55),             // addi x0, x0, 55 — must not stick
      encR(0, 0, 0, 0, 10, 0x33), // add a0, x0, x0
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  });
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 0);
}

TEST(Lifter, AuipcFoldsThePc) {
  // auipc at 0x10000 with imm 0x1 -> 0x11000, statically.
  std::vector<int64_t> Out = runText({
      (0x1u << 12) | (10u << 7) | 0x17, // auipc a0, 0x1
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  });
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], 0x11000);
}

TEST(Lifter, Add32WrapsAndSignExtends) {
  // 0x7FFFFFFF + 1 overflows to INT32_MIN, not to 0x80000000 as a
  // positive 64-bit value.
  std::vector<int64_t> Out = runText({
      lui(5, 0x80000),            // t0 = 0x80000000 (sext: INT32_MIN)
      addi(5, 5, -1),             // t0 = 0x7FFFFFFF
      addi(6, 0, 1),
      encR(0, 6, 5, 0, 10, 0x33), // add a0, t0, t1
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  });
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], INT32_MIN);
}

TEST(Lifter, UnknownSyscallHalts) {
  std::vector<int64_t> Out = runText({
      addi(17, 0, 5), // a7 = 5: neither exit nor print
      Ecall,
      addi(10, 0, 9), // must never execute
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  });
  EXPECT_TRUE(Out.empty());
}

TEST(Lifter, RejectsTpRegister) {
  std::string Err = liftError({
      addi(4, 0, 1), // x4 (tp) backs the lifter's scratch register
      exitA7(), Ecall, Ebreak,
  });
  EXPECT_NE(Err.find("x4"), std::string::npos) << Err;
}

TEST(Lifter, ReportsIndirectJumpsAsBailOut) {
  std::string Err = liftError({
      lui(5, 0x10),
      encI(0, 5, 0, 0, 0x67), // jalr x0, 0(t0): computed jump
      exitA7(), Ecall, Ebreak,
  });
  EXPECT_NE(Err.find("indirect"), std::string::npos) << Err;
  EXPECT_NE(Err.find("0x10004"), std::string::npos) << Err;
}

TEST(Lifter, ReportsDecodeErrorsWithContext) {
  std::string Err = liftError({
      addi(5, 0, 1),
      0x02000033, // mul: not RV32I
      exitA7(), Ecall, Ebreak,
  });
  EXPECT_NE(Err.find("cannot decode"), std::string::npos) << Err;
  EXPECT_NE(Err.find("0x10004"), std::string::npos) << Err;
}

TEST(Lifter, MatchesHandBuiltIr) {
  // The same computation twice — lifted RV32I vs. hand-built IR through
  // the assembler — must produce identical OUT streams: sum of 1..10 via
  // a loop, then the 5-bit-masked shift of the total.
  std::vector<int64_t> Lifted = runText({
      addi(5, 0, 0),                 // t0 = sum
      addi(6, 0, 1),                 // t1 = i
      addi(7, 0, 10),                // t2 = limit
      // loop:
      encR(0, 6, 5, 0, 5, 0x33),     // add t0, t0, t1
      addi(6, 6, 1),
      // bge t2, t1 taken back to loop (offset -8)
      0xFE63DCE3,                    // bge t2, t1, -8
      encR(0, 6, 5, 1, 10, 0x33),    // sll a0, t0, t1 (t1 = 11 -> shift 11)
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  });

  const char *Src = R"(
    .func main
    entry:
      ldi   t0, #0
      ldi   t1, #1
      ldi   t2, #10
    loop:
      addw  t0, t0, t1
      addw  t1, t1, #1
      cmplew t3, t1, t2
      bne   t3, loop, after
    after:
      andw  t4, t1, #31
      sllw  a0, t0, t4
      out   a0
      halt
  )";
  Expected<Program> HB = assembleProgram(Src);
  ASSERT_TRUE(bool(HB)) << (HB ? "" : HB.error());
  RunOptions O;
  RunResult R = runProgram(*HB, O);
  ASSERT_EQ(R.Status, RunStatus::Halted) << R.Message;
  EXPECT_EQ(Lifted, R.Output);
}

TEST(Lifter, BssIsZeroFilled) {
  // One data byte in the file, three more of BSS; all four must read 0
  // after the first is overwritten... rather: file byte is 0xAA, BSS
  // bytes must be zero.
  TestElf T;
  T.Text = {
      lui(5, 0x11),
      encI(0, 5, 4, 10, 0x03), // lbu a0, 0(t0) -> 0xAA
      printA0(), Ecall,
      encI(3, 5, 4, 10, 0x03), // lbu a0, 3(t0) -> BSS, 0
      printA0(), Ecall,
      exitA7(), Ecall, Ebreak,
  };
  T.Data = {0xAA};
  T.DataMemSize = 4;
  Expected<ElfFile> E = ElfFile::parse(elfBytes(T));
  ASSERT_TRUE(bool(E)) << (E ? "" : E.error());
  Expected<LiftedProgram> L = liftElf(*E);
  ASSERT_TRUE(bool(L)) << (L ? "" : L.error());
  RunOptions O;
  RunResult R = runProgram(L->Prog, O);
  ASSERT_EQ(R.Status, RunStatus::Halted) << R.Message;
  ASSERT_EQ(R.Output.size(), 2u);
  EXPECT_EQ(R.Output[0], 0xAA);
  EXPECT_EQ(R.Output[1], 0);
}

TEST(Lifter, StatsCountTheExpansion) {
  TestElf T;
  T.Text = {addi(5, 0, 1), exitA7(), Ecall, Ebreak};
  Expected<ElfFile> E = ElfFile::parse(elfBytes(T));
  ASSERT_TRUE(bool(E)) << (E ? "" : E.error());
  Expected<LiftedProgram> L = liftElf(*E);
  ASSERT_TRUE(bool(L)) << (L ? "" : L.error());
  EXPECT_EQ(L->Stats.Functions, 1u);
  EXPECT_EQ(L->Stats.Instructions, 4u);
  EXPECT_GT(L->Stats.IrInstructions, L->Stats.Instructions);
  EXPECT_GE(L->Stats.Blocks, 4u); // entry + 3 ecall dispatch blocks
}

// --- Fixtures -------------------------------------------------------------

namespace {

struct FixtureCase {
  const char *File;
  int64_t Selector;
  int64_t Units;
  std::vector<int64_t> Output;
};

/// The expected OUT streams double as oracles: sieve prints pi(N), strhash
/// prints fib sums, checksum an Adler-style fold — all independently
/// checkable.
const FixtureCase Fixtures[] = {
    {"checksum.elf", 1, 2, {1580066464}},
    {"sieve.elf", 0, 1, {97}},    // pi(512)
    {"sieve.elf", 1, 1, {309}},   // pi(2048)
    {"strhash.elf", 0, 1, {55, 1533324956}}, // fib(10) = 55
};

} // namespace

TEST(Fixtures, LiftVerifyAndRun) {
  for (const FixtureCase &C : Fixtures) {
    SCOPED_TRACE(C.File);
    Expected<LiftedProgram> L = liftElfFile(fixture(C.File));
    ASSERT_TRUE(bool(L)) << (L ? "" : L.error());
    std::string Diag;
    EXPECT_TRUE(verifyProgram(L->Prog, &Diag)) << Diag;
    RunOptions O;
    O.ArgRegs = {C.Selector, C.Units};
    RunResult R = runProgram(L->Prog, O);
    ASSERT_EQ(R.Status, RunStatus::Halted) << R.Message;
    EXPECT_EQ(R.Output, C.Output);
  }
}

TEST(Fixtures, DisassembleReassembleRoundTrip) {
  for (const char *File : {"checksum.elf", "sieve.elf", "strhash.elf"}) {
    SCOPED_TRACE(File);
    Expected<LiftedProgram> L = liftElfFile(fixture(File));
    ASSERT_TRUE(bool(L)) << (L ? "" : L.error());
    const std::string Text = disassembleToString(L->Prog);
    Expected<Program> Back = assembleProgram(Text);
    ASSERT_TRUE(bool(Back)) << (Back ? "" : Back.error());
    EXPECT_EQ(structuralProgramHash(L->Prog), structuralProgramHash(*Back))
        << "round-trip changed the structural hash";
  }
}

TEST(Fixtures, LoadProgramInputSniffsElf) {
  // Both the explicit elf: spec and a bare path to an ELF-magic file go
  // through the frontend and agree exactly.
  Expected<Program> A = loadProgramInput("elf:" + fixture("sieve.elf"));
  Expected<Program> B = loadProgramInput(fixture("sieve.elf"));
  ASSERT_TRUE(bool(A)) << (A ? "" : A.error());
  ASSERT_TRUE(bool(B)) << (B ? "" : B.error());
  EXPECT_EQ(structuralProgramHash(*A), structuralProgramHash(*B));
}

TEST(Fixtures, ElfWorkloadContract) {
  Workload W = makeWorkload("elf:" + fixture("checksum.elf"), 0.25);
  EXPECT_EQ(W.Name, "elf:" + fixture("checksum.elf"));
  ASSERT_EQ(W.Train.ArgRegs.size(), 2u);
  EXPECT_EQ(W.Train.ArgRegs[0], 0); // train selector
  EXPECT_EQ(W.Train.ArgRegs[1], 1); // one unit
  ASSERT_EQ(W.Ref.ArgRegs.size(), 2u);
  EXPECT_EQ(W.Ref.ArgRegs[0], 1);       // ref selector
  EXPECT_EQ(W.Ref.ArgRegs[1], 4);       // max(1, lround(0.25 * 16))
  std::string Diag;
  EXPECT_TRUE(verifyProgram(W.Prog, &Diag)) << Diag;

  RunResult R = runProgram(W.Prog, W.Train);
  EXPECT_EQ(R.Status, RunStatus::Halted) << R.Message;
}

TEST(Fixtures, MissingElfWorkloadThrows) {
  EXPECT_THROW(makeWorkload("elf:/nonexistent/no.elf"), std::runtime_error);
}
