//===- tests/DispatchTest.cpp - dispatch/superblock differential oracle ------==//
//
// The execution engine now has three ways to run a program — portable
// switch dispatch, computed-goto token threading, and the superblock fast
// path layered on either — all of which must be bit-identical in every
// observable: status, message, output stream, DynInsts, class/width and
// value-size histograms, block counts, and the exact record stream a
// trace sink sees (including the light records of windowed runs).
//
// The oracle here is a self-contained re-creation of the original nested
// interpreter: it walks Funcs[f].Blocks[b].Insts[i] directly, shares
// nothing with the engine but the Machine, evalAluOp, and the ISA tables,
// and is deliberately written for clarity over speed. Randomized programs
// (loops, calls, faults, fuel exhaustion, empty-block chains) are run
// through the oracle and through every engine configuration, and all
// results are compared field by field.
//
//===----------------------------------------------------------------------===//

#include "program/Builder.h"
#include "sim/ExecEngine.h"
#include "sim/Interpreter.h"
#include "sim/Superblock.h"
#include "support/MathExtras.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace og;

namespace {

uint64_t oracleSeed(uint64_t Default) { return seedFromEnv(Default); }

std::string seedTrace(uint64_t Seed) {
  return "reproduce with OGATE_SEED=" + std::to_string(Seed);
}

//===----------------------------------------------------------------------===//
// Reference interpreter (the oracle)
//===----------------------------------------------------------------------===//

/// Synthetic code layout, recomputed the way the original interpreter did:
/// instructions are 4 bytes, functions are laid out contiguously from
/// 0x1000, blocks in id order within each function.
struct RefLayout {
  std::vector<std::vector<size_t>> BlockBase;
  std::vector<uint64_t> FuncPcBase;

  explicit RefLayout(const Program &P) {
    BlockBase.resize(P.Funcs.size());
    FuncPcBase.resize(P.Funcs.size());
    uint64_t Pc = 0x1000;
    for (const Function &F : P.Funcs) {
      FuncPcBase[F.Id] = Pc;
      auto &Bases = BlockBase[F.Id];
      Bases.resize(F.Blocks.size());
      size_t N = 0;
      for (const BasicBlock &BB : F.Blocks) {
        Bases[BB.Id] = N;
        N += BB.Insts.size();
      }
      Pc += N * 4;
    }
  }

  uint64_t pcOf(int32_t Func, int32_t Block, int32_t Index) const {
    return FuncPcBase[Func] +
           (BlockBase[Func][Block] + static_cast<size_t>(Index)) * 4;
  }
};

struct RefFrame {
  int32_t Func, Block, Index;
  int64_t Saved[8]; ///< s0..s5, fp, sp (checked mode)
};

/// Runs \p P on the nested structure. When \p Trace is non-null, appends
/// one full record per executed instruction.
RunResult refRun(const Program &P, const RunOptions &Options,
                 std::vector<DynInst> *Trace) {
  RunResult Result;
  Machine M(Options.Machine);
  M.installData(Program::DataBase, P.Data);
  RefLayout Layout(P);

  ExecStats &Stats = Result.Stats;
  Stats.BlockCounts.resize(P.Funcs.size());
  for (const Function &F : P.Funcs)
    Stats.BlockCounts[F.Id].assign(F.Blocks.size(), 0);

  M.writeReg(RegSP, static_cast<int64_t>(M.memSize()) - 64);
  for (size_t I = 0; I < Options.ArgRegs.size() && I < NumArgRegs; ++I)
    M.writeReg(static_cast<Reg>(RegA0 + I), Options.ArgRegs[I]);

  std::vector<RefFrame> Frames;
  int32_t Func = P.EntryFunc;
  int32_t Block = P.Funcs[Func].EntryBlock;
  int32_t Index = 0;
  ++Stats.BlockCounts[Func][Block];

  uint64_t Fuel = Options.Fuel;
  size_t EmptyHops = 0;

  while (true) {
    const Function &F = P.Funcs[Func];
    const BasicBlock &BB = F.Blocks[Block];

    if (static_cast<size_t>(Index) >= BB.Insts.size()) {
      if (BB.FallthroughSucc == NoTarget) {
        Result.Status = RunStatus::Fault;
        Result.Message = "control fell off a block without successor";
        break;
      }
      if (++EmptyHops > F.Blocks.size() + 1) {
        Result.Status = RunStatus::Fault;
        Result.Message = "cycle of empty blocks";
        break;
      }
      Block = BB.FallthroughSucc;
      Index = 0;
      ++Stats.BlockCounts[Func][Block];
      continue;
    }
    EmptyHops = 0;

    if (Fuel == 0) {
      Result.Status = RunStatus::OutOfFuel;
      Result.Message = "dynamic instruction budget exhausted";
      break;
    }
    --Fuel;

    const Instruction &I = BB.Insts[Index];
    const OpInfo &Info = I.info();

    DynInst D;
    D.I = &I;
    D.Func = Func;
    D.Block = Block;
    D.Index = Index;
    D.Pc = Layout.pcOf(Func, Block, Index);
    D.SeqPc = D.Pc + 4;
    unsigned NSrc = I.numRegSources();
    D.NumSrcs = NSrc;
    for (unsigned S = 0; S < NSrc; ++S)
      D.SrcVals[S] = M.readReg(I.regSource(S));

    int64_t A = Info.ReadsRa ? M.readReg(I.Ra) : 0;
    int64_t B = I.UseImm ? I.Imm : (Info.ReadsRb ? M.readReg(I.Rb) : 0);

    int32_t NextFunc = Func, NextBlock = Block, NextIndex = Index + 1;
    bool Stop = false, Jumped = false;

    switch (I.Opc) {
    case Op::Ldi:
      D.Result = truncSignExtend(I.Imm, widthBytes(I.W));
      M.writeReg(I.Rd, D.Result);
      D.WroteDest = true;
      break;
    case Op::Msk: {
      unsigned Bytes = widthBytes(I.W);
      uint64_t Field = static_cast<uint64_t>(A) >> (8 * I.Imm);
      D.Result = static_cast<int64_t>(
          Bytes == 8 ? Field : Field & ((uint64_t(1) << (8 * Bytes)) - 1));
      M.writeReg(I.Rd, D.Result);
      D.WroteDest = true;
      break;
    }
    case Op::Ld: {
      uint64_t Addr = static_cast<uint64_t>(A + I.Imm);
      uint64_t Raw = M.loadBytes(Addr, widthBytes(I.W));
      D.Result =
          I.W == Width::W ? signExtend(Raw, 32) : static_cast<int64_t>(Raw);
      M.writeReg(I.Rd, D.Result);
      D.WroteDest = true;
      D.IsMem = true;
      D.MemAddr = Addr;
      break;
    }
    case Op::St: {
      uint64_t Addr = static_cast<uint64_t>(A + I.Imm);
      int64_t Value = M.readReg(I.Rb);
      M.storeBytes(Addr, widthBytes(I.W), static_cast<uint64_t>(Value));
      D.Result = truncSignExtend(Value, widthBytes(I.W));
      D.IsMem = true;
      D.MemAddr = Addr;
      break;
    }
    case Op::Br:
      NextBlock = I.Target;
      NextIndex = 0;
      Jumped = true;
      break;
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Ble:
    case Op::Bgt:
    case Op::Bge: {
      bool Taken;
      switch (I.Opc) {
      case Op::Beq: Taken = A == 0; break;
      case Op::Bne: Taken = A != 0; break;
      case Op::Blt: Taken = A < 0; break;
      case Op::Ble: Taken = A <= 0; break;
      case Op::Bgt: Taken = A > 0; break;
      default: Taken = A >= 0; break;
      }
      D.IsBranch = true;
      D.Taken = Taken;
      NextBlock = Taken ? I.Target : BB.FallthroughSucc;
      NextIndex = 0;
      Jumped = true;
      break;
    }
    case Op::Jsr: {
      if (Frames.size() >= Options.MaxCallDepth) {
        Result.Status = RunStatus::Fault;
        Result.Message = "call depth limit exceeded";
        Stop = true;
        break;
      }
      RefFrame Fr{Func, Block, Index + 1, {}};
      if (Options.CheckCalleeSaved) {
        int Slot = 0;
        for (Reg R = RegS0; R <= RegFP; ++R)
          Fr.Saved[Slot++] = M.readReg(R);
        Fr.Saved[Slot] = M.readReg(RegSP);
      }
      Frames.push_back(Fr);
      NextFunc = I.Callee;
      NextBlock = P.Funcs[I.Callee].EntryBlock;
      NextIndex = 0;
      Jumped = true;
      break;
    }
    case Op::Ret: {
      if (Frames.empty()) {
        Stop = true;
        Result.Status = RunStatus::Halted;
        break;
      }
      RefFrame Fr = Frames.back();
      Frames.pop_back();
      if (Options.CheckCalleeSaved) {
        int Slot = 0;
        bool Intact = true;
        for (Reg R = RegS0; R <= RegFP; ++R)
          Intact &= Fr.Saved[Slot++] == M.readReg(R);
        Intact &= Fr.Saved[Slot] == M.readReg(RegSP);
        if (!Intact) {
          Result.Status = RunStatus::CalleeSaveViolation;
          Result.Message =
              "callee-saved register clobbered by " + P.Funcs[Func].Name;
          Stop = true;
          break;
        }
      }
      NextFunc = Fr.Func;
      NextBlock = Fr.Block;
      NextIndex = Fr.Index;
      break;
    }
    case Op::Halt:
      Stop = true;
      Result.Status = RunStatus::Halted;
      break;
    case Op::Out:
      M.Output.push_back(A);
      break;
    case Op::Nop:
      break;
    default: {
      int64_t OldRd = Info.RdIsInput ? M.readReg(I.Rd) : 0;
      D.Result = evalAluOp(I.Opc, I.W, A, B, OldRd);
      M.writeReg(I.Rd, D.Result);
      D.WroteDest = true;
      break;
    }
    }

    if (M.faulted()) {
      Result.Status = RunStatus::Fault;
      Result.Message = M.faultMessage();
      Stop = true;
    }

    ++Stats.DynInsts;
    ++Stats.ClassWidth[static_cast<unsigned>(Info.Class)]
                      [static_cast<unsigned>(I.W)];
    if (D.WroteDest || I.Opc == Op::St)
      ++Stats.ValueSizeBytes[significantBytes(D.Result)];

    if (Trace) {
      D.NextPc =
          Stop ? D.Pc + 4 : Layout.pcOf(NextFunc, NextBlock, NextIndex);
      Trace->push_back(D);
    }

    if (Stop)
      break;

    Func = NextFunc;
    Block = NextBlock;
    Index = NextIndex;
    if (Jumped && NextIndex == 0)
      ++Stats.BlockCounts[Func][Block];
  }

  Result.Output = std::move(M.Output);
  return Result;
}

//===----------------------------------------------------------------------===//
// Engine harness + comparators
//===----------------------------------------------------------------------===//

/// Collects every record and the batch-length sequence (window flushes
/// produce short batches mid-stream; those boundaries must match too).
class VecSink final : public TraceSink {
public:
  std::vector<DynInst> Records;
  std::vector<size_t> BatchLens;

  void onBatch(const DynInst *Batch, size_t N) override {
    Records.insert(Records.end(), Batch, Batch + N);
    BatchLens.push_back(N);
  }
};

struct EngineRun {
  RunResult R;
  std::vector<DynInst> Trace;
  std::vector<size_t> BatchLens;
};

EngineRun engineRun(const DecodedProgram &DP, RunOptions O, DispatchMode M,
                    const SuperblockPlan *Plan, bool WithSink,
                    const std::vector<SampleWindow> *Windows = nullptr) {
  EngineRun E;
  VecSink Sink;
  O.Dispatch = M;
  O.Superblocks = Plan;
  O.Sink = WithSink ? &Sink : nullptr;
  E.R = Windows ? runProgramWindowed(DP, O, *Windows) : runProgram(DP, O);
  E.Trace = std::move(Sink.Records);
  E.BatchLens = std::move(Sink.BatchLens);
  return E;
}

void expectSameResult(const RunResult &A, const RunResult &B,
                      const std::string &What) {
  EXPECT_EQ(static_cast<int>(A.Status), static_cast<int>(B.Status)) << What;
  EXPECT_EQ(A.Message, B.Message) << What;
  EXPECT_EQ(A.Stats.DynInsts, B.Stats.DynInsts) << What;
  EXPECT_EQ(A.Output, B.Output) << What;
  EXPECT_EQ(A.Stats.BlockCounts, B.Stats.BlockCounts) << What;
  EXPECT_EQ(0, memcmp(A.Stats.ClassWidth, B.Stats.ClassWidth,
                      sizeof(A.Stats.ClassWidth)))
      << What << ": ClassWidth histograms differ";
  EXPECT_EQ(0, memcmp(A.Stats.ValueSizeBytes, B.Stats.ValueSizeBytes,
                      sizeof(A.Stats.ValueSizeBytes)))
      << What << ": ValueSizeBytes histograms differ";
}

bool sameRecord(const DynInst &A, const DynInst &B) {
  if (A.I != B.I || A.Func != B.Func || A.Block != B.Block ||
      A.Index != B.Index || A.Pc != B.Pc || A.NextPc != B.NextPc ||
      A.SeqPc != B.SeqPc || A.NumSrcs != B.NumSrcs ||
      A.WroteDest != B.WroteDest || A.Result != B.Result ||
      A.IsMem != B.IsMem || A.MemAddr != B.MemAddr ||
      A.IsBranch != B.IsBranch || A.Taken != B.Taken)
    return false;
  for (unsigned S = 0; S < A.NumSrcs; ++S)
    if (A.SrcVals[S] != B.SrcVals[S])
      return false;
  return true;
}

void expectSameTrace(const std::vector<DynInst> &A,
                     const std::vector<DynInst> &B, const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t I = 0; I < A.size(); ++I) {
    if (!sameRecord(A[I], B[I])) {
      ADD_FAILURE() << What << ": record " << I << " differs (pc "
                    << A[I].Pc << " vs " << B[I].Pc << ", result "
                    << A[I].Result << " vs " << B[I].Result << ")";
      return;
    }
  }
}

void expectSameEngineCounters(const EngineCounters &A,
                              const EngineCounters &B,
                              const std::string &What) {
  EXPECT_EQ(A.SuperblocksFormed, B.SuperblocksFormed) << What;
  EXPECT_EQ(A.SuperblockEntries, B.SuperblockEntries) << What;
  EXPECT_EQ(A.SuperblockPasses, B.SuperblockPasses) << What;
  EXPECT_EQ(A.SuperblockInsts, B.SuperblockInsts) << What;
  EXPECT_EQ(A.SideExits, B.SideExits) << What;
  EXPECT_EQ(A.WindowFissions, B.WindowFissions) << What;
}

/// The accounting identity of the fast path: every superblock entry
/// terminates in exactly one full pass or one side exit (faults count as
/// side exits), and fused instructions never exceed the run total.
void expectCountersConsistent(const RunResult &R, const std::string &What) {
  EXPECT_EQ(R.Engine.SuperblockEntries,
            R.Engine.SuperblockPasses + R.Engine.SideExits)
      << What;
  EXPECT_LE(R.Engine.SuperblockInsts, R.Stats.DynInsts) << What;
}

//===----------------------------------------------------------------------===//
// Random program generator
//===----------------------------------------------------------------------===//

/// A random but always-terminating program: main runs a counted loop over
/// a region of blocks whose internal edges are all forward (fallthroughs,
/// unconditional jumps, data-dependent conditional branches, empty
/// blocks), sprinkled with calls into 0-2 leaf functions, loads/stores
/// into a scratch data segment, and OUT instructions. With \p BadMem the
/// memory base register occasionally goes out of bounds, so some programs
/// fault mid-loop.
Program randomProgram(Rng &R, bool BadMem) {
  ProgramBuilder PB;
  uint64_t Base = PB.addZeroData(4096);
  {
    std::vector<int64_t> Quads;
    for (int I = 0; I < 32; ++I)
      Quads.push_back(static_cast<int64_t>(R.next()));
    PB.addQuadData(Quads);
  }

  const Reg Pool[] = {RegV0, RegT0, RegT1, RegT2, RegT3,
                      RegT4, RegA0, RegA1, RegZero};
  auto reg = [&] { return Pool[R.below(9)]; };
  const Op AluOps[] = {Op::Add,    Op::Sub,    Op::Mul,    Op::And,
                       Op::Or,     Op::Xor,    Op::Bic,    Op::Sll,
                       Op::Srl,    Op::Sra,    Op::CmpEq,  Op::CmpLt,
                       Op::CmpLe,  Op::CmpUlt, Op::CmpUle, Op::CmovEq,
                       Op::CmovNe, Op::CmovLt, Op::CmovGe};
  const Width Widths[] = {Width::B, Width::H, Width::W, Width::Q};
  auto width = [&] { return Widths[R.below(4)]; };

  // RegT5 is the memory base; every function re-establishes it.
  auto rebase = [&](FunctionBuilder &F) {
    uint64_t B = Base + R.below(512) * 8;
    if (BadMem && R.below(16) == 0)
      B = (8u << 20) - R.below(64); // near the end of memory: loads fault
    F.ldi(RegT5, static_cast<int64_t>(B));
  };

  auto body = [&](FunctionBuilder &F) {
    switch (R.below(10)) {
    case 0: {
      Instruction I = Instruction::ldi(reg(), R.range(-100000, 100000));
      I.W = width();
      F.emit(I);
      break;
    }
    case 1:
      F.ld(width(), reg(), RegT5, static_cast<int64_t>(R.below(3000)));
      break;
    case 2:
      F.st(width(), reg(), RegT5, static_cast<int64_t>(R.below(3000)));
      break;
    case 3:
      F.msk(Widths[R.below(3)], reg(), reg(), static_cast<unsigned>(R.below(4)));
      break;
    case 4:
      F.out(reg());
      break;
    case 5:
      F.emit(Instruction::nop());
      break;
    case 6:
      F.emit(Instruction::sext(width(), reg(), reg()));
      break;
    default: {
      Op O = AluOps[R.below(19)];
      if (R.below(2))
        F.emit(Instruction::alu(O, width(), reg(), reg(), reg()));
      else
        F.emit(Instruction::aluImm(O, width(), reg(), reg(),
                                   R.range(-512, 512)));
      break;
    }
    }
  };

  // Entry first: the first function begun is the program entry.
  FunctionBuilder &Main = PB.beginFunction("main");
  int NumCallees = static_cast<int>(R.below(3));

  Main.block("entry");
  Main.ldi(RegS1, R.range(30, 200)); // iteration counter (callee-saved)
  rebase(Main);
  int NR = static_cast<int>(R.range(2, 5));
  auto regionLabel = [](int I) { return "r" + std::to_string(I); };

  Main.block(regionLabel(0));
  for (int BI = 0; BI < NR; ++BI) {
    bool Empty = R.below(8) == 0;
    int Bodies = Empty ? 0 : static_cast<int>(R.range(1, 5));
    for (int K = 0; K < Bodies; ++K) {
      if (NumCallees && R.below(8) == 0) {
        Main.jsr("f" + std::to_string(R.below(NumCallees)));
        rebase(Main); // callees clobber the caller-saved base register
      } else {
        body(Main);
      }
    }
    // Terminator: all region edges go forward, so every iteration reaches
    // the latch and the loop terminates by counter.
    std::string Next = BI + 1 < NR ? regionLabel(BI + 1) : "latch";
    auto fwd = [&] {
      int J = BI + 1 + static_cast<int>(R.below(NR - BI));
      return J < NR ? regionLabel(J) : std::string("latch");
    };
    if (Empty || R.below(3) == 0) {
      Main.block(Next); // plain fallthrough
    } else if (R.below(3) == 0) {
      Main.br(fwd());
      Main.block(Next);
    } else {
      switch (R.below(6)) {
      case 0: Main.beq(reg(), fwd(), Next); break;
      case 1: Main.bne(reg(), fwd(), Next); break;
      case 2: Main.blt(reg(), fwd(), Next); break;
      case 3: Main.ble(reg(), fwd(), Next); break;
      case 4: Main.bgt(reg(), fwd(), Next); break;
      default: Main.bge(reg(), fwd(), Next); break;
      }
      Main.block(Next);
    }
    if (Next == "latch")
      break;
  }
  // The loop above may have opened "latch" already; block() resumes it.
  Main.block("latch");
  Main.subi(RegS1, RegS1, 1);
  Main.bgt(RegS1, regionLabel(0), "exit");
  Main.block("exit");
  Main.out(RegV0);
  Main.out(RegT0);
  Main.halt();

  // Leaf callees: a straight line or a small diamond, then ret. They only
  // touch caller-saved registers, so they are safe under checked mode.
  for (int C = 0; C < NumCallees; ++C) {
    FunctionBuilder &F = PB.beginFunction("f" + std::to_string(C));
    F.block("entry");
    rebase(F);
    int N = static_cast<int>(R.range(2, 6));
    for (int K = 0; K < N; ++K)
      body(F);
    if (R.below(2)) {
      F.bne(reg(), "left", "right");
      F.block("left");
      body(F);
      F.br("join");
      F.block("right");
      body(F);
      F.block("join");
    }
    F.ret();
  }

  return PB.finish();
}

/// Random, sorted, pairwise-disjoint windows over a run of \p DynInsts
/// instructions, with random light-record prefixes. May include empty and
/// past-the-end windows (both must be handled).
std::vector<SampleWindow> randomWindows(Rng &R, uint64_t DynInsts) {
  std::vector<SampleWindow> Ws;
  uint64_t Cur = R.below(DynInsts / 2 + 1);
  int N = static_cast<int>(R.range(1, 3));
  for (int I = 0; I < N; ++I) {
    uint64_t Len = R.below(DynInsts / 3 + 2);
    SampleWindow W;
    W.Begin = Cur;
    W.End = Cur + Len;
    W.LightLen = R.below(Len + 1);
    Ws.push_back(W);
    Cur = W.End + 1 + R.below(DynInsts / 3 + 2);
  }
  return Ws;
}

} // namespace

//===----------------------------------------------------------------------===//
// Randomized differential tests
//===----------------------------------------------------------------------===//

TEST(DispatchOracle, RandomProgramsAgreeAcrossAllPaths) {
  const uint64_t Seed = oracleSeed(0xD15BA7C4);
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);

  for (int Trial = 0; Trial < 40; ++Trial) {
    SCOPED_TRACE("trial " + std::to_string(Trial));
    Program P = randomProgram(R, /*BadMem=*/Trial % 4 == 3);
    RunOptions O;
    O.Fuel = Trial % 7 == 0 ? R.range(50, 2000) : 100000;

    std::vector<DynInst> RefTrace;
    RunResult Ref = refRun(P, O, &RefTrace);

    DecodedProgram DP(P);
    SuperblockPlan Plan(DP, Ref.Stats.BlockCounts);

    // Sink-fed runs: the record stream must match the oracle exactly.
    EngineRun SwT = engineRun(DP, O, DispatchMode::Switch, nullptr, true);
    EngineRun ThT = engineRun(DP, O, DispatchMode::Threaded, nullptr, true);
    expectSameResult(Ref, SwT.R, "oracle vs switch+sink");
    expectSameResult(Ref, ThT.R, "oracle vs threaded+sink");
    expectSameTrace(RefTrace, SwT.Trace, "oracle vs switch trace");
    expectSameTrace(RefTrace, ThT.Trace, "oracle vs threaded trace");

    // No-sink runs, with and without the superblock fast path.
    EngineRun Sw = engineRun(DP, O, DispatchMode::Switch, nullptr, false);
    EngineRun Th = engineRun(DP, O, DispatchMode::Threaded, nullptr, false);
    EngineRun SwSb = engineRun(DP, O, DispatchMode::Switch, &Plan, false);
    EngineRun ThSb = engineRun(DP, O, DispatchMode::Threaded, &Plan, false);
    expectSameResult(Ref, Sw.R, "oracle vs switch");
    expectSameResult(Ref, Th.R, "oracle vs threaded");
    expectSameResult(Ref, SwSb.R, "oracle vs switch+superblocks");
    expectSameResult(Ref, ThSb.R, "oracle vs threaded+superblocks");
    expectCountersConsistent(SwSb.R, "switch+superblocks counters");
    expectCountersConsistent(ThSb.R, "threaded+superblocks counters");
    // The fast path is deterministic: both dispatch modes take identical
    // superblock entries/exits.
    expectSameEngineCounters(SwSb.R.Engine, ThSb.R.Engine,
                             "superblock counters across dispatch modes");

    // Windowed runs: light + full records, fission at boundaries. The
    // superblock run must produce the identical record stream and batch
    // boundaries as the plain run.
    if (Ref.Stats.DynInsts > 10) {
      std::vector<SampleWindow> Ws = randomWindows(R, Ref.Stats.DynInsts);
      EngineRun WPlain =
          engineRun(DP, O, DispatchMode::Switch, nullptr, true, &Ws);
      EngineRun WSb =
          engineRun(DP, O, DispatchMode::Threaded, &Plan, true, &Ws);
      EngineRun WSb2 =
          engineRun(DP, O, DispatchMode::Switch, &Plan, true, &Ws);
      expectSameResult(Ref, WPlain.R, "oracle vs windowed");
      expectSameResult(Ref, WSb.R, "oracle vs windowed+superblocks");
      expectSameTrace(WPlain.Trace, WSb.Trace,
                      "windowed trace with vs without superblocks");
      expectSameTrace(WSb.Trace, WSb2.Trace,
                      "windowed superblock trace across dispatch modes");
      EXPECT_EQ(WPlain.BatchLens, WSb.BatchLens)
          << "windowed batch boundaries differ";
      expectSameEngineCounters(WSb.R.Engine, WSb2.R.Engine,
                               "windowed counters across dispatch modes");
    }
  }
}

//===----------------------------------------------------------------------===//
// Directed differential tests: terminal states inside superblocks
//===----------------------------------------------------------------------===//

namespace {

/// Runs every engine configuration of \p P and expects bit-identical
/// results against the oracle; the plan is self-profiled so the hot loop
/// of the program actually runs fused.
void expectAllPathsAgree(const Program &P, const RunOptions &O) {
  RunResult Ref = refRun(P, O, nullptr);
  DecodedProgram DP(P);
  SuperblockPlan Plan = buildSelfProfiledPlan(DP, O);
  expectSameResult(Ref, engineRun(DP, O, DispatchMode::Switch, nullptr, false).R,
                   "oracle vs switch");
  expectSameResult(Ref,
                   engineRun(DP, O, DispatchMode::Threaded, nullptr, false).R,
                   "oracle vs threaded");
  EngineRun Sb = engineRun(DP, O, DispatchMode::Threaded, &Plan, false);
  expectSameResult(Ref, Sb.R, "oracle vs threaded+superblocks");
  expectCountersConsistent(Sb.R, "superblock counters");
}

} // namespace

TEST(DispatchOracle, FaultInsideHotLoopAgrees) {
  // The loop streams loads toward the end of memory and faults mid-pass
  // after ~1k fused iterations: the side-exit reconciliation must replay
  // the partial pass exactly (stats, value sizes, fault message).
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegT0, static_cast<int64_t>((8u << 20) - 8192));
  Main.block("loop");
  Main.ld(Width::Q, RegT1, RegT0, 0);
  Main.addi(RegT0, RegT0, 8);
  Main.add(RegV0, RegV0, RegT1);
  Main.br("loop");
  Program P = PB.finish();

  RunOptions O;
  expectAllPathsAgree(P, O);
  RunResult Ref = refRun(P, O, nullptr);
  EXPECT_EQ(static_cast<int>(Ref.Status), static_cast<int>(RunStatus::Fault));
}

TEST(DispatchOracle, OutOfFuelInsideHotLoopAgrees) {
  // Fuel expires at a point that is not a multiple of the loop body, so
  // the run must fall out of the fast path and finish the tail (and the
  // final, cut-short instruction count) in the generic loop.
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegT0, 0);
  Main.block("loop");
  Main.addi(RegT0, RegT0, 3);
  Main.xori(RegT1, RegT0, 0x55);
  Main.br("loop");
  Program P = PB.finish();

  RunOptions O;
  O.Fuel = 10001;
  expectAllPathsAgree(P, O);
  RunResult Ref = refRun(P, O, nullptr);
  EXPECT_EQ(static_cast<int>(Ref.Status),
            static_cast<int>(RunStatus::OutOfFuel));
}

TEST(DispatchOracle, CalleeSaveViolationAgrees) {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegS0, 7);
  Main.jsr("evil");
  Main.halt();
  FunctionBuilder &Evil = PB.beginFunction("evil");
  Evil.block("entry");
  Evil.ldi(RegS0, 123);
  Evil.ret();
  Program P = PB.finish();

  RunOptions O;
  O.CheckCalleeSaved = true;
  expectAllPathsAgree(P, O);
  RunResult Ref = refRun(P, O, nullptr);
  EXPECT_EQ(static_cast<int>(Ref.Status),
            static_cast<int>(RunStatus::CalleeSaveViolation));
}

TEST(DispatchOracle, CallDepthLimitAgrees) {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.jsr("rec");
  Main.halt();
  FunctionBuilder &Rec = PB.beginFunction("rec");
  Rec.block("entry");
  Rec.addi(RegT0, RegT0, 1);
  Rec.jsr("rec");
  Rec.ret();
  Program P = PB.finish();

  RunOptions O;
  O.MaxCallDepth = 64;
  expectAllPathsAgree(P, O);
  RunResult Ref = refRun(P, O, nullptr);
  EXPECT_EQ(static_cast<int>(Ref.Status), static_cast<int>(RunStatus::Fault));
  EXPECT_EQ(Ref.Message, "call depth limit exceeded");
}

//===----------------------------------------------------------------------===//
// Workload-level differential tests
//===----------------------------------------------------------------------===//

class WorkloadDispatch : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadDispatch, AllDispatchPathsAgree) {
  Workload W = makeWorkload(GetParam(), 0.05);
  DecodedProgram DP(W.Prog);
  SuperblockPlan Plan = buildSelfProfiledPlan(DP, W.Ref);

  EngineRun Sw = engineRun(DP, W.Ref, DispatchMode::Switch, nullptr, false);
  EngineRun Th = engineRun(DP, W.Ref, DispatchMode::Threaded, nullptr, false);
  EngineRun Sb = engineRun(DP, W.Ref, DispatchMode::Threaded, &Plan, false);
  expectSameResult(Sw.R, Th.R, "switch vs threaded");
  expectSameResult(Sw.R, Sb.R, "switch vs threaded+superblocks");
  expectCountersConsistent(Sb.R, "superblock counters");
  EXPECT_EQ(static_cast<int>(Sw.R.Status),
            static_cast<int>(RunStatus::Halted));
  // Real workloads must actually exercise the fast path.
  EXPECT_GT(Sb.R.Engine.SuperblockPasses, 0u);
  EXPECT_GT(Sb.R.Engine.coverage(Sb.R.Stats.DynInsts), 0.5);
}

TEST_P(WorkloadDispatch, WindowedTraceUnchangedBySuperblocks) {
  Workload W = makeWorkload(GetParam(), 0.03);
  DecodedProgram DP(W.Prog);
  SuperblockPlan Plan = buildSelfProfiledPlan(DP, W.Ref);

  uint64_t Dyn =
      engineRun(DP, W.Ref, DispatchMode::Auto, nullptr, false).R.Stats.DynInsts;
  ASSERT_GT(Dyn, 100u);
  // Windows straddle the run: an early full window, a light-prefixed
  // window in the middle, and a window cut off by the end of the run.
  std::vector<SampleWindow> Ws = {{Dyn / 10, Dyn / 10 + 500, 0},
                                  {Dyn / 2, Dyn / 2 + 4000, 3000},
                                  {Dyn - 100, Dyn + 100, 50}};
  EngineRun Plain =
      engineRun(DP, W.Ref, DispatchMode::Switch, nullptr, true, &Ws);
  EngineRun Sb = engineRun(DP, W.Ref, DispatchMode::Threaded, &Plan, true, &Ws);
  expectSameResult(Plain.R, Sb.R, "windowed with vs without superblocks");
  expectSameTrace(Plain.Trace, Sb.Trace, "windowed record stream");
  EXPECT_EQ(Plain.BatchLens, Sb.BatchLens);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadDispatch,
                         ::testing::Values("compress", "gcc", "go", "ijpeg",
                                           "li", "m88ksim", "perl", "vortex"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Plan formation and rejection
//===----------------------------------------------------------------------===//

namespace {

Program countingLoop() {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegT0, 0);
  Main.block("loop");
  Main.addi(RegT0, RegT0, 1);
  Main.cmpltImm(RegT1, RegT0, 5000);
  Main.bne(RegT1, "loop", "exit");
  Main.block("exit");
  Main.out(RegT0);
  Main.halt();
  return PB.finish();
}

} // namespace

TEST(SuperblockPlan, FormsAndRunsLoopSuperblock) {
  Program P = countingLoop();
  DecodedProgram DP(P);
  RunOptions O;
  SuperblockPlan Plan = buildSelfProfiledPlan(DP, O);
  ASSERT_GE(Plan.size(), 1u);

  EngineRun Plain = engineRun(DP, O, DispatchMode::Auto, nullptr, false);
  EngineRun Sb = engineRun(DP, O, DispatchMode::Auto, &Plan, false);
  expectSameResult(Plain.R, Sb.R, "loop with vs without superblocks");
  EXPECT_GT(Sb.R.Engine.SuperblockPasses, 0u);
  EXPECT_GT(Sb.R.Engine.coverage(Sb.R.Stats.DynInsts), 0.9);
  expectCountersConsistent(Sb.R, "loop counters");
}

TEST(SuperblockPlan, RejectsProfileShapeMismatch) {
  Program P = countingLoop();
  DecodedProgram DP(P);
  std::vector<std::vector<uint64_t>> Wrong(2); // program has one function
  EXPECT_THROW(SuperblockPlan(DP, Wrong), std::invalid_argument);
}

TEST(SuperblockPlan, EngineRejectsForeignPlan) {
  Program P = countingLoop();
  DecodedProgram DP1(P);
  DecodedProgram DP2(P); // same program, different decode instance
  RunOptions O;
  SuperblockPlan Plan = buildSelfProfiledPlan(DP1, O);
  O.Superblocks = &Plan;
  EXPECT_THROW(runProgram(DP2, O), std::invalid_argument);
  EXPECT_THROW(runProgramWindowed(DP2, O, {}), std::invalid_argument);
  EXPECT_NO_THROW(runProgram(DP1, O));
}

//===----------------------------------------------------------------------===//
// Dispatch-mode resolution
//===----------------------------------------------------------------------===//

TEST(DispatchMode, ResolutionAndNames) {
  EXPECT_EQ(static_cast<int>(resolveDispatchMode(DispatchMode::Switch)),
            static_cast<int>(DispatchMode::Switch));
  DispatchMode Fast = resolveDispatchMode(DispatchMode::Auto);
  EXPECT_EQ(static_cast<int>(Fast),
            static_cast<int>(engineHasThreadedDispatch()
                                 ? DispatchMode::Threaded
                                 : DispatchMode::Switch));
  // Threaded demotes to switch on builds without computed goto.
  EXPECT_EQ(static_cast<int>(resolveDispatchMode(DispatchMode::Threaded)),
            static_cast<int>(Fast));
  EXPECT_STREQ(dispatchModeName(DispatchMode::Switch), "switch");
  EXPECT_STREQ(dispatchModeName(resolveDispatchMode(DispatchMode::Auto)),
               engineHasThreadedDispatch() ? "threaded" : "switch");
}
