//===- tests/UarchPowerTest.cpp - uarch/, power/, hw/ tests ------------------==//

#include "hw/Compression.h"
#include "power/ActivityCounts.h"
#include "power/Report.h"
#include "program/Builder.h"
#include "support/Rng.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Cache.h"
#include "uarch/Core.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace og;

// --- Hardware compression (§4.6).

TEST(HwCompression, SignificanceBytes) {
  EXPECT_EQ(significanceBytes(0), 1u);
  EXPECT_EQ(significanceBytes(-1), 1u);
  EXPECT_EQ(significanceBytes(127), 1u);
  EXPECT_EQ(significanceBytes(128), 2u);
  EXPECT_EQ(significanceBytes(INT64_MIN), 8u);
}

TEST(HwCompression, SizeBuckets) {
  // {1, 2, 5, 8}: the 5-byte bucket absorbs 33..40-bit addresses (§4.6).
  EXPECT_EQ(sizeCompressionBytes(0), 1u);
  EXPECT_EQ(sizeCompressionBytes(1000), 2u);
  EXPECT_EQ(sizeCompressionBytes(1 << 20), 5u);
  EXPECT_EQ(sizeCompressionBytes(int64_t(1) << 38), 5u);
  EXPECT_EQ(sizeCompressionBytes(int64_t(1) << 45), 8u);
}

// Property: buckets dominate significance; combined never exceeds either.
TEST(HwCompression, CombinedProperty) {
  Rng R(5);
  for (int I = 0; I < 2000; ++I) {
    int64_t V = static_cast<int64_t>(R.next()) >>
                static_cast<unsigned>(R.below(64));
    EXPECT_GE(sizeCompressionBytes(V), significanceBytes(V));
    for (unsigned WI = 0; WI < 4; ++WI) {
      Width W = static_cast<Width>(WI);
      unsigned C = combinedBytes(V, W);
      EXPECT_LE(C, widthBytes(W));
      EXPECT_LE(C, sizeCompressionBytes(V));
    }
  }
}

// --- Branch predictor.

TEST(BranchPredictor, LearnsStableBranch) {
  UarchConfig C;
  BranchPredictor BP(C);
  for (int I = 0; I < 100; ++I)
    BP.predictAndUpdate(0x1000, true);
  EXPECT_LT(BP.mispredicts(), 5u); // warms up quickly
  EXPECT_EQ(BP.lookups(), 100u);
}

TEST(BranchPredictor, LearnsAlternatingViaHistory) {
  UarchConfig C;
  BranchPredictor BP(C);
  // Strict alternation is history-predictable by gshare.
  for (int I = 0; I < 2000; ++I)
    BP.predictAndUpdate(0x2000, I % 2 == 0);
  EXPECT_LT(BP.mispredicts(), 200u); // far better than the 1000 of always-X
}

TEST(BranchPredictor, RandomIsHard) {
  UarchConfig C;
  BranchPredictor BP(C);
  Rng R(3);
  unsigned N = 2000;
  for (unsigned I = 0; I < N; ++I)
    BP.predictAndUpdate(0x3000 + (R.below(64) * 4), R.below(2));
  EXPECT_GT(BP.mispredicts(), N / 4); // no free lunch on noise
}

// --- Cache.

TEST(Cache, HitsAfterFill) {
  Cache C(1, 2, 32); // 1KB, 2-way, 32B lines
  EXPECT_FALSE(C.access(0x100));
  EXPECT_TRUE(C.access(0x100));
  EXPECT_TRUE(C.access(0x11F)); // same line
  EXPECT_FALSE(C.access(0x120)); // next line
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache C(1, 2, 32); // 16 sets
  uint64_t SetStride = 16 * 32;
  C.access(0);              // way A
  C.access(SetStride);      // way B
  C.access(0);              // refresh A
  C.access(2 * SetStride);  // evicts B (LRU)
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(SetStride)); // was evicted
}

TEST(Cache, SequentialStreamMissesOncePerLine) {
  Cache C(64, 2, 32);
  for (uint64_t A = 0; A < 4096; A += 4)
    C.access(A);
  EXPECT_EQ(C.misses(), 4096u / 32u);
}

// --- The OoO core on synthetic traces.

namespace {

UarchStats runCore(const Program &P, const RunOptions &Base,
                   ActivitySink *Sink = nullptr) {
  UarchConfig C;
  OooCore Core(C, Sink);
  RunOptions O = Base;
  O.Sink = &Core;
  RunResult R = runProgram(P, O);
  EXPECT_EQ(R.Status, RunStatus::Halted);
  return Core.finish();
}

Program independentAdds(unsigned N) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  for (unsigned I = 0; I < N; ++I)
    F.addi(static_cast<Reg>(RegT0 + (I % 6)), RegZero, 1);
  F.halt();
  return PB.finish();
}

Program dependentChain(unsigned N) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  for (unsigned I = 0; I < N; ++I)
    F.addi(RegT0, RegT0, 1);
  F.halt();
  return PB.finish();
}

} // namespace

TEST(OooCore, IpcBoundedByMachineWidth) {
  UarchStats S = runCore(independentAdds(2000), RunOptions());
  EXPECT_LE(S.ipc(), 4.0);
  // Independent work should sustain well above scalar throughput (3 ALUs).
  EXPECT_GT(S.ipc(), 2.0);
}

TEST(OooCore, DependenceChainsSerialize) {
  UarchStats Par = runCore(independentAdds(2000), RunOptions());
  UarchStats Ser = runCore(dependentChain(2000), RunOptions());
  EXPECT_GT(Ser.Cycles, Par.Cycles * 2);
  EXPECT_LE(Ser.ipc(), 1.1); // one add per cycle at best
}

TEST(OooCore, MispredictionsCostCycles) {
  // A data-dependent unpredictable branch vs a stable one.
  auto mkBranchy = [](bool Random) {
    ProgramBuilder PB;
    std::vector<uint8_t> Bits(4096);
    Rng R(11);
    for (size_t I = 0; I < Bits.size(); ++I)
      Bits[I] = Random ? static_cast<uint8_t>(R.below(2)) : 1;
    uint64_t Data = PB.addByteData(Bits);
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.ldi(RegS0, static_cast<int64_t>(Data));
    F.ldi(RegS1, 0);
    F.ldi(RegS2, 0);
    F.block("loop");
    F.add(RegT0, RegS0, RegS1);
    F.ld(Width::B, RegT1, RegT0, 0);
    F.beq(RegT1, "skip", "add1");
    F.block("add1");
    F.addi(RegS2, RegS2, 1);
    F.br("skip");
    F.block("skip");
    F.addi(RegS1, RegS1, 1);
    F.cmpltImm(RegT2, RegS1, 4096);
    F.bne(RegT2, "loop", "done");
    F.block("done");
    F.out(RegS2);
    F.halt();
    return PB.finish();
  };
  UarchStats Stable = runCore(mkBranchy(false), RunOptions());
  UarchStats Noisy = runCore(mkBranchy(true), RunOptions());
  EXPECT_GT(Noisy.Mispredicts, Stable.Mispredicts * 5);
  EXPECT_GT(Noisy.Cycles, Stable.Cycles);
}

TEST(OooCore, CacheMissesCostCycles) {
  // Fixed 20k loads; friendly ones hit a single line, hostile ones stream
  // through 2MB (beyond L1+L2).
  auto mkStrided = [](int64_t Stride, int64_t Mask) {
    ProgramBuilder PB;
    uint64_t Data = PB.addZeroData(2u << 20);
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.ldi(RegS0, static_cast<int64_t>(Data));
    F.ldi(RegS1, 0);
    F.ldi(RegS4, 0);
    F.block("loop");
    F.muli(RegT0, RegS1, Stride);
    F.andi(RegT0, RegT0, Mask);
    F.add(RegT0, RegS0, RegT0);
    F.ld(Width::Q, RegT1, RegT0, 0);
    F.add(RegS2, RegS2, RegT1);
    F.addi(RegS1, RegS1, 1);
    F.cmpltImm(RegT2, RegS1, 20000);
    F.bne(RegT2, "loop", "done");
    F.block("done");
    F.halt();
    return PB.finish();
  };
  UarchStats Friendly = runCore(mkStrided(0, 0), RunOptions());
  UarchStats Hostile =
      runCore(mkStrided(64, (2 << 20) - 8), RunOptions());
  EXPECT_GT(Hostile.DL1Misses, Friendly.DL1Misses + 1000);
  EXPECT_GT(Hostile.L2Misses, 0u);
  EXPECT_GT(Hostile.Cycles, Friendly.Cycles);
}

// --- Power model.

TEST(EnergyModel, TotalsAreSumOfParts) {
  EnergyModel EM(GatingScheme::None);
  EM.access(Structure::Rename);
  EM.dataAccess(Structure::RegFile, 42, Width::Q);
  EM.missPenalty(Structure::DCacheL1);
  double Sum = 0.0;
  for (unsigned S = 0; S < NumStructures; ++S)
    Sum += EM.structureEnergy(static_cast<Structure>(S));
  EXPECT_DOUBLE_EQ(Sum, EM.totalEnergy());
  EXPECT_GT(Sum, 0.0);
}

TEST(ActivityCounts, DerivedEnergyMatchesEnergyModel) {
  // The histogram must be a lossless stand-in for the access stream:
  // deriving a scheme's energy from an ActivityRecorder's counts has to
  // reproduce what an EnergyModel accumulating under that scheme charged
  // for the same events (up to FP reassociation — the sampled sweep's
  // cross-cell sharing rests on exactly this identity).
  Rng R(0x5eed);
  ActivityRecorder Rec;
  std::vector<EnergyModel> Models;
  const GatingScheme Schemes[] = {
      GatingScheme::None, GatingScheme::Software, GatingScheme::HwSignificance,
      GatingScheme::HwSize, GatingScheme::Combined};
  for (GatingScheme S : Schemes)
    Models.emplace_back(S);

  for (int I = 0; I < 2000; ++I) {
    const Structure S = static_cast<Structure>(R.next() % NumStructures);
    switch (R.next() % 3) {
    case 0:
      Rec.access(S);
      for (EnergyModel &EM : Models)
        EM.access(S);
      break;
    case 1: {
      // Exercise every significance class, including sign-extended
      // negatives and full-width values.
      const int Shift = static_cast<int>(R.next() % 64);
      const int64_t V = static_cast<int64_t>(R.next()) >> Shift;
      const Width W = static_cast<Width>(R.next() % 4);
      Rec.dataAccess(S, V, W);
      for (EnergyModel &EM : Models)
        EM.dataAccess(S, V, W);
      break;
    }
    default:
      Rec.missPenalty(S);
      for (EnergyModel &EM : Models)
        EM.missPenalty(S);
      break;
    }
  }

  const EnergyCoefficients EC = EnergyCoefficients::defaults();
  for (size_t M = 0; M < Models.size(); ++M) {
    const auto Derived = Rec.counts().structureEnergy(Schemes[M], EC);
    for (unsigned S = 0; S < NumStructures; ++S) {
      const double Exact = Models[M].structureEnergy(static_cast<Structure>(S));
      EXPECT_NEAR(Derived[S], Exact, 1e-9 * (1.0 + std::fabs(Exact)))
          << "scheme " << gatingSchemeName(Schemes[M]) << ", structure "
          << structureName(static_cast<Structure>(S));
    }
  }
}

TEST(ActivityCounts, AddScaledMatchesManualDeltas) {
  ActivityRecorder Rec;
  Rec.access(Structure::Rename);
  const ActivityCounts Before = Rec.counts();
  Rec.access(Structure::Rename);
  Rec.dataAccess(Structure::IntAlu, 0x1234, Width::H);
  Rec.missPenalty(Structure::DCacheL2);

  ActivityCounts Acc;
  Acc.addScaled(2.5, Before, Rec.counts());
  EXPECT_DOUBLE_EQ(Acc.Access[static_cast<unsigned>(Structure::Rename)], 2.5);
  EXPECT_DOUBLE_EQ(
      Acc.Data[static_cast<unsigned>(Structure::IntAlu)]
              [static_cast<unsigned>(Width::H)][significantBytes(0x1234) - 1],
      2.5);
  EXPECT_DOUBLE_EQ(Acc.Miss[static_cast<unsigned>(Structure::DCacheL2)], 2.5);
  EXPECT_DOUBLE_EQ(Acc.Miss[static_cast<unsigned>(Structure::DCacheL1)], 0.0);
}

TEST(EnergyModel, NarrowValuesCostLessUnderGating) {
  for (GatingScheme S : {GatingScheme::Software, GatingScheme::HwSignificance,
                         GatingScheme::HwSize, GatingScheme::Combined}) {
    EnergyModel Narrow(S), Wide(S);
    Width NarrowW = S == GatingScheme::Software ? Width::B : Width::Q;
    Narrow.dataAccess(Structure::IntAlu, 3, NarrowW);
    Wide.dataAccess(Structure::IntAlu, INT64_MAX, Width::Q);
    EXPECT_LT(Narrow.totalEnergy(), Wide.totalEnergy())
        << gatingSchemeName(S);
  }
  // The baseline is width-insensitive.
  EnergyModel A(GatingScheme::None), B(GatingScheme::None);
  A.dataAccess(Structure::IntAlu, 3, Width::B);
  B.dataAccess(Structure::IntAlu, INT64_MAX, Width::Q);
  EXPECT_DOUBLE_EQ(A.totalEnergy(), B.totalEnergy());
}

TEST(EnergyModel, HwSchemesPayTagOverhead) {
  // For a full-width value, hw schemes cost slightly MORE than baseline
  // because of the tag bits.
  EnergyModel None(GatingScheme::None), Sig(GatingScheme::HwSignificance);
  None.dataAccess(Structure::RegFile, INT64_MAX, Width::Q);
  Sig.dataAccess(Structure::RegFile, INT64_MAX, Width::Q);
  EXPECT_GT(Sig.totalEnergy(), None.totalEnergy());
  EXPECT_EQ(tagBits(GatingScheme::HwSignificance), 7u);
  EXPECT_EQ(tagBits(GatingScheme::HwSize), 2u);
  EXPECT_EQ(tagBits(GatingScheme::Combined), 2u);
  EXPECT_EQ(tagBits(GatingScheme::Software), 0u);
}

TEST(EnergyModel, EffectiveBytesPerScheme) {
  int64_t V = 300; // needs 2 significant bytes
  EXPECT_EQ(effectiveBytes(GatingScheme::None, V, Width::B), 8u);
  EXPECT_EQ(effectiveBytes(GatingScheme::Software, V, Width::H), 2u);
  EXPECT_EQ(effectiveBytes(GatingScheme::HwSignificance, V, Width::Q), 2u);
  EXPECT_EQ(effectiveBytes(GatingScheme::HwSize, V, Width::Q), 2u);
  EXPECT_EQ(effectiveBytes(GatingScheme::HwSize, 1 << 20, Width::Q), 5u);
  EXPECT_EQ(effectiveBytes(GatingScheme::Combined, V, Width::Q), 2u);
  // Combined caps by the opcode width.
  EXPECT_EQ(effectiveBytes(GatingScheme::Combined, 1 << 20, Width::H), 2u);
}

TEST(EnergyReport, SavingsAndEd2Math) {
  EnergyReport Base;
  Base.TotalEnergy = 100;
  Base.Uarch.Cycles = 10;
  EnergyReport Better;
  Better.TotalEnergy = 80;
  Better.Uarch.Cycles = 10;
  EXPECT_DOUBLE_EQ(Better.energySaving(Base), 0.2);
  EXPECT_DOUBLE_EQ(Better.ed2Saving(Base), 0.2);
  EXPECT_DOUBLE_EQ(Better.timeSaving(Base), 0.0);
  Better.Uarch.Cycles = 5; // halving delay gives 4x ED^2 on top
  EXPECT_DOUBLE_EQ(Better.ed2(), 80.0 * 25.0);
  EXPECT_DOUBLE_EQ(Better.ed2Saving(Base), 1.0 - (80.0 * 25) / (100.0 * 100));
}

TEST(EnergyReport, StructureSavings) {
  EnergyReport Base, Other;
  Base.PerStructure[static_cast<unsigned>(Structure::IntAlu)] = 50;
  Other.PerStructure[static_cast<unsigned>(Structure::IntAlu)] = 40;
  EXPECT_DOUBLE_EQ(Other.structureSaving(Base, Structure::IntAlu), 0.2);
  EXPECT_DOUBLE_EQ(Other.structureSaving(Base, Structure::Rename), 0.0);
}

TEST(Power, EndToEndSchemesOrderSanely) {
  // On a narrow-value workload: any gating beats baseline; significance
  // beats size compression (finer granularity).
  Program P = [] {
    ProgramBuilder PB;
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.ldi(RegS0, 0);
    F.ldi(RegS1, 0);
    F.block("loop");
    F.andi(RegT0, RegS1, 0x3F);
    F.add(RegS0, RegS0, RegT0);
    F.addi(RegS1, RegS1, 1);
    F.cmpltImm(RegT1, RegS1, 3000);
    F.bne(RegT1, "loop", "done");
    F.block("done");
    F.out(RegS0);
    F.halt();
    return PB.finish();
  }();
  auto energyUnder = [&](GatingScheme S) {
    EnergyModel EM(S);
    UarchConfig C;
    OooCore Core(C, &EM);
    RunOptions O;
    O.Sink = &Core;
    runProgram(P, O);
    return makeReport(EM, Core.finish()).TotalEnergy;
  };
  double None = energyUnder(GatingScheme::None);
  double Sig = energyUnder(GatingScheme::HwSignificance);
  double Size = energyUnder(GatingScheme::HwSize);
  EXPECT_LT(Sig, None);
  EXPECT_LT(Size, None);
  // Significance gates finer but pays 7 tag bits to size compression's 2;
  // on already-narrow values the two land close together.
  EXPECT_LE(Sig, Size * 1.05);
}

TEST(EnergyModel, SoftwareSchemePaysCacheTags) {
  // Paper 2.4: under the software scheme cached values carry two size
  // bits; register-file traffic does not.
  EnergyModel None(GatingScheme::None), Sw(GatingScheme::Software);
  None.dataAccess(Structure::DCacheL1, INT64_MAX, Width::Q);
  Sw.dataAccess(Structure::DCacheL1, INT64_MAX, Width::Q);
  EXPECT_GT(Sw.structureEnergy(Structure::DCacheL1),
            None.structureEnergy(Structure::DCacheL1));

  EnergyModel None2(GatingScheme::None), Sw2(GatingScheme::Software);
  None2.dataAccess(Structure::RegFile, INT64_MAX, Width::Q);
  Sw2.dataAccess(Structure::RegFile, INT64_MAX, Width::Q);
  EXPECT_DOUBLE_EQ(Sw2.structureEnergy(Structure::RegFile),
                   None2.structureEnergy(Structure::RegFile));
}

TEST(OooCore, MulLatencyIsVisible) {
  // A chain of dependent multiplies runs at the multiply latency.
  auto chain = [](Op O, unsigned N) {
    ProgramBuilder PB;
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.ldi(RegT0, 1);
    for (unsigned I = 0; I < N; ++I)
      F.emit(Instruction::aluImm(O, Width::Q, RegT0, RegT0, 1));
    F.halt();
    return PB.finish();
  };
  UarchStats Adds = runCore(chain(Op::Add, 600), RunOptions());
  UarchStats Muls = runCore(chain(Op::Mul, 600), RunOptions());
  UarchConfig C;
  EXPECT_GT(Muls.Cycles, Adds.Cycles * (C.MulLatency - 2));
}

TEST(OooCore, WindowBoundsOutstandingWork) {
  // Independent loads that all miss: a 64-entry window cannot overlap more
  // than 64 of them, so halving memory-level parallelism shows up as
  // cycles. Compare the default window against a tiny one.
  ProgramBuilder PB;
  uint64_t Data = PB.addZeroData(2u << 20);
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegS0, static_cast<int64_t>(Data));
  F.ldi(RegS1, 0);
  F.block("loop");
  F.muli(RegT0, RegS1, 4096 + 64); // new set + new line every access
  F.andi(RegT0, RegT0, (2 << 20) - 8);
  F.add(RegT0, RegS0, RegT0);
  F.ld(Width::Q, RegT1, RegT0, 0);
  F.addi(RegS1, RegS1, 1);
  F.cmpltImm(RegT2, RegS1, 4000);
  F.bne(RegT2, "loop", "done");
  F.block("done");
  F.halt();
  Program P = PB.finish();

  auto cyclesWith = [&](unsigned Window) {
    UarchConfig C;
    C.MaxInFlight = Window;
    OooCore Core(C, nullptr);
    RunOptions O;
    O.Sink = &Core;
    runProgram(P, O);
    return Core.finish().Cycles;
  };
  EXPECT_GT(cyclesWith(4), cyclesWith(64));
}

TEST(OooCore, RetireIsInOrder) {
  // The final cycle count can never undercut insts / retire-width.
  UarchStats S = runCore(independentAdds(4000), RunOptions());
  UarchConfig C;
  EXPECT_GE(S.Cycles, S.Insts / C.RetireWidth);
}

// --- SlotScheduler: the rolling-pointer ring must grant exactly the
// cycles the original linear min-scan implementation did.

namespace {

/// The historical implementation, kept verbatim as the oracle.
class MinScanScheduler {
public:
  explicit MinScanScheduler(unsigned Slots) : Next(Slots, 0) {}
  uint64_t schedule(uint64_t Earliest) {
    size_t Best = 0;
    for (size_t I = 1; I < Next.size(); ++I)
      if (Next[I] < Next[Best])
        Best = I;
    uint64_t Cycle = Earliest > Next[Best] ? Earliest : Next[Best];
    Next[Best] = Cycle + 1;
    return Cycle;
  }

private:
  std::vector<uint64_t> Next;
};

} // namespace

TEST(SlotScheduler, MonotoneRequestsMatchMinScan) {
  // Fetch/rename/retire issue with non-decreasing Earliest.
  for (unsigned W : {1u, 2u, 3u, 4u, 8u}) {
    SlotScheduler Ring(W);
    MinScanScheduler Ref(W);
    uint64_t E = 0;
    Rng R(40 + W);
    for (int I = 0; I < 5000; ++I) {
      E += R.below(3);
      ASSERT_EQ(Ring.schedule(E), Ref.schedule(E))
          << "W=" << W << " request " << I;
    }
  }
}

TEST(SlotScheduler, RandomRequestsMatchMinScan) {
  // Issue-side schedulers (ALUs, memory ports) see out-of-order operand
  // ready times; the grant sequence must still be identical.
  for (unsigned W : {1u, 2u, 3u, 4u, 7u}) {
    SlotScheduler Ring(W);
    MinScanScheduler Ref(W);
    Rng R(90 + W);
    for (int I = 0; I < 20000; ++I) {
      uint64_t E = R.below(50);
      ASSERT_EQ(Ring.schedule(E), Ref.schedule(E))
          << "W=" << W << " request " << I;
    }
  }
}

TEST(SlotScheduler, BurstAfterIdleMatchesMinScan) {
  // A large jump forward followed by small Earliest values exercises the
  // re-insert-not-at-tail path of the ring.
  SlotScheduler Ring(3);
  MinScanScheduler Ref(3);
  const uint64_t Pattern[] = {100, 0, 1, 0, 2, 200, 3, 0, 150, 0, 0, 0};
  for (uint64_t E : Pattern)
    ASSERT_EQ(Ring.schedule(E), Ref.schedule(E)) << "E=" << E;
}
