//===- tests/SampleTest.cpp - Phase-sampled simulation tests ---------------==//
//
// The contracts of src/sample/: deterministic seeded clustering, exact
// interval/BBV bookkeeping on branchy and recursive programs (including
// the partial final interval), windowed-engine equivalence with full
// runs, error-bounded weighted estimation on every standard workload,
// checkpointed warm-up equivalence with full-prefix shadow warming,
// cross-cell plan sharing (SamplePlanCache) producing bit-identical
// results, sampled-sweep serial-vs-parallel byte-identity, the
// sampled-vs-exact report-diff rules, and the aggregator's
// duplicate-cell determinism.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "pipeline/Pipeline.h"
#include "program/Builder.h"
#include "report/Baseline.h"
#include "report/ReportSchema.h"
#include "sample/IntervalProfiler.h"
#include "sample/KMeans.h"
#include "sample/SamplePlanCache.h"
#include "sample/SampleRunner.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

using namespace og;

namespace {

// ---------------------------------------------------------------------------
// KMeans

std::vector<std::vector<double>> threeBlobs() {
  // Three well-separated 2-D blobs, four points each.
  std::vector<std::vector<double>> P;
  const double Centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  const double Jit[4][2] = {{0.1, 0.0}, {-0.1, 0.1}, {0.0, -0.1}, {0.1, 0.1}};
  for (const auto &C : Centers)
    for (const auto &J : Jit)
      P.push_back({C[0] + J[0], C[1] + J[1]});
  return P;
}

TEST(KMeans, DeterministicUnderFixedSeed) {
  const std::vector<std::vector<double>> P = threeBlobs();
  KMeansResult A = kmeansCluster(P, 3, 42);
  KMeansResult B = kmeansCluster(P, 3, 42);
  EXPECT_EQ(A.Assign, B.Assign);
  EXPECT_EQ(A.Centroids, B.Centroids);
  EXPECT_EQ(A.Inertia, B.Inertia);
}

TEST(KMeans, SeparatesObviousBlobs) {
  const std::vector<std::vector<double>> P = threeBlobs();
  KMeansResult R = kmeansCluster(P, 3, 7);
  ASSERT_EQ(R.K, 3u);
  // Points of one blob share a label; different blobs differ.
  for (int Blob = 0; Blob < 3; ++Blob)
    for (int I = 1; I < 4; ++I)
      EXPECT_EQ(R.Assign[Blob * 4], R.Assign[Blob * 4 + I]) << Blob;
  EXPECT_NE(R.Assign[0], R.Assign[4]);
  EXPECT_NE(R.Assign[0], R.Assign[8]);
  EXPECT_NE(R.Assign[4], R.Assign[8]);
  EXPECT_LT(R.Inertia, 1.0);
  // K clamps to the point count.
  EXPECT_EQ(kmeansCluster(P, 100, 7).K, P.size());
}

TEST(KMeans, BicPicksThePhaseCount) {
  std::vector<double> Scores;
  EXPECT_EQ(pickK(threeBlobs(), 6, 42, &Scores), 3u);
  EXPECT_EQ(Scores.size(), 6u);
}

TEST(KMeans, ProjectionIsDeterministicAndPreservesSeparation) {
  // 40-dimensional points in two far-apart groups.
  std::vector<std::vector<double>> P;
  for (int I = 0; I < 8; ++I) {
    std::vector<double> V(40, 0.0);
    V[I % 40] = 1.0;
    if (I >= 4)
      for (int J = 20; J < 40; ++J)
        V[J] = 5.0;
    P.push_back(std::move(V));
  }
  auto A = projectPoints(P, 8, 1), B = projectPoints(P, 8, 1);
  ASSERT_EQ(A.size(), P.size());
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.front().size(), 8u);
  // Low-dimensional inputs pass through untouched.
  std::vector<std::vector<double>> Small = {{1, 2}, {3, 4}};
  EXPECT_EQ(projectPoints(Small, 8, 1), Small);
  // The two groups stay separated after projection.
  KMeansResult R = kmeansCluster(A, 2, 3);
  for (int I = 1; I < 4; ++I) {
    EXPECT_EQ(R.Assign[0], R.Assign[I]);
    EXPECT_EQ(R.Assign[4], R.Assign[4 + I]);
  }
  EXPECT_NE(R.Assign[0], R.Assign[4]);
}

// ---------------------------------------------------------------------------
// IntervalProfiler bookkeeping

/// Branchy program: a counted loop whose body alternates between two
/// blocks on the parity of the counter.
Program branchyProgram(int64_t Iters) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 0); // counter
  F.block("loop");
  F.andi(RegT1, RegT0, 1);
  F.bne(RegT1, "odd", "even");
  F.block("even");
  F.addi(RegT2, RegT2, 3);
  F.br("latch");
  F.block("odd");
  F.addi(RegT2, RegT2, 5);
  F.block("latch");
  F.addi(RegT0, RegT0, 1);
  F.cmpltImm(RegT1, RegT0, Iters);
  F.bne(RegT1, "loop", "done");
  F.block("done");
  F.out(RegT2);
  F.halt();
  return PB.finish();
}

/// Recursive program: sums 1..N by recursion (exercises Jsr/Ret and the
/// call-depth feature).
Program recursiveProgram(int64_t N) {
  ProgramBuilder PB;
  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.ldi(RegA0, N);
  Main.jsr("sum");
  Main.out(RegV0);
  Main.halt();
  FunctionBuilder &Sum = PB.beginFunction("sum");
  Sum.block("entry");
  Sum.ble(RegA0, "base", "rec");
  Sum.block("rec");
  Sum.mov(RegT0, RegA0);
  Sum.addi(RegA0, RegA0, -1);
  Sum.jsr("sum");
  Sum.addi(RegV0, RegV0, 1);
  Sum.ret();
  Sum.block("base");
  Sum.ldi(RegV0, 0);
  Sum.ret();
  return PB.finish();
}

void checkProfileBookkeeping(const Program &P, uint64_t Len) {
  DecodedProgram DP(P);
  IntervalProfiler Prof(DP, Len);
  RunOptions O;
  O.Sink = &Prof;
  RunResult R = runProgram(DP, O);
  ASSERT_EQ(R.Status, RunStatus::Halted);
  Prof.finish();

  // Interval lengths: Len everywhere except a shorter final interval.
  ASSERT_GT(Prof.numIntervals(), 1u);
  EXPECT_EQ(Prof.totalInsts(), R.Stats.DynInsts);
  uint64_t Sum = 0;
  for (size_t I = 0; I < Prof.numIntervals(); ++I) {
    const uint64_t N = Prof.intervalInsts()[I];
    Sum += N;
    if (I + 1 < Prof.numIntervals())
      EXPECT_EQ(N, Len) << I;
    else
      EXPECT_EQ(N, R.Stats.DynInsts % Len == 0 ? Len : R.Stats.DynInsts % Len);
  }
  EXPECT_EQ(Sum, R.Stats.DynInsts);

  // Each interval's BBV mass equals its instruction count, and the
  // summed per-slot mass matches the instruction-weighted block profile
  // (entries x block size; exact for programs that halt at a block end).
  std::vector<uint64_t> SlotTotal(DP.numBlockSlots(), 0);
  for (size_t I = 0; I < Prof.numIntervals(); ++I) {
    uint64_t Mass = 0;
    for (size_t S = 0; S < DP.numBlockSlots(); ++S) {
      Mass += Prof.bbvs()[I][S];
      SlotTotal[S] += Prof.bbvs()[I][S];
    }
    EXPECT_EQ(Mass, Prof.intervalInsts()[I]) << I;
  }
  for (const Function &F : P.Funcs)
    for (const BasicBlock &BB : F.Blocks) {
      const size_t Slot = DP.blockSlot(F.Id, BB.Id);
      EXPECT_EQ(SlotTotal[Slot],
                R.Stats.BlockCounts[F.Id][BB.Id] * BB.Insts.size())
          << F.Name << " block " << BB.Id;
    }

  // Feature vectors are L1-normalized over the BBV slots and append the
  // call-depth buckets plus the chase coordinate.
  auto Feats = Prof.normalizedBbvs();
  ASSERT_EQ(Feats.size(), Prof.numIntervals());
  EXPECT_EQ(Feats[0].size(),
            DP.numBlockSlots() + IntervalProfiler::NumDepthBuckets + 1);
  for (size_t I = 0; I < Feats.size(); ++I) {
    double BbvMass = 0, DepthMass = 0;
    for (size_t S = 0; S < DP.numBlockSlots(); ++S)
      BbvMass += Feats[I][S];
    for (size_t B = 0; B < IntervalProfiler::NumDepthBuckets; ++B)
      DepthMass += Feats[I][DP.numBlockSlots() + B];
    EXPECT_NEAR(BbvMass, 1.0, 1e-9) << I;
    EXPECT_NEAR(DepthMass, 1.0, 1e-9) << I;
  }
}

TEST(IntervalProfiler, BranchyBookkeeping) {
  checkProfileBookkeeping(branchyProgram(700), 256);
}

TEST(IntervalProfiler, RecursiveBookkeeping) {
  checkProfileBookkeeping(recursiveProgram(120), 100);
}

TEST(IntervalProfiler, RecursionShowsInDepthBuckets) {
  Program P = recursiveProgram(200);
  DecodedProgram DP(P);
  IntervalProfiler Prof(DP, 200);
  RunOptions O;
  O.Sink = &Prof;
  runProgram(DP, O);
  Prof.finish();
  // Deep recursion must populate the clamped top bucket somewhere.
  uint64_t Top = 0;
  for (const auto &D : Prof.depths())
    Top += D[IntervalProfiler::NumDepthBuckets - 1];
  EXPECT_GT(Top, 0u);
}

// ---------------------------------------------------------------------------
// Windowed engine

struct RecordingSink final : TraceSink {
  std::vector<DynInst> Records;
  void onBatch(const DynInst *Batch, size_t N) override {
    Records.insert(Records.end(), Batch, Batch + N);
  }
};

TEST(WindowedEngine, FullWindowMatchesFullSinkRun) {
  Workload W = makeWorkload("compress", 0.02);
  DecodedProgram DP(W.Prog);
  RecordingSink Full;
  RunOptions OF = W.Ref;
  OF.Sink = &Full;
  RunResult RF = runProgram(DP, OF);

  RecordingSink Win;
  RunOptions OW = W.Ref;
  OW.Sink = &Win;
  RunResult RW = runProgramWindowed(DP, OW, {{0, RF.Stats.DynInsts, 0}});

  EXPECT_EQ(RW.Status, RF.Status);
  EXPECT_EQ(RW.Output, RF.Output);
  EXPECT_EQ(RW.Stats.DynInsts, RF.Stats.DynInsts);
  EXPECT_EQ(RW.Stats.BlockCounts, RF.Stats.BlockCounts);
  ASSERT_EQ(Win.Records.size(), Full.Records.size());
  for (size_t I = 0; I < Full.Records.size(); ++I) {
    EXPECT_EQ(Win.Records[I].Pc, Full.Records[I].Pc) << I;
    EXPECT_EQ(Win.Records[I].Result, Full.Records[I].Result) << I;
    EXPECT_EQ(Win.Records[I].NextPc, Full.Records[I].NextPc) << I;
  }
}

TEST(WindowedEngine, WindowsDeliverExactSlices) {
  Workload W = makeWorkload("li", 0.02);
  DecodedProgram DP(W.Prog);
  RecordingSink Full;
  RunOptions OF = W.Ref;
  OF.Sink = &Full;
  RunResult RF = runProgram(DP, OF);
  const uint64_t N = RF.Stats.DynInsts;
  ASSERT_GT(N, 2000u);

  const std::vector<SampleWindow> Windows = {
      {100, 600, 0}, {1000, 1001, 0}, {N - 500, N + 99999, 0}};
  RecordingSink Win;
  RunOptions OW = W.Ref;
  OW.Sink = &Win;
  RunResult RW = runProgramWindowed(DP, OW, Windows);

  // Functional results identical to the unsampled run.
  EXPECT_EQ(RW.Status, RF.Status);
  EXPECT_EQ(RW.Output, RF.Output);
  EXPECT_EQ(RW.Stats.DynInsts, N);

  // The delivered stream is exactly the windows' slices, in order.
  std::vector<size_t> Expect;
  for (const SampleWindow &SW : Windows)
    for (uint64_t I = SW.Begin; I < SW.End && I < N; ++I)
      Expect.push_back(static_cast<size_t>(I));
  ASSERT_EQ(Win.Records.size(), Expect.size());
  for (size_t I = 0; I < Expect.size(); ++I) {
    EXPECT_EQ(Win.Records[I].Pc, Full.Records[Expect[I]].Pc) << I;
    EXPECT_EQ(Win.Records[I].Result, Full.Records[Expect[I]].Result) << I;
  }

  // No sink / empty windows degenerate to the plain run.
  RunResult RN = runProgramWindowed(DP, W.Ref, Windows);
  EXPECT_EQ(RN.Output, RF.Output);
  RunOptions OE = W.Ref;
  OE.Sink = &Win;
  RunResult RE = runProgramWindowed(DP, OE, {});
  EXPECT_EQ(RE.Output, RF.Output);
}

TEST(WindowedEngine, LightPrefixRecords) {
  Workload W = makeWorkload("compress", 0.02);
  DecodedProgram DP(W.Prog);
  RecordingSink Win;
  RunOptions O = W.Ref;
  O.Sink = &Win;
  // One window, first 300 records light.
  RunResult R = runProgramWindowed(DP, O, {{1000, 1800, 300}});
  ASSERT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(Win.Records.size(), 800u);
  for (size_t I = 0; I < 300; ++I)
    EXPECT_EQ(Win.Records[I].NumSrcs, 0u) << I; // light: no operand reads
  // Light records still carry the warming-relevant fields.
  bool SawMem = false, SawBranch = false;
  for (size_t I = 0; I < 300; ++I) {
    SawMem = SawMem || Win.Records[I].IsMem;
    SawBranch = SawBranch || Win.Records[I].IsBranch;
    EXPECT_NE(Win.Records[I].Pc, 0u);
  }
  EXPECT_TRUE(SawMem);
  EXPECT_TRUE(SawBranch);
}

TEST(WindowedEngine, RejectsUnsortedOrOverlappingWindows) {
  // Always-on (previously a debug-only assert): a mis-sorted window list
  // would silently deliver the wrong stream in Release builds.
  Workload W = makeWorkload("compress", 0.02);
  DecodedProgram DP(W.Prog);
  RecordingSink S;
  RunOptions O = W.Ref;
  O.Sink = &S;
  EXPECT_THROW(runProgramWindowed(DP, O, {{100, 200, 0}, {150, 300, 0}}),
               std::invalid_argument);
  EXPECT_THROW(runProgramWindowed(DP, O, {{500, 600, 0}, {100, 200, 0}}),
               std::invalid_argument);
}

TEST(WindowedEngine, WindowBeyondRunEndDeliversNothing) {
  Workload W = makeWorkload("compress", 0.02);
  DecodedProgram DP(W.Prog);
  RunResult RF = runProgram(DP, W.Ref);
  ASSERT_EQ(RF.Status, RunStatus::Halted);
  const uint64_t N = RF.Stats.DynInsts;

  // A window entirely past the end of the run: the functional result is
  // untouched and the sink sees nothing.
  RecordingSink S;
  RunOptions O = W.Ref;
  O.Sink = &S;
  RunResult R = runProgramWindowed(DP, O, {{N + 1000, N + 2000, 500}});
  EXPECT_EQ(R.Status, RF.Status);
  EXPECT_EQ(R.Output, RF.Output);
  EXPECT_EQ(R.Stats.DynInsts, N);
  EXPECT_TRUE(S.Records.empty());
}

TEST(IntervalProfiler, LightRecordsProfileIdenticallyToFullRecords) {
  // The profiling pass runs at light-record cost (prepareSampled):
  // everything the profiler reads must survive the light path untouched.
  Workload W = makeWorkload("li", 0.05);
  DecodedProgram DP(W.Prog);
  IntervalProfiler Full(DP, 2000), Light(DP, 2000);
  {
    RunOptions O = W.Ref;
    O.Sink = &Full;
    ASSERT_EQ(runProgram(DP, O).Status, RunStatus::Halted);
    Full.finish();
  }
  {
    RunOptions O = W.Ref;
    O.Sink = &Light;
    ASSERT_EQ(runProgramWindowed(DP, O, {{0, ~uint64_t(0), ~uint64_t(0)}})
                  .Status,
              RunStatus::Halted);
    Light.finish();
  }
  EXPECT_EQ(Full.totalInsts(), Light.totalInsts());
  EXPECT_EQ(Full.intervalInsts(), Light.intervalInsts());
  EXPECT_EQ(Full.bbvs(), Light.bbvs());
  EXPECT_EQ(Full.depths(), Light.depths());
  EXPECT_EQ(Full.chases(), Light.chases());
}

// ---------------------------------------------------------------------------
// Warm-state checkpoints

TEST(CheckpointWarmState, RestoreMatchesFullPrefixWarming) {
  // The checkpointed-warm-up contract: restoring a warm state captured
  // after warmOnly over a prefix leaves the core timing-identical to one
  // that actually replayed that prefix. Compared as snapshot deltas, so
  // the deliberately-unrestored statistics counters cancel.
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram DP(W.Prog);
  RecordingSink Trace;
  RunOptions O = W.Ref;
  O.Sink = &Trace;
  ASSERT_EQ(runProgram(DP, O).Status, RunStatus::Halted);
  ASSERT_GT(Trace.Records.size(), 3000u);
  const size_t M = Trace.Records.size() / 2;
  const size_t L = std::min<size_t>(Trace.Records.size() - M, 3000);

  const UarchConfig Cfg;
  OooCore A(Cfg, nullptr);
  A.warmOnly(Trace.Records.data(), M);
  const CoreWarmState Snap = A.warmState();
  const UarchStats A0 = A.snapshot();
  A.onBatch(Trace.Records.data() + M, L);
  const UarchStats A1 = A.snapshot();

  OooCore B(Cfg, nullptr);
  B.restoreWarmState(Snap);
  const UarchStats B0 = B.snapshot();
  B.onBatch(Trace.Records.data() + M, L);
  const UarchStats B1 = B.snapshot();

  EXPECT_EQ(A1.Insts - A0.Insts, B1.Insts - B0.Insts);
  EXPECT_EQ(A1.Cycles - A0.Cycles, B1.Cycles - B0.Cycles);
  EXPECT_EQ(A1.FetchGroups - A0.FetchGroups, B1.FetchGroups - B0.FetchGroups);
  EXPECT_EQ(A1.ICacheMisses - A0.ICacheMisses,
            B1.ICacheMisses - B0.ICacheMisses);
  EXPECT_EQ(A1.DL1Accesses - A0.DL1Accesses, B1.DL1Accesses - B0.DL1Accesses);
  EXPECT_EQ(A1.DL1Misses - A0.DL1Misses, B1.DL1Misses - B0.DL1Misses);
  EXPECT_EQ(A1.L2Accesses - A0.L2Accesses, B1.L2Accesses - B0.L2Accesses);
  EXPECT_EQ(A1.L2Misses - A0.L2Misses, B1.L2Misses - B0.L2Misses);
  EXPECT_EQ(A1.Branches - A0.Branches, B1.Branches - B0.Branches);
  EXPECT_EQ(A1.Mispredicts - A0.Mispredicts, B1.Mispredicts - B0.Mispredicts);
}

TEST(CheckpointWarmState, CheckpointedEstimateMatchesFullShadowEstimate) {
  // With a full-prefix shadow budget (WarmupFrac = 1, one window), the
  // shadow path replays the entire history before the window — which is
  // exactly what the checkpoint was captured from. The two estimates
  // must agree bit-for-bit, not just within tolerance. Capture is
  // unconditional now, so the shadow path is exercised by estimating
  // from the plan without passing the checkpoints.
  Workload W = makeWorkload("li", 0.1);
  DecodedProgram DP(W.Prog);
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  Spec.K = 1;
  Spec.SamplesPerCluster = 1;
  Spec.WarmupFrac = 1.0;

  const SampleArtifacts Art = prepareSampled(DP, W.Ref, UarchConfig(), Spec);
  ASSERT_EQ(Art.Checkpoints.size(), 1u);
  const SampleEstimate ES =
      runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                 EnergyCoefficients::defaults(), Art.Plan, Spec);
  const SampleEstimate EC =
      runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                 EnergyCoefficients::defaults(), Art.Plan, Spec,
                 &Art.Checkpoints);

  EXPECT_EQ(ES.Uarch.Insts, EC.Uarch.Insts);
  EXPECT_EQ(ES.Uarch.Cycles, EC.Uarch.Cycles);
  EXPECT_EQ(ES.Uarch.FetchGroups, EC.Uarch.FetchGroups);
  EXPECT_EQ(ES.Uarch.ICacheMisses, EC.Uarch.ICacheMisses);
  EXPECT_EQ(ES.Uarch.DL1Accesses, EC.Uarch.DL1Accesses);
  EXPECT_EQ(ES.Uarch.DL1Misses, EC.Uarch.DL1Misses);
  EXPECT_EQ(ES.Uarch.L2Misses, EC.Uarch.L2Misses);
  EXPECT_EQ(ES.Uarch.Branches, EC.Uarch.Branches);
  EXPECT_EQ(ES.Uarch.Mispredicts, EC.Uarch.Mispredicts);
  EXPECT_DOUBLE_EQ(ES.Report.TotalEnergy, EC.Report.TotalEnergy);
  // The whole point: the checkpointed pass feeds the detailed stack far
  // fewer instructions than the full-prefix shadow.
  EXPECT_LT(EC.DetailedInsts, ES.DetailedInsts);
}

TEST(CheckpointWarmState, MismatchedCheckpointCountIsRejected) {
  Workload W = makeWorkload("compress", 0.02);
  DecodedProgram DP(W.Prog);
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  const SampleArtifacts Art = prepareSampled(DP, W.Ref, UarchConfig(), Spec);
  ASSERT_GT(Art.Checkpoints.size(), 1u);
  std::vector<CoreWarmState> Truncated = Art.Checkpoints;
  Truncated.pop_back();
  EXPECT_THROW(runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                          EnergyCoefficients::defaults(), Art.Plan, Spec,
                          &Truncated),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Architectural checkpoints and window-parallel replay

/// Bit-level agreement between two sampled estimates: every hardware
/// counter, the energy total, the detailed-instruction count, and the
/// exact functional result. EXPECT_EQ (not EXPECT_DOUBLE_EQ) on the
/// energy — the replay contract is byte-identity, not tolerance.
void expectEstimatesBitIdentical(const SampleEstimate &A,
                                 const SampleEstimate &B,
                                 const std::string &What) {
  EXPECT_EQ(A.Uarch.Insts, B.Uarch.Insts) << What;
  EXPECT_EQ(A.Uarch.Cycles, B.Uarch.Cycles) << What;
  EXPECT_EQ(A.Uarch.FetchGroups, B.Uarch.FetchGroups) << What;
  EXPECT_EQ(A.Uarch.ICacheMisses, B.Uarch.ICacheMisses) << What;
  EXPECT_EQ(A.Uarch.DL1Accesses, B.Uarch.DL1Accesses) << What;
  EXPECT_EQ(A.Uarch.DL1Misses, B.Uarch.DL1Misses) << What;
  EXPECT_EQ(A.Uarch.L2Accesses, B.Uarch.L2Accesses) << What;
  EXPECT_EQ(A.Uarch.L2Misses, B.Uarch.L2Misses) << What;
  EXPECT_EQ(A.Uarch.Branches, B.Uarch.Branches) << What;
  EXPECT_EQ(A.Uarch.Mispredicts, B.Uarch.Mispredicts) << What;
  EXPECT_EQ(A.Report.TotalEnergy, B.Report.TotalEnergy) << What;
  EXPECT_EQ(A.DetailedInsts, B.DetailedInsts) << What;
  EXPECT_EQ(A.Run.Stats.DynInsts, B.Run.Stats.DynInsts) << What;
  EXPECT_EQ(A.Run.Output, B.Run.Output) << What;
}

TEST(ArchReplay, SerialParallelAndForcedFastForwardAgreeOnEveryWorkload) {
  // The tentpole contract, on every standard workload: window replay
  // from architectural checkpoints, the same replay spread over worker
  // threads, and forced whole-stream fast-forward (with window-entry
  // register injection) all produce bit-identical estimates.
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  for (const std::string &Name : allWorkloadNames()) {
    Workload W = makeWorkload(Name, 0.3);
    DecodedProgram DP(W.Prog);
    const SampleArtifacts Art = prepareSampled(DP, W.Ref, UarchConfig(), Spec);
    ASSERT_EQ(Art.ArchCheckpoints.size(), Art.Checkpoints.size()) << Name;
    ASSERT_FALSE(Art.ArchBudgetExceeded) << Name;
    SampleRunPolicy Parallel;
    Parallel.WindowJobs = 8;
    SampleRunPolicy Forced;
    Forced.ForceFastForward = true;
    const SampleEstimate Serial =
        runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                   EnergyCoefficients::defaults(), Art, Spec);
    const SampleEstimate Threaded =
        runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                   EnergyCoefficients::defaults(), Art, Spec, Parallel);
    const SampleEstimate FastForwarded =
        runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                   EnergyCoefficients::defaults(), Art, Spec, Forced);
    EXPECT_TRUE(Serial.Replayed) << Name;
    EXPECT_TRUE(Threaded.Replayed) << Name;
    EXPECT_FALSE(FastForwarded.Replayed) << Name;
    expectEstimatesBitIdentical(Serial, Threaded, Name + ": jobs=1 vs 8");
    expectEstimatesBitIdentical(Serial, FastForwarded,
                                Name + ": replay vs fast-forward");
  }
}

TEST(ArchReplay, BudgetFallbackCountsAndKeepsEstimatesValid) {
  // A capture budget too small for even one checkpoint: the arch capture
  // is abandoned and flagged, warm checkpoints survive untouched, and
  // estimation falls back to classic checkpointed fast-forward —
  // bit-identical to calling the plan-level path directly.
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram DP(W.Prog);
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  Spec.ArchCheckpointMaxBytes = 1;
  const SampleArtifacts Art = prepareSampled(DP, W.Ref, UarchConfig(), Spec);
  EXPECT_TRUE(Art.ArchCheckpoints.empty());
  EXPECT_TRUE(Art.ArchBudgetExceeded);
  EXPECT_GT(Art.ArchBytes, 1u); // what the meter saw when it tripped
  ASSERT_FALSE(Art.Checkpoints.empty());
  const SampleEstimate Fallback =
      runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                 EnergyCoefficients::defaults(), Art, Spec);
  EXPECT_FALSE(Fallback.Replayed);
  const SampleEstimate Classic =
      runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                 EnergyCoefficients::defaults(), Art.Plan, Spec,
                 &Art.Checkpoints);
  expectEstimatesBitIdentical(Fallback, Classic, "fallback vs classic");
}

/// Store-heavy loop whose writes straddle the 4 KiB page boundary
/// (unaligned quads at 4090..4135) and land inside the last, partial
/// page of a deliberately non-page-multiple memory — the two clamping
/// paths of dirty-page capture and delta splicing.
Program dirtyPageTortureProgram(int64_t Iters, uint64_t MemBytes) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 0); // counter
  F.ldi(RegT2, 0); // checksum
  F.block("loop");
  F.andi(RegT1, RegT0, 15);
  F.muli(RegT1, RegT1, 3);
  F.addi(RegT1, RegT1, 4090);
  F.st(Width::Q, RegT0, RegT1, 0); // straddles pages 0/1
  F.ld(Width::Q, RegT3, RegT1, 0);
  F.add(RegT2, RegT2, RegT3);
  F.ldi(RegT4, static_cast<int64_t>(MemBytes - 16));
  F.andi(RegT5, RegT0, 7);
  F.add(RegT4, RegT4, RegT5);
  F.st(Width::Q, RegT2, RegT4, 0); // inside the final partial page
  F.ld(Width::B, RegT3, RegT4, 0);
  F.add(RegT2, RegT2, RegT3);
  F.addi(RegT0, RegT0, 1);
  F.cmpltImm(RegT1, RegT0, Iters);
  F.bne(RegT1, "loop", "exit");
  F.block("exit");
  F.out(RegT2);
  F.halt();
  return PB.finish();
}

TEST(ArchReplay, DirtyPagesCrossPageAndMemoryEndBoundaries) {
  // Memory must cover the data segment base (0x10000); the extra 1000
  // bytes leave the final page partial so page capture has to clamp.
  const uint64_t MemBytes = (1u << 16) + 4096 + 1000;
  Program P = dirtyPageTortureProgram(2000, MemBytes);
  DecodedProgram DP(P);
  RunOptions Ref;
  Ref.Machine.MemBytes = MemBytes;
  RunResult Exact = runProgram(DP, Ref);
  ASSERT_EQ(Exact.Status, RunStatus::Halted);
  SampleSpec Spec;
  Spec.IntervalLen = 1000;
  const SampleArtifacts Art = prepareSampled(DP, Ref, UarchConfig(), Spec);
  ASSERT_FALSE(Art.ArchCheckpoints.empty());
  EXPECT_FALSE(Art.ArchBudgetExceeded);
  SampleRunPolicy Parallel;
  Parallel.WindowJobs = 4;
  SampleRunPolicy Forced;
  Forced.ForceFastForward = true;
  const SampleEstimate Replay =
      runSampled(DP, Ref, UarchConfig(), GatingScheme::Software,
                 EnergyCoefficients::defaults(), Art, Spec);
  const SampleEstimate Threaded =
      runSampled(DP, Ref, UarchConfig(), GatingScheme::Software,
                 EnergyCoefficients::defaults(), Art, Spec, Parallel);
  const SampleEstimate FastForwarded =
      runSampled(DP, Ref, UarchConfig(), GatingScheme::Software,
                 EnergyCoefficients::defaults(), Art, Spec, Forced);
  EXPECT_TRUE(Replay.Replayed);
  EXPECT_EQ(Replay.Run.Output, Exact.Output);
  EXPECT_EQ(Replay.Uarch.Insts, Exact.Stats.DynInsts);
  expectEstimatesBitIdentical(Replay, Threaded, "torture: jobs=1 vs 4");
  expectEstimatesBitIdentical(Replay, FastForwarded,
                              "torture: replay vs fast-forward");
}

// ---------------------------------------------------------------------------
// Weighted estimation: error bounds and cost at paper scale

struct ExactCell {
  EnergyReport Report;
  double Seconds = 0.0;
};

ExactCell runExact(const DecodedProgram &DP, const RunOptions &Ref) {
  ExactCell Out;
  double Best = 1e99;
  for (int Rep = 0; Rep < 2; ++Rep) {
    EnergyModel EM(GatingScheme::Software);
    OooCore Core(UarchConfig(), &EM);
    RunOptions O = Ref;
    O.Sink = &Core;
    auto T0 = std::chrono::steady_clock::now();
    RunResult R = runProgram(DP, O);
    double S = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             T0)
                   .count();
    EXPECT_EQ(R.Status, RunStatus::Halted);
    Out.Report = makeReport(EM, Core.finish());
    Best = std::min(Best, S);
  }
  Out.Seconds = Best;
  return Out;
}

TEST(SampledEstimation, ErrorBoundsOnEveryStandardWorkload) {
  // The acceptance bar of the sampled-simulation subsystem, at paper
  // scale: total-energy estimates within 2% of exact detailed
  // simulation and committed-instruction counts exact, for every
  // workload, under the default spec.
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  for (const std::string &Name : allWorkloadNames()) {
    Workload W = makeWorkload(Name, 1.0);
    DecodedProgram DP(W.Prog);
    ExactCell Exact = runExact(DP, W.Ref);
    SampleEstimate Est =
        estimateSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                        EnergyCoefficients::defaults(), Spec);
    SampleErrors Err = compareToExact(Est, Exact.Report);
    EXPECT_LE(std::fabs(Err.Energy), 0.02)
        << Name << ": energy " << Est.Report.TotalEnergy << " vs exact "
        << Exact.Report.TotalEnergy;
    EXPECT_EQ(Est.Uarch.Insts, Exact.Report.Uarch.Insts)
        << Name << ": committed-instruction estimate must be exact";
    EXPECT_EQ(Est.Run.Stats.DynInsts, Exact.Report.Uarch.Insts) << Name;
    // Low-history plans keep the detailed+warming stack to a small
    // fraction of the run; chase-heavy plans legitimately warm most of
    // it (that is the accuracy/speed trade the spec documents).
    if (Est.Plan.ChaseFrac < 0.01) {
      EXPECT_LT(Est.DetailedInsts, Est.Plan.TotalInsts / 2) << Name;
    }
    // Cluster weights partition the run.
    double WSum = 0;
    for (double Wgt : Est.Plan.Weights)
      WSum += Wgt;
    EXPECT_NEAR(WSum, 1.0, 1e-9) << Name;
  }
}

TEST(SampledEstimation, SingleIntervalProgramWorksOnBothWarmingPaths) {
  // An interval longer than the whole run degenerates to one interval,
  // one cluster, and one window starting at instruction 0 — i.e. empty
  // warm-up and a capture at index 0, which is the pristine core and
  // the pristine machine. Both estimation paths (window replay and, with
  // arch capture disabled, classic checkpointed fast-forward) must
  // handle it gracefully.
  Workload W = makeWorkload("compress", 0.02);
  DecodedProgram DP(W.Prog);
  RunResult RF = runProgram(DP, W.Ref);
  ASSERT_EQ(RF.Status, RunStatus::Halted);
  for (const uint64_t MaxBytes : {uint64_t(64) << 20, uint64_t(0)}) {
    SampleSpec Spec;
    Spec.IntervalLen = RF.Stats.DynInsts * 2; // single interval
    Spec.ArchCheckpointMaxBytes = MaxBytes;
    SampleEstimate Est =
        estimateSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                        EnergyCoefficients::defaults(), Spec);
    ASSERT_EQ(Est.Run.Status, RunStatus::Halted) << MaxBytes;
    EXPECT_EQ(Est.Plan.numIntervals(), 1u) << MaxBytes;
    EXPECT_EQ(Est.Plan.K, 1u) << MaxBytes;
    EXPECT_EQ(Est.Run.Output, RF.Output) << MaxBytes;
    EXPECT_EQ(Est.Uarch.Insts, RF.Stats.DynInsts)
        << MaxBytes << ": committed-instruction estimate must stay exact";
    EXPECT_GT(Est.Uarch.Cycles, 0u) << MaxBytes;
    EXPECT_EQ(Est.Replayed, MaxBytes != 0) << MaxBytes;
  }
}

TEST(SampledEstimation, KLargerThanIntervalCountClamps) {
  // --sample=L:K with more clusters than intervals must clamp, not fault
  // or produce empty clusters.
  Workload W = makeWorkload("compress", 0.02);
  DecodedProgram DP(W.Prog);
  RunResult RF = runProgram(DP, W.Ref);
  ASSERT_EQ(RF.Status, RunStatus::Halted);
  SampleSpec Spec;
  Spec.IntervalLen = RF.Stats.DynInsts / 3 + 1; // ~3 intervals
  Spec.K = 9;
  SampleEstimate Est =
      estimateSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                      EnergyCoefficients::defaults(), Spec);
  ASSERT_EQ(Est.Run.Status, RunStatus::Halted);
  EXPECT_LE(Est.Plan.K, Est.Plan.numIntervals());
  EXPECT_GE(Est.Plan.K, 1u);
  EXPECT_EQ(Est.Uarch.Insts, RF.Stats.DynInsts);
  double WSum = 0;
  for (double Wgt : Est.Plan.Weights)
    WSum += Wgt;
  EXPECT_NEAR(WSum, 1.0, 1e-9);
}

TEST(SampledEstimation, DeterministicAcrossRuns) {
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  Workload W = makeWorkload("gcc", 0.2);
  DecodedProgram DP(W.Prog);
  SampleEstimate A =
      estimateSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                      EnergyCoefficients::defaults(), Spec);
  SampleEstimate B =
      estimateSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                      EnergyCoefficients::defaults(), Spec);
  EXPECT_EQ(A.Uarch.Cycles, B.Uarch.Cycles);
  EXPECT_EQ(A.Report.TotalEnergy, B.Report.TotalEnergy);
  EXPECT_EQ(A.Plan.Reps, B.Plan.Reps);
  EXPECT_EQ(A.Plan.Assign, B.Plan.Assign);
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define OG_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define OG_SANITIZED 1
#endif
#endif

TEST(SampledEstimation, SampledIsMuchFasterThanExact) {
#if defined(OG_SANITIZED)
  GTEST_SKIP() << "wall-clock ratios are distorted under sanitizers";
#elif !defined(NDEBUG)
  GTEST_SKIP() << "wall-clock ratios are unrepresentative without "
                  "optimization";
#else
  // Wall-clock bar at paper scale, measured as best-of-N on both sides
  // so scheduler noise partially cancels. This test deliberately runs
  // the *shadow* warming path (runSampled without checkpoints) so both
  // warming strategies keep wall-clock coverage. Low-history workloads
  // (no pointer chasing: the estimation runs short warming shadows)
  // reach 5-7x each on unloaded hardware (bench_sample reports the
  // exact numbers); the asserted floors — 3x per workload, 4x aggregate
  // — leave headroom for loaded CI runners. Pointer-chasing workloads
  // trade speed for the 2% error bound via long chase-adaptive warming
  // shadows and must still clear 1.5x on this path; checkpointed
  // warm-up (the estimateSampled default for chase-heavy streams) is
  // what lifts them in real sweeps, and bench_sample's sweep table
  // reports that end-to-end number.
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  double LogSum = 0.0;
  int LowChase = 0;
  for (const std::string &Name : allWorkloadNames()) {
    Workload W = makeWorkload(Name, 1.0);
    DecodedProgram DP(W.Prog);
    ExactCell Exact = runExact(DP, W.Ref);

    IntervalProfiler Prof(DP, Spec.IntervalLen);
    RunOptions PO = W.Ref;
    PO.Sink = &Prof;
    runProgram(DP, PO);
    Prof.finish();
    SamplePlan Plan = makeSamplePlan(Prof, Spec);

    double Best = 1e99;
    for (int Rep = 0; Rep < 3; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      SampleEstimate Est =
          runSampled(DP, W.Ref, UarchConfig(), GatingScheme::Software,
                     EnergyCoefficients::defaults(), Plan, Spec);
      Best = std::min(Best,
                      std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - T0)
                          .count());
      ASSERT_EQ(Est.Run.Status, RunStatus::Halted);
    }
    const double Speedup = Exact.Seconds / Best;
    if (Plan.ChaseFrac < 0.01) {
      EXPECT_GE(Speedup, 3.0) << Name;
      LogSum += std::log(Speedup);
      ++LowChase;
    } else {
      EXPECT_GE(Speedup, 1.5) << Name << " (memory-history-bound)";
    }
  }
  ASSERT_GT(LowChase, 0);
  const double Geomean = std::exp(LogSum / LowChase);
  EXPECT_GE(Geomean, 4.0)
      << "aggregate sampled-estimation speedup over exact detailed "
         "simulation fell below the floor";
#endif
}

// ---------------------------------------------------------------------------
// Sampled sweeps through the driver and the report stack

std::vector<ExperimentSpec> sampledSweep() {
  std::vector<ExperimentSpec> Specs;
  for (const char *W : {"compress", "li"})
    for (ExperimentSpec S : standardConfigs()) {
      if (S.ConfigLabel != "baseline" && S.ConfigLabel != "vrp")
        continue;
      S.Workload = W;
      S.Scale = 0.15;
      S.Config.Sample.IntervalLen = 2000;
      S.Seed = specSeed(S);
      Specs.push_back(std::move(S));
    }
  return Specs;
}

TEST(SampledSweep, SerialAndParallelAreByteIdentical) {
  std::vector<ExperimentSpec> Specs = sampledSweep();
  SweepOptions O1, O8;
  O1.Jobs = 1;
  O8.Jobs = 8;
  SweepResult R1 = runSweep(Specs, O1);
  SweepResult R8 = runSweep(Specs, O8);
  ASSERT_TRUE(R1.AllOk) << R1.FirstError;
  ASSERT_TRUE(R8.AllOk) << R8.FirstError;

  std::ostringstream T1, T8;
  R1.Aggregate.print(T1);
  R8.Aggregate.print(T8);
  EXPECT_EQ(T1.str(), T8.str());

  SampleSpec Root;
  Root.IntervalLen = 2000;
  const std::string J1 =
      sweepToJson(R1.Aggregate, "standard", 0.15, false, &Root).toString();
  const std::string J8 =
      sweepToJson(R8.Aggregate, "standard", 0.15, false, &Root).toString();
  EXPECT_FALSE(J1.empty());
  EXPECT_EQ(J1, J8);

  // Every cell carries its sampling provenance.
  for (const auto &Cell : R1.Aggregate.sortedCells()) {
    EXPECT_TRUE(Cell.Sample.Used) << Cell.Workload << "/" << Cell.Label;
    EXPECT_GT(Cell.Sample.K, 0u);
    EXPECT_GT(Cell.Sample.Intervals, 0u);
  }
}

TEST(SampledSweep, DiffAgainstExactBaselineUsesWidenedRules) {
  // Exact and sampled runs of the same small sweep; the sampled document
  // must gate cleanly against the exact one under a widened tolerance,
  // with the estimated counters compared as metrics rather than exactly.
  std::vector<ExperimentSpec> Exact = sampledSweep();
  for (ExperimentSpec &S : Exact)
    S.Config.Sample = SampleSpec();
  SweepResult RE = runSweep(Exact, SweepOptions());
  SweepResult RS = runSweep(sampledSweep(), SweepOptions());
  ASSERT_TRUE(RE.AllOk) << RE.FirstError;
  ASSERT_TRUE(RS.AllOk) << RS.FirstError;

  const JsonValue BaseDoc = sweepToJson(RE.Aggregate, "standard", 0.15);
  SampleSpec Root;
  Root.IntervalLen = 2000;
  const JsonValue SampDoc =
      sweepToJson(RS.Aggregate, "standard", 0.15, false, &Root);

  // Sanity: the estimates differ from exact cycles somewhere (otherwise
  // the widened rules are vacuous) but stay within a loose tolerance.
  DiffOptions Wide;
  Wide.TolerancePct = 35.0;
  DiffResult DWide = diffReports(BaseDoc, SampDoc, Wide);
  EXPECT_TRUE(DWide.ok()) << (DWide.Findings.empty()
                                  ? ""
                                  : DWide.Findings.front().Path + ": " +
                                        DWide.Findings.front().What);

  // With a zero tolerance the estimated counters do produce findings —
  // but classified as tolerance breaches, never as structural ones.
  DiffOptions Zero;
  Zero.TolerancePct = 0.0;
  DiffResult DZero = diffReports(BaseDoc, SampDoc, Zero);
  EXPECT_FALSE(DZero.ok());
  for (const DiffFinding &F : DZero.Findings) {
    EXPECT_EQ(F.What.find("key"), std::string::npos) << F.Path;
    EXPECT_EQ(F.What.find("exact mismatch"), std::string::npos)
        << F.Path << ": estimated counters must diff under tolerance, "
        << F.What;
  }

  // Sampled-vs-sampled keeps full exact-counter discipline.
  DiffResult DSelf = diffReports(SampDoc, SampDoc, Zero);
  EXPECT_TRUE(DSelf.ok());

  // Functional counters never lose exact discipline in sampled cells: a
  // perturbed dyn-insts is an exact-mismatch finding even under a huge
  // tolerance that waves every estimate through.
  const std::vector<ExperimentSpec> Specs = sampledSweep();
  SweepResult RP = runSweep(Specs, SweepOptions());
  ASSERT_TRUE(RP.AllOk) << RP.FirstError;
  ResultAggregator Perturbed;
  for (size_t I = 0; I < Specs.size(); ++I) {
    PipelineResult R = RP.Outcomes[I].Result;
    if (I == 0)
      ++R.RefStats.DynInsts;
    Perturbed.add(Specs[I], R);
  }
  DiffOptions Huge;
  Huge.TolerancePct = 1e6;
  DiffResult DP = diffReports(
      BaseDoc, sweepToJson(Perturbed, "standard", 0.15, false, &Root), Huge);
  bool SawExactDynInsts = false;
  for (const DiffFinding &F : DP.Findings)
    SawExactDynInsts =
        SawExactDynInsts ||
        (F.Path.find("dyn-insts") != std::string::npos &&
         F.What.find("exact mismatch") != std::string::npos);
  EXPECT_TRUE(SawExactDynInsts)
      << "perturbed functional counter slipped through the sampled gate";
}

TEST(SampledSweep, ExactSweepDocumentShapeIsUnchanged) {
  // A sweep without sampling must not grow "sample" groups anywhere —
  // that is what keeps the checked-in exact baselines byte-identical.
  std::vector<ExperimentSpec> Exact = sampledSweep();
  for (ExperimentSpec &S : Exact)
    S.Config.Sample = SampleSpec();
  SweepResult R = runSweep(Exact, SweepOptions());
  ASSERT_TRUE(R.AllOk) << R.FirstError;
  const std::string Doc =
      sweepToJson(R.Aggregate, "standard", 0.15).toString();
  EXPECT_EQ(Doc.find("\"sample\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Aggregator duplicate-cell determinism (satellite fix)

TEST(ResultAggregator, DuplicateCellsKeepDeterministicOrder) {
  // Two distinct results under one (workload, config) key: sortedCells()
  // and print() must fall back to insertion order — deterministically —
  // rather than unspecified comparator behavior. This used to assert in
  // debug builds only; duplicates are now reported via duplicateKey()
  // in every build type, so the determinism contract is testable
  // everywhere.
  ExperimentSpec Spec;
  Spec.Workload = "w";
  Spec.ConfigLabel = "cfg";
  PipelineResult A, B;
  A.RefStats.DynInsts = 100;
  B.RefStats.DynInsts = 200;

  ResultAggregator Agg1, Agg2;
  Agg1.add(Spec, A);
  Agg1.add(Spec, B);
  Agg2.add(Spec, A);
  Agg2.add(Spec, B);

  auto S1 = Agg1.sortedCells(), S2 = Agg2.sortedCells();
  ASSERT_EQ(S1.size(), 2u);
  EXPECT_EQ(S1[0].DynInsts, 100u);
  EXPECT_EQ(S1[1].DynInsts, 200u);
  ASSERT_EQ(S2.size(), 2u);
  EXPECT_EQ(S2[0].DynInsts, S1[0].DynInsts);
  EXPECT_EQ(S2[1].DynInsts, S1[1].DynInsts);

  std::ostringstream P1, P2;
  Agg1.print(P1);
  Agg2.print(P2);
  EXPECT_EQ(P1.str(), P2.str());

  // The always-on duplicate detector names the colliding key; tools turn
  // that into a hard error instead of printing a double-rowed table.
  EXPECT_EQ(Agg1.duplicateKey(), "w/cfg");

  ResultAggregator Unique;
  Unique.add(Spec, A);
  ExperimentSpec Other = Spec;
  Other.ConfigLabel = "cfg2";
  Unique.add(Other, B);
  EXPECT_EQ(Unique.duplicateKey(), "");
}

// ---------------------------------------------------------------------------
// Cross-cell plan sharing (tentpole: SamplePlanCache)

TEST(SamplePlanCache, KeyDistinguishesStreamsAndContexts) {
  Program P1 = branchyProgram(64);
  Program P2 = branchyProgram(65);
  RunOptions O;
  UarchConfig U;
  SampleSpec S;
  S.IntervalLen = 2000;

  const std::string Base = sampleStreamKey(P1, O, U, S);
  EXPECT_EQ(Base, sampleStreamKey(P1, O, U, S)) << "key must be stable";

  EXPECT_NE(Base, sampleStreamKey(P2, O, U, S)) << "program must feed the key";

  RunOptions O2 = O;
  O2.Fuel += 1;
  EXPECT_NE(Base, sampleStreamKey(P1, O2, U, S)) << "Fuel must feed the key";

  SampleSpec S2 = S;
  S2.IntervalLen = 4000;
  EXPECT_NE(Base, sampleStreamKey(P1, O, U, S2))
      << "SampleSpec must feed the key";

  UarchConfig U2 = U;
  U2.L2SizeKB *= 2;
  EXPECT_NE(Base, sampleStreamKey(P1, O, U2, S))
      << "UarchConfig must feed the key";
}

TEST(SamplePlanCache, WarmKeyIgnoresWidthOnlyRewrites) {
  // The warm key must treat a width-only rewrite (VRP narrowing sets
  // Instruction::W in place and nothing else) as the same stream — that
  // is what lets baseline and VRP cells share one profiling + capture
  // pass — while the stream key, which guards the width-sensitive
  // activity histogram, must still tell them apart.
  Program P1 = branchyProgram(64);
  Program P2 = P1;
  Instruction &I = P2.Funcs[0].Blocks[0].Insts[0];
  ASSERT_NE(I.W, Width::B);
  I.W = Width::B;

  RunOptions O;
  UarchConfig U;
  SampleSpec S;
  S.IntervalLen = 2000;

  EXPECT_EQ(sampleWarmKey(P1, O, U, S), sampleWarmKey(P2, O, U, S))
      << "widths must not feed the warm key";
  EXPECT_NE(sampleStreamKey(P1, O, U, S), sampleStreamKey(P2, O, U, S))
      << "widths must feed the stream key";

  // Any non-width difference still separates warm keys.
  Program P3 = P1;
  P3.Funcs[0].Blocks[0].Insts[0].Imm += 1;
  EXPECT_NE(sampleWarmKey(P1, O, U, S), sampleWarmKey(P3, O, U, S))
      << "immediates must feed the warm key";

  // The two key kinds never collide for one program (domain separation).
  EXPECT_NE(sampleWarmKey(P1, O, U, S), sampleStreamKey(P1, O, U, S));
}

TEST(SamplePlanCache, ComputesOncePerKey) {
  SamplePlanCache Cache;
  int Calls = 0;
  auto Compute = [&Calls] {
    ++Calls;
    auto Art = std::make_shared<SampleArtifacts>();
    Art->Plan.K = static_cast<unsigned>(Calls);
    return std::shared_ptr<const SampleArtifacts>(std::move(Art));
  };

  auto A = Cache.getOrCompute("k1", Compute);
  auto B = Cache.getOrCompute("k1", Compute);
  EXPECT_EQ(Calls, 1) << "same key must compute once";
  EXPECT_EQ(A.get(), B.get()) << "hits must return the cached artifacts";

  auto C = Cache.getOrCompute("k2", Compute);
  EXPECT_EQ(Calls, 2);
  EXPECT_NE(A.get(), C.get());
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(SampledSweep, CellsShareWarmArtifactsAndStreamEstimates) {
  // The seven standard configs of one workload must pay one profiling +
  // capture pass per distinct *warm key* (width-blind binary) and one
  // detailed estimation pass per distinct *stream key* (exact binary) —
  // never one of each per cell. The exact group sizes are
  // workload-dependent (VRS collapses into the VRP group when its guards
  // are unprofitable), so assert the cache against the keys of the
  // transformed binaries the cells actually produced.
  SamplePlanCache Cache;
  std::set<std::string> WarmKeys, StreamKeys;
  unsigned Cells = 0;
  for (ExperimentSpec S : standardConfigs()) {
    S.Workload = "compress";
    S.Scale = 0.15;
    S.Config.Sample.IntervalLen = 2000;
    Workload W = makeWorkload(S.Workload, S.Scale);
    PipelineResult R = runPipeline(W, S.Config, /*BaseDecode=*/nullptr, &Cache);
    WarmKeys.insert(
        sampleWarmKey(R.Transformed, W.Ref, S.Config.Uarch, S.Config.Sample));
    StreamKeys.insert(sampleStreamKey(R.Transformed, W.Ref, S.Config.Uarch,
                                      S.Config.Sample));
    ++Cells;
  }
  EXPECT_EQ(Cells, 7u);
  EXPECT_EQ(Cache.size(), WarmKeys.size())
      << "one prepared artifact per distinct width-blind binary";
  EXPECT_EQ(Cache.estimateCount(), StreamKeys.size())
      << "one detailed pass per distinct transformed binary";
  // Sharing must actually bite: the scheme-only cells (baseline, hw-sig,
  // hw-size) guarantee at most 5 distinct binaries out of 7, and VRP
  // narrowing guarantees a width-only pair, so warm groups are strictly
  // coarser than stream groups.
  EXPECT_LE(StreamKeys.size(), 5u);
  EXPECT_LT(WarmKeys.size(), StreamKeys.size());
}

TEST(SampledSweep, PlanCacheDoesNotChangeResults) {
  // Plan sharing is a pure memoization: a sweep run through the shared
  // SamplePlanCache must render byte-for-byte the same JSON document as
  // running every cell's pipeline with no cache at all.
  const std::vector<ExperimentSpec> Specs = sampledSweep();

  SweepResult Cached = runSweep(Specs, SweepOptions());
  ASSERT_TRUE(Cached.AllOk) << Cached.FirstError;

  ResultAggregator Uncached;
  for (const ExperimentSpec &S : Specs) {
    Workload W = makeWorkload(S.Workload, S.Scale);
    PipelineResult R = runPipeline(W, S.Config, /*BaseDecode=*/nullptr,
                                   /*PlanCache=*/nullptr);
    Uncached.add(S, R);
  }

  SampleSpec Root;
  Root.IntervalLen = 2000;
  const std::string DocCached =
      sweepToJson(Cached.Aggregate, "standard", 0.15, false, &Root).toString();
  const std::string DocUncached =
      sweepToJson(Uncached, "standard", 0.15, false, &Root).toString();
  EXPECT_EQ(DocCached, DocUncached);
}

} // namespace
