//===- tests/IsaTest.cpp - isa/ unit tests -----------------------------------==//

#include "isa/Instruction.h"

#include <gtest/gtest.h>

using namespace og;

TEST(Width, BytesAndBits) {
  EXPECT_EQ(widthBytes(Width::B), 1u);
  EXPECT_EQ(widthBytes(Width::H), 2u);
  EXPECT_EQ(widthBytes(Width::W), 4u);
  EXPECT_EQ(widthBytes(Width::Q), 8u);
  EXPECT_EQ(widthBits(Width::W), 32u);
}

TEST(Width, ForBytes) {
  EXPECT_EQ(widthForBytes(1), Width::B);
  EXPECT_EQ(widthForBytes(2), Width::H);
  EXPECT_EQ(widthForBytes(3), Width::W);
  EXPECT_EQ(widthForBytes(4), Width::W);
  EXPECT_EQ(widthForBytes(5), Width::Q);
  EXPECT_EQ(widthForBytes(8), Width::Q);
}

TEST(Width, SignedBounds) {
  EXPECT_EQ(widthSignedMin(Width::B), -128);
  EXPECT_EQ(widthSignedMax(Width::B), 127);
  EXPECT_EQ(widthSignedMin(Width::W), INT32_MIN);
  EXPECT_EQ(widthSignedMax(Width::W), INT32_MAX);
  EXPECT_EQ(widthSignedMin(Width::Q), INT64_MIN);
  EXPECT_EQ(widthUnsignedMax(Width::H), 0xFFFFull);
}

TEST(Width, ForSignedRange) {
  EXPECT_EQ(widthForSignedRange(0, 100), Width::B);
  EXPECT_EQ(widthForSignedRange(0, 255), Width::H);
  EXPECT_EQ(widthForSignedRange(-40000, 0), Width::W);
}

TEST(WidthSet, NarrowestAtLeast) {
  WidthSet S{Width::B, Width::W, Width::Q};
  EXPECT_EQ(S.narrowestAtLeast(Width::B), Width::B);
  EXPECT_EQ(S.narrowestAtLeast(Width::H), Width::W); // H not encodable
  EXPECT_EQ(S.narrowestAtLeast(Width::W), Width::W);
  EXPECT_EQ(S.narrowestAtLeast(Width::Q), Width::Q);
  EXPECT_EQ(WidthSet::onlyQ().narrowestAtLeast(Width::B), Width::Q);
}

TEST(Registers, NamesRoundTrip) {
  for (Reg R = 0; R < NumRegs; ++R)
    EXPECT_EQ(parseRegName(regName(R)), R) << unsigned(R);
  EXPECT_EQ(parseRegName("r13"), 13);
  EXPECT_EQ(parseRegName("nosuch"), NumRegs);
  EXPECT_EQ(parseRegName("r32"), NumRegs);
}

TEST(Registers, AbiPartition) {
  unsigned CalleeSaved = 0, CallerSaved = 0;
  for (Reg R = 0; R < NumRegs; ++R) {
    EXPECT_FALSE(isCalleeSaved(R) && isCallerSaved(R)) << unsigned(R);
    CalleeSaved += isCalleeSaved(R);
    CallerSaved += isCallerSaved(R);
  }
  EXPECT_EQ(CalleeSaved + CallerSaved + 1, NumRegs); // zero is neither
  EXPECT_TRUE(isCalleeSaved(RegS0));
  EXPECT_TRUE(isCalleeSaved(RegSP));
  EXPECT_TRUE(isCallerSaved(RegV0));
  EXPECT_TRUE(isCallerSaved(RegA0));
}

// Every op's metadata must be self-consistent.
class OpInfoTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(OpInfoTest, MetadataConsistent) {
  Op O = static_cast<Op>(GetParam());
  const OpInfo &Info = opInfo(O);
  EXPECT_NE(Info.Mnemonic, nullptr);
  // Terminators never write registers.
  if (Info.IsTerminator) {
    EXPECT_FALSE(Info.HasDest);
  }
  if (Info.IsCondBranch) {
    EXPECT_TRUE(Info.IsTerminator);
  }
  // Mnemonics parse back to the op.
  Op Parsed;
  EXPECT_TRUE(parseOpMnemonic(Info.Mnemonic, Parsed));
  EXPECT_EQ(Parsed, O);
  // The encodable width sets always include Q.
  EXPECT_TRUE(encodableWidths(O, IsaPolicy::BaseAlpha).contains(Width::Q));
  EXPECT_TRUE(encodableWidths(O, IsaPolicy::Extended).contains(Width::Q));
  // Extended is a superset of BaseAlpha.
  for (unsigned WI = 0; WI < 4; ++WI) {
    Width W = static_cast<Width>(WI);
    if (encodableWidths(O, IsaPolicy::BaseAlpha).contains(W)) {
      EXPECT_TRUE(encodableWidths(O, IsaPolicy::Extended).contains(W));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpInfoTest,
                         ::testing::Range(0u, NumOps));

TEST(Opcode, PaperExtensionWidths) {
  // Section 4.3: the extension adds byte+halfword add, byte sub, byte and
  // word logicals/shifts/cmovs/comparisons; MUL gains nothing.
  EXPECT_TRUE(encodableWidths(Op::Add, IsaPolicy::Extended).contains(Width::H));
  EXPECT_FALSE(
      encodableWidths(Op::Add, IsaPolicy::BaseAlpha).contains(Width::H));
  EXPECT_TRUE(encodableWidths(Op::Sub, IsaPolicy::Extended).contains(Width::B));
  EXPECT_FALSE(
      encodableWidths(Op::Sub, IsaPolicy::Extended).contains(Width::H));
  EXPECT_FALSE(
      encodableWidths(Op::Mul, IsaPolicy::Extended).contains(Width::B));
  EXPECT_TRUE(encodableWidths(Op::And, IsaPolicy::Extended).contains(Width::B));
  EXPECT_FALSE(
      encodableWidths(Op::And, IsaPolicy::BaseAlpha).contains(Width::B));
  // Loads/stores exist at all widths in both.
  EXPECT_TRUE(encodableWidths(Op::Ld, IsaPolicy::BaseAlpha).contains(Width::B));
  EXPECT_TRUE(encodableWidths(Op::St, IsaPolicy::BaseAlpha).contains(Width::H));
}

TEST(Instruction, SourcesOfStoreIncludeValue) {
  Instruction St = Instruction::store(Width::W, RegT1, RegT0, 8);
  ASSERT_EQ(St.numRegSources(), 2u);
  EXPECT_EQ(St.regSource(0), RegT0); // base
  EXPECT_EQ(St.regSource(1), RegT1); // value
  EXPECT_TRUE(St.readsRbRegister());
}

TEST(Instruction, SourcesOfCmovIncludeOldDest) {
  Instruction I = Instruction::alu(Op::CmovEq, Width::Q, RegT2, RegT0, RegT1);
  ASSERT_EQ(I.numRegSources(), 3u);
  EXPECT_EQ(I.regSource(0), RegT0);
  EXPECT_EQ(I.regSource(1), RegT1);
  EXPECT_EQ(I.regSource(2), RegT2);
}

TEST(Instruction, ImmAluHasOneSource) {
  Instruction I = Instruction::aluImm(Op::Add, Width::Q, RegT2, RegT0, 5);
  ASSERT_EQ(I.numRegSources(), 1u);
  EXPECT_EQ(I.regSource(0), RegT0);
  EXPECT_FALSE(I.readsRbRegister());
}

TEST(Instruction, Factories) {
  EXPECT_TRUE(Instruction::br(3).isTerminator());
  EXPECT_TRUE(Instruction::condBr(Op::Bne, RegT0, 2).isCondBranch());
  EXPECT_TRUE(Instruction::jsr(1).isCall());
  EXPECT_TRUE(Instruction::load(Width::B, RegT0, RegT1, 0).isLoad());
  EXPECT_TRUE(Instruction::store(Width::B, RegT0, RegT1, 0).isStore());
  EXPECT_FALSE(Instruction::nop().hasDest());
  Instruction Msk = Instruction::msk(Width::H, RegT0, RegT1, 3);
  EXPECT_EQ(Msk.Imm, 3);
  EXPECT_FALSE(Instruction::halt().str().empty());
}
