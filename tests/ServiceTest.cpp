//===- tests/ServiceTest.cpp - Sweep service + cell cache tests ------------==//
//
// Integration coverage of src/service/: CellKey content addressing (the
// round-trip, collision-freedom, and program-hash sensitivity the
// persistent cache's correctness rests on), ResultCache staleness and
// mismatch handling, SweepRequest's JSON form, and the SweepService
// serving contract — cold serves byte-identical to the batch driver,
// warm serves recomputing nothing, and concurrent identical requests
// triggering exactly one computation.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "report/ReportSchema.h"
#include "service/CellKey.h"
#include "service/ResultCache.h"
#include "service/SweepService.h"
#include "support/Hash.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <thread>

using namespace og;

namespace {

/// A fresh empty directory under the test temp root.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "ogate-service-" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// One-workload standard request at smoke scale: 7 cells, fast enough
/// to serve several times per test.
SweepRequest compressRequest(double Scale = 0.02) {
  SweepRequest R;
  R.Workloads = {"compress"};
  R.Scale = Scale;
  return R;
}

/// What batch mode produces for \p R through the plain driver (the
/// pre-service reference path: default job, aggregate-at-the-end).
std::string batchDocument(const SweepRequest &R) {
  Expected<std::vector<ExperimentSpec>> Specs = R.buildSpecs();
  EXPECT_TRUE(bool(Specs)) << Specs.error();
  SweepOptions SO;
  SO.Jobs = 2;
  SweepResult Out = runSweep(*Specs, SO);
  EXPECT_TRUE(Out.AllOk) << Out.FirstError;
  return sweepToJson(Out.Aggregate, R.SweepKind, R.Scale, R.Report.OptStats,
                     R.Sample.enabled() ? &R.Sample : nullptr,
                     R.Report.EngineStats)
      .toString();
}

// --- CellKey -------------------------------------------------------------

TEST(CellKeyTest, JsonRoundTrip) {
  Workload W = makeWorkload("compress", 0.02);
  std::vector<ExperimentSpec> Specs = makeStandardSweep({"compress"}, 0.02);
  ASSERT_FALSE(Specs.empty());
  for (const ExperimentSpec &S : Specs) {
    CellKey K = makeCellKey(S, W);
    Expected<CellKey> Back = CellKey::fromJson(K.toJson());
    ASSERT_TRUE(bool(Back)) << Back.error();
    EXPECT_EQ(*Back, K);
    EXPECT_EQ(Back->address(), K.address());
  }
}

TEST(CellKeyTest, FromJsonIsStrict) {
  Workload W = makeWorkload("compress", 0.02);
  CellKey K = makeCellKey(makeStandardSweep({"compress"}, 0.02)[0], W);

  JsonValue Missing = K.toJson();
  Missing.set("program-hash", JsonValue::null());
  EXPECT_FALSE(bool(CellKey::fromJson(Missing)));

  JsonValue BadHex = K.toJson();
  BadHex.set("seed", JsonValue::str("12345")); // no 0x prefix
  EXPECT_FALSE(bool(CellKey::fromJson(BadHex)));

  EXPECT_FALSE(bool(CellKey::fromJson(JsonValue::str("not an object"))));
}

TEST(CellKeyTest, NoCollisionsAcrossSweepScalesAndSeeds) {
  // Every cell of the full standard sweep, at two scales, plus a
  // seed-overridden variant of each: all addresses (and keys) distinct.
  std::map<std::pair<std::string, double>, Workload> Built;
  std::set<std::string> Addresses;
  std::vector<CellKey> Keys;
  for (double Scale : {0.02, 0.05}) {
    for (ExperimentSpec S : makeStandardSweep(Scale)) {
      auto WIt = Built.find({S.Workload, Scale});
      if (WIt == Built.end())
        WIt = Built.emplace(std::make_pair(S.Workload, Scale),
                            makeWorkload(S.Workload, Scale))
                  .first;
      for (uint64_t Seed : {uint64_t(0), uint64_t(0xdeadbeef)}) {
        S.Seed = Seed;
        CellKey K = makeCellKey(S, WIt->second);
        for (const CellKey &Prev : Keys)
          ASSERT_NE(K, Prev);
        Keys.push_back(K);
        Addresses.insert(K.address());
      }
    }
  }
  // 8 workloads x standard configs x 2 scales x 2 seeds, no collisions.
  EXPECT_EQ(Addresses.size(), Keys.size());
  EXPECT_EQ(Keys.size(), makeStandardSweep(0.02).size() * 4);
}

TEST(CellKeyTest, ProgramHashStableAcrossInstancesSensitiveToEdits) {
  // Two independent builds of the same workload hash alike (the cache
  // must hit across processes and decode instances) ...
  Workload A = makeWorkload("compress", 0.02);
  Workload B = makeWorkload("compress", 0.02);
  EXPECT_EQ(structuralProgramHash(A.Prog), structuralProgramHash(B.Prog));

  // ... while any instruction edit changes the hash.
  Program Edited = A.Prog;
  ASSERT_FALSE(Edited.Funcs.empty());
  ASSERT_FALSE(Edited.Funcs[0].Blocks.empty());
  ASSERT_FALSE(Edited.Funcs[0].Blocks[0].Insts.empty());
  Edited.Funcs[0].Blocks[0].Insts[0].Imm += 1;
  EXPECT_NE(structuralProgramHash(A.Prog), structuralProgramHash(Edited));

  // Width edits are structural by default but ignored when the caller
  // asks for the width-independent variant (the sample-plan key space).
  Program Widened = A.Prog;
  Instruction &I = Widened.Funcs[0].Blocks[0].Insts[0];
  I.W = I.W == Width::Q ? Width::W : Width::Q;
  EXPECT_NE(structuralProgramHash(A.Prog), structuralProgramHash(Widened));
  EXPECT_EQ(structuralProgramHash(A.Prog, /*IncludeWidths=*/false),
            structuralProgramHash(Widened, /*IncludeWidths=*/false));
}

// --- ResultCache ---------------------------------------------------------

/// Stores one real cell under its key and returns (key, cache file path).
struct StoredCell {
  CellKey Key;
  ResultAggregator::Cell Cell;
  std::string Path;
};

StoredCell storeOneCell(ResultCache &Cache) {
  Workload W = makeWorkload("compress", 0.02);
  ExperimentSpec Spec = makeStandardSweep({"compress"}, 0.02)[0];
  StoredCell S;
  S.Key = makeCellKey(Spec, W);
  S.Cell = ResultAggregator::makeCell(Spec, runPipeline(W, Spec.Config));
  Cache.store(S.Key, S.Cell);
  S.Path = Cache.dir() + "/" + S.Key.address() + ".json";
  EXPECT_EQ(std::filesystem::exists(S.Path), Cache.enabled());
  return S;
}

TEST(ResultCacheTest, StoreThenLookupHitsWithIdenticalCell) {
  ResultCache Cache(freshDir("roundtrip"));
  StoredCell S = storeOneCell(Cache);
  std::optional<ResultAggregator::Cell> Back = Cache.lookup(S.Key);
  ASSERT_TRUE(Back.has_value());
  // The cached cell re-serializes byte-identically: that is what makes
  // warm sweep documents byte-equal to cold ones.
  EXPECT_EQ(sweepCellToJson(*Back, true, true).toString(),
            sweepCellToJson(S.Cell, true, true).toString());
  EXPECT_EQ(Cache.counters().Hits, 1u);
  EXPECT_EQ(Cache.counters().Stores, 1u);
}

TEST(ResultCacheTest, StaleSchemaVersionMissesInsteadOfHitting) {
  ResultCache Cache(freshDir("stale"));
  StoredCell S = storeOneCell(Cache);

  // Rewrite the envelope as a future schema version would have: the
  // entry must miss (and be recomputed), never surface as a hit.
  Expected<JsonValue> Doc = readJsonFile(S.Path);
  ASSERT_TRUE(bool(Doc));
  Doc->set("version", JsonValue::integer(ReportSchemaVersion + 1));
  ASSERT_TRUE(writeJsonFile(S.Path, *Doc));

  EXPECT_FALSE(Cache.lookup(S.Key).has_value());
  EXPECT_EQ(Cache.counters().StaleSchema, 1u);
  EXPECT_EQ(Cache.counters().Hits, 0u);
}

TEST(ResultCacheTest, ForeignFileUnderAddressMissesAsKeyMismatch) {
  ResultCache Cache(freshDir("mismatch"));
  StoredCell S = storeOneCell(Cache);

  // Drop the stored file in under a DIFFERENT key's address (what an
  // FNV collision would look like): the full-key re-check must miss.
  ExperimentSpec Other = makeStandardSweep({"compress"}, 0.02)[1];
  CellKey OtherKey = makeCellKey(Other, makeWorkload("compress", 0.02));
  ASSERT_NE(OtherKey, S.Key);
  std::filesystem::copy_file(S.Path,
                             Cache.dir() + "/" + OtherKey.address() + ".json");

  EXPECT_FALSE(Cache.lookup(OtherKey).has_value());
  EXPECT_EQ(Cache.counters().KeyMismatch, 1u);
}

TEST(ResultCacheTest, UsageScansEntriesAndBytes) {
  ResultCache Cache(freshDir("usage"));
  EXPECT_EQ(Cache.usage().Entries, 0u);
  EXPECT_EQ(Cache.usage().Bytes, 0u);

  StoredCell S = storeOneCell(Cache);
  const ResultCache::Usage U = Cache.usage();
  EXPECT_EQ(U.Entries, 1u);
  EXPECT_EQ(U.Bytes, std::filesystem::file_size(S.Path));

  ResultCache Disabled("");
  EXPECT_EQ(Disabled.usage().Entries, 0u);
}

TEST(ResultCacheTest, MaxBytesEvictsOldestFirstNeverTheJustStoredCell) {
  const std::string Dir = freshDir("evict");
  Workload W = makeWorkload("compress", 0.02);
  std::vector<ExperimentSpec> Specs = makeStandardSweep({"compress"}, 0.02);
  ASSERT_GE(Specs.size(), 4u);
  auto CellFor = [&](const ExperimentSpec &S) {
    return ResultAggregator::makeCell(S, runPipeline(W, S.Config));
  };

  // Fill three cells through an unbounded cache, then back-date them
  // with strictly increasing age gaps so the eviction order is
  // deterministic regardless of store timing granularity.
  ResultCache Unbounded(Dir);
  std::vector<std::string> Paths;
  for (size_t I = 0; I < 3; ++I) {
    CellKey K = makeCellKey(Specs[I], W);
    Unbounded.store(K, CellFor(Specs[I]));
    Paths.push_back(Dir + "/" + K.address() + ".json");
  }
  const auto Newest = std::filesystem::last_write_time(Paths.back());
  for (size_t I = 0; I < 3; ++I)
    std::filesystem::last_write_time(
        Paths[I], Newest - std::chrono::hours(3 - static_cast<int>(I)));
  const ResultCache::Usage Full = Unbounded.usage();
  ASSERT_EQ(Full.Entries, 3u);
  EXPECT_EQ(Unbounded.counters().Evictions, 0u);

  // Budget = the current total: storing a fourth cell goes over, and
  // the sweep removes the oldest entries until the directory fits.
  ResultCache Bounded(Dir, Full.Bytes);
  CellKey Fourth = makeCellKey(Specs[3], W);
  Bounded.store(Fourth, CellFor(Specs[3]));
  const std::string FourthPath = Dir + "/" + Fourth.address() + ".json";
  EXPECT_TRUE(std::filesystem::exists(FourthPath));
  EXPECT_FALSE(std::filesystem::exists(Paths[0])); // oldest goes first
  EXPECT_LE(Bounded.usage().Bytes, Full.Bytes);
  EXPECT_GE(Bounded.counters().Evictions, 1u);
  EXPECT_GT(Bounded.counters().EvictedBytes, 0u);

  // A budget smaller than any single cell still keeps the cell just
  // stored (a store must stay useful) and clears everything else.
  ResultCache Tiny(Dir, 1);
  CellKey First = makeCellKey(Specs[0], W);
  Tiny.store(First, CellFor(Specs[0]));
  const ResultCache::Usage After = Tiny.usage();
  EXPECT_EQ(After.Entries, 1u);
  EXPECT_TRUE(
      std::filesystem::exists(Dir + "/" + First.address() + ".json"));
}

TEST(ResultCacheTest, DisabledCacheCountsMissesAndStoresNothing) {
  ResultCache Cache("");
  EXPECT_FALSE(Cache.enabled());
  StoredCell S = storeOneCell(Cache); // store is a no-op
  EXPECT_FALSE(std::filesystem::exists(S.Path));
  EXPECT_FALSE(Cache.lookup(S.Key).has_value());
  EXPECT_EQ(Cache.counters().Misses, 1u);
  EXPECT_EQ(Cache.counters().Stores, 0u);
}

// --- SweepRequest --------------------------------------------------------

TEST(SweepRequestTest, JsonRoundTrip) {
  SweepRequest R;
  R.SweepKind = "matrix";
  R.Scale = 0.1;
  R.Workloads = {"compress", "li"};
  R.Sample.IntervalLen = 1000;
  R.Sample.K = 3;
  R.Report.OptStats = true;

  Expected<SweepRequest> Back = SweepRequest::fromJson(R.toJson());
  ASSERT_TRUE(bool(Back)) << Back.error();
  EXPECT_EQ(Back->SweepKind, R.SweepKind);
  EXPECT_EQ(Back->Scale, R.Scale);
  EXPECT_EQ(Back->Workloads, R.Workloads);
  EXPECT_EQ(Back->Sample.IntervalLen, R.Sample.IntervalLen);
  EXPECT_EQ(Back->Sample.K, R.Sample.K);
  EXPECT_TRUE(Back->Report.OptStats);
  EXPECT_FALSE(Back->Report.EngineStats);
  // The wire form itself round-trips byte-exactly.
  EXPECT_EQ(Back->toJson().toCompactString(), R.toJson().toCompactString());
}

TEST(SweepRequestTest, FromJsonRejectsUnknownAndMistyped) {
  JsonValue V = SweepRequest().toJson();
  V.set("jobs", JsonValue::integer(4)); // execution knob, not request
  EXPECT_FALSE(bool(SweepRequest::fromJson(V)));

  JsonValue Bad = SweepRequest().toJson();
  Bad.set("scale", JsonValue::number(-1.0));
  EXPECT_FALSE(bool(SweepRequest::fromJson(Bad)));

  EXPECT_FALSE(bool(SweepRequest::fromJson(JsonValue::array())));
}

TEST(SweepRequestTest, BuildSpecsValidates) {
  SweepRequest R = compressRequest();
  R.Workloads = {"nonesuch"};
  Expected<std::vector<ExperimentSpec>> Specs = R.buildSpecs();
  ASSERT_FALSE(bool(Specs));
  EXPECT_NE(Specs.error().find("unknown workload 'nonesuch'"),
            std::string::npos);

  R = compressRequest();
  R.SweepKind = "diagonal";
  EXPECT_FALSE(bool(R.buildSpecs()));

  R = compressRequest();
  R.Sample.IntervalLen = 500;
  Specs = R.buildSpecs();
  ASSERT_TRUE(bool(Specs));
  for (const ExperimentSpec &S : *Specs)
    EXPECT_EQ(S.Config.Sample.IntervalLen, 500u);
}

TEST(ReportOptionsTest, OneValidationPath) {
  ReportOptions R;
  EXPECT_EQ(validateReportOptions(R, true, false), "");
  EXPECT_EQ(validateReportOptions(R, false, false), "");

  R.TimingLine = true;
  EXPECT_NE(validateReportOptions(R, true, false), "");
  EXPECT_EQ(validateReportOptions(R, false, false), "");
  R.TimingLine = false;

  R.OptStats = true; // JSON-only group without --json
  EXPECT_NE(validateReportOptions(R, true, false), "");
  EXPECT_NE(validateReportOptions(R, false, false), "");
  R.JsonRequested = true;
  EXPECT_EQ(validateReportOptions(R, true, false), "");
  EXPECT_NE(validateReportOptions(R, false, false), ""); // sweep-only

  // --sample in single-program mode needs the detailed model, and
  // conflicts with --timing-line (estimation is not a dispatch-loop
  // measurement); with --uarch it is valid.
  EXPECT_NE(validateReportOptions(ReportOptions(), false, true, false), "");
  EXPECT_EQ(validateReportOptions(ReportOptions(), false, true, true), "");
  EXPECT_EQ(validateReportOptions(ReportOptions(), true, true), "");
  ReportOptions TL;
  TL.TimingLine = true;
  EXPECT_NE(validateReportOptions(TL, false, true, true), "");
}

// --- SweepService --------------------------------------------------------

TEST(ServiceTest, ColdServeMatchesBatchBytesAndCountsMisses) {
  const SweepRequest R = compressRequest();
  const std::string Batch = batchDocument(R);
  const size_t N = R.buildSpecs()->size();

  ServiceOptions SO;
  SO.Jobs = 2;
  SweepService Service(SO);
  ServedSweep Cold = Service.serve(R);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  EXPECT_EQ(Cold.Document.toString(), Batch);
  EXPECT_EQ(Cold.Misses, N);
  EXPECT_EQ(Cold.Hits, 0u);
  EXPECT_EQ(Cold.InflightDedups, 0u);

  // Same service, same request: the in-memory cell map alone makes the
  // repeat pure hits, byte-identical.
  ServedSweep Warm = Service.serve(R);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_EQ(Warm.Document.toString(), Batch);
  EXPECT_EQ(Warm.Hits, N);
  EXPECT_EQ(Warm.Misses, 0u);
}

TEST(ServiceTest, PersistentCacheWarmsAFreshServiceInstance) {
  const SweepRequest R = compressRequest();
  const size_t N = R.buildSpecs()->size();
  const std::string CacheDir = freshDir("persist");

  ServiceOptions SO;
  SO.Jobs = 2;
  SO.CacheDir = CacheDir;
  std::string ColdBytes;
  {
    SweepService Cold(SO);
    ServedSweep Out = Cold.serve(R);
    ASSERT_TRUE(Out.Ok) << Out.Error;
    EXPECT_EQ(Out.Misses, N);
    EXPECT_EQ(Cold.cacheCounters().Stores, N);
    ColdBytes = Out.Document.toString();
  }
  // A fresh service (fresh in-memory state, same directory — a server
  // restart) must recompute nothing and reproduce the bytes exactly.
  SweepService Warm(SO);
  ServedSweep Out = Warm.serve(R);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EXPECT_EQ(Out.Hits, N);
  EXPECT_EQ(Out.Misses, 0u);
  EXPECT_EQ(Out.Document.toString(), ColdBytes);
  EXPECT_EQ(Warm.cacheCounters().Hits, N);
}

TEST(ServiceTest, ConcurrentIdenticalRequestsComputeEachCellOnce) {
  const SweepRequest R = compressRequest();
  const size_t N = R.buildSpecs()->size();

  ServiceOptions SO;
  SO.Jobs = 2;
  SweepService Service(SO);
  ServedSweep A, B;
  std::thread TA([&] { A = Service.serve(R); });
  std::thread TB([&] { B = Service.serve(R); });
  TA.join();
  TB.join();

  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(A.Document.toString(), B.Document.toString());
  // Every cell resolves exactly once somewhere: each request accounts
  // for all N cells, and across both requests exactly N were computed —
  // the rest were in-memory hits or waits on the other request's
  // in-flight computation.
  EXPECT_EQ(A.Hits + A.Misses + A.InflightDedups, N);
  EXPECT_EQ(B.Hits + B.Misses + B.InflightDedups, N);
  EXPECT_EQ(A.Misses + B.Misses, N);
}

TEST(ServiceTest, SampledCellsCacheAndReplayByteIdentically) {
  SweepRequest R = compressRequest(0.05);
  R.Sample.IntervalLen = 1000; // K auto
  const std::string Batch = batchDocument(R);
  const size_t N = R.buildSpecs()->size();

  ServiceOptions SO;
  SO.Jobs = 2;
  SO.CacheDir = freshDir("sampled");
  SweepService Service(SO);
  ServedSweep Cold = Service.serve(R);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  EXPECT_EQ(Cold.Misses, N);
  EXPECT_EQ(Cold.Document.toString(), Batch);

  SweepService Fresh(SO);
  ServedSweep Warm = Fresh.serve(R);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_EQ(Warm.Hits, N);
  EXPECT_EQ(Warm.Document.toString(), Batch);
  // Sampled provenance survives the cache (cells carry "sample").
  EXPECT_NE(Warm.Document.toString().find("\"sample\""), std::string::npos);
}

TEST(ServiceTest, RequestErrorsSurfaceWithoutServing) {
  SweepService Service(ServiceOptions{});
  SweepRequest R = compressRequest();
  R.Workloads = {"nonesuch"};
  ServedSweep Out = Service.serve(R);
  EXPECT_FALSE(Out.Ok);
  EXPECT_NE(Out.Error.find("unknown workload"), std::string::npos);
}

// --- ELF-lifted workloads ------------------------------------------------

/// One lifted-binary workload at full standard-sweep scale (the lifted
/// kernels are small enough that scaling down is pointless).
SweepRequest elfRequest() {
  SweepRequest R;
  R.Workloads = {std::string("elf:") + OG_RV32_FIXTURE_DIR "/checksum.elf"};
  R.Scale = 0.25;
  return R;
}

TEST(ServiceTest, ElfWorkloadServesByteIdenticalAcrossJobCounts) {
  const SweepRequest R = elfRequest();
  const std::string Batch = batchDocument(R); // reference path runs Jobs=2
  const size_t N = R.buildSpecs()->size();

  for (unsigned Jobs : {1u, 4u}) {
    ServiceOptions SO;
    SO.Jobs = Jobs;
    SweepService Service(SO);
    ServedSweep Out = Service.serve(R);
    ASSERT_TRUE(Out.Ok) << Out.Error;
    EXPECT_EQ(Out.Misses, N) << "jobs=" << Jobs;
    EXPECT_EQ(Out.Document.toString(), Batch) << "jobs=" << Jobs;
  }
}

TEST(ServiceTest, ElfWorkloadCellsAreSchemaValidAndNarrow) {
  ServiceOptions SO;
  SO.Jobs = 2;
  SweepService Service(SO);
  ServedSweep Out = Service.serve(elfRequest());
  ASSERT_TRUE(Out.Ok) << Out.Error;

  const JsonValue *Cells = Out.Document.get("cells");
  ASSERT_NE(Cells, nullptr);
  ASSERT_TRUE(Cells->isArray());
  ASSERT_GT(Cells->size(), 1u);

  // Every served cell must parse back through the schema, and the
  // gated configs must actually narrow the lifted code — a lifter that
  // emitted all-quad IR would zero this out without failing anything
  // upstream.
  int64_t Narrowed = 0;
  for (size_t I = 0; I < Cells->size(); ++I) {
    const JsonValue &Cell = Cells->at(I);
    Expected<ResultAggregator::Cell> Back = sweepCellFromJson(Cell);
    ASSERT_TRUE(bool(Back)) << Back.error();
    EXPECT_EQ(Back->Workload.rfind("elf:", 0), 0u);
    Narrowed += Cell.get("counters")->get("narrowed-opcodes")->asInt();
  }
  EXPECT_GT(Narrowed, 0);
}

TEST(ServiceTest, ElfWorkloadReServeIsAllHitsFromThePersistentCache) {
  const SweepRequest R = elfRequest();
  const size_t N = R.buildSpecs()->size();

  ServiceOptions SO;
  SO.Jobs = 2;
  SO.CacheDir = freshDir("elf");
  std::string ColdBytes;
  {
    SweepService Cold(SO);
    ServedSweep Out = Cold.serve(R);
    ASSERT_TRUE(Out.Ok) << Out.Error;
    EXPECT_EQ(Out.Misses, N);
    ColdBytes = Out.Document.toString();
  }
  SweepService Warm(SO);
  ServedSweep Out = Warm.serve(R);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EXPECT_EQ(Out.Hits, N);
  EXPECT_EQ(Out.Misses, 0u);
  EXPECT_EQ(Out.Document.toString(), ColdBytes);
}

// --- Wire form -----------------------------------------------------------

TEST(ServiceTest, CompactJsonIsSingleLineAndRoundTrips) {
  const SweepRequest R = compressRequest();
  ServiceOptions SO;
  SO.Jobs = 2;
  SweepService Service(SO);
  ServedSweep Out = Service.serve(R);
  ASSERT_TRUE(Out.Ok) << Out.Error;

  // The wire form of a full response document: no newline anywhere,
  // and parsing it back reproduces the pretty form byte-exactly (the
  // client relies on this to match batch file output).
  const std::string Wire = Out.Document.toCompactString();
  EXPECT_EQ(Wire.find('\n'), std::string::npos);
  Expected<JsonValue> Back = parseJson(Wire);
  ASSERT_TRUE(bool(Back)) << Back.error();
  EXPECT_EQ(Back->toString(), Out.Document.toString());
}

} // namespace
