//===- tests/OptTest.cpp - opt/ AnalysisManager + pipeline tests ------------==//
//
// Invalidation-correctness coverage for the cached analysis manager: stale
// analyses must be refused and recomputed, declared-preserved analyses
// must be reused, one epoch must never rebuild the same analysis twice,
// and the manager-threaded transform flows must emit byte-identical
// programs to the pre-manager goldens (tests/golden/transform/, generated
// from the code before src/opt/ existed; regenerate with
// OG_REGEN_TRANSFORM_GOLDENS=1 after an intentional transform change).
//
//===----------------------------------------------------------------------===//

#include "asm/Disassembler.h"
#include "opt/AnalysisManager.h"
#include "opt/TransformPipeline.h"
#include "pipeline/Pipeline.h"
#include "program/Builder.h"
#include "program/Clone.h"
#include "vrs/ConstProp.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace og;

namespace {

/// Diamond into a counted loop; enough structure for every analysis.
Program diamondLoop() {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 0);
  F.beq(RegA0, "left", "right");
  F.block("left");
  F.ldi(RegT1, 1);
  F.br("join");
  F.block("right");
  F.ldi(RegT1, 2);
  F.br("join");
  F.block("join");
  F.ldi(RegT2, 0);
  F.block("loop");
  F.addi(RegT2, RegT2, 1);
  F.cmpltImm(RegT3, RegT2, 50);
  F.bne(RegT3, "loop", "exit");
  F.block("exit");
  F.out(RegT1);
  F.halt();
  return PB.finish();
}

TEST(AnalysisManager, RepeatedQueriesHitTheCache) {
  Program P = diamondLoop();
  StatisticSet Stats;
  AnalysisManager AM(P, &Stats);

  const Cfg &G1 = AM.cfg(0);
  const Cfg &G2 = AM.cfg(0);
  EXPECT_EQ(&G1, &G2);
  EXPECT_EQ(Stats.get("cfg-builds"), 1u);
  EXPECT_EQ(Stats.get("analysis-misses"), 1u);
  EXPECT_EQ(Stats.get("analysis-hits"), 1u);
  EXPECT_EQ(Stats.get("same-epoch-rebuilds"), 0u);
}

TEST(AnalysisManager, DependentAnalysesShareTheCachedCfg) {
  Program P = diamondLoop();
  StatisticSet Stats;
  AnalysisManager AM(P, &Stats);

  AM.loops(0); // pulls cfg + dominators + loops
  EXPECT_EQ(Stats.get("cfg-builds"), 1u);
  EXPECT_EQ(Stats.get("domtree-builds"), 1u);
  EXPECT_EQ(Stats.get("loops-builds"), 1u);

  AM.dominators(0); // both dependencies already cached
  AM.reachingDefs(0);
  EXPECT_EQ(Stats.get("cfg-builds"), 1u);
  EXPECT_EQ(Stats.get("reachingdefs-builds"), 1u);
}

TEST(AnalysisManager, MutationRefusesStaleAnalyses) {
  Program P = diamondLoop();
  StatisticSet Stats;
  AnalysisManager AM(P, &Stats);

  size_t Before = AM.cfg(0).numBlocks();

  // addBlock bumps the epoch; the next query must rebuild and see the
  // new block, not serve the stale snapshot.
  P.Funcs[0].addBlock("orphan");
  EXPECT_EQ(AM.cfg(0).numBlocks(), Before + 1);
  EXPECT_EQ(Stats.get("cfg-builds"), 2u);
  EXPECT_EQ(Stats.get("analysis-invalidations"), 1u);
  EXPECT_EQ(Stats.get("same-epoch-rebuilds"), 0u);
}

TEST(AnalysisManager, CloneRegionBumpsTheEpoch) {
  Program P = diamondLoop();
  AnalysisManager AM(P);
  Function &F = P.Funcs[0];

  size_t Before = AM.cfg(0).numBlocks();
  uint64_t EpochBefore = F.Epoch;
  cloneRegion(F, {4}); // the loop block
  EXPECT_GT(F.Epoch, EpochBefore);
  EXPECT_EQ(AM.cfg(0).numBlocks(), Before + 1);
}

TEST(AnalysisManager, BuilderMutationsBumpTheEpoch) {
  Program P;
  Function &F = P.addFunction("f");
  uint64_t E0 = F.Epoch;
  F.addBlock("entry");
  EXPECT_GT(F.Epoch, E0);
}

TEST(AnalysisManager, InvalidatePreservesOnlyTheDeclaredSet) {
  Program P = diamondLoop();
  StatisticSet Stats;
  AnalysisManager AM(P, &Stats);
  AM.cfg(0);
  AM.reachingDefs(0);

  // A width-rewrite-style mutation: epoch moves, Cfg/ReachingDefs are
  // declared preserved — both must come back as hits.
  P.Funcs[0].bumpEpoch();
  AM.invalidate(0, PreservedAnalyses::widthRewrite());
  uint64_t MissesBefore = Stats.get("analysis-misses");
  AM.cfg(0);
  AM.reachingDefs(0);
  EXPECT_EQ(Stats.get("analysis-misses"), MissesBefore);

  // A fold-style mutation: only Cfg/Dominators survive; ReachingDefs must
  // be refused and rebuilt.
  P.Funcs[0].bumpEpoch();
  AM.invalidate(0, PreservedAnalyses::cfgOnly());
  uint64_t CfgBuilds = Stats.get("cfg-builds");
  uint64_t RdBuilds = Stats.get("reachingdefs-builds");
  AM.cfg(0);
  AM.reachingDefs(0);
  EXPECT_EQ(Stats.get("cfg-builds"), CfgBuilds);
  EXPECT_EQ(Stats.get("reachingdefs-builds"), RdBuilds + 1);
  EXPECT_EQ(Stats.get("same-epoch-rebuilds"), 0u);
}

TEST(AnalysisManager, PreservingDependentWithoutDependencyDropsBoth) {
  Program P = diamondLoop();
  StatisticSet Stats;
  AnalysisManager AM(P, &Stats);
  AM.loops(0);

  // Declaring Loops preserved while dropping Cfg must not leave a
  // LoopInfo built over a freed Cfg: the normalization drops both.
  PreservedAnalyses PA;
  PA.preserve(AnalysisKind::Loops).preserve(AnalysisKind::Dominators);
  P.Funcs[0].bumpEpoch();
  AM.invalidate(0, PA);
  uint64_t LoopBuilds = Stats.get("loops-builds");
  AM.loops(0);
  EXPECT_EQ(Stats.get("loops-builds"), LoopBuilds + 1);
}

TEST(AnalysisManager, UsefulWidthKeysOnTheAblationFlag) {
  Program P = diamondLoop();
  StatisticSet Stats;
  AnalysisManager AM(P, &Stats);

  AM.usefulWidth(0, false);
  AM.usefulWidth(0, false);
  EXPECT_EQ(Stats.get("usefulwidth-builds"), 1u);
  AM.usefulWidth(0, true); // different ablation flag: legitimate rebuild
  EXPECT_EQ(Stats.get("usefulwidth-builds"), 2u);
  EXPECT_EQ(Stats.get("same-epoch-rebuilds"), 0u);
}

TEST(AnalysisManager, NarrowingPreservesStructuralAnalyses) {
  Workload W = makeWorkload("compress", 0.05);
  Program P = W.Prog;
  StatisticSet Stats;
  AnalysisManager AM(P, &Stats);

  NarrowingReport R = narrowProgram(P, AM);
  ASSERT_GT(R.NumNarrowed, 0u);
  uint64_t CfgBuilds = Stats.get("cfg-builds");
  uint64_t RdBuilds = Stats.get("reachingdefs-builds");

  // A second narrow over the (now stable) program reuses every
  // structural analysis — only UsefulWidth was dropped by the width
  // rewrite, and only for functions whose widths changed.
  narrowProgram(P, AM);
  EXPECT_EQ(Stats.get("cfg-builds"), CfgBuilds);
  EXPECT_EQ(Stats.get("reachingdefs-builds"), RdBuilds);
  EXPECT_EQ(Stats.get("same-epoch-rebuilds"), 0u);
}

TEST(AnalysisManager, DeadCodeEliminationKeepsTheCfg) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 1);
  F.ldi(RegT1, 2); // dead
  F.addi(RegT2, RegT1, 3); // dead
  F.out(RegT0);
  F.halt();
  Program P = PB.finish();

  StatisticSet Stats;
  AnalysisManager AM(P, &Stats);
  EXPECT_EQ(eliminateDeadCode(P, AM), 2u);
  // Deletions ran at least one changed round + one fixpoint round, all
  // over one cached Cfg; Liveness was rebuilt per round.
  EXPECT_EQ(Stats.get("cfg-builds"), 1u);
  EXPECT_GE(Stats.get("liveness-builds"), 2u);
  EXPECT_EQ(Stats.get("same-epoch-rebuilds"), 0u);
}

TEST(AnalysisManager, FullVrsFlowNeverRebuildsWithinAnEpoch) {
  for (const char *Name : {"compress", "li"}) {
    Workload W = makeWorkload(Name, 0.05);
    PipelineConfig C;
    C.Sw = SoftwareMode::Vrs;
    C.Scheme = GatingScheme::Software;
    PipelineResult R = runPipeline(W, C);
    EXPECT_EQ(R.OptStats.get("same-epoch-rebuilds"), 0u) << Name;
    // Cross-pass reuse must be real: the VRS flow queries each analysis
    // from several passes (narrow, benefit, re-narrow, fold, DCE), and
    // without the cache every one of those hits would be a rebuild.
    // (Dependency resolution inside the manager is deliberately not
    // counted, so this measures query-level reuse only.)
    EXPECT_GT(R.OptStats.get("analysis-hits"), 0u) << Name;
  }
}

TEST(TransformPipeline, ComposedFlowMatchesDirectCalls) {
  Workload W = makeWorkload("li", 0.05);

  Program Direct = W.Prog;
  narrowProgram(Direct);

  Program Composed = W.Prog;
  AnalysisManager AM(Composed);
  TransformContext Ctx;
  Ctx.Narrow.UseUsefulWidths = true;
  makeSoftwareModePipeline(SoftwareMode::Vrp).run(Composed, AM, Ctx);

  std::ostringstream A, B;
  disassembleProgram(Direct, A);
  disassembleProgram(Composed, B);
  EXPECT_EQ(A.str(), B.str());
  EXPECT_GT(Ctx.Narrowing.NumNarrowed, 0u);
}

TEST(TransformPipeline, CleanupPassFoldsWithCallerSeeds) {
  // A branch on a value the caller pins via an edge seed: cleanup must
  // decide the branch, fold the now-constant computation, and DCE the
  // rest.
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 7);
  F.br("body");
  F.block("body");
  F.cmpltImm(RegT1, RegT0, 100); // constant-true compare
  F.beq(RegT1, "cold", "hot");
  F.block("cold");
  F.ldi(RegT2, 1);
  F.out(RegT2);
  F.halt();
  F.block("hot");
  F.ldi(RegT2, 2);
  F.out(RegT2);
  F.halt();
  Program P = PB.finish();

  AnalysisManager AM(P);
  TransformContext Ctx;
  TransformPipeline TP;
  TP.add("cleanup", makeCleanupPass());
  TP.run(P, AM, Ctx);

  // cmplt folds to ldi 1 (then dies), the beq on a non-zero register is
  // deleted, and the dead cold path's feeder stays out of the trace.
  EXPECT_GT(Ctx.CleanupFolded, 0u);
  EXPECT_EQ(Ctx.CleanupBranchesFolded, 1u);
  EXPECT_GT(Ctx.CleanupRemoved, 0u);
  RunResult R = runProgram(P, RunOptions());
  ASSERT_EQ(R.Status, RunStatus::Halted);
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], 2);
}

TEST(TransformPipeline, CleanupPassUsesSpecializeGuardSeeds) {
  // A guard-shaped program: the entry branches to a "specialized" path.
  // Only the guard fact — a0 is exactly 5 on the taken edge, deposited
  // the way a specialize pass does via Ctx.VrsResult.Seeds — makes the
  // compare inside that path foldable. A cleanup that ignored the
  // specializer's seeds (the pre-review bug) folds nothing here.
  auto build = [] {
    ProgramBuilder PB;
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");              // 0
    F.bne(RegA1, "spec", "gen");
    F.block("spec");               // 1
    F.cmpeqImm(RegT1, RegA0, 5);
    F.beq(RegT1, "gen", "fast");
    F.block("fast");               // 2
    F.out(RegA0);
    F.halt();
    F.block("gen");                // 3
    F.ldi(RegT2, 99);
    F.out(RegT2);
    F.halt();
    return PB.finish();
  };

  auto cleanupWithSeeds = [&](bool WithGuardSeed, Program &P) {
    AnalysisManager AM(P);
    TransformContext Ctx;
    if (WithGuardSeed)
      Ctx.VrsResult.Seeds.push_back({0, 0, 1, RegA0, 5, 5});
    TransformPipeline TP;
    TP.add("cleanup", makeCleanupPass());
    TP.run(P, AM, Ctx);
    return Ctx.CleanupFolded + Ctx.CleanupBranchesFolded;
  };

  Program Without = build();
  Program With = build();
  EXPECT_EQ(cleanupWithSeeds(false, Without), 0u);
  EXPECT_GT(cleanupWithSeeds(true, With), 0u)
      << "cleanup must consume the guard facts in Ctx.VrsResult.Seeds";

  // The fold is semantics-preserving for inputs satisfying the guard.
  RunOptions In;
  In.ArgRegs = {5, 1};
  RunResult A = runProgram(build(), In);
  RunResult B = runProgram(With, In);
  ASSERT_EQ(A.Status, RunStatus::Halted);
  ASSERT_EQ(B.Status, RunStatus::Halted);
  EXPECT_EQ(A.Output, B.Output);
}

TEST(TransformPipeline, ModeCompositions) {
  EXPECT_EQ(makeSoftwareModePipeline(SoftwareMode::None).size(), 0u);
  TransformPipeline Vrp = makeSoftwareModePipeline(SoftwareMode::Vrp);
  ASSERT_EQ(Vrp.size(), 1u);
  EXPECT_EQ(Vrp.passName(0), "narrow");
  TransformPipeline Vrs = makeSoftwareModePipeline(SoftwareMode::Vrs);
  ASSERT_EQ(Vrs.size(), 2u);
  EXPECT_EQ(Vrs.passName(0), "narrow");
  EXPECT_EQ(Vrs.passName(1), "specialize");
}

// --- Bit-identity against the pre-refactor goldens. -----------------------

class TransformGolden : public ::testing::TestWithParam<
                            std::tuple<const char *, const char *>> {};

TEST_P(TransformGolden, MatchesPreManagerOutput) {
  const char *Name = std::get<0>(GetParam());
  const char *Mode = std::get<1>(GetParam());

  Workload W = makeWorkload(Name, 0.05);
  Program P = W.Prog;
  AnalysisManager AM(P);
  NarrowingOptions N;
  N.UseUsefulWidths = std::string(Mode) != "conv-vrp";
  narrowProgram(P, AM, N);
  if (std::string(Mode) == "vrs") {
    VrsOptions VO;
    VO.Narrow = N;
    specializeProgram(P, AM, W.Train, VO);
  }
  std::ostringstream Now;
  disassembleProgram(P, Now);

  std::string Path = std::string(OG_TRANSFORM_GOLDEN_DIR) + "/" + Name +
                     "-" + Mode + ".s";
  if (std::getenv("OG_REGEN_TRANSFORM_GOLDENS")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Now.str();
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "missing golden " << Path;
  std::stringstream Gold;
  Gold << In.rdbuf();
  EXPECT_EQ(Gold.str(), Now.str())
      << "transformed program drifted from the pre-manager golden "
      << Path
      << " (set OG_REGEN_TRANSFORM_GOLDENS=1 only for intentional "
         "transform changes)";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadModes, TransformGolden,
    ::testing::Combine(::testing::Values("compress", "li"),
                       ::testing::Values("conv-vrp", "vrp", "vrs")),
    [](const ::testing::TestParamInfo<TransformGolden::ParamType> &I) {
      std::string Label = std::string(std::get<0>(I.param)) + "_" +
                          std::get<1>(I.param);
      for (char &C : Label)
        if (C == '-')
          C = '_';
      return Label;
    });

} // namespace
