//===- tests/VrsTest.cpp - profiling and VRS tests ---------------------------==//

#include "profile/BlockProfile.h"
#include "program/Builder.h"
#include "program/Verifier.h"
#include "vrp/Narrowing.h"
#include "vrs/ConstProp.h"
#include "vrs/EnergyTables.h"
#include "vrs/Specializer.h"
#include "workloads/Common.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace og;

// --- Value profile table (Calder-style, §3.3).

TEST(ValueProfile, CountsAndTotal) {
  ValueProfileTable T;
  for (int I = 0; I < 10; ++I)
    T.record(5);
  T.record(9);
  EXPECT_EQ(T.totalCount(), 11u);
  auto E = T.sortedEntries();
  ASSERT_EQ(E.size(), 2u);
  EXPECT_EQ(E[0].Value, 5);
  EXPECT_EQ(E[0].Count, 10u);
  EXPECT_NEAR(T.freqInRange(5, 5), 10.0 / 11.0, 1e-9);
  EXPECT_NEAR(T.freqInRange(0, 100), 1.0, 1e-9);
  EXPECT_EQ(T.freqInRange(100, 200), 0.0);
}

TEST(ValueProfile, FullTableIgnoresNewValues) {
  ValueProfileTable::Config C;
  C.Capacity = 4;
  C.CleanPeriod = 1000000; // never clean in this test
  ValueProfileTable T(C);
  for (int V = 0; V < 8; ++V)
    T.record(V);
  EXPECT_EQ(T.totalCount(), 8u);
  EXPECT_EQ(T.sortedEntries().size(), 4u); // 4..7 were ignored
}

TEST(ValueProfile, PeriodicCleanEvictsLfuHalf) {
  ValueProfileTable::Config C;
  C.Capacity = 4;
  C.CleanPeriod = 16;
  ValueProfileTable T(C);
  // Fill with skew: 0 is hot, 1..3 cold.
  for (int I = 0; I < 10; ++I)
    T.record(0);
  T.record(1);
  T.record(2);
  T.record(3);
  // Trigger a clean; hot value must survive, new values can enter.
  for (int I = 0; I < 8; ++I)
    T.record(77);
  auto E = T.sortedEntries();
  bool Has0 = false, Has77 = false;
  for (auto &Entry : E) {
    Has0 |= Entry.Value == 0;
    Has77 |= Entry.Value == 77;
  }
  EXPECT_TRUE(Has0);
  EXPECT_TRUE(Has77);
}

TEST(ValueProfile, FreqIsConservativeLowerBound) {
  ValueProfileTable::Config C;
  C.Capacity = 2;
  C.CleanPeriod = 1000000;
  ValueProfileTable T(C);
  T.record(1);
  T.record(2);
  T.record(3); // ignored (table full) but counted in total
  EXPECT_EQ(T.totalCount(), 3u);
  EXPECT_LT(T.freqInRange(1, 3), 1.0); // 2/3: the ignored value is unknown
}

// --- Block profiles through the interpreter.

TEST(BlockProfile, CollectsCountsAndValues) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 0);
  F.block("loop");
  F.addi(RegT0, RegT0, 1);
  F.andi(RegT1, RegT0, 3); // the profiled instruction (id 2)
  F.cmpltImm(RegT2, RegT0, 12);
  F.bne(RegT2, "loop", "done");
  F.block("done");
  F.halt();
  Program P = PB.finish();

  ProgramProfile Prof = collectProfile(P, RunOptions(), {{0, 2}});
  EXPECT_EQ(Prof.blockCount(0, 1), 12u);
  const ValueProfileTable &T = Prof.Values.at({0, 2});
  EXPECT_EQ(T.totalCount(), 12u);
  // Values cycle 1,2,3,0: each value ~3 times.
  EXPECT_NEAR(T.freqInRange(0, 3), 1.0, 1e-9);
  EXPECT_NEAR(T.freqInRange(1, 1), 3.0 / 12.0, 1e-9);
}

// --- Energy tables (paper Table 1 and §3.2 test costs).

TEST(EnergyTables, PaperTable1Deltas) {
  // Spot-check the published matrix.
  EXPECT_EQ(paperTable1Saving(Width::B, Width::Q), 6);
  EXPECT_EQ(paperTable1Saving(Width::Q, Width::B), -6);
  EXPECT_EQ(paperTable1Saving(Width::H, Width::Q), 3);
  EXPECT_EQ(paperTable1Saving(Width::W, Width::Q), 1);
  EXPECT_EQ(paperTable1Saving(Width::B, Width::W), 5);
  EXPECT_EQ(paperTable1Saving(Width::Q, Width::Q), 0);
}

TEST(EnergyTables, ModelMatchesPaperTable1) {
  // Our per-width ALU energy reproduces every delta of Table 1.
  EnergyParams E;
  for (unsigned D = 0; D < 4; ++D)
    for (unsigned S = 0; S < 4; ++S)
      EXPECT_DOUBLE_EQ(
          E.aluSaving(static_cast<Width>(S), static_cast<Width>(D)),
          paperTable1Saving(static_cast<Width>(D), static_cast<Width>(S)));
}

TEST(EnergyTables, TestCostShapes) {
  EnergyParams E;
  // Section 3.2: range test (4 instructions) > single-value (2) > zero (1).
  EXPECT_GT(E.rangeTestCost(), E.singleValueTestCost());
  EXPECT_GT(E.singleValueTestCost(), E.zeroTestCost());
  EXPECT_DOUBLE_EQ(E.zeroTestCost(), E.minimalTestCost());
  EXPECT_DOUBLE_EQ(E.singleValueTestCost() * 2.0, E.rangeTestCost());
}

// --- Constant folding / DCE / branch folding.

TEST(ConstProp, FoldsProvableConstants) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 6);
  F.muli(RegT1, RegT0, 7); // provably 42
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  RangeAnalysis RA(P);
  RA.run();
  EXPECT_EQ(foldConstants(P, RA), 1u);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts[1].Opc, Op::Ldi);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts[1].Imm, 42);
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Output.at(0), 42);
}

TEST(ConstProp, DceRemovesDeadChains) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 1);
  F.addi(RegT1, RegT0, 2); // dead
  F.muli(RegT2, RegT1, 3); // dead
  F.out(RegT0);
  F.halt();
  Program P = PB.finish();
  EXPECT_EQ(eliminateDeadCode(P), 2u);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts.size(), 3u);
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Output.at(0), 1);
}

TEST(ConstProp, DceKeepsSideEffects) {
  ProgramBuilder PB;
  uint64_t D = PB.addZeroData(8);
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, static_cast<int64_t>(D));
  F.ldi(RegT1, 5);
  F.st(Width::Q, RegT1, RegT0, 0); // store must survive
  F.halt();
  Program P = PB.finish();
  size_t Before = P.numInstructions();
  eliminateDeadCode(P);
  // The store and its operands stay (the operands feed the store).
  EXPECT_EQ(P.numInstructions(), Before);
}

TEST(ConstProp, FoldsDecidedBranches) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 1);
  F.bne(RegT0, "yes", "no"); // always taken
  F.block("no");
  F.ldi(RegT1, 0);
  F.out(RegT1);
  F.halt();
  F.block("yes");
  F.ldi(RegT1, 1);
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  RangeAnalysis RA(P);
  RA.run();
  EXPECT_EQ(foldBranches(P, RA), 1u);
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts.back().Opc, Op::Br);
  EXPECT_TRUE(verifyProgram(P));
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Output.at(0), 1);
}

TEST(ConstProp, DropsNeverTakenBranches) {
  ProgramBuilder PB;
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 5);
  F.beq(RegT0, "yes", "no"); // never taken (5 != 0)
  F.block("no");
  F.ldi(RegT1, 0);
  F.out(RegT1);
  F.halt();
  F.block("yes");
  F.ldi(RegT1, 1);
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();
  RangeAnalysis RA(P);
  RA.run();
  EXPECT_EQ(foldBranches(P, RA), 1u);
  // The branch is gone; entry falls through.
  EXPECT_EQ(P.Funcs[0].Blocks[0].Insts.size(), 1u);
  EXPECT_TRUE(verifyProgram(P));
  RunResult R = runProgram(P, RunOptions());
  EXPECT_EQ(R.Output.at(0), 0);
}

// --- The full VRS pipeline on a purpose-built program.

namespace {

/// A program whose hot leaf receives an argument that is almost always 3:
/// the textbook specialization candidate.
Workload specializableWorkload() {
  ProgramBuilder PB;
  // 0..63: mostly 3.
  std::vector<uint8_t> Vals(512, 3);
  for (size_t I = 0; I < Vals.size(); I += 61)
    Vals[I] = static_cast<uint8_t>(I % 11);
  uint64_t Data = PB.addByteData(Vals);

  FunctionBuilder &Hot = PB.beginFunction("hot");
  // v0 = (a0*5 + 1) ^ a0, several dependents on a0.
  Hot.block("entry");
  Hot.muli(RegT0, RegA0, 5);
  Hot.addi(RegT0, RegT0, 1);
  Hot.xor_(RegT1, RegT0, RegA0);
  Hot.slli(RegT2, RegA0, 2);
  Hot.add(RegV0, RegT1, RegT2);
  Hot.ret();

  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.mov(RegS1, RegA0); // iterations
  Main.ldi(RegS0, static_cast<int64_t>(Data));
  Main.ldi(RegS2, 0);
  Main.ldi(RegS3, 0);
  Main.block("loop");
  Main.cmplt(RegT0, RegS2, RegS1);
  Main.beq(RegT0, "done", "body");
  Main.block("body");
  Main.andi(RegT1, RegS2, 511);
  Main.add(RegT1, RegS0, RegT1);
  Main.ld(Width::B, RegA0, RegT1, 0); // almost always 3
  Main.jsr("hot");
  Main.add(RegS3, RegS3, RegV0);
  Main.addi(RegS2, RegS2, 1);
  Main.br("loop");
  Main.block("done");
  Main.out(RegS3);
  Main.halt();
  PB.setEntry("main");

  Workload W;
  W.Name = "spec";
  W.Prog = PB.finish();
  W.Train = runWithArg(600);
  W.Ref = runWithArg(4000);
  return W;
}

} // namespace

TEST(Vrs, SpecializesTheHotArgument) {
  Workload W = specializableWorkload();
  Program P = W.Prog;
  narrowProgram(P);
  VrsOptions Opts;
  VrsReport R = specializeProgram(P, W.Train, Opts);
  EXPECT_GT(R.PointsProfiled, 0u);
  EXPECT_GE(R.PointsSpecialized, 1u);
  EXPECT_GT(R.StaticSpecialized, 0u);
  EXPECT_FALSE(R.Seeds.empty());
  // Output equivalence on the ref input.
  RunResult Orig = runProgram(W.Prog, W.Ref);
  RunResult Spec = runProgram(P, W.Ref);
  ASSERT_EQ(Spec.Status, RunStatus::Halted);
  EXPECT_EQ(Orig.Output, Spec.Output);
}

TEST(Vrs, GuardTestShapeMatchesPaper) {
  Workload W = specializableWorkload();
  Program P = W.Prog;
  narrowProgram(P);
  VrsOptions Opts;
  VrsReport R = specializeProgram(P, W.Train, Opts);
  ASSERT_FALSE(R.GuardBlocks.empty());
  // Section 3.2 shapes: zero test = 1 instruction, single-value = 2,
  // range = 4 (two compares, an AND-class op, a branch). Later branch
  // folding may statically decide a guard inside another clone, so at
  // least one live guard with the paper shape must remain.
  bool FoundPaperShape = false;
  for (auto [F, BB] : R.GuardBlocks) {
    const BasicBlock &Guard = P.Funcs[F].Blocks[BB];
    if (!Guard.Insts.empty() && Guard.Insts.back().isCondBranch() &&
        (Guard.Insts.size() == 1 || Guard.Insts.size() == 2 ||
         Guard.Insts.size() == 4))
      FoundPaperShape = true;
  }
  EXPECT_TRUE(FoundPaperShape);
}

TEST(Vrs, HigherTestCostSpecializesLess) {
  Workload W = specializableWorkload();
  Program Cheap = W.Prog;
  narrowProgram(Cheap);
  Program Costly = Cheap;

  VrsOptions CheapOpts;
  CheapOpts.Energy.TestCostNJ = 30;
  VrsReport CR = specializeProgram(Cheap, W.Train, CheapOpts);

  VrsOptions CostlyOpts;
  CostlyOpts.Energy.TestCostNJ = 100000; // absurd: nothing is worth it
  VrsReport XR = specializeProgram(Costly, W.Train, CostlyOpts);

  EXPECT_GE(CR.PointsSpecialized, XR.PointsSpecialized);
  EXPECT_EQ(XR.PointsSpecialized, 0u);
}

TEST(Vrs, ReportsDependentPoints) {
  // Two candidates in the same block: the second lands inside the first's
  // region and is reported as dependent (Figure 4's middle bar).
  Workload W = specializableWorkload();
  Program P = W.Prog;
  narrowProgram(P);
  VrsOptions Opts;
  VrsReport R = specializeProgram(P, W.Train, Opts);
  EXPECT_EQ(R.PointsProfiled, R.PointsSpecialized + R.PointsDependent +
                                  R.PointsNoBenefit);
}

TEST(Vrs, WorksUnderBaseAlphaPolicy) {
  Workload W = specializableWorkload();
  Program P = W.Prog;
  NarrowingOptions N;
  N.Policy = IsaPolicy::BaseAlpha;
  narrowProgram(P, N);
  VrsOptions Opts;
  Opts.Narrow = N;
  specializeProgram(P, W.Train, Opts);
  RunResult Orig = runProgram(W.Prog, W.Ref);
  RunResult Spec = runProgram(P, W.Ref);
  EXPECT_EQ(Orig.Output, Spec.Output);
}
