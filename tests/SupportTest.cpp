//===- tests/SupportTest.cpp - support/ unit tests --------------------------==//

#include "support/Error.h"
#include "support/MathExtras.h"
#include "support/Rng.h"
#include "support/Statistic.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace og;

TEST(MathExtras, SignExtendBasics) {
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0x7F, 8), 127);
  EXPECT_EQ(signExtend(0x80, 8), -128);
  EXPECT_EQ(signExtend(0xFFFF, 16), -1);
  EXPECT_EQ(signExtend(0x8000, 16), -32768);
  EXPECT_EQ(signExtend(0x1234, 16), 0x1234);
  EXPECT_EQ(signExtend(0xFFFFFFFFFFFFFFFFull, 64), -1);
}

TEST(MathExtras, SignExtendIgnoresHighBits) {
  EXPECT_EQ(signExtend(0xABCDEF12345678FFull, 8), -1);
  EXPECT_EQ(signExtend(0xABCDEF1234567800ull, 8), 0);
}

TEST(MathExtras, ZeroExtend) {
  EXPECT_EQ(zeroExtend(0xFFFFFFFFFFFFFFFFull, 8), 0xFFull);
  EXPECT_EQ(zeroExtend(0x1234, 8), 0x34ull);
  EXPECT_EQ(zeroExtend(0x1234, 64), 0x1234ull);
}

TEST(MathExtras, TruncSignExtendRoundTrips) {
  for (int64_t V : {-128ll, -1ll, 0ll, 1ll, 127ll})
    EXPECT_EQ(truncSignExtend(V, 1), V) << V;
  EXPECT_EQ(truncSignExtend(128, 1), -128);
  EXPECT_EQ(truncSignExtend(256, 1), 0);
  EXPECT_EQ(truncSignExtend(-129, 1), 127);
}

TEST(MathExtras, FitsSignedBytes) {
  EXPECT_TRUE(fitsSignedBytes(127, 1));
  EXPECT_FALSE(fitsSignedBytes(128, 1));
  EXPECT_TRUE(fitsSignedBytes(-128, 1));
  EXPECT_FALSE(fitsSignedBytes(-129, 1));
  EXPECT_TRUE(fitsSignedBytes(INT64_MAX, 8));
  EXPECT_TRUE(fitsSignedBytes(INT64_MIN, 8));
}

TEST(MathExtras, FitsUnsignedBytes) {
  EXPECT_TRUE(fitsUnsignedBytes(255, 1));
  EXPECT_FALSE(fitsUnsignedBytes(256, 1));
  EXPECT_FALSE(fitsUnsignedBytes(-1, 1));
  EXPECT_TRUE(fitsUnsignedBytes(INT64_MAX, 8));
}

TEST(MathExtras, SignificantBytes) {
  EXPECT_EQ(significantBytes(0), 1u);
  EXPECT_EQ(significantBytes(-1), 1u);
  EXPECT_EQ(significantBytes(127), 1u);
  EXPECT_EQ(significantBytes(128), 2u);
  EXPECT_EQ(significantBytes(-128), 1u);
  EXPECT_EQ(significantBytes(-129), 2u);
  EXPECT_EQ(significantBytes(0x7FFF), 2u);
  EXPECT_EQ(significantBytes(0x8000), 3u);
  EXPECT_EQ(significantBytes(INT64_MAX), 8u);
  EXPECT_EQ(significantBytes(INT64_MIN), 8u);
}

// Property: significantBytes is the least b with truncSignExtend identity.
TEST(MathExtras, SignificantBytesIsMinimal) {
  Rng R(42);
  for (int I = 0; I < 2000; ++I) {
    int64_t V = static_cast<int64_t>(R.next()) >>
                static_cast<unsigned>(R.below(64));
    unsigned B = significantBytes(V);
    EXPECT_EQ(truncSignExtend(V, B), V);
    if (B > 1) {
      EXPECT_NE(truncSignExtend(V, B - 1), V);
    }
  }
}

TEST(MathExtras, BytesForSignedRange) {
  EXPECT_EQ(bytesForSignedRange(0, 100), 1u);
  EXPECT_EQ(bytesForSignedRange(0, 255), 2u); // 255 needs 2 signed bytes
  EXPECT_EQ(bytesForSignedRange(-128, 127), 1u);
  EXPECT_EQ(bytesForSignedRange(-32768, 32767), 2u);
  EXPECT_EQ(bytesForSignedRange(INT64_MIN, INT64_MAX), 8u);
}

TEST(MathExtras, SaturatingArith) {
  EXPECT_EQ(saturatingAdd(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(saturatingAdd(INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(saturatingAdd(1, 2), 3);
  EXPECT_EQ(saturatingSub(INT64_MIN, 1), INT64_MIN);
  EXPECT_EQ(saturatingSub(INT64_MAX, -1), INT64_MAX);
}

TEST(MathExtras, WrapArith) {
  EXPECT_EQ(wrapAdd(INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(wrapSub(INT64_MIN, 1), INT64_MAX);
  EXPECT_EQ(wrapMul(INT64_MAX, 2), -2);
}

TEST(Statistic, AccumulatesAndOrders) {
  StatisticSet S;
  S.add("b", 2);
  S.add("a");
  S.add("b", 3);
  EXPECT_EQ(S.get("b"), 5u);
  EXPECT_EQ(S.get("a"), 1u);
  EXPECT_EQ(S.get("missing"), 0u);
  ASSERT_EQ(S.entries().size(), 2u);
  EXPECT_EQ(S.entries()[0].first, "b"); // first-touch order
  std::ostringstream OS;
  S.print(OS);
  EXPECT_NE(OS.str().find("5\tb"), std::string::npos);
}

TEST(Expected, ValueAndError) {
  Expected<int> Ok(42);
  ASSERT_TRUE(static_cast<bool>(Ok));
  EXPECT_EQ(*Ok, 42);
  Expected<int> Err = makeError<int>("boom");
  ASSERT_FALSE(static_cast<bool>(Err));
  EXPECT_EQ(Err.error(), "boom");
}

TEST(Rng, DeterministicAndInRange) {
  Rng A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(9);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = C.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Table, AlignsColumns) {
  TextTable T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "23"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(TextTable::num(1.5, 0), "2");
}

TEST(Rng, SeedFromEnvOverride) {
  // No variable set: the default comes back untouched.
  unsetenv("OGATE_TEST_SEED_VAR");
  EXPECT_EQ(seedFromEnv(7, "OGATE_TEST_SEED_VAR"), 7u);

  // Decimal and hex overrides parse (strtoull base 0).
  setenv("OGATE_TEST_SEED_VAR", "12345", 1);
  EXPECT_EQ(seedFromEnv(7, "OGATE_TEST_SEED_VAR"), 12345u);
  setenv("OGATE_TEST_SEED_VAR", "0x10", 1);
  EXPECT_EQ(seedFromEnv(7, "OGATE_TEST_SEED_VAR"), 16u);

  // Garbage falls back to the default rather than seeding from a prefix.
  setenv("OGATE_TEST_SEED_VAR", "12abc", 1);
  EXPECT_EQ(seedFromEnv(7, "OGATE_TEST_SEED_VAR"), 7u);
  setenv("OGATE_TEST_SEED_VAR", "", 1);
  EXPECT_EQ(seedFromEnv(7, "OGATE_TEST_SEED_VAR"), 7u);
  unsetenv("OGATE_TEST_SEED_VAR");

  // The default variable name is OGATE_SEED, the one PropertyTest honors.
  setenv("OGATE_SEED", "99", 1);
  EXPECT_EQ(seedFromEnv(1), 99u);
  unsetenv("OGATE_SEED");
}
