//===- tests/PropertyTest.cpp - Cross-cutting property tests ------------------==//
//
// Randomized and exhaustive checks of the invariants the whole system
// rests on: transfer-function soundness against concrete execution,
// iterator-bound math against actual loop simulation, assembler
// round-trips over the full workload suite, and end-to-end narrowing
// monotonicity.
//
//===----------------------------------------------------------------------===//

#include "analysis/Loops.h"
#include "program/Builder.h"
#include "asm/Assembler.h"
#include "asm/Disassembler.h"
#include "frontend/ElfFile.h"
#include "frontend/Lifter.h"
#include "frontend/Rv32Decoder.h"
#include "program/Verifier.h"
#include "support/Rng.h"
#include "vrp/Narrowing.h"
#include "vrp/Transfer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace og;

namespace {

// Every randomized property seeds its Rng through this: OGATE_SEED in the
// environment overrides the per-test default, and the SCOPED_TRACE below
// each call site prints the effective seed on failure so any run is
// reproducible with OGATE_SEED=<seed>.
uint64_t propertySeed(uint64_t Default) { return seedFromEnv(Default); }

std::string seedTrace(uint64_t Seed) {
  return "reproduce with OGATE_SEED=" + std::to_string(Seed);
}

} // namespace

// --- Forward transfer soundness, all ALU ops x all widths, checked
// exhaustively over small concrete ranges.

class TransferSoundness
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(TransferSoundness, ContainsEveryConcreteResult) {
  Op O = static_cast<Op>(std::get<0>(GetParam()));
  Width W = static_cast<Width>(std::get<1>(GetParam()));
  if (!encodableWidths(O, IsaPolicy::Extended).contains(W))
    GTEST_SKIP() << "width not encodable";

  const uint64_t Seed =
      propertySeed(static_cast<uint64_t>(std::get<0>(GetParam())) * 131 +
                   std::get<1>(GetParam()));
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);
  for (int Trial = 0; Trial < 60; ++Trial) {
    int64_t ALo = R.range(-200, 200);
    int64_t AHi = ALo + R.range(0, 12);
    int64_t BLo = R.range(-200, 200);
    int64_t BHi = BLo + R.range(0, 12);
    int64_t OldLo = R.range(-50, 50);
    ValueRange A(ALo, AHi), B(BLo, BHi), Old(OldLo, OldLo + 5);

    bool MayWrap = false;
    Instruction I = Instruction::alu(O, W, RegT2, RegT0, RegT1);
    ValueRange Out = forwardTransfer(I, A, B, Old, MayWrap);

    for (int64_t AV = ALo; AV <= AHi; ++AV)
      for (int64_t BV = BLo; BV <= BHi; ++BV)
        for (int64_t OV : {OldLo, OldLo + 5}) {
          int64_t Result = evalAluOp(O, W, AV, BV, OV);
          EXPECT_TRUE(Out.contains(Result))
              << opInfo(O).Mnemonic << widthSuffix(W) << " " << AV << ","
              << BV << " -> " << Result << " not in " << Out.str();
        }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AluOpsTimesWidths, TransferSoundness,
    ::testing::Combine(
        ::testing::Range(0u, static_cast<unsigned>(Op::Msk)),
        ::testing::Range(0u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, unsigned>> &I) {
      return std::string(
                 opInfo(static_cast<Op>(std::get<0>(I.param))).Mnemonic) +
             "_" + widthSuffix(static_cast<Width>(std::get<1>(I.param)));
    });

// --- Backward transfer soundness: the refined input ranges still contain
// every (a, b) pair that produces an output in the given range.

TEST(BackwardTransfer, RefinementKeepsWitnesses) {
  const uint64_t Seed = propertySeed(4242);
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);
  const Op Ops[] = {Op::Add, Op::Sub};
  for (int Trial = 0; Trial < 500; ++Trial) {
    Op O = Ops[R.below(2)];
    int64_t ALo = R.range(-100, 100), AHi = ALo + R.range(0, 20);
    int64_t BLo = R.range(-100, 100), BHi = BLo + R.range(0, 20);
    ValueRange A(ALo, AHi), B(BLo, BHi);
    // Pick a concrete witness and build an output range around it.
    int64_t AV = R.range(ALo, AHi), BV = R.range(BLo, BHi);
    int64_t OutV = O == Op::Add ? AV + BV : AV - BV;
    ValueRange Out(OutV - R.range(0, 5), OutV + R.range(0, 5));

    ValueRange NewA = A, NewB = B;
    Instruction I = Instruction::alu(O, Width::Q, RegT2, RegT0, RegT1);
    backwardTransfer(I, Out, NewA, NewB);
    EXPECT_TRUE(NewA.contains(AV)) << NewA.str();
    EXPECT_TRUE(NewB.contains(BV)) << NewB.str();
    // Refinement never widens.
    EXPECT_TRUE(A.contains(NewA));
    EXPECT_TRUE(B.contains(NewB));
  }
}

// --- Iterator-bound math vs direct simulation of the affine loop.

TEST(IteratorBounds, MatchesDirectSimulation) {
  const uint64_t Seed = propertySeed(20260608);
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);
  int Checked = 0;
  for (int Trial = 0; Trial < 3000; ++Trial) {
    AffineIterator It;
    It.Step = R.range(-6, 6);
    if (It.Step == 0)
      continue;
    const Op Cmps[] = {Op::CmpLt, Op::CmpLe, Op::CmpEq};
    It.CmpOp = Cmps[R.below(3)];
    It.Bound = R.range(-60, 60);
    It.ContinueWhenTrue = R.below(2);
    int64_t Init = R.range(-60, 60);

    IteratorBounds B;
    bool Ok = computeIteratorBounds(It, Init, B);

    // Direct simulation with a generous cap.
    int64_t X = Init;
    uint64_t Trips = 0;
    int64_t HeaderMin = X, HeaderMax = X;
    int64_t BodyMin = INT64_MAX, BodyMax = INT64_MIN;
    bool Terminated = false;
    for (int Iter = 0; Iter < 4000; ++Iter) {
      bool CmpResult;
      switch (It.CmpOp) {
      case Op::CmpLt:
        CmpResult = X < It.Bound;
        break;
      case Op::CmpLe:
        CmpResult = X <= It.Bound;
        break;
      default:
        CmpResult = X == It.Bound;
        break;
      }
      bool Continue = CmpResult == It.ContinueWhenTrue;
      if (!Continue) {
        Terminated = true;
        break;
      }
      BodyMin = std::min(BodyMin, X);
      BodyMax = std::max(BodyMax, X);
      ++Trips;
      X += It.Step;
      HeaderMin = std::min(HeaderMin, X);
      HeaderMax = std::max(HeaderMax, X);
    }

    if (!Ok) {
      // The analysis may refuse terminating-but-awkward shapes
      // (conservative), but it must refuse every non-terminating one.
      continue;
    }
    ASSERT_TRUE(Terminated)
        << "analysis accepted a non-terminating loop: init " << Init
        << " step " << It.Step << " bound " << It.Bound;
    EXPECT_EQ(B.TripCount, Trips);
    // Computed ranges are conservative supersets of the observed ones.
    EXPECT_LE(B.HeaderMin, HeaderMin);
    EXPECT_GE(B.HeaderMax, HeaderMax);
    if (Trips > 0) {
      EXPECT_LE(B.BodyMin, BodyMin);
      EXPECT_GE(B.BodyMax, BodyMax);
    }
    ++Checked;
  }
  // Make sure the property actually exercised plenty of accepted shapes.
  EXPECT_GT(Checked, 500);
}

// --- Assembler round-trips over the whole workload suite.

class WorkloadRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadRoundTrip, DisassembleAssembleMatches) {
  Workload W = makeWorkload(GetParam(), 0.03);
  std::string Text = disassembleToString(W.Prog);
  Expected<Program> Q = assembleProgram(Text);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error();
  RunResult A = runProgram(W.Prog, W.Train);
  RunResult B = runProgram(*Q, W.Train);
  EXPECT_EQ(A.Output, B.Output);
  // Second disassembly is a fixpoint.
  EXPECT_EQ(disassembleToString(*Q), Text);
}

TEST_P(WorkloadRoundTrip, NarrowedProgramAlsoRoundTrips) {
  Workload W = makeWorkload(GetParam(), 0.03);
  Program P = W.Prog;
  narrowProgram(P);
  std::string Text = disassembleToString(P);
  Expected<Program> Q = assembleProgram(Text);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error();
  RunResult A = runProgram(P, W.Train);
  RunResult B = runProgram(*Q, W.Train);
  EXPECT_EQ(A.Output, B.Output);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRoundTrip,
                         ::testing::Values("compress", "gcc", "go", "ijpeg",
                                           "li", "m88ksim", "perl",
                                           "vortex"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

// --- Useful-width widths never under-run the range-based widths in ways
// that break execution: stress with randomized mask/shift/store chains.

TEST(NarrowingProperty, RandomMaskChainsPreserveOutput) {
  const uint64_t Seed = propertySeed(987654);
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);
  for (int Trial = 0; Trial < 60; ++Trial) {
    ProgramBuilder PB;
    uint64_t Data = PB.addQuadData({R.range(INT32_MIN, INT32_MAX),
                                    R.range(-255, 255), R.range(0, 1023)});
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.ldi(RegT0, static_cast<int64_t>(Data));
    F.ld(Width::Q, RegT1, RegT0, 0);
    F.ld(Width::Q, RegT2, RegT0, 8);
    F.ld(Width::Q, RegT3, RegT0, 16);
    Reg Regs[] = {RegT1, RegT2, RegT3, RegT4};
    for (int K = 0; K < 10; ++K) {
      Reg Rd = Regs[R.below(4)];
      Reg Ra = Regs[R.below(4)];
      switch (R.below(5)) {
      case 0:
        F.andi(Rd, Ra, static_cast<int64_t>(R.below(0xFFFF)));
        break;
      case 1:
        F.emit(Instruction::msk(static_cast<Width>(R.below(3)), Rd, Ra,
                                static_cast<unsigned>(R.below(4))));
        break;
      case 2:
        F.srli(Rd, Ra, static_cast<int64_t>(R.below(16)));
        break;
      case 3:
        F.add(Rd, Ra, Regs[R.below(4)]);
        break;
      default:
        F.ori(Rd, Ra, static_cast<int64_t>(R.below(0xFF)));
        break;
      }
    }
    // Stores of several widths: useful-width demand sources.
    F.st(Width::B, Regs[R.below(4)], RegT0, 0);
    F.st(Width::H, Regs[R.below(4)], RegT0, 2);
    F.ld(Width::Q, RegT5, RegT0, 0);
    F.out(RegT5);
    for (Reg Out : Regs)
      F.out(Out);
    F.halt();
    Program P = PB.finish();
    Program N = P;
    narrowProgram(N);
    RunResult A = runProgram(P, RunOptions());
    RunResult B = runProgram(N, RunOptions());
    ASSERT_EQ(A.Status, RunStatus::Halted);
    EXPECT_EQ(A.Output, B.Output) << "trial " << Trial;
  }
}

// --- Interval algebra laws.

TEST(ValueRangeLaws, UnionIntersectProperties) {
  const uint64_t Seed = propertySeed(55);
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    int64_t ALo = R.range(-1000, 1000), AHi = ALo + R.range(0, 500);
    int64_t BLo = R.range(-1000, 1000), BHi = BLo + R.range(0, 500);
    ValueRange A(ALo, AHi), B(BLo, BHi);
    // Commutativity.
    EXPECT_EQ(A.unionWith(B), B.unionWith(A));
    EXPECT_EQ(A.intersectWith(B), B.intersectWith(A));
    // Union contains both.
    EXPECT_TRUE(A.unionWith(B).contains(A));
    EXPECT_TRUE(A.unionWith(B).contains(B));
    // Intersection contained in both when non-disjoint.
    if (!A.disjointFrom(B)) {
      EXPECT_TRUE(A.contains(A.intersectWith(B)));
      EXPECT_TRUE(B.contains(A.intersectWith(B)));
    }
    // Absorption with full.
    EXPECT_EQ(A.unionWith(ValueRange::full()), ValueRange::full());
    EXPECT_EQ(A.intersectWith(ValueRange::full()), A);
    // bytes() monotone under union.
    EXPECT_GE(A.unionWith(B).bytes(), A.bytes() > B.bytes() ? A.bytes()
                                                            : B.bytes());
  }
}

// --- Binary-frontend fuzzing.
//
// The decoder and the ELF reader are the system's only parsers of
// untrusted bytes; both promise "diagnostic, never undefined behavior"
// for arbitrary input. Random words, random files, and bit-flipped real
// fixtures drive that promise (run under ASan/UBSan in the sanitizer CI
// job).

TEST(FrontendFuzz, DecoderNeverCrashesOnRandomWords) {
  const uint64_t Seed = propertySeed(77);
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);
  int Ok = 0;
  for (int Trial = 0; Trial < 20000; ++Trial) {
    const uint32_t Word = static_cast<uint32_t>(R.next());
    Expected<RvInst> I = decodeRv32(Word);
    if (I) {
      ++Ok;
      // A successful decode must re-render without touching garbage.
      EXPECT_FALSE(rvInstStr(*I).empty());
      EXPECT_LT(I->Rd, 32);
      EXPECT_LT(I->Rs1, 32);
      EXPECT_LT(I->Rs2, 32);
    } else {
      EXPECT_EQ(I.error().rfind("cannot decode word 0x", 0), 0u)
          << I.error();
    }
  }
  // Sanity: the RV32I encoding space is dense enough that a uniform
  // sample decodes a nontrivial fraction of the time.
  EXPECT_GT(Ok, 0);
}

TEST(FrontendFuzz, ElfParserNeverCrashesOnMutatedFixtures) {
  const uint64_t Seed = propertySeed(78);
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);
  for (const char *Name : {"checksum.elf", "sieve.elf", "strhash.elf"}) {
    const std::string Path =
        std::string(OG_RV32_FIXTURE_DIR) + "/" + Name;
    Expected<ElfFile> Orig = ElfFile::load(Path);
    ASSERT_TRUE(bool(Orig)) << (Orig ? "" : Orig.error());

    std::ifstream In(Path, std::ios::binary);
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                               std::istreambuf_iterator<char>());
    ASSERT_FALSE(Bytes.empty());
    for (int Trial = 0; Trial < 300; ++Trial) {
      std::vector<uint8_t> Mut = Bytes;
      // 1-8 random byte edits, biased toward the headers where the
      // parser's bounds arithmetic lives.
      const int Edits = static_cast<int>(R.range(1, 8));
      for (int E = 0; E < Edits; ++E) {
        const size_t Pos = R.next() % 4 == 0
                               ? R.below(std::min<size_t>(Mut.size(), 256))
                               : R.below(Mut.size());
        Mut[Pos] = static_cast<uint8_t>(R.next());
      }
      // Occasionally truncate too.
      if (R.next() % 8 == 0)
        Mut.resize(R.below(Mut.size() + 1));
      Expected<ElfFile> E = ElfFile::parse(std::move(Mut));
      if (!E)
        continue; // diagnostic path: fine
      // If it still parses, the lifter must also stay well-defined:
      // either a Verifier-clean program or a diagnostic.
      Expected<LiftedProgram> L = liftElf(*E);
      if (L) {
        std::string Diag;
        EXPECT_TRUE(verifyProgram(L->Prog, &Diag)) << Diag;
      }
    }
  }
}

TEST(FrontendFuzz, LifterNeverCrashesOnRandomText) {
  // Random instruction streams wrapped in a well-formed ELF: the decoder
  // accepts some of them, so this exercises discovery's bail-outs (bad
  // branch targets, indirect jumps, x4 use) far more often than a lift
  // that succeeds.
  const uint64_t Seed = propertySeed(79);
  SCOPED_TRACE(seedTrace(Seed));
  Rng R(Seed);
  for (int Trial = 0; Trial < 300; ++Trial) {
    const size_t Words = static_cast<size_t>(R.range(1, 64));
    // ehdr + one R+X phdr around the random words; mirrors the fixture
    // writer's layout.
    std::vector<uint8_t> B(52 + 32 + Words * 4, 0);
    auto U16 = [&B](size_t O, uint16_t V) {
      B[O] = V & 0xFF;
      B[O + 1] = V >> 8;
    };
    auto U32 = [&B](size_t O, uint32_t V) {
      for (int I = 0; I < 4; ++I)
        B[O + I] = (V >> (8 * I)) & 0xFF;
    };
    B[0] = 0x7F;
    B[1] = 'E';
    B[2] = 'L';
    B[3] = 'F';
    B[4] = B[5] = B[6] = 1;
    U16(16, 2);
    U16(18, 243);
    U32(20, 1);
    U32(24, 0x10000);
    U32(28, 52);
    U16(40, 52);
    U16(42, 32);
    U16(44, 1);
    U32(52, 1); // PT_LOAD
    U32(56, 84);
    U32(60, 0x10000);
    U32(64, 0x10000);
    U32(68, static_cast<uint32_t>(Words * 4));
    U32(72, static_cast<uint32_t>(Words * 4));
    U32(76, 5); // R+X
    U32(80, 4);
    for (size_t W = 0; W < Words; ++W)
      U32(84 + W * 4, static_cast<uint32_t>(R.next()));

    Expected<ElfFile> E = ElfFile::parse(std::move(B));
    ASSERT_TRUE(bool(E)) << (E ? "" : E.error());
    Expected<LiftedProgram> L = liftElf(*E);
    if (L) {
      std::string Diag;
      EXPECT_TRUE(verifyProgram(L->Prog, &Diag)) << Diag;
    } else {
      EXPECT_FALSE(L.error().empty());
    }
  }
}
