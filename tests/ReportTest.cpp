//===- tests/ReportTest.cpp - JSON model + report diff unit tests ----------==//
//
// Covers the structured-report substrate end to end: JSON write/parse
// round-trips (idempotence, escaping, number formats, the NaN/inf
// policy), parser rejection of malformed input, schema-envelope checks,
// the tolerance semantics of diffReports (exact counters, tolerated
// metrics, structural changes), and the determinism of the sweep
// serializer across cell insertion orders.
//
//===----------------------------------------------------------------------==//

#include "driver/ResultAggregator.h"
#include "report/Baseline.h"
#include "report/ReportSchema.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace og;

namespace {

/// write(parse(Text)) as a string; fails the test on parse error.
std::string reserialize(const std::string &Text) {
  Expected<JsonValue> V = parseJson(Text);
  EXPECT_TRUE(static_cast<bool>(V)) << (V ? "" : V.error());
  if (!V)
    return std::string();
  return V->toString();
}

JsonValue sampleDoc() {
  JsonValue Counters = JsonValue::object();
  Counters.set("dyn-insts", JsonValue::integer(int64_t(123456789)));
  Counters.set("cycles", JsonValue::integer(int64_t(987654)));
  JsonValue Metrics = JsonValue::object();
  Metrics.set("ipc", JsonValue::number(1.5784772771985047));
  Metrics.set("energy", JsonValue::number(720583.2179997836));
  JsonValue Doc = makeReportRoot("run");
  Doc.set("counters", std::move(Counters));
  Doc.set("metrics", std::move(Metrics));
  Doc.set("output", [] {
    JsonValue A = JsonValue::array();
    A.push(JsonValue::integer(-5));
    A.push(JsonValue::integer(0));
    A.push(JsonValue::integer(42));
    return A;
  }());
  return Doc;
}

//===----------------------------------------------------------------------===//
// JSON value model + writer
//===----------------------------------------------------------------------===//

TEST(Json, WriterBasics) {
  JsonValue O = JsonValue::object();
  O.set("b", JsonValue::boolean(true));
  O.set("n", JsonValue::null());
  O.set("i", JsonValue::integer(-7));
  O.set("s", JsonValue::str("hi"));
  EXPECT_EQ(O.toString(),
            "{\n  \"b\": true,\n  \"n\": null,\n  \"i\": -7,\n  \"s\": "
            "\"hi\"\n}\n");
}

TEST(Json, ObjectKeysKeepInsertionOrderAndReplaceInPlace) {
  JsonValue O = JsonValue::object();
  O.set("z", JsonValue::integer(1));
  O.set("a", JsonValue::integer(2));
  O.set("z", JsonValue::integer(3)); // replaces, does not reorder
  ASSERT_EQ(O.members().size(), 2u);
  EXPECT_EQ(O.members()[0].first, "z");
  EXPECT_EQ(O.members()[0].second.asInt(), 3);
  EXPECT_EQ(O.members()[1].first, "a");
}

TEST(Json, ScalarArraysPrintInline) {
  JsonValue A = JsonValue::array();
  A.push(JsonValue::integer(1));
  A.push(JsonValue::integer(2));
  EXPECT_EQ(A.toString(), "[1, 2]\n");

  JsonValue Nested = JsonValue::array();
  Nested.push(JsonValue::object());
  EXPECT_EQ(Nested.toString(), "[\n  {}\n]\n");
}

TEST(Json, IntegersPrintExactlyAtTheLimits) {
  EXPECT_EQ(JsonValue::integer(std::numeric_limits<int64_t>::max()).toString(),
            "9223372036854775807\n");
  EXPECT_EQ(JsonValue::integer(std::numeric_limits<int64_t>::min()).toString(),
            "-9223372036854775808\n");
}

TEST(Json, Uint64AboveInt64MaxDegradesToDouble) {
  // Mirrors the parser: never wrap a big counter negative.
  JsonValue V = JsonValue::integer(uint64_t(18446744073709551615ull));
  EXPECT_FALSE(V.isInteger());
  EXPECT_DOUBLE_EQ(V.asNumber(), 18446744073709551615.0);
  EXPECT_TRUE(
      JsonValue::integer(uint64_t(INT64_MAX)).isInteger());
}

TEST(Json, DoublesUseShortestRoundTripForm) {
  EXPECT_EQ(JsonValue::formatDouble(0.25), "0.25");
  EXPECT_EQ(JsonValue::formatDouble(0.1), "0.1");
  // Integral doubles keep a visible fraction so they stay doubles when
  // re-parsed (write/parse idempotence).
  EXPECT_EQ(JsonValue::formatDouble(3.0), "3.0");
  double Pi = 3.141592653589793;
  std::string S = JsonValue::formatDouble(Pi);
  EXPECT_EQ(std::strtod(S.c_str(), nullptr), Pi);
}

TEST(Json, NanAndInfSerializeAsNull) {
  EXPECT_TRUE(JsonValue::number(std::nan("")).isNull());
  EXPECT_TRUE(JsonValue::number(std::numeric_limits<double>::infinity())
                  .isNull());
  EXPECT_TRUE(JsonValue::number(-std::numeric_limits<double>::infinity())
                  .isNull());
  JsonValue O = JsonValue::object();
  O.set("x", JsonValue::number(std::nan("")));
  EXPECT_EQ(O.toString(), "{\n  \"x\": null\n}\n");
  // And the parser never produces them: the literals are rejected.
  EXPECT_FALSE(static_cast<bool>(parseJson("NaN")));
  EXPECT_FALSE(static_cast<bool>(parseJson("Infinity")));
}

TEST(Json, StringEscaping) {
  JsonValue S = JsonValue::str("a\"b\\c\nd\te\x01"
                               "f");
  EXPECT_EQ(S.toString(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"\n");
  // UTF-8 passes through raw.
  EXPECT_EQ(JsonValue::str("caf\xc3\xa9").toString(), "\"caf\xc3\xa9\"\n");
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Json, ParseBasics) {
  Expected<JsonValue> V =
      parseJson("{\"a\": [1, 2.5, true, null, \"x\"], \"b\": {}}");
  ASSERT_TRUE(static_cast<bool>(V));
  ASSERT_TRUE(V->isObject());
  const JsonValue *A = V->get("a");
  ASSERT_TRUE(A && A->isArray());
  EXPECT_EQ(A->size(), 5u);
  EXPECT_TRUE(A->at(0).isInteger());
  EXPECT_EQ(A->at(0).asInt(), 1);
  EXPECT_FALSE(A->at(1).isInteger());
  EXPECT_DOUBLE_EQ(A->at(1).asNumber(), 2.5);
  EXPECT_TRUE(A->at(2).asBool());
  EXPECT_TRUE(A->at(3).isNull());
  EXPECT_EQ(A->at(4).asString(), "x");
}

TEST(Json, ParseEscapesAndSurrogates) {
  Expected<JsonValue> V = parseJson("\"\\u0041\\n\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->asString(), "A\n\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, ParseRejectsMalformedInput) {
  const char *Bad[] = {
      "",             // empty
      "{",            // unterminated object
      "[1, 2",        // unterminated array
      "[1,]",         // trailing comma
      "{\"a\" 1}",    // missing colon
      "{a: 1}",       // unquoted key
      "\"abc",        // unterminated string
      "\"\\q\"",      // unknown escape
      "\"\\ud800\"",  // unpaired surrogate
      "01",           // leading zero
      "1.",           // digits required after point
      "1e",           // digits required in exponent
      "-",            // bare minus
      "tru",          // bad literal
      "1 2",          // trailing content
      "{\"a\":1,\"a\":2}", // duplicate key
      "1e999",        // beyond double range (must not become null)
      "-1e999",
  };
  for (const char *T : Bad)
    EXPECT_FALSE(static_cast<bool>(parseJson(T))) << "accepted: " << T;
}

TEST(Json, ParseIntegerness) {
  // int64 range parses as integer; beyond it degrades to double.
  Expected<JsonValue> In = parseJson("9223372036854775807");
  ASSERT_TRUE(static_cast<bool>(In));
  EXPECT_TRUE(In->isInteger());
  EXPECT_EQ(In->asInt(), std::numeric_limits<int64_t>::max());

  Expected<JsonValue> Big = parseJson("18446744073709551616");
  ASSERT_TRUE(static_cast<bool>(Big));
  EXPECT_TRUE(Big->isNumber());
  EXPECT_FALSE(Big->isInteger());
}

TEST(Json, RoundTripIdempotence) {
  // write(parse(write(v))) == write(v) over a value exercising every
  // kind, nesting, escapes and both number flavors.
  JsonValue Doc = sampleDoc();
  Doc.set("weird", JsonValue::str("tab\t quote\" slash\\ \x7f"));
  Doc.set("tiny", JsonValue::number(1e-17));
  Doc.set("huge", JsonValue::number(1.7976931348623157e308));
  std::string Once = Doc.toString();
  std::string Twice = reserialize(Once);
  EXPECT_EQ(Once, Twice);
  // And a third pass for good measure (fixed point, not a 2-cycle).
  EXPECT_EQ(reserialize(Twice), Twice);
}

TEST(Json, RoundTripPreservesEquality) {
  JsonValue Doc = sampleDoc();
  Expected<JsonValue> Back = parseJson(Doc.toString());
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_TRUE(Doc == *Back);
}

//===----------------------------------------------------------------------===//
// Schema envelope
//===----------------------------------------------------------------------===//

TEST(ReportSchema, RootCarriesSchemaAndVersion) {
  JsonValue Root = makeReportRoot("sweep");
  EXPECT_TRUE(checkReportRoot(Root));
  EXPECT_EQ(Root.get("schema")->asString(), "ogate-report");
  EXPECT_EQ(Root.get("version")->asInt(), ReportSchemaVersion);
  EXPECT_EQ(Root.get("kind")->asString(), "sweep");
}

TEST(ReportSchema, CheckRejectsForeignAndStaleDocuments) {
  std::string Why;
  EXPECT_FALSE(checkReportRoot(JsonValue::array(), &Why));
  EXPECT_FALSE(Why.empty());

  JsonValue NoSchema = JsonValue::object();
  EXPECT_FALSE(checkReportRoot(NoSchema, &Why));

  JsonValue Stale = makeReportRoot("run");
  Stale.set("version", JsonValue::integer(ReportSchemaVersion + 1));
  EXPECT_FALSE(checkReportRoot(Stale, &Why));
  EXPECT_NE(Why.find("version"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// diffReports tolerance semantics
//===----------------------------------------------------------------------===//

TEST(ReportDiff, IdenticalDocumentsMatch) {
  JsonValue Doc = sampleDoc();
  DiffResult R = diffReports(Doc, Doc);
  EXPECT_TRUE(R.ok());
  EXPECT_GT(R.LeavesCompared, 5u);
}

TEST(ReportDiff, CounterMismatchFailsExactlyEvenWithinTolerance) {
  JsonValue Base = sampleDoc();
  JsonValue Cur = sampleDoc();
  // One part in ~1e8 — far inside any tolerance, but counters are exact.
  JsonValue Counters = *Base.get("counters");
  Counters.set("dyn-insts", JsonValue::integer(int64_t(123456790)));
  Cur.set("counters", Counters);
  DiffOptions Opts;
  Opts.TolerancePct = 50.0;
  DiffResult R = diffReports(Base, Cur, Opts);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].Path, "counters.dyn-insts");
  EXPECT_NE(R.Findings[0].What.find("exact mismatch"), std::string::npos);
}

TEST(ReportDiff, MetricsDriftWithinToleranceIsAccepted) {
  JsonValue Base = sampleDoc();
  JsonValue Cur = sampleDoc();
  JsonValue Metrics = *Base.get("metrics");
  Metrics.set("ipc", JsonValue::number(1.5784772771985047 * 1.015)); // +1.5%
  Cur.set("metrics", Metrics);
  EXPECT_TRUE(diffReports(Base, Cur, {2.0}).ok());
  // The same drift fails a tighter gate.
  EXPECT_FALSE(diffReports(Base, Cur, {1.0}).ok());
}

TEST(ReportDiff, InjectedMetricRegressionIsCaught) {
  JsonValue Base = sampleDoc();
  JsonValue Cur = sampleDoc();
  JsonValue Metrics = *Base.get("metrics");
  Metrics.set("energy", JsonValue::number(720583.2179997836 * 1.10)); // +10%
  Cur.set("metrics", Metrics);
  DiffResult R = diffReports(Base, Cur, {2.0});
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].Path, "metrics.energy");
  EXPECT_NE(R.Findings[0].What.find("tolerance"), std::string::npos);
}

TEST(ReportDiff, ToleranceIsRelativeToTheLargerMagnitude) {
  JsonValue Base = JsonValue::object();
  JsonValue BM = JsonValue::object();
  BM.set("v", JsonValue::number(100.0));
  Base.set("metrics", BM);
  JsonValue Cur = JsonValue::object();
  JsonValue CM = JsonValue::object();
  CM.set("v", JsonValue::number(98.05)); // 1.95% below
  Cur.set("metrics", CM);
  EXPECT_TRUE(diffReports(Base, Cur, {2.0}).ok());
  CM.set("v", JsonValue::number(97.9)); // 2.1% below
  Cur.set("metrics", CM);
  EXPECT_FALSE(diffReports(Base, Cur, {2.0}).ok());
  // Zero baseline vs zero current is fine; zero vs nonzero is 100% off.
  BM.set("v", JsonValue::number(0.0));
  Base.set("metrics", BM);
  CM.set("v", JsonValue::number(0.0));
  Cur.set("metrics", CM);
  EXPECT_TRUE(diffReports(Base, Cur, {2.0}).ok());
  CM.set("v", JsonValue::number(0.001));
  Cur.set("metrics", CM);
  EXPECT_FALSE(diffReports(Base, Cur, {2.0}).ok());
}

TEST(ReportDiff, StructuralChangesAreFindings) {
  JsonValue Base = sampleDoc();
  JsonValue Cur = sampleDoc();
  Cur.set("extra", JsonValue::integer(1));
  DiffResult R = diffReports(Base, Cur);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_EQ(R.Findings[0].Path, "extra");

  JsonValue Cur2 = sampleDoc();
  Cur2.set("kind", JsonValue::integer(3)); // string -> number
  R = diffReports(Base, Cur2);
  ASSERT_EQ(R.Findings.size(), 1u);
  EXPECT_NE(R.Findings[0].What.find("kind changed"), std::string::npos);
}

TEST(ReportDiff, CellArraysMatchByWorkloadAndConfig) {
  auto MakeCell = [](const char *W, const char *C, int64_t Cycles) {
    JsonValue Cell = JsonValue::object();
    Cell.set("workload", JsonValue::str(W));
    Cell.set("config", JsonValue::str(C));
    JsonValue Counters = JsonValue::object();
    Counters.set("cycles", JsonValue::integer(Cycles));
    Cell.set("counters", std::move(Counters));
    return Cell;
  };
  JsonValue Base = JsonValue::object();
  JsonValue BC = JsonValue::array();
  BC.push(MakeCell("compress", "baseline", 100));
  BC.push(MakeCell("compress", "vrp", 90));
  Base.set("cells", std::move(BC));

  // Same cells, different order: still a clean match.
  JsonValue Cur = JsonValue::object();
  JsonValue CC = JsonValue::array();
  CC.push(MakeCell("compress", "vrp", 90));
  CC.push(MakeCell("compress", "baseline", 100));
  Cur.set("cells", std::move(CC));
  EXPECT_TRUE(diffReports(Base, Cur).ok());

  // A dropped cell is reported by name, not as index noise.
  JsonValue Cur2 = JsonValue::object();
  JsonValue C2 = JsonValue::array();
  C2.push(MakeCell("compress", "baseline", 100));
  C2.push(MakeCell("compress", "hw-sig", 80));
  Cur2.set("cells", std::move(C2));
  DiffResult R = diffReports(Base, Cur2);
  ASSERT_EQ(R.Findings.size(), 2u);
  EXPECT_EQ(R.Findings[0].Path, "cells[compress/vrp]");
  EXPECT_NE(R.Findings[0].What.find("missing"), std::string::npos);
  EXPECT_EQ(R.Findings[1].Path, "cells[compress/hw-sig]");
  EXPECT_NE(R.Findings[1].What.find("not present"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sweep serialization determinism
//===----------------------------------------------------------------------===//

TEST(ReportSchema, SweepJsonIsInsertionOrderIndependent) {
  ExperimentSpec A;
  A.Workload = "compress";
  A.ConfigLabel = "baseline";
  ExperimentSpec B;
  B.Workload = "compress";
  B.ConfigLabel = "vrp";
  ExperimentSpec C;
  C.Workload = "gcc";
  C.ConfigLabel = "baseline";

  PipelineResult R1;
  R1.RefStats.DynInsts = 1000;
  R1.Report.Uarch.Cycles = 500;
  R1.Report.TotalEnergy = 10.5;
  PipelineResult R2;
  R2.RefStats.DynInsts = 1000;
  R2.Report.Uarch.Cycles = 450;
  R2.Report.TotalEnergy = 8.25;
  PipelineResult R3;
  R3.RefStats.DynInsts = 2000;
  R3.Report.Uarch.Cycles = 900;
  R3.Report.TotalEnergy = 20.0;

  ResultAggregator Fwd;
  Fwd.add(A, R1);
  Fwd.add(B, R2);
  Fwd.add(C, R3);
  ResultAggregator Rev;
  Rev.add(C, R3);
  Rev.add(B, R2);
  Rev.add(A, R1);

  std::string FwdDoc = sweepToJson(Fwd, "standard", 0.05).toString();
  std::string RevDoc = sweepToJson(Rev, "standard", 0.05).toString();
  EXPECT_EQ(FwdDoc, RevDoc);
  EXPECT_NE(FwdDoc.find("\"kind\": \"sweep\""), std::string::npos);
  // The document must carry no wall-clock or worker-count fields; that
  // is the byte-determinism contract ogate-sim --sweep --json relies on.
  EXPECT_EQ(FwdDoc.find("jobs"), std::string::npos);
  EXPECT_EQ(FwdDoc.find("seconds"), std::string::npos);
}

} // namespace
