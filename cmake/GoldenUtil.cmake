# Golden-output smoke testing, run in CMake script mode:
#
#   cmake -DBINARY=<exe> -DGOLDEN=<file> [-DMODE=check|update] \
#         -P GoldenUtil.cmake
#
# MODE=check (default): run BINARY, diff its stdout against GOLDEN,
# fail with the first differing line on mismatch.
# MODE=update: run BINARY and (re)write GOLDEN with its stdout.

if(NOT DEFINED MODE)
  set(MODE check)
endif()

execute_process(
  COMMAND ${BINARY}
  OUTPUT_VARIABLE ACTUAL
  RESULT_VARIABLE RC
)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with status ${RC}")
endif()

if(MODE STREQUAL "update")
  file(WRITE "${GOLDEN}" "${ACTUAL}")
  message(STATUS "wrote ${GOLDEN}")
  return()
endif()

if(NOT EXISTS "${GOLDEN}")
  message(FATAL_ERROR
    "golden file ${GOLDEN} is missing; regenerate with the "
    "`regen-golden` build target")
endif()
file(READ "${GOLDEN}" EXPECTED)

if(ACTUAL STREQUAL EXPECTED)
  return()
endif()

# Report the first differing line to make mismatches debuggable without
# rerunning anything by hand.
string(REPLACE ";" "\\;" ACTUAL_ESC "${ACTUAL}")
string(REPLACE "\n" ";" ACTUAL_LINES "${ACTUAL_ESC}")
string(REPLACE ";" "\\;" EXPECTED_ESC "${EXPECTED}")
string(REPLACE "\n" ";" EXPECTED_LINES "${EXPECTED_ESC}")
list(LENGTH ACTUAL_LINES NA)
list(LENGTH EXPECTED_LINES NE)
set(LINENO 1)
set(DETAIL "outputs differ in length (${NA} vs ${NE} lines)")
if(NA LESS NE)
  set(NMIN ${NA})
else()
  set(NMIN ${NE})
endif()
math(EXPR NMIN "${NMIN} - 1")
if(NMIN GREATER_EQUAL 0)
  foreach(I RANGE 0 ${NMIN})
    list(GET ACTUAL_LINES ${I} LA)
    list(GET EXPECTED_LINES ${I} LE)
    if(NOT LA STREQUAL LE)
      math(EXPR LINENO "${I} + 1")
      set(DETAIL "first difference at line ${LINENO}:\n  expected: ${LE}\n  actual:   ${LA}")
      break()
    endif()
  endforeach()
endif()

message(FATAL_ERROR
  "stdout of ${BINARY} does not match ${GOLDEN}\n${DETAIL}\n"
  "(regenerate intentionally changed output with the `regen-golden` "
  "build target)")
