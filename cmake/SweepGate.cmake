# The sweep regression gate, run in CMake script mode:
#
#   cmake -DSIM=<ogate-sim> -DREPORT=<ogate-report> -DBASELINE=<json>
#         -DOUT_DIR=<dir> [-DSCALE=0.05] [-DJOBS=8] [-DTOLERANCE=2]
#         -P SweepGate.cmake
#
# Steps (any failure is FATAL_ERROR, so the CTest wrapper fails):
#   1. run the sweep serially and in parallel, each with --json;
#   2. require the two JSON documents to be byte-identical (the
#      determinism contract of the experiment driver);
#   3. `ogate-report diff` the parallel document against the checked-in
#      baseline under the metrics tolerance.

if(NOT DEFINED SCALE)
  set(SCALE 0.05)
endif()
if(NOT DEFINED JOBS)
  set(JOBS 8)
endif()
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 2)
endif()

set(SERIAL_JSON ${OUT_DIR}/sweep-serial.json)
set(PARALLEL_JSON ${OUT_DIR}/sweep-parallel.json)

foreach(CONF "1;${SERIAL_JSON}" "${JOBS};${PARALLEL_JSON}")
  list(GET CONF 0 NJOBS)
  list(GET CONF 1 JSON)
  execute_process(
    COMMAND ${SIM} --sweep --scale=${SCALE} --jobs=${NJOBS} --json=${JSON}
    RESULT_VARIABLE RC
    OUTPUT_QUIET
    ERROR_VARIABLE ERR
  )
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "${SIM} --jobs=${NJOBS} failed (${RC}):\n${ERR}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${SERIAL_JSON} ${PARALLEL_JSON}
  RESULT_VARIABLE RC
)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR
    "sweep JSON is not byte-identical between --jobs=1 and --jobs=${JOBS} "
    "(${SERIAL_JSON} vs ${PARALLEL_JSON}); the aggregate report must not "
    "depend on worker count")
endif()

execute_process(
  COMMAND ${REPORT} diff --tolerance=${TOLERANCE} ${BASELINE} ${PARALLEL_JSON}
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE MSG
  ERROR_VARIABLE MSG
)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR
    "sweep regressed against ${BASELINE}:\n${MSG}")
endif()
message(STATUS "${MSG}")
