# Detects GNU computed goto (label-address dispatch tables), the backbone
# of the engine's threaded dispatch mode. The check compiles with the
# project's own standard/flags, so a toolchain that rejects the extension
# (or a -pedantic-errors build) cleanly falls back to the portable switch.
#
# OG_FORCE_SWITCH_DISPATCH=ON drops the threaded path even when the
# compiler supports it — the CI matrix uses this to keep the switch
# fallback honest on every commit.

include(CheckCXXSourceCompiles)

option(OG_FORCE_SWITCH_DISPATCH
       "Build without computed-goto dispatch (portable switch only)" OFF)

if(OG_FORCE_SWITCH_DISPATCH)
  set(OG_HAS_COMPUTED_GOTO FALSE)
  message(STATUS "ogate: threaded dispatch force-disabled (switch only)")
else()
  check_cxx_source_compiles("
    int run(int I) {
      static const void *const Tbl[] = {&&L0, &&L1};
      goto *Tbl[I];
    L0:
      return 0;
    L1:
      return 1;
    }
    int main() { return run(0); }
  " OG_HAS_COMPUTED_GOTO)
  if(OG_HAS_COMPUTED_GOTO)
    message(STATUS "ogate: computed-goto (threaded) dispatch enabled")
  else()
    message(STATUS "ogate: computed goto unavailable; switch dispatch only")
  endif()
endif()
