# The sweep-service smoke gate, run in CMake script mode:
#
#   cmake -DSIM=<ogate-sim> -DSERVE=<ogate-serve> -DOUT_DIR=<dir>
#         [-DSCALE=0.05] [-DJOBS=8] -P ServeGate.cmake
#
# Steps (any failure stops the server, then FATAL_ERRORs so the CTest
# wrapper fails):
#   1. run the batch sweep with --json (the reference bytes);
#   2. start ogate-serve on a fresh socket + cache directory, poll ping
#      until it answers;
#   3. request the same sweep through the server twice:
#      - the cold pass must produce a byte-identical document, and every
#        cell is a miss (the cache directory started empty);
#      - the warm pass runs with --require-cached, which exits non-zero
#        if any cell was recomputed — the "repeat sweeps are O(changed
#        cells)" contract;
#   4. ask the server to stop.

if(NOT DEFINED SCALE)
  set(SCALE 0.05)
endif()
if(NOT DEFINED JOBS)
  set(JOBS 8)
endif()

set(BATCH_JSON ${OUT_DIR}/serve-batch.json)
set(COLD_JSON ${OUT_DIR}/serve-cold.json)
set(WARM_JSON ${OUT_DIR}/serve-warm.json)
set(CACHE_DIR ${OUT_DIR}/serve-cache)
set(SERVER_LOG ${OUT_DIR}/serve-server.log)
# AF_UNIX caps sun_path around 108 bytes and build trees nest deep, so
# the socket lives under /tmp with a random suffix (parallel ctest runs
# must not collide).
string(RANDOM LENGTH 8 ALPHABET abcdefghijklmnopqrstuvwxyz0123456789 TAG)
set(SOCKET /tmp/ogate-serve-${TAG}.sock)

file(REMOVE_RECURSE ${CACHE_DIR})
file(REMOVE ${BATCH_JSON} ${COLD_JSON} ${WARM_JSON})

# Stop the server (best-effort) before failing, so one broken step never
# leaks a background process into the test runner.
function(gate_fail MSG)
  execute_process(COMMAND ${SERVE} stop --socket=${SOCKET}
                  OUTPUT_QUIET ERROR_QUIET)
  if(EXISTS ${SERVER_LOG})
    file(READ ${SERVER_LOG} LOG)
    message(FATAL_ERROR "${MSG}\n--- server log ---\n${LOG}")
  endif()
  message(FATAL_ERROR "${MSG}")
endfunction()

# --- 1. Batch reference document.
execute_process(
  COMMAND ${SIM} --sweep --scale=${SCALE} --jobs=${JOBS} --json=${BATCH_JSON}
  RESULT_VARIABLE RC
  OUTPUT_QUIET
  ERROR_VARIABLE ERR
)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "batch sweep failed (${RC}):\n${ERR}")
endif()

# --- 2. Server up, with an empty persistent cache.
execute_process(
  COMMAND sh -c "exec '${SERVE}' --socket='${SOCKET}' --cache-dir='${CACHE_DIR}' --jobs=${JOBS} > '${SERVER_LOG}' 2>&1 &"
  RESULT_VARIABLE RC
)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "could not launch ogate-serve (${RC})")
endif()

set(UP FALSE)
foreach(ATTEMPT RANGE 50)
  execute_process(COMMAND ${SERVE} ping --socket=${SOCKET}
                  RESULT_VARIABLE RC OUTPUT_QUIET ERROR_QUIET)
  if(RC EQUAL 0)
    set(UP TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
endforeach()
if(NOT UP)
  gate_fail("ogate-serve did not answer ping on ${SOCKET} within 10s")
endif()

# --- 3a. Cold pass: byte-identical to batch.
execute_process(
  COMMAND ${SERVE} request --socket=${SOCKET} --scale=${SCALE}
          --json=${COLD_JSON}
  RESULT_VARIABLE RC
  ERROR_VARIABLE ERR
)
if(NOT RC EQUAL 0)
  gate_fail("cold served sweep failed (${RC}):\n${ERR}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${BATCH_JSON} ${COLD_JSON}
  RESULT_VARIABLE RC
)
if(NOT RC EQUAL 0)
  gate_fail("served sweep document is not byte-identical to batch "
            "ogate-sim --sweep --json output (${BATCH_JSON} vs ${COLD_JSON})")
endif()

# --- 3b. Warm pass: zero recomputes, still the same bytes.
execute_process(
  COMMAND ${SERVE} request --socket=${SOCKET} --scale=${SCALE}
          --json=${WARM_JSON} --require-cached
  RESULT_VARIABLE RC
  ERROR_VARIABLE ERR
)
if(NOT RC EQUAL 0)
  gate_fail("warm served sweep was not pure cache hits (${RC}):\n${ERR}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${BATCH_JSON} ${WARM_JSON}
  RESULT_VARIABLE RC
)
if(NOT RC EQUAL 0)
  gate_fail("warm-cache served document diverged from the batch bytes "
            "(${BATCH_JSON} vs ${WARM_JSON})")
endif()

# --- 4. Shut down.
execute_process(
  COMMAND ${SERVE} stop --socket=${SOCKET}
  RESULT_VARIABLE RC
  ERROR_VARIABLE ERR
)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "ogate-serve stop failed (${RC}):\n${ERR}")
endif()
message(STATUS "serve gate passed: cold bytes == batch bytes, warm pass "
               "all cache hits")
