//===- tools/ogate-report.cpp - Report inspection / regression gate --------==//
//
// Works on the schema-versioned JSON documents every ogate tool and bench
// can emit (src/report/). Subcommands:
//
//   ogate-report diff [--tolerance=PCT] <baseline.json> <current.json>
//     Compares a fresh report against a checked-in baseline: leaves
//     under "metrics" may drift by the relative tolerance (default 2%),
//     everything else — the deterministic counters, labels, document
//     structure — must match exactly. Exit status: 0 match, 1 regression
//     (every divergence listed on stdout), 2 usage/parse/schema error.
//     This is the CI perf-smoke gate.
//
//   ogate-report print [--compact] <file.json | ->
//     Validates the schema envelope and pretty-prints the normalized
//     document (also handy to canonicalize a hand-edited baseline).
//     "-" reads the document from stdin, so `ogate-sim ... --json=- |
//     ogate-report print -` works without a temp file.
//     --compact renders cell-bearing documents (sweeps, bench reports)
//     as a one-line-per-cell table instead — the quick way to eyeball
//     sampled vs exact cells side by side; documents without cells are
//     rejected (exit 2).
//
//===----------------------------------------------------------------------===//

#include "report/Baseline.h"
#include "report/ReportSchema.h"
#include "support/Cli.h"
#include "support/Table.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace og;

namespace {

int usage() {
  std::cerr << "usage: ogate-report diff [--tolerance=PCT] <baseline.json> "
               "<current.json>\n"
               "       ogate-report print [--compact] <file.json | ->\n";
  return 2;
}

/// Loads + schema-checks one report document; "-" reads stdin. Exits the
/// process with status 2 on failure (both subcommands want exactly that
/// behavior).
JsonValue loadReport(const std::string &Path) {
  Expected<JsonValue> Doc = [&] {
    if (Path != "-")
      return readJsonFile(Path);
    std::stringstream Buffer;
    Buffer << std::cin.rdbuf();
    Expected<JsonValue> Parsed = parseJson(Buffer.str());
    if (!Parsed)
      return makeError<JsonValue>("<stdin>: " + Parsed.error());
    return Parsed;
  }();
  if (!Doc) {
    std::cerr << "ogate-report: " << Doc.error() << "\n";
    std::exit(2);
  }
  std::string Why;
  if (!checkReportRoot(*Doc, &Why)) {
    std::cerr << "ogate-report: " << (Path == "-" ? "<stdin>" : Path) << ": "
              << Why << "\n";
    std::exit(2);
  }
  return std::move(*Doc);
}

int runDiff(const CliTool &Cli, const std::vector<std::string> &Args) {
  DiffOptions Opts;
  std::vector<std::string> Paths;
  for (const std::string &Arg : Args) {
    if (Arg.rfind("--tolerance=", 0) == 0) {
      // Strict (support/Cli.h): rejects empty, trailing junk, negatives
      // AND nan/inf — a NaN tolerance would make every comparison pass
      // and silently turn the regression gate into a no-op.
      Opts.TolerancePct = Cli.parseNonNegative(
          "--tolerance", Arg.substr(12), "want a finite percentage >= 0");
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "ogate-report: unknown option '" << Arg << "'\n";
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.size() != 2)
    return usage();

  JsonValue Baseline = loadReport(Paths[0]);
  JsonValue Current = loadReport(Paths[1]);

  DiffResult R = diffReports(Baseline, Current, Opts);
  if (R.ok()) {
    std::cout << "ogate-report: match (" << R.LeavesCompared
              << " leaves compared, metrics tolerance "
              << JsonValue::formatDouble(Opts.TolerancePct) << "%)\n";
    return 0;
  }
  std::cout << "ogate-report: " << R.Findings.size() << " difference"
            << (R.Findings.size() == 1 ? "" : "s") << " vs baseline "
            << Paths[0] << ":\n";
  for (const DiffFinding &F : R.Findings)
    std::cout << "  " << F.Path << ": " << F.What << "\n";
  std::cout << "(intentional change? regenerate the baseline with the "
               "`regen-baselines` build target)\n";
  return 1;
}

/// One line per cell: key, the headline counters, the headline metrics,
/// and the sampling provenance when the cell is an estimate.
int printCompact(const JsonValue &Doc, const std::string &Path) {
  const JsonValue *Cells = Doc.get("cells");
  if (!Cells || !Cells->isArray() || Cells->size() == 0) {
    std::cerr << "ogate-report: " << Path
              << ": --compact needs a cell-bearing document (a sweep or "
                 "bench report with a non-empty \"cells\" array)\n";
    return 2;
  }
  auto Int = [](const JsonValue *V, const char *Key) -> std::string {
    const JsonValue *F = V ? V->get(Key) : nullptr;
    return F && F->isInteger() ? std::to_string(F->asInt()) : "-";
  };
  auto Num = [](const JsonValue *V, const char *Key) -> std::string {
    const JsonValue *F = V ? V->get(Key) : nullptr;
    return F && F->isNumber() ? TextTable::num(F->asNumber(), 3) : "-";
  };
  TextTable T({"cell", "dyn-insts", "cycles", "ipc", "energy", "ed2",
               "sample"});
  for (size_t I = 0; I < Cells->size(); ++I) {
    const JsonValue &C = Cells->at(I);
    const JsonValue *W = C.get("workload");
    const JsonValue *L = C.get("config");
    std::string Key = (W && W->isString() ? W->asString() : "?") + "/" +
                      (L && L->isString() ? L->asString() : "?");
    const JsonValue *Counters = C.get("counters");
    const JsonValue *Metrics = C.get("metrics");
    const JsonValue *Sample = C.get("sample");
    std::string Prov = "exact";
    if (Sample)
      Prov = "k=" + Int(Sample, "k") + " est-err~" +
             Num(Sample, "est-error");
    T.addRow({Key, Int(Counters, "dyn-insts"), Int(Counters, "cycles"),
              Num(Metrics, "ipc"), Num(Metrics, "energy"),
              Num(Metrics, "ed2"), Prov});
  }
  T.print(std::cout);
  return 0;
}

int runPrint(const std::vector<std::string> &Args) {
  bool Compact = false;
  std::vector<std::string> Paths;
  for (const std::string &Arg : Args) {
    if (Arg == "--compact") {
      Compact = true;
    } else if (Arg == "-") {
      Paths.push_back(Arg); // stdin
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "ogate-report: unknown option '" << Arg << "'\n";
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.size() != 1)
    return usage();
  JsonValue Doc = loadReport(Paths[0]);
  if (Compact)
    return printCompact(Doc, Paths[0] == "-" ? "<stdin>" : Paths[0]);
  std::cout << Doc.toString();
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  const CliTool Cli("ogate-report");
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];
  std::vector<std::string> Args(argv + 2, argv + argc);
  if (Cmd == "diff")
    return runDiff(Cli, Args);
  if (Cmd == "print")
    return runPrint(Args);
  if (Cmd == "--help" || Cmd == "-h") {
    usage();
    return 0;
  }
  std::cerr << "ogate-report: unknown command '" << Cmd << "'\n";
  return usage();
}
