//===- tools/ogate-serve.cpp - Long-running sweep server ---------------------==//
//
// Serves sweep requests over a Unix domain socket so N clients share one
// SweepService (src/service/): one workload build per (workload, scale),
// one sample-plan cache, compute-once deduplication of identical
// in-flight cells, and a persistent content-addressed cell cache that
// turns repeat sweeps into pure cache reads. Responses carry the same
// schema-versioned report documents batch `ogate-sim --sweep --json`
// writes, byte-identical whether a cell was computed, deduplicated, or
// loaded from cache.
//
//   ogate-serve --socket=PATH [--cache-dir=DIR] [--max-cache-bytes=N]
//               [--jobs=N] [--keep-going]
//     Serve mode (default): listen on PATH until a shutdown request.
//     One line per request, one line per response (compact JSON; see
//     "Protocol" below). Connections are handled concurrently; identical
//     concurrent sweeps trigger exactly one computation.
//
//   ogate-serve request --socket=PATH [sweep flags] [--json=PATH|-]
//                       [--require-cached]
//     Client mode: build a sweep request from the same flags batch
//     `ogate-sim --sweep` takes (--sweep=KIND --scale= --workloads=
//     --sample= --opt-stats --engine-stats), send it, and write the
//     returned report document to --json (default "-", stdout). The
//     served resolution counters print on stderr; --require-cached exits
//     1 if any cell had to be computed (the CI warm-cache assertion).
//
//   ogate-serve ping --socket=PATH      exit 0 iff a server answers
//   ogate-serve stop --socket=PATH      ask the server to shut down
//
// Protocol (line-delimited compact JSON over SOCK_STREAM):
//   -> {"method":"sweep","request":{...SweepRequest::toJson...}}
//   <- {"ok":true,"report":{...sweep document...},
//       "served":{"cells":N,"hits":H,"misses":M,"inflight-dedup":D}}
//   -> {"method":"ping"}       <- {"ok":true,"pong":true}
//   -> {"method":"counters"}   <- {"ok":true,"cache":{...lifetime traffic
//                                  + eviction counters...},"usage":
//                                  {"entries":N,"bytes":B}}
//   -> {"method":"shutdown"}   <- {"ok":true,"stopping":true}
//   any failure:               <- {"ok":false,"error":"..."}
//
// Exit codes: 0 success; 1 connect/protocol/sweep failure (or
// --require-cached with misses); 2 malformed flag value.
//
//===----------------------------------------------------------------------===//

#include "service/SweepService.h"
#include "service/Wire.h"
#include "support/Cli.h"

#include <atomic>
#include <cerrno>
#include <iostream>
#include <limits>
#include <mutex>
#include <set>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace og;

namespace {

JsonValue errorResponse(const std::string &What) {
  JsonValue V = JsonValue::object();
  V.set("ok", JsonValue::boolean(false));
  V.set("error", JsonValue::str(What));
  return V;
}

JsonValue okResponse() {
  JsonValue V = JsonValue::object();
  V.set("ok", JsonValue::boolean(true));
  return V;
}

// --- Serve mode ----------------------------------------------------------

/// Server state shared by the accept loop and connection threads.
struct Server {
  SweepService Service;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};

  std::mutex ConnsM;
  std::set<int> ConnFds; ///< open client fds, shut down on stop

  explicit Server(ServiceOptions SO) : Service(std::move(SO)) {}

  /// Breaks the accept loop and every blocked client read so the
  /// process can exit. shutdown() (not close) so each fd stays valid
  /// until its owning thread is done with it.
  void stop() {
    Stopping.store(true);
    ::shutdown(ListenFd, SHUT_RDWR);
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
};

JsonValue handleSweep(Server &S, const JsonValue &Msg) {
  const JsonValue *Req = Msg.get("request");
  if (!Req)
    return errorResponse("sweep request: missing \"request\"");
  Expected<SweepRequest> R = SweepRequest::fromJson(*Req);
  if (!R)
    return errorResponse(R.error());
  // The response always carries the document, so the JSON-only option
  // groups are always representable; TimingLine has no wire form.
  R->Report.JsonRequested = true;
  if (const std::string Bad =
          validateReportOptions(R->Report, /*SweepMode=*/true,
                                R->Sample.enabled());
      !Bad.empty())
    return errorResponse(Bad);

  ServedSweep Served = S.Service.serve(*R);
  if (!Served.Ok)
    return errorResponse(Served.Error);

  std::cerr << "ogate-serve: sweep: "
            << (Served.Hits + Served.Misses + Served.InflightDedups)
            << " cells (hits " << Served.Hits << ", misses " << Served.Misses
            << ", in-flight dedup " << Served.InflightDedups << ")\n";

  JsonValue V = okResponse();
  V.set("report", std::move(Served.Document));
  JsonValue Counts = JsonValue::object();
  Counts.set("cells", JsonValue::integer(Served.Hits + Served.Misses +
                                         Served.InflightDedups));
  Counts.set("hits", JsonValue::integer(Served.Hits));
  Counts.set("misses", JsonValue::integer(Served.Misses));
  Counts.set("inflight-dedup", JsonValue::integer(Served.InflightDedups));
  V.set("served", std::move(Counts));
  return V;
}

JsonValue handleCounters(Server &S) {
  const ResultCache::Counters C = S.Service.cacheCounters();
  const ResultCache::Usage U = S.Service.cacheUsage();
  JsonValue V = okResponse();
  JsonValue Cache = JsonValue::object();
  Cache.set("hits", JsonValue::integer(C.Hits));
  Cache.set("misses", JsonValue::integer(C.Misses));
  Cache.set("stale-schema", JsonValue::integer(C.StaleSchema));
  Cache.set("key-mismatch", JsonValue::integer(C.KeyMismatch));
  Cache.set("stores", JsonValue::integer(C.Stores));
  Cache.set("store-failures", JsonValue::integer(C.StoreFailures));
  Cache.set("evictions", JsonValue::integer(C.Evictions));
  Cache.set("evicted-bytes", JsonValue::integer(C.EvictedBytes));
  V.set("cache", std::move(Cache));
  // Scanned from disk, so it reflects the directory as it is now —
  // including entries stored or evicted by other server processes.
  JsonValue Usage = JsonValue::object();
  Usage.set("entries", JsonValue::integer(U.Entries));
  Usage.set("bytes", JsonValue::integer(U.Bytes));
  V.set("usage", std::move(Usage));
  return V;
}

void handleConnection(Server &S, int Fd) {
  LineReader Reader(Fd);
  std::string Line;
  while (!S.Stopping.load() && Reader.readLine(Line)) {
    JsonValue Response;
    Expected<JsonValue> Msg = parseJson(Line);
    if (!Msg) {
      Response = errorResponse("request is not valid JSON: " + Msg.error());
    } else {
      const JsonValue *Method = Msg->get("method");
      const std::string M =
          Method && Method->isString() ? Method->asString() : "";
      if (M == "sweep") {
        Response = handleSweep(S, *Msg);
      } else if (M == "ping") {
        Response = okResponse();
        Response.set("pong", JsonValue::boolean(true));
      } else if (M == "counters") {
        Response = handleCounters(S);
      } else if (M == "shutdown") {
        Response = okResponse();
        Response.set("stopping", JsonValue::boolean(true));
        sendLine(Fd, Response.toCompactString());
        S.stop();
        break;
      } else {
        Response = errorResponse("unknown method '" + M + "'");
      }
    }
    if (!sendLine(Fd, Response.toCompactString()))
      break;
  }
  {
    std::lock_guard<std::mutex> Lock(S.ConnsM);
    S.ConnFds.erase(Fd);
  }
  ::close(Fd);
}

int runServe(const std::string &SocketPath, ServiceOptions SO) {
  Server S(std::move(SO));
  std::string Err;
  S.ListenFd = listenUnix(SocketPath, Err);
  if (S.ListenFd < 0) {
    std::cerr << "ogate-serve: " << Err << "\n";
    return 1;
  }
  const ServiceOptions &O = S.Service.options();
  std::cerr << "ogate-serve: listening on " << SocketPath << " (jobs "
            << O.Jobs << ", cache "
            << (O.CacheDir.empty() ? "disabled" : O.CacheDir);
  if (O.MaxCacheBytes > 0)
    std::cerr << ", cap " << O.MaxCacheBytes << " bytes";
  std::cerr << ")\n";

  std::vector<std::thread> Threads;
  for (;;) {
    int Fd = ::accept(S.ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (S.Stopping.load())
        break;
      if (errno == EINTR)
        continue;
      std::cerr << "ogate-serve: accept failed on " << SocketPath << "\n";
      break;
    }
    {
      std::lock_guard<std::mutex> Lock(S.ConnsM);
      S.ConnFds.insert(Fd);
    }
    Threads.emplace_back(handleConnection, std::ref(S), Fd);
  }
  // stop() has already shut down every open client fd, so the joins are
  // bounded by in-flight sweep computations, not by idle clients.
  for (std::thread &T : Threads)
    T.join();
  ::close(S.ListenFd);
  ::unlink(SocketPath.c_str());
  std::cerr << "ogate-serve: stopped\n";
  return S.Stopping.load() ? 0 : 1;
}

// --- Client modes --------------------------------------------------------

/// Sends one request line and reads one response line; exits 1 on any
/// transport failure.
Expected<JsonValue> roundTrip(const std::string &SocketPath,
                              const JsonValue &Request) {
  std::string Err;
  int Fd = connectUnix(SocketPath, Err);
  if (Fd < 0)
    return makeError<JsonValue>(Err);
  LineReader Reader(Fd);
  std::string Line;
  bool Ok = sendLine(Fd, Request.toCompactString()) && Reader.readLine(Line);
  ::close(Fd);
  if (!Ok)
    return makeError<JsonValue>("server on '" + SocketPath +
                                "' closed the connection mid-request");
  Expected<JsonValue> Response = parseJson(Line);
  if (!Response)
    return makeError<JsonValue>("malformed response: " + Response.error());
  return Response;
}

/// Unwraps the {"ok":...} envelope: returns the response on ok=true,
/// the server's error otherwise.
Expected<JsonValue> checkedRoundTrip(const std::string &SocketPath,
                                     const JsonValue &Request) {
  Expected<JsonValue> Response = roundTrip(SocketPath, Request);
  if (!Response)
    return Response;
  const JsonValue *Ok = Response->get("ok");
  if (!Ok || !Ok->isBool())
    return makeError<JsonValue>("malformed response: missing \"ok\"");
  if (!Ok->asBool()) {
    const JsonValue *What = Response->get("error");
    return makeError<JsonValue>(What && What->isString()
                                    ? What->asString()
                                    : "server reported an unnamed error");
  }
  return Response;
}

JsonValue methodMessage(const char *Method) {
  JsonValue V = JsonValue::object();
  V.set("method", JsonValue::str(Method));
  return V;
}

int runRequest(const std::string &SocketPath, const SweepRequest &R,
               const std::string &JsonPath, bool RequireCached) {
  JsonValue Msg = methodMessage("sweep");
  Msg.set("request", R.toJson());
  Expected<JsonValue> Response = checkedRoundTrip(SocketPath, Msg);
  if (!Response) {
    std::cerr << "ogate-serve: " << Response.error() << "\n";
    return 1;
  }

  const JsonValue *Report = Response->get("report");
  const JsonValue *Served = Response->get("served");
  if (!Report || !Served) {
    std::cerr << "ogate-serve: malformed response: missing \"report\" or "
                 "\"served\"\n";
    return 1;
  }
  auto Count = [&](const char *Key) -> int64_t {
    const JsonValue *V = Served->get(Key);
    return V && V->isInteger() ? V->asInt() : -1;
  };
  std::cerr << "ogate-serve: cells: " << Count("cells") << " (hits "
            << Count("hits") << ", misses " << Count("misses")
            << ", in-flight dedup " << Count("inflight-dedup") << ")\n";

  // The document re-serializes byte-identically to batch `ogate-sim
  // --sweep --json` output: the wire form is the same value compacted,
  // and the writer/parser pair is idempotent (support/Json.h).
  if (JsonPath == "-") {
    std::cout << Report->toString();
  } else {
    std::string Err;
    if (!writeJsonFile(JsonPath, *Report, &Err)) {
      std::cerr << "ogate-serve: " << Err << "\n";
      return 1;
    }
    std::cerr << "ogate-serve: wrote " << JsonPath << "\n";
  }

  if (RequireCached && Count("misses") != 0) {
    std::cerr << "ogate-serve: --require-cached: " << Count("misses")
              << " cell(s) were computed, expected pure cache hits\n";
    return 1;
  }
  return 0;
}

int runPing(const std::string &SocketPath) {
  Expected<JsonValue> Response =
      checkedRoundTrip(SocketPath, methodMessage("ping"));
  if (!Response) {
    std::cerr << "ogate-serve: " << Response.error() << "\n";
    return 1;
  }
  std::cout << "ogate-serve: server on " << SocketPath << " is up\n";
  return 0;
}

int runStop(const std::string &SocketPath) {
  Expected<JsonValue> Response =
      checkedRoundTrip(SocketPath, methodMessage("shutdown"));
  if (!Response) {
    std::cerr << "ogate-serve: " << Response.error() << "\n";
    return 1;
  }
  std::cout << "ogate-serve: server on " << SocketPath << " stopping\n";
  return 0;
}

int usage() {
  std::cerr
      << "usage: ogate-serve --socket=PATH [--cache-dir=DIR] "
         "[--max-cache-bytes=N]\n"
         "                   [--jobs=N] [--keep-going]\n"
         "       ogate-serve request --socket=PATH [--sweep=standard|matrix] "
         "[--scale=S]\n"
         "                   [--workloads=a,b] [--sample=L[:K]] [--opt-stats] "
         "[--engine-stats]\n"
         "                   [--json=PATH|-] [--require-cached]\n"
         "       ogate-serve ping --socket=PATH\n"
         "       ogate-serve stop --socket=PATH\n";
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  const CliTool Cli("ogate-serve");
  std::string Mode = "serve";
  int First = 1;
  if (argc > 1 && argv[1][0] != '-') {
    Mode = argv[1];
    First = 2;
  }
  if (Mode != "serve" && Mode != "request" && Mode != "ping" &&
      Mode != "stop") {
    std::cerr << "ogate-serve: unknown command '" << Mode << "'\n";
    return usage();
  }

  std::string SocketPath, JsonPath = "-";
  ServiceOptions SO;
  SweepRequest Request;
  bool RequireCached = false;

  for (int I = First; I < argc; ++I) {
    const std::string Arg = argv[I];
    if (Arg.rfind("--socket=", 0) == 0) {
      SocketPath = Arg.substr(9);
    } else if (Mode == "serve" && Arg.rfind("--cache-dir=", 0) == 0) {
      SO.CacheDir = Arg.substr(12);
    } else if (Mode == "serve" && Arg.rfind("--max-cache-bytes=", 0) == 0) {
      SO.MaxCacheBytes =
          Cli.parseU64("--max-cache-bytes", Arg.substr(18),
                       "want a cache size budget in bytes >= 1", 1);
    } else if (Mode == "serve" && Arg.rfind("--jobs=", 0) == 0) {
      SO.Jobs = static_cast<unsigned>(
          Cli.parseU64("--jobs", Arg.substr(7), "want a worker count >= 1", 1,
                       std::numeric_limits<unsigned>::max()));
    } else if (Mode == "serve" && Arg == "--keep-going") {
      SO.KeepGoing = true;
    } else if (Mode == "request" && applySweepRequestFlag(Request, Cli, Arg)) {
      // Shared sweep-request surface — same flags, parsing, and
      // diagnostics as `ogate-sim --sweep` (service/SweepRequest.h).
    } else if (Mode == "request" && Arg.rfind("--json=", 0) == 0) {
      JsonPath = Arg.substr(7);
      if (JsonPath.empty()) {
        std::cerr << "ogate-serve: --json needs a path (or '-' for stdout)\n";
        return 1;
      }
    } else if (Mode == "request" && Arg == "--require-cached") {
      RequireCached = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "ogate-serve: unknown option '" << Arg << "' for '" << Mode
                << "'\n";
      return usage();
    }
  }
  if (SocketPath.empty()) {
    std::cerr << "ogate-serve: --socket=PATH is required\n";
    return usage();
  }
  if (SO.MaxCacheBytes > 0 && SO.CacheDir.empty()) {
    // Same rule as the report flags: never silently ignore a flag the
    // configuration cannot honor.
    std::cerr << "ogate-serve: --max-cache-bytes bounds the persistent cell "
                 "cache and needs --cache-dir=DIR alongside it\n";
    return 1;
  }

  if (Mode == "serve")
    return runServe(SocketPath, std::move(SO));
  if (Mode == "ping")
    return runPing(SocketPath);
  if (Mode == "stop")
    return runStop(SocketPath);

  Request.Report.JsonRequested = true;
  if (const std::string Bad = validateReportOptions(
          Request.Report, /*SweepMode=*/true, Request.Sample.enabled());
      !Bad.empty()) {
    std::cerr << "ogate-serve: " << Bad << "\n";
    return 1;
  }
  return runRequest(SocketPath, Request, JsonPath, RequireCached);
}
