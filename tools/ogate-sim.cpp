//===- tools/ogate-sim.cpp - Simulator CLI -----------------------------------==//
//
// Runs an assembly program through the functional simulator and,
// optionally, the out-of-order timing + power models — or fans the full
// workload x configuration evaluation matrix out across worker threads
// via the experiment driver.
//
//   ogate-sim [options] input.s           single-program mode
//     --arg=N           initial a0 (repeatable: fills a0..a5 in order)
//     --uarch           also run the Table-2 timing model
//     --scheme=NAME     power accounting: none|sw|hwsig|hwsize|combined
//     --stats           print the dynamic width/class histograms
//     --fuel=N          dynamic instruction budget
//     --timing-line     print "sim-speed: <N> MIPS, <M> dyn insts" plus
//                       the active dispatch mode and the preparation
//                       time (decode + self-profiled superblock
//                       formation, which timing runs without a sink get
//                       so sim-speed measures the production fast path)
//                       separately from the run time
//                       (wall-clock dependent; never part of sweep
//                       reports, so determinism checks stay byte-exact;
//                       rejected in --sweep mode for the same reason)
//     --json=PATH       also write the run as a schema-versioned
//                       ogate-report JSON document (src/report/)
//
//   ogate-sim --sweep[=standard|matrix]   sweep mode (no input file)
//     --jobs=N          worker threads (default 1; serial and parallel
//                       aggregate reports are byte-identical)
//     --scale=S         workload ref-input scale (default 0.25)
//     --workloads=a,b   comma-separated subset (default: all eight)
//     --keep-going      run every cell even after a failure
//     --sample=L[:K]    phase-sampled estimation (src/sample/): slice
//                       each cell's ref run into L-instruction
//                       intervals, cluster, and simulate only
//                       representative windows in detail. K fixes the
//                       cluster count; omitted or "auto" picks it (BIC +
//                       coverage floor). Timing/energy become estimates
//                       (cells carry a "sample" group; `ogate-report
//                       diff` widens its rules accordingly); functional
//                       counters stay exact. Only meaningful where a
//                       detailed ref run happens, so it is rejected
//                       outside --sweep mode like --opt-stats.
//     --json=PATH       write the aggregate as JSON; byte-identical for
//                       any --jobs value (no wall-clock in the document)
//     --opt-stats       add each cell's "opt" counters group (analysis-
//                       cache hits/misses/invalidations of the transform
//                       phase) to the JSON document; off by default so
//                       default documents keep the baseline-stable shape
//     --engine-stats    add each cell's "engine" counters group
//                       (superblocks formed, fast-path entries/passes,
//                       fused instructions, side exits, window fissions
//                       + the coverage fraction) to the JSON document;
//                       off by default for the same baseline-stability
//                       reason, and rejected outside --sweep mode like
//                       --opt-stats
//
// Sweep mode prints the deterministic aggregate report on stdout and
// timing/progress on stderr, so stdout can be diffed across --jobs.
//
// Exit codes: 0 success; 1 mode conflict or runtime failure; 2 malformed
// flag value (non-numeric / zero / negative / overflowing where a
// positive count is required).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "driver/Driver.h"
#include "power/Report.h"
#include "report/ReportSchema.h"
#include "sim/Superblock.h"
#include "support/Table.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>

using namespace og;

namespace {

/// Exit 2 = malformed flag value, distinct from exit 1 (mode conflicts
/// and runtime failures) so scripts can tell usage mistakes apart.
[[noreturn]] void badFlagValue(const char *Flag, const std::string &Val,
                               const char *Want) {
  std::cerr << "ogate-sim: bad " << Flag << " value '" << Val << "' (" << Want
            << ")\n";
  std::exit(2);
}

/// Strict decimal parse for unsigned flag values: the whole string must
/// be digits (no sign — strtoull silently wraps "-5" to a huge value),
/// in range, and must not overflow. Anything else exits 2.
uint64_t parseFlagU64(const char *Flag, const std::string &Val,
                      const char *Want, uint64_t Min,
                      uint64_t Max = std::numeric_limits<uint64_t>::max()) {
  if (Val.empty() || Val[0] < '0' || Val[0] > '9')
    badFlagValue(Flag, Val, Want);
  errno = 0;
  char *End = nullptr;
  const unsigned long long V = std::strtoull(Val.c_str(), &End, 10);
  if (*End != '\0' || errno == ERANGE || V < Min || V > Max)
    badFlagValue(Flag, Val, Want);
  return V;
}

/// Strict decimal parse for signed flag values (--arg takes negatives).
int64_t parseFlagI64(const char *Flag, const std::string &Val,
                     const char *Want) {
  const bool LeadOk =
      !Val.empty() &&
      ((Val[0] >= '0' && Val[0] <= '9') || (Val[0] == '-' && Val.size() > 1));
  if (!LeadOk)
    badFlagValue(Flag, Val, Want);
  errno = 0;
  char *End = nullptr;
  const long long V = std::strtoll(Val.c_str(), &End, 10);
  if (*End != '\0' || errno == ERANGE)
    badFlagValue(Flag, Val, Want);
  return V;
}

/// Strict parse for --scale: a finite decimal > 0.
double parseFlagScale(const char *Flag, const std::string &Val,
                      const char *Want) {
  if (Val.empty() || Val[0] == '+' || Val[0] == ' ')
    badFlagValue(Flag, Val, Want);
  errno = 0;
  char *End = nullptr;
  const double V = std::strtod(Val.c_str(), &End);
  if (End == Val.c_str() || *End != '\0' || errno == ERANGE ||
      !std::isfinite(V) || V <= 0.0)
    badFlagValue(Flag, Val, Want);
  return V;
}

int runSweepMode(const std::string &SweepKind, unsigned Jobs, double Scale,
                 const std::string &WorkloadCsv, bool KeepGoing,
                 const std::string &JsonPath, bool OptStats, bool EngineStats,
                 const SampleSpec &Sample) {
  std::vector<std::string> Names;
  if (WorkloadCsv.empty()) {
    Names = allWorkloadNames();
  } else {
    const std::vector<std::string> Known = allWorkloadNames();
    std::stringstream SS(WorkloadCsv);
    std::string Item;
    while (std::getline(SS, Item, ',')) {
      if (Item.empty())
        continue;
      if (std::find(Known.begin(), Known.end(), Item) == Known.end()) {
        std::cerr << "ogate-sim: unknown workload '" << Item << "' (known:";
        for (const std::string &K : Known)
          std::cerr << " " << K;
        std::cerr << ")\n";
        return 1;
      }
      Names.push_back(Item);
    }
  }
  if (Names.empty()) {
    std::cerr << "ogate-sim: no workloads selected\n";
    return 1;
  }

  std::vector<ExperimentSpec> Specs;
  if (SweepKind == "matrix") {
    Specs = makeMatrixSweep(Names, Scale);
  } else if (SweepKind == "standard") {
    Specs = makeStandardSweep(Names, Scale);
  } else {
    std::cerr << "ogate-sim: unknown sweep kind '" << SweepKind << "'\n";
    return 1;
  }
  if (Sample.enabled())
    for (ExperimentSpec &S : Specs)
      S.Config.Sample = Sample;

  std::cerr << "ogate-sim: sweeping " << Specs.size() << " cells ("
            << Names.size() << " workloads, scale " << Scale << ", jobs "
            << Jobs << ")\n";

  SweepOptions Opts;
  Opts.Jobs = Jobs;
  Opts.KeepGoing = KeepGoing;
  auto Start = std::chrono::steady_clock::now();
  SweepResult R = runSweep(Specs, Opts);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  if (!R.AllOk) {
    std::cerr << "ogate-sim: sweep FAILED: " << R.FirstError << "\n";
    return 1;
  }
  // Always-on duplicate-cell check (used to be a debug assert that
  // vanished in Release): a duplicated key means the spec construction
  // is broken, and a silently double-rowed report would poison baseline
  // comparisons downstream.
  if (const std::string Dup = R.Aggregate.duplicateKey(); !Dup.empty()) {
    std::cerr << "ogate-sim: sweep produced duplicate cell '" << Dup
              << "' — spec construction bug\n";
    return 1;
  }
  R.Aggregate.print(std::cout);
  if (!JsonPath.empty()) {
    // The document deliberately contains no wall-clock or worker-count
    // fields: the bytes depend only on the cells, so any --jobs value
    // writes the identical file.
    std::string Err;
    if (!writeJsonFile(JsonPath,
                       sweepToJson(R.Aggregate, SweepKind, Scale, OptStats,
                                   Sample.enabled() ? &Sample : nullptr,
                                   EngineStats),
                       &Err)) {
      std::cerr << "ogate-sim: " << Err << "\n";
      return 1;
    }
    std::cerr << "ogate-sim: wrote " << JsonPath << "\n";
  }
  std::cerr << "ogate-sim: sweep finished in " << TextTable::num(Seconds, 2)
            << "s\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string InputPath;
  std::vector<int64_t> Args;
  bool Uarch = false, Stats = false, TimingLine = false;
  GatingScheme Scheme = GatingScheme::None;
  uint64_t Fuel = 200'000'000;
  bool Sweep = false, KeepGoing = false, OptStats = false, EngineStats = false;
  SampleSpec Sample;
  std::string SweepKind = "standard", WorkloadCsv, JsonPath;
  unsigned Jobs = 1;
  double Scale = 0.25;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--arg=", 0) == 0) {
      Args.push_back(
          parseFlagI64("--arg", Arg.substr(6), "want a decimal integer"));
    } else if (Arg == "--uarch") {
      Uarch = true;
    } else if (Arg.rfind("--scheme=", 0) == 0) {
      std::string S = Arg.substr(9);
      Uarch = true;
      if (S == "none")
        Scheme = GatingScheme::None;
      else if (S == "sw")
        Scheme = GatingScheme::Software;
      else if (S == "hwsig")
        Scheme = GatingScheme::HwSignificance;
      else if (S == "hwsize")
        Scheme = GatingScheme::HwSize;
      else if (S == "combined")
        Scheme = GatingScheme::Combined;
      else {
        std::cerr << "ogate-sim: unknown scheme '" << S << "'\n";
        return 1;
      }
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--timing-line") {
      TimingLine = true;
    } else if (Arg.rfind("--fuel=", 0) == 0) {
      Fuel = parseFlagU64("--fuel", Arg.substr(7),
                          "want a positive instruction count", 1);
    } else if (Arg == "--sweep") {
      Sweep = true;
    } else if (Arg.rfind("--sweep=", 0) == 0) {
      Sweep = true;
      SweepKind = Arg.substr(8);
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      // std::atoi here used to turn "--jobs=abc" (and 0, negatives,
      // overflow) into a silent --jobs=1 run; malformed values exit 2.
      Sweep = true;
      Jobs = static_cast<unsigned>(
          parseFlagU64("--jobs", Arg.substr(7), "want a worker count >= 1", 1,
                       std::numeric_limits<unsigned>::max()));
    } else if (Arg == "--jobs") {
      if (I + 1 >= argc)
        badFlagValue("--jobs", "", "want a worker count >= 1");
      Sweep = true;
      Jobs = static_cast<unsigned>(
          parseFlagU64("--jobs", argv[++I], "want a worker count >= 1", 1,
                       std::numeric_limits<unsigned>::max()));
    } else if (Arg.rfind("--scale=", 0) == 0) {
      Scale = parseFlagScale("--scale", Arg.substr(8),
                             "want a finite decimal > 0");
    } else if (Arg.rfind("--workloads=", 0) == 0) {
      WorkloadCsv = Arg.substr(12);
    } else if (Arg.rfind("--json=", 0) == 0) {
      JsonPath = Arg.substr(7);
      if (JsonPath.empty()) {
        std::cerr << "ogate-sim: --json needs a path\n";
        return 1;
      }
    } else if (Arg.rfind("--sample=", 0) == 0) {
      const std::string Val = Arg.substr(9);
      const size_t Colon = Val.find(':');
      const char *Want = "want INTERVAL[:K|:auto], INTERVAL and K > 0";
      Sample.IntervalLen =
          parseFlagU64("--sample", Val.substr(0, Colon), Want, 1);
      if (Colon != std::string::npos) {
        const std::string KStr = Val.substr(Colon + 1);
        Sample.K = KStr == "auto"
                       ? 0
                       : static_cast<unsigned>(parseFlagU64(
                             "--sample", KStr, Want, 1,
                             std::numeric_limits<unsigned>::max()));
      }
    } else if (Arg == "--keep-going") {
      KeepGoing = true;
    } else if (Arg == "--opt-stats") {
      OptStats = true;
    } else if (Arg == "--engine-stats") {
      EngineStats = true;
    } else if (Arg == "--help" || Arg == "-h") {
      std::cerr << "usage: ogate-sim [--arg=N]... [--uarch] "
                   "[--scheme=none|sw|hwsig|hwsize|combined] [--stats] "
                   "[--fuel=N] [--timing-line] [--json=PATH] input.s\n"
                   "       ogate-sim --sweep[=standard|matrix] [--jobs N] "
                   "[--scale=S] [--workloads=a,b] [--keep-going] "
                   "[--json=PATH] [--opt-stats] [--engine-stats]\n";
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "ogate-sim: unknown option '" << Arg << "'\n";
      return 1;
    } else {
      InputPath = Arg;
    }
  }

  if (Sweep) {
    if (!InputPath.empty()) {
      std::cerr << "ogate-sim: --sweep takes no input file\n";
      return 1;
    }
    if (TimingLine) {
      // Used to be silently dropped; reject it so nobody builds a
      // workflow on an option that cannot work here (sweep reports are
      // deterministic by contract, sim-speed is wall-clock).
      std::cerr << "ogate-sim: --timing-line is wall-clock-dependent and "
                   "not supported in --sweep mode (sweep reports are "
                   "byte-deterministic); drop it or run a single program\n";
      return 1;
    }
    if (OptStats && JsonPath.empty()) {
      // Same contract as --timing-line: never silently ignore a flag
      // the mode cannot honor. The counters only exist in the JSON
      // document, so without --json there is nothing to surface them in.
      std::cerr << "ogate-sim: --opt-stats adds the per-cell \"opt\" "
                   "counters group to the JSON document and needs "
                   "--json=PATH alongside it\n";
      return 1;
    }
    if (EngineStats && JsonPath.empty()) {
      std::cerr << "ogate-sim: --engine-stats adds the per-cell \"engine\" "
                   "counters group to the JSON document and needs "
                   "--json=PATH alongside it\n";
      return 1;
    }
    if (Jobs < 1)
      Jobs = 1;
    return runSweepMode(SweepKind, Jobs, Scale, WorkloadCsv, KeepGoing,
                        JsonPath, OptStats, EngineStats, Sample);
  }

  if (Sample.enabled()) {
    // Same contract as --timing-line / --opt-stats: reject rather than
    // silently ignore. Single-program mode runs no detailed ref cell to
    // estimate, so sampling has nothing to apply to.
    std::cerr << "ogate-sim: --sample drives phase-sampled estimation of "
                 "sweep cells and only applies to --sweep mode\n";
    return 1;
  }

  if (OptStats) {
    std::cerr << "ogate-sim: --opt-stats reports the transform phase's "
                 "analysis-cache counters and only applies to --sweep "
                 "mode (single-program mode runs no transforms)\n";
    return 1;
  }

  if (EngineStats) {
    std::cerr << "ogate-sim: --engine-stats reports sweep cells' "
                 "dispatch/superblock counters and only applies to "
                 "--sweep mode (use --timing-line here to see the "
                 "active dispatch mode)\n";
    return 1;
  }

  if (InputPath.empty()) {
    std::cerr << "ogate-sim: no input file\n";
    return 1;
  }

  std::ifstream In(InputPath);
  if (!In) {
    std::cerr << "ogate-sim: cannot open '" << InputPath << "'\n";
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Expected<Program> Parsed = assembleProgram(Buffer.str());
  if (!Parsed) {
    std::cerr << "ogate-sim: " << InputPath << ": " << Parsed.error()
              << "\n";
    return 1;
  }

  RunOptions Opts;
  Opts.ArgRegs = Args;
  Opts.Fuel = Fuel;

  EnergyModel EM(Scheme);
  OooCore Core(UarchConfig(), &EM);
  if (Uarch)
    Opts.Sink = &Core; // the core consumes the trace in batches

  // --timing-line splits preparation from measurement: decode and (for
  // timing runs without a detailed sink, where the fast path engages)
  // self-profiled superblock formation are timed as "prep", so sim-speed
  // measures the dispatch loop alone rather than averaging build cost in.
  auto PrepStart = std::chrono::steady_clock::now();
  DecodedProgram Decoded(*Parsed);
  std::unique_ptr<SuperblockPlan> Plan;
  if (TimingLine && !Uarch) {
    Plan = std::make_unique<SuperblockPlan>(buildSelfProfiledPlan(Decoded, Opts));
    Opts.Superblocks = Plan.get();
  }
  double PrepSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - PrepStart)
                           .count();
  auto RunStart = std::chrono::steady_clock::now();
  RunResult R = runProgram(Decoded, Opts);
  double RunSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - RunStart)
                          .count();

  std::cout << "status: "
            << (R.Status == RunStatus::Halted ? "halted" : R.Message.c_str())
            << "\n"
            << "dynamic instructions: " << R.Stats.DynInsts << "\n"
            << "output:";
  for (int64_t V : R.Output)
    std::cout << " " << V;
  std::cout << "\n";

  double Mips = RunSeconds > 0.0
                    ? static_cast<double>(R.Stats.DynInsts) / RunSeconds / 1e6
                    : 0.0;
  const DispatchMode ActiveDispatch = resolveDispatchMode(Opts.Dispatch);
  if (TimingLine)
    std::cout << "sim-speed: " << TextTable::num(Mips, 1) << " MIPS, "
              << R.Stats.DynInsts << " dyn insts\n"
              << "sim-dispatch: " << dispatchModeName(ActiveDispatch)
              << (Opts.Superblocks ? "+superblocks" : "") << "\n"
              << "sim-prep: " << TextTable::num(PrepSeconds * 1e3, 1)
              << " ms (decode + superblock formation), run "
              << TextTable::num(RunSeconds * 1e3, 1) << " ms\n";

  if (Stats) {
    TextTable T({"class", "8b", "16b", "32b", "64b"});
    for (unsigned C = 0; C < 18; ++C) {
      uint64_t N = 0;
      for (unsigned W = 0; W < 4; ++W)
        N += R.Stats.ClassWidth[C][W];
      if (!N)
        continue;
      T.addRow({opClassName(static_cast<OpClass>(C)),
                std::to_string(R.Stats.ClassWidth[C][0]),
                std::to_string(R.Stats.ClassWidth[C][1]),
                std::to_string(R.Stats.ClassWidth[C][2]),
                std::to_string(R.Stats.ClassWidth[C][3])});
    }
    T.print(std::cout);
  }

  UarchStats S;
  EnergyReport Rep;
  if (Uarch) {
    S = Core.finish();
    Rep = makeReport(EM, S);
    std::cout << "cycles: " << S.Cycles << "  (IPC "
              << TextTable::num(S.ipc(), 2) << ")\n"
              << "branches: " << S.Branches << " (" << S.Mispredicts
              << " mispredicted)\n"
              << "L1D misses: " << S.DL1Misses
              << "  L2 misses: " << S.L2Misses << "\n"
              << "energy (" << gatingSchemeName(Scheme)
              << "): " << TextTable::num(Rep.TotalEnergy, 1) << "  ED^2 "
              << TextTable::num(Rep.ed2(), 1) << "\n";
  }

  if (!JsonPath.empty()) {
    // "status" is a stable token consumers can switch on; the free-form
    // diagnostic (fault addresses etc.) rides separately in "message"
    // so two faulting runs do not diff as a status mismatch.
    const char *StatusTok = "halted";
    switch (R.Status) {
    case RunStatus::Halted:
      break;
    case RunStatus::OutOfFuel:
      StatusTok = "out-of-fuel";
      break;
    case RunStatus::Fault:
      StatusTok = "fault";
      break;
    case RunStatus::CalleeSaveViolation:
      StatusTok = "callee-save-violation";
      break;
    }
    JsonValue Doc = makeReportRoot("run");
    Doc.set("input", JsonValue::str(InputPath));
    Doc.set("status", JsonValue::str(StatusTok));
    if (R.Status != RunStatus::Halted)
      Doc.set("message", JsonValue::str(R.Message));
    JsonValue Output = JsonValue::array();
    for (int64_t V : R.Output)
      Output.push(JsonValue::integer(V));
    Doc.set("output", std::move(Output));
    Doc.set("stats", toJson(R.Stats));
    if (Uarch) {
      Doc.set("uarch", toJson(S));
      Doc.set("energy", toJson(Rep));
    }
    if (TimingLine) {
      Doc.set("dispatch", JsonValue::str(dispatchModeName(ActiveDispatch)));
      // Wall-clock lives under "metrics" so `ogate-report diff` applies
      // its relative tolerance instead of demanding exact MIPS.
      JsonValue Metrics = JsonValue::object();
      Metrics.set("sim-mips", JsonValue::number(Mips));
      Metrics.set("prep-ms", JsonValue::number(PrepSeconds * 1e3));
      Metrics.set("run-ms", JsonValue::number(RunSeconds * 1e3));
      Doc.set("metrics", std::move(Metrics));
    }
    std::string Err;
    if (!writeJsonFile(JsonPath, Doc, &Err)) {
      std::cerr << "ogate-sim: " << Err << "\n";
      return 1;
    }
  }
  return R.Status == RunStatus::Halted ? 0 : 1;
}
