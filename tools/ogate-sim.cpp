//===- tools/ogate-sim.cpp - Simulator CLI -----------------------------------==//
//
// Runs an assembly program through the functional simulator and,
// optionally, the out-of-order timing + power models — or fans the full
// workload x configuration evaluation matrix out across worker threads
// via the sweep service (src/service/), the same engine behind
// `ogate-serve` and the bench harness.
//
//   ogate-sim [options] input.s           single-program mode
//     Inputs are assembly by default; an "elf:PATH" spec or a file
//     starting with the ELF magic runs through the RV32I binary
//     frontend (src/frontend/) instead, so compiled binaries work
//     everywhere assembly does. --list-workloads prints the workload
//     registry (sweep --workloads accepts those names and elf:PATH).
//     --arg=N           initial a0 (repeatable: fills a0..a5 in order)
//     --uarch           also run the Table-2 timing model
//     --scheme=NAME     power accounting: none|sw|hwsig|hwsize|combined
//     --stats           print the dynamic width/class histograms
//     --fuel=N          dynamic instruction budget
//     --timing-line     print "sim-speed: <N> MIPS, <M> dyn insts" plus
//                       the active dispatch mode and the preparation
//                       time (decode + self-profiled superblock
//                       formation, which timing runs without a sink get
//                       so sim-speed measures the production fast path)
//                       separately from the run time
//                       (wall-clock dependent; never part of sweep
//                       reports, so determinism checks stay byte-exact;
//                       rejected in --sweep mode for the same reason)
//     --json=PATH       also write the run as a schema-versioned
//                       ogate-report JSON document (src/report/);
//                       "-" writes the document to stdout (the human
//                       text moves to stderr so the stream stays pure)
//     --sample=L[:K]    with --uarch/--scheme: estimate the timing/
//                       energy report by phase-sampled simulation
//                       instead of simulating every instruction in
//                       detail (the run document gains a "sample"
//                       group; functional output stays exact). Requires
//                       the detailed model and conflicts with
//                       --timing-line.
//     --sample-jobs=N   worker threads for window-parallel sampled
//                       replay (default 1; results are byte-identical
//                       at any value — a pure latency knob). In sweep
//                       mode this parallelizes inside each cell, so
//                       combine with --jobs thoughtfully: total threads
//                       scale with the product.
//
//   ogate-sim --sweep[=standard|matrix]   sweep mode (no input file)
//     --jobs=N          worker threads (default 1; serial and parallel
//                       aggregate reports are byte-identical)
//     --scale=S         workload ref-input scale (default 0.25)
//     --workloads=a,b   comma-separated subset (default: all eight)
//     --keep-going      run every cell even after a failure
//     --sample=L[:K]    phase-sampled estimation (src/sample/): slice
//                       each cell's ref run into L-instruction
//                       intervals, cluster, and simulate only
//                       representative windows in detail. K fixes the
//                       cluster count; omitted or "auto" picks it (BIC +
//                       coverage floor). Timing/energy become estimates
//                       (cells carry a "sample" group; `ogate-report
//                       diff` widens its rules accordingly); functional
//                       counters stay exact. Also valid in
//                       single-program mode alongside --uarch (above).
//     --json=PATH       write the aggregate as JSON; byte-identical for
//                       any --jobs value (no wall-clock in the document);
//                       "-" writes it to stdout (the aggregate table
//                       moves to stderr)
//     --cache-dir=DIR   persistent cell cache (service/ResultCache):
//                       cells whose content key is already present are
//                       loaded instead of recomputed; the JSON document
//                       stays byte-identical either way. `rm -rf DIR` is
//                       always a safe flush.
//     --opt-stats       add each cell's "opt" counters group (analysis-
//                       cache hits/misses/invalidations of the transform
//                       phase) to the JSON document; off by default so
//                       default documents keep the baseline-stable shape
//     --engine-stats    add each cell's "engine" counters group
//                       (superblocks formed, fast-path entries/passes,
//                       fused instructions, side exits, window fissions
//                       + the coverage fraction) to the JSON document;
//                       off by default for the same baseline-stability
//                       reason, and rejected outside --sweep mode like
//                       --opt-stats
//
// Sweep mode prints the deterministic aggregate report on stdout and
// timing/progress on stderr, so stdout can be diffed across --jobs.
//
// Exit codes: 0 success; 1 mode conflict or runtime failure; 2 malformed
// flag value (non-numeric / zero / negative / overflowing where a
// positive count is required).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Lifter.h"
#include "power/Report.h"
#include "report/ReportSchema.h"
#include "service/SweepService.h"
#include "sim/Superblock.h"
#include "support/Cli.h"
#include "support/Table.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>

using namespace og;

namespace {

int runSweepMode(const SweepRequest &Request, unsigned Jobs,
                 unsigned SampleJobs, bool KeepGoing,
                 const std::string &JsonPath, const std::string &CacheDir) {
  // Resolve the request up front so a bad workload list or sweep kind
  // dies with its diagnostic before any thread spins up, and the
  // progress line can say how much work is coming.
  Expected<std::vector<ExperimentSpec>> SpecsOr = Request.buildSpecs();
  if (!SpecsOr) {
    std::cerr << "ogate-sim: " << SpecsOr.error() << "\n";
    return 1;
  }
  const size_t NumWorkloads = Request.Workloads.empty()
                                  ? allWorkloadNames().size()
                                  : Request.Workloads.size();
  std::cerr << "ogate-sim: sweeping " << SpecsOr->size() << " cells ("
            << NumWorkloads << " workloads, scale " << Request.Scale
            << ", jobs " << Jobs << ")\n";

  ServiceOptions SO;
  SO.Jobs = Jobs;
  SO.SampleWindowJobs = SampleJobs;
  SO.KeepGoing = KeepGoing;
  SO.CacheDir = CacheDir;
  SweepService Service(SO);

  auto Start = std::chrono::steady_clock::now();
  ServedSweep Served = Service.serve(Request);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  if (!Served.Ok) {
    std::cerr << "ogate-sim: sweep FAILED: " << Served.Error << "\n";
    return 1;
  }

  // With --json=- the document owns stdout; the human aggregate table
  // moves to stderr so the stream stays machine-pure.
  const bool JsonToStdout = JsonPath == "-";
  Served.Aggregate.print(JsonToStdout ? std::cerr : std::cout);
  if (!JsonPath.empty()) {
    // The document deliberately contains no wall-clock or worker-count
    // fields: the bytes depend only on the cells, so any --jobs value
    // (and any cache state) writes the identical file.
    if (JsonToStdout) {
      std::cout << Served.Document.toString();
    } else {
      std::string Err;
      if (!writeJsonFile(JsonPath, Served.Document, &Err)) {
        std::cerr << "ogate-sim: " << Err << "\n";
        return 1;
      }
      std::cerr << "ogate-sim: wrote " << JsonPath << "\n";
    }
  }
  if (!CacheDir.empty())
    std::cerr << "ogate-sim: cells: " << (Served.Hits + Served.Misses)
              << " (cache hits " << Served.Hits << ", misses " << Served.Misses
              << ")\n";
  std::cerr << "ogate-sim: sweep finished in " << TextTable::num(Seconds, 2)
            << "s\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  const CliTool Cli("ogate-sim");
  std::string InputPath;
  std::vector<int64_t> Args;
  bool Uarch = false, Stats = false;
  GatingScheme Scheme = GatingScheme::None;
  uint64_t Fuel = 200'000'000;
  bool Sweep = false, KeepGoing = false, ListWorkloads = false;
  SweepRequest Request;
  std::string JsonPath, CacheDir;
  unsigned Jobs = 1, SampleJobs = 1;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--sweep" || Arg.rfind("--sweep=", 0) == 0) {
      Sweep = true;
      applySweepRequestFlag(Request, Cli, Arg);
    } else if (applySweepRequestFlag(Request, Cli, Arg)) {
      // Shared sweep-request surface (--scale, --workloads, --sample,
      // --opt-stats, --engine-stats): identical parsing and diagnostics
      // in ogate-sim and `ogate-serve request` by construction.
    } else if (Arg.rfind("--arg=", 0) == 0) {
      Args.push_back(
          Cli.parseI64("--arg", Arg.substr(6), "want a decimal integer"));
    } else if (Arg == "--uarch") {
      Uarch = true;
    } else if (Arg.rfind("--scheme=", 0) == 0) {
      std::string S = Arg.substr(9);
      Uarch = true;
      if (S == "none")
        Scheme = GatingScheme::None;
      else if (S == "sw")
        Scheme = GatingScheme::Software;
      else if (S == "hwsig")
        Scheme = GatingScheme::HwSignificance;
      else if (S == "hwsize")
        Scheme = GatingScheme::HwSize;
      else if (S == "combined")
        Scheme = GatingScheme::Combined;
      else {
        std::cerr << "ogate-sim: unknown scheme '" << S << "'\n";
        return 1;
      }
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--timing-line") {
      Request.Report.TimingLine = true;
    } else if (Arg.rfind("--fuel=", 0) == 0) {
      Fuel = Cli.parseU64("--fuel", Arg.substr(7),
                          "want a positive instruction count", 1);
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      // std::atoi here used to turn "--jobs=abc" (and 0, negatives,
      // overflow) into a silent --jobs=1 run; malformed values exit 2.
      Sweep = true;
      Jobs = static_cast<unsigned>(
          Cli.parseU64("--jobs", Arg.substr(7), "want a worker count >= 1", 1,
                       std::numeric_limits<unsigned>::max()));
    } else if (Arg == "--jobs") {
      if (I + 1 >= argc)
        Cli.badValue("--jobs", "", "want a worker count >= 1");
      Sweep = true;
      Jobs = static_cast<unsigned>(
          Cli.parseU64("--jobs", argv[++I], "want a worker count >= 1", 1,
                       std::numeric_limits<unsigned>::max()));
    } else if (Arg.rfind("--sample-jobs=", 0) == 0) {
      // Valid in both modes: window-replay threads inside each sampled
      // cell (single-run) / each sweep cell. Never changes results.
      SampleJobs = static_cast<unsigned>(
          Cli.parseU64("--sample-jobs", Arg.substr(14),
                       "want a worker count >= 1", 1,
                       std::numeric_limits<unsigned>::max()));
    } else if (Arg.rfind("--json=", 0) == 0) {
      JsonPath = Arg.substr(7);
      if (JsonPath.empty()) {
        std::cerr << "ogate-sim: --json needs a path (or '-' for stdout)\n";
        return 1;
      }
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Sweep = true;
      CacheDir = Arg.substr(12);
      if (CacheDir.empty()) {
        std::cerr << "ogate-sim: --cache-dir needs a directory\n";
        return 1;
      }
    } else if (Arg == "--keep-going") {
      KeepGoing = true;
    } else if (Arg == "--list-workloads") {
      ListWorkloads = true;
    } else if (Arg == "--help" || Arg == "-h") {
      std::cerr << "usage: ogate-sim [--arg=N]... [--uarch] "
                   "[--scheme=none|sw|hwsig|hwsize|combined] [--stats] "
                   "[--fuel=N] [--timing-line] [--sample=L[:K]] "
                   "[--sample-jobs=N] [--json=PATH|-] input.s|elf:BIN\n"
                   "       ogate-sim --list-workloads\n"
                   "       ogate-sim --sweep[=standard|matrix] [--jobs N] "
                   "[--scale=S] [--workloads=a,b] [--keep-going] "
                   "[--json=PATH|-] [--cache-dir=DIR] [--sample=L[:K]] "
                   "[--sample-jobs=N] [--opt-stats] [--engine-stats]\n";
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "ogate-sim: unknown option '" << Arg << "'\n";
      return 1;
    } else {
      InputPath = Arg;
    }
  }

  if (ListWorkloads) {
    // One name per line on stdout so shell pipelines can consume it; the
    // elf: scheme is a spec, not a registry entry, so it rides on stderr.
    for (const std::string &Name : allWorkloadNames())
      std::cout << Name << "\n";
    std::cerr << "ogate-sim: plus \"elf:PATH\" for any RV32I ELF binary "
                 "(lifted by the frontend)\n";
    return 0;
  }

  Request.Report.JsonRequested = !JsonPath.empty();

  // The one validation path for report-option combinations (shared with
  // `ogate-serve`): first conflict wins, printed with the tool prefix.
  if (const std::string Bad = validateReportOptions(
          Request.Report, Sweep, Request.Sample.enabled(), Uarch);
      !Bad.empty()) {
    std::cerr << "ogate-sim: " << Bad << "\n";
    return 1;
  }

  if (Sweep) {
    if (!InputPath.empty()) {
      std::cerr << "ogate-sim: --sweep takes no input file\n";
      return 1;
    }
    return runSweepMode(Request, Jobs < 1 ? 1 : Jobs, SampleJobs, KeepGoing,
                        JsonPath, CacheDir);
  }

  if (InputPath.empty()) {
    std::cerr << "ogate-sim: no input file\n";
    return 1;
  }

  // Assembly or ELF: loadProgramInput dispatches on the elf: prefix and
  // the ELF magic, so `ogate-sim elf:tests/fixtures/rv32/checksum.elf`
  // and a bare path to a binary both lift through the frontend.
  Expected<Program> Parsed = loadProgramInput(InputPath);
  if (!Parsed) {
    std::cerr << "ogate-sim: " << Parsed.error() << "\n";
    return 1;
  }

  RunOptions Opts;
  Opts.ArgRegs = Args;
  Opts.Fuel = Fuel;

  EnergyModel EM(Scheme);
  OooCore Core(UarchConfig(), &EM);
  const bool Sampled = Request.Sample.enabled();
  if (Uarch && !Sampled)
    Opts.Sink = &Core; // the core consumes the trace in batches

  const bool TimingLine = Request.Report.TimingLine;
  // With --json=- the document owns stdout; all human text moves to
  // stderr (same contract as sweep mode).
  std::ostream &Out = JsonPath == "-" ? std::cerr : std::cout;

  // --timing-line splits preparation from measurement: decode and (for
  // timing runs without a detailed sink, where the fast path engages)
  // self-profiled superblock formation are timed as "prep", so sim-speed
  // measures the dispatch loop alone rather than averaging build cost in.
  auto PrepStart = std::chrono::steady_clock::now();
  DecodedProgram Decoded(*Parsed);
  std::unique_ptr<SuperblockPlan> Plan;
  if (TimingLine && !Uarch) {
    Plan = std::make_unique<SuperblockPlan>(buildSelfProfiledPlan(Decoded, Opts));
    Opts.Superblocks = Plan.get();
  }
  double PrepSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - PrepStart)
                           .count();
  auto RunStart = std::chrono::steady_clock::now();
  RunResult R;
  UarchStats S;
  EnergyReport Rep;
  PipelineSampleInfo SampleInfo;
  if (Sampled) {
    // Phase-sampled estimation: exact functional result from one
    // full-speed pass, detailed timing/energy from replayed windows
    // (window-parallel under --sample-jobs; byte-identical either way).
    try {
      SampleRunPolicy Policy;
      Policy.WindowJobs = SampleJobs;
      SampleEstimate Est =
          estimateSampled(Decoded, Opts, UarchConfig(), Scheme,
                          EnergyCoefficients::defaults(), Request.Sample,
                          Policy);
      R = Est.Run;
      S = Est.Uarch;
      Rep = Est.Report;
      SampleInfo.Used = true;
      SampleInfo.IntervalLen = Est.Plan.IntervalLen;
      SampleInfo.Intervals = Est.Plan.numIntervals();
      SampleInfo.K = Est.Plan.K;
      SampleInfo.DetailedInsts = Est.DetailedInsts;
      SampleInfo.Weights = Est.Plan.Weights;
      SampleInfo.Reps = Est.Plan.Reps;
      SampleInfo.EstError = Est.Plan.Dispersion;
    } catch (const std::exception &E) {
      // prepareSampled validates the run halts; a faulting or
      // out-of-fuel program has no phases to sample.
      std::cerr << "ogate-sim: sampled estimation failed: " << E.what()
                << "\n";
      return 1;
    }
  } else {
    R = runProgram(Decoded, Opts);
  }
  double RunSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - RunStart)
                          .count();

  Out << "status: "
      << (R.Status == RunStatus::Halted ? "halted" : R.Message.c_str())
      << "\n"
      << "dynamic instructions: " << R.Stats.DynInsts << "\n"
      << "output:";
  for (int64_t V : R.Output)
    Out << " " << V;
  Out << "\n";

  double Mips = RunSeconds > 0.0
                    ? static_cast<double>(R.Stats.DynInsts) / RunSeconds / 1e6
                    : 0.0;
  const DispatchMode ActiveDispatch = resolveDispatchMode(Opts.Dispatch);
  if (TimingLine)
    Out << "sim-speed: " << TextTable::num(Mips, 1) << " MIPS, "
        << R.Stats.DynInsts << " dyn insts\n"
        << "sim-dispatch: " << dispatchModeName(ActiveDispatch)
        << (Opts.Superblocks ? "+superblocks" : "") << "\n"
        << "sim-prep: " << TextTable::num(PrepSeconds * 1e3, 1)
        << " ms (decode + superblock formation), run "
        << TextTable::num(RunSeconds * 1e3, 1) << " ms\n";

  if (Stats) {
    TextTable T({"class", "8b", "16b", "32b", "64b"});
    for (unsigned C = 0; C < 18; ++C) {
      uint64_t N = 0;
      for (unsigned W = 0; W < 4; ++W)
        N += R.Stats.ClassWidth[C][W];
      if (!N)
        continue;
      T.addRow({opClassName(static_cast<OpClass>(C)),
                std::to_string(R.Stats.ClassWidth[C][0]),
                std::to_string(R.Stats.ClassWidth[C][1]),
                std::to_string(R.Stats.ClassWidth[C][2]),
                std::to_string(R.Stats.ClassWidth[C][3])});
    }
    T.print(Out);
  }

  if (Uarch) {
    if (!Sampled) {
      S = Core.finish();
      Rep = makeReport(EM, S);
    }
    Out << "cycles: " << S.Cycles << "  (IPC "
        << TextTable::num(S.ipc(), 2) << ")\n"
        << "branches: " << S.Branches << " (" << S.Mispredicts
        << " mispredicted)\n"
        << "L1D misses: " << S.DL1Misses
        << "  L2 misses: " << S.L2Misses << "\n"
        << "energy (" << gatingSchemeName(Scheme)
        << "): " << TextTable::num(Rep.TotalEnergy, 1) << "  ED^2 "
        << TextTable::num(Rep.ed2(), 1) << "\n";
    if (Sampled)
      Out << "sampled: " << SampleInfo.Intervals << " intervals of "
          << SampleInfo.IntervalLen << ", k " << SampleInfo.K
          << ", detailed " << SampleInfo.DetailedInsts
          << " insts (timing/energy are estimates; counters above the "
             "line stay exact)\n";
  }

  if (!JsonPath.empty()) {
    // "status" is a stable token consumers can switch on; the free-form
    // diagnostic (fault addresses etc.) rides separately in "message"
    // so two faulting runs do not diff as a status mismatch.
    const char *StatusTok = "halted";
    switch (R.Status) {
    case RunStatus::Halted:
      break;
    case RunStatus::OutOfFuel:
      StatusTok = "out-of-fuel";
      break;
    case RunStatus::Fault:
      StatusTok = "fault";
      break;
    case RunStatus::CalleeSaveViolation:
      StatusTok = "callee-save-violation";
      break;
    }
    JsonValue Doc = makeReportRoot("run");
    Doc.set("input", JsonValue::str(InputPath));
    Doc.set("status", JsonValue::str(StatusTok));
    if (R.Status != RunStatus::Halted)
      Doc.set("message", JsonValue::str(R.Message));
    JsonValue Output = JsonValue::array();
    for (int64_t V : R.Output)
      Output.push(JsonValue::integer(V));
    Doc.set("output", std::move(Output));
    Doc.set("stats", toJson(R.Stats));
    if (Uarch) {
      Doc.set("uarch", toJson(S));
      Doc.set("energy", toJson(Rep));
    }
    if (Sampled)
      // Same group shape as sampled sweep cells; its presence is what
      // keys `ogate-report diff` onto estimated-counter tolerances.
      Doc.set("sample", sampleToJson(SampleInfo));
    if (TimingLine) {
      Doc.set("dispatch", JsonValue::str(dispatchModeName(ActiveDispatch)));
      // Wall-clock lives under "metrics" so `ogate-report diff` applies
      // its relative tolerance instead of demanding exact MIPS.
      JsonValue Metrics = JsonValue::object();
      Metrics.set("sim-mips", JsonValue::number(Mips));
      Metrics.set("prep-ms", JsonValue::number(PrepSeconds * 1e3));
      Metrics.set("run-ms", JsonValue::number(RunSeconds * 1e3));
      Doc.set("metrics", std::move(Metrics));
    }
    if (JsonPath == "-") {
      std::cout << Doc.toString();
    } else {
      std::string Err;
      if (!writeJsonFile(JsonPath, Doc, &Err)) {
        std::cerr << "ogate-sim: " << Err << "\n";
        return 1;
      }
    }
  }
  return R.Status == RunStatus::Halted ? 0 : 1;
}
