//===- tools/ogate-sim.cpp - Simulator CLI -----------------------------------==//
//
// Runs an assembly program through the functional simulator and,
// optionally, the out-of-order timing + power models.
//
//   ogate-sim [options] input.s
//     --arg=N           initial a0 (repeatable: fills a0..a5 in order)
//     --uarch           also run the Table-2 timing model
//     --scheme=NAME     power accounting: none|sw|hwsig|hwsize|combined
//     --stats           print the dynamic width/class histograms
//     --fuel=N          dynamic instruction budget
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "power/Report.h"
#include "support/Table.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace og;

int main(int argc, char **argv) {
  std::string InputPath;
  std::vector<int64_t> Args;
  bool Uarch = false, Stats = false;
  GatingScheme Scheme = GatingScheme::None;
  uint64_t Fuel = 200'000'000;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--arg=", 0) == 0) {
      Args.push_back(std::atoll(Arg.c_str() + 6));
    } else if (Arg == "--uarch") {
      Uarch = true;
    } else if (Arg.rfind("--scheme=", 0) == 0) {
      std::string S = Arg.substr(9);
      Uarch = true;
      if (S == "none")
        Scheme = GatingScheme::None;
      else if (S == "sw")
        Scheme = GatingScheme::Software;
      else if (S == "hwsig")
        Scheme = GatingScheme::HwSignificance;
      else if (S == "hwsize")
        Scheme = GatingScheme::HwSize;
      else if (S == "combined")
        Scheme = GatingScheme::Combined;
      else {
        std::cerr << "ogate-sim: unknown scheme '" << S << "'\n";
        return 1;
      }
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg.rfind("--fuel=", 0) == 0) {
      Fuel = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    } else if (Arg == "--help" || Arg == "-h") {
      std::cerr << "usage: ogate-sim [--arg=N]... [--uarch] "
                   "[--scheme=none|sw|hwsig|hwsize|combined] [--stats] "
                   "[--fuel=N] input.s\n";
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "ogate-sim: unknown option '" << Arg << "'\n";
      return 1;
    } else {
      InputPath = Arg;
    }
  }
  if (InputPath.empty()) {
    std::cerr << "ogate-sim: no input file\n";
    return 1;
  }

  std::ifstream In(InputPath);
  if (!In) {
    std::cerr << "ogate-sim: cannot open '" << InputPath << "'\n";
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Expected<Program> Parsed = assembleProgram(Buffer.str());
  if (!Parsed) {
    std::cerr << "ogate-sim: " << InputPath << ": " << Parsed.error()
              << "\n";
    return 1;
  }

  RunOptions Opts;
  Opts.ArgRegs = Args;
  Opts.Fuel = Fuel;

  EnergyModel EM(Scheme);
  OooCore Core(UarchConfig(), &EM);
  if (Uarch)
    Opts.Trace = [&](const DynInst &D) { Core.onInst(D); };

  RunResult R = runProgram(*Parsed, Opts);

  std::cout << "status: "
            << (R.Status == RunStatus::Halted ? "halted" : R.Message.c_str())
            << "\n"
            << "dynamic instructions: " << R.Stats.DynInsts << "\n"
            << "output:";
  for (int64_t V : R.Output)
    std::cout << " " << V;
  std::cout << "\n";

  if (Stats) {
    TextTable T({"class", "8b", "16b", "32b", "64b"});
    for (unsigned C = 0; C < 18; ++C) {
      uint64_t N = 0;
      for (unsigned W = 0; W < 4; ++W)
        N += R.Stats.ClassWidth[C][W];
      if (!N)
        continue;
      T.addRow({opClassName(static_cast<OpClass>(C)),
                std::to_string(R.Stats.ClassWidth[C][0]),
                std::to_string(R.Stats.ClassWidth[C][1]),
                std::to_string(R.Stats.ClassWidth[C][2]),
                std::to_string(R.Stats.ClassWidth[C][3])});
    }
    T.print(std::cout);
  }

  if (Uarch) {
    UarchStats S = Core.finish();
    EnergyReport Rep = makeReport(EM, S);
    std::cout << "cycles: " << S.Cycles << "  (IPC "
              << TextTable::num(S.ipc(), 2) << ")\n"
              << "branches: " << S.Branches << " (" << S.Mispredicts
              << " mispredicted)\n"
              << "L1D misses: " << S.DL1Misses
              << "  L2 misses: " << S.L2Misses << "\n"
              << "energy (" << gatingSchemeName(Scheme)
              << "): " << TextTable::num(Rep.TotalEnergy, 1) << "  ED^2 "
              << TextTable::num(Rep.ed2(), 1) << "\n";
  }
  return R.Status == RunStatus::Halted ? 0 : 1;
}
