//===- tools/ogate-opt.cpp - Binary optimizer CLI ---------------------------==//
//
// The Alto-style command-line front end: reads textual assembly, applies
// the requested operand-gating transformations, and writes the re-encoded
// assembly.
//
//   ogate-opt [options] input.s
//     --conventional      ranges-only VRP (no useful widths)
//     --base-alpha        restrict to the stock Alpha width sets
//     --vrs[=COST]        run VRS after VRP (profile on --train-arg)
//     --train-arg=N       a0 for the VRS training run (default 0)
//     --print-ranges      dump the range-analysis results to stderr
//     --no-verify-output  skip the output-equivalence self-check
//     -o FILE             write result to FILE (default: stdout)
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "vrp/Dump.h"
#include "asm/Disassembler.h"
#include "vrp/Narrowing.h"
#include "vrs/Specializer.h"
#include "support/Cli.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace og;

namespace {

void usage() {
  std::cerr << "usage: ogate-opt [--conventional] [--base-alpha] "
               "[--vrs[=COST]] [--train-arg=N]\n"
               "                 [--no-verify-output] [-o FILE] input.s\n";
}

} // namespace

int main(int argc, char **argv) {
  const CliTool Cli("ogate-opt");
  std::string InputPath, OutputPath;
  bool Conventional = false, BaseAlpha = false, RunVrs = false;
  bool VerifyOutput = true, PrintRanges = false;
  double VrsCost = 50.0;
  int64_t TrainArg = 0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--conventional") {
      Conventional = true;
    } else if (Arg == "--base-alpha") {
      BaseAlpha = true;
    } else if (Arg == "--vrs") {
      RunVrs = true;
    } else if (Arg.rfind("--vrs=", 0) == 0) {
      RunVrs = true;
      // atof here used to turn "--vrs=cheap" into a silent zero-cost run;
      // malformed values exit 2 like every tool in the family
      // (support/Cli.h).
      VrsCost = Cli.parseNonNegative("--vrs", Arg.substr(6),
                                     "want a finite test cost >= 0");
    } else if (Arg.rfind("--train-arg=", 0) == 0) {
      TrainArg = Cli.parseI64("--train-arg", Arg.substr(12),
                              "want a decimal integer");
    } else if (Arg == "--print-ranges") {
      PrintRanges = true;
    } else if (Arg == "--no-verify-output") {
      VerifyOutput = false;
    } else if (Arg == "-o") {
      if (++I >= argc) {
        usage();
        return 1;
      }
      OutputPath = argv[I];
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "ogate-opt: unknown option '" << Arg << "'\n";
      return 1;
    } else {
      InputPath = Arg;
    }
  }
  if (InputPath.empty()) {
    usage();
    return 1;
  }

  std::ifstream In(InputPath);
  if (!In) {
    std::cerr << "ogate-opt: cannot open '" << InputPath << "'\n";
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Expected<Program> Parsed = assembleProgram(Buffer.str());
  if (!Parsed) {
    std::cerr << "ogate-opt: " << InputPath << ": " << Parsed.error()
              << "\n";
    return 1;
  }
  Program P = std::move(*Parsed);
  Program Original = P;

  // One analysis manager for the whole optimizer invocation: the range
  // dump, the narrowing run and the VRS pipeline share cached analyses.
  AnalysisManager AM(P);
  NarrowingOptions Narrow;
  Narrow.UseUsefulWidths = !Conventional;
  Narrow.Policy = BaseAlpha ? IsaPolicy::BaseAlpha : IsaPolicy::Extended;
  if (PrintRanges) {
    RangeAnalysis RA(AM, Narrow.Range);
    RA.run();
    dumpProgramRanges(P, RA, std::cerr);
  }
  NarrowingReport Report = narrowProgram(P, AM, Narrow);
  std::cerr << "ogate-opt: narrowed " << Report.NumNarrowed << " of "
            << Report.NumWidthBearing << " width-bearing instructions\n";

  if (RunVrs) {
    RunOptions Train;
    Train.ArgRegs = {TrainArg};
    VrsOptions Opts;
    Opts.Narrow = Narrow;
    Opts.Energy.TestCostNJ = VrsCost;
    VrsReport VR = specializeProgram(P, AM, Train, Opts);
    std::cerr << "ogate-opt: VRS profiled " << VR.PointsProfiled
              << " points, specialized " << VR.PointsSpecialized << "\n";
  }

  if (VerifyOutput) {
    RunOptions Opts;
    Opts.ArgRegs = {TrainArg};
    RunResult A = runProgram(Original, Opts);
    RunResult B = runProgram(P, Opts);
    if (A.Output != B.Output || A.Status != B.Status) {
      // Exit 1, not 2: the family convention (support/Cli.h) reserves 2
      // for malformed flag values; a transform that broke the program is
      // a runtime failure.
      std::cerr << "ogate-opt: OUTPUT MISMATCH after transformation; "
                   "refusing to emit\n";
      return 1;
    }
    std::cerr << "ogate-opt: output equivalence verified ("
              << A.Output.size() << " values)\n";
  }

  if (OutputPath.empty()) {
    disassembleProgram(P, std::cout);
  } else {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::cerr << "ogate-opt: cannot write '" << OutputPath << "'\n";
      return 1;
    }
    disassembleProgram(P, Out);
  }
  return 0;
}
