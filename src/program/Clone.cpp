//===- program/Clone.cpp --------------------------------------------------==//

#include "program/Clone.h"

#include "program/Program.h"

#include <cassert>

using namespace og;

std::map<int32_t, int32_t>
og::cloneRegion(Function &F, const std::vector<int32_t> &Region) {
  std::map<int32_t, int32_t> Mapping;
  // First pass: allocate clone ids (stable, in Region order).
  int32_t NextId = static_cast<int32_t>(F.Blocks.size());
  for (int32_t Old : Region) {
    assert(Old >= 0 && static_cast<size_t>(Old) < F.Blocks.size() &&
           "region block out of range");
    assert(!Mapping.count(Old) && "duplicate block in region");
    Mapping[Old] = NextId++;
  }
  // Second pass: copy blocks and remap intra-region control flow.
  for (int32_t Old : Region) {
    BasicBlock Copy = F.Blocks[Old]; // by value: F.Blocks may reallocate
    Copy.Id = Mapping[Old];
    if (!Copy.Label.empty())
      Copy.Label += ".clone";
    auto remap = [&](int32_t Id) {
      auto It = Mapping.find(Id);
      return It == Mapping.end() ? Id : It->second;
    };
    if (Copy.FallthroughSucc != NoTarget)
      Copy.FallthroughSucc = remap(Copy.FallthroughSucc);
    for (Instruction &I : Copy.Insts)
      if (I.Target != NoTarget)
        I.Target = remap(I.Target);
    F.Blocks.push_back(std::move(Copy));
  }
  F.bumpEpoch();
  return Mapping;
}
