//===- program/Program.cpp ------------------------------------------------==//

#include "program/Program.h"

#include "support/Hash.h"

#include <cassert>

using namespace og;

void BasicBlock::successors(std::vector<int32_t> &Out) const {
  Out.clear();
  if (const Instruction *Term = terminator()) {
    if (Term->Target != NoTarget)
      Out.push_back(Term->Target);
    if (Term->isCondBranch() && FallthroughSucc != NoTarget &&
        FallthroughSucc != Term->Target)
      Out.push_back(FallthroughSucc);
    return;
  }
  if (FallthroughSucc != NoTarget)
    Out.push_back(FallthroughSucc);
}

BasicBlock &Function::addBlock(std::string Label) {
  BasicBlock BB;
  BB.Id = static_cast<int32_t>(Blocks.size());
  BB.Label = std::move(Label);
  Blocks.push_back(std::move(BB));
  bumpEpoch();
  return Blocks.back();
}

size_t Function::numInstructions() const {
  size_t N = 0;
  for (const BasicBlock &BB : Blocks)
    N += BB.Insts.size();
  return N;
}

Function &Program::addFunction(std::string Name) {
  Function F;
  F.Id = static_cast<int32_t>(Funcs.size());
  F.Name = std::move(Name);
  Funcs.push_back(std::move(F));
  return Funcs.back();
}

const Function *Program::findFunction(const std::string &Name) const {
  for (const Function &F : Funcs)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

Function *Program::findFunction(const std::string &Name) {
  for (Function &F : Funcs)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

size_t Program::numInstructions() const {
  size_t N = 0;
  for (const Function &F : Funcs)
    N += F.numInstructions();
  return N;
}

uint64_t Program::addZeroData(size_t Count) {
  while (Data.size() % 8 != 0)
    Data.push_back(0);
  uint64_t Addr = DataBase + Data.size();
  Data.resize(Data.size() + Count, 0);
  return Addr;
}

uint64_t Program::addQuadData(const std::vector<int64_t> &Values) {
  while (Data.size() % 8 != 0)
    Data.push_back(0);
  uint64_t Addr = DataBase + Data.size();
  for (int64_t V : Values) {
    uint64_t U = static_cast<uint64_t>(V);
    for (int I = 0; I < 8; ++I)
      Data.push_back(static_cast<uint8_t>(U >> (8 * I)));
  }
  return Addr;
}

uint64_t Program::addByteData(const std::vector<uint8_t> &Bytes) {
  while (Data.size() % 8 != 0)
    Data.push_back(0);
  uint64_t Addr = DataBase + Data.size();
  Data.insert(Data.end(), Bytes.begin(), Bytes.end());
  return Addr;
}

void og::hashProgram(Fnv1a &H, const Program &P, bool IncludeWidths) {
  H.u64(static_cast<uint64_t>(P.EntryFunc));
  H.u64(P.Data.size());
  if (!P.Data.empty())
    H.bytes(P.Data.data(), P.Data.size());
  H.u64(P.Funcs.size());
  for (const Function &F : P.Funcs) {
    H.u64(static_cast<uint64_t>(F.EntryBlock));
    H.u64(F.Blocks.size());
    for (const BasicBlock &B : F.Blocks) {
      H.u64(static_cast<uint64_t>(B.FallthroughSucc));
      H.u64(B.Insts.size());
      for (const Instruction &I : B.Insts) {
        H.u64(static_cast<uint64_t>(I.Opc));
        if (IncludeWidths)
          H.u64(static_cast<uint64_t>(I.W));
        H.u64(static_cast<uint64_t>(I.Rd));
        H.u64(static_cast<uint64_t>(I.Ra));
        H.u64(static_cast<uint64_t>(I.Rb));
        H.u64(I.UseImm ? 1 : 0);
        H.u64(static_cast<uint64_t>(I.Imm));
        H.u64(static_cast<uint64_t>(I.Target));
        H.u64(static_cast<uint64_t>(I.Callee));
      }
    }
  }
}

uint64_t og::structuralProgramHash(const Program &P, bool IncludeWidths) {
  Fnv1a H;
  hashProgram(H, P, IncludeWidths);
  return H.hash();
}
