//===- program/Builder.h - Fluent program construction ----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for constructing programs in C++ (the synthetic SpecInt95
/// stand-ins and most tests use this; the assembler is the other entry
/// point). Blocks are named; forward references are resolved on demand.
/// Switching blocks while the current block lacks a terminator installs a
/// fallthrough edge, so straight-line code reads naturally:
///
/// \code
///   ProgramBuilder PB;
///   FunctionBuilder &Main = PB.beginFunction("main");
///   Main.ldi(RegT0, 0);
///   Main.block("loop");
///   Main.addi(RegT0, RegT0, 1);
///   Main.cmpltImm(RegT1, RegT0, 100);
///   Main.bne(RegT1, "loop", "exit");
///   Main.block("exit");
///   Main.halt();
///   Program P = PB.finish();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OG_PROGRAM_BUILDER_H
#define OG_PROGRAM_BUILDER_H

#include "program/Program.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace og {

class ProgramBuilder;

/// Builds one function. Obtain from ProgramBuilder::beginFunction.
class FunctionBuilder {
public:
  /// Switches emission to the (possibly new) block named \p Label. If the
  /// current block has no terminator, a fallthrough edge to \p Label is
  /// installed.
  FunctionBuilder &block(const std::string &Label);

  /// Emits a raw instruction into the current block.
  FunctionBuilder &emit(Instruction I);

  // --- ALU conveniences (all default to width Q; the narrowing pass
  // assigns final widths).
  FunctionBuilder &ldi(Reg Rd, int64_t Imm);
  FunctionBuilder &mov(Reg Rd, Reg Ra);
  FunctionBuilder &add(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &addi(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &sub(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &subi(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &mul(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &muli(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &and_(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &andi(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &or_(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &ori(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &xor_(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &xori(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &slli(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &srli(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &srai(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &sll(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &srl(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &cmpeq(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &cmpeqImm(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &cmplt(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &cmpltImm(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &cmple(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &cmpleImm(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &cmpult(Reg Rd, Reg Ra, Reg Rb);
  FunctionBuilder &cmpultImm(Reg Rd, Reg Ra, int64_t Imm);
  FunctionBuilder &msk(Width W, Reg Rd, Reg Ra, unsigned ByteOffset);
  FunctionBuilder &sext(Width W, Reg Rd, Reg Ra);

  // --- Memory.
  FunctionBuilder &ld(Width W, Reg Rd, Reg Base, int64_t Offset);
  FunctionBuilder &st(Width W, Reg Value, Reg Base, int64_t Offset);

  // --- Control flow. Targets are block labels; condBr names both the taken
  // label and the fallthrough label, and leaves the current block
  // terminated (the next block() call starts fresh).
  FunctionBuilder &br(const std::string &Target);
  FunctionBuilder &beq(Reg Ra, const std::string &Taken,
                       const std::string &Fall);
  FunctionBuilder &bne(Reg Ra, const std::string &Taken,
                       const std::string &Fall);
  FunctionBuilder &blt(Reg Ra, const std::string &Taken,
                       const std::string &Fall);
  FunctionBuilder &ble(Reg Ra, const std::string &Taken,
                       const std::string &Fall);
  FunctionBuilder &bgt(Reg Ra, const std::string &Taken,
                       const std::string &Fall);
  FunctionBuilder &bge(Reg Ra, const std::string &Taken,
                       const std::string &Fall);
  FunctionBuilder &jsr(const std::string &Callee);
  FunctionBuilder &ret();
  FunctionBuilder &halt();
  FunctionBuilder &out(Reg Ra);

  /// The function id within the program.
  int32_t id() const { return FuncId; }

private:
  friend class ProgramBuilder;
  FunctionBuilder(ProgramBuilder &Parent, int32_t FuncId)
      : Parent(Parent), FuncId(FuncId) {}

  Function &func();
  int32_t blockId(const std::string &Label);
  FunctionBuilder &condBr(Op O, Reg Ra, const std::string &Taken,
                          const std::string &Fall);

  ProgramBuilder &Parent;
  int32_t FuncId;
  int32_t CurBlock = NoTarget;
  std::map<std::string, int32_t> LabelIds;
};

/// Builds a whole program; resolves cross-function calls by name at
/// finish() and runs the Verifier.
class ProgramBuilder {
public:
  ProgramBuilder();

  /// Starts (or resumes) building the function named \p Name. The first
  /// function begun is the program entry unless setEntry overrides it.
  FunctionBuilder &beginFunction(const std::string &Name);

  /// Marks \p Name as the entry function.
  void setEntry(const std::string &Name);

  /// Data segment helpers (see Program).
  uint64_t addZeroData(size_t Count) { return P.addZeroData(Count); }
  uint64_t addQuadData(const std::vector<int64_t> &Vs) {
    return P.addQuadData(Vs);
  }
  uint64_t addByteData(const std::vector<uint8_t> &Bs) {
    return P.addByteData(Bs);
  }

  /// Resolves call targets, verifies, and returns the finished program.
  /// Asserts on malformed input (builder misuse is a programming error).
  Program finish();

private:
  friend class FunctionBuilder;

  struct CallFixup {
    int32_t FuncId;
    int32_t BlockId;
    size_t InstIndex;
    std::string Callee;
  };

  Program P;
  std::vector<std::unique_ptr<FunctionBuilder>> Builders;
  std::vector<CallFixup> CallFixups;
  std::string EntryName;
};

} // namespace og

#endif // OG_PROGRAM_BUILDER_H
