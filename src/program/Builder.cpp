//===- program/Builder.cpp ------------------------------------------------==//

#include "program/Builder.h"

#include "program/Verifier.h"

#include <cassert>

using namespace og;

Function &FunctionBuilder::func() { return Parent.P.Funcs[FuncId]; }

int32_t FunctionBuilder::blockId(const std::string &Label) {
  auto It = LabelIds.find(Label);
  if (It != LabelIds.end())
    return It->second;
  BasicBlock &BB = func().addBlock(Label);
  LabelIds.emplace(Label, BB.Id);
  return BB.Id;
}

FunctionBuilder &FunctionBuilder::block(const std::string &Label) {
  int32_t Next = blockId(Label);
  if (CurBlock != NoTarget) {
    BasicBlock &BB = func().Blocks[CurBlock];
    if (!BB.terminator() && BB.FallthroughSucc == NoTarget) {
      BB.FallthroughSucc = Next;
      func().bumpEpoch();
    }
  }
  CurBlock = Next;
  return *this;
}

FunctionBuilder &FunctionBuilder::emit(Instruction I) {
  if (CurBlock == NoTarget)
    block("entry");
  BasicBlock &BB = func().Blocks[CurBlock];
  assert(!BB.terminator() && "emitting into a terminated block");
  BB.Insts.push_back(I);
  func().bumpEpoch();
  return *this;
}

FunctionBuilder &FunctionBuilder::ldi(Reg Rd, int64_t Imm) {
  return emit(Instruction::ldi(Rd, Imm));
}
FunctionBuilder &FunctionBuilder::mov(Reg Rd, Reg Ra) {
  return emit(Instruction::mov(Rd, Ra));
}
FunctionBuilder &FunctionBuilder::add(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::Add, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::addi(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::Add, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::sub(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::Sub, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::subi(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::Sub, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::mul(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::Mul, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::muli(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::Mul, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::and_(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::And, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::andi(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::And, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::or_(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::Or, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::ori(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::Or, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::xor_(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::Xor, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::xori(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::Xor, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::slli(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::Sll, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::srli(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::Srl, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::srai(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::Sra, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::sll(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::Sll, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::srl(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::Srl, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::cmpeq(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::CmpEq, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::cmpeqImm(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::CmpEq, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::cmplt(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::CmpLt, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::cmpltImm(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::CmpLt, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::cmple(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::CmpLe, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::cmpleImm(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::CmpLe, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::cmpult(Reg Rd, Reg Ra, Reg Rb) {
  return emit(Instruction::alu(Op::CmpUlt, Width::Q, Rd, Ra, Rb));
}
FunctionBuilder &FunctionBuilder::cmpultImm(Reg Rd, Reg Ra, int64_t Imm) {
  return emit(Instruction::aluImm(Op::CmpUlt, Width::Q, Rd, Ra, Imm));
}
FunctionBuilder &FunctionBuilder::msk(Width W, Reg Rd, Reg Ra,
                                      unsigned ByteOffset) {
  return emit(Instruction::msk(W, Rd, Ra, ByteOffset));
}
FunctionBuilder &FunctionBuilder::sext(Width W, Reg Rd, Reg Ra) {
  return emit(Instruction::sext(W, Rd, Ra));
}
FunctionBuilder &FunctionBuilder::ld(Width W, Reg Rd, Reg Base,
                                     int64_t Offset) {
  return emit(Instruction::load(W, Rd, Base, Offset));
}
FunctionBuilder &FunctionBuilder::st(Width W, Reg Value, Reg Base,
                                     int64_t Offset) {
  return emit(Instruction::store(W, Value, Base, Offset));
}

FunctionBuilder &FunctionBuilder::br(const std::string &Target) {
  int32_t T = blockId(Target);
  emit(Instruction::br(T));
  return *this;
}

FunctionBuilder &FunctionBuilder::condBr(Op O, Reg Ra,
                                         const std::string &Taken,
                                         const std::string &Fall) {
  int32_t T = blockId(Taken);
  int32_t F = blockId(Fall);
  emit(Instruction::condBr(O, Ra, T));
  func().Blocks[CurBlock].FallthroughSucc = F;
  return *this;
}

FunctionBuilder &FunctionBuilder::beq(Reg Ra, const std::string &Taken,
                                      const std::string &Fall) {
  return condBr(Op::Beq, Ra, Taken, Fall);
}
FunctionBuilder &FunctionBuilder::bne(Reg Ra, const std::string &Taken,
                                      const std::string &Fall) {
  return condBr(Op::Bne, Ra, Taken, Fall);
}
FunctionBuilder &FunctionBuilder::blt(Reg Ra, const std::string &Taken,
                                      const std::string &Fall) {
  return condBr(Op::Blt, Ra, Taken, Fall);
}
FunctionBuilder &FunctionBuilder::ble(Reg Ra, const std::string &Taken,
                                      const std::string &Fall) {
  return condBr(Op::Ble, Ra, Taken, Fall);
}
FunctionBuilder &FunctionBuilder::bgt(Reg Ra, const std::string &Taken,
                                      const std::string &Fall) {
  return condBr(Op::Bgt, Ra, Taken, Fall);
}
FunctionBuilder &FunctionBuilder::bge(Reg Ra, const std::string &Taken,
                                      const std::string &Fall) {
  return condBr(Op::Bge, Ra, Taken, Fall);
}

FunctionBuilder &FunctionBuilder::jsr(const std::string &Callee) {
  emit(Instruction::jsr(NoTarget));
  Parent.CallFixups.push_back({FuncId, CurBlock,
                               func().Blocks[CurBlock].Insts.size() - 1,
                               Callee});
  return *this;
}

FunctionBuilder &FunctionBuilder::ret() { return emit(Instruction::ret()); }
FunctionBuilder &FunctionBuilder::halt() { return emit(Instruction::halt()); }
FunctionBuilder &FunctionBuilder::out(Reg Ra) {
  return emit(Instruction::out(Ra));
}

ProgramBuilder::ProgramBuilder() = default;

FunctionBuilder &ProgramBuilder::beginFunction(const std::string &Name) {
  for (auto &FB : Builders)
    if (P.Funcs[FB->id()].Name == Name)
      return *FB;
  Function &F = P.addFunction(Name);
  if (EntryName.empty())
    EntryName = Name;
  Builders.emplace_back(new FunctionBuilder(*this, F.Id));
  return *Builders.back();
}

void ProgramBuilder::setEntry(const std::string &Name) { EntryName = Name; }

Program ProgramBuilder::finish() {
  for (const CallFixup &Fix : CallFixups) {
    Function *Callee = P.findFunction(Fix.Callee);
    assert(Callee && "call to undefined function");
    P.Funcs[Fix.FuncId].Blocks[Fix.BlockId].Insts[Fix.InstIndex].Callee =
        Callee->Id;
  }
  const Function *Entry = P.findFunction(EntryName);
  assert(Entry && "entry function missing");
  P.EntryFunc = Entry->Id;

  std::string Diag;
  bool Ok = verifyProgram(P, &Diag);
  assert(Ok && "builder produced a malformed program");
  (void)Ok;
  return std::move(P);
}
