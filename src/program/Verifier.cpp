//===- program/Verifier.cpp -----------------------------------------------==//

#include "program/Verifier.h"

#include "program/Program.h"

#include <cstdio>

using namespace og;

namespace {

bool fail(std::string *Diag, const std::string &Message) {
  if (Diag)
    *Diag = Message;
  return false;
}

std::string loc(const Function &F, const BasicBlock &BB, size_t InstIdx) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s:bb%d:%zu: ", F.Name.c_str(), BB.Id,
                InstIdx);
  return Buf;
}

} // namespace

bool og::verifyFunction(const Program &P, const Function &F,
                        std::string *Diag) {
  if (F.Blocks.empty())
    return fail(Diag, F.Name + ": function has no blocks");
  if (F.EntryBlock < 0 ||
      static_cast<size_t>(F.EntryBlock) >= F.Blocks.size())
    return fail(Diag, F.Name + ": entry block id out of range");

  auto validBlock = [&](int32_t Id) {
    return Id >= 0 && static_cast<size_t>(Id) < F.Blocks.size();
  };

  for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const BasicBlock &BB = F.Blocks[BI];
    if (BB.Id != static_cast<int32_t>(BI))
      return fail(Diag, F.Name + ": block id does not match its index");
    if (BB.Insts.empty() && BB.FallthroughSucc == NoTarget)
      return fail(Diag, F.Name + ": empty block without fallthrough");

    for (size_t II = 0; II < BB.Insts.size(); ++II) {
      const Instruction &I = BB.Insts[II];
      const OpInfo &Info = I.info();

      if (I.isTerminator() && II + 1 != BB.Insts.size())
        return fail(Diag, loc(F, BB, II) + "terminator not at block end");

      if (I.Rd >= NumRegs || I.Ra >= NumRegs || I.Rb >= NumRegs)
        return fail(Diag, loc(F, BB, II) + "register out of range");

      if (I.Opc == Op::Msk && (I.Imm < 0 || I.Imm > 7))
        return fail(Diag, loc(F, BB, II) + "msk byte offset out of range");

      if (Info.IsCondBranch || I.Opc == Op::Br) {
        if (!validBlock(I.Target))
          return fail(Diag, loc(F, BB, II) + "branch target out of range");
      } else if (I.Target != NoTarget) {
        return fail(Diag, loc(F, BB, II) + "non-branch carries a target");
      }

      if (I.Opc == Op::Jsr) {
        if (I.Callee < 0 ||
            static_cast<size_t>(I.Callee) >= P.Funcs.size())
          return fail(Diag, loc(F, BB, II) + "call target out of range");
      } else if (I.Callee != NoTarget) {
        return fail(Diag, loc(F, BB, II) + "non-call carries a callee");
      }
    }

    const Instruction *Term = BB.terminator();
    if (Term) {
      if (Term->isCondBranch()) {
        if (!validBlock(BB.FallthroughSucc))
          return fail(Diag, F.Name +
                                ": conditional branch without fallthrough");
      } else if (BB.FallthroughSucc != NoTarget) {
        return fail(Diag,
                    F.Name + ": br/ret/halt block carries a fallthrough");
      }
    } else if (!validBlock(BB.FallthroughSucc)) {
      return fail(Diag, F.Name + ": fallthrough block without successor");
    }
  }
  return true;
}

bool og::verifyProgram(const Program &P, std::string *Diag) {
  if (P.Funcs.empty())
    return fail(Diag, "program has no functions");
  if (P.EntryFunc < 0 ||
      static_cast<size_t>(P.EntryFunc) >= P.Funcs.size())
    return fail(Diag, "entry function id out of range");

  for (size_t FI = 0; FI < P.Funcs.size(); ++FI) {
    if (P.Funcs[FI].Id != static_cast<int32_t>(FI))
      return fail(Diag, "function id does not match its index");
    if (!verifyFunction(P, P.Funcs[FI], Diag))
      return false;
  }
  return true;
}
