//===- program/Clone.h - Block-region cloning --------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region cloning, the mechanical half of Value Range Specialization
/// (paper Section 3.4: "VRS basically duplicates the regions of code that
/// are affected by the specialization"). Cloned blocks are appended to the
/// function; branches between two cloned blocks are remapped to the clones,
/// branches leaving the region keep their original targets.
///
//===----------------------------------------------------------------------===//

#ifndef OG_PROGRAM_CLONE_H
#define OG_PROGRAM_CLONE_H

#include <cstdint>
#include <map>
#include <vector>

namespace og {

struct Function;

/// Clones the blocks listed in \p Region (ids into \p F) and appends the
/// clones to \p F. Returns the old-id -> new-id mapping. Intra-region edges
/// are redirected to the clones; edges exiting the region are left pointing
/// at the original blocks.
std::map<int32_t, int32_t> cloneRegion(Function &F,
                                       const std::vector<int32_t> &Region);

} // namespace og

#endif // OG_PROGRAM_CLONE_H
