//===- program/Verifier.h - Structural well-formedness ----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the structural invariants documented in program/Program.h. Every
/// transformation in the repository (narrowing, specialization, cloning)
/// re-verifies its output in tests, making the verifier the first line of
/// defense against malformed rewrites.
///
//===----------------------------------------------------------------------===//

#ifndef OG_PROGRAM_VERIFIER_H
#define OG_PROGRAM_VERIFIER_H

#include <string>

namespace og {

struct Program;
struct Function;

/// Verifies one function; on failure returns false and, if \p Diag is
/// non-null, stores a one-line description of the first problem found.
bool verifyFunction(const Program &P, const Function &F,
                    std::string *Diag = nullptr);

/// Verifies the whole program (all functions, entry, call targets, data
/// segment sanity).
bool verifyProgram(const Program &P, std::string *Diag = nullptr);

} // namespace og

#endif // OG_PROGRAM_VERIFIER_H
