//===- program/Program.h - Whole-program container ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary-level program representation the optimizer works on: a
/// program is a list of functions; a function is a list of basic blocks; a
/// block is a list of instructions plus an explicit fallthrough successor.
/// This mirrors what a link-time optimizer like Alto reconstructs from a
/// final binary: whole-program code (including "library" functions), direct
/// control flow, and a flat initialized data segment.
///
/// Control-flow conventions (checked by the Verifier):
///  - a block ends either with a terminator (br/ret/halt/conditional
///    branch) or falls through; conditional branches and fallthrough blocks
///    carry a valid FallthroughSucc; br/ret/halt carry none;
///  - block ids equal their index within the function; function ids equal
///    their index within the program.
///
//===----------------------------------------------------------------------===//

#ifndef OG_PROGRAM_PROGRAM_H
#define OG_PROGRAM_PROGRAM_H

#include "isa/Instruction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace og {

/// A basic block: straight-line instructions plus structural successor
/// information.
struct BasicBlock {
  int32_t Id = 0;
  std::string Label; ///< optional, used by the (dis)assembler
  std::vector<Instruction> Insts;
  /// Successor taken when the terminator is a not-taken conditional branch,
  /// or when the block simply falls through. NoTarget when the block ends in
  /// br/ret/halt.
  int32_t FallthroughSucc = NoTarget;

  /// The terminator if the last instruction is one, else nullptr
  /// (fallthrough block).
  const Instruction *terminator() const {
    if (!Insts.empty() && Insts.back().isTerminator())
      return &Insts.back();
    return nullptr;
  }

  /// Collects successor block ids in deterministic order (taken target
  /// first, then fallthrough).
  void successors(std::vector<int32_t> &Out) const;
};

/// A function: an entry block plus a block list. Arguments arrive in
/// a0..a5, the result leaves in v0 (isa/Registers.h).
struct Function {
  int32_t Id = 0;
  std::string Name;
  std::vector<BasicBlock> Blocks;
  int32_t EntryBlock = 0;
  /// Modification epoch: every mutation of the function body (builder
  /// emission, block splits, cloning, rewriting passes) bumps it. The
  /// opt/AnalysisManager keys its per-function analysis cache on this, so
  /// forgetting to bump after a mutation means stale analyses. Use
  /// bumpEpoch() at every mutation site.
  uint64_t Epoch = 0;

  void bumpEpoch() { ++Epoch; }

  /// Appends an empty block and returns it (id = index). Bumps the epoch.
  BasicBlock &addBlock(std::string Label = "");

  /// Total instruction count across all blocks.
  size_t numInstructions() const;
};

/// A whole program: functions, an entry function, and an initialized data
/// segment mapped at DataBase in the machine's flat memory.
struct Program {
  /// Where the data segment is mapped in simulated memory.
  static constexpr uint64_t DataBase = 0x10000;

  std::vector<Function> Funcs;
  int32_t EntryFunc = 0;
  std::vector<uint8_t> Data;

  /// Appends an empty function and returns it (id = index).
  Function &addFunction(std::string Name);

  /// Finds a function by name; nullptr when absent.
  const Function *findFunction(const std::string &Name) const;
  Function *findFunction(const std::string &Name);

  /// Total instruction count across all functions.
  size_t numInstructions() const;

  /// Appends \p Count zero bytes to the data segment, 8-byte aligned;
  /// returns the simulated address of the first byte.
  uint64_t addZeroData(size_t Count);

  /// Appends 64-bit little-endian words; returns the address of the first.
  uint64_t addQuadData(const std::vector<int64_t> &Values);

  /// Appends raw bytes; returns the address of the first.
  uint64_t addByteData(const std::vector<uint8_t> &Bytes);
};

class Fnv1a;

/// Folds the program structurally into \p H: every field the execution
/// engine reads (entry function, data segment, block structure, every
/// instruction field), walked in program order. Nothing
/// instance-dependent participates — no addresses, no decode state, no
/// epochs, no labels — so two independently built copies of the same
/// program hash identically while any instruction edit changes the hash.
/// With \p IncludeWidths false, Instruction::W is skipped; that is the
/// handle that lets width-only rewrite cells (VRP narrowing mutates only
/// W) share dynamic-stream-keyed artifacts with their baseline
/// (sample/SamplePlanCache.h).
void hashProgram(Fnv1a &H, const Program &P, bool IncludeWidths = true);

/// hashProgram as a standalone 64-bit key — the "program structural
/// hash" component of the sweep service's content-addressed cell keys
/// (service/CellKey.h).
uint64_t structuralProgramHash(const Program &P, bool IncludeWidths = true);

} // namespace og

#endif // OG_PROGRAM_PROGRAM_H
