//===- frontend/Rv32Decoder.h - RV32I instruction decoder -------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes raw 32-bit words into RV32I base-ISA instructions. The decoder
/// is deliberately strict: reserved encodings, the compressed (RVC)
/// quadrants, and every extension (M, A, F, Zicsr, Zifencei, ...) are
/// decode errors with a one-line diagnostic, never a silent nearest
/// match. Strictness is what makes the decoder usable as a fuzz target —
/// an arbitrary byte stream either decodes to a well-defined RvInst or
/// fails cleanly (PropertyTest drives >=10k random words through it).
///
//===----------------------------------------------------------------------===//

#ifndef OG_FRONTEND_RV32DECODER_H
#define OG_FRONTEND_RV32DECODER_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace og {

/// The RV32I base instruction set, one enumerator per mnemonic.
enum class RvOp : uint8_t {
  Lui,
  Auipc,
  Jal,
  Jalr,
  Beq,
  Bne,
  Blt,
  Bge,
  Bltu,
  Bgeu,
  Lb,
  Lh,
  Lw,
  Lbu,
  Lhu,
  Sb,
  Sh,
  Sw,
  Addi,
  Slti,
  Sltiu,
  Xori,
  Ori,
  Andi,
  Slli,
  Srli,
  Srai,
  Add,
  Sub,
  Sll,
  Slt,
  Sltu,
  Xor,
  Srl,
  Sra,
  Or,
  And,
  Fence,
  Ecall,
  Ebreak,
};

const char *rvOpName(RvOp Op);

/// One decoded instruction. Unused fields are zero (e.g. Rs2 for I-type,
/// Imm for R-type); Imm is already sign-extended to its architectural
/// value (for Lui/Auipc it is the full shifted 32-bit constant).
struct RvInst {
  RvOp Op = RvOp::Addi;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  int32_t Imm = 0;
};

/// "addi x5, x6, -1" — the golden-test and diagnostic rendering.
std::string rvInstStr(const RvInst &I);

/// Decodes one 32-bit little-endian instruction word. Never crashes:
/// every non-RV32I encoding returns a diagnostic naming the word.
Expected<RvInst> decodeRv32(uint32_t Word);

} // namespace og

#endif // OG_FRONTEND_RV32DECODER_H
