//===- frontend/ElfFile.h - Minimal static ELF32 reader ---------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free reader for the slice of ELF32 the binary frontend
/// needs: the identification header, the PT_LOAD program headers, the
/// entry point, and (when section headers are present) the symbol table.
/// Everything is validated up front — offsets, counts, and string-table
/// references are bounds-checked against the file image, and a malformed
/// file is a diagnostic, never undefined behavior. The reader owns the
/// raw bytes so segment views stay valid for the lifter's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef OG_FRONTEND_ELFFILE_H
#define OG_FRONTEND_ELFFILE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace og {

/// One PT_LOAD program header. FileSize bytes at FileOffset map to
/// [Vaddr, Vaddr+FileSize); the tail up to MemSize is zero-filled (BSS).
struct ElfSegment {
  uint32_t Vaddr = 0;
  uint32_t FileOffset = 0;
  uint32_t FileSize = 0;
  uint32_t MemSize = 0;
  uint32_t Flags = 0; ///< PF_X=1, PF_W=2, PF_R=4

  bool isExec() const { return (Flags & 1) != 0; }
};

/// One symbol-table entry (only the fields the lifter consumes).
struct ElfSymbol {
  std::string Name;
  uint32_t Value = 0;
  uint32_t Size = 0;
  uint8_t Type = 0; ///< STT_* low nibble of st_info; STT_FUNC == 2

  bool isFunc() const { return Type == 2; }
};

/// A parsed, validated ELF32 executable for RISC-V.
class ElfFile {
public:
  /// Parses \p Bytes as a little-endian ELF32 ET_EXEC for EM_RISCV.
  /// Returns a one-line diagnostic for anything malformed or out of
  /// contract (wrong class, machine, overlapping segments, entry outside
  /// executable code, ...).
  static Expected<ElfFile> parse(std::vector<uint8_t> Bytes);

  /// Reads \p Path and parses it.
  static Expected<ElfFile> load(const std::string &Path);

  uint32_t entry() const { return Entry; }

  /// PT_LOAD segments, sorted by Vaddr, verified non-overlapping.
  const std::vector<ElfSegment> &segments() const { return Segments; }

  /// Symbols from SHT_SYMTAB when section headers are present (may be
  /// empty); names are verified NUL-terminated inside their strtab.
  const std::vector<ElfSymbol> &symbols() const { return Symbols; }

  /// The file bytes backing a segment (FileSize bytes).
  const uint8_t *segmentBytes(const ElfSegment &S) const {
    return Bytes.data() + S.FileOffset;
  }

private:
  std::vector<uint8_t> Bytes;
  uint32_t Entry = 0;
  std::vector<ElfSegment> Segments;
  std::vector<ElfSymbol> Symbols;
};

} // namespace og

#endif // OG_FRONTEND_ELFFILE_H
