//===- frontend/Lifter.h - RV32I ELF -> Program IR --------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifts an RV32I ELF executable into the Program IR, making any compiled
/// binary a first-class workload for the operand-gating pipeline. The
/// lifting contract:
///
///  - x0 is hardwired to the IR zero register; every other RV register
///    maps role-preservingly onto the 31 remaining IR registers (ra->RA,
///    sp->SP, gp->GP, sN->callee-saved, aN/tN->caller-saved), except x4
///    (tp): its slot backs the lifter's scratch register, so binaries
///    that touch x4 are rejected. Bare-metal RV32I code never does.
///  - 32-bit ALU ops become width-W IR ops; registers hold sign-extended
///    32-bit values, which is exactly the width-W evaluation rule, so
///    every instruction is a 1:1 (or 1:2 for lb/lh sign-extension and
///    register shifts' 5-bit masking) translation.
///  - Control flow is recovered by recursive traversal over direct
///    edges: functions are seeded from the ELF entry and STT_FUNC
///    symbols, `jal ra` targets become callees, `jal x0` is an
///    intra-function branch (cross-function targets are inlined, which
///    gives tail calls correct semantics for free since the target's
///    `ret` pops the IR call stack). Indirect jumps (any other jalr) are
///    counted and reported as a bail-out diagnostic — computed control
///    flow is outside the contract.
///  - `ecall` dispatches on a7 at runtime: 93 (exit) halts, 1 prints a0
///    to the OUT stream (registers preserved), anything else halts.
///    `ebreak` halts. `fence` is a no-op (single memory agent).
///  - PT_LOAD segments (text included) are copied into the flat data
///    segment at Program::DataBase, so all load vaddrs must be >=
///    0x10000. The stack pointer starts at zero: the binary must set up
///    its own sp (crt0-free fixtures do it in two instructions).
///
/// Every lifted program passes the structural Verifier before it is
/// returned; a hostile or malformed binary yields a diagnostic, never an
/// assert or invalid IR.
///
//===----------------------------------------------------------------------===//

#ifndef OG_FRONTEND_LIFTER_H
#define OG_FRONTEND_LIFTER_H

#include "frontend/ElfFile.h"
#include "program/Program.h"
#include "support/Error.h"

#include <cstdint>
#include <string>

namespace og {

/// Resource caps so a hostile binary cannot make discovery explode.
struct LiftOptions {
  uint32_t MaxFunctions = 1024;
  uint32_t MaxBlocksPerFunction = 1u << 16;
  uint32_t MaxInstsPerFunction = 1u << 20;
  uint32_t MaxImageBytes = 4u << 20;
};

struct LiftStats {
  uint32_t Functions = 0;
  uint32_t Blocks = 0;
  /// RV32I instructions decoded during CFG discovery (code reachable
  /// from two functions is counted in each).
  uint32_t Instructions = 0;
  /// IR instructions emitted (>= Instructions: lb/lh, register shifts,
  /// two-source branches, and ecall dispatch expand).
  uint32_t IrInstructions = 0;
};

struct LiftedProgram {
  Program Prog;
  LiftStats Stats;
};

/// Lifts a parsed ELF. The result is Verifier-clean.
Expected<LiftedProgram> liftElf(const ElfFile &E,
                                const LiftOptions &O = LiftOptions());

/// Reads, parses, and lifts \p Path.
Expected<LiftedProgram> liftElfFile(const std::string &Path,
                                    const LiftOptions &O = LiftOptions());

/// The shared program-input loader for tools: "elf:PATH" or a file
/// starting with the ELF magic goes through the binary frontend, anything
/// else through the assembler.
Expected<Program> loadProgramInput(const std::string &PathOrSpec);

} // namespace og

#endif // OG_FRONTEND_LIFTER_H
