//===- frontend/Rv32Decoder.cpp -------------------------------------------==//

#include "frontend/Rv32Decoder.h"

#include <cstdio>

using namespace og;

const char *og::rvOpName(RvOp Op) {
  switch (Op) {
  case RvOp::Lui:
    return "lui";
  case RvOp::Auipc:
    return "auipc";
  case RvOp::Jal:
    return "jal";
  case RvOp::Jalr:
    return "jalr";
  case RvOp::Beq:
    return "beq";
  case RvOp::Bne:
    return "bne";
  case RvOp::Blt:
    return "blt";
  case RvOp::Bge:
    return "bge";
  case RvOp::Bltu:
    return "bltu";
  case RvOp::Bgeu:
    return "bgeu";
  case RvOp::Lb:
    return "lb";
  case RvOp::Lh:
    return "lh";
  case RvOp::Lw:
    return "lw";
  case RvOp::Lbu:
    return "lbu";
  case RvOp::Lhu:
    return "lhu";
  case RvOp::Sb:
    return "sb";
  case RvOp::Sh:
    return "sh";
  case RvOp::Sw:
    return "sw";
  case RvOp::Addi:
    return "addi";
  case RvOp::Slti:
    return "slti";
  case RvOp::Sltiu:
    return "sltiu";
  case RvOp::Xori:
    return "xori";
  case RvOp::Ori:
    return "ori";
  case RvOp::Andi:
    return "andi";
  case RvOp::Slli:
    return "slli";
  case RvOp::Srli:
    return "srli";
  case RvOp::Srai:
    return "srai";
  case RvOp::Add:
    return "add";
  case RvOp::Sub:
    return "sub";
  case RvOp::Sll:
    return "sll";
  case RvOp::Slt:
    return "slt";
  case RvOp::Sltu:
    return "sltu";
  case RvOp::Xor:
    return "xor";
  case RvOp::Srl:
    return "srl";
  case RvOp::Sra:
    return "sra";
  case RvOp::Or:
    return "or";
  case RvOp::And:
    return "and";
  case RvOp::Fence:
    return "fence";
  case RvOp::Ecall:
    return "ecall";
  case RvOp::Ebreak:
    return "ebreak";
  }
  return "?";
}

std::string og::rvInstStr(const RvInst &I) {
  char Buf[64];
  auto x = [](uint8_t R) { return static_cast<int>(R); };
  switch (I.Op) {
  case RvOp::Lui:
  case RvOp::Auipc:
    std::snprintf(Buf, sizeof(Buf), "%s x%d, %d", rvOpName(I.Op), x(I.Rd),
                  I.Imm);
    break;
  case RvOp::Jal:
    std::snprintf(Buf, sizeof(Buf), "jal x%d, %d", x(I.Rd), I.Imm);
    break;
  case RvOp::Jalr:
    std::snprintf(Buf, sizeof(Buf), "jalr x%d, %d(x%d)", x(I.Rd), I.Imm,
                  x(I.Rs1));
    break;
  case RvOp::Beq:
  case RvOp::Bne:
  case RvOp::Blt:
  case RvOp::Bge:
  case RvOp::Bltu:
  case RvOp::Bgeu:
    std::snprintf(Buf, sizeof(Buf), "%s x%d, x%d, %d", rvOpName(I.Op),
                  x(I.Rs1), x(I.Rs2), I.Imm);
    break;
  case RvOp::Lb:
  case RvOp::Lh:
  case RvOp::Lw:
  case RvOp::Lbu:
  case RvOp::Lhu:
    std::snprintf(Buf, sizeof(Buf), "%s x%d, %d(x%d)", rvOpName(I.Op),
                  x(I.Rd), I.Imm, x(I.Rs1));
    break;
  case RvOp::Sb:
  case RvOp::Sh:
  case RvOp::Sw:
    std::snprintf(Buf, sizeof(Buf), "%s x%d, %d(x%d)", rvOpName(I.Op),
                  x(I.Rs2), I.Imm, x(I.Rs1));
    break;
  case RvOp::Addi:
  case RvOp::Slti:
  case RvOp::Sltiu:
  case RvOp::Xori:
  case RvOp::Ori:
  case RvOp::Andi:
  case RvOp::Slli:
  case RvOp::Srli:
  case RvOp::Srai:
    std::snprintf(Buf, sizeof(Buf), "%s x%d, x%d, %d", rvOpName(I.Op),
                  x(I.Rd), x(I.Rs1), I.Imm);
    break;
  case RvOp::Add:
  case RvOp::Sub:
  case RvOp::Sll:
  case RvOp::Slt:
  case RvOp::Sltu:
  case RvOp::Xor:
  case RvOp::Srl:
  case RvOp::Sra:
  case RvOp::Or:
  case RvOp::And:
    std::snprintf(Buf, sizeof(Buf), "%s x%d, x%d, x%d", rvOpName(I.Op),
                  x(I.Rd), x(I.Rs1), x(I.Rs2));
    break;
  case RvOp::Fence:
  case RvOp::Ecall:
  case RvOp::Ebreak:
    std::snprintf(Buf, sizeof(Buf), "%s", rvOpName(I.Op));
    break;
  }
  return Buf;
}

namespace {

Expected<RvInst> fail(uint32_t Word, const std::string &What) {
  char Hex[16];
  std::snprintf(Hex, sizeof(Hex), "0x%08x", Word);
  return makeError<RvInst>("cannot decode word " + std::string(Hex) + ": " +
                           What);
}

int32_t immI(uint32_t W) { return static_cast<int32_t>(W) >> 20; }

int32_t immS(uint32_t W) {
  return ((static_cast<int32_t>(W) >> 20) & ~0x1F) |
         static_cast<int32_t>((W >> 7) & 0x1F);
}

int32_t immB(uint32_t W) {
  uint32_t Imm = ((W >> 31) << 12) | (((W >> 7) & 1) << 11) |
                 (((W >> 25) & 0x3F) << 5) | (((W >> 8) & 0xF) << 1);
  return static_cast<int32_t>(Imm << 19) >> 19;
}

int32_t immU(uint32_t W) { return static_cast<int32_t>(W & 0xFFFFF000u); }

int32_t immJ(uint32_t W) {
  uint32_t Imm = ((W >> 31) << 20) | (((W >> 12) & 0xFF) << 12) |
                 (((W >> 20) & 1) << 11) | (((W >> 21) & 0x3FF) << 1);
  return static_cast<int32_t>(Imm << 11) >> 11;
}

} // namespace

Expected<RvInst> og::decodeRv32(uint32_t Word) {
  // All RV32I base instructions live in the 32-bit encoding quadrant
  // (lowest two bits 11); anything else is RVC or a reserved quadrant.
  if ((Word & 0x3) != 0x3)
    return fail(Word, "not a 32-bit encoding (compressed/reserved quadrant)");
  if ((Word & 0x1C) == 0x1C)
    return fail(Word, ">32-bit encoding prefix is not RV32I");

  const uint32_t Opcode = Word & 0x7F;
  const uint8_t Rd = (Word >> 7) & 0x1F;
  const uint8_t F3 = (Word >> 12) & 0x7;
  const uint8_t Rs1 = (Word >> 15) & 0x1F;
  const uint8_t Rs2 = (Word >> 20) & 0x1F;
  const uint32_t F7 = Word >> 25;

  RvInst I;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;

  switch (Opcode) {
  case 0x37: // LUI
    I.Op = RvOp::Lui;
    I.Rs1 = I.Rs2 = 0;
    I.Imm = immU(Word);
    return I;
  case 0x17: // AUIPC
    I.Op = RvOp::Auipc;
    I.Rs1 = I.Rs2 = 0;
    I.Imm = immU(Word);
    return I;
  case 0x6F: // JAL
    I.Op = RvOp::Jal;
    I.Rs1 = I.Rs2 = 0;
    I.Imm = immJ(Word);
    return I;
  case 0x67: // JALR
    if (F3 != 0)
      return fail(Word, "jalr requires funct3=0");
    I.Op = RvOp::Jalr;
    I.Rs2 = 0;
    I.Imm = immI(Word);
    return I;
  case 0x63: { // conditional branches
    static const RvOp Br[8] = {RvOp::Beq,  RvOp::Bne, RvOp::Beq /*bad*/,
                               RvOp::Beq /*bad*/, RvOp::Blt, RvOp::Bge,
                               RvOp::Bltu, RvOp::Bgeu};
    if (F3 == 2 || F3 == 3)
      return fail(Word, "reserved branch funct3");
    I.Op = Br[F3];
    I.Rd = 0;
    I.Imm = immB(Word);
    return I;
  }
  case 0x03: { // loads
    switch (F3) {
    case 0:
      I.Op = RvOp::Lb;
      break;
    case 1:
      I.Op = RvOp::Lh;
      break;
    case 2:
      I.Op = RvOp::Lw;
      break;
    case 4:
      I.Op = RvOp::Lbu;
      break;
    case 5:
      I.Op = RvOp::Lhu;
      break;
    default:
      return fail(Word, "reserved load funct3");
    }
    I.Rs2 = 0;
    I.Imm = immI(Word);
    return I;
  }
  case 0x23: { // stores
    switch (F3) {
    case 0:
      I.Op = RvOp::Sb;
      break;
    case 1:
      I.Op = RvOp::Sh;
      break;
    case 2:
      I.Op = RvOp::Sw;
      break;
    default:
      return fail(Word, "reserved store funct3");
    }
    I.Rd = 0;
    I.Imm = immS(Word);
    return I;
  }
  case 0x13: { // OP-IMM
    switch (F3) {
    case 0:
      I.Op = RvOp::Addi;
      break;
    case 2:
      I.Op = RvOp::Slti;
      break;
    case 3:
      I.Op = RvOp::Sltiu;
      break;
    case 4:
      I.Op = RvOp::Xori;
      break;
    case 6:
      I.Op = RvOp::Ori;
      break;
    case 7:
      I.Op = RvOp::Andi;
      break;
    case 1:
      if (F7 != 0)
        return fail(Word, "slli requires funct7=0 (shamt < 32)");
      I.Op = RvOp::Slli;
      I.Rs2 = 0;
      I.Imm = Rs2; // shamt
      return I;
    case 5:
      if (F7 == 0x00)
        I.Op = RvOp::Srli;
      else if (F7 == 0x20)
        I.Op = RvOp::Srai;
      else
        return fail(Word, "reserved shift funct7 (srli/srai want 0x00/0x20)");
      I.Rs2 = 0;
      I.Imm = Rs2; // shamt
      return I;
    }
    I.Rs2 = 0;
    I.Imm = immI(Word);
    return I;
  }
  case 0x33: { // OP
    if (F7 == 0x01)
      return fail(Word, "RV32M multiply/divide is not in the RV32I subset");
    if (F7 != 0x00 && F7 != 0x20)
      return fail(Word, "reserved OP funct7");
    const bool Alt = F7 == 0x20;
    switch (F3) {
    case 0:
      I.Op = Alt ? RvOp::Sub : RvOp::Add;
      break;
    case 1:
      if (Alt)
        return fail(Word, "reserved OP encoding (funct7=0x20, funct3=1)");
      I.Op = RvOp::Sll;
      break;
    case 2:
      if (Alt)
        return fail(Word, "reserved OP encoding (funct7=0x20, funct3=2)");
      I.Op = RvOp::Slt;
      break;
    case 3:
      if (Alt)
        return fail(Word, "reserved OP encoding (funct7=0x20, funct3=3)");
      I.Op = RvOp::Sltu;
      break;
    case 4:
      if (Alt)
        return fail(Word, "reserved OP encoding (funct7=0x20, funct3=4)");
      I.Op = RvOp::Xor;
      break;
    case 5:
      I.Op = Alt ? RvOp::Sra : RvOp::Srl;
      break;
    case 6:
      if (Alt)
        return fail(Word, "reserved OP encoding (funct7=0x20, funct3=6)");
      I.Op = RvOp::Or;
      break;
    case 7:
      if (Alt)
        return fail(Word, "reserved OP encoding (funct7=0x20, funct3=7)");
      I.Op = RvOp::And;
      break;
    }
    I.Imm = 0;
    return I;
  }
  case 0x0F: // MISC-MEM
    if (F3 == 1)
      return fail(Word, "fence.i (Zifencei) is not in the RV32I subset");
    if (F3 != 0)
      return fail(Word, "reserved misc-mem funct3");
    // Any fm/pred/succ combination is an architectural no-op here: the
    // simulator is a single in-order memory agent.
    I.Op = RvOp::Fence;
    I.Rd = I.Rs1 = I.Rs2 = 0;
    I.Imm = 0;
    return I;
  case 0x73: // SYSTEM
    if (Word == 0x00000073u || Word == 0x00100073u) {
      I.Op = Word == 0x00000073u ? RvOp::Ecall : RvOp::Ebreak;
      I.Rd = I.Rs1 = I.Rs2 = 0;
      return I;
    }
    if (F3 != 0)
      return fail(Word, "CSR instructions (Zicsr) are not in the RV32I "
                        "subset");
    return fail(Word, "reserved SYSTEM encoding");
  default:
    return fail(Word, "unknown major opcode");
  }
}
