//===- frontend/ElfFile.cpp -----------------------------------------------==//

#include "frontend/ElfFile.h"

#include <algorithm>
#include <cstring>
#include <fstream>

using namespace og;

namespace {

// The only structure sizes the reader touches; fixed by the ELF32 spec.
constexpr size_t EhdrSize = 52;
constexpr size_t PhdrSize = 32;
constexpr size_t ShdrSize = 40;
constexpr size_t SymSize = 16;

constexpr uint32_t PT_LOAD = 1;
constexpr uint32_t SHT_SYMTAB = 2;

/// Bounds-checked little-endian field reads over the file image.
class Reader {
public:
  explicit Reader(const std::vector<uint8_t> &B) : B(B) {}

  bool inBounds(uint64_t Off, uint64_t Len) const {
    return Off + Len <= B.size() && Off + Len >= Off;
  }

  uint16_t u16(size_t Off) const {
    return static_cast<uint16_t>(B[Off] | (B[Off + 1] << 8));
  }

  uint32_t u32(size_t Off) const {
    return static_cast<uint32_t>(B[Off]) |
           (static_cast<uint32_t>(B[Off + 1]) << 8) |
           (static_cast<uint32_t>(B[Off + 2]) << 16) |
           (static_cast<uint32_t>(B[Off + 3]) << 24);
  }

private:
  const std::vector<uint8_t> &B;
};

Expected<ElfFile> bad(const std::string &What) {
  return makeError<ElfFile>("ELF: " + What);
}

} // namespace

Expected<ElfFile> ElfFile::parse(std::vector<uint8_t> Bytes) {
  const Reader R(Bytes);
  if (Bytes.size() < EhdrSize)
    return bad("file too small for an ELF32 header (" +
               std::to_string(Bytes.size()) + " bytes)");
  if (Bytes[0] != 0x7F || Bytes[1] != 'E' || Bytes[2] != 'L' ||
      Bytes[3] != 'F')
    return bad("bad magic (not an ELF file)");
  if (Bytes[4] != 1)
    return bad("not ELFCLASS32 (64-bit binaries are out of contract)");
  if (Bytes[5] != 1)
    return bad("not little-endian");
  if (Bytes[6] != 1)
    return bad("unknown ELF identification version");

  const uint16_t Type = R.u16(16);
  if (Type != 2)
    return bad("not ET_EXEC (only statically linked, position-dependent "
               "executables are supported)");
  const uint16_t Machine = R.u16(18);
  if (Machine != 243)
    return bad("machine is not EM_RISCV (e_machine=" +
               std::to_string(Machine) + ")");
  if (R.u32(20) != 1)
    return bad("unknown ELF version");

  ElfFile E;
  E.Entry = R.u32(24);

  const uint32_t Phoff = R.u32(28);
  const uint16_t Phentsize = R.u16(42);
  const uint16_t Phnum = R.u16(44);
  if (Phnum == 0)
    return bad("no program headers (nothing to load)");
  if (Phentsize != PhdrSize)
    return bad("unexpected program-header entry size " +
               std::to_string(Phentsize));
  if (!R.inBounds(Phoff, static_cast<uint64_t>(Phnum) * PhdrSize))
    return bad("program-header table extends past end of file");

  for (uint16_t I = 0; I < Phnum; ++I) {
    const size_t Off = Phoff + static_cast<size_t>(I) * PhdrSize;
    if (R.u32(Off) != PT_LOAD)
      continue;
    ElfSegment S;
    S.FileOffset = R.u32(Off + 4);
    S.Vaddr = R.u32(Off + 8);
    S.FileSize = R.u32(Off + 16);
    S.MemSize = R.u32(Off + 20);
    S.Flags = R.u32(Off + 24);
    if (S.FileSize > S.MemSize)
      return bad("segment filesz exceeds memsz");
    if (!R.inBounds(S.FileOffset, S.FileSize))
      return bad("segment file range extends past end of file");
    if (S.Vaddr + S.MemSize < S.Vaddr)
      return bad("segment address range wraps the 32-bit space");
    if (S.MemSize == 0)
      continue; // nothing to map
    E.Segments.push_back(S);
  }
  if (E.Segments.empty())
    return bad("no loadable (PT_LOAD) segments");

  std::sort(E.Segments.begin(), E.Segments.end(),
            [](const ElfSegment &A, const ElfSegment &B) {
              return A.Vaddr < B.Vaddr;
            });
  for (size_t I = 1; I < E.Segments.size(); ++I)
    if (E.Segments[I - 1].Vaddr + E.Segments[I - 1].MemSize >
        E.Segments[I].Vaddr)
      return bad("loadable segments overlap");

  bool EntryInExec = false;
  for (const ElfSegment &S : E.Segments)
    if (S.isExec() && E.Entry >= S.Vaddr && E.Entry < S.Vaddr + S.MemSize)
      EntryInExec = true;
  if (!EntryInExec)
    return bad("entry point is not inside an executable segment");

  // Section headers are optional; when present, pull the symbol table so
  // the lifter can seed function discovery and name what it finds.
  const uint32_t Shoff = R.u32(32);
  const uint16_t Shentsize = R.u16(46);
  const uint16_t Shnum = R.u16(48);
  if (Shoff != 0 && Shnum != 0) {
    if (Shentsize != ShdrSize)
      return bad("unexpected section-header entry size " +
                 std::to_string(Shentsize));
    if (!R.inBounds(Shoff, static_cast<uint64_t>(Shnum) * ShdrSize))
      return bad("section-header table extends past end of file");
    for (uint16_t I = 0; I < Shnum; ++I) {
      const size_t Off = Shoff + static_cast<size_t>(I) * ShdrSize;
      if (R.u32(Off + 4) != SHT_SYMTAB)
        continue;
      const uint32_t SymOff = R.u32(Off + 16);
      const uint32_t SymBytes = R.u32(Off + 20);
      const uint32_t StrIdx = R.u32(Off + 24);
      if (!R.inBounds(SymOff, SymBytes) || SymBytes % SymSize != 0)
        return bad("malformed symbol table");
      if (StrIdx >= Shnum)
        return bad("symbol table names a bad string-table section");
      const size_t StrShdr = Shoff + static_cast<size_t>(StrIdx) * ShdrSize;
      const uint32_t StrOff = R.u32(StrShdr + 16);
      const uint32_t StrBytes = R.u32(StrShdr + 20);
      if (!R.inBounds(StrOff, StrBytes))
        return bad("string table extends past end of file");
      for (uint32_t S = 0; S < SymBytes / SymSize; ++S) {
        const size_t SOff = SymOff + static_cast<size_t>(S) * SymSize;
        ElfSymbol Sym;
        const uint32_t NameOff = R.u32(SOff);
        Sym.Value = R.u32(SOff + 4);
        Sym.Size = R.u32(SOff + 8);
        Sym.Type = Bytes[SOff + 12] & 0xF;
        if (NameOff != 0) {
          if (NameOff >= StrBytes)
            return bad("symbol name offset outside string table");
          const char *Start =
              reinterpret_cast<const char *>(Bytes.data()) + StrOff + NameOff;
          const void *Nul = std::memchr(Start, 0, StrBytes - NameOff);
          if (!Nul)
            return bad("unterminated symbol name in string table");
          Sym.Name.assign(Start, static_cast<const char *>(Nul));
        }
        E.Symbols.push_back(std::move(Sym));
      }
    }
  }

  E.Bytes = std::move(Bytes);
  return E;
}

Expected<ElfFile> ElfFile::load(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return makeError<ElfFile>("cannot open '" + Path + "'");
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  Expected<ElfFile> E = parse(std::move(Bytes));
  if (!E)
    return makeError<ElfFile>(Path + ": " + E.error());
  return E;
}
