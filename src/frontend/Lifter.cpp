//===- frontend/Lifter.cpp ------------------------------------------------==//

#include "frontend/Lifter.h"

#include "asm/Assembler.h"
#include "frontend/Rv32Decoder.h"
#include "isa/Registers.h"
#include "program/Verifier.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

using namespace og;

namespace {

/// RV32 -> IR register map, role-preserving: ra/sp/gp keep their slots,
/// RV callee-saved registers land on IR callee-saved slots (s0/fp on FP,
/// s1..s6 on S0..S5) so a lifted program honors the IR callee-save ABI
/// exactly when the binary honors the RV one, and s7-s11 spill onto
/// caller-saved IR temps (sound: the analyses only *assume* preservation
/// of the IR callee-saved set). x4 (tp) maps nowhere: RegAT backs the
/// lifter's scratch register.
constexpr int8_t TpReg = 4;
constexpr Reg Scratch = RegAT;
constexpr int8_t RegMap[32] = {
    /*x0 zero*/ 31, /*x1 ra*/ 26, /*x2 sp*/ 30, /*x3 gp*/ 29,
    /*x4 tp*/ -1,   /*x5 t0*/ 1,  /*x6 t1*/ 2,  /*x7 t2*/ 3,
    /*x8 s0*/ 15,   /*x9 s1*/ 9,  /*x10 a0*/ 16, /*x11 a1*/ 17,
    /*x12 a2*/ 18,  /*x13 a3*/ 19, /*x14 a4*/ 20, /*x15 a5*/ 21,
    /*x16 a6*/ 22,  /*x17 a7*/ 23, /*x18 s2*/ 10, /*x19 s3*/ 11,
    /*x20 s4*/ 12,  /*x21 s5*/ 13, /*x22 s6*/ 14, /*x23 s7*/ 4,
    /*x24 s8*/ 5,   /*x25 s9*/ 6,  /*x26 s10*/ 7, /*x27 s11*/ 8,
    /*x28 t3*/ 24,  /*x29 t4*/ 25, /*x30 t5*/ 27, /*x31 t6*/ 0,
};

constexpr int64_t SyscallExit = 93; // RV Linux exit()
constexpr int64_t SyscallOut = 1;   // repurposed: print a0 to OUT

std::string hex(uint32_t A) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%x", A);
  return Buf;
}

Reg map(uint8_t X) { return static_cast<Reg>(RegMap[X & 31]); }

bool usesTp(const RvInst &I) {
  // Unused operand fields are zeroed by the decoder, so a simple field
  // check cannot false-positive.
  return I.Rd == TpReg || I.Rs1 == TpReg || I.Rs2 == TpReg;
}

/// The flat virtual-address image: every PT_LOAD segment copied to its
/// vaddr, zero-filled gaps, plus the executable ranges for fetches.
struct Image {
  uint32_t End = 0; // one past the highest mapped vaddr; base is DataBase
  std::vector<uint8_t> Bytes;
  std::vector<std::pair<uint32_t, uint32_t>> Exec; // [begin, end)

  bool isExecWord(uint32_t A) const {
    if (A % 4 != 0)
      return false;
    for (const auto &R : Exec)
      if (A >= R.first && A + 4 <= R.second)
        return true;
    return false;
  }

  uint32_t word(uint32_t A) const {
    const size_t Off = A - Program::DataBase;
    return static_cast<uint32_t>(Bytes[Off]) |
           (static_cast<uint32_t>(Bytes[Off + 1]) << 8) |
           (static_cast<uint32_t>(Bytes[Off + 2]) << 16) |
           (static_cast<uint32_t>(Bytes[Off + 3]) << 24);
  }
};

/// One discovered function: its leaders (block-start addresses) and the
/// set of scanned instruction addresses.
struct FuncWork {
  uint32_t Addr = 0;
  std::string Name;
  std::set<uint32_t> Leaders;
  std::set<uint32_t> Scanned;
  std::map<uint32_t, int32_t> BlockId;
};

class Lifter {
public:
  Lifter(const ElfFile &E, const LiftOptions &O) : E(E), O(O) {}

  Expected<LiftedProgram> run() {
    if (!buildImage() || !discoverAll())
      return makeError<LiftedProgram>("lift: " + Err);
    Program P;
    if (!emitAll(P))
      return makeError<LiftedProgram>("lift: " + Err);
    std::string Diag;
    if (!verifyProgram(P, &Diag))
      // Belt and braces: nothing above should be able to produce invalid
      // IR, but the input is untrusted and the Verifier is cheap.
      return makeError<LiftedProgram>("lift: produced invalid IR: " + Diag);
    LiftedProgram L;
    L.Prog = std::move(P);
    L.Stats = Stats;
    L.Stats.Functions = static_cast<uint32_t>(Funcs.size());
    return L;
  }

private:
  const ElfFile &E;
  const LiftOptions &O;
  Image Img;
  // A deque, not a vector: discover() holds a reference to its FuncWork
  // while a mid-walk `jal ra` appends a new function, and deque growth
  // never invalidates references to existing elements.
  std::deque<FuncWork> Funcs;
  std::map<uint32_t, int32_t> FuncIdByAddr;
  std::map<uint32_t, std::string> SymNameByAddr;
  std::set<std::string> UsedNames;
  std::vector<uint32_t> IndirectSites;
  LiftStats Stats;
  std::string Err;

  bool fail(const std::string &What) {
    Err = What;
    return false;
  }

  bool buildImage() {
    uint32_t End = 0;
    for (const ElfSegment &S : E.segments()) {
      if (S.Vaddr < Program::DataBase)
        return fail("segment at " + hex(S.Vaddr) +
                    " loads below the data base " +
                    hex(static_cast<uint32_t>(Program::DataBase)) +
                    " (link the binary at or above it)");
      End = std::max(End, S.Vaddr + S.MemSize);
    }
    if (End - Program::DataBase > O.MaxImageBytes)
      return fail("memory image is " +
                  std::to_string(End - Program::DataBase) +
                  " bytes (cap " + std::to_string(O.MaxImageBytes) + ")");
    Img.End = End;
    Img.Bytes.assign(End - Program::DataBase, 0);
    for (const ElfSegment &S : E.segments()) {
      std::copy(E.segmentBytes(S), E.segmentBytes(S) + S.FileSize,
                Img.Bytes.begin() + (S.Vaddr - Program::DataBase));
      if (S.isExec())
        Img.Exec.emplace_back(S.Vaddr, S.Vaddr + S.MemSize);
    }
    return true;
  }

  /// A symbol name the assembler can round-trip; anything else falls
  /// back to the address-derived name.
  static bool isCleanName(const std::string &N) {
    if (N.empty())
      return false;
    for (char C : N)
      if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
            C == '.' || C == '$'))
        return false;
    return true;
  }

  std::string functionName(uint32_t Addr) {
    std::string Name;
    auto It = SymNameByAddr.find(Addr);
    if (It != SymNameByAddr.end() && isCleanName(It->second))
      Name = It->second;
    else
      Name = "fn_" + hex(Addr);
    if (!UsedNames.insert(Name).second) {
      Name += "_" + hex(Addr);
      UsedNames.insert(Name);
    }
    return Name;
  }

  /// Registers \p Addr as a function (idempotent). Returns false only on
  /// a hard error (bad address, cap exceeded).
  bool addFunction(uint32_t Addr) {
    if (FuncIdByAddr.count(Addr))
      return true;
    if (!Img.isExecWord(Addr))
      return fail("function address " + hex(Addr) +
                  " is not 4-aligned executable code");
    if (Funcs.size() >= O.MaxFunctions)
      return fail("more than " + std::to_string(O.MaxFunctions) +
                  " functions discovered");
    FuncWork F;
    F.Addr = Addr;
    F.Name = functionName(Addr);
    FuncIdByAddr[Addr] = static_cast<int32_t>(Funcs.size());
    Funcs.push_back(std::move(F));
    return true;
  }

  bool addLeader(FuncWork &F, uint32_t Addr, std::vector<uint32_t> &Work) {
    if (F.Leaders.insert(Addr).second) {
      if (F.Leaders.size() > O.MaxBlocksPerFunction)
        return fail("function " + F.Name + " exceeds " +
                    std::to_string(O.MaxBlocksPerFunction) + " blocks");
      Work.push_back(Addr);
    }
    return true;
  }

  bool discoverAll() {
    // The entry must be function 0 (Program::EntryFunc stays 0), then
    // named functions in address order so the lifted program's layout is
    // deterministic and readable.
    for (const ElfSymbol &S : E.symbols())
      if (S.isFunc() && isCleanName(S.Name) && !SymNameByAddr.count(S.Value))
        SymNameByAddr[S.Value] = S.Name;
    if (!addFunction(E.entry()))
      return false;
    for (const auto &Sym : SymNameByAddr)
      if (Img.isExecWord(Sym.first) && !addFunction(Sym.first))
        return false;
    // Index loop: `jal ra` targets append while we iterate.
    for (size_t I = 0; I < Funcs.size(); ++I)
      if (!discover(Funcs[I]))
        return false;
    if (!IndirectSites.empty()) {
      std::string Sites;
      for (size_t I = 0; I < IndirectSites.size() && I < 4; ++I)
        Sites += (I ? ", " : "") + hex(IndirectSites[I]);
      if (IndirectSites.size() > 4)
        Sites += ", ...";
      return fail("bailed out: " + std::to_string(IndirectSites.size()) +
                  " indirect jump(s) (jalr through a register) at " + Sites +
                  " — computed control flow is outside the lifting "
                  "contract");
    }
    return true;
  }

  /// Recursive-traversal CFG discovery over direct edges: walks every
  /// path from the function entry, collecting leaders and the scanned
  /// instruction set. Calls seed new functions; indirect jumps are
  /// recorded for the counted bail-out.
  bool discover(FuncWork &F) {
    std::vector<uint32_t> Work{F.Addr};
    F.Leaders.insert(F.Addr);
    while (!Work.empty()) {
      uint32_t A = Work.back();
      Work.pop_back();
      bool Walking = true;
      while (Walking) {
        if (F.Scanned.count(A))
          break; // joined an already-scanned path (a leader by construction)
        if (F.Scanned.size() >= O.MaxInstsPerFunction)
          return fail("function " + F.Name + " exceeds " +
                      std::to_string(O.MaxInstsPerFunction) +
                      " instructions");
        if (!Img.isExecWord(A))
          return fail("control flow in " + F.Name +
                      " reaches non-executable address " + hex(A));
        Expected<RvInst> IOr = decodeRv32(Img.word(A));
        if (!IOr)
          return fail("in " + F.Name + " at " + hex(A) + ": " + IOr.error());
        const RvInst &I = *IOr;
        if (usesTp(I))
          return fail("in " + F.Name + " at " + hex(A) + ": " + rvInstStr(I) +
                      " uses x4 (tp), which is reserved by the lifter");
        F.Scanned.insert(A);
        ++Stats.Instructions;
        switch (I.Op) {
        case RvOp::Beq:
        case RvOp::Bne:
        case RvOp::Blt:
        case RvOp::Bge:
        case RvOp::Bltu:
        case RvOp::Bgeu:
          if (!addLeader(F, A + static_cast<uint32_t>(I.Imm), Work) ||
              !addLeader(F, A + 4, Work))
            return false;
          Walking = false;
          break;
        case RvOp::Jal: {
          const uint32_t Target = A + static_cast<uint32_t>(I.Imm);
          if (I.Rd == 0) { // plain jump: an intra-function edge
            if (!addLeader(F, Target, Work))
              return false;
            Walking = false;
            break;
          }
          if (I.Rd != 1)
            return fail("in " + F.Name + " at " + hex(A) + ": " +
                        rvInstStr(I) +
                        " links a register other than x1/ra");
          if (!addFunction(Target)) // call; the walk continues behind it
            return false;
          A += 4;
          break;
        }
        case RvOp::Jalr:
          if (I.Rd == 0 && I.Rs1 == 1 && I.Imm == 0) { // ret
            Walking = false;
            break;
          }
          IndirectSites.push_back(A);
          Walking = false;
          break;
        case RvOp::Ecall:
          // Expands to a runtime dispatch; the continuation starts a
          // fresh block. An ecall as the final text word has no
          // continuation (the print path halts instead) — legal, since
          // an exit syscall there never returns.
          if (Img.isExecWord(A + 4) && !addLeader(F, A + 4, Work))
            return false;
          Walking = false;
          break;
        case RvOp::Ebreak:
          Walking = false;
          break;
        default:
          A += 4;
          break;
        }
      }
    }
    return true;
  }

  // --- Emission ---------------------------------------------------------

  void emitInst(std::vector<Instruction> &Out, const RvInst &I, uint32_t A) {
    const Reg Rd = map(I.Rd), Rs1 = map(I.Rs1), Rs2 = map(I.Rs2);
    const int64_t Imm = I.Imm;
    switch (I.Op) {
    case RvOp::Lui:
      Out.push_back(Instruction::ldi(Rd, Imm));
      break;
    case RvOp::Auipc:
      // The lifter knows the static PC, so auipc folds to a constant.
      Out.push_back(Instruction::ldi(
          Rd, static_cast<int32_t>(A + static_cast<uint32_t>(I.Imm))));
      break;
    case RvOp::Addi:
      Out.push_back(Instruction::aluImm(Op::Add, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Slti:
      Out.push_back(Instruction::aluImm(Op::CmpLt, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Sltiu:
      Out.push_back(Instruction::aluImm(Op::CmpUlt, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Xori:
      Out.push_back(Instruction::aluImm(Op::Xor, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Ori:
      Out.push_back(Instruction::aluImm(Op::Or, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Andi:
      Out.push_back(Instruction::aluImm(Op::And, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Slli:
      Out.push_back(Instruction::aluImm(Op::Sll, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Srli:
      Out.push_back(Instruction::aluImm(Op::Srl, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Srai:
      Out.push_back(Instruction::aluImm(Op::Sra, Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Sll:
    case RvOp::Srl:
    case RvOp::Sra: {
      // IR shifts take the amount mod 64; RV32 masks to 5 bits.
      Out.push_back(
          Instruction::aluImm(Op::And, Width::W, Scratch, Rs2, 31));
      const Op ShOp = I.Op == RvOp::Sll   ? Op::Sll
                      : I.Op == RvOp::Srl ? Op::Srl
                                          : Op::Sra;
      Out.push_back(Instruction::alu(ShOp, Width::W, Rd, Rs1, Scratch));
      break;
    }
    case RvOp::Add:
      Out.push_back(Instruction::alu(Op::Add, Width::W, Rd, Rs1, Rs2));
      break;
    case RvOp::Sub:
      Out.push_back(Instruction::alu(Op::Sub, Width::W, Rd, Rs1, Rs2));
      break;
    case RvOp::Slt:
      Out.push_back(Instruction::alu(Op::CmpLt, Width::W, Rd, Rs1, Rs2));
      break;
    case RvOp::Sltu:
      Out.push_back(Instruction::alu(Op::CmpUlt, Width::W, Rd, Rs1, Rs2));
      break;
    case RvOp::Xor:
      Out.push_back(Instruction::alu(Op::Xor, Width::W, Rd, Rs1, Rs2));
      break;
    case RvOp::Or:
      Out.push_back(Instruction::alu(Op::Or, Width::W, Rd, Rs1, Rs2));
      break;
    case RvOp::And:
      Out.push_back(Instruction::alu(Op::And, Width::W, Rd, Rs1, Rs2));
      break;
    case RvOp::Lb:
      // IR narrow loads zero-extend (Alpha LDBU); RV lb/lh sign-extend.
      Out.push_back(Instruction::load(Width::B, Rd, Rs1, Imm));
      Out.push_back(Instruction::sext(Width::B, Rd, Rd));
      break;
    case RvOp::Lh:
      Out.push_back(Instruction::load(Width::H, Rd, Rs1, Imm));
      Out.push_back(Instruction::sext(Width::H, Rd, Rd));
      break;
    case RvOp::Lw:
      Out.push_back(Instruction::load(Width::W, Rd, Rs1, Imm));
      break;
    case RvOp::Lbu:
      Out.push_back(Instruction::load(Width::B, Rd, Rs1, Imm));
      break;
    case RvOp::Lhu:
      Out.push_back(Instruction::load(Width::H, Rd, Rs1, Imm));
      break;
    case RvOp::Sb:
      Out.push_back(Instruction::store(Width::B, Rs2, Rs1, Imm));
      break;
    case RvOp::Sh:
      Out.push_back(Instruction::store(Width::H, Rs2, Rs1, Imm));
      break;
    case RvOp::Sw:
      Out.push_back(Instruction::store(Width::W, Rs2, Rs1, Imm));
      break;
    case RvOp::Jal: { // call (rd==ra); plain jumps are terminators
      Instruction Call = Instruction::jsr(
          FuncIdByAddr.at(A + static_cast<uint32_t>(I.Imm)));
      Out.push_back(Call);
      break;
    }
    case RvOp::Fence:
      Out.push_back(Instruction::nop());
      break;
    default:
      break; // terminators are emitted by the block walker
    }
  }

  /// Emits the conditional branch ending a block, special-casing
  /// comparisons against x0 onto the IR's test-one-register branches.
  void emitBranch(BasicBlock &BB, const RvInst &I, int32_t Taken,
                  int32_t Fall) {
    const Reg R1 = map(I.Rs1), R2 = map(I.Rs2);
    const bool Z1 = R1 == RegZero, Z2 = R2 == RegZero;
    Op Cond = Op::Beq;
    Reg Test = R1;
    bool Direct = true;
    switch (I.Op) {
    case RvOp::Beq:
      if (Z2) {
        Cond = Op::Beq;
      } else if (Z1) {
        Cond = Op::Beq;
        Test = R2;
      } else {
        Direct = false;
        BB.Insts.push_back(
            Instruction::alu(Op::CmpEq, Width::W, Scratch, R1, R2));
        Cond = Op::Bne;
      }
      break;
    case RvOp::Bne:
      if (Z2) {
        Cond = Op::Bne;
      } else if (Z1) {
        Cond = Op::Bne;
        Test = R2;
      } else {
        Direct = false;
        BB.Insts.push_back(
            Instruction::alu(Op::CmpEq, Width::W, Scratch, R1, R2));
        Cond = Op::Beq;
      }
      break;
    case RvOp::Blt:
      if (Z2) {
        Cond = Op::Blt;
      } else if (Z1) {
        Cond = Op::Bgt; // 0 < r2  <=>  r2 > 0
        Test = R2;
      } else {
        Direct = false;
        BB.Insts.push_back(
            Instruction::alu(Op::CmpLt, Width::W, Scratch, R1, R2));
        Cond = Op::Bne;
      }
      break;
    case RvOp::Bge:
      if (Z2) {
        Cond = Op::Bge;
      } else if (Z1) {
        Cond = Op::Ble; // 0 >= r2  <=>  r2 <= 0
        Test = R2;
      } else {
        Direct = false;
        BB.Insts.push_back(
            Instruction::alu(Op::CmpLt, Width::W, Scratch, R1, R2));
        Cond = Op::Beq;
      }
      break;
    case RvOp::Bltu:
      if (Z2) { // unsigned < 0: never taken
        BB.Insts.push_back(Instruction::br(Fall));
        return;
      }
      if (Z1) {
        Cond = Op::Bne; // 0 <u r2  <=>  r2 != 0
        Test = R2;
      } else {
        Direct = false;
        BB.Insts.push_back(
            Instruction::alu(Op::CmpUlt, Width::W, Scratch, R1, R2));
        Cond = Op::Bne;
      }
      break;
    case RvOp::Bgeu:
      if (Z2) { // unsigned >= 0: always taken
        BB.Insts.push_back(Instruction::br(Taken));
        return;
      }
      if (Z1) {
        Cond = Op::Beq; // 0 >=u r2  <=>  r2 == 0
        Test = R2;
      } else {
        Direct = false;
        BB.Insts.push_back(
            Instruction::alu(Op::CmpUlt, Width::W, Scratch, R1, R2));
        Cond = Op::Beq;
      }
      break;
    default:
      break;
    }
    if (!Direct)
      Test = Scratch;
    BB.Insts.push_back(Instruction::condBr(Cond, Test, Taken));
    BB.FallthroughSucc = Fall;
  }

  /// Appends the ecall dispatch: three synthetic blocks implementing
  ///   if (a7 == 93) halt; else if (a7 == 1) { out a0; continue; } halt;
  /// Cont < 0 means the ecall has no continuation (final text word);
  /// the print path then halts too.
  void emitEcall(Function &Fn, int32_t CurId, uint32_t A, int32_t Cont) {
    const Reg A0 = map(10), A7 = map(17);
    const int32_t Chk = static_cast<int32_t>(Fn.Blocks.size());
    const int32_t Prt = Chk + 1;
    const int32_t Hlt = Chk + 2;
    const std::string L = "L" + hex(A).substr(2);
    for (int K = 0; K < 3; ++K)
      Fn.Blocks.push_back(BasicBlock());
    Fn.Blocks[Chk].Label = L + "$sys";
    Fn.Blocks[Prt].Label = L + "$out";
    Fn.Blocks[Hlt].Label = L + "$halt";

    BasicBlock &Cur = Fn.Blocks[CurId];
    Cur.Insts.push_back(
        Instruction::aluImm(Op::CmpEq, Width::W, Scratch, A7, SyscallExit));
    Cur.Insts.push_back(Instruction::condBr(Op::Bne, Scratch, Hlt));
    Cur.FallthroughSucc = Chk;

    BasicBlock &C = Fn.Blocks[Chk];
    C.Insts.push_back(
        Instruction::aluImm(Op::CmpEq, Width::W, Scratch, A7, SyscallOut));
    C.Insts.push_back(Instruction::condBr(Op::Beq, Scratch, Hlt));
    C.FallthroughSucc = Prt;

    BasicBlock &Pr = Fn.Blocks[Prt];
    Pr.Insts.push_back(Instruction::out(A0));
    Pr.Insts.push_back(Cont < 0 ? Instruction::halt()
                                : Instruction::br(Cont));

    Fn.Blocks[Hlt].Insts.push_back(Instruction::halt());
  }

  bool emitAll(Program &P) {
    P.EntryFunc = 0;
    P.Data = Img.Bytes;
    for (FuncWork &F : Funcs) {
      Function Fn;
      Fn.Id = static_cast<int32_t>(P.Funcs.size());
      Fn.Name = F.Name;
      Fn.EntryBlock = 0;
      // Entry leader first (block 0), the rest in address order. Every
      // block ends in an explicit terminator, so ordering is free.
      std::vector<uint32_t> Order{F.Addr};
      for (uint32_t L : F.Leaders)
        if (L != F.Addr)
          Order.push_back(L);
      for (size_t I = 0; I < Order.size(); ++I) {
        F.BlockId[Order[I]] = static_cast<int32_t>(I);
        BasicBlock BB;
        BB.Label = "L" + hex(Order[I]).substr(2);
        Fn.Blocks.push_back(std::move(BB));
      }
      for (size_t I = 0; I < Order.size(); ++I)
        if (!emitBlock(Fn, F, static_cast<int32_t>(I), Order[I]))
          return false;
      for (size_t I = 0; I < Fn.Blocks.size(); ++I) {
        Fn.Blocks[I].Id = static_cast<int32_t>(I);
        Stats.IrInstructions +=
            static_cast<uint32_t>(Fn.Blocks[I].Insts.size());
      }
      Stats.Blocks += static_cast<uint32_t>(Fn.Blocks.size());
      P.Funcs.push_back(std::move(Fn));
    }
    return true;
  }

  bool emitBlock(Function &Fn, FuncWork &F, int32_t Id, uint32_t Leader) {
    uint32_t A = Leader;
    while (true) {
      const RvInst I = *decodeRv32(Img.word(A)); // validated in discovery
      switch (I.Op) {
      case RvOp::Beq:
      case RvOp::Bne:
      case RvOp::Blt:
      case RvOp::Bge:
      case RvOp::Bltu:
      case RvOp::Bgeu:
        emitBranch(Fn.Blocks[Id], I,
                   F.BlockId.at(A + static_cast<uint32_t>(I.Imm)),
                   F.BlockId.at(A + 4));
        return true;
      case RvOp::Jal:
        if (I.Rd == 0) {
          Fn.Blocks[Id].Insts.push_back(Instruction::br(
              F.BlockId.at(A + static_cast<uint32_t>(I.Imm))));
          return true;
        }
        emitInst(Fn.Blocks[Id].Insts, I, A); // call; block continues
        break;
      case RvOp::Jalr: // only ret survives discovery
        Fn.Blocks[Id].Insts.push_back(Instruction::ret());
        return true;
      case RvOp::Ebreak:
        Fn.Blocks[Id].Insts.push_back(Instruction::halt());
        return true;
      case RvOp::Ecall: {
        const auto Next = F.BlockId.find(A + 4);
        emitEcall(Fn, Id, A, Next == F.BlockId.end() ? -1 : Next->second);
        return true;
      }
      default:
        emitInst(Fn.Blocks[Id].Insts, I, A);
        break;
      }
      A += 4;
      if (F.Leaders.count(A)) { // fell into the next block: explicit edge
        Fn.Blocks[Id].Insts.push_back(Instruction::br(F.BlockId.at(A)));
        return true;
      }
    }
  }
};

} // namespace

Expected<LiftedProgram> og::liftElf(const ElfFile &E, const LiftOptions &O) {
  return Lifter(E, O).run();
}

Expected<LiftedProgram> og::liftElfFile(const std::string &Path,
                                        const LiftOptions &O) {
  Expected<ElfFile> E = ElfFile::load(Path);
  if (!E)
    return makeError<LiftedProgram>(E.error());
  Expected<LiftedProgram> L = liftElf(*E, O);
  if (!L)
    return makeError<LiftedProgram>(Path + ": " + L.error());
  return L;
}

Expected<Program> og::loadProgramInput(const std::string &PathOrSpec) {
  std::string Path = PathOrSpec;
  bool ForceElf = false;
  if (Path.rfind("elf:", 0) == 0) {
    Path = Path.substr(4);
    ForceElf = true;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return makeError<Program>("cannot open '" + Path + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  const std::string Bytes = Buffer.str();
  const bool Magic = Bytes.size() >= 4 && Bytes[0] == 0x7F &&
                     Bytes[1] == 'E' && Bytes[2] == 'L' && Bytes[3] == 'F';
  if (ForceElf || Magic) {
    std::vector<uint8_t> Raw(Bytes.begin(), Bytes.end());
    Expected<ElfFile> E = ElfFile::parse(std::move(Raw));
    if (!E)
      return makeError<Program>(Path + ": " + E.error());
    Expected<LiftedProgram> L = liftElf(*E);
    if (!L)
      return makeError<Program>(Path + ": " + L.error());
    return std::move(L->Prog);
  }
  Expected<Program> P = assembleProgram(Bytes);
  if (!P)
    return makeError<Program>(Path + ": " + P.error());
  return P;
}
