//===- uarch/Core.cpp -----------------------------------------------------==//

#include "uarch/Core.h"

#include <algorithm>

using namespace og;

ActivitySink::~ActivitySink() = default;

const char *og::structureName(Structure S) {
  switch (S) {
  case Structure::Rename:
    return "Rename";
  case Structure::BPred:
    return "Branch Predictor";
  case Structure::IQueue:
    return "Instruction Queue";
  case Structure::Rob:
    return "ROB";
  case Structure::RenameBufs:
    return "Rename Buffers";
  case Structure::Lsq:
    return "LSQ";
  case Structure::RegFile:
    return "Register File";
  case Structure::ICache:
    return "I-cache";
  case Structure::DCacheL1:
    return "D-cache (L1)";
  case Structure::DCacheL2:
    return "D-cache (L2)";
  case Structure::IntAlu:
    return "ALU";
  case Structure::ResultBus:
    return "Result Bus";
  }
  return "?";
}

OooCore::OooCore(const UarchConfig &Config, ActivitySink *Sink)
    : Cfg(Config), Sink(Sink), BPred(Config),
      L1I(Config.L1ISizeKB, Config.L1IAssoc, Config.L1ILine),
      L1D(Config.L1DSizeKB, Config.L1DAssoc, Config.L1DLine),
      L2(Config.L2SizeKB, Config.L2Assoc, Config.L2Line),
      FetchSlots(Config.FetchWidth), RenameSlots(Config.DecodeWidth),
      RetireSlots(Config.RetireWidth), AluUnits(Config.NumIntAlu),
      MulUnits(Config.NumIntMul), MemPortSlots(Config.MemPorts),
      RegReady(NumRegs, 0), RobRetire(Config.MaxInFlight, 0) {}

unsigned OooCore::memLatency(uint64_t Addr) {
  ++Stats.DL1Accesses;
  emitFixed(Structure::DCacheL1);
  if (L1D.access(Addr))
    return Cfg.L1DHit;
  ++Stats.DL1Misses;
  emitMiss(Structure::DCacheL1);
  ++Stats.L2Accesses;
  emitFixed(Structure::DCacheL2);
  if (L2.access(Addr))
    return Cfg.L1DHit + Cfg.L1MissToL2 + Cfg.L2Hit;
  ++Stats.L2Misses;
  emitMiss(Structure::DCacheL2);
  unsigned Chunks = (Cfg.L2Line + Cfg.MemChunkBytes - 1) / Cfg.MemChunkBytes;
  unsigned MemLat = Cfg.MemFirstChunk + (Chunks - 1) * Cfg.MemInterChunk;
  return Cfg.L1DHit + Cfg.L1MissToL2 + Cfg.L2Hit + MemLat;
}

void OooCore::onInst(const DynInst &D) {
  const Instruction &I = *D.I;
  const OpInfo &Info = I.info();
  ++Stats.Insts;

  // ---- Fetch: bandwidth, I-cache lines, redirect stalls.
  uint64_t FetchCycle = FetchSlots.schedule(FetchAvail);
  uint64_t Line = D.Pc / Cfg.L1ILine;
  if (Line != LastFetchLine) {
    LastFetchLine = Line;
    ++Stats.FetchGroups;
    emitFixed(Structure::ICache);
    emitFixed(Structure::BPred); // next-fetch-address lookup per group
    if (!L1I.access(D.Pc)) {
      ++Stats.ICacheMisses;
      emitMiss(Structure::ICache);
      ++Stats.L2Accesses;
      emitFixed(Structure::DCacheL2);
      unsigned Extra = Cfg.L1MissToL2;
      if (!L2.access(D.Pc)) {
        ++Stats.L2Misses;
        emitMiss(Structure::DCacheL2);
        unsigned Chunks =
            (Cfg.L2Line + Cfg.MemChunkBytes - 1) / Cfg.MemChunkBytes;
        Extra += Cfg.L2Hit + Cfg.MemFirstChunk +
                 (Chunks - 1) * Cfg.MemInterChunk;
      } else {
        Extra += Cfg.L2Hit;
      }
      FetchAvail = std::max(FetchAvail, FetchCycle + Extra);
    }
    // Next-line instruction prefetch on every line crossing: sequential
    // code streams without paying a demand miss per line (charged no
    // latency; the stats below count demand accesses only).
    L1I.access(D.Pc + Cfg.L1ILine);
    L2.access(D.Pc + Cfg.L1ILine);
  }

  // ---- Rename/dispatch: bandwidth + window occupancy.
  uint64_t WindowFree = RobRetire[RobHead]; // slot of inst i-MaxInFlight
  uint64_t RenameCycle = RenameSlots.schedule(
      std::max(FetchCycle + Cfg.FrontendDepth, WindowFree));
  emitFixed(Structure::Rename);
  emitFixed(Structure::Rob);
  // Dispatch captures source operands into the queue.
  for (unsigned S = 0; S < D.NumSrcs; ++S)
    emitData(Structure::IQueue, D.SrcVals[S], I.W);
  if (D.NumSrcs == 0)
    emitFixed(Structure::IQueue);

  // ---- Issue: operand readiness + unit availability.
  uint64_t Ready = RenameCycle + 1;
  for (unsigned S = 0; S < D.NumSrcs; ++S) {
    Reg R = I.regSource(S);
    Ready = std::max(Ready, RegReady[R]);
    emitData(Structure::RegFile, D.SrcVals[S], I.W);
  }

  uint64_t IssueCycle = Ready;
  uint64_t Complete = Ready;
  switch (Info.Unit) {
  case ExecUnit::IntMul:
    IssueCycle = MulUnits.schedule(Ready);
    Complete = IssueCycle + Cfg.MulLatency;
    emitData(Structure::IntAlu, D.Result, I.W);
    break;
  case ExecUnit::LoadPort: {
    IssueCycle = MemPortSlots.schedule(std::max(Ready, LastStoreIssue));
    emitFixed(Structure::Lsq);
    unsigned Lat = memLatency(D.MemAddr);
    Complete = IssueCycle + Lat;
    emitData(Structure::DCacheL1, D.Result, I.W);
    break;
  }
  case ExecUnit::StorePort: {
    IssueCycle = MemPortSlots.schedule(Ready);
    LastStoreIssue = std::max(LastStoreIssue, IssueCycle);
    emitFixed(Structure::Lsq);
    emitData(Structure::Lsq, D.Result, I.W); // data payload into the queue
    // The cache write happens at retire; latency charged there is 1.
    unsigned Lat = memLatency(D.MemAddr);
    (void)Lat; // stores complete into the LSQ; the line fill still happens
    emitData(Structure::DCacheL1, D.Result, I.W);
    Complete = IssueCycle + 1;
    break;
  }
  case ExecUnit::IntAlu:
    IssueCycle = AluUnits.schedule(Ready);
    Complete = IssueCycle + Info.LatencyCycles;
    if (D.WroteDest)
      emitData(Structure::IntAlu, D.Result, I.W);
    else
      emitFixed(Structure::IntAlu);
    break;
  case ExecUnit::None:
    IssueCycle = Ready;
    Complete = Ready;
    break;
  }

  if (D.WroteDest && I.Rd != RegZero) {
    RegReady[I.Rd] = Complete;
    emitData(Structure::RenameBufs, D.Result, I.W);
    emitData(Structure::ResultBus, D.Result, I.W);
    emitData(Structure::RegFile, D.Result, I.W); // retirement write
  }

  // ---- Control flow.
  if (D.IsBranch) {
    ++Stats.Branches;
    emitFixed(Structure::BPred);
    bool Correct = BPred.predictAndUpdate(D.Pc, D.Taken);
    if (!Correct) {
      ++Stats.Mispredicts;
      FetchAvail = std::max(FetchAvail, Complete + Cfg.MispredictPenalty);
      LastFetchLine = ~uint64_t(0);
    }
  } else if (D.NextPc != D.SeqPc) {
    // Taken jumps/calls/returns break the fetch line.
    LastFetchLine = ~uint64_t(0);
  }

  // ---- Retire: in order, bounded width.
  uint64_t RetireCycle =
      RetireSlots.schedule(std::max(Complete + 1, PrevRetire));
  PrevRetire = RetireCycle;
  emitFixed(Structure::Rob);
  RobRetire[RobHead] = RetireCycle;
  RobHead = (RobHead + 1) % RobRetire.size();
  LastCycle = std::max(LastCycle, RetireCycle);
}

void OooCore::onBatch(const DynInst *Batch, size_t N) {
  for (size_t I = 0; I < N; ++I)
    onInst(Batch[I]);
}

void OooCore::warmOnly(const DynInst *Batch, size_t N) {
  for (size_t I = 0; I < N; ++I) {
    const DynInst &D = Batch[I];
    // Mirror onInst's structure-state evolution — I-side line behavior
    // (demand fill through L2 plus the next-line prefetch), D-side
    // demand path, branch predictor — without scheduling, statistics, or
    // energy, so a detail window opens on the state a detailed run would
    // have had.
    uint64_t Line = D.Pc / Cfg.L1ILine;
    if (Line != LastFetchLine) {
      LastFetchLine = Line;
      if (!L1I.access(D.Pc))
        L2.access(D.Pc);
      L1I.access(D.Pc + Cfg.L1ILine);
      L2.access(D.Pc + Cfg.L1ILine);
    }
    if (D.IsMem) {
      if (!L1D.access(D.MemAddr))
        L2.access(D.MemAddr);
    }
    if (D.IsBranch) {
      if (!BPred.predictAndUpdate(D.Pc, D.Taken))
        LastFetchLine = ~uint64_t(0);
    } else if (D.NextPc != D.SeqPc) {
      LastFetchLine = ~uint64_t(0);
    }
  }
}

UarchStats OooCore::finish() {
  Stats = snapshot();
  return Stats;
}
