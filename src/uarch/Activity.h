//===- uarch/Activity.h - Structure activity interface -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The processor structures whose activity the power model accounts
/// (the rows of paper Figures 3/9/14), and the sink interface through
/// which the timing core reports accesses. Data-carrying accesses pass
/// the value and the opcode width so the power layer can apply any
/// operand-gating scheme (software opcode widths, hardware significance
/// or size tags, or the combination).
///
//===----------------------------------------------------------------------===//

#ifndef OG_UARCH_ACTIVITY_H
#define OG_UARCH_ACTIVITY_H

#include "isa/Width.h"

#include <cstdint>

namespace og {

/// Processor structures, in the paper's Figure 9 order.
enum class Structure : uint8_t {
  Rename,
  BPred,
  IQueue,
  Rob,
  RenameBufs,
  Lsq,
  RegFile,
  ICache,
  DCacheL1,
  DCacheL2,
  IntAlu,
  ResultBus,
};
constexpr unsigned NumStructures = 12;

/// Display name ("Rename", "Instruction Queue", ...).
const char *structureName(Structure S);

/// Receiver of activity events from the timing core.
class ActivitySink {
public:
  virtual ~ActivitySink();

  /// A fixed-energy access (no data payload: tags, predictor arrays,
  /// address paths, instruction fetch).
  virtual void access(Structure S) = 0;

  /// A data-carrying access moving \p Value under opcode width
  /// \p OpcodeW; the power model decides how many byte lanes switch.
  virtual void dataAccess(Structure S, int64_t Value, Width OpcodeW) = 0;

  /// An extra fixed cost (cache miss handling, line fills).
  virtual void missPenalty(Structure S) = 0;
};

} // namespace og

#endif // OG_UARCH_ACTIVITY_H
