//===- uarch/BranchPredictor.cpp ------------------------------------------==//

#include "uarch/BranchPredictor.h"

#include <cassert>
#include <cstddef>

using namespace og;

namespace {

void bump(uint8_t &Counter, bool Up) {
  if (Up && Counter < 3)
    ++Counter;
  else if (!Up && Counter > 0)
    --Counter;
}

} // namespace

BranchPredictor::BranchPredictor(const UarchConfig &C)
    : Gshare(C.GshareEntries, 1), Bimodal(C.BimodalEntries, 1),
      Chooser(C.ChooserEntries, 2),
      HistoryMask((uint64_t(1) << C.GlobalHistoryBits) - 1) {}

unsigned BranchPredictor::gshareIndex(uint64_t Pc) const {
  return static_cast<unsigned>(((Pc >> 2) ^ History) % Gshare.size());
}

bool BranchPredictor::predict(uint64_t Pc) const {
  bool G = Gshare[gshareIndex(Pc)] >= 2;
  bool B = Bimodal[(Pc >> 2) % Bimodal.size()] >= 2;
  bool UseGshare = Chooser[(Pc >> 2) % Chooser.size()] >= 2;
  return UseGshare ? G : B;
}

void BranchPredictor::update(uint64_t Pc, bool Taken) {
  unsigned GIdx = gshareIndex(Pc);
  size_t BIdx = (Pc >> 2) % Bimodal.size();
  size_t CIdx = (Pc >> 2) % Chooser.size();
  bool G = Gshare[GIdx] >= 2;
  bool B = Bimodal[BIdx] >= 2;
  // The chooser trains toward the component that was right (when they
  // disagree).
  if (G != B)
    bump(Chooser[CIdx], G == Taken);
  bump(Gshare[GIdx], Taken);
  bump(Bimodal[BIdx], Taken);
  History = ((History << 1) | (Taken ? 1 : 0)) & HistoryMask;
}

bool BranchPredictor::predictAndUpdate(uint64_t Pc, bool Taken) {
  ++Lookups;
  bool Predicted = predict(Pc);
  if (Predicted != Taken)
    ++Mispredicts;
  update(Pc, Taken);
  return Predicted == Taken;
}

BranchPredictor::WarmState BranchPredictor::warmState() const {
  return {Gshare, Bimodal, Chooser, History};
}

void BranchPredictor::restoreWarmState(const WarmState &S) {
  assert(S.Gshare.size() == Gshare.size() &&
         S.Bimodal.size() == Bimodal.size() &&
         S.Chooser.size() == Chooser.size() &&
         "warm state captured from a different predictor geometry");
  Gshare = S.Gshare;
  Bimodal = S.Bimodal;
  Chooser = S.Chooser;
  History = S.History;
}
