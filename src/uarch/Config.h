//===- uarch/Config.h - Table 2 machine parameters ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The out-of-order machine of paper Table 2. Defaults reproduce the
/// paper's configuration; tests shrink structures to provoke behavior.
///
//===----------------------------------------------------------------------===//

#ifndef OG_UARCH_CONFIG_H
#define OG_UARCH_CONFIG_H

#include "support/Hash.h"

namespace og {

struct UarchConfig {
  // Front end.
  unsigned FetchWidth = 4;
  unsigned DecodeWidth = 4;
  unsigned RetireWidth = 4;
  unsigned FrontendDepth = 3;    ///< fetch->rename pipeline stages
  unsigned MispredictPenalty = 5; ///< redirect bubbles after resolution

  // Window.
  unsigned MaxInFlight = 64; ///< Table 2: max in-flight instructions
  unsigned IssueWidth = 4;
  unsigned NumIntAlu = 3;
  unsigned NumIntMul = 1;
  unsigned MemPorts = 3; ///< Table 2: 3 R/W D-cache ports

  // Branch predictor (combined, Table 2).
  unsigned ChooserEntries = 1024;
  unsigned GshareEntries = 65536;
  unsigned GlobalHistoryBits = 16;
  unsigned BimodalEntries = 2048;

  // Caches.
  unsigned L1ISizeKB = 64, L1IAssoc = 2, L1ILine = 32, L1IHit = 1;
  unsigned L1DSizeKB = 64, L1DAssoc = 2, L1DLine = 32, L1DHit = 1;
  unsigned L1MissToL2 = 6; ///< Table 2: 6-cycle miss penalty
  unsigned L2SizeKB = 256, L2Assoc = 4, L2Line = 64, L2Hit = 6;
  unsigned MemFirstChunk = 16, MemInterChunk = 2, MemChunkBytes = 16;

  // Execution latencies.
  unsigned MulLatency = 7;
};

/// Folds every UarchConfig field into \p H, in declaration order. Content
/// keys (sample/SamplePlanCache.h, service/CellKey.h) are built from
/// this; a new field added above MUST be folded here too, or two cells
/// differing only in that field would collide.
inline void hashUarchConfig(Fnv1a &H, const UarchConfig &U) {
  H.u64(U.FetchWidth);
  H.u64(U.DecodeWidth);
  H.u64(U.RetireWidth);
  H.u64(U.FrontendDepth);
  H.u64(U.MispredictPenalty);
  H.u64(U.MaxInFlight);
  H.u64(U.IssueWidth);
  H.u64(U.NumIntAlu);
  H.u64(U.NumIntMul);
  H.u64(U.MemPorts);
  H.u64(U.ChooserEntries);
  H.u64(U.GshareEntries);
  H.u64(U.GlobalHistoryBits);
  H.u64(U.BimodalEntries);
  H.u64(U.L1ISizeKB);
  H.u64(U.L1IAssoc);
  H.u64(U.L1ILine);
  H.u64(U.L1IHit);
  H.u64(U.L1DSizeKB);
  H.u64(U.L1DAssoc);
  H.u64(U.L1DLine);
  H.u64(U.L1DHit);
  H.u64(U.L1MissToL2);
  H.u64(U.L2SizeKB);
  H.u64(U.L2Assoc);
  H.u64(U.L2Line);
  H.u64(U.L2Hit);
  H.u64(U.MemFirstChunk);
  H.u64(U.MemInterChunk);
  H.u64(U.MemChunkBytes);
  H.u64(U.MulLatency);
}

} // namespace og

#endif // OG_UARCH_CONFIG_H
