//===- uarch/Core.h - Trace-driven out-of-order core -------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven timing model of the Table-2 out-of-order machine. It
/// consumes the functional simulator's dynamic instruction stream and
/// computes per-instruction fetch/rename/issue/complete/retire cycles
/// under the structural constraints: fetch and retire bandwidth, a
/// 64-entry in-flight window, 3 ALUs + 1 multiplier, 3 memory ports,
/// two-level caches and the combined branch predictor (mispredictions
/// stall fetch until the branch resolves, plus a redirect penalty).
///
/// Every structure touch is reported to an ActivitySink so the power
/// model can charge it, with values and opcode widths attached where the
/// access carries data (the operand-gating hook).
///
//===----------------------------------------------------------------------===//

#ifndef OG_UARCH_CORE_H
#define OG_UARCH_CORE_H

#include "sim/Interpreter.h"
#include "uarch/Activity.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Cache.h"
#include "uarch/Config.h"

#include <vector>

namespace og {

/// Timing and event counts of one simulated run.
struct UarchStats {
  uint64_t Insts = 0;
  uint64_t Cycles = 0;
  uint64_t FetchGroups = 0;
  uint64_t ICacheMisses = 0;
  uint64_t DL1Accesses = 0;
  uint64_t DL1Misses = 0;
  uint64_t L2Accesses = 0;
  uint64_t L2Misses = 0;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;

  double ipc() const {
    return Cycles ? static_cast<double>(Insts) / Cycles : 0.0;
  }
};

/// A W-slots-per-cycle resource; schedule() returns the cycle granted.
///
/// Semantically a bank of identical slots where each request takes the
/// earliest-available slot: the granted cycle is max(Earliest, min of the
/// slot-free times), and that slot becomes busy until Cycle + 1. Instead
/// of re-scanning all slots for the minimum on every request, the free
/// times live in a circular buffer kept sorted ascending from a rolling
/// head pointer: the head IS the minimum, and the freshly granted slot is
/// re-inserted behind it. When requests arrive with non-decreasing
/// Earliest (fetch/rename/retire), the new free time is the largest value
/// and the re-insert is a single store — the scheduler degenerates to
/// pure pointer rotation. Out-of-order request times (ALU/memory issue)
/// fall back to an insertion walk over at most Slots-1 entries, which
/// preserves exact min-scan grant sequences (UarchPowerTest cross-checks
/// this against a reference implementation).
class SlotScheduler {
public:
  explicit SlotScheduler(unsigned Slots) : Ring(Slots, 0), Head(0) {}

  uint64_t schedule(uint64_t Earliest) {
    const size_t W = Ring.size();
    uint64_t Min = Ring[Head];
    uint64_t Cycle = Earliest > Min ? Earliest : Min;
    uint64_t Busy = Cycle + 1;
    // Pop the minimum at Head and re-insert Busy into the remaining
    // ascending ring, walking backward from the vacated slot (the last
    // position in the new ring order) past entries larger than Busy.
    size_t Free = Head;
    for (size_t N = W - 1; N >= 1; --N) {
      size_t I = Head + N;
      if (I >= W)
        I -= W;
      if (Ring[I] <= Busy)
        break;
      Ring[Free] = Ring[I];
      Free = I;
    }
    Ring[Free] = Busy;
    Head = Head + 1 == W ? 0 : Head + 1;
    return Cycle;
  }

private:
  std::vector<uint64_t> Ring; ///< slot-free cycles, ascending from Head
  size_t Head;                ///< rolling pointer to the minimum
};

/// A checkpoint of an OooCore's long-lived structure state — exactly the
/// state warmOnly() evolves: cache replacement state, branch-predictor
/// tables and history, and the current fetch line. Sampled simulation
/// (src/sample/) captures these once per planned window during a single
/// full-history warming pass and restores them at each measured window,
/// so the window opens on warm state without re-running a per-window
/// warming shadow (the "checkpointed warm-up" of the ROADMAP).
///
/// Plain serializable data. Scheduler and statistics state is
/// deliberately excluded: a restore mid-run must never rewind counters,
/// and warmOnly never touches the schedulers either — which is what
/// makes a restore exactly equivalent to a full-prefix warming shadow
/// (SampleTest asserts the equality).
struct CoreWarmState {
  Cache::WarmState L1I, L1D, L2;
  BranchPredictor::WarmState BPred;
  uint64_t LastFetchLine = ~uint64_t(0);
};

/// Feed the dynamic instruction stream in program order — either
/// per-instruction through onInst() or in batches through the TraceSink
/// interface (RunOptions::Sink can point directly at the core) — and call
/// finish() once at the end.
class OooCore : public TraceSink {
public:
  OooCore(const UarchConfig &Config, ActivitySink *Sink);

  void onInst(const DynInst &D);
  void onBatch(const DynInst *Batch, size_t N) override;
  UarchStats finish();

  /// Functional warming: evolves the long-lived structure state — caches
  /// (demand paths and the next-line prefetch), branch predictor, fetch
  /// line — exactly as onInst() would, without scheduling, statistics, or
  /// energy accounting. Sampled simulation (src/sample/) feeds the
  /// fast-forwarded stretch before each representative window through
  /// this at a fraction of detailed-simulation cost, so windows open on
  /// warm state instead of whatever the previous window left behind.
  /// Accepts the engine's light records (sim/ExecEngine.h): only Pc,
  /// NextPc/SeqPc, IsMem/MemAddr and IsBranch/Taken are read.
  void warmOnly(const DynInst *Batch, size_t N);

  /// The statistics as of the instructions consumed so far, without
  /// ending the run: Cycles counts through the last retirement and
  /// Mispredicts is up to date. Non-destructive — the sampled-simulation
  /// estimator (src/sample/) snapshots at window boundaries and keeps
  /// feeding the core; finish() returns exactly the final snapshot.
  UarchStats snapshot() const {
    UarchStats S = Stats;
    S.Cycles = LastCycle + 1;
    S.Mispredicts = BPred.mispredicts();
    return S;
  }

  /// Captures / restores the warmOnly()-evolved structure state (see
  /// CoreWarmState). restoreWarmState() on a core that has consumed no
  /// detailed instructions since construction (or since its last window)
  /// leaves it exactly as if the checkpoint's full history had been
  /// replayed through warmOnly().
  CoreWarmState warmState() const {
    return {L1I.warmState(), L1D.warmState(), L2.warmState(),
            BPred.warmState(), LastFetchLine};
  }

  void restoreWarmState(const CoreWarmState &S) {
    L1I.restoreWarmState(S.L1I);
    L1D.restoreWarmState(S.L1D);
    L2.restoreWarmState(S.L2);
    BPred.restoreWarmState(S.BPred);
    LastFetchLine = S.LastFetchLine;
  }

private:
  void emitFixed(Structure S) {
    if (Sink)
      Sink->access(S);
  }
  void emitData(Structure S, int64_t V, Width W) {
    if (Sink)
      Sink->dataAccess(S, V, W);
  }
  void emitMiss(Structure S) {
    if (Sink)
      Sink->missPenalty(S);
  }

  /// Memory access latency through DL1 -> L2 -> memory; updates caches,
  /// stats and power events.
  unsigned memLatency(uint64_t Addr);

  UarchConfig Cfg;
  ActivitySink *Sink;

  BranchPredictor BPred;
  Cache L1I, L1D, L2;

  SlotScheduler FetchSlots, RenameSlots, RetireSlots;
  SlotScheduler AluUnits, MulUnits, MemPortSlots;

  std::vector<uint64_t> RegReady;    ///< arch reg -> value-ready cycle
  std::vector<uint64_t> RobRetire;   ///< ring of retire cycles
  size_t RobHead = 0;
  uint64_t FetchAvail = 0;           ///< next cycle fetch may proceed
  uint64_t PrevRetire = 0;
  uint64_t LastStoreIssue = 0;       ///< conservative load/store ordering
  uint64_t LastFetchLine = ~uint64_t(0);
  uint64_t LastCycle = 0;

  UarchStats Stats;
};

} // namespace og

#endif // OG_UARCH_CORE_H
