//===- uarch/Cache.h - Set-associative cache model ----------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative LRU cache for the timing model (hit/miss and latency
/// only; data lives in the functional simulator).
///
//===----------------------------------------------------------------------===//

#ifndef OG_UARCH_CACHE_H
#define OG_UARCH_CACHE_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace og {

/// Tag-only set-associative cache with true-LRU replacement.
class Cache {
  struct Way {
    uint64_t Tag = ~uint64_t(0);
    uint64_t LastUse = 0;
    bool Valid = false;
  };

public:
  Cache(unsigned SizeKB, unsigned Assoc, unsigned LineBytes);

  /// Accesses \p Addr; returns true on hit and fills the line otherwise.
  bool access(uint64_t Addr);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

  /// The replacement state of every line — the cache's share of a
  /// warm-state checkpoint (uarch/Core.h CoreWarmState). Plain data;
  /// the hit/miss counters are deliberately excluded so restoring
  /// warmth never rewinds statistics.
  struct WarmState {
    std::vector<Way> Ways;
    uint64_t Tick = 0;
  };

  WarmState warmState() const { return {Ways, Tick}; }

  void restoreWarmState(const WarmState &S) {
    assert(S.Ways.size() == Ways.size() &&
           "warm state captured from a different cache geometry");
    Ways = S.Ways;
    Tick = S.Tick;
  }

private:
  unsigned Assoc;
  unsigned LineShift;
  unsigned NumSets;
  std::vector<Way> Ways; ///< NumSets * Assoc
  uint64_t Tick = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace og

#endif // OG_UARCH_CACHE_H
