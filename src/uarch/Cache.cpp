//===- uarch/Cache.cpp ----------------------------------------------------==//

#include "uarch/Cache.h"

#include <cassert>
#include <cstddef>

using namespace og;

namespace {

unsigned log2Exact(unsigned V) {
  unsigned L = 0;
  while ((1u << L) < V)
    ++L;
  assert((1u << L) == V && "cache geometry must be a power of two");
  return L;
}

} // namespace

Cache::Cache(unsigned SizeKB, unsigned Assoc, unsigned LineBytes)
    : Assoc(Assoc), LineShift(log2Exact(LineBytes)),
      NumSets(SizeKB * 1024 / LineBytes / Assoc) {
  assert(NumSets > 0 && "cache too small for its associativity");
  Ways.resize(static_cast<size_t>(NumSets) * Assoc);
}

bool Cache::access(uint64_t Addr) {
  ++Tick;
  uint64_t Line = Addr >> LineShift;
  size_t Set = static_cast<size_t>(Line % NumSets) * Assoc;
  for (size_t W = Set; W < Set + Assoc; ++W) {
    if (Ways[W].Valid && Ways[W].Tag == Line) {
      Ways[W].LastUse = Tick;
      ++Hits;
      return true;
    }
  }
  // Miss: fill an invalid way if any, else evict the least recently used.
  size_t Victim = Set;
  for (size_t W = Set; W < Set + Assoc; ++W) {
    if (!Ways[W].Valid) {
      Victim = W;
      break;
    }
    if (Ways[W].LastUse < Ways[Victim].LastUse)
      Victim = W;
  }
  ++Misses;
  Ways[Victim] = {Line, Tick, true};
  return false;
}
