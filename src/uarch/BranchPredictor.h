//===- uarch/BranchPredictor.h - Combined predictor --------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2's combined predictor: a gshare component (64K 2-bit counters,
/// 16-bit global history) and a bimodal component (2K 2-bit counters)
/// arbitrated by a 1K-entry chooser.
///
//===----------------------------------------------------------------------===//

#ifndef OG_UARCH_BRANCHPREDICTOR_H
#define OG_UARCH_BRANCHPREDICTOR_H

#include "uarch/Config.h"

#include <cstdint>
#include <vector>

namespace og {

/// Combined gshare + bimodal predictor with a per-PC chooser.
class BranchPredictor {
public:
  explicit BranchPredictor(const UarchConfig &C);

  /// Predicts the direction of the conditional branch at \p Pc.
  bool predict(uint64_t Pc) const;

  /// Trains all components with the actual outcome.
  void update(uint64_t Pc, bool Taken);

  uint64_t lookups() const { return Lookups; }
  uint64_t mispredicts() const { return Mispredicts; }

  /// Convenience: predict, compare, update, count.
  bool predictAndUpdate(uint64_t Pc, bool Taken);

  /// Counter tables + global history — the predictor's share of a
  /// warm-state checkpoint (uarch/Core.h CoreWarmState). Plain data;
  /// the lookup/mispredict counters are deliberately excluded so
  /// restoring warmth never rewinds statistics.
  struct WarmState {
    std::vector<uint8_t> Gshare, Bimodal, Chooser;
    uint64_t History = 0;
  };

  WarmState warmState() const;
  void restoreWarmState(const WarmState &S);

private:
  unsigned gshareIndex(uint64_t Pc) const;

  std::vector<uint8_t> Gshare;  ///< 2-bit saturating counters
  std::vector<uint8_t> Bimodal;
  std::vector<uint8_t> Chooser; ///< >=2 selects gshare
  uint64_t History = 0;
  uint64_t HistoryMask;
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;
};

} // namespace og

#endif // OG_UARCH_BRANCHPREDICTOR_H
