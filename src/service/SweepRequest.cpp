//===- service/SweepRequest.cpp -------------------------------------------==//

#include "service/SweepRequest.h"

#include "support/Cli.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <limits>
#include <sstream>

using namespace og;

std::string og::validateReportOptions(const ReportOptions &R, bool SweepMode,
                                      bool SampleEnabled, bool UarchEnabled) {
  if (SweepMode) {
    if (R.TimingLine)
      // Used to be silently dropped; reject it so nobody builds a
      // workflow on an option that cannot work here (sweep reports are
      // deterministic by contract, sim-speed is wall-clock).
      return "--timing-line is wall-clock-dependent and not supported in "
             "--sweep mode (sweep reports are byte-deterministic); drop it "
             "or run a single program";
    if (R.OptStats && !R.JsonRequested)
      // Never silently ignore a flag the mode cannot honor: the counters
      // only exist in the JSON document, so without --json there is
      // nothing to surface them in.
      return "--opt-stats adds the per-cell \"opt\" counters group to the "
             "JSON document and needs --json=PATH alongside it";
    if (R.EngineStats && !R.JsonRequested)
      return "--engine-stats adds the per-cell \"engine\" counters group "
             "to the JSON document and needs --json=PATH alongside it";
    return "";
  }
  if (SampleEnabled) {
    if (!UarchEnabled)
      return "--sample estimates the detailed timing/energy report and "
             "needs --uarch (or --scheme=...) alongside it in "
             "single-program mode";
    if (R.TimingLine)
      return "--timing-line measures the plain dispatch loop's sim-speed "
             "and is not meaningful under --sample estimation; drop one "
             "of them";
  }
  if (R.OptStats)
    return "--opt-stats reports the transform phase's analysis-cache "
           "counters and only applies to --sweep mode (single-program "
           "mode runs no transforms)";
  if (R.EngineStats)
    return "--engine-stats reports sweep cells' dispatch/superblock "
           "counters and only applies to --sweep mode (use --timing-line "
           "here to see the active dispatch mode)";
  return "";
}

JsonValue SweepRequest::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("sweep", JsonValue::str(SweepKind));
  V.set("scale", JsonValue::number(Scale));
  JsonValue Names = JsonValue::array();
  for (const std::string &W : Workloads)
    Names.push(JsonValue::str(W));
  V.set("workloads", std::move(Names));
  if (Sample.enabled()) {
    JsonValue S = JsonValue::object();
    S.set("interval-len",
          JsonValue::integer(static_cast<int64_t>(Sample.IntervalLen)));
    S.set("k", JsonValue::integer(Sample.K));
    V.set("sample", std::move(S));
  }
  V.set("opt-stats", JsonValue::boolean(Report.OptStats));
  V.set("engine-stats", JsonValue::boolean(Report.EngineStats));
  return V;
}

Expected<SweepRequest> SweepRequest::fromJson(const JsonValue &V) {
  auto Fail = [](const std::string &What) {
    return makeError<SweepRequest>("sweep request: " + What);
  };
  if (!V.isObject())
    return Fail("not a JSON object");

  SweepRequest R;
  for (const auto &M : V.members()) {
    const std::string &Key = M.first;
    const JsonValue &Val = M.second;
    if (Key == "sweep") {
      if (!Val.isString())
        return Fail("\"sweep\" must be a string");
      R.SweepKind = Val.asString();
    } else if (Key == "scale") {
      if (!Val.isNumber() || Val.asNumber() <= 0.0)
        return Fail("\"scale\" must be a number > 0");
      R.Scale = Val.asNumber();
    } else if (Key == "workloads") {
      if (!Val.isArray())
        return Fail("\"workloads\" must be an array of names");
      for (size_t I = 0; I < Val.size(); ++I) {
        if (!Val.at(I).isString())
          return Fail("\"workloads\" must be an array of names");
        R.Workloads.push_back(Val.at(I).asString());
      }
    } else if (Key == "sample") {
      if (!Val.isObject())
        return Fail("\"sample\" must be an object");
      const JsonValue *L = Val.get("interval-len");
      if (!L || !L->isInteger() || L->asInt() <= 0)
        return Fail("\"sample.interval-len\" must be an integer > 0");
      R.Sample.IntervalLen = static_cast<uint64_t>(L->asInt());
      if (const JsonValue *K = Val.get("k")) {
        if (!K->isInteger() || K->asInt() < 0)
          return Fail("\"sample.k\" must be an integer >= 0");
        R.Sample.K = static_cast<unsigned>(K->asInt());
      }
      for (const auto &SM : Val.members())
        if (SM.first != "interval-len" && SM.first != "k")
          return Fail("unknown \"sample\" key \"" + SM.first + "\"");
    } else if (Key == "opt-stats") {
      if (!Val.isBool())
        return Fail("\"opt-stats\" must be a boolean");
      R.Report.OptStats = Val.asBool();
    } else if (Key == "engine-stats") {
      if (!Val.isBool())
        return Fail("\"engine-stats\" must be a boolean");
      R.Report.EngineStats = Val.asBool();
    } else {
      return Fail("unknown key \"" + Key + "\"");
    }
  }
  return R;
}

Expected<std::vector<ExperimentSpec>> SweepRequest::buildSpecs() const {
  using Specs = std::vector<ExperimentSpec>;
  std::vector<std::string> Names;
  if (Workloads.empty()) {
    Names = allWorkloadNames();
  } else {
    const std::vector<std::string> Known = allWorkloadNames();
    for (const std::string &W : Workloads) {
      // "elf:PATH" entries go through the binary frontend; the file is
      // read when the cell builds its workload, so a missing path fails
      // as "workload build failed" with the loader's diagnostic.
      if (W.rfind("elf:", 0) != 0 &&
          std::find(Known.begin(), Known.end(), W) == Known.end()) {
        std::string Err = "unknown workload '" + W + "' (known:";
        for (const std::string &K : Known)
          Err += " " + K;
        return makeError<Specs>(Err + ", or elf:PATH)");
      }
      Names.push_back(W);
    }
  }
  if (Names.empty())
    return makeError<Specs>("no workloads selected");

  Specs Out;
  if (SweepKind == "matrix") {
    Out = makeMatrixSweep(Names, Scale);
  } else if (SweepKind == "standard") {
    Out = makeStandardSweep(Names, Scale);
  } else {
    return makeError<Specs>("unknown sweep kind '" + SweepKind + "'");
  }
  if (Sample.enabled())
    for (ExperimentSpec &S : Out)
      S.Config.Sample = Sample;
  return Out;
}

bool og::applySweepRequestFlag(SweepRequest &R, const CliTool &T,
                               const std::string &Arg) {
  if (Arg == "--sweep")
    return true; // mode marker; the kind keeps its default
  if (Arg.rfind("--sweep=", 0) == 0) {
    R.SweepKind = Arg.substr(8);
    return true;
  }
  if (Arg.rfind("--scale=", 0) == 0) {
    R.Scale =
        T.parsePositive("--scale", Arg.substr(8), "want a finite decimal > 0");
    return true;
  }
  if (Arg.rfind("--workloads=", 0) == 0) {
    const std::vector<std::string> Known = allWorkloadNames();
    std::stringstream SS(Arg.substr(12));
    std::string Item;
    while (std::getline(SS, Item, ',')) {
      if (Item.empty())
        continue;
      // Strict-CLI family: an unknown entry exits 2 naming the bad
      // entry, same as every other malformed flag value. "elf:PATH"
      // entries are structural here; the path itself is validated when
      // the workload builds.
      if (Item.rfind("elf:", 0) != 0 &&
          std::find(Known.begin(), Known.end(), Item) == Known.end())
        T.badValue("--workloads", Item,
                   "want registered workload names or elf:PATH "
                   "(ogate-sim --list-workloads prints the registry)");
      R.Workloads.push_back(Item);
    }
    return true;
  }
  if (Arg.rfind("--sample=", 0) == 0) {
    const std::string Val = Arg.substr(9);
    const size_t Colon = Val.find(':');
    const char *Want = "want INTERVAL[:K|:auto], INTERVAL and K > 0";
    R.Sample.IntervalLen =
        T.parseU64("--sample", Val.substr(0, Colon), Want, 1);
    if (Colon != std::string::npos) {
      const std::string KStr = Val.substr(Colon + 1);
      R.Sample.K =
          KStr == "auto"
              ? 0
              : static_cast<unsigned>(
                    T.parseU64("--sample", KStr, Want, 1,
                               std::numeric_limits<unsigned>::max()));
    }
    return true;
  }
  if (Arg == "--opt-stats") {
    R.Report.OptStats = true;
    return true;
  }
  if (Arg == "--engine-stats") {
    R.Report.EngineStats = true;
    return true;
  }
  return false;
}
