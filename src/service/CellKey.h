//===- service/CellKey.h - Content-addressed sweep-cell keys -----*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The identity of one sweep cell for the persistent result cache
/// (service/ResultCache.h): everything the cell's reduced report record
/// is a function of, and nothing it is not.
///
///  - Workload name + config label: the human identity, and the row key
///    of the aggregate report (two specs with byte-identical configs but
///    different labels must produce two rows, so the label participates).
///  - ProgramHash: structuralProgramHash over the workload's *base*
///    program (program/Program.h) — instance-independent, so two decodes
///    of the same workload key alike while any instruction edit misses.
///  - ConfigHash: one FNV-1a fold of the full PipelineConfig (transform
///    mode, ISA policy, uarch, energy coefficients, sample spec — via
///    hashPipelineConfig) plus the ref-run options (hashRunOptions).
///  - Scale and the spec's effective Rng seed: the remaining run inputs.
///  - SchemaVersion: the report schema the cached value was serialized
///    under; a version bump turns every old entry into a clean miss
///    instead of a wrong-shape hit.
///
/// address() renders the whole key as one hex token — the cache file
/// name. The full key is stored next to the value and re-checked on
/// every lookup, so even an FNV collision degrades to a miss, never to a
/// wrong result.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SERVICE_CELLKEY_H
#define OG_SERVICE_CELLKEY_H

#include "support/Error.h"
#include "support/Json.h"

#include <cstdint>
#include <string>

namespace og {

struct ExperimentSpec;
struct Workload;

/// The content key of one sweep cell (see file comment).
struct CellKey {
  std::string Workload;
  std::string ConfigLabel;
  uint64_t ProgramHash = 0;
  uint64_t ConfigHash = 0;
  double Scale = 0.0;
  uint64_t Seed = 0;
  int64_t SchemaVersion = 0;

  bool operator==(const CellKey &O) const {
    return Workload == O.Workload && ConfigLabel == O.ConfigLabel &&
           ProgramHash == O.ProgramHash && ConfigHash == O.ConfigHash &&
           Scale == O.Scale && Seed == O.Seed &&
           SchemaVersion == O.SchemaVersion;
  }
  bool operator!=(const CellKey &O) const { return !(*this == O); }

  /// The whole key as one "0x..." hex token (FNV-1a over every field) —
  /// the persistent cache's file name and the in-flight map's key.
  std::string address() const;

  /// JSON form. The u64 hashes and the seed are rendered as "0x..." hex
  /// strings, not JSON numbers: values above INT64_MAX would otherwise
  /// degrade to doubles (support/Json.h) and stop round-tripping.
  JsonValue toJson() const;

  /// Strict inverse of toJson; any missing or mis-typed field is an
  /// error naming the field.
  static Expected<CellKey> fromJson(const JsonValue &V);
};

/// Builds the key for \p Spec over its (already built) workload. \p W
/// must be the workload Spec names at Spec's scale — the base program
/// and ref-run options are hashed from it. Seed is the spec's effective
/// seed and SchemaVersion the current ReportSchemaVersion.
CellKey makeCellKey(const ExperimentSpec &Spec, const Workload &W);

} // namespace og

#endif // OG_SERVICE_CELLKEY_H
