//===- service/SweepService.cpp -------------------------------------------==//

#include "service/SweepService.h"

#include "pipeline/Pipeline.h"
#include "report/ReportSchema.h"
#include "workloads/Workloads.h"

#include <chrono>

using namespace og;

std::shared_ptr<const ServiceWorkload>
SweepService::getWorkload(const std::string &Name, double Scale) {
  // Compute-once: the first caller of a (workload, scale) owns the build;
  // concurrent callers wait on the shared future (the
  // sample/SamplePlanCache.h protocol).
  std::shared_future<std::shared_ptr<const ServiceWorkload>> Fut;
  std::promise<std::shared_ptr<const ServiceWorkload>> Owner;
  bool IsOwner = false;
  {
    std::lock_guard<std::mutex> Lock(WorkloadsM);
    auto It = WorkloadFutures.find({Name, Scale});
    if (It == WorkloadFutures.end()) {
      IsOwner = true;
      Fut = Owner.get_future().share();
      WorkloadFutures.emplace(std::make_pair(Name, Scale), Fut);
    } else {
      Fut = It->second;
    }
  }
  if (IsOwner) {
    try {
      Owner.set_value(
          std::make_shared<const ServiceWorkload>(makeWorkload(Name, Scale)));
    } catch (...) {
      Owner.set_exception(std::current_exception());
      std::lock_guard<std::mutex> Lock(WorkloadsM);
      WorkloadFutures.erase({Name, Scale});
    }
  }
  return Fut.get();
}

PipelineResult SweepService::runSpec(const ExperimentSpec &Spec) {
  std::shared_ptr<const ServiceWorkload> SW =
      getWorkload(Spec.Workload, Spec.Scale);
  PipelineConfig Config = Spec.Config;
  Config.SampleWindowJobs = Opts.SampleWindowJobs;
  return runPipeline(SW->W, Config, SW->Decoded.get(),
                     Config.Sample.enabled() ? &PlanCache : nullptr);
}

SweepResult SweepService::runFull(const std::vector<ExperimentSpec> &Specs,
                                  unsigned JobsOverride) {
  SweepOptions SO;
  SO.Jobs = JobsOverride ? JobsOverride : Opts.Jobs;
  SO.KeepGoing = Opts.KeepGoing;
  SO.Job = [this](const ExperimentSpec &Spec, Rng &) {
    return runSpec(Spec);
  };
  return runSweep(Specs, SO);
}

ServedSweep SweepService::serve(const SweepRequest &R) {
  ServedSweep Out;
  Expected<std::vector<ExperimentSpec>> SpecsOr = R.buildSpecs();
  if (!SpecsOr) {
    Out.Error = SpecsOr.error();
    return Out;
  }
  const std::vector<ExperimentSpec> &Specs = *SpecsOr;
  const size_t N = Specs.size();

  // Resolve every workload first (compute-once), then derive content
  // keys — the key hashes the base program, so the workload must exist.
  std::vector<CellKey> Keys;
  Keys.reserve(N);
  try {
    for (const ExperimentSpec &S : Specs)
      Keys.push_back(makeCellKey(S, getWorkload(S.Workload, S.Scale)->W));
  } catch (const std::exception &E) {
    Out.Error = std::string("workload build failed: ") + E.what();
    return Out;
  }

  // Claim phase: adopt existing futures (ready = in-memory hit, pending
  // = another request is computing it right now), own the rest.
  std::vector<std::shared_future<ServedCellPtr>> Futures(N);
  std::map<size_t, std::promise<ServedCellPtr>> Owned;
  {
    std::lock_guard<std::mutex> Lock(CellsM);
    for (size_t I = 0; I < N; ++I) {
      const std::string Addr = Keys[I].address();
      auto It = CellFutures.find(Addr);
      if (It != CellFutures.end()) {
        Futures[I] = It->second;
        const bool Ready = Futures[I].wait_for(std::chrono::seconds(0)) ==
                           std::future_status::ready;
        Ready ? ++Out.Hits : ++Out.InflightDedups;
        continue;
      }
      std::promise<ServedCellPtr> P;
      Futures[I] = P.get_future().share();
      CellFutures.emplace(Addr, Futures[I]);
      Owned.emplace(I, std::move(P));
    }
  }

  // Owner phase 1: persistent-cache lookups settle owned cells without
  // computing. What remains is this request's compute set.
  std::vector<size_t> ToCompute;
  for (auto It = Owned.begin(); It != Owned.end();) {
    if (std::optional<ResultAggregator::Cell> Cell = Cache.lookup(Keys[It->first])) {
      ++Out.Hits;
      It->second.set_value(std::make_shared<const ServedCell>(
          ServedCell{"", std::move(*Cell)}));
      It = Owned.erase(It);
    } else {
      ++Out.Misses;
      ToCompute.push_back(It->first);
      ++It;
    }
  }

  // Owner phase 2: compute the misses through the driver. Reduction is
  // streaming (SweepOptions::Consume, worker-thread side): each success
  // is reduced to its report cell, persisted, and published to waiters
  // immediately — the full PipelineResult never outlives its job.
  if (!ToCompute.empty()) {
    std::vector<ExperimentSpec> Sub;
    Sub.reserve(ToCompute.size());
    for (size_t I : ToCompute)
      Sub.push_back(Specs[I]);

    std::vector<char> Fulfilled(N, 0);
    SweepOptions SO;
    SO.Jobs = Opts.Jobs;
    SO.KeepGoing = Opts.KeepGoing;
    SO.Job = [this](const ExperimentSpec &Spec, Rng &) {
      return runSpec(Spec);
    };
    SO.Consume = [&](size_t SubI, const ExperimentSpec &Spec,
                     PipelineResult &Res) {
      const size_t I = ToCompute[SubI];
      ResultAggregator::Cell Cell = ResultAggregator::makeCell(Spec, Res);
      Cache.store(Keys[I], Cell);
      // Owned is structurally frozen during the run; distinct SubI hit
      // distinct entries, so worker threads need no extra lock here.
      Owned.at(I).set_value(std::make_shared<const ServedCell>(
          ServedCell{"", std::move(Cell)}));
      Fulfilled[I] = 1;
    };
    SweepResult SR = runSweep(Sub, SO);

    // Failed and cancelled cells: retract the in-flight entry first (so
    // new requests recompute instead of adopting a dead future), then
    // publish the failure to whoever is already waiting.
    for (size_t SubI = 0; SubI < ToCompute.size(); ++SubI) {
      const size_t I = ToCompute[SubI];
      if (Fulfilled[I])
        continue;
      {
        std::lock_guard<std::mutex> Lock(CellsM);
        CellFutures.erase(Keys[I].address());
      }
      const JobOutcome &O = SR.Outcomes[SubI];
      const std::string Err =
          !O.Error.empty()
              ? O.Error
              : "spec '" + Sub[SubI].name() + "': cancelled before it ran";
      Owned.at(I).set_value(
          std::make_shared<const ServedCell>(ServedCell{Err, {}}));
    }
  }

  // Gather in spec order; the first error in spec order wins, which is
  // deterministic under --keep-going (same contract as batch
  // SweepResult::FirstError).
  std::vector<ServedCellPtr> Cells(N);
  for (size_t I = 0; I < N; ++I) {
    Cells[I] = Futures[I].get();
    if (!Cells[I]->Error.empty()) {
      if (Out.Error.empty())
        Out.Error = Cells[I]->Error;
    }
  }
  if (!Out.Error.empty())
    return Out;

  for (size_t I = 0; I < N; ++I)
    Out.Aggregate.add(Cells[I]->Cell);

  // Always-on duplicate-cell check (same reasoning as batch mode): a
  // duplicated key means spec construction is broken, and a silently
  // double-rowed report would poison baseline comparisons downstream.
  if (const std::string Dup = Out.Aggregate.duplicateKey(); !Dup.empty()) {
    Out.Error =
        "sweep produced duplicate cell '" + Dup + "' — spec construction bug";
    return Out;
  }

  Out.Document = sweepToJson(Out.Aggregate, R.SweepKind, R.Scale,
                             R.Report.OptStats,
                             R.Sample.enabled() ? &R.Sample : nullptr,
                             R.Report.EngineStats);
  Out.Ok = true;
  return Out;
}
