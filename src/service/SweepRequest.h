//===- service/SweepRequest.h - One sweep, as a value ------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request types every sweep entry point consumes. Batch `ogate-sim
/// --sweep`, the bench harness cache fills, and the `ogate-serve`
/// protocol all build a SweepRequest — from flags or from wire JSON —
/// and hand it to the SweepService; there is exactly one place that
/// turns "what the user asked for" into ExperimentSpecs, one place that
/// validates report-option combinations, and one JSON form that travels
/// over the service socket.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SERVICE_SWEEPREQUEST_H
#define OG_SERVICE_SWEEPREQUEST_H

#include "driver/ExperimentSpec.h"
#include "support/Error.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace og {

class CliTool;

/// What the report surface should carry — the per-flag gating that used
/// to be copy-pasted rejection blocks in ogate-sim's main().
struct ReportOptions {
  /// Add each cell's "opt" analysis-cache counters group (JSON only).
  bool OptStats = false;
  /// Add each cell's "engine" dispatch/superblock counters group (JSON
  /// only).
  bool EngineStats = false;
  /// Print the wall-clock sim-speed line (single-program mode only;
  /// sweep reports are byte-deterministic by contract).
  bool TimingLine = false;
  /// A --json destination (path or "-") was given.
  bool JsonRequested = false;
};

/// The one validation path for report options: returns the first
/// diagnostic (without tool-name prefix, exit-1 class) or "" when the
/// combination is valid. \p SweepMode selects which flags are
/// mode-conflicts; \p SampleEnabled folds the --sample gating into the
/// same path (sampling only applies where a detailed model runs: every
/// sweep cell, or a single-program run with \p UarchEnabled — the
/// --uarch/--scheme surface, meaningless in sweep mode and ignored
/// there).
std::string validateReportOptions(const ReportOptions &R, bool SweepMode,
                                  bool SampleEnabled,
                                  bool UarchEnabled = false);

/// One sweep, as a value: what to run (kind, scale, workloads, sampling)
/// plus the report surface. This is the unit the service deduplicates,
/// caches under, and serves over the socket.
struct SweepRequest {
  std::string SweepKind = "standard"; ///< "standard" | "matrix"
  double Scale = 0.25;
  /// Workload subset in request order; empty = all eight, paper order.
  std::vector<std::string> Workloads;
  /// Phase-sampled estimation; disabled by default. The wire form
  /// carries the CLI surface (interval length + K); the remaining spec
  /// knobs keep their defaults.
  SampleSpec Sample;
  ReportOptions Report;

  /// Wire form: {"sweep", "scale", "workloads", "opt-stats",
  /// "engine-stats"} plus "sample" {"interval-len", "k"} when enabled.
  JsonValue toJson() const;

  /// Strict inverse of toJson: absent keys take their defaults, unknown
  /// keys and mis-typed values are errors (a typo'd request must fail
  /// loudly, not silently run the default sweep).
  static Expected<SweepRequest> fromJson(const JsonValue &V);

  /// Resolves the request into the spec vector runSweep consumes —
  /// validates the sweep kind and every workload name (same diagnostics
  /// batch ogate-sim always printed), enumerates the matrix in the
  /// fixed deterministic order, and applies the sample spec to every
  /// cell.
  Expected<std::vector<ExperimentSpec>> buildSpecs() const;
};

/// Shared sweep-flag surface: applies one command-line argument to \p R
/// when it is a sweep-request flag (--sweep[=KIND], --scale=,
/// --workloads=, --sample=, --opt-stats, --engine-stats), parsing values
/// strictly through \p T (malformed values exit 2). Returns false when
/// \p Arg is not a request flag — tool-specific flags (--jobs, --json,
/// --socket, ...) stay with the tool. ogate-sim and `ogate-serve
/// request` call this so the two tools cannot drift apart on sweep
/// flags.
bool applySweepRequestFlag(SweepRequest &R, const CliTool &T,
                           const std::string &Arg);

} // namespace og

#endif // OG_SERVICE_SWEEPREQUEST_H
