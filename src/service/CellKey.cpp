//===- service/CellKey.cpp ------------------------------------------------==//

#include "service/CellKey.h"

#include "driver/ExperimentSpec.h"
#include "report/ReportSchema.h"
#include "support/Hash.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace og;

namespace {

std::string hexU64(uint64_t V) {
  char Buf[2 + 16 + 1];
  std::snprintf(Buf, sizeof Buf, "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Strict "0x" + exactly-16-hex-digits parse — the only form hexU64
/// emits, so anything else in a key file is corruption, not style.
bool parseHexU64(const std::string &S, uint64_t &Out) {
  if (S.size() != 18 || S[0] != '0' || S[1] != 'x')
    return false;
  uint64_t V = 0;
  for (size_t I = 2; I < S.size(); ++I) {
    const char C = S[I];
    unsigned D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  Out = V;
  return true;
}

} // namespace

std::string CellKey::address() const {
  Fnv1a H;
  H.u64(Workload.size());
  H.bytes(Workload.data(), Workload.size());
  H.u64(ConfigLabel.size());
  H.bytes(ConfigLabel.data(), ConfigLabel.size());
  H.u64(ProgramHash);
  H.u64(ConfigHash);
  H.f64(Scale);
  H.u64(Seed);
  H.u64(static_cast<uint64_t>(SchemaVersion));
  return hexU64(H.hash());
}

JsonValue CellKey::toJson() const {
  JsonValue V = JsonValue::object();
  V.set("workload", JsonValue::str(Workload));
  V.set("config", JsonValue::str(ConfigLabel));
  V.set("program-hash", JsonValue::str(hexU64(ProgramHash)));
  V.set("config-hash", JsonValue::str(hexU64(ConfigHash)));
  V.set("scale", JsonValue::number(Scale));
  V.set("seed", JsonValue::str(hexU64(Seed)));
  V.set("schema-version", JsonValue::integer(SchemaVersion));
  return V;
}

Expected<CellKey> CellKey::fromJson(const JsonValue &V) {
  auto Fail = [](const std::string &Field) {
    return makeError<CellKey>("cell key: missing or mis-typed \"" + Field +
                              "\"");
  };
  if (!V.isObject())
    return makeError<CellKey>("cell key is not an object");

  CellKey K;
  const JsonValue *F = V.get("workload");
  if (!F || !F->isString())
    return Fail("workload");
  K.Workload = F->asString();
  F = V.get("config");
  if (!F || !F->isString())
    return Fail("config");
  K.ConfigLabel = F->asString();
  F = V.get("program-hash");
  if (!F || !F->isString() || !parseHexU64(F->asString(), K.ProgramHash))
    return Fail("program-hash");
  F = V.get("config-hash");
  if (!F || !F->isString() || !parseHexU64(F->asString(), K.ConfigHash))
    return Fail("config-hash");
  F = V.get("scale");
  if (!F || !F->isNumber())
    return Fail("scale");
  K.Scale = F->asNumber();
  F = V.get("seed");
  if (!F || !F->isString() || !parseHexU64(F->asString(), K.Seed))
    return Fail("seed");
  F = V.get("schema-version");
  if (!F || !F->isInteger())
    return Fail("schema-version");
  K.SchemaVersion = F->asInt();
  return K;
}

CellKey og::makeCellKey(const ExperimentSpec &Spec, const Workload &W) {
  CellKey K;
  K.Workload = Spec.Workload;
  K.ConfigLabel = Spec.ConfigLabel;
  K.ProgramHash = structuralProgramHash(W.Prog);
  Fnv1a H;
  hashPipelineConfig(H, Spec.Config);
  hashRunOptions(H, W.Ref);
  K.ConfigHash = H.hash();
  K.Scale = Spec.Scale;
  K.Seed = effectiveSeed(Spec);
  K.SchemaVersion = ReportSchemaVersion;
  return K;
}
