//===- service/ResultCache.h - Persistent sweep-cell cache -------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed on-disk cache of reduced sweep cells
/// (ResultAggregator::Cell), keyed by CellKey. One file per cell,
/// `<dir>/<address>.json`, holding a small envelope:
///
///   {"schema": "ogate-cell", "version": N,
///    "key": { ...full CellKey... },
///    "cell": { ...sweepCellToJson with every optional group... }}
///
/// Correctness model: the address is a hash, so every lookup re-checks
/// the envelope — wrong schema or version counts as stale, a full-key
/// mismatch (hash collision, or a file dropped in by hand) counts as a
/// mismatch; both degrade to a miss and the cell is recomputed and
/// rewritten. The cached value is the cell in its exact document shape,
/// and support/Json's writer is deterministic, so a warm-cache sweep
/// document is byte-identical to the cold one.
///
/// Eviction: safe by construction, optional by policy. Entries are
/// immutable pure functions of their key, so any file may be deleted at
/// any time (the cell just recomputes), and `rm -rf <dir>` is a
/// complete, always-safe flush. By default the cache grows without
/// bound; constructing with MaxBytes > 0 makes every store that leaves
/// the directory over budget sweep the oldest-mtime entries out until it
/// fits again (the entry just stored is never its own victim — a store
/// must stay useful even under an absurdly small budget). Schema bumps
/// orphan old-version files rather than corrupting reads. Stores write
/// to a temp file and rename() into place, so concurrent writers of the
/// same cell race benignly (both write identical bytes) and readers
/// never see a torn file; concurrent evictors race benignly too (a file
/// already gone is simply not counted).
///
//===----------------------------------------------------------------------===//

#ifndef OG_SERVICE_RESULTCACHE_H
#define OG_SERVICE_RESULTCACHE_H

#include "driver/ResultAggregator.h"
#include "service/CellKey.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace og {

/// On-disk cell cache (see file comment). Thread-safe; a disabled cache
/// (empty directory path) turns every lookup into a counted miss and
/// every store into a no-op.
class ResultCache {
public:
  /// Lifetime traffic counters. "Stale" and "mismatch" lookups are also
  /// counted in Misses (they miss; the extra counters say why).
  struct Counters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t StaleSchema = 0; ///< entry from another schema version
    uint64_t KeyMismatch = 0; ///< address collision or foreign file
    uint64_t Stores = 0;
    uint64_t StoreFailures = 0; ///< I/O failures (cache stays best-effort)
    uint64_t Evictions = 0;     ///< entries removed by the size budget
    uint64_t EvictedBytes = 0;  ///< bytes those entries occupied
  };

  /// Current on-disk footprint: entry files present and their byte sum.
  /// Measured by scanning, not tracked, so it agrees with the directory
  /// even when other processes store or evict concurrently.
  struct Usage {
    uint64_t Entries = 0;
    uint64_t Bytes = 0;
  };

  /// \p Dir is created (with parents) on first store; "" disables.
  /// \p MaxBytes > 0 bounds the directory: stores evict oldest-mtime
  /// entries over budget (see file comment); 0 means unbounded.
  explicit ResultCache(std::string Dir, uint64_t MaxBytes = 0)
      : Dir(std::move(Dir)), MaxBytes(MaxBytes) {}

  bool enabled() const { return !Dir.empty(); }
  const std::string &dir() const { return Dir; }
  uint64_t maxBytes() const { return MaxBytes; }

  /// Looks \p K up; a validated hit returns the cell, anything else
  /// (absent, unreadable, stale version, key mismatch, malformed cell)
  /// is a miss.
  std::optional<ResultAggregator::Cell> lookup(const CellKey &K);

  /// Writes \p C under \p K (temp file + rename). Best-effort: failures
  /// only bump StoreFailures — a sweep never fails because the cache
  /// directory is read-only.
  void store(const CellKey &K, const ResultAggregator::Cell &C);

  Counters counters() const;

  /// Scans the cache directory and reports its entry count and byte
  /// total. A disabled (or not-yet-created) cache reports zero.
  Usage usage() const;

private:
  /// Removes oldest-mtime entries until the directory fits MaxBytes,
  /// never touching \p JustStored. Best-effort, lock-free on the
  /// filesystem side; only the counters take the mutex.
  void evictOverBudget(const std::string &JustStored);

  std::string Dir;
  uint64_t MaxBytes = 0;
  mutable std::mutex M;
  Counters C;
};

} // namespace og

#endif // OG_SERVICE_RESULTCACHE_H
