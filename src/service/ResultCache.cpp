//===- service/ResultCache.cpp --------------------------------------------==//

#include "service/ResultCache.h"

#include "report/ReportSchema.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace og;

namespace {

constexpr const char *EnvelopeSchema = "ogate-cell";

/// mkdir -p: creates every missing component of \p Path. Races with
/// concurrent creators are fine (EEXIST is success).
bool ensureDir(const std::string &Path) {
  std::string Partial;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I < Path.size() && Path[I] != '/') {
      Partial += Path[I];
      continue;
    }
    if (!Partial.empty() && Partial != "." && Partial != "..")
      if (::mkdir(Partial.c_str(), 0777) != 0 && errno != EEXIST)
        return false;
    if (I < Path.size())
      Partial += '/';
  }
  return true;
}

/// One cache entry file as seen by a directory scan.
struct DiskEntry {
  std::string Path;
  std::filesystem::file_time_type Mtime;
  uint64_t Bytes = 0;
};

/// Lists the `*.json` entry files under \p Dir. In-flight temp files
/// (`*.json.tmp.<pid>`) are excluded by the extension check. Every
/// stat is best-effort: an entry that vanishes mid-scan (concurrent
/// eviction or a manual flush) is simply skipped.
std::vector<DiskEntry> scanEntries(const std::string &Dir) {
  std::vector<DiskEntry> Out;
  std::error_code EC;
  for (const auto &It : std::filesystem::directory_iterator(Dir, EC)) {
    if (It.path().extension() != ".json")
      continue;
    std::error_code FileEC;
    if (!It.is_regular_file(FileEC) || FileEC)
      continue;
    DiskEntry E;
    E.Path = It.path().string();
    E.Bytes = It.file_size(FileEC);
    if (FileEC)
      continue;
    E.Mtime = It.last_write_time(FileEC);
    if (FileEC)
      continue;
    Out.push_back(std::move(E));
  }
  return Out;
}

} // namespace

std::optional<ResultAggregator::Cell> ResultCache::lookup(const CellKey &K) {
  auto Miss = [&](uint64_t Counters::*Why) -> std::optional<ResultAggregator::Cell> {
    std::lock_guard<std::mutex> Lock(M);
    ++C.Misses;
    if (Why)
      ++(C.*Why);
    return std::nullopt;
  };
  if (!enabled())
    return Miss(nullptr);

  const std::string Path = Dir + "/" + K.address() + ".json";
  Expected<JsonValue> Doc = readJsonFile(Path);
  if (!Doc)
    return Miss(nullptr);

  const JsonValue *Schema = Doc->get("schema");
  const JsonValue *Version = Doc->get("version");
  if (!Schema || !Schema->isString() || Schema->asString() != EnvelopeSchema ||
      !Version || !Version->isInteger() ||
      Version->asInt() != ReportSchemaVersion)
    return Miss(&Counters::StaleSchema);

  const JsonValue *KeyDoc = Doc->get("key");
  if (!KeyDoc)
    return Miss(&Counters::KeyMismatch);
  Expected<CellKey> Stored = CellKey::fromJson(*KeyDoc);
  if (!Stored || *Stored != K)
    return Miss(&Counters::KeyMismatch);

  const JsonValue *CellDoc = Doc->get("cell");
  if (!CellDoc)
    return Miss(&Counters::KeyMismatch);
  Expected<ResultAggregator::Cell> Cell = sweepCellFromJson(*CellDoc);
  if (!Cell)
    return Miss(&Counters::KeyMismatch);

  {
    std::lock_guard<std::mutex> Lock(M);
    ++C.Hits;
  }
  return *Cell;
}

void ResultCache::store(const CellKey &K, const ResultAggregator::Cell &Cell) {
  if (!enabled())
    return;
  auto Failed = [&] {
    std::lock_guard<std::mutex> Lock(M);
    ++C.StoreFailures;
  };
  if (!ensureDir(Dir))
    return Failed();

  JsonValue Doc = JsonValue::object();
  Doc.set("schema", JsonValue::str(EnvelopeSchema));
  Doc.set("version", JsonValue::integer(ReportSchemaVersion));
  Doc.set("key", K.toJson());
  // Every optional group rides along: the cache keeps full fidelity and
  // the document renderer re-applies the request's inclusion toggles.
  Doc.set("cell", sweepCellToJson(Cell, /*IncludeOptCounters=*/true,
                                  /*IncludeEngineCounters=*/true));

  const std::string Path = Dir + "/" + K.address() + ".json";
  // Unique temp name per writer so concurrent stores of the same cell
  // never truncate each other mid-write; rename() makes the publish
  // atomic (identical bytes either way — the value is a pure function
  // of the key).
  const std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  std::string Err;
  if (!writeJsonFile(Tmp, Doc, &Err))
    return Failed();
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Failed();
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    ++C.Stores;
  }
  if (MaxBytes > 0)
    evictOverBudget(Path);
}

void ResultCache::evictOverBudget(const std::string &JustStored) {
  std::vector<DiskEntry> Entries = scanEntries(Dir);
  uint64_t Total = 0;
  for (const DiskEntry &E : Entries)
    Total += E.Bytes;
  if (Total <= MaxBytes)
    return;

  // Oldest mtime first; path breaks ties so concurrent evictors walk
  // the directory in the same order and converge instead of thrashing.
  std::sort(Entries.begin(), Entries.end(),
            [](const DiskEntry &A, const DiskEntry &B) {
              return A.Mtime != B.Mtime ? A.Mtime < B.Mtime : A.Path < B.Path;
            });

  uint64_t Evicted = 0, EvictedB = 0;
  for (const DiskEntry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (E.Path == JustStored)
      continue; // a store is never its own victim
    std::error_code EC;
    if (!std::filesystem::remove(E.Path, EC) || EC)
      continue; // already gone or unremovable: someone else's problem
    Total -= E.Bytes;
    ++Evicted;
    EvictedB += E.Bytes;
  }
  if (Evicted == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  C.Evictions += Evicted;
  C.EvictedBytes += EvictedB;
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return C;
}

ResultCache::Usage ResultCache::usage() const {
  Usage U;
  if (!enabled())
    return U;
  for (const DiskEntry &E : scanEntries(Dir)) {
    ++U.Entries;
    U.Bytes += E.Bytes;
  }
  return U;
}
