//===- service/SweepService.h - Shared sweep execution -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one sweep engine behind all three front ends: batch `ogate-sim
/// --sweep`, the bench harness cache fills, and the `ogate-serve`
/// socket server. A service owns, for its lifetime:
///
///  - a workload cache: each distinct (workload, scale) is built and
///    pre-decoded once, compute-once across concurrent requests;
///  - a SamplePlanCache: sampled cells share plan/checkpoint artifacts
///    across requests exactly as they already did within one sweep;
///  - a persistent ResultCache of reduced report cells, keyed by
///    content (service/CellKey.h);
///  - an in-flight cell map: concurrent requests for the same cell key
///    share one computation (the compute-once future pattern of
///    sample/SamplePlanCache.h lifted from sampled artifacts to whole
///    cells). A ready future doubles as an in-memory cell cache.
///
/// serve() is the reduced path: every cell resolves through cache →
/// in-flight map → fresh computation, results are reduced to
/// ResultAggregator::Cells on the worker threads (streaming, via
/// SweepOptions::Consume), and the response document is rendered by the
/// same sweepToJson as batch mode — so a served sweep is byte-identical
/// to `ogate-sim --sweep --json`, whether cold, warm, or deduplicated.
/// runFull() is the full-result path for benches, which need whole
/// PipelineResults (transformed programs, histograms); it shares the
/// workload and sample-plan caches but bypasses the cell cache.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SERVICE_SWEEPSERVICE_H
#define OG_SERVICE_SWEEPSERVICE_H

#include "driver/Driver.h"
#include "sample/SamplePlanCache.h"
#include "service/CellKey.h"
#include "service/ResultCache.h"
#include "service/SweepRequest.h"

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace og {

/// Service construction knobs.
struct ServiceOptions {
  /// Worker threads per request's compute phase.
  unsigned Jobs = 1;
  /// Worker threads for window-parallel sampled replay *inside* each
  /// cell (PipelineConfig::SampleWindowJobs). Results are byte-identical
  /// at any value. Total threads scale with Jobs × SampleWindowJobs, so
  /// pick one axis: sweeps parallelize across cells (leave this 1),
  /// single-run front ends parallelize across windows (leave Jobs 1).
  unsigned SampleWindowJobs = 1;
  /// Propagated to the driver: true runs every cell even after one fails.
  bool KeepGoing = false;
  /// Persistent cell-cache directory; "" disables persistence (the
  /// in-flight map still deduplicates and remembers within the service
  /// lifetime).
  std::string CacheDir;
  /// Cell-cache size budget in bytes; stores that leave the directory
  /// over budget evict oldest-mtime entries (service/ResultCache.h).
  /// 0 = unbounded (the default).
  uint64_t MaxCacheBytes = 0;
};

/// One served sweep: either a failure with a diagnostic, or the
/// aggregate + rendered document plus how each cell was resolved.
struct ServedSweep {
  bool Ok = false;
  /// First failure in spec order ("spec 'compress/vrp': <what>"), or a
  /// request-level diagnostic (unknown sweep kind / workload, duplicate
  /// cell).
  std::string Error;
  ResultAggregator Aggregate;
  /// The full report document (sweepToJson shape) — byte-identical to
  /// batch `ogate-sim --sweep --json` for the same request.
  JsonValue Document;
  /// Per-request resolution counters. Hits counts persistent-cache and
  /// ready-in-memory cells, Misses cells this request computed,
  /// InflightDedups cells another in-progress request was already
  /// computing (waited on, not recomputed). Hits + Misses +
  /// InflightDedups == cell count.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t InflightDedups = 0;
};

/// A workload built once per service, shared read-only (see Driver.cpp's
/// per-sweep SharedWorkload — this is the same idea with service
/// lifetime).
struct ServiceWorkload {
  Workload W;
  std::unique_ptr<DecodedProgram> Decoded;

  explicit ServiceWorkload(Workload Built) : W(std::move(Built)) {
    Decoded = std::make_unique<DecodedProgram>(W.Prog);
  }
};

/// The sweep engine (see file comment). All entry points are
/// thread-safe; concurrent serve() calls share workloads, sampled
/// artifacts, and in-flight cell computations.
class SweepService {
public:
  explicit SweepService(ServiceOptions Opts)
      : Opts(std::move(Opts)),
        Cache(this->Opts.CacheDir, this->Opts.MaxCacheBytes) {}

  /// Serves one request through the cell cache (see file comment).
  ServedSweep serve(const SweepRequest &R);

  /// Runs \p Specs with full results (bench path): shares this
  /// service's workload and sample-plan caches, bypasses the cell
  /// cache. \p JobsOverride > 0 overrides ServiceOptions::Jobs.
  SweepResult runFull(const std::vector<ExperimentSpec> &Specs,
                      unsigned JobsOverride = 0);

  /// Lifetime persistent-cache traffic (includes lookups on behalf of
  /// every request served so far).
  ResultCache::Counters cacheCounters() const { return Cache.counters(); }

  /// Current on-disk cell-cache footprint (scanned, so it reflects
  /// stores and evictions by other processes too).
  ResultCache::Usage cacheUsage() const { return Cache.usage(); }

  const ServiceOptions &options() const { return Opts; }

private:
  /// One computed-or-failed cell as shared by the in-flight map.
  struct ServedCell {
    std::string Error; ///< "" = Cell is valid
    ResultAggregator::Cell Cell;
  };
  using ServedCellPtr = std::shared_ptr<const ServedCell>;

  /// Compute-once (workload, scale) -> built + decoded workload.
  std::shared_ptr<const ServiceWorkload> getWorkload(const std::string &Name,
                                                     double Scale);

  /// The per-spec job every path runs: service-shared decode + plan
  /// cache, same pipeline invocation as the batch driver's default job.
  PipelineResult runSpec(const ExperimentSpec &Spec);

  ServiceOptions Opts;
  ResultCache Cache;
  SamplePlanCache PlanCache;

  std::mutex WorkloadsM;
  std::map<std::pair<std::string, double>,
           std::shared_future<std::shared_ptr<const ServiceWorkload>>>
      WorkloadFutures;

  std::mutex CellsM;
  /// In-flight and completed cells by CellKey::address(). Entries for
  /// failed cells are erased (later requests retry); successful entries
  /// persist as an in-memory cache for the service lifetime (a reduced
  /// cell is ~1 KB — a full matrix sweep stays well under a megabyte).
  std::map<std::string, std::shared_future<ServedCellPtr>> CellFutures;
};

} // namespace og

#endif // OG_SERVICE_SWEEPSERVICE_H
