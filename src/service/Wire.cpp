//===- service/Wire.cpp ---------------------------------------------------==//

#include "service/Wire.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace og;

namespace {

/// Fills a sockaddr_un for \p Path, rejecting paths that do not fit the
/// fixed-size sun_path field (a real limit on every platform, ~108
/// bytes on Linux — better a clear diagnostic than silent truncation).
bool fillAddr(const std::string &Path, sockaddr_un &Addr, std::string &Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + Path + "' is empty or too long (max " +
            std::to_string(sizeof(Addr.sun_path) - 1) + " bytes)";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

std::string errnoString(const char *What, const std::string &Path) {
  return std::string(What) + " '" + Path + "': " + std::strerror(errno);
}

} // namespace

int og::listenUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr;
  if (!fillAddr(Path, Addr, Error))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoString("socket", Path);
    return -1;
  }
  // A previous server that died uncleanly leaves its socket file behind;
  // bind() would fail with EADDRINUSE even though nobody is listening.
  // Unlinking first makes restart idempotent. If another server IS
  // alive on this path, its clients lose the name — single-server-per-
  // path is the operator's contract, same as a pid file.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = errnoString("bind", Path);
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, 64) != 0) {
    Error = errnoString("listen", Path);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int og::connectUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr;
  if (!fillAddr(Path, Addr, Error))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoString("socket", Path);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = errnoString("connect", Path);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool og::sendLine(int Fd, const std::string &Line) {
  std::string Framed = Line;
  Framed += '\n';
  size_t Off = 0;
  while (Off < Framed.size()) {
    ssize_t N = ::send(Fd, Framed.data() + Off, Framed.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool LineReader::readLine(std::string &Out) {
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Out.assign(Buf, 0, Nl);
      Buf.erase(0, Nl + 1);
      return true;
    }
    if (Buf.size() > MaxLine)
      return false;
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}
