//===- service/Wire.h - Unix-socket line transport ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under tools/ogate-serve: line-delimited compact JSON
/// over a Unix domain stream socket. One request per line, one response
/// per line; JsonValue::writeCompact guarantees a serialized document
/// never contains '\n', so framing is trivial and every message stays
/// grep-able with plain `nc -U`. These helpers are deliberately thin —
/// blocking I/O, no event loop — because a sweep server's unit of work
/// is seconds of simulation, not microseconds of routing.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SERVICE_WIRE_H
#define OG_SERVICE_WIRE_H

#include <cstddef>
#include <string>

namespace og {

/// Creates, binds and listens on a Unix stream socket at \p Path,
/// replacing a stale socket file if one exists. Returns the listening fd
/// or -1 with a diagnostic in \p Error.
int listenUnix(const std::string &Path, std::string &Error);

/// Connects to the Unix stream socket at \p Path. Returns the fd or -1
/// with a diagnostic in \p Error.
int connectUnix(const std::string &Path, std::string &Error);

/// Writes \p Line plus the '\n' terminator, looping over partial writes
/// (MSG_NOSIGNAL — a vanished peer is a false return, not a SIGPIPE).
bool sendLine(int Fd, const std::string &Line);

/// Buffered line reader over one fd. Lines are bounded: a peer that
/// streams more than \p MaxLine bytes without a newline is disconnected
/// rather than ballooning server memory.
class LineReader {
public:
  /// Default bound: a matrix-sweep response document is ~100 KB compact;
  /// 16 MiB leaves two orders of magnitude of headroom.
  explicit LineReader(int Fd, size_t MaxLine = 16u << 20)
      : Fd(Fd), MaxLine(MaxLine) {}

  /// Reads the next '\n'-terminated line (terminator stripped). false on
  /// EOF, error, or an over-long line.
  bool readLine(std::string &Out);

private:
  int Fd;
  size_t MaxLine;
  std::string Buf;
};

} // namespace og

#endif // OG_SERVICE_WIRE_H
