//===- power/ActivityCounts.h - Scheme-free activity histogram ---*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A gating-scheme-independent summary of a simulated stretch's activity,
/// from which the energy of *any* (scheme, coefficients) pair can be
/// derived after the fact. The key observation: the timing core never
/// reads the gating scheme — it only reports accesses — and every energy
/// charge EnergyModel makes is a function of (structure, opcode width,
/// significant bytes of the value). Binning data accesses by that triple
/// therefore loses nothing: deriving energy from the histogram multiplies
/// exactly the per-access charge EnergyModel would have accumulated, so
/// sweep cells that execute the same dynamic stream under different
/// schemes (baseline / hw-sig / hw-size; vrp / combined-VRP) can share
/// one detailed simulation and derive their per-scheme reports from its
/// histogram — the "single-pass" half of single-pass sampled sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef OG_POWER_ACTIVITYCOUNTS_H
#define OG_POWER_ACTIVITYCOUNTS_H

#include "power/EnergyModel.h"
#include "uarch/Activity.h"

#include <array>

namespace og {

/// Per-structure activity histogram. Counters are doubles so the sampled
/// estimator can scale window deltas by fractional stratum weights with
/// the same arithmetic it uses for UarchStats; raw counts stay exact
/// (integers are exact in a double far beyond any run length here).
struct ActivityCounts {
  static constexpr unsigned NumWidths = 4; ///< Width::B..Width::Q
  static constexpr unsigned NumSig = 8;    ///< significantBytes() is 1..8

  /// Fixed-cost accesses (ActivitySink::access).
  std::array<double, NumStructures> Access = {};
  /// Miss penalties (ActivitySink::missPenalty).
  std::array<double, NumStructures> Miss = {};
  /// Data-carrying accesses, binned by opcode width and the value's
  /// significant-byte count: Data[S][width][sigBytes - 1].
  std::array<std::array<std::array<double, NumSig>, NumWidths>, NumStructures>
      Data = {};

  /// Accumulates F * (B - A) into every counter (the sampled estimator's
  /// per-window delta scaling; mirrors its UarchStats handling).
  void addScaled(double F, const ActivityCounts &A, const ActivityCounts &B);

  /// Energy each structure would have accumulated had an EnergyModel
  /// under (Scheme, Coeffs) observed this activity. Per-cycle clock
  /// energy is not included (callers add it from their cycle estimate,
  /// as makeReport does).
  std::array<double, NumStructures>
  structureEnergy(GatingScheme Scheme, const EnergyCoefficients &Coeffs) const;
};

/// ActivitySink that records the histogram instead of charging energy.
/// Drop-in for EnergyModel wherever the scheme should be decided later.
class ActivityRecorder final : public ActivitySink {
public:
  void access(Structure S) override;
  void dataAccess(Structure S, int64_t Value, Width OpcodeW) override;
  void missPenalty(Structure S) override;

  const ActivityCounts &counts() const { return C; }

private:
  ActivityCounts C;
};

} // namespace og

#endif // OG_POWER_ACTIVITYCOUNTS_H
