//===- power/Report.h - Energy/performance reports ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The combined outcome of one timing+power simulation, and the
/// energy-delay^2 metric ([2] in the paper) used for Figures 11/15.
///
//===----------------------------------------------------------------------===//

#ifndef OG_POWER_REPORT_H
#define OG_POWER_REPORT_H

#include "power/EnergyModel.h"
#include "uarch/Core.h"

#include <array>

namespace og {

/// One simulated configuration's results.
struct EnergyReport {
  GatingScheme Scheme = GatingScheme::None;
  std::array<double, NumStructures> PerStructure = {};
  double TotalEnergy = 0.0;
  UarchStats Uarch;

  /// Energy-delay^2 (lower is better).
  double ed2() const {
    double D = static_cast<double>(Uarch.Cycles);
    return TotalEnergy * D * D;
  }

  /// Fractional saving of this report versus \p Baseline, per structure
  /// (1 - E/E0); 0 when the baseline is zero.
  double structureSaving(const EnergyReport &Baseline, Structure S) const;

  /// Fractional total-energy saving versus \p Baseline.
  double energySaving(const EnergyReport &Baseline) const;

  /// Fractional ED^2 saving versus \p Baseline.
  double ed2Saving(const EnergyReport &Baseline) const;

  /// Fractional execution-time saving versus \p Baseline.
  double timeSaving(const EnergyReport &Baseline) const;
};

/// Packages an EnergyModel + OooCore run into a report.
EnergyReport makeReport(const EnergyModel &EM, const UarchStats &Stats);

} // namespace og

#endif // OG_POWER_REPORT_H
