//===- power/Report.cpp ---------------------------------------------------==//

#include "power/Report.h"

using namespace og;

double EnergyReport::structureSaving(const EnergyReport &Baseline,
                                     Structure S) const {
  double E0 = Baseline.PerStructure[static_cast<unsigned>(S)];
  if (E0 <= 0.0)
    return 0.0;
  return 1.0 - PerStructure[static_cast<unsigned>(S)] / E0;
}

double EnergyReport::energySaving(const EnergyReport &Baseline) const {
  if (Baseline.TotalEnergy <= 0.0)
    return 0.0;
  return 1.0 - TotalEnergy / Baseline.TotalEnergy;
}

double EnergyReport::ed2Saving(const EnergyReport &Baseline) const {
  double Base = Baseline.ed2();
  if (Base <= 0.0)
    return 0.0;
  return 1.0 - ed2() / Base;
}

double EnergyReport::timeSaving(const EnergyReport &Baseline) const {
  if (Baseline.Uarch.Cycles == 0)
    return 0.0;
  return 1.0 - static_cast<double>(Uarch.Cycles) /
                   static_cast<double>(Baseline.Uarch.Cycles);
}

EnergyReport og::makeReport(const EnergyModel &EM, const UarchStats &Stats) {
  EnergyReport R;
  R.Scheme = EM.scheme();
  for (unsigned S = 0; S < NumStructures; ++S)
    R.PerStructure[S] = EM.structureEnergy(static_cast<Structure>(S));
  R.TotalEnergy =
      EM.totalEnergy() + EM.clockPerCycle() * static_cast<double>(Stats.Cycles);
  R.Uarch = Stats;
  return R;
}
