//===- power/ActivityCounts.cpp -------------------------------------------==//

#include "power/ActivityCounts.h"

#include "support/MathExtras.h"

using namespace og;

void ActivityCounts::addScaled(double F, const ActivityCounts &A,
                               const ActivityCounts &B) {
  for (unsigned S = 0; S < NumStructures; ++S) {
    Access[S] += F * (B.Access[S] - A.Access[S]);
    Miss[S] += F * (B.Miss[S] - A.Miss[S]);
    for (unsigned W = 0; W < NumWidths; ++W)
      for (unsigned G = 0; G < NumSig; ++G)
        Data[S][W][G] += F * (B.Data[S][W][G] - A.Data[S][W][G]);
  }
}

std::array<double, NumStructures>
ActivityCounts::structureEnergy(GatingScheme Scheme,
                                const EnergyCoefficients &Coeffs) const {
  std::array<double, NumStructures> E = {};
  for (unsigned S = 0; S < NumStructures; ++S) {
    const Structure St = static_cast<Structure>(S);
    double Acc = Coeffs.Fixed[S] * Access[S] + Coeffs.Miss[S] * Miss[S];
    // Tag overhead mirrors EnergyModel::dataAccess: the hardware schemes
    // pay their tag bits on every data access, and the software scheme
    // stores two size bits alongside cached values (registers carry the
    // width in the opcode).
    double TagBytes = tagBits(Scheme) / 8.0;
    if (Scheme == GatingScheme::Software &&
        (St == Structure::DCacheL1 || St == Structure::DCacheL2))
      TagBytes += 2.0 / 8.0;
    for (unsigned W = 0; W < NumWidths; ++W)
      for (unsigned G = 0; G < NumSig; ++G) {
        const double N = Data[S][W][G];
        if (N == 0.0)
          continue;
        const unsigned Bytes =
            effectiveBytesForSig(Scheme, G + 1, static_cast<Width>(W));
        Acc += N * (Coeffs.Fixed[S] + Coeffs.PerByte[S] * (Bytes + TagBytes));
      }
    E[S] = Acc;
  }
  return E;
}

void ActivityRecorder::access(Structure S) {
  C.Access[static_cast<unsigned>(S)] += 1.0;
}

void ActivityRecorder::dataAccess(Structure S, int64_t Value, Width OpcodeW) {
  C.Data[static_cast<unsigned>(S)][static_cast<unsigned>(OpcodeW)]
        [significantBytes(Value) - 1] += 1.0;
}

void ActivityRecorder::missPenalty(Structure S) {
  C.Miss[static_cast<unsigned>(S)] += 1.0;
}
