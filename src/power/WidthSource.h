//===- power/WidthSource.h - Operand-gating schemes --------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How many byte lanes a data access switches, under each operand-gating
/// scheme the paper evaluates:
///  - None: the full 64-bit datapath switches (baseline);
///  - Software: the opcode width gates the lanes (VRP/VRS, Sections 2-3);
///  - HwSignificance: per-value significant bytes + 7 tag bits (§4.6);
///  - HwSize: {1,2,5,8}-byte buckets + 2 tag bits (§4.6);
///  - Combined: hardware buckets capped by the opcode width + 2 tag bits
///    (§4.7: values are 8/16/40/64 bits inside the core).
///
//===----------------------------------------------------------------------===//

#ifndef OG_POWER_WIDTHSOURCE_H
#define OG_POWER_WIDTHSOURCE_H

#include "hw/Compression.h"
#include "isa/Width.h"

#include <cstdint>

namespace og {

/// The operand-gating configurations of the evaluation.
enum class GatingScheme : uint8_t {
  None,
  Software,
  HwSignificance,
  HwSize,
  Combined,
};

/// Display name ("baseline", "VRP/VRS (software)", ...).
const char *gatingSchemeName(GatingScheme S);

/// Byte lanes that switch for a data access moving \p Value under opcode
/// width \p OpcodeW.
unsigned effectiveBytes(GatingScheme S, int64_t Value, Width OpcodeW);

/// Same, for a value known only by its significant-byte count (1..8).
/// effectiveBytes(S, V, W) == effectiveBytesForSig(S, significantBytes(V), W)
/// for every value — the identity that lets a (width, sig-bytes)
/// histogram of data accesses stand in for the access stream when
/// deriving energy after the fact (power/ActivityCounts.h).
unsigned effectiveBytesForSig(GatingScheme S, unsigned SigBytes, Width OpcodeW);

/// Tag storage overhead in bits per data word for the scheme.
unsigned tagBits(GatingScheme S);

} // namespace og

#endif // OG_POWER_WIDTHSOURCE_H
