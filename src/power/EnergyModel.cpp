//===- power/EnergyModel.cpp ----------------------------------------------==//

#include "power/EnergyModel.h"

using namespace og;

EnergyCoefficients EnergyCoefficients::defaults() {
  EnergyCoefficients C = {};
  auto set = [&](Structure S, double Fixed, double PerByte, double Miss) {
    C.Fixed[static_cast<unsigned>(S)] = Fixed;
    C.PerByte[static_cast<unsigned>(S)] = PerByte;
    C.Miss[static_cast<unsigned>(S)] = Miss;
  };
  // Fixed parts model decoders/tags/wordlines/address paths; per-byte
  // parts model the data lanes a gating scheme can switch off. Structures
  // that mostly carry addresses (LSQ, D-cache) have small per-byte shares,
  // which is what keeps their savings low in paper Figure 3.
  set(Structure::Rename, 0.30, 0.000, 0.0);
  set(Structure::BPred, 0.45, 0.000, 0.0);
  set(Structure::IQueue, 0.16, 0.055, 0.0);
  set(Structure::Rob, 0.25, 0.015, 0.0);
  set(Structure::RenameBufs, 0.07, 0.035, 0.0);
  set(Structure::Lsq, 0.65, 0.022, 0.0);
  set(Structure::RegFile, 0.09, 0.043, 0.0);
  set(Structure::ICache, 2.10, 0.000, 6.0);
  set(Structure::DCacheL1, 0.95, 0.055, 4.0);
  set(Structure::DCacheL2, 2.40, 0.060, 9.0);
  set(Structure::IntAlu, 0.24, 0.120, 0.0);
  set(Structure::ResultBus, 0.06, 0.050, 0.0);
  C.ClockPerCycle = 6.0;
  return C;
}

void EnergyModel::access(Structure S) {
  PerStructure[static_cast<unsigned>(S)] +=
      Coeffs.Fixed[static_cast<unsigned>(S)];
}

void EnergyModel::dataAccess(Structure S, int64_t Value, Width OpcodeW) {
  unsigned Idx = static_cast<unsigned>(S);
  unsigned Bytes = effectiveBytes(Scheme, Value, OpcodeW);
  double TagBytes = tagBits(Scheme) / 8.0;
  // Paper Section 2.4, memory-hierarchy approach (1): the software scheme
  // stores two size bits alongside cached values (chosen over
  // sign-extension "because it yields more energy benefits"); registers
  // need no tags, their width lives in the opcode.
  if (Scheme == GatingScheme::Software &&
      (S == Structure::DCacheL1 || S == Structure::DCacheL2))
    TagBytes += 2.0 / 8.0;
  PerStructure[Idx] +=
      Coeffs.Fixed[Idx] + Coeffs.PerByte[Idx] * (Bytes + TagBytes);
}

void EnergyModel::missPenalty(Structure S) {
  PerStructure[static_cast<unsigned>(S)] +=
      Coeffs.Miss[static_cast<unsigned>(S)];
}

double EnergyModel::totalEnergy() const {
  double Total = 0.0;
  for (double E : PerStructure)
    Total += E;
  return Total;
}
