//===- power/EnergyModel.h - Wattch-style energy accounting ------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Activity-based energy accounting in the style of Wattch (Brooks et
/// al., ISCA'00) with the paper's extension: "activity counts for all the
/// blocks to allow proper data-specific power modeling" (Section 4.1).
/// Every structure access costs a fixed part (decoders, wordlines, tags,
/// address paths) plus a per-byte part for the data lanes that actually
/// switch; the gating scheme decides how many lanes those are. Hardware
/// schemes additionally pay their tag bits on every data access.
///
/// Absolute numbers are synthetic (our substrate is not the authors'
/// testbed); the per-structure coefficients are chosen so the baseline
/// energy breakdown is Wattch-like, which is what makes the savings
/// *shapes* of Figures 3/8/9/13/14 comparable.
///
//===----------------------------------------------------------------------===//

#ifndef OG_POWER_ENERGYMODEL_H
#define OG_POWER_ENERGYMODEL_H

#include "power/WidthSource.h"
#include "support/Hash.h"
#include "uarch/Activity.h"

#include <array>

namespace og {

/// Per-structure energy coefficients (arbitrary nJ-like units).
struct EnergyCoefficients {
  double Fixed[NumStructures];
  double PerByte[NumStructures];
  double Miss[NumStructures];
  /// Clock tree + unmodeled always-on logic, charged per cycle. Included
  /// in the "Processor" total (it dilutes overall savings exactly like the
  /// unaffected structures do in paper Figure 3).
  double ClockPerCycle;

  /// The default, Wattch-flavored coefficient set.
  static EnergyCoefficients defaults();
};

/// Folds every EnergyCoefficients field into \p H, in declaration order
/// (doubles by bit pattern). Content keys (service/CellKey.h) depend on
/// this; a new field added above MUST be folded here too.
inline void hashEnergyCoefficients(Fnv1a &H, const EnergyCoefficients &C) {
  for (unsigned I = 0; I < NumStructures; ++I)
    H.f64(C.Fixed[I]);
  for (unsigned I = 0; I < NumStructures; ++I)
    H.f64(C.PerByte[I]);
  for (unsigned I = 0; I < NumStructures; ++I)
    H.f64(C.Miss[I]);
  H.f64(C.ClockPerCycle);
}

/// ActivitySink that accumulates energy under one gating scheme.
class EnergyModel : public ActivitySink {
public:
  EnergyModel(GatingScheme Scheme,
              EnergyCoefficients Coeffs = EnergyCoefficients::defaults())
      : Scheme(Scheme), Coeffs(Coeffs) {
    PerStructure.fill(0.0);
  }

  void access(Structure S) override;
  void dataAccess(Structure S, int64_t Value, Width OpcodeW) override;
  void missPenalty(Structure S) override;

  GatingScheme scheme() const { return Scheme; }
  double structureEnergy(Structure S) const {
    return PerStructure[static_cast<unsigned>(S)];
  }
  double clockPerCycle() const { return Coeffs.ClockPerCycle; }
  /// Sum over structures, excluding the per-cycle clock part (the report
  /// adds that from the cycle count).
  double totalEnergy() const;

private:
  GatingScheme Scheme;
  EnergyCoefficients Coeffs;
  std::array<double, NumStructures> PerStructure;
};

} // namespace og

#endif // OG_POWER_ENERGYMODEL_H
