//===- power/WidthSource.cpp ----------------------------------------------==//

#include "power/WidthSource.h"

using namespace og;

const char *og::gatingSchemeName(GatingScheme S) {
  switch (S) {
  case GatingScheme::None:
    return "baseline";
  case GatingScheme::Software:
    return "software (opcode widths)";
  case GatingScheme::HwSignificance:
    return "hw significance compression";
  case GatingScheme::HwSize:
    return "hw size compression";
  case GatingScheme::Combined:
    return "combined sw+hw";
  }
  return "?";
}

unsigned og::effectiveBytes(GatingScheme S, int64_t Value, Width OpcodeW) {
  return effectiveBytesForSig(S, significantBytes(Value), OpcodeW);
}

unsigned og::effectiveBytesForSig(GatingScheme S, unsigned SigBytes,
                                  Width OpcodeW) {
  switch (S) {
  case GatingScheme::None:
    return 8;
  case GatingScheme::Software:
    return widthBytes(OpcodeW);
  case GatingScheme::HwSignificance:
    return SigBytes;
  case GatingScheme::HwSize:
    return sizeCompressionBytesForSig(SigBytes);
  case GatingScheme::Combined: {
    unsigned Hw = sizeCompressionBytesForSig(SigBytes);
    unsigned Sw = widthBytes(OpcodeW);
    return Hw < Sw ? Hw : Sw;
  }
  }
  return 8;
}

unsigned og::tagBits(GatingScheme S) {
  switch (S) {
  case GatingScheme::HwSignificance:
    return SignificanceTagBits;
  case GatingScheme::HwSize:
    return SizeTagBits;
  case GatingScheme::Combined:
    return SizeTagBits; // §4.7: two significance tag bits follow values
  default:
    return 0;
  }
}
