//===- hw/Compression.h - Hardware operand-gating schemes --------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic hardware schemes of paper Section 4.6 (after Canal,
/// Gonzalez & Smith, MICRO'00), used as the comparison baseline for the
/// software techniques:
///
///  - significance compression: 7 tag bits per 64-bit word encode how many
///    trailing bytes are significant (the rest are sign extension);
///  - size compression: 2 tag bits per word bucket values into 1, 2, 5 or
///    8 bytes. The odd 5-byte bucket follows the paper's Figure 12
///    analysis: "the choice of 5 bytes rather than the more natural 4 is
///    heavily influenced by memory addresses that are between 33 and 40
///    bits long".
///
/// The combined HW+SW mode caps the dynamic byte count by the opcode width
/// (Section 4.7: values are 8, 16, 40 or 64 bits inside the core).
///
//===----------------------------------------------------------------------===//

#ifndef OG_HW_COMPRESSION_H
#define OG_HW_COMPRESSION_H

#include "isa/Width.h"
#include "support/MathExtras.h"

#include <cstdint>

namespace og {

/// Tag-bit storage overhead per 64-bit word, in bits.
constexpr unsigned SignificanceTagBits = 7;
constexpr unsigned SizeTagBits = 2;

/// Dynamic significant bytes of a value under significance compression
/// (exact byte count, 1..8).
inline unsigned significanceBytes(int64_t V) { return significantBytes(V); }

/// Size-compression bucket for a known significant-byte count (1..8).
inline unsigned sizeCompressionBytesForSig(unsigned Sig) {
  if (Sig <= 1)
    return 1;
  if (Sig <= 2)
    return 2;
  if (Sig <= 5)
    return 5;
  return 8;
}

/// Dynamic bytes under size compression: bucket into {1, 2, 5, 8}.
inline unsigned sizeCompressionBytes(int64_t V) {
  return sizeCompressionBytesForSig(significantBytes(V));
}

/// Combined SW+HW effective bytes (Section 4.7): the hardware buckets
/// within the compiler-declared opcode width.
inline unsigned combinedBytes(int64_t V, Width OpcodeWidth) {
  unsigned Hw = sizeCompressionBytes(V);
  unsigned Sw = widthBytes(OpcodeWidth);
  return Hw < Sw ? Hw : Sw;
}

} // namespace og

#endif // OG_HW_COMPRESSION_H
