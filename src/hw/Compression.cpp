//===- hw/Compression.cpp -------------------------------------------------==//
//
// The compression helpers are header-inline; this file anchors the library
// target and hosts the compile-time self-checks.
//
//===----------------------------------------------------------------------===//

#include "hw/Compression.h"

namespace og {

static_assert(SignificanceTagBits == 7, "one tag bit per byte boundary");
static_assert(SizeTagBits == 2, "four buckets need two bits");

} // namespace og
