//===- vrs/EnergyTables.cpp -----------------------------------------------==//

#include "vrs/EnergyTables.h"

using namespace og;

double og::paperTable1Saving(Width Dest, Width Source) {
  // Table 1, CGO'04: rows = destination width, columns = source width.
  //            src64 src32 src16 src8
  //   dst64      -    -1    -3    -6
  //   dst32      1     -    -2    -5
  //   dst16      3     2     -    -3
  //   dst8       6     5     3     -
  static const double T[4][4] = {
      // indexed [dest][source] with Width order B,H,W,Q
      /*dst B*/ {0, 3, 5, 6},
      /*dst H*/ {-3, 0, 2, 3},
      /*dst W*/ {-5, -2, 0, 1},
      /*dst Q*/ {-6, -3, -1, 0},
  };
  return T[static_cast<unsigned>(Dest)][static_cast<unsigned>(Source)];
}
