//===- vrs/Benefit.h - Savings/cost estimation for VRS -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the recursive Savings formula of paper Section 3.1:
///
///   Savings(I,r,min,max) = sum over D in Uses(I,r) of
///       InstCount(D) * InstSaving(D,r,min,max) + Savings(D,r',min',max')
///
/// where pinning r to [min,max] at D may let D use a narrower opcode
/// (InstSaving from the Table-1 energy deltas) and narrows D's output
/// range r', which recurses into D's own uses. InstCount comes from
/// basic-block profiles.
///
/// The walk is interprocedural: when the pinned register feeds an argument
/// register at a call site, the savings of pinning the callee's entry
/// argument are added (the specializer clones such callees so the narrower
/// argument range actually reaches them).
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRS_BENEFIT_H
#define OG_VRS_BENEFIT_H

#include "profile/BlockProfile.h"
#include "vrp/Narrowing.h"
#include "vrs/EnergyTables.h"

#include <set>
#include <vector>

namespace og {

/// Program-wide savings estimator over the shared analysis cache: def-use
/// chains and useful widths come from \p AM (usually warm from the
/// preceding narrowing run), per-function call-site / entry-argument-use
/// indices are built once here.
class ProgramBenefit {
public:
  /// \p AM must outlive the estimator, and the program must not be
  /// mutated while the estimator is in use (the candidate indices are
  /// snapshots of construction time).
  ProgramBenefit(AnalysisManager &AM, const RangeAnalysis &RA,
                 const ProgramProfile *Profile, IsaPolicy Policy,
                 const EnergyParams &Energy, bool UsefulThroughArith);

  /// Total estimated energy saved when the output of instruction \p DefId
  /// of function \p F is known to lie in \p R (before weighting by the
  /// range frequency).
  double savings(int32_t F, size_t DefId, const ValueRange &R) const;

  /// Executions of the block containing \p InstId (1 without a profile).
  uint64_t instCount(int32_t F, size_t InstId) const;

  const ReachingDefs &reachingDefs(int32_t F) const { return *Ctx[F].RD; }
  const UsefulWidth &usefulWidth(int32_t F) const { return *Ctx[F].UW; }

private:
  struct FnCtx {
    /// Manager-owned analyses, snapshotted at construction so the
    /// savings recursion (potentially millions of accessor calls per
    /// cell) pays a pointer dereference, not a cache lookup + counter
    /// bump per query. Valid under the class contract that the program
    /// is not mutated while the estimator is in use.
    const ReachingDefs *RD = nullptr;
    const UsefulWidth *UW = nullptr;
    /// Instruction ids of call sites in this function.
    std::vector<size_t> Calls;
    /// [argIdx] -> instruction ids whose aK input may come from function
    /// entry (targets of argument pinning).
    std::vector<size_t> EntryArgUses[NumArgRegs];
  };

  /// Key for cycle avoidance across the recursion.
  using Visited = std::set<std::pair<int32_t, size_t>>;

  double savingsRec(int32_t F, size_t DefId, const ValueRange &NewOut,
                    Visited &V, unsigned Depth) const;
  /// Savings at one use site when operand register \p R is pinned.
  double useSavings(int32_t F, size_t UId, Reg R, const ValueRange &NewOut,
                    Visited &V, unsigned Depth) const;
  /// Savings of pinning entry argument \p ArgIdx of function \p Callee.
  double argSavings(int32_t Callee, unsigned ArgIdx, const ValueRange &R,
                    Visited &V, unsigned Depth) const;

  const Program &P;
  const RangeAnalysis &RA;
  const ProgramProfile *Profile;
  IsaPolicy Policy;
  EnergyParams Energy;
  std::vector<FnCtx> Ctx;
};

} // namespace og

#endif // OG_VRS_BENEFIT_H
