//===- vrs/Specializer.h - Value Range Specialization ------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value Range Specialization (paper Section 3), the profile-guided half
/// of the system. The three steps of the paper:
///
///  1. Candidate identification (§3.3): a preliminary benefit analysis over
///     basic-block counts, assuming the minimum test cost (one
///     comparison), prunes the instructions worth value-profiling.
///  2. Value profiling (§3.3): Calder-style fixed-size tables record the
///     candidates' output values on the train input.
///  3. Specialization (§3.4): candidates whose profiled range passes the
///     energy cost/benefit test get their dominated region cloned, a
///     range guard inserted (x>=min && x<=max: two comparisons, an AND and
///     a branch; single-value and zero tests are cheaper), the range
///     seeded into the clone, and VRP re-run. Single-value clones then
///     constant-fold and dead-code-eliminate.
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRS_SPECIALIZER_H
#define OG_VRS_SPECIALIZER_H

#include "profile/BlockProfile.h"
#include "vrp/Narrowing.h"
#include "vrs/EnergyTables.h"

#include <cstdint>
#include <string>
#include <vector>

namespace og {

/// Tunables of the VRS pipeline.
struct VrsOptions {
  EnergyParams Energy;          ///< includes the TestCostNJ sweep knob
  NarrowingOptions Narrow;      ///< re-VRP configuration
  unsigned MaxRegionBlocks = 16;
  unsigned MaxSpecializationsPerFunction = 8;
  unsigned MaxProfiledRanges = 4; ///< candidate ranges tried per point
  /// Minimum profiled frequency of the specialized range. Below this the
  /// guard branch is poorly predictable and its misprediction cost (not
  /// in the paper's energy-only test model) swamps the gating savings.
  double MinRangeFreq = 0.90;
  ValueProfileTable::Config TableCfg;
};

/// What happened, in the vocabulary of paper Figures 4-6.
struct VrsReport {
  // Figure 4: profiled points by fate.
  uint64_t PointsProfiled = 0;
  uint64_t PointsSpecialized = 0;
  uint64_t PointsDependent = 0; ///< inside a region another point cloned
  uint64_t PointsNoBenefit = 0;

  // Figure 5: static instructions in specialized regions.
  uint64_t StaticSpecialized = 0; ///< instructions cloned into regions
  uint64_t StaticEliminated = 0;  ///< removed by const-prop/DCE in clones

  // For Figure 6's run-time accounting.
  std::vector<std::pair<int32_t, int32_t>> CloneBlocks; ///< (func, block)
  std::vector<std::pair<int32_t, int32_t>> GuardBlocks;

  /// Guard-edge facts, needed to re-run the narrowing pass later.
  std::vector<EdgeSeed> Seeds;
};

/// Runs the full VRS pipeline on \p P (which should already be
/// VRP-narrowed): profiles on \p TrainOptions, specializes, re-narrows,
/// folds and cleans. The program is modified in place and stays
/// semantically equivalent (same output stream on any input).
///
/// All dataflow analyses come from \p AM — sharing the manager with the
/// preceding narrowProgram call means the candidate analysis starts from
/// warm caches, and the re-VRP after specialization rebuilds analyses
/// only for the functions the specializer actually mutated.
VrsReport specializeProgram(Program &P, AnalysisManager &AM,
                            const RunOptions &TrainOptions,
                            const VrsOptions &Opts);

/// Convenience without a shared manager (tests): private AnalysisManager.
VrsReport specializeProgram(Program &P, const RunOptions &TrainOptions,
                            const VrsOptions &Opts);

} // namespace og

#endif // OG_VRS_SPECIALIZER_H
