//===- vrs/Specializer.cpp ------------------------------------------------==//

#include "vrs/Specializer.h"

#include "program/Clone.h"
#include "program/Verifier.h"
#include "vrs/Benefit.h"
#include "vrs/ConstProp.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace og;

namespace {

/// A candidate that survived the prefilter and has a profitable profiled
/// range.
struct Candidate {
  int32_t Func = 0;
  InstRef Ref;       ///< kept current across block splits
  Reg R = RegZero;   ///< the specialized output register
  int64_t Min = 0;
  int64_t Max = 0;
  double NetBenefit = 0.0;
};

/// Splits block \p BB of \p F after instruction \p Index; the tail moves to
/// a new block appended to the function. Returns the tail's block id.
int32_t splitBlockAfter(Function &F, int32_t BB, int32_t Index) {
  BasicBlock &Head = F.Blocks[BB];
  assert(static_cast<size_t>(Index) < Head.Insts.size() &&
         "split point out of range");
  BasicBlock Tail;
  Tail.Id = static_cast<int32_t>(F.Blocks.size());
  Tail.Label = Head.Label.empty() ? "" : Head.Label + ".tail";
  Tail.Insts.assign(Head.Insts.begin() + Index + 1, Head.Insts.end());
  Tail.FallthroughSucc = Head.FallthroughSucc;
  F.Blocks.push_back(std::move(Tail));
  // push_back may invalidate Head.
  BasicBlock &Head2 = F.Blocks[BB];
  Head2.Insts.resize(static_cast<size_t>(Index) + 1);
  Head2.FallthroughSucc = static_cast<int32_t>(F.Blocks.size()) - 1;
  F.bumpEpoch();
  return Head2.FallthroughSucc;
}

/// Picks up to \p Needed scratch registers dead at the entry of block
/// \p At (guards may clobber them). Prefers caller-saved temporaries.
bool pickScratchRegs(AnalysisManager &AM, int32_t Func, int32_t At, Reg Avoid,
                     unsigned Needed, Reg *Out) {
  const Liveness &LV = AM.liveness(Func);
  uint32_t Live = LV.liveIn(At);
  unsigned Got = 0;
  const Reg Preferred[] = {RegT8,  RegT9,  RegT10, RegT11,
                           RegAT,  RegT12, RegT0,  RegT1,
                           RegT2,  RegT3,  RegT4,  RegT5};
  for (Reg R : Preferred) {
    if (R == Avoid || (Live & (uint32_t(1) << R)))
      continue;
    Out[Got++] = R;
    if (Got == Needed)
      return true;
  }
  return false;
}

} // namespace

VrsReport og::specializeProgram(Program &P, AnalysisManager &AM,
                                const RunOptions &TrainOptions,
                                const VrsOptions &Opts) {
  VrsReport Report;

  // ---- Step 0: block counts from a plain training run. P is not
  // mutated until step 3b, so this decode also serves the step-2 value
  // profiling run.
  DecodedProgram TrainDecode(P);
  ProgramProfile BlockProf = collectProfile(TrainDecode, TrainOptions, {});

  // ---- Step 1 (§3.3): prefilter candidates with the minimal-cost
  // assumption, using ranges/useful widths of the current program. The
  // structural analyses are usually warm from the narrowing run that
  // preceded this (the manager is shared across the whole cell).
  RangeAnalysis RA(AM, Opts.Narrow.Range);
  RA.run();
  ProgramBenefit PB(AM, RA, &BlockProf, Opts.Narrow.Policy, Opts.Energy,
                    Opts.Narrow.UsefulThroughArith);

  std::vector<std::pair<int32_t, size_t>> ProfilePoints;
  for (const Function &F : P.Funcs) {
    const ReachingDefs &RD = PB.reachingDefs(F.Id);
    const FunctionRanges &FR = RA.func(F.Id);
    for (size_t Id = 0; Id < RD.numInsts(); ++Id) {
      const Instruction &I = RD.inst(Id);
      // Any value-producing instruction can be a specialization point; the
      // benefit lives in its dependents, not its own opcode.
      if (!I.hasDest() || I.Rd == RegZero || !I.info().HasWidth)
        continue;
      uint64_t Count = PB.instCount(F.Id, Id);
      if (Count == 0)
        continue; // never executed on the train input
      // Best case: the output pinned to a constant within its range.
      int64_t Pin = FR.Out[Id].isFull() ? 0 : FR.Out[Id].min();
      double BestCase = PB.savings(F.Id, Id, ValueRange::constant(Pin));
      double MinCost =
          static_cast<double>(Count) * Opts.Energy.minimalTestCost();
      if (BestCase > MinCost)
        ProfilePoints.push_back({F.Id, Id});
    }
  }
  Report.PointsProfiled = ProfilePoints.size();

  // ---- Step 2 (§3.3): value-profile the candidates on the train input.
  ProgramProfile ValueProf =
      collectProfile(TrainDecode, TrainOptions, ProfilePoints, Opts.TableCfg);

  // ---- Step 3a (§3.4): evaluate profiled ranges; keep net winners.
  std::vector<Candidate> Accepted;
  for (const auto &Point : ProfilePoints) {
    int32_t FId = Point.first;
    size_t Id = Point.second;
    const ReachingDefs &RD = PB.reachingDefs(FId);
    const ValueRange StaticOut = RA.func(FId).Out[Id];

    const ValueProfileTable &Table = ValueProf.Values.at(Point);
    std::vector<ValueProfileTable::Entry> Entries = Table.sortedEntries();
    if (Entries.empty() || Table.totalCount() == 0) {
      ++Report.PointsNoBenefit;
      continue;
    }

    uint64_t Count = PB.instCount(FId, Id);
    double BestNet = 0.0;
    int64_t BestMin = 0, BestMax = 0;
    unsigned MaxK =
        std::min<unsigned>(Opts.MaxProfiledRanges,
                           static_cast<unsigned>(Entries.size()));
    for (unsigned K = 1; K <= MaxK; ++K) {
      // Hull of the top-K most frequent values.
      int64_t Mn = Entries[0].Value, Mx = Entries[0].Value;
      for (unsigned E = 1; E < K; ++E) {
        Mn = std::min(Mn, Entries[E].Value);
        Mx = std::max(Mx, Entries[E].Value);
      }
      // Widths are byte-granular, so widening the guard range to the full
      // bucket of its width costs no savings but makes the guard robust
      // against train/ref drift (e.g. counters that keep growing on the
      // larger input). Nonnegative hulls expand to the unsigned bucket
      // (zero-extended byte/halfword data), others to the signed hull.
      if (Mn != Mx) {
        if (Mn >= 0) {
          unsigned Bytes = 1;
          while (Bytes < 8 &&
                 static_cast<uint64_t>(Mx) >= (uint64_t(1) << (8 * Bytes)))
            ++Bytes;
          if (Bytes < 8) {
            Mn = 0;
            Mx = (int64_t(1) << (8 * Bytes)) - 1;
          }
        } else {
          Width HullW = widthForSignedRange(Mn, Mx);
          if (HullW != Width::Q) {
            Mn = widthSignedMin(HullW);
            Mx = widthSignedMax(HullW);
          }
        }
      }
      double Freq = Table.freqInRange(Mn, Mx);
      if (Freq < Opts.MinRangeFreq)
        continue;
      // The guard must teach the analysis something VRP does not already
      // know; otherwise the clone is a no-op with a foldable guard.
      if (ValueRange(Mn, Mx).contains(StaticOut))
        continue;
      double Sav = PB.savings(FId, Id, ValueRange(Mn, Mx));
      double TestCost =
          Mn == Mx ? (Mn == 0 ? Opts.Energy.zeroTestCost()
                              : Opts.Energy.singleValueTestCost())
                   : Opts.Energy.rangeTestCost();
      TestCost += Opts.Energy.mispredictCost(Freq);
      double Net = Sav * Freq - static_cast<double>(Count) * TestCost;
      if (Net > BestNet) {
        BestNet = Net;
        BestMin = Mn;
        BestMax = Mx;
      }
    }
    if (BestNet <= 0.0) {
      ++Report.PointsNoBenefit;
      continue;
    }
    Candidate C;
    C.Func = FId;
    C.Ref = RD.instRef(Id);
    C.R = RD.inst(Id).Rd;
    C.Min = BestMin;
    C.Max = BestMax;
    C.NetBenefit = BestNet;
    Accepted.push_back(C);
  }

  // Deterministic application order: best first.
  std::sort(Accepted.begin(), Accepted.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.NetBenefit != B.NetBenefit)
                return A.NetBenefit > B.NetBenefit;
              if (A.Func != B.Func)
                return A.Func < B.Func;
              if (A.Ref.Block != B.Ref.Block)
                return A.Ref.Block < B.Ref.Block;
              return A.Ref.Index < B.Ref.Index;
            });

  // ---- Step 3b: apply the transformations.
  std::vector<std::set<int32_t>> SpecializedBlocks(P.Funcs.size());
  std::vector<unsigned> AppliedPerFunc(P.Funcs.size(), 0);
  size_t OriginalNumFuncs = P.Funcs.size();

  for (size_t CI = 0; CI < Accepted.size(); ++CI) {
    Candidate &C = Accepted[CI];

    if (AppliedPerFunc[C.Func] >= Opts.MaxSpecializationsPerFunction) {
      ++Report.PointsNoBenefit;
      continue;
    }
    // Dependence: a point inside a region some earlier point already
    // cloned is handled by that specialization (paper Figure 4).
    if (SpecializedBlocks[C.Func].count(C.Ref.Block)) {
      ++Report.PointsDependent;
      continue;
    }

    // Split after the candidate; the region entry is the tail.
    int32_t Tail = splitBlockAfter(P.Funcs[C.Func], C.Ref.Block, C.Ref.Index);
    // Later candidates in the same block move to the tail.
    for (size_t CJ = CI + 1; CJ < Accepted.size(); ++CJ) {
      Candidate &D = Accepted[CJ];
      if (D.Func == C.Func && D.Ref.Block == C.Ref.Block &&
          D.Ref.Index > C.Ref.Index) {
        D.Ref.Block = Tail;
        D.Ref.Index -= C.Ref.Index + 1;
      }
    }

    // Region: blocks dominated by the tail, BFS-capped. Cfg + dominator
    // tree are rebuilt once after the split (the epoch moved) and then
    // shared with the scratch-register liveness query below — the
    // pre-manager code rebuilt a second Cfg for that.
    std::vector<int32_t> Region;
    {
      const Cfg &G = AM.cfg(C.Func);
      const DominatorTree &DT = AM.dominators(C.Func);
      std::set<int32_t> Dominated;
      for (int32_t BB : DT.dominated(Tail))
        Dominated.insert(BB);
      std::vector<int32_t> Work{Tail};
      std::set<int32_t> Seen{Tail};
      while (!Work.empty() && Region.size() < Opts.MaxRegionBlocks) {
        int32_t BB = Work.front();
        Work.erase(Work.begin());
        Region.push_back(BB);
        for (int32_t S : G.successors(BB))
          if (Dominated.count(S) && !Seen.count(S)) {
            Seen.insert(S);
            Work.push_back(S);
          }
      }
    }

    // Guard codegen needs scratch registers dead at the region entry.
    bool IsConst = C.Min == C.Max;
    bool IsZero = IsConst && C.Min == 0;
    unsigned NeedScratch = IsZero ? 0 : (IsConst ? 1 : 2);
    Reg Scratch[2] = {RegZero, RegZero};
    if (NeedScratch > 0 &&
        !pickScratchRegs(AM, C.Func, Tail, C.R, NeedScratch, Scratch)) {
      ++Report.PointsNoBenefit;
      continue;
    }

    // Clone the region.
    std::map<int32_t, int32_t> Mapping =
        cloneRegion(P.Funcs[C.Func], Region);
    int32_t CloneTail = Mapping.at(Tail);

    // Specialize callees called from the cloned region (one level): the
    // clone gets its own copy of each callee so the narrowed argument
    // ranges reach it through the interprocedural analysis.
    {
      std::map<int32_t, int32_t> CalleeClones;
      bool RewroteCall = false;
      for (const auto &[Old, New] : Mapping) {
        (void)Old;
        for (Instruction &I : P.Funcs[C.Func].Blocks[New].Insts) {
          if (!I.isCall())
            continue;
          int32_t Callee = I.Callee;
          if (Callee == P.EntryFunc ||
              static_cast<size_t>(Callee) >= OriginalNumFuncs)
            continue; // don't re-clone clones
          auto It = CalleeClones.find(Callee);
          if (It == CalleeClones.end()) {
            Function Copy = P.Funcs[Callee];
            Copy.Id = static_cast<int32_t>(P.Funcs.size());
            Copy.Name += ".spec" + std::to_string(Copy.Id);
            P.Funcs.push_back(std::move(Copy));
            It = CalleeClones.emplace(Callee, P.Funcs.back().Id).first;
            for (const BasicBlock &BB : P.Funcs.back().Blocks) {
              Report.CloneBlocks.push_back({P.Funcs.back().Id, BB.Id});
              Report.StaticSpecialized += BB.Insts.size();
            }
          }
          I.Callee = It->second;
          RewroteCall = true;
        }
      }
      if (RewroteCall)
        P.Funcs[C.Func].bumpEpoch();
    }

    Function &F = P.Funcs[C.Func];
    BasicBlock &Guard = F.addBlock("guard");
    int32_t GuardId = Guard.Id;
    if (IsZero) {
      Guard.Insts.push_back(Instruction::condBr(Op::Beq, C.R, CloneTail));
    } else if (IsConst) {
      Guard.Insts.push_back(
          Instruction::aluImm(Op::CmpEq, Width::Q, Scratch[0], C.R, C.Min));
      Guard.Insts.push_back(
          Instruction::condBr(Op::Bne, Scratch[0], CloneTail));
    } else {
      // (r <= max) & ~(r < min), then branch: the paper's two comparisons,
      // an AND and a conditional branch.
      Guard.Insts.push_back(
          Instruction::aluImm(Op::CmpLe, Width::Q, Scratch[0], C.R, C.Max));
      Guard.Insts.push_back(
          Instruction::aluImm(Op::CmpLt, Width::Q, Scratch[1], C.R, C.Min));
      Guard.Insts.push_back(Instruction::alu(Op::Bic, Width::Q, Scratch[0],
                                             Scratch[0], Scratch[1]));
      Guard.Insts.push_back(
          Instruction::condBr(Op::Bne, Scratch[0], CloneTail));
    }
    Guard.FallthroughSucc = Tail;
    F.Blocks[C.Ref.Block].FallthroughSucc = GuardId;
    F.bumpEpoch();

    // Bookkeeping.
    Report.Seeds.push_back(
        {C.Func, GuardId, CloneTail, C.R, C.Min, C.Max});
    Report.GuardBlocks.push_back({C.Func, GuardId});
    for (const auto &[Old, New] : Mapping) {
      Report.CloneBlocks.push_back({C.Func, New});
      SpecializedBlocks[C.Func].insert(Old);
      Report.StaticSpecialized += F.Blocks[New].Insts.size();
    }
    ++AppliedPerFunc[C.Func];
    ++Report.PointsSpecialized;

    std::string Diag;
    bool Ok = verifyProgram(P, &Diag);
    assert(Ok && "specialization produced a malformed program");
    (void)Ok;
  }

  // ---- Step 3c: re-narrow with the guard facts, then fold and clean.
  // Everything below shares the cell's manager: only the functions the
  // apply loop actually mutated (and the cloned callees) rebuild their
  // structural analyses; the rest of the program is served from cache.
  NarrowingOptions NarrowOpts = Opts.Narrow;
  NarrowOpts.Seeds.insert(NarrowOpts.Seeds.end(), Report.Seeds.begin(),
                          Report.Seeds.end());
  narrowProgram(P, AM, NarrowOpts);

  {
    BlockCountMap Removed;
    runCleanup(P, AM, NarrowOpts.Range, NarrowOpts.Seeds, &Removed);
    std::set<std::pair<int32_t, int32_t>> Clones(Report.CloneBlocks.begin(),
                                                 Report.CloneBlocks.end());
    for (const auto &[Loc, N] : Removed)
      if (Clones.count(Loc))
        Report.StaticEliminated += N;
  }

  // Final width assignment over the cleaned program.
  narrowProgram(P, AM, NarrowOpts);

  std::string Diag;
  bool Ok = verifyProgram(P, &Diag);
  assert(Ok && "VRS produced a malformed program");
  (void)Ok;
  return Report;
}

VrsReport og::specializeProgram(Program &P, const RunOptions &TrainOptions,
                                const VrsOptions &Opts) {
  AnalysisManager AM(P);
  return specializeProgram(P, AM, TrainOptions, Opts);
}
