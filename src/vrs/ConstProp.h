//===- vrs/ConstProp.h - Constant folding and DCE ----------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cleanup passes run after specialization (paper Section 3.4 /
/// Figure 5: single-value specialization "removes instructions from the
/// specialized sections ... a consequence of specializing for a given
/// value and applying constant propagation"):
///  - fold: any instruction whose output range is a proven constant (and
///    whose computation cannot wrap) becomes a load-immediate;
///  - DCE: pure instructions whose destination is dead are removed.
///
/// Both passes are whole-program (a link-time optimizer like Alto runs
/// them globally) and report per-block removal counts so the specializer
/// can attribute eliminations to cloned regions.
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRS_CONSTPROP_H
#define OG_VRS_CONSTPROP_H

#include "program/Program.h"
#include "vrp/Narrowing.h"

#include <map>
#include <utility>
#include <vector>

namespace og {

/// Per-(function, block) instruction-removal / rewrite counts.
using BlockCountMap = std::map<std::pair<int32_t, int32_t>, uint64_t>;

/// Replaces provably-constant pure instructions with ldi. Returns the
/// number rewritten; per-block counts accumulate into \p PerBlock.
/// Mutated functions get their epoch bumped; when \p AM is given they are
/// invalidated with Cfg/Dominators preserved (the rewrite touches no
/// terminator, but operands — and hence Liveness/ReachingDefs/Loops —
/// change).
uint64_t foldConstants(Program &P, const RangeAnalysis &RA,
                       BlockCountMap *PerBlock = nullptr,
                       AnalysisManager *AM = nullptr);

/// Rewrites conditional branches whose direction the range analysis
/// decides: always-taken branches become unconditional, never-taken
/// branches are deleted (the fallthrough remains). This is what lets a
/// single-value specialization collapse its region (paper Figure 5,
/// m88ksim/vortex). Returns the number of branches rewritten. Terminators
/// change, so mutated functions preserve nothing in \p AM.
uint64_t foldBranches(Program &P, const RangeAnalysis &RA,
                      BlockCountMap *PerBlock = nullptr,
                      AnalysisManager *AM = nullptr);

/// Removes pure instructions whose destinations are dead. Iterates to a
/// fixpoint over \p AM's cached Cfg + a per-round Liveness. Returns the
/// number removed; per-block counts accumulate into \p PerBlock.
uint64_t eliminateDeadCode(Program &P, AnalysisManager &AM,
                           BlockCountMap *PerBlock = nullptr);

/// Convenience without a shared manager (tests): private AnalysisManager.
uint64_t eliminateDeadCode(Program &P, BlockCountMap *PerBlock = nullptr);

/// What one seeded cleanup round did.
struct CleanupCounts {
  uint64_t Folded = 0;         ///< constants rewritten to ldi
  uint64_t BranchesFolded = 0; ///< decided conditional branches
  uint64_t Removed = 0;        ///< dead instructions deleted
};

/// The full cleanup sequence, shared by VRS step 3c and the standalone
/// cleanup pass (opt/TransformPipeline): one RangeAnalysis seeded with
/// \p Seeds, then constant folding, branch folding and DCE through \p AM.
/// \p PerBlock (when given) accumulates removal counts of the branch-fold
/// and DCE steps only — constant folds rewrite in place and the rewritten
/// instructions are deleted by the DCE step, so counting them too would
/// double-count eliminations.
CleanupCounts runCleanup(Program &P, AnalysisManager &AM,
                         const RangeAnalysis::Options &RangeOpts,
                         const std::vector<EdgeSeed> &Seeds,
                         BlockCountMap *PerBlock = nullptr);

} // namespace og

#endif // OG_VRS_CONSTPROP_H
