//===- vrs/ConstProp.h - Constant folding and DCE ----------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cleanup passes run after specialization (paper Section 3.4 /
/// Figure 5: single-value specialization "removes instructions from the
/// specialized sections ... a consequence of specializing for a given
/// value and applying constant propagation"):
///  - fold: any instruction whose output range is a proven constant (and
///    whose computation cannot wrap) becomes a load-immediate;
///  - DCE: pure instructions whose destination is dead are removed.
///
/// Both passes are whole-program (a link-time optimizer like Alto runs
/// them globally) and report per-block removal counts so the specializer
/// can attribute eliminations to cloned regions.
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRS_CONSTPROP_H
#define OG_VRS_CONSTPROP_H

#include "program/Program.h"
#include "vrp/RangeAnalysis.h"

#include <map>
#include <utility>

namespace og {

/// Per-(function, block) instruction-removal / rewrite counts.
using BlockCountMap = std::map<std::pair<int32_t, int32_t>, uint64_t>;

/// Replaces provably-constant pure instructions with ldi. Returns the
/// number rewritten; per-block counts accumulate into \p PerBlock.
uint64_t foldConstants(Program &P, const RangeAnalysis &RA,
                       BlockCountMap *PerBlock = nullptr);

/// Rewrites conditional branches whose direction the range analysis
/// decides: always-taken branches become unconditional, never-taken
/// branches are deleted (the fallthrough remains). This is what lets a
/// single-value specialization collapse its region (paper Figure 5,
/// m88ksim/vortex). Returns the number of branches rewritten.
uint64_t foldBranches(Program &P, const RangeAnalysis &RA,
                      BlockCountMap *PerBlock = nullptr);

/// Removes pure instructions whose destinations are dead. Iterates to a
/// fixpoint. Returns the number removed; per-block counts accumulate into
/// \p PerBlock.
uint64_t eliminateDeadCode(Program &P, BlockCountMap *PerBlock = nullptr);

} // namespace og

#endif // OG_VRS_CONSTPROP_H
