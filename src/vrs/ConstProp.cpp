//===- vrs/ConstProp.cpp --------------------------------------------------==//

#include "vrs/ConstProp.h"

using namespace og;

namespace {

/// Pure value producers: no memory, control or output side effects. Loads
/// are excluded from folding (the loaded location may change) but included
/// in DCE (a dead load has no observable effect in this machine model).
bool foldablePure(const Instruction &I) {
  if (!I.hasDest() || I.Rd == RegZero)
    return false;
  switch (I.info().Class) {
  case OpClass::Load:
  case OpClass::Store:
  case OpClass::Branch:
  case OpClass::Call:
  case OpClass::Ret:
  case OpClass::Halt:
  case OpClass::Out:
    return false;
  default:
    return I.Opc != Op::Ldi; // already folded
  }
}

bool dcePure(const Instruction &I) {
  if (!I.hasDest())
    return false;
  switch (I.info().Class) {
  case OpClass::Store:
  case OpClass::Branch:
  case OpClass::Call:
  case OpClass::Ret:
  case OpClass::Halt:
  case OpClass::Out:
    return false;
  default:
    return true;
  }
}

} // namespace

uint64_t og::foldConstants(Program &P, const RangeAnalysis &RA,
                           BlockCountMap *PerBlock, AnalysisManager *AM) {
  uint64_t Folded = 0;
  for (Function &F : P.Funcs) {
    const FunctionRanges &FR = RA.func(F.Id);
    uint64_t FuncFolded = 0;
    for (BasicBlock &BB : F.Blocks) {
      for (size_t II = 0; II < BB.Insts.size(); ++II) {
        Instruction &I = BB.Insts[II];
        if (!foldablePure(I))
          continue;
        size_t Id = FR.idOf(BB.Id, static_cast<int32_t>(II));
        if (FR.MayWrap[Id] || !FR.Out[Id].isConstant())
          continue;
        I = Instruction::ldi(I.Rd, FR.Out[Id].min());
        ++FuncFolded;
        if (PerBlock)
          ++(*PerBlock)[{F.Id, BB.Id}];
      }
    }
    if (FuncFolded) {
      Folded += FuncFolded;
      F.bumpEpoch();
      if (AM)
        AM->invalidate(F.Id, PreservedAnalyses::cfgOnly());
    }
  }
  return Folded;
}

uint64_t og::foldBranches(Program &P, const RangeAnalysis &RA,
                          BlockCountMap *PerBlock, AnalysisManager *AM) {
  uint64_t Folded = 0;
  for (Function &F : P.Funcs) {
    const FunctionRanges &FR = RA.func(F.Id);
    uint64_t FuncFolded = 0;
    for (BasicBlock &BB : F.Blocks) {
      const Instruction *Term = BB.terminator();
      if (!Term || !Term->isCondBranch())
        continue;
      size_t Id = FR.idOf(BB.Id, static_cast<int32_t>(BB.Insts.size()) - 1);
      const ValueRange &Cond = FR.InA[Id];
      // Decide the branch from the tested register's range.
      int Decided = 0; // +1 taken, -1 fallthrough, 0 unknown
      switch (Term->Opc) {
      case Op::Beq:
        if (Cond.isConstant() && Cond.min() == 0)
          Decided = 1;
        else if (!Cond.contains(0))
          Decided = -1;
        break;
      case Op::Bne:
        if (!Cond.contains(0))
          Decided = 1;
        else if (Cond.isConstant() && Cond.min() == 0)
          Decided = -1;
        break;
      case Op::Blt:
        Decided = Cond.max() < 0 ? 1 : (Cond.min() >= 0 ? -1 : 0);
        break;
      case Op::Ble:
        Decided = Cond.max() <= 0 ? 1 : (Cond.min() > 0 ? -1 : 0);
        break;
      case Op::Bgt:
        Decided = Cond.min() > 0 ? 1 : (Cond.max() <= 0 ? -1 : 0);
        break;
      case Op::Bge:
        Decided = Cond.min() >= 0 ? 1 : (Cond.max() < 0 ? -1 : 0);
        break;
      default:
        break;
      }
      if (Decided == 0)
        continue;
      if (Decided > 0) {
        int32_t Target = Term->Target;
        BB.Insts.back() = Instruction::br(Target);
        BB.FallthroughSucc = NoTarget;
      } else {
        BB.Insts.pop_back(); // fallthrough edge already present
      }
      ++FuncFolded;
      if (PerBlock)
        ++(*PerBlock)[{F.Id, BB.Id}];
    }
    if (FuncFolded) {
      Folded += FuncFolded;
      F.bumpEpoch();
      if (AM)
        AM->invalidate(F.Id, PreservedAnalyses::none());
    }
  }
  return Folded;
}

uint64_t og::eliminateDeadCode(Program &P, AnalysisManager &AM,
                               BlockCountMap *PerBlock) {
  uint64_t Removed = 0;
  for (Function &F : P.Funcs) {
    bool Changed = true;
    unsigned Guard = 0;
    while (Changed && Guard++ < 8) {
      Changed = false;
      const Liveness &LV = AM.liveness(F.Id);
      for (BasicBlock &BB : F.Blocks) {
        for (size_t II = BB.Insts.size(); II-- > 0;) {
          Instruction &I = BB.Insts[II];
          if (!dcePure(I) || I.isTerminator())
            continue;
          if (I.Rd == RegZero ||
              !LV.liveAfter(BB.Id, static_cast<int32_t>(II), I.Rd)) {
            BB.Insts.erase(BB.Insts.begin() + static_cast<long>(II));
            ++Removed;
            Changed = true;
            if (PerBlock)
              ++(*PerBlock)[{F.Id, BB.Id}];
          }
        }
      }
      if (Changed) {
        // Deletions shift instruction indices but touch no terminator:
        // the next round reuses the Cfg and rebuilds only Liveness.
        F.bumpEpoch();
        AM.invalidate(F.Id, PreservedAnalyses::cfgOnly());
      }
    }
  }
  return Removed;
}

uint64_t og::eliminateDeadCode(Program &P, BlockCountMap *PerBlock) {
  AnalysisManager AM(P);
  return eliminateDeadCode(P, AM, PerBlock);
}

CleanupCounts og::runCleanup(Program &P, AnalysisManager &AM,
                             const RangeAnalysis::Options &RangeOpts,
                             const std::vector<EdgeSeed> &Seeds,
                             BlockCountMap *PerBlock) {
  RangeAnalysis RA(AM, RangeOpts);
  for (const EdgeSeed &S : Seeds)
    RA.addEdgeConstraint(S.Func, S.From, S.To, S.R, ValueRange(S.Min, S.Max));
  RA.run();
  CleanupCounts C;
  C.Folded = foldConstants(P, RA, nullptr, &AM);
  C.BranchesFolded = foldBranches(P, RA, PerBlock, &AM);
  C.Removed = eliminateDeadCode(P, AM, PerBlock);
  return C;
}
