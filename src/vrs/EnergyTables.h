//===- vrs/EnergyTables.h - Specialization energy model ----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The energy numbers behind VRS's cost/benefit analysis (paper Sections
/// 3.1-3.2). Table 1 of the paper gives the empirically-measured ALU
/// energy deltas between operand widths; the deltas are consistent with a
/// single per-width ALU energy function E(w) with
///   E(16)-E(8) = 3, E(32)-E(16) = 2, E(64)-E(32) = 1 (nJ),
/// which is what we store. Specialization-test costs follow Section 3.2:
/// a range test is two comparisons + an AND + a branch; a single-value
/// test is one comparison + branch; a zero test is just a branch (the
/// Alpha encodes branch-on-zero directly).
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRS_ENERGYTABLES_H
#define OG_VRS_ENERGYTABLES_H

#include "isa/Width.h"

namespace og {

/// Energy parameters of the VRS cost/benefit model. Units are the paper's
/// nanojoule scale.
struct EnergyParams {
  /// Per-width ALU energy E(w); only deltas matter. Matches paper Table 1.
  double AluEnergyByWidth[4] = {4.0, 7.0, 9.0, 10.0};

  /// The VRS configuration knob of Figure 8 ("VRS 110nJ ... VRS 30nJ"):
  /// the assumed energy of executing one full range test (2 comparisons +
  /// AND + branch).
  double TestCostNJ = 50.0;

  /// Calibration between the paper's SpecInt95-sized programs and our
  /// kernel-sized workloads: the paper's test costs presume candidates
  /// with hundreds of dependent instructions; our kernels have tens. The
  /// scale keeps the {30..110} sweep's *relative* behavior while placing
  /// the break-even point at kernel-sized dependence fans (documented in
  /// DESIGN.md as a calibration substitution).
  double TestCostScale = 0.15;

  /// Expected energy of one guard misprediction (pipeline flush), charged
  /// per execution weighted by (1 - Freq). The paper's test model is
  /// energy-only; without this term, low-frequency guards in hot loops
  /// look free and destroy ED^2 through branch mispredictions.
  double MispredictCostNJ = 0.0;

  double mispredictCost(double Freq) const {
    return (1.0 - Freq) * MispredictCostNJ * TestCostScale;
  }

  double aluEnergy(Width W) const {
    return AluEnergyByWidth[static_cast<unsigned>(W)];
  }

  /// Savings (possibly negative) when an ALU op moves from \p From to
  /// \p To; the sign convention of paper Table 1.
  double aluSaving(Width From, Width To) const {
    return aluEnergy(From) - aluEnergy(To);
  }

  /// Section 3.2 test shapes, as fractions of the full range test: the
  /// full test is 4 instructions, a single-value test 2, a zero test 1.
  double rangeTestCost() const { return TestCostNJ * TestCostScale; }
  double singleValueTestCost() const {
    return rangeTestCost() * 2.0 / 4.0;
  }
  double zeroTestCost() const { return rangeTestCost() * 1.0 / 4.0; }
  /// Prefilter assumption (Section 3.3): a single comparison.
  double minimalTestCost() const { return rangeTestCost() * 1.0 / 4.0; }
};

/// Paper Table 1 verbatim, for the Table-1 bench and tests:
/// Savings[dest][source] in nJ, indexed by Width. Diagonal is 0.
double paperTable1Saving(Width Dest, Width Source);

} // namespace og

#endif // OG_VRS_ENERGYTABLES_H
