//===- vrs/Benefit.cpp ----------------------------------------------------==//

#include "vrs/Benefit.h"

#include "vrp/Transfer.h"

using namespace og;

namespace {
constexpr unsigned MaxDepth = 24;
}

ProgramBenefit::ProgramBenefit(AnalysisManager &AM, const RangeAnalysis &RA,
                               const ProgramProfile *Profile,
                               IsaPolicy Policy, const EnergyParams &Energy,
                               bool UsefulThroughArith)
    : P(AM.program()), RA(RA), Profile(Profile), Policy(Policy),
      Energy(Energy) {
  Ctx.resize(P.Funcs.size());
  for (const Function &F : P.Funcs) {
    FnCtx &C = Ctx[F.Id];
    const ReachingDefs &RD = AM.reachingDefs(F.Id);
    C.RD = &RD;
    C.UW = &AM.usefulWidth(F.Id, UsefulThroughArith);

    std::vector<ReachingDefs::Def> Defs;
    for (size_t Id = 0; Id < RD.numInsts(); ++Id) {
      const Instruction &I = RD.inst(Id);
      if (I.isCall())
        C.Calls.push_back(Id);
      // Which instructions read entry-argument values.
      unsigned NSrc = I.numRegSources();
      InstRef Ref = RD.instRef(Id);
      for (unsigned S = 0; S < NSrc; ++S) {
        Reg R = I.regSource(S);
        if (R < RegA0 || R >= RegA0 + NumArgRegs)
          continue;
        RD.reachingDefs(Ref.Block, Ref.Index, R, Defs);
        for (const auto &D : Defs)
          if (D.Kind == ReachingDefs::Def::EntryDef) {
            C.EntryArgUses[R - RegA0].push_back(Id);
            break;
          }
      }
    }
  }
}

uint64_t ProgramBenefit::instCount(int32_t F, size_t InstId) const {
  if (!Profile)
    return 1;
  InstRef Ref = reachingDefs(F).instRef(InstId);
  return Profile->blockCount(F, Ref.Block);
}

double ProgramBenefit::savings(int32_t F, size_t DefId,
                               const ValueRange &R) const {
  Visited V;
  return savingsRec(F, DefId, R, V, 0);
}

double ProgramBenefit::useSavings(int32_t F, size_t UId, Reg R,
                                  const ValueRange &NewOut, Visited &V,
                                  unsigned Depth) const {
  const ReachingDefs &RD = reachingDefs(F);
  const UsefulWidth &UW = usefulWidth(F);
  const FunctionRanges &FR = RA.func(F);
  const Instruction &U = RD.inst(UId);
  const OpInfo &Info = U.info();
  if (!Info.HasWidth)
    return 0.0;

  ValueRange NewA = FR.InA[UId];
  ValueRange NewB = FR.InB[UId];
  if (Info.ReadsRa && U.Ra == R)
    NewA = NewA.intersectWith(NewOut);
  if (U.readsRbRegister() && U.Rb == R)
    NewB = NewB.intersectWith(NewOut);

  bool MayWrap = false;
  ValueRange Out = forwardTransfer(U, NewA, NewB, FR.OldRd[UId], MayWrap);
  Out = Out.intersectWith(FR.Out[UId]); // old facts still hold

  double Total = 0.0;
  unsigned Bytes =
      requiredBytes(U, NewA, NewB, Out, MayWrap, UW.usefulBytes(UId));
  Width Wanted =
      encodableWidths(U.Opc, Policy).narrowestAtLeast(widthForBytes(Bytes));
  if (Wanted < U.W) {
    // "if the width of the output register has changed (meaning it may
    // need a narrower opcode), the energy savings are computed."
    Total += static_cast<double>(instCount(F, UId)) *
             Energy.aluSaving(U.W, Wanted);
  }
  // Recurse when the use's own output range tightened (Section 3.1's
  // Savings(D, r') term).
  if (U.hasDest() && U.Rd != RegZero && !Out.contains(FR.Out[UId]))
    Total += savingsRec(F, UId, Out, V, Depth + 1);
  return Total;
}

double ProgramBenefit::savingsRec(int32_t F, size_t DefId,
                                  const ValueRange &NewOut, Visited &V,
                                  unsigned Depth) const {
  if (Depth > MaxDepth)
    return 0.0;
  const ReachingDefs &RD = reachingDefs(F);
  const Instruction &D = RD.inst(DefId);
  Reg R = D.Rd;
  double Total = 0.0;

  for (size_t UId : RD.usesOf(DefId)) {
    if (!V.insert({F, UId}).second)
      continue;
    Total += useSavings(F, UId, R, NewOut, V, Depth);
  }

  // Calls the pinned register reaches as an argument: the specializer
  // clones such callees, so their narrowed bodies count too.
  if (R >= RegA0 && R < RegA0 + NumArgRegs) {
    unsigned ArgIdx = R - RegA0;
    InstRef DRef = RD.instRef(DefId);
    std::vector<ReachingDefs::Def> Defs;
    for (size_t CallId : Ctx[F].Calls) {
      InstRef CRef = RD.instRef(CallId);
      RD.reachingDefs(CRef.Block, CRef.Index, R, Defs);
      bool Reaches = false;
      for (const auto &Def : Defs)
        Reaches |= Def.Kind == ReachingDefs::Def::InstDef &&
                   RD.instRef(Def.InstId) == DRef;
      if (!Reaches)
        continue;
      int32_t Callee = RD.inst(CallId).Callee;
      Total += argSavings(Callee, ArgIdx, NewOut, V, Depth + 1);
    }
  }
  return Total;
}

double ProgramBenefit::argSavings(int32_t Callee, unsigned ArgIdx,
                                  const ValueRange &R, Visited &V,
                                  unsigned Depth) const {
  if (Depth > MaxDepth)
    return 0.0;
  // One visit per (callee, arg): the sentinel id is beyond any real
  // instruction id.
  if (!V.insert({Callee, SIZE_MAX - ArgIdx}).second)
    return 0.0;
  double Total = 0.0;
  for (size_t UId : Ctx[Callee].EntryArgUses[ArgIdx])
    Total += useSavings(Callee, UId, static_cast<Reg>(RegA0 + ArgIdx), R, V,
                        Depth);
  return Total;
}
