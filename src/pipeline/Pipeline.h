//===- pipeline/Pipeline.h - End-to-end experiment driver --------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One call from workload to energy report: apply a software
/// operand-gating mode (none / conventional VRP / proposed VRP / VRS at a
/// given test-cost configuration), execute the ref input on the
/// out-of-order timing model, and account energy under a gating scheme.
/// Every bench binary and example is a thin wrapper over this driver, so
/// all experiment plumbing lives in one place.
///
//===----------------------------------------------------------------------===//

#ifndef OG_PIPELINE_PIPELINE_H
#define OG_PIPELINE_PIPELINE_H

#include "power/Report.h"
#include "sample/SampleRunner.h"
#include "sim/ExecEngine.h"
#include "sim/Interpreter.h"
#include "support/Statistic.h"
#include "vrp/Narrowing.h"
#include "vrs/Specializer.h"
#include "workloads/Workloads.h"

namespace og {

/// The software side of the evaluation matrix.
enum class SoftwareMode {
  None,            ///< original binary
  ConventionalVrp, ///< ranges only (Figure 2's "Conventional VRP")
  Vrp,             ///< + useful ranges (the paper's proposal)
  Vrs,             ///< VRP + profile-guided specialization
};

const char *softwareModeName(SoftwareMode M);

/// Configuration of one experiment cell.
struct PipelineConfig {
  SoftwareMode Sw = SoftwareMode::Vrp;
  GatingScheme Scheme = GatingScheme::Software;
  double VrsTestCostNJ = 50.0; ///< Figure 8's sweep knob
  NarrowingOptions Narrow;     ///< ISA policy, useful-width toggles
  UarchConfig Uarch;
  EnergyCoefficients Coeffs = EnergyCoefficients::defaults();
  /// Phase-sampled estimation of the ref run (src/sample/): disabled by
  /// default (exact detailed simulation). When enabled, the pipeline
  /// profiles the transformed binary's ref run once (exact functional
  /// stats and output), clusters it, and estimates the timing/energy
  /// report from representative windows instead of simulating every
  /// instruction in detail.
  SampleSpec Sample;
  /// Worker threads for window-parallel sampled replay (sample/
  /// SampleRunPolicy::WindowJobs). 1 = serial; results are byte-identical
  /// at any value, so this is a latency knob, not a result knob.
  unsigned SampleWindowJobs = 1;
  /// Re-run the original binary and assert identical output streams.
  bool CheckOutputEquivalence = false;
};

/// Folds every result-shaping PipelineConfig field into \p H through the
/// per-struct helpers each nested config owns (support/Hash.h explains
/// the one-helper-per-struct rule). This is the "transform mode + uarch
/// config" component of the sweep service's content-addressed cell keys
/// (service/CellKey.h); a new field added above MUST be folded here too.
/// CheckOutputEquivalence and SampleWindowJobs are deliberately excluded:
/// the oracle adds a run but cannot change the reported result, and
/// window-parallel replay reduces per-window deltas in window-index
/// order, so the job count cannot either (SampleTest asserts both).
inline void hashPipelineConfig(Fnv1a &H, const PipelineConfig &C) {
  H.u64(static_cast<uint64_t>(C.Sw));
  H.u64(static_cast<uint64_t>(C.Scheme));
  H.f64(C.VrsTestCostNJ);
  hashNarrowingOptions(H, C.Narrow);
  hashUarchConfig(H, C.Uarch);
  hashEnergyCoefficients(H, C.Coeffs);
  hashSampleSpec(H, C.Sample);
}

/// How a sampled cell was estimated, surfaced for reports (the optional
/// "sample" group of report/ReportSchema.h).
struct PipelineSampleInfo {
  bool Used = false;
  uint64_t IntervalLen = 0;
  uint64_t Intervals = 0;
  unsigned K = 0;
  uint64_t DetailedInsts = 0;   ///< insts through the detailed stack
  std::vector<double> Weights;  ///< per-cluster dyn-inst share
  std::vector<uint32_t> Reps;   ///< per-cluster representative interval
  /// BBV-dispersion error proxy (SamplePlan::Dispersion) — not a true
  /// error bound; tests and bench_sample compute real errors against
  /// exact runs.
  double EstError = 0.0;
};

/// Everything an experiment might want to report.
struct PipelineResult {
  Program Transformed;
  NarrowingReport Narrowing; ///< meaningful for VRP/VRS modes
  VrsReport Vrs;             ///< meaningful for VRS mode
  EnergyReport Report;       ///< timing + energy of the ref run
  ExecStats RefStats;        ///< functional statistics of the ref run
  std::vector<int64_t> Output;

  /// Fraction of ref-run dynamic instructions inside specialized clones /
  /// guard tests (Figure 6); zero outside VRS mode.
  double DynSpecializedFrac = 0.0;
  double DynGuardFrac = 0.0;

  /// opt/AnalysisManager cache counters of the transform phase
  /// (analysis-hits / analysis-misses / analysis-invalidations, per-kind
  /// build counts, same-epoch-rebuilds). Deterministic for a given
  /// workload + configuration; empty in SoftwareMode::None.
  StatisticSet OptStats;

  /// Filled when PipelineConfig::Sample was enabled; Report/RefStats are
  /// then sampled estimates / exact functional stats respectively.
  PipelineSampleInfo Sample;

  /// Execution-engine dispatch/superblock counters of the ref run (the
  /// optional "engine" group of report/ReportSchema.h). Sampled cells
  /// fast-forward through a profile-built superblock plan, so these are
  /// nonzero there; exact cells trace every instruction into the
  /// detailed core, which keeps the fast path off, so they stay zero.
  EngineCounters Engine;
};

class SamplePlanCache;

/// Runs the full flow on a copy of \p W's program.
///
/// \p BaseDecode, when given, must be a DecodedProgram of W.Prog (the
/// untransformed binary); the pipeline then reuses it for every run of
/// the original — the SoftwareMode::None ref run and the output-
/// equivalence oracle — instead of re-decoding. The experiment driver
/// shares one per workload across a whole sweep.
///
/// \p PlanCache, when given with sampling enabled, shares sampled
/// artifacts (interval profile + plan + warm-state checkpoints) between
/// cells whose transformed binary and run context hash alike — i.e.
/// whose dynamic instruction streams provably match (see
/// sample/SamplePlanCache.h). Results are bit-identical with or without
/// the cache; only the redundant profiling/capture passes disappear.
PipelineResult runPipeline(const Workload &W, const PipelineConfig &Config,
                           const DecodedProgram *BaseDecode = nullptr,
                           SamplePlanCache *PlanCache = nullptr);

} // namespace og

#endif // OG_PIPELINE_PIPELINE_H
