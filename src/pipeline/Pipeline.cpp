//===- pipeline/Pipeline.cpp ----------------------------------------------==//

#include "pipeline/Pipeline.h"

#include "opt/TransformPipeline.h"
#include "sample/SamplePlanCache.h"
#include "sim/Superblock.h"

#include <cassert>
#include <memory>
#include <stdexcept>

using namespace og;

const char *og::softwareModeName(SoftwareMode M) {
  switch (M) {
  case SoftwareMode::None:
    return "none";
  case SoftwareMode::ConventionalVrp:
    return "conventional VRP";
  case SoftwareMode::Vrp:
    return "VRP";
  case SoftwareMode::Vrs:
    return "VRS";
  }
  return "?";
}

PipelineResult og::runPipeline(const Workload &W, const PipelineConfig &Config,
                               const DecodedProgram *BaseDecode,
                               SamplePlanCache *PlanCache) {
  assert((!BaseDecode || &BaseDecode->program() == &W.Prog) &&
         "BaseDecode must decode this workload's program");
  PipelineResult Result;
  Result.Transformed = W.Prog;
  Program &P = Result.Transformed;

  // ---- Software transformation: one AnalysisManager per experiment
  // cell, shared by every pass of the mode's TransformPipeline (the VRS
  // flow in particular re-runs VRP several times over a program whose
  // functions are mostly untouched between runs).
  AnalysisManager AM(P, &Result.OptStats);
  TransformContext Ctx;
  Ctx.Narrow = Config.Narrow;
  switch (Config.Sw) {
  case SoftwareMode::None:
    break;
  case SoftwareMode::ConventionalVrp:
    Ctx.Narrow.UseUsefulWidths = false;
    break;
  case SoftwareMode::Vrp:
    Ctx.Narrow.UseUsefulWidths = true;
    break;
  case SoftwareMode::Vrs:
    Ctx.Narrow.UseUsefulWidths = true;
    Ctx.Vrs.Energy.TestCostNJ = Config.VrsTestCostNJ;
    Ctx.Train = W.Train;
    break;
  }
  makeSoftwareModePipeline(Config.Sw).run(P, AM, Ctx);
  Result.Narrowing = Ctx.Narrowing;
  Result.Vrs = Ctx.VrsResult;

  // ---- Ref run through the timing + power models. Decode the
  // transformed binary once; in None mode the binary is untouched, so a
  // caller-provided decode of the original stands in and the per-spec
  // decode is skipped entirely. Exact mode feeds the core the whole
  // trace as a batched sink; sampled mode (Config.Sample) estimates the
  // detailed report from representative phase windows while the
  // functional results stay exact.
  const bool ShareDecode = Config.Sw == SoftwareMode::None && BaseDecode;
  std::unique_ptr<DecodedProgram> Owned;
  if (!ShareDecode)
    Owned = std::make_unique<DecodedProgram>(P);
  const DecodedProgram &Decoded = ShareDecode ? *BaseDecode : *Owned;

  if (Config.Sample.enabled()) {
    // Prepare (or fetch) the stream's shared artifacts, run (or fetch)
    // its scheme-free detailed estimation pass, then derive this cell's
    // report — two cache levels keyed on the *transformed* program plus
    // the full run / uarch / sample context, so a hit proves the shared
    // product would have been recomputed bit-identically:
    //  - plan + checkpoints key without instruction widths (VRP cells
    //    share profiling/capture with baseline — narrowing only rewrites
    //    widths in place, and the plan and warm state are functions of
    //    control flow and addresses only);
    //  - the stream estimate keys on the exact binary (baseline, hw-sig
    //    and hw-size differ only in the energy scheme and share one
    //    detailed pass; the scheme is applied to its histogram here).
    //
    // Capture reads a canonical stream: the artifacts live under the
    // width-blind warm key, and since they now carry whole-register
    // architectural checkpoints (whose dead bytes width rewrites move),
    // every cell whose binary is a width-only rewrite of the workload
    // program must capture from the same decode — the original's —
    // regardless of which cell prepares first, whether a plan cache is
    // in play, or how many jobs race. A transform whose warm key
    // differs (VRS with live guards) captures from its own stream.
    std::unique_ptr<DecodedProgram> CaptureOwned;
    const DecodedProgram *CaptureDP = &Decoded;
    if (&Decoded.program() != &W.Prog &&
        sampleWarmKey(P, W.Ref, Config.Uarch, Config.Sample) ==
            sampleWarmKey(W.Prog, W.Ref, Config.Uarch, Config.Sample)) {
      if (BaseDecode) {
        CaptureDP = BaseDecode;
      } else {
        CaptureOwned = std::make_unique<DecodedProgram>(W.Prog);
        CaptureDP = CaptureOwned.get();
      }
    }
    auto Prepare = [&] {
      return std::make_shared<const SampleArtifacts>(
          prepareSampled(*CaptureDP, W.Ref, Config.Uarch, Config.Sample));
    };
    std::shared_ptr<const SampleArtifacts> Art =
        PlanCache ? PlanCache->getOrCompute(
                        sampleWarmKey(P, W.Ref, Config.Uarch, Config.Sample),
                        Prepare)
                  : Prepare();
    auto RunStream = [&] {
      // Fast-forward through a superblock plan formed from the profile
      // the artifacts already carry (exact block counts, free from the
      // profiling pass). The plan is rebuilt per cell because it is tied
      // to this cell's DecodedProgram instance, while artifacts are
      // shared across cells; the engine falls out of superblocks at
      // window boundaries, so the detailed windows see the identical
      // instruction stream (the dispatch oracle test asserts this).
      SuperblockPlan Sb(Decoded, Art->BlockProfile);
      RunOptions Ref = W.Ref;
      Ref.Superblocks = &Sb;
      SampleRunPolicy Policy;
      Policy.WindowJobs = Config.SampleWindowJobs;
      return std::make_shared<const SampleStreamEstimate>(runSampledStream(
          Decoded, Ref, Config.Uarch, *Art, Config.Sample, Policy));
    };
    std::shared_ptr<const SampleStreamEstimate> Stream =
        PlanCache
            ? PlanCache->getOrComputeEstimate(
                  sampleStreamKey(P, W.Ref, Config.Uarch, Config.Sample),
                  RunStream)
            : RunStream();
    SampleEstimate Est =
        deriveSampleEstimate(*Stream, Config.Scheme, Config.Coeffs);
    if (Est.Run.Status != RunStatus::Halted)
      throw std::runtime_error("pipeline: sampled ref run did not halt");
    Result.RefStats = Est.Run.Stats;
    Result.Output = Est.Run.Output;
    Result.Report = Est.Report;
    Result.Sample.Used = true;
    Result.Sample.IntervalLen = Est.Plan.IntervalLen;
    Result.Sample.Intervals = Est.Plan.numIntervals();
    Result.Sample.K = Est.Plan.K;
    Result.Sample.DetailedInsts = Est.DetailedInsts;
    Result.Sample.Weights = Est.Plan.Weights;
    Result.Sample.Reps = Est.Plan.Reps;
    Result.Sample.EstError = Est.Plan.Dispersion;
    Result.Engine = Est.Run.Engine;
  } else {
    EnergyModel EM(Config.Scheme, Config.Coeffs);
    OooCore Core(Config.Uarch, &EM);
    RunOptions RefOpts = W.Ref;
    RefOpts.Sink = &Core;
    RunResult Run = runProgram(Decoded, RefOpts);
    if (Run.Status != RunStatus::Halted)
      throw std::runtime_error("pipeline: ref run did not halt");
    Result.RefStats = Run.Stats;
    Result.Output = Run.Output;
    Result.Report = makeReport(EM, Core.finish());
    Result.Engine = Run.Engine;
  }

  // ---- Figure-6 accounting.
  if (Config.Sw == SoftwareMode::Vrs && Result.RefStats.DynInsts > 0) {
    uint64_t Spec = 0, GuardDyn = 0;
    for (const auto &[F, BB] : Result.Vrs.CloneBlocks)
      Spec += Result.RefStats.BlockCounts[F][BB] * P.Funcs[F].Blocks[BB].Insts.size();
    for (const auto &[F, BB] : Result.Vrs.GuardBlocks)
      GuardDyn +=
          Result.RefStats.BlockCounts[F][BB] * P.Funcs[F].Blocks[BB].Insts.size();
    Result.DynSpecializedFrac =
        static_cast<double>(Spec) / Result.RefStats.DynInsts;
    Result.DynGuardFrac =
        static_cast<double>(GuardDyn) / Result.RefStats.DynInsts;
  }

  // ---- Optional end-to-end equivalence oracle.
  if (Config.CheckOutputEquivalence) {
    RunResult Orig = BaseDecode ? runProgram(*BaseDecode, W.Ref)
                                : runProgram(W.Prog, W.Ref);
    // Always-on (not assert): this oracle exists to catch miscompiles,
    // which must not pass silently in Release builds.
    if (Orig.Status != RunStatus::Halted)
      throw std::runtime_error("pipeline: original run did not halt");
    if (Orig.Output != Result.Output)
      throw std::runtime_error("pipeline: transformation changed program "
                               "output");
  }
  return Result;
}
