//===- pipeline/Pipeline.cpp ----------------------------------------------==//

#include "pipeline/Pipeline.h"

#include <cassert>

using namespace og;

const char *og::softwareModeName(SoftwareMode M) {
  switch (M) {
  case SoftwareMode::None:
    return "none";
  case SoftwareMode::ConventionalVrp:
    return "conventional VRP";
  case SoftwareMode::Vrp:
    return "VRP";
  case SoftwareMode::Vrs:
    return "VRS";
  }
  return "?";
}

PipelineResult og::runPipeline(const Workload &W, const PipelineConfig &Config,
                               const DecodedProgram *BaseDecode) {
  assert((!BaseDecode || &BaseDecode->program() == &W.Prog) &&
         "BaseDecode must decode this workload's program");
  PipelineResult Result;
  Result.Transformed = W.Prog;
  Program &P = Result.Transformed;

  // ---- Software transformation.
  NarrowingOptions Narrow = Config.Narrow;
  switch (Config.Sw) {
  case SoftwareMode::None:
    break;
  case SoftwareMode::ConventionalVrp:
    Narrow.UseUsefulWidths = false;
    Result.Narrowing = narrowProgram(P, Narrow);
    break;
  case SoftwareMode::Vrp:
    Narrow.UseUsefulWidths = true;
    Result.Narrowing = narrowProgram(P, Narrow);
    break;
  case SoftwareMode::Vrs: {
    Narrow.UseUsefulWidths = true;
    Result.Narrowing = narrowProgram(P, Narrow);
    VrsOptions VO;
    VO.Narrow = Narrow;
    VO.Energy.TestCostNJ = Config.VrsTestCostNJ;
    Result.Vrs = specializeProgram(P, W.Train, VO);
    break;
  }
  }

  // ---- Ref run through the timing + power models. The core consumes the
  // trace directly as a batched sink. Decode the transformed binary once;
  // in None mode the binary is untouched, so a caller-provided decode of
  // the original stands in and the per-spec decode is skipped entirely.
  EnergyModel EM(Config.Scheme, Config.Coeffs);
  OooCore Core(Config.Uarch, &EM);
  RunOptions RefOpts = W.Ref;
  RefOpts.Sink = &Core;
  RunResult Run;
  if (Config.Sw == SoftwareMode::None && BaseDecode) {
    Run = runProgram(*BaseDecode, RefOpts);
  } else {
    DecodedProgram Decoded(P);
    Run = runProgram(Decoded, RefOpts);
  }
  assert(Run.Status == RunStatus::Halted && "ref run did not halt");
  Result.RefStats = Run.Stats;
  Result.Output = Run.Output;
  Result.Report = makeReport(EM, Core.finish());

  // ---- Figure-6 accounting.
  if (Config.Sw == SoftwareMode::Vrs && Result.RefStats.DynInsts > 0) {
    uint64_t Spec = 0, GuardDyn = 0;
    for (const auto &[F, BB] : Result.Vrs.CloneBlocks)
      Spec += Result.RefStats.BlockCounts[F][BB] * P.Funcs[F].Blocks[BB].Insts.size();
    for (const auto &[F, BB] : Result.Vrs.GuardBlocks)
      GuardDyn +=
          Result.RefStats.BlockCounts[F][BB] * P.Funcs[F].Blocks[BB].Insts.size();
    Result.DynSpecializedFrac =
        static_cast<double>(Spec) / Result.RefStats.DynInsts;
    Result.DynGuardFrac =
        static_cast<double>(GuardDyn) / Result.RefStats.DynInsts;
  }

  // ---- Optional end-to-end equivalence oracle.
  if (Config.CheckOutputEquivalence) {
    RunResult Orig = BaseDecode ? runProgram(*BaseDecode, W.Ref)
                                : runProgram(W.Prog, W.Ref);
    assert(Orig.Status == RunStatus::Halted && "original run did not halt");
    assert(Orig.Output == Result.Output &&
           "transformation changed program output");
    (void)Orig;
  }
  return Result;
}
