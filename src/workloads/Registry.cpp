//===- workloads/Registry.cpp ---------------------------------------------==//

#include "workloads/Workloads.h"

#include <cassert>

using namespace og;

std::vector<Workload> og::makeAllWorkloads(double Scale) {
  std::vector<Workload> All;
  All.push_back(makeCompress(Scale));
  All.push_back(makeGcc(Scale));
  All.push_back(makeGo(Scale));
  All.push_back(makeIjpeg(Scale));
  All.push_back(makeLi(Scale));
  All.push_back(makeM88ksim(Scale));
  All.push_back(makePerl(Scale));
  All.push_back(makeVortex(Scale));
  return All;
}

Workload og::makeWorkload(const std::string &Name, double Scale) {
  if (Name == "compress")
    return makeCompress(Scale);
  if (Name == "gcc")
    return makeGcc(Scale);
  if (Name == "go")
    return makeGo(Scale);
  if (Name == "ijpeg")
    return makeIjpeg(Scale);
  if (Name == "li")
    return makeLi(Scale);
  if (Name == "m88ksim")
    return makeM88ksim(Scale);
  if (Name == "perl")
    return makePerl(Scale);
  if (Name == "vortex")
    return makeVortex(Scale);
  assert(false && "unknown workload name");
  return makeCompress(Scale);
}
