//===- workloads/Registry.cpp ---------------------------------------------==//

#include "workloads/Workloads.h"

#include "frontend/Lifter.h"
#include "workloads/Common.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

using namespace og;

std::vector<Workload> og::makeAllWorkloads(double Scale) {
  std::vector<Workload> All;
  All.push_back(makeCompress(Scale));
  All.push_back(makeGcc(Scale));
  All.push_back(makeGo(Scale));
  All.push_back(makeIjpeg(Scale));
  All.push_back(makeLi(Scale));
  All.push_back(makeM88ksim(Scale));
  All.push_back(makePerl(Scale));
  All.push_back(makeVortex(Scale));
  return All;
}

Workload og::makeElfWorkload(const std::string &Path, double Scale) {
  Expected<LiftedProgram> L = liftElfFile(Path);
  if (!L)
    throw std::runtime_error(L.error());
  Workload W;
  W.Name = "elf:" + Path;
  W.Prog = std::move(L->Prog);
  // The fixture argument contract (tests/fixtures/rv32/): a0 selects the
  // input set, a1 is the unit count the program loops over. Train mirrors
  // the hand-built workloads' "small profiling input" role.
  W.Train = runWithArg(0);
  W.Train.ArgRegs = {0, 1};
  W.Ref = runWithArg(1);
  W.Ref.ArgRegs = {1, std::max<int64_t>(1, std::llround(Scale * 16.0))};
  return W;
}

Workload og::makeWorkload(const std::string &Name, double Scale) {
  if (Name.rfind("elf:", 0) == 0)
    return makeElfWorkload(Name.substr(4), Scale);
  if (Name == "compress")
    return makeCompress(Scale);
  if (Name == "gcc")
    return makeGcc(Scale);
  if (Name == "go")
    return makeGo(Scale);
  if (Name == "ijpeg")
    return makeIjpeg(Scale);
  if (Name == "li")
    return makeLi(Scale);
  if (Name == "m88ksim")
    return makeM88ksim(Scale);
  if (Name == "perl")
    return makePerl(Scale);
  if (Name == "vortex")
    return makeVortex(Scale);
  assert(false && "unknown workload name");
  return makeCompress(Scale);
}
