//===- workloads/Common.cpp -----------------------------------------------==//

#include "workloads/Common.h"

using namespace og;

uint64_t og::addRandomBytes(ProgramBuilder &PB, size_t Count, uint64_t Seed,
                            uint8_t Lo, uint8_t Hi) {
  Rng R(Seed);
  std::vector<uint8_t> Bytes(Count);
  for (size_t I = 0; I < Count; ++I)
    Bytes[I] = static_cast<uint8_t>(R.range(Lo, Hi));
  return PB.addByteData(Bytes);
}

uint64_t og::addSkewedBytes(ProgramBuilder &PB, size_t Count, uint64_t Seed,
                            uint8_t CommonLo, uint8_t CommonHi,
                            unsigned CommonPct, uint8_t RareLo,
                            uint8_t RareHi) {
  Rng R(Seed);
  std::vector<uint8_t> Bytes(Count);
  for (size_t I = 0; I < Count; ++I) {
    bool Common = R.below(100) < CommonPct;
    Bytes[I] = static_cast<uint8_t>(
        Common ? R.range(CommonLo, CommonHi) : R.range(RareLo, RareHi));
  }
  return PB.addByteData(Bytes);
}

uint64_t og::addRandomQuads(ProgramBuilder &PB, size_t Count, uint64_t Seed,
                            int64_t Lo, int64_t Hi) {
  Rng R(Seed);
  std::vector<int64_t> Words(Count);
  for (size_t I = 0; I < Count; ++I)
    Words[I] = R.range(Lo, Hi);
  return PB.addQuadData(Words);
}

void og::emitPrologue(FunctionBuilder &FB, const std::vector<Reg> &Regs) {
  int64_t Frame = static_cast<int64_t>(Regs.size() + 1) * 8;
  FB.subi(RegSP, RegSP, Frame);
  FB.st(Width::Q, RegRA, RegSP, 0);
  for (size_t I = 0; I < Regs.size(); ++I)
    FB.st(Width::Q, Regs[I], RegSP, static_cast<int64_t>(I + 1) * 8);
}

void og::emitEpilogue(FunctionBuilder &FB, const std::vector<Reg> &Regs) {
  int64_t Frame = static_cast<int64_t>(Regs.size() + 1) * 8;
  FB.ld(Width::Q, RegRA, RegSP, 0);
  for (size_t I = 0; I < Regs.size(); ++I)
    FB.ld(Width::Q, Regs[I], RegSP, static_cast<int64_t>(I + 1) * 8);
  FB.addi(RegSP, RegSP, Frame);
}

RunOptions og::runWithArg(int64_t Arg0) {
  RunOptions Opts;
  Opts.ArgRegs = {Arg0};
  return Opts;
}
