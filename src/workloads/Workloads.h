//===- workloads/Workloads.h - SpecInt95 stand-ins ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the SpecInt95 programs the paper evaluates
/// (compress, gcc, go, ijpeg, li, m88ksim, perl, vortex). Each generator
/// builds a whole program around the dominant kernel of the original —
/// LZW-style byte hashing, table-driven cost selection, board evaluation,
/// blocked integer transforms, list interpretation, a CPU simulator,
/// string hashing, and a record store — chosen to exercise the mixed
/// 8/16/32/64-bit useful widths the paper's Figure 12 documents. Every
/// workload has a `train` input (profiling, paper §4.1) and a larger `ref`
/// input (evaluation), selected through the a0 argument register.
///
/// All programs are deterministic, halt cleanly, follow the callee-save
/// ABI (checked in tests), and report their results through OUT, which is
/// the output-equivalence oracle for every transformation.
///
//===----------------------------------------------------------------------===//

#ifndef OG_WORKLOADS_WORKLOADS_H
#define OG_WORKLOADS_WORKLOADS_H

#include "program/Program.h"
#include "sim/Interpreter.h"

#include <string>
#include <vector>

namespace og {

/// A benchmark program plus its two input configurations.
struct Workload {
  std::string Name;
  Program Prog;
  RunOptions Train;
  RunOptions Ref;
};

Workload makeCompress(double Scale);
Workload makeGcc(double Scale);
Workload makeGo(double Scale);
Workload makeIjpeg(double Scale);
Workload makeLi(double Scale);
Workload makeM88ksim(double Scale);
Workload makePerl(double Scale);
Workload makeVortex(double Scale);

/// All eight, in the paper's order. \p Scale multiplies the ref input
/// sizes (1.0 = the default benchmark size; tests use smaller values).
std::vector<Workload> makeAllWorkloads(double Scale = 1.0);

/// Lifts an RV32I ELF binary (frontend/Lifter) into a workload. The
/// fixture contract: a0 selects the input (0 = train, 1 = ref) and a1
/// carries the scale hint (ref passes max(1, lround(Scale * 16)) units;
/// train always runs 1). Throws std::runtime_error when the file cannot
/// be parsed or lifted — the same "workload build failed" path the sweep
/// service reports for any generator failure.
Workload makeElfWorkload(const std::string &Path, double Scale = 1.0);

/// Looks up a single workload by name ("compress", ..., or
/// "elf:path/to/binary"); asserts on unknown registry names (callers
/// validate against allWorkloadNames first).
Workload makeWorkload(const std::string &Name, double Scale = 1.0);

} // namespace og

#endif // OG_WORKLOADS_WORKLOADS_H
