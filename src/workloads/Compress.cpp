//===- workloads/Compress.cpp - LZW-style byte compressor kernel ----------==//
//
// Stand-in for SpecInt95 `compress`: a byte stream is hashed into a code
// table (the hot loop of LZW), emitting codes when hash chains saturate.
// Dominated by byte loads, small-constant arithmetic and AND masks — the
// paper's flagship useful-range case.
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace og;

Workload og::makeCompress(double Scale) {
  ProgramBuilder PB;

  size_t MaxN = static_cast<size_t>(60000 * Scale) + 64;
  uint64_t Input =
      addSkewedBytes(PB, MaxN, 0xC0817E55, 'a', 'z', 90, 0, 255);
  uint64_t Table = PB.addZeroData(4096 * 2); // halfword counts

  // emit_code(a0 = code) -> v0: fold the code into a byte-ish signature.
  {
    FunctionBuilder &F = PB.beginFunction("emit_code");
    F.block("entry");
    F.srli(RegT0, RegA0, 4);
    F.xor_(RegT0, RegT0, RegA0);
    F.andi(RegV0, RegT0, 0xFF);
    F.ret();
  }

  // checksum(a0 = table base) -> v0: sum of all table counters.
  {
    FunctionBuilder &F = PB.beginFunction("checksum");
    F.block("entry");
    F.ldi(RegT0, 0);  // i
    F.ldi(RegV0, 0);  // sum
    F.block("loop");
    F.slli(RegT1, RegT0, 1);
    F.add(RegT1, RegA0, RegT1);
    F.ld(Width::H, RegT2, RegT1, 0);
    F.add(RegV0, RegV0, RegT2);
    F.addi(RegT0, RegT0, 1);
    F.cmpltImm(RegT3, RegT0, 4096);
    F.bne(RegT3, "loop", "done");
    F.block("done");
    F.ret();
  }

  // main: a0 = number of input bytes to compress.
  {
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.mov(RegS1, RegA0);          // n
    F.ldi(RegS0, static_cast<int64_t>(Input));
    F.ldi(RegS2, 0);              // i
    F.ldi(RegS3, 0);              // h (rolling hash)
    F.ldi(RegS4, 0);              // emitted codes
    F.ldi(RegS5, 0);              // signature accumulator
    F.block("loop");
    F.cmplt(RegT0, RegS2, RegS1);
    F.beq(RegT0, "finish", "body");
    F.block("body");
    // h = (h * 31 + input[i]) & 0xFFF
    F.add(RegT1, RegS0, RegS2);
    F.ld(Width::B, RegT2, RegT1, 0);
    F.muli(RegT3, RegS3, 31);
    F.add(RegT3, RegT3, RegT2);
    F.andi(RegS3, RegT3, 0xFFF);
    // table[h]++ (halfword counter, wraps like the original's code table)
    F.slli(RegT4, RegS3, 1);
    F.ldi(RegT5, static_cast<int64_t>(Table));
    F.add(RegT4, RegT5, RegT4);
    F.ld(Width::H, RegT6, RegT4, 0);
    F.addi(RegT6, RegT6, 1);
    F.st(Width::H, RegT6, RegT4, 0);
    // Chain saturation: emit a code every time the low bits clear.
    F.andi(RegT7, RegT6, 0x7);
    F.bne(RegT7, "next", "emit");
    F.block("emit");
    F.mov(RegA0, RegS3);
    F.jsr("emit_code");
    F.add(RegS5, RegS5, RegV0);
    F.addi(RegS4, RegS4, 1);
    F.br("next");
    F.block("next");
    F.addi(RegS2, RegS2, 1);
    F.br("loop");
    F.block("finish");
    F.out(RegS4);
    F.out(RegS5);
    F.out(RegS3);
    F.ldi(RegA0, static_cast<int64_t>(Table));
    F.jsr("checksum");
    F.out(RegV0);
    F.halt();
  }

  PB.setEntry("main");

  Workload W;
  W.Name = "compress";
  W.Prog = PB.finish();
  W.Train = runWithArg(static_cast<int64_t>(7000 * Scale) + 32);
  W.Ref = runWithArg(static_cast<int64_t>(60000 * Scale) + 32);
  return W;
}
