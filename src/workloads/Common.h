//===- workloads/Common.h - Workload construction helpers --------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared scaffolding for the workload generators: deterministic input
/// data, ABI-correct prologues/epilogues for functions that use
/// callee-saved registers, and RunOptions wiring.
///
//===----------------------------------------------------------------------===//

#ifndef OG_WORKLOADS_COMMON_H
#define OG_WORKLOADS_COMMON_H

#include "program/Builder.h"
#include "sim/Interpreter.h"
#include "support/Rng.h"

#include <vector>

namespace og {

/// Deterministic random bytes in [Lo, Hi], placed in the data segment;
/// returns the address.
uint64_t addRandomBytes(ProgramBuilder &PB, size_t Count, uint64_t Seed,
                        uint8_t Lo, uint8_t Hi);

/// Deterministic skewed bytes: with probability \p CommonPct/100 a byte is
/// drawn from [CommonLo, CommonHi], otherwise from [RareLo, RareHi]. Real
/// program data is heavily skewed (paper Figure 12: 43% of SpecInt values
/// fit one byte); uniform inputs would starve the value profiler.
uint64_t addSkewedBytes(ProgramBuilder &PB, size_t Count, uint64_t Seed,
                        uint8_t CommonLo, uint8_t CommonHi,
                        unsigned CommonPct, uint8_t RareLo, uint8_t RareHi);

/// Deterministic random 64-bit words in [Lo, Hi]; returns the address.
uint64_t addRandomQuads(ProgramBuilder &PB, size_t Count, uint64_t Seed,
                        int64_t Lo, int64_t Hi);

/// Saves \p Regs (callee-saved) on the stack at function entry. Pair with
/// emitEpilogue before every ret. Uses 8 bytes per register.
void emitPrologue(FunctionBuilder &FB, const std::vector<Reg> &Regs);
void emitEpilogue(FunctionBuilder &FB, const std::vector<Reg> &Regs);

/// RunOptions with a0 = \p Arg0 (the input-size selector).
RunOptions runWithArg(int64_t Arg0);

} // namespace og

#endif // OG_WORKLOADS_COMMON_H
