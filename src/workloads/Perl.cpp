//===- workloads/Perl.cpp - String hashing kernel ---------------------------==//
//
// Stand-in for SpecInt95 `perl`: associative-array style string hashing
// (djb2 over letter bytes) into counting buckets, then a scan for the
// hottest bucket. A single hot leaf function — the shape that gave perl
// the highest run-time specialized-instruction share in the paper
// (Figure 6: 35%).
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace og;

Workload og::makePerl(double Scale) {
  ProgramBuilder PB;

  constexpr unsigned WordLen = 8;
  size_t MaxWords = static_cast<size_t>(6000 * Scale) + 64;
  uint64_t Text =
      addRandomBytes(PB, MaxWords * WordLen, 0x9E271E77, 'a', 'z');
  uint64_t Buckets = PB.addZeroData(1024 * 2); // halfword counts

  // hash_word(a0 = ptr) -> v0: djb2 over WordLen letters.
  {
    FunctionBuilder &F = PB.beginFunction("hash_word");
    F.block("entry");
    F.ldi(RegV0, 5381);
    F.ldi(RegT0, 0);
    F.block("loop");
    F.add(RegT1, RegA0, RegT0);
    F.ld(Width::B, RegT2, RegT1, 0);
    F.muli(RegV0, RegV0, 33);
    F.xor_(RegV0, RegV0, RegT2);
    // Keep the running hash in 32 bits like the original C unsigned int.
    F.andi(RegV0, RegV0, 0x7FFFFFFF);
    F.addi(RegT0, RegT0, 1);
    F.cmpltImm(RegT3, RegT0, WordLen);
    F.bne(RegT3, "loop", "done");
    F.block("done");
    F.ret();
  }

  // main: a0 = number of words to hash.
  {
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.mov(RegS0, RegA0);
    F.ldi(RegS1, 0); // word index
    F.ldi(RegS2, static_cast<int64_t>(Text));
    F.ldi(RegS3, static_cast<int64_t>(Buckets));
    F.block("words");
    F.cmplt(RegT0, RegS1, RegS0);
    F.beq(RegT0, "scan", "body");
    F.block("body");
    F.muli(RegA0, RegS1, WordLen);
    F.add(RegA0, RegS2, RegA0);
    F.jsr("hash_word");
    F.andi(RegT1, RegV0, 0x3FF);
    F.slli(RegT1, RegT1, 1);
    F.add(RegT1, RegS3, RegT1);
    F.ld(Width::H, RegT2, RegT1, 0);
    F.addi(RegT2, RegT2, 1);
    F.st(Width::H, RegT2, RegT1, 0);
    F.addi(RegS1, RegS1, 1);
    F.br("words");
    // Scan for the hottest bucket.
    F.block("scan");
    F.ldi(RegS4, 0); // i
    F.ldi(RegS5, 0); // max
    F.ldi(RegS1, 0); // total (reuse)
    F.block("scanloop");
    F.slli(RegT0, RegS4, 1);
    F.add(RegT0, RegS3, RegT0);
    F.ld(Width::H, RegT1, RegT0, 0);
    F.add(RegS1, RegS1, RegT1);
    F.cmplt(RegT2, RegS5, RegT1);
    F.emit(Instruction::alu(Op::CmovNe, Width::Q, RegS5, RegT2, RegT1));
    F.addi(RegS4, RegS4, 1);
    F.cmpltImm(RegT3, RegS4, 1024);
    F.bne(RegT3, "scanloop", "finish");
    F.block("finish");
    F.out(RegS5);
    F.out(RegS1);
    F.halt();
  }

  PB.setEntry("main");

  Workload W;
  W.Name = "perl";
  W.Prog = PB.finish();
  W.Train = runWithArg(static_cast<int64_t>(800 * Scale) + 32);
  W.Ref = runWithArg(static_cast<int64_t>(6000 * Scale) + 32);
  return W;
}
