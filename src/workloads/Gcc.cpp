//===- workloads/Gcc.cpp - Table-driven cost selection kernel -------------==//
//
// Stand-in for SpecInt95 `gcc`: a stream of pseudo-IR opcodes is pushed
// through comparison-heavy, table-driven cost evaluation across several
// helper functions — the branchy, multi-function control flow that made
// gcc the richest specialization target in the paper (55 points).
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace og;

namespace {

/// Emits a leaf cost evaluator: v0 = table[a0 & 3] adjusted by a compare
/// chain on a1 (an operand-size proxy).
void makeEvaluator(ProgramBuilder &PB, const char *Name, uint64_t Table,
                   int64_t Bias) {
  FunctionBuilder &F = PB.beginFunction(Name);
  F.block("entry");
  F.andi(RegT0, RegA0, 3);
  F.slli(RegT0, RegT0, 3);
  F.ldi(RegT1, static_cast<int64_t>(Table));
  F.add(RegT0, RegT0, RegT1);
  F.ld(Width::Q, RegV0, RegT0, 0);
  // Wide operands cost extra; tiny ones get a rebate.
  F.cmpltImm(RegT2, RegA1, 16);
  F.bne(RegT2, "small", "wide");
  F.block("small");
  F.subi(RegV0, RegV0, 1);
  F.br("done");
  F.block("wide");
  F.cmpltImm(RegT3, RegA1, 128);
  F.bne(RegT3, "done", "extra");
  F.block("extra");
  F.addi(RegV0, RegV0, Bias);
  F.br("done");
  F.block("done");
  F.ret();
}

} // namespace

Workload og::makeGcc(double Scale) {
  ProgramBuilder PB;

  size_t MaxN = static_cast<size_t>(40000 * Scale) + 64;
  uint64_t Ops = addSkewedBytes(PB, MaxN, 0x6CC0FFEE, 0, 3, 75, 0, 15);
  uint64_t Sizes = addSkewedBytes(PB, MaxN, 0x515E5EED, 1, 12, 85, 1, 200);
  uint64_t CostArith = PB.addQuadData({2, 3, 4, 6});
  uint64_t CostMem = PB.addQuadData({5, 7, 9, 12});
  uint64_t CostBr = PB.addQuadData({1, 2, 8, 3});
  uint64_t CostMisc = PB.addQuadData({1, 1, 2, 2});

  makeEvaluator(PB, "eval_arith", CostArith, 2);
  makeEvaluator(PB, "eval_mem", CostMem, 4);
  makeEvaluator(PB, "eval_branch", CostBr, 1);
  makeEvaluator(PB, "eval_misc", CostMisc, 1);

  // main: a0 = stream length.
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.mov(RegS1, RegA0);
  F.ldi(RegS0, static_cast<int64_t>(Ops));
  F.ldi(RegS2, static_cast<int64_t>(Sizes));
  F.ldi(RegS3, 0); // i
  F.ldi(RegS4, 0); // total cost
  F.ldi(RegS5, 0); // class histogram packed in bytes
  F.block("loop");
  F.cmplt(RegT0, RegS3, RegS1);
  F.beq(RegT0, "finish", "body");
  F.block("body");
  F.add(RegT1, RegS0, RegS3);
  F.ld(Width::B, RegT2, RegT1, 0); // op in [0,15]
  F.add(RegT3, RegS2, RegS3);
  F.ld(Width::B, RegA1, RegT3, 0); // size proxy
  F.mov(RegA0, RegT2);
  // Four-way dispatch on the opcode class.
  F.cmpltImm(RegT4, RegT2, 4);
  F.bne(RegT4, "arith", "notarith");
  F.block("arith");
  F.jsr("eval_arith");
  F.br("accum");
  F.block("notarith");
  F.cmpltImm(RegT4, RegT2, 8);
  F.bne(RegT4, "mem", "notmem");
  F.block("mem");
  F.jsr("eval_mem");
  F.br("accum");
  F.block("notmem");
  F.cmpltImm(RegT4, RegT2, 12);
  F.bne(RegT4, "branch", "misc");
  F.block("branch");
  F.jsr("eval_branch");
  F.br("accum");
  F.block("misc");
  F.jsr("eval_misc");
  F.br("accum");
  F.block("accum");
  F.add(RegS4, RegS4, RegV0);
  // Histogram: bump the byte lane of the class (0..3).
  F.andi(RegT5, RegV0, 0x7);
  F.add(RegS5, RegS5, RegT5);
  F.addi(RegS3, RegS3, 1);
  F.br("loop");
  F.block("finish");
  F.out(RegS4);
  F.out(RegS5);
  F.halt();

  PB.setEntry("main");

  Workload W;
  W.Name = "gcc";
  W.Prog = PB.finish();
  W.Train = runWithArg(static_cast<int64_t>(5000 * Scale) + 32);
  W.Ref = runWithArg(static_cast<int64_t>(40000 * Scale) + 32);
  return W;
}
