//===- workloads/Go.cpp - Board evaluation kernel --------------------------==//
//
// Stand-in for SpecInt95 `go`: repeated evaluation of a 19x19 byte board —
// neighbor counting, influence scoring, territory accumulation — in
// nested constant-bound loops, the shape the paper's loop trip-count
// analysis (Section 2.3) is built for.
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace og;

Workload og::makeGo(double Scale) {
  (void)Scale; // board size is fixed; iterations come from a0
  ProgramBuilder PB;

  uint64_t Board = addSkewedBytes(PB, 19 * 19, 0x60B04D99, 0, 0, 65, 1, 2);

  // eval_point(a0 = board base, a1 = index) -> v0: signed influence of
  // the four neighbors.
  {
    FunctionBuilder &F = PB.beginFunction("eval_point");
    F.block("entry");
    F.add(RegT0, RegA0, RegA1);
    F.ld(Width::B, RegT1, RegT0, -1);
    F.ld(Width::B, RegT2, RegT0, 1);
    F.ld(Width::B, RegT3, RegT0, -19);
    F.ld(Width::B, RegT4, RegT0, 19);
    F.add(RegT1, RegT1, RegT2);
    F.add(RegT1, RegT1, RegT3);
    F.add(RegT1, RegT1, RegT4); // neighbor sum in [0,8]
    F.ld(Width::B, RegT5, RegT0, 0);
    // score = (c==1) ? +sum : (c==2) ? -sum : 0
    F.ldi(RegV0, 0);
    F.cmpeqImm(RegT6, RegT5, 1);
    F.emit(Instruction::alu(Op::CmovNe, Width::Q, RegV0, RegT6, RegT1));
    F.cmpeqImm(RegT6, RegT5, 2);
    F.sub(RegT7, RegZero, RegT1);
    F.emit(Instruction::alu(Op::CmovNe, Width::Q, RegV0, RegT6, RegT7));
    F.ret();
  }

  // main: a0 = evaluation sweeps.
  {
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.mov(RegS0, RegA0); // sweeps
    F.ldi(RegS1, 0);     // sweep counter
    F.ldi(RegS5, 0);     // global score
    F.block("sweep");
    F.cmplt(RegT0, RegS1, RegS0);
    F.beq(RegT0, "finish", "yinit");
    F.block("yinit");
    F.ldi(RegS2, 1); // y
    F.block("yloop");
    F.cmpltImm(RegT0, RegS2, 18);
    F.beq(RegT0, "ydone", "xinit");
    F.block("xinit");
    F.ldi(RegS3, 1); // x
    F.block("xloop");
    F.cmpltImm(RegT0, RegS3, 18);
    F.beq(RegT0, "xdone", "body");
    F.block("body");
    F.muli(RegT1, RegS2, 19);
    F.add(RegT1, RegT1, RegS3);
    F.ldi(RegA0, static_cast<int64_t>(Board));
    F.mov(RegA1, RegT1);
    F.jsr("eval_point");
    F.add(RegS5, RegS5, RegV0);
    F.addi(RegS3, RegS3, 1);
    F.br("xloop");
    F.block("xdone");
    F.addi(RegS2, RegS2, 1);
    F.br("yloop");
    F.block("ydone");
    F.addi(RegS1, RegS1, 1);
    F.br("sweep");
    F.block("finish");
    F.out(RegS5);
    F.out(RegS1);
    F.halt();
  }

  PB.setEntry("main");

  Workload W;
  W.Name = "go";
  W.Prog = PB.finish();
  W.Train = runWithArg(static_cast<int64_t>(4 * Scale) + 1);
  W.Ref = runWithArg(static_cast<int64_t>(36 * Scale) + 1);
  return W;
}
