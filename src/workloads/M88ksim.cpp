//===- workloads/M88ksim.cpp - CPU-simulator kernel ------------------------==//
//
// Stand-in for SpecInt95 `m88ksim`: an instruction-set simulator. 32-bit
// encodings are fetched from memory, fields extracted with shifts and
// masks (MSK's natural habitat, paper Section 2.2.5), and a 16-entry
// register file in memory is updated per opcode.
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace og;

Workload og::makeM88ksim(double Scale) {
  (void)Scale;
  ProgramBuilder PB;

  constexpr unsigned ProgWords = 512;
  // Encodings: op = bits 28..31 (0..3 used), rd = 24..27, rs = 20..23,
  // imm16 = bits 0..15. Like real instruction streams, the mix is skewed:
  // mostly add/addi with small immediates.
  std::vector<int64_t> Encodings(ProgWords);
  {
    Rng R(0x88D05E77);
    for (unsigned I = 0; I < ProgWords; ++I) {
      uint64_t Op = R.below(100) < 80 ? R.below(2) : R.below(4);
      uint64_t Rd = R.below(16);
      uint64_t Rs = R.below(16);
      uint64_t Imm = R.below(100) < 85 ? R.below(256) : R.below(65536);
      Encodings[I] = static_cast<int64_t>((Op << 28) | (Rd << 24) |
                                          (Rs << 20) | Imm);
    }
  }
  uint64_t SimProg = PB.addQuadData(Encodings);
  uint64_t SimRegs = PB.addZeroData(16 * 8);

  // step(a0 = encoded word): decode and execute one guest instruction.
  {
    FunctionBuilder &F = PB.beginFunction("step");
    F.block("entry");
    F.srli(RegT0, RegA0, 28);
    F.andi(RegT0, RegT0, 0xF); // op
    F.srli(RegT1, RegA0, 24);
    F.andi(RegT1, RegT1, 0xF); // rd
    F.srli(RegT2, RegA0, 20);
    F.andi(RegT2, RegT2, 0xF); // rs
    F.msk(Width::H, RegT3, RegA0, 0); // imm16 (zero-extended halfword)
    // Register file addresses.
    F.ldi(RegT4, static_cast<int64_t>(SimRegs));
    F.slli(RegT5, RegT1, 3);
    F.add(RegT5, RegT4, RegT5); // &regs[rd]
    F.slli(RegT6, RegT2, 3);
    F.add(RegT6, RegT4, RegT6); // &regs[rs]
    F.ld(Width::Q, RegT7, RegT6, 0); // regs[rs]
    F.andi(RegT0, RegT0, 3);
    // op 0: add; 1: addi; 2: xor-imm; 3: compare-set.
    F.cmpeqImm(RegT8, RegT0, 0);
    F.bne(RegT8, "do_add", "chk1");
    F.block("chk1");
    F.cmpeqImm(RegT8, RegT0, 1);
    F.bne(RegT8, "do_addi", "chk2");
    F.block("chk2");
    F.cmpeqImm(RegT8, RegT0, 2);
    F.bne(RegT8, "do_xor", "do_cmp");
    F.block("do_add");
    F.ld(Width::Q, RegT9, RegT5, 0);
    F.add(RegT9, RegT9, RegT7);
    F.st(Width::W, RegT9, RegT5, 0); // guest regs are 32-bit words
    F.ldi(RegV0, 1);
    F.ret();
    F.block("do_addi");
    F.add(RegT9, RegT7, RegT3);
    F.st(Width::W, RegT9, RegT5, 0);
    F.ldi(RegV0, 2);
    F.ret();
    F.block("do_xor");
    F.xor_(RegT9, RegT7, RegT3);
    F.st(Width::W, RegT9, RegT5, 0);
    F.ldi(RegV0, 3);
    F.ret();
    F.block("do_cmp");
    F.cmplt(RegT9, RegT7, RegT3);
    F.st(Width::B, RegT9, RegT5, 0); // flag byte
    F.ldi(RegV0, 4);
    F.ret();
  }

  // regsum() -> v0: checksum of the guest register file.
  {
    FunctionBuilder &F = PB.beginFunction("regsum");
    F.block("entry");
    F.ldi(RegT0, 0);
    F.ldi(RegV0, 0);
    F.ldi(RegT1, static_cast<int64_t>(SimRegs));
    F.block("loop");
    F.slli(RegT2, RegT0, 3);
    F.add(RegT2, RegT1, RegT2);
    F.ld(Width::W, RegT3, RegT2, 0);
    F.xor_(RegV0, RegV0, RegT3);
    F.addi(RegT0, RegT0, 1);
    F.cmpltImm(RegT4, RegT0, 16);
    F.bne(RegT4, "loop", "done");
    F.block("done");
    F.ret();
  }

  // main: a0 = guest instructions to execute.
  {
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.mov(RegS0, RegA0);
    F.ldi(RegS1, 0); // step count
    F.ldi(RegS2, 0); // guest pc
    F.ldi(RegS3, static_cast<int64_t>(SimProg));
    F.ldi(RegS4, 0); // op-mix signature
    F.block("loop");
    F.cmplt(RegT0, RegS1, RegS0);
    F.beq(RegT0, "finish", "body");
    F.block("body");
    F.slli(RegT1, RegS2, 3);
    F.add(RegT1, RegS3, RegT1);
    F.ld(Width::W, RegA0, RegT1, 0);
    F.jsr("step");
    F.add(RegS4, RegS4, RegV0);
    // pc = (pc + 1) % ProgWords
    F.addi(RegS2, RegS2, 1);
    F.cmpltImm(RegT2, RegS2, ProgWords);
    F.emit(Instruction::aluImm(Op::CmovEq, Width::Q, RegS2, RegT2, 0));
    F.addi(RegS1, RegS1, 1);
    F.br("loop");
    F.block("finish");
    F.out(RegS4);
    F.jsr("regsum");
    F.out(RegV0);
    F.halt();
  }

  PB.setEntry("main");

  Workload W;
  W.Name = "m88ksim";
  W.Prog = PB.finish();
  W.Train = runWithArg(static_cast<int64_t>(3000 * Scale) + 64);
  W.Ref = runWithArg(static_cast<int64_t>(25000 * Scale) + 64);
  return W;
}
