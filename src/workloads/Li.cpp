//===- workloads/Li.cpp - List interpreter kernel --------------------------==//
//
// Stand-in for SpecInt95 `li` (xlisp): cons cells in a bump-allocated
// arena, list construction, folding and reversal. Pointer-width (64-bit)
// link fields mixed with tiny tagged payloads — the pointer-chasing shape
// where software gating helps least on addresses but most on payloads.
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace og;

Workload og::makeLi(double Scale) {
  ProgramBuilder PB;

  size_t MaxCells = static_cast<size_t>(20000 * Scale) + 256;
  uint64_t Arena = PB.addZeroData(MaxCells * 16); // {car, cdr} quads
  uint64_t BumpPtr = PB.addQuadData({static_cast<int64_t>(Arena)});

  // cons(a0 = car, a1 = cdr) -> v0: bump-allocate a cell.
  {
    FunctionBuilder &F = PB.beginFunction("cons");
    F.block("entry");
    F.ldi(RegT0, static_cast<int64_t>(BumpPtr));
    F.ld(Width::Q, RegV0, RegT0, 0);
    F.st(Width::Q, RegA0, RegV0, 0);
    F.st(Width::Q, RegA1, RegV0, 8);
    F.addi(RegT1, RegV0, 16);
    F.st(Width::Q, RegT1, RegT0, 0);
    F.ret();
  }

  // sum_list(a0 = list) -> v0: fold + over the cars (tagged small ints).
  {
    FunctionBuilder &F = PB.beginFunction("sum_list");
    F.block("entry");
    F.ldi(RegV0, 0);
    F.block("loop");
    F.beq(RegA0, "done", "body");
    F.block("body");
    F.ld(Width::Q, RegT0, RegA0, 0);
    F.andi(RegT0, RegT0, 0xFF); // strip the tag: payloads are bytes
    F.add(RegV0, RegV0, RegT0);
    F.ld(Width::Q, RegA0, RegA0, 8);
    F.br("loop");
    F.block("done");
    F.ret();
  }

  // reverse_list(a0 = list) -> v0: in-place pointer reversal.
  {
    FunctionBuilder &F = PB.beginFunction("reverse_list");
    F.block("entry");
    F.ldi(RegV0, 0); // acc
    F.block("loop");
    F.beq(RegA0, "done", "body");
    F.block("body");
    F.ld(Width::Q, RegT0, RegA0, 8); // next
    F.st(Width::Q, RegV0, RegA0, 8); // cdr = acc
    F.mov(RegV0, RegA0);
    F.mov(RegA0, RegT0);
    F.br("loop");
    F.block("done");
    F.ret();
  }

  // main: a0 = list length.
  {
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.mov(RegS0, RegA0);
    F.ldi(RegS1, 0); // i
    F.ldi(RegS2, 0); // list head
    F.block("build");
    F.cmplt(RegT0, RegS1, RegS0);
    F.beq(RegT0, "built", "cell");
    F.block("cell");
    // car = (i * 7) & 0xFF tagged with 0x100.
    F.muli(RegT1, RegS1, 7);
    F.andi(RegT1, RegT1, 0xFF);
    F.ori(RegA0, RegT1, 0x100);
    F.mov(RegA1, RegS2);
    F.jsr("cons");
    F.mov(RegS2, RegV0);
    F.addi(RegS1, RegS1, 1);
    F.br("build");
    F.block("built");
    F.mov(RegA0, RegS2);
    F.jsr("sum_list");
    F.out(RegV0);
    F.mov(RegA0, RegS2);
    F.jsr("reverse_list");
    F.mov(RegS2, RegV0);
    F.mov(RegA0, RegS2);
    F.jsr("sum_list");
    F.out(RegV0);
    // Head car after reversal identifies the last-built cell.
    F.ld(Width::Q, RegT0, RegS2, 0);
    F.out(RegT0);
    F.halt();
  }

  PB.setEntry("main");

  Workload W;
  W.Name = "li";
  W.Prog = PB.finish();
  W.Train = runWithArg(static_cast<int64_t>(2500 * Scale) + 16);
  W.Ref = runWithArg(static_cast<int64_t>(20000 * Scale) + 16);
  return W;
}
