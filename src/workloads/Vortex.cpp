//===- workloads/Vortex.cpp - Record-store kernel ---------------------------==//
//
// Stand-in for SpecInt95 `vortex`: an object store of fixed-layout
// records with byte flags, halfword counters, word ids and quadword
// links. One pass filters and mutates by predicate; a second follows the
// link chain — the mixed-width field traffic that made vortex eliminate
// nearly all of its specialized instructions in the paper (Figure 5).
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace og;

Workload og::makeVortex(double Scale) {
  ProgramBuilder PB;

  // Record layout (16 bytes): +0 flags (byte), +2 count (halfword),
  // +4 id (word), +8 link (quad index of next record).
  size_t NumRecords = static_cast<size_t>(4096 * Scale) + 64;
  std::vector<uint8_t> Raw(NumRecords * 16, 0);
  Rng R(0x40B7E399);
  for (size_t I = 0; I < NumRecords; ++I) {
    uint8_t *Rec = &Raw[I * 16];
    Rec[0] = static_cast<uint8_t>(R.below(100) < 93 ? 1 : R.range(0, 7));
    uint32_t Id = static_cast<uint32_t>(R.range(0, 1 << 20));
    for (int B = 0; B < 4; ++B)
      Rec[4 + B] = static_cast<uint8_t>(Id >> (8 * B));
    uint64_t Link = static_cast<uint64_t>(R.range(
        0, static_cast<int64_t>(NumRecords) - 1));
    for (int B = 0; B < 8; ++B)
      Rec[8 + B] = static_cast<uint8_t>(Link >> (8 * B));
  }
  uint64_t Store = PB.addByteData(Raw);

  // touch_record(a0 = record ptr) -> v0: predicate + mutate.
  {
    FunctionBuilder &F = PB.beginFunction("touch_record");
    F.block("entry");
    F.ld(Width::B, RegT0, RegA0, 0); // flags
    F.andi(RegT1, RegT0, 3);
    F.cmpeqImm(RegT2, RegT1, 1);
    F.beq(RegT2, "miss", "hit");
    F.block("hit");
    F.ld(Width::H, RegT3, RegA0, 2);
    F.addi(RegT3, RegT3, 1);
    F.st(Width::H, RegT3, RegA0, 2);
    F.ldi(RegV0, 1);
    F.ret();
    F.block("miss");
    F.ldi(RegV0, 0);
    F.ret();
  }

  // main: a0 = chain hops for the second phase.
  {
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.mov(RegS0, RegA0);
    F.ldi(RegS1, static_cast<int64_t>(Store));
    // Phase 1: filter + mutate every record.
    F.ldi(RegS2, 0); // index
    F.ldi(RegS3, 0); // hits
    F.block("filter");
    F.cmpltImm(RegT0, RegS2, static_cast<int64_t>(NumRecords));
    F.beq(RegT0, "phase2", "frec");
    F.block("frec");
    F.slli(RegA0, RegS2, 4);
    F.add(RegA0, RegS1, RegA0);
    F.jsr("touch_record");
    F.add(RegS3, RegS3, RegV0);
    F.addi(RegS2, RegS2, 1);
    F.br("filter");
    // Phase 2: chase the link chain, xor the ids.
    F.block("phase2");
    F.ldi(RegS2, 0); // current record index
    F.ldi(RegS4, 0); // hop counter
    F.ldi(RegS5, 0); // id signature
    F.block("chase");
    F.cmplt(RegT0, RegS4, RegS0);
    F.beq(RegT0, "finish", "hop");
    F.block("hop");
    F.slli(RegT1, RegS2, 4);
    F.add(RegT1, RegS1, RegT1);
    F.ld(Width::W, RegT2, RegT1, 4); // id
    F.xor_(RegS5, RegS5, RegT2);
    F.ld(Width::Q, RegS2, RegT1, 8); // next index
    F.addi(RegS4, RegS4, 1);
    F.br("chase");
    F.block("finish");
    F.out(RegS3);
    F.out(RegS5);
    F.halt();
  }

  PB.setEntry("main");

  Workload W;
  W.Name = "vortex";
  W.Prog = PB.finish();
  W.Train = runWithArg(static_cast<int64_t>(3000 * Scale) + 64);
  W.Ref = runWithArg(static_cast<int64_t>(30000 * Scale) + 64);
  return W;
}
