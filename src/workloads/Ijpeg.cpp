//===- workloads/Ijpeg.cpp - Blocked integer transform kernel --------------==//
//
// Stand-in for SpecInt95 `ijpeg`: an 8-tap integer row transform over a
// byte image with multiply-accumulate into 32 bits, downshift and clamp
// back to a byte — the multiply-heavy, mixed-width pattern of the DCT.
//
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace og;

Workload og::makeIjpeg(double Scale) {
  (void)Scale;
  ProgramBuilder PB;

  constexpr unsigned Dim = 96; // Dim x Dim byte image, Dim % 8 == 0
  uint64_t Image =
      addSkewedBytes(PB, Dim * Dim, 0x17E69EAD, 0, 40, 85, 0, 255);
  uint64_t OutImg = PB.addZeroData(Dim * Dim);
  uint64_t Coefs = addRandomQuads(PB, 8, 0xC0EF5EED, -8, 8);

  // transform_row(a0 = src ptr, a1 = dst ptr): one 8-pixel tap.
  {
    FunctionBuilder &F = PB.beginFunction("transform_row");
    F.block("entry");
    F.ldi(RegT0, 0); // k
    F.ldi(RegT1, 0); // acc
    F.ldi(RegT2, static_cast<int64_t>(Coefs));
    F.block("taps");
    F.add(RegT3, RegA0, RegT0);
    F.ld(Width::B, RegT4, RegT3, 0);
    F.slli(RegT5, RegT0, 3);
    F.add(RegT5, RegT2, RegT5);
    F.ld(Width::Q, RegT6, RegT5, 0);
    F.mul(RegT4, RegT4, RegT6);
    F.add(RegT1, RegT1, RegT4);
    F.addi(RegT0, RegT0, 1);
    F.cmpltImm(RegT7, RegT0, 8);
    F.bne(RegT7, "taps", "clamp");
    F.block("clamp");
    // v = clamp(acc >> 3, 0, 255)
    F.srai(RegT1, RegT1, 3);
    F.ldi(RegT5, 0);
    F.cmplt(RegT6, RegT1, RegZero);
    F.emit(Instruction::alu(Op::CmovNe, Width::Q, RegT1, RegT6, RegT5));
    F.ldi(RegT5, 255);
    F.cmpltImm(RegT6, RegT1, 256);
    F.emit(Instruction::alu(Op::CmovEq, Width::Q, RegT1, RegT6, RegT5));
    F.st(Width::B, RegT1, RegA1, 0);
    F.mov(RegV0, RegT1);
    F.ret();
  }

  // main: a0 = passes over the image.
  {
    FunctionBuilder &F = PB.beginFunction("main");
    F.block("entry");
    F.mov(RegS0, RegA0);
    F.ldi(RegS1, 0); // pass
    F.ldi(RegS5, 0); // checksum
    F.block("pass");
    F.cmplt(RegT0, RegS1, RegS0);
    F.beq(RegT0, "finish", "rowinit");
    F.block("rowinit");
    F.ldi(RegS2, 0); // pixel index, steps by 8
    F.block("rows");
    F.cmpltImm(RegT0, RegS2, Dim * Dim - 8);
    F.beq(RegT0, "rowsdone", "dorow");
    F.block("dorow");
    F.ldi(RegA0, static_cast<int64_t>(Image));
    F.add(RegA0, RegA0, RegS2);
    F.ldi(RegA1, static_cast<int64_t>(OutImg));
    F.add(RegA1, RegA1, RegS2);
    F.jsr("transform_row");
    F.add(RegS5, RegS5, RegV0);
    F.addi(RegS2, RegS2, 8);
    F.br("rows");
    F.block("rowsdone");
    F.addi(RegS1, RegS1, 1);
    F.br("pass");
    F.block("finish");
    F.out(RegS5);
    F.halt();
  }

  PB.setEntry("main");

  Workload W;
  W.Name = "ijpeg";
  W.Prog = PB.finish();
  W.Train = runWithArg(static_cast<int64_t>(1 * Scale) + 1);
  W.Ref = runWithArg(static_cast<int64_t>(10 * Scale) + 3);
  return W;
}
