//===- vrp/ValueRange.h - Wrap-aware integer intervals -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval domain of Value Range Propagation (paper Section 2):
/// [Min, Max] over int64 with [INT64_MIN, INT64_MAX] as the "unknown"
/// top element. All arithmetic is wrap-aware (Section 2.2.1: "if overflow
/// is possible then the calculated range takes the wrap-around behavior
/// into account"): whenever exact interval arithmetic can leave the int64
/// domain, the result degrades to full — the conservative hull of the
/// wrapped value set — and callers can observe the wrap through the MayWrap
/// out-parameters of the transfer functions.
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRP_VALUERANGE_H
#define OG_VRP_VALUERANGE_H

#include "isa/Width.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>

namespace og {

/// A closed signed interval [Min, Max]; Min <= Max always holds.
class ValueRange {
public:
  /// Default-constructed ranges are full (unknown).
  ValueRange() = default;
  ValueRange(int64_t Min, int64_t Max) : Min(Min), Max(Max) {
    assert(Min <= Max && "malformed range");
  }

  static ValueRange full() { return ValueRange(); }
  static ValueRange constant(int64_t V) { return ValueRange(V, V); }
  /// The representable range of a sign-extended width-W value.
  static ValueRange ofWidth(Width W) {
    return ValueRange(widthSignedMin(W), widthSignedMax(W));
  }
  /// [0, 2^(8*Bytes)-1]; Bytes == 8 degrades to the nonnegative half.
  static ValueRange unsignedOfBytes(unsigned Bytes) {
    if (Bytes >= 8)
      return ValueRange(0, INT64_MAX);
    return ValueRange(0, (int64_t(1) << (8 * Bytes)) - 1);
  }

  int64_t min() const { return Min; }
  int64_t max() const { return Max; }

  bool isFull() const { return Min == INT64_MIN && Max == INT64_MAX; }
  bool isConstant() const { return Min == Max; }
  bool contains(int64_t V) const { return Min <= V && V <= Max; }
  bool contains(const ValueRange &O) const {
    return Min <= O.Min && O.Max <= Max;
  }
  bool isNonNegative() const { return Min >= 0; }

  bool operator==(const ValueRange &O) const {
    return Min == O.Min && Max == O.Max;
  }
  bool operator!=(const ValueRange &O) const { return !(*this == O); }

  /// Minimal sign-extended byte width holding every value of the range.
  unsigned bytes() const { return bytesForSignedRange(Min, Max); }
  Width width() const { return widthForBytes(bytes()); }

  /// True when every value fits a sign-extended \p Bytes-byte value.
  bool fitsBytes(unsigned Bytes) const {
    return fitsSignedBytes(Min, Bytes) && fitsSignedBytes(Max, Bytes);
  }

  /// Interval hull (the conservative meet of VRP: "the widest range is
  /// assumed").
  ValueRange unionWith(const ValueRange &O) const {
    return ValueRange(std::min(Min, O.Min), std::max(Max, O.Max));
  }

  /// Intersection; when empty (contradictory facts, e.g. an infeasible
  /// branch path) returns the singleton at the nearer bound — harmlessly
  /// conservative and keeps the lattice simple.
  ValueRange intersectWith(const ValueRange &O) const {
    int64_t Lo = std::max(Min, O.Min);
    int64_t Hi = std::min(Max, O.Max);
    if (Lo > Hi)
      return ValueRange(Lo, Lo);
    return ValueRange(Lo, Hi);
  }

  /// True when intersectWith(O) would be empty.
  bool disjointFrom(const ValueRange &O) const {
    return std::max(Min, O.Min) > std::min(Max, O.Max);
  }

  // --- Forward interval arithmetic. Each op also reports whether the
  // result wrapped (degraded to full / width-clamped), which gates the
  // backward rules.

  static ValueRange add(const ValueRange &A, const ValueRange &B,
                        bool &Wrapped);
  static ValueRange sub(const ValueRange &A, const ValueRange &B,
                        bool &Wrapped);
  static ValueRange mul(const ValueRange &A, const ValueRange &B,
                        bool &Wrapped);
  static ValueRange bitAnd(const ValueRange &A, const ValueRange &B);
  static ValueRange bitOr(const ValueRange &A, const ValueRange &B);
  static ValueRange bitXor(const ValueRange &A, const ValueRange &B);
  /// a & ~b.
  static ValueRange bitClear(const ValueRange &A, const ValueRange &B);
  static ValueRange shiftLeft(const ValueRange &A, const ValueRange &Amt,
                              bool &Wrapped);
  static ValueRange shiftRightLogical(const ValueRange &A,
                                      const ValueRange &Amt);
  static ValueRange shiftRightArith(const ValueRange &A,
                                    const ValueRange &Amt);

  /// "12..34" or "full".
  std::string str() const;

private:
  int64_t Min = INT64_MIN;
  int64_t Max = INT64_MAX;
};

} // namespace og

#endif // OG_VRP_VALUERANGE_H
