//===- vrp/Transfer.cpp ---------------------------------------------------==//

#include "vrp/Transfer.h"

#include <cassert>

using namespace og;

ValueRange og::forwardTransfer(const Instruction &I, const ValueRange &A,
                               const ValueRange &B, const ValueRange &OldRd,
                               bool &MayWrap) {
  MayWrap = false;
  unsigned Bytes = widthBytes(I.W);
  ValueRange WidthHull = ValueRange::ofWidth(I.W);

  // A width-w operation reads only the low w bytes of its sources; when a
  // source range does not fit the width, the operand the hardware sees is
  // unrelated to the range, so only the structural width bound survives.
  auto fits = [&](const ValueRange &R) { return R.fitsBytes(Bytes); };
  // Clamp an exact result into the width: wraps degrade to the width hull.
  auto clampWidth = [&](const ValueRange &R, bool Wrapped) {
    if (Wrapped || !fits(R)) {
      MayWrap = true;
      return WidthHull;
    }
    return R;
  };

  switch (I.Opc) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul: {
    if (!fits(A) || !fits(B)) {
      MayWrap = true;
      return WidthHull;
    }
    bool Wrapped = false;
    ValueRange R = I.Opc == Op::Add   ? ValueRange::add(A, B, Wrapped)
                   : I.Opc == Op::Sub ? ValueRange::sub(A, B, Wrapped)
                                      : ValueRange::mul(A, B, Wrapped);
    return clampWidth(R, Wrapped);
  }
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Bic: {
    if (!fits(A) || !fits(B))
      return WidthHull;
    ValueRange R = I.Opc == Op::And  ? ValueRange::bitAnd(A, B)
                   : I.Opc == Op::Or ? ValueRange::bitOr(A, B)
                   : I.Opc == Op::Xor ? ValueRange::bitXor(A, B)
                                      : ValueRange::bitClear(A, B);
    // Bitwise results of width-fitting operands always fit the width.
    return R.intersectWith(WidthHull);
  }
  case Op::Sll: {
    if (!fits(A)) {
      MayWrap = true;
      return WidthHull;
    }
    bool Wrapped = false;
    ValueRange R = ValueRange::shiftLeft(A, B, Wrapped);
    return clampWidth(R, Wrapped);
  }
  case Op::Srl: {
    // Exact only when the zero-extended operand equals the value:
    // nonnegative and width-fitting.
    if (!fits(A) || !A.isNonNegative())
      return WidthHull;
    return ValueRange::shiftRightLogical(A, B).intersectWith(WidthHull);
  }
  case Op::Sra: {
    if (!fits(A))
      return WidthHull;
    return ValueRange::shiftRightArith(A, B).intersectWith(WidthHull);
  }
  case Op::CmpEq:
  case Op::CmpLt:
  case Op::CmpLe:
  case Op::CmpUlt:
  case Op::CmpUle: {
    // Decide statically when ranges permit; the 0/1 hull otherwise.
    if (fits(A) && fits(B)) {
      if (I.Opc == Op::CmpLt && A.max() < B.min())
        return ValueRange::constant(1);
      if (I.Opc == Op::CmpLt && A.min() >= B.max() && B.isConstant())
        return ValueRange::constant(0);
      if (I.Opc == Op::CmpLe && A.max() <= B.min() && B.isConstant())
        return ValueRange::constant(1);
      if (I.Opc == Op::CmpEq && A.isConstant() && B.isConstant())
        return ValueRange::constant(A.min() == B.min() ? 1 : 0);
      if (I.Opc == Op::CmpEq && A.disjointFrom(B))
        return ValueRange::constant(0);
    }
    return ValueRange(0, 1);
  }
  case Op::CmovEq:
  case Op::CmovNe:
  case Op::CmovLt:
  case Op::CmovGe: {
    ValueRange Moved = fits(B) ? B : WidthHull;
    if (fits(A)) {
      // Statically decided conditions collapse the union.
      bool CondAlways = false, CondNever = false;
      switch (I.Opc) {
      case Op::CmovEq:
        CondAlways = A.isConstant() && A.min() == 0;
        CondNever = !A.contains(0);
        break;
      case Op::CmovNe:
        CondAlways = !A.contains(0);
        CondNever = A.isConstant() && A.min() == 0;
        break;
      case Op::CmovLt:
        CondAlways = A.max() < 0;
        CondNever = A.min() >= 0;
        break;
      default: // CmovGe
        CondAlways = A.min() >= 0;
        CondNever = A.max() < 0;
        break;
      }
      if (CondAlways)
        return Moved;
      if (CondNever)
        return OldRd;
    }
    return Moved.unionWith(OldRd);
  }
  case Op::Msk: {
    unsigned Shift = 8 * static_cast<unsigned>(I.Imm);
    if (Bytes == 8 && Shift == 0)
      return A; // identity
    ValueRange ZeroExt = ValueRange::unsignedOfBytes(Bytes);
    if (A.isNonNegative()) {
      int64_t Lo = A.min() >> Shift;
      int64_t Hi = A.max() >> Shift;
      return ValueRange(Lo, Hi).intersectWith(ZeroExt);
    }
    return ZeroExt;
  }
  case Op::Sext:
  case Op::Mov:
    return fits(A) ? A : WidthHull;
  case Op::Ldi:
    return ValueRange::constant(truncSignExtend(I.Imm, Bytes));
  case Op::Ld:
    // Paper Section 2.2.2: the loaded range comes from the opcode. Alpha
    // byte/halfword loads zero-extend, word loads sign-extend.
    switch (I.W) {
    case Width::B:
      return ValueRange(0, 0xFF);
    case Width::H:
      return ValueRange(0, 0xFFFF);
    case Width::W:
      return ValueRange(INT32_MIN, INT32_MAX);
    case Width::Q:
      return ValueRange::full();
    }
    return ValueRange::full();
  default:
    // No register destination (stores, branches, calls...).
    return ValueRange::full();
  }
}

void og::backwardTransfer(const Instruction &I, const ValueRange &Out,
                          ValueRange &A, ValueRange &B) {
  bool Wrapped = false;
  switch (I.Opc) {
  case Op::Add: {
    // Paper 2.2.1: In1 = Out - In2, In2 = Out - In1 (intersected).
    ValueRange NewA = ValueRange::sub(Out, B, Wrapped);
    ValueRange NewB = ValueRange::sub(Out, A, Wrapped);
    // Saturation inside sub keeps these sound even near the domain edges.
    A = A.intersectWith(NewA);
    B = B.intersectWith(NewB);
    return;
  }
  case Op::Sub: {
    ValueRange NewA = ValueRange::add(Out, B, Wrapped);
    ValueRange NewB = ValueRange::sub(A, Out, Wrapped);
    A = A.intersectWith(NewA);
    B = B.intersectWith(NewB);
    return;
  }
  case Op::Mul: {
    // Invert only through a nonzero constant multiplier.
    if (B.isConstant() && B.min() != 0 && !Out.isFull()) {
      int64_t C = B.min();
      int64_t Lo = Out.min(), Hi = Out.max();
      if (C < 0) {
        std::swap(Lo, Hi);
        // a = out / c with c negative: bounds swap.
      }
      // Conservative integer division bounds: any a with a*c in Out lies
      // within [ceil(Lo/C'), floor(Hi/C')] for positive C' = |C|.
      int64_t Ca = C < 0 ? -C : C;
      auto floorDiv = [](int64_t X, int64_t D) {
        int64_t Q = X / D;
        if ((X % D != 0) && ((X < 0) != (D < 0)))
          --Q;
        return Q;
      };
      auto ceilDiv = [&](int64_t X, int64_t D) {
        return -floorDiv(-X, D);
      };
      if (C < 0) {
        Lo = -Out.max();
        Hi = -Out.min();
      }
      int64_t NewLo = ceilDiv(Lo, Ca);
      int64_t NewHi = floorDiv(Hi, Ca);
      if (NewLo <= NewHi)
        A = A.intersectWith(ValueRange(NewLo, NewHi));
    }
    return;
  }
  case Op::Mov:
  case Op::Sext:
    // Lossless only when the operand already fits the width.
    if (A.fitsBytes(widthBytes(I.W)))
      A = A.intersectWith(Out);
    return;
  default:
    return;
  }
}

void og::branchConstraints(const Instruction &Br, const Instruction *CmpDef,
                           bool OnTaken, std::vector<EdgeConstraint> &Out) {
  assert(Br.isCondBranch() && "not a conditional branch");

  // Direct test of a data register against zero.
  if (!CmpDef) {
    ValueRange R = ValueRange::full();
    bool Have = true;
    switch (Br.Opc) {
    case Op::Beq:
      if (OnTaken)
        R = ValueRange::constant(0);
      else
        Have = false; // x != 0: not an interval
      break;
    case Op::Bne:
      if (!OnTaken)
        R = ValueRange::constant(0);
      else
        Have = false;
      break;
    case Op::Blt:
      R = OnTaken ? ValueRange(INT64_MIN, -1) : ValueRange(0, INT64_MAX);
      break;
    case Op::Ble:
      R = OnTaken ? ValueRange(INT64_MIN, 0) : ValueRange(1, INT64_MAX);
      break;
    case Op::Bgt:
      R = OnTaken ? ValueRange(1, INT64_MAX) : ValueRange(INT64_MIN, 0);
      break;
    case Op::Bge:
      R = OnTaken ? ValueRange(0, INT64_MAX) : ValueRange(INT64_MIN, -1);
      break;
    default:
      Have = false;
      break;
    }
    if (Have)
      Out.push_back({Br.Ra, R});
    return;
  }

  // Branch on a compare result (0/1): determine whether the compare held
  // on this edge.
  bool CmpTrue;
  switch (Br.Opc) {
  case Op::Bne:
  case Op::Bgt: // on a 0/1 value, >0 means ==1
    CmpTrue = OnTaken;
    break;
  case Op::Beq:
  case Op::Ble: // on a 0/1 value, <=0 means ==0
    CmpTrue = !OnTaken;
    break;
  default:
    return; // blt/bge of a 0/1 value carry no information
  }

  if (!CmpDef->UseImm)
    return; // only constant comparisons are refined (loop bounds etc.)
  // The compare read its operands at its width.
  Width FW = CmpDef->W;
  int64_t C = truncSignExtend(CmpDef->Imm, widthBytes(FW));
  Reg X = CmpDef->Ra;
  if (X == RegZero)
    return;

  switch (CmpDef->Opc) {
  case Op::CmpEq:
    if (CmpTrue)
      Out.push_back({X, ValueRange::constant(C), FW});
    return;
  case Op::CmpLt:
    if (CmpTrue) {
      if (C != INT64_MIN)
        Out.push_back({X, ValueRange(INT64_MIN, C - 1), FW});
    } else {
      Out.push_back({X, ValueRange(C, INT64_MAX), FW});
    }
    return;
  case Op::CmpLe:
    if (CmpTrue) {
      Out.push_back({X, ValueRange(INT64_MIN, C), FW});
    } else {
      if (C != INT64_MAX)
        Out.push_back({X, ValueRange(C + 1, INT64_MAX), FW});
    }
    return;
  case Op::CmpUlt:
    // Unsigned: x <u c with c >= 0 pins x into [0, c-1]; the false side
    // includes huge-unsigned (negative-signed) values, no interval.
    if (CmpTrue && C > 0)
      Out.push_back({X, ValueRange(0, C - 1), FW});
    return;
  case Op::CmpUle:
    if (CmpTrue && C >= 0)
      Out.push_back({X, ValueRange(0, C), FW});
    return;
  default:
    return;
  }
}
