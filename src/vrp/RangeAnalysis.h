//===- vrp/RangeAnalysis.h - Whole-program VRP driver ------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Value Range Propagation driver of paper Section 2. Per function it
/// runs a flow-sensitive forward interval analysis over the CFG with:
///  - branch-edge refinement (Section 2.2.4),
///  - loop-iterator bounding for recognized affine loops instead of
///    widening (Section 2.3),
///  - alternating backward refinement passes through invertible arithmetic
///    (Section 2.2: "propagation alternates between forward and backward
///    traversals ... until a stable state is attained or a limit on the
///    number of traversals is reached").
/// Across functions it iterates argument/return-register summaries over
/// the call graph (Section 2.4). Ranges are never propagated through
/// memory (Section 2: loads are bounded by their opcode only).
///
/// VRS reuses the driver by seeding block-entry constraints: the guard of
/// a specialized region pins the specialized register's range inside the
/// clone (Section 3.4: "propagates the new range to the specialized
/// region").
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRP_RANGEANALYSIS_H
#define OG_VRP_RANGEANALYSIS_H

#include "analysis/CallGraph.h"
#include "opt/AnalysisManager.h"
#include "vrp/Transfer.h"

#include <array>
#include <map>
#include <memory>
#include <vector>

namespace og {

/// Per-function analysis results, indexed by dense instruction id
/// (layout order, same numbering as ReachingDefs).
struct FunctionRanges {
  std::vector<size_t> BlockBase;
  std::vector<ValueRange> Out;   ///< destination range (stores: the range
                                 ///< of the stored value, truncated)
  std::vector<ValueRange> InA;   ///< Ra operand value range
  std::vector<ValueRange> InB;   ///< Rb/imm operand value range
  std::vector<ValueRange> OldRd; ///< previous dest range (cmov input)
  std::vector<uint8_t> MayWrap;  ///< width-W computation may wrap

  size_t idOf(int32_t Block, int32_t Index) const {
    return BlockBase[Block] + static_cast<size_t>(Index);
  }
  size_t numInsts() const { return Out.size(); }
};

/// Whole-program VRP.
class RangeAnalysis {
public:
  struct Options {
    bool Interprocedural = true; ///< propagate arg/return ranges (§2.4)
    bool UseLoopBounds = true;   ///< affine-loop trip counts (§2.3)
    unsigned Alternations = 2;   ///< forward/backward alternations
    unsigned MaxInterRounds = 5; ///< call-graph summary iterations
    unsigned WidenAfter = 3;     ///< block visits before widening
  };

  /// Preferred form: pulls Cfg/Dominators/Loops/ReachingDefs from \p AM's
  /// cache instead of rebuilding them per run. One experiment cell shares
  /// one manager across every VRP/VRS invocation, so a re-run after a
  /// localized mutation only rebuilds the touched functions' analyses.
  explicit RangeAnalysis(AnalysisManager &AM) : RangeAnalysis(AM, Options()) {}
  RangeAnalysis(AnalysisManager &AM, Options Opts);

  /// Convenience for callers without a manager (tests, one-shot dumps):
  /// owns a private AnalysisManager over \p P.
  explicit RangeAnalysis(const Program &P) : RangeAnalysis(P, Options()) {}
  RangeAnalysis(const Program &P, Options Opts);

  /// Pins register \p R to \p Range on the CFG edge \p From -> \p To of
  /// function \p Func. Used by VRS to inject guard-established facts (the
  /// guard branch proves the range on exactly that edge; back edges into
  /// the specialized region are not affected). Call before run().
  void addEdgeConstraint(int32_t Func, int32_t From, int32_t To, Reg R,
                         ValueRange Range);

  /// Runs the analysis to (bounded) fixpoint. Single-shot: the borrowed
  /// analysis views are released when it returns (only the recorded
  /// results stay live), so it must not be called twice.
  void run();

  const FunctionRanges &func(int32_t F) const { return Results[F]; }

  /// Interprocedural summaries (full when not computed).
  ValueRange argRange(int32_t F, unsigned ArgIndex) const;
  ValueRange returnRange(int32_t F) const;

private:
  /// Borrowed analysis views, owned by the AnalysisManager. They are only
  /// guaranteed valid until the next invalidation of their function
  /// through the shared manager, so they are used exclusively between
  /// construction and the end of run() — run() clears them when it
  /// finishes. The accessors that remain usable afterwards (func(),
  /// argRange(), returnRange()) read only RangeAnalysis-owned results,
  /// which is what lets callers keep a finished analysis around while
  /// other passes mutate the program (e.g. fold/DCE consuming the
  /// specializer's re-VRP).
  struct FuncContext {
    const Cfg *G = nullptr;
    const LoopInfo *LI = nullptr;
    const ReachingDefs *RD = nullptr;
  };

  using RegState = std::array<ValueRange, NumRegs>;

  void init();
  void runImpl();
  void analyzeFunction(int32_t F);
  void forwardPass(int32_t F, bool Record);
  void backwardPass(int32_t F);
  RegState entryState(int32_t F) const;
  void transferInst(int32_t F, const Instruction &I, size_t Id,
                    RegState &State, bool Record);
  void applyEdge(int32_t F, int32_t From, int32_t To, RegState &State) const;
  const Instruction *findCmpDef(const BasicBlock &BB) const;

  const Program &P;
  Options Opts;
  std::unique_ptr<AnalysisManager> OwnedAM; ///< convenience-ctor manager
  AnalysisManager *AM;
  std::vector<FuncContext> Ctx;
  std::vector<FunctionRanges> Results;
  /// Backward-pass refinements intersected into forward results.
  std::vector<std::vector<ValueRange>> RefinedOut;
  /// Block entry states of the current function pass.
  std::vector<std::vector<RegState>> EntryStates;
  std::vector<std::vector<uint8_t>> EntryStateValid;

  // Interprocedural summaries (always conservative; tightened per round).
  std::vector<std::array<ValueRange, NumArgRegs>> ArgSummary;
  std::vector<ValueRange> RetSummary;
  std::vector<std::array<ValueRange, NumArgRegs>> NextArgs;
  std::vector<uint8_t> NextArgsSeen;
  std::vector<ValueRange> NextRet;
  std::vector<uint8_t> NextRetSeen;

  struct EdgeKey {
    int32_t Func;
    int32_t From;
    int32_t To;
    bool operator<(const EdgeKey &O) const {
      if (Func != O.Func)
        return Func < O.Func;
      if (From != O.From)
        return From < O.From;
      return To < O.To;
    }
  };
  std::map<EdgeKey, std::vector<EdgeConstraint>> EdgeSeeds;
};

} // namespace og

#endif // OG_VRP_RANGEANALYSIS_H
