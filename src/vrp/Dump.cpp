//===- vrp/Dump.cpp -------------------------------------------------------==//

#include "vrp/Dump.h"

#include "vrp/RangeAnalysis.h"

#include <iomanip>
#include <ostream>

using namespace og;

void og::dumpFunctionRanges(const Program &P, const Function &F,
                            const RangeAnalysis &RA, std::ostream &OS) {
  (void)P;
  const FunctionRanges &FR = RA.func(F.Id);
  OS << "function " << F.Name << ":\n";
  for (const BasicBlock &BB : F.Blocks) {
    OS << " bb" << BB.Id;
    if (!BB.Label.empty())
      OS << " (" << BB.Label << ")";
    OS << ":\n";
    for (size_t II = 0; II < BB.Insts.size(); ++II) {
      const Instruction &I = BB.Insts[II];
      size_t Id = FR.idOf(BB.Id, static_cast<int32_t>(II));
      OS << "   " << std::left << std::setw(30) << I.str() << std::right;
      if (I.info().ReadsRa || I.Opc == Op::Ldi)
        OS << "  inA=" << FR.InA[Id].str();
      if (I.readsRbRegister() || (I.info().ReadsRb && I.UseImm))
        OS << "  inB=" << FR.InB[Id].str();
      if (I.hasDest() || I.isStore())
        OS << "  out=" << FR.Out[Id].str();
      if (FR.MayWrap[Id])
        OS << "  (may wrap)";
      OS << "\n";
    }
  }
}

void og::dumpProgramRanges(const Program &P, const RangeAnalysis &RA,
                           std::ostream &OS) {
  for (const Function &F : P.Funcs) {
    dumpFunctionRanges(P, F, RA, OS);
    OS << "   args:";
    for (unsigned A = 0; A < NumArgRegs; ++A)
      OS << " a" << A << "=" << RA.argRange(F.Id, A).str();
    OS << "\n   ret: v0=" << RA.returnRange(F.Id).str() << "\n\n";
  }
}
