//===- vrp/UsefulWidth.h - Useful-byte demand analysis -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "useful" range propagation of paper Section 2.2.5: a backward
/// demand analysis computing, per instruction, how many low bytes of its
/// result can ever influence program output. Demands originate from:
///  - logical operations with constant masks (AND R1, 0xFF ... only the
///    low byte of R1 is needed),
///  - MSK field extracts,
///  - shift amounts (only 6 bits are read),
///  - store widths.
/// Following the paper, demand is NOT propagated through arithmetic
/// (add/sub/mul) by default "in order to avoid hiding overflows"; the
/// ThroughArithmetic option enables it for the ablation study.
///
/// Safety rule (paper: "the technique must ensure there is no other point
/// in the program where a wider range of the operand is semantically
/// relevant"): a definition's useful width is the MAXIMUM demand over all
/// its reaching uses, and implicit consumers (calls, returns, branches,
/// compares, addresses) demand all 8 bytes.
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRP_USEFULWIDTH_H
#define OG_VRP_USEFULWIDTH_H

#include "analysis/ReachingDefs.h"

#include <vector>

namespace og {

/// Per-function useful-byte analysis.
class UsefulWidth {
public:
  struct Options {
    /// Propagate demand through add/sub/mul (paper default: off).
    bool ThroughArithmetic = false;
    unsigned MaxIterations = 8;
  };

  UsefulWidth(const Function &F, const ReachingDefs &RD)
      : UsefulWidth(F, RD, Options()) {}
  UsefulWidth(const Function &F, const ReachingDefs &RD, Options Opts);

  /// Useful bytes (1..8) of the value defined by instruction \p InstId;
  /// 8 for instructions without a destination.
  unsigned usefulBytes(size_t InstId) const { return Bytes[InstId]; }

  /// True when narrowing \p O to its useful width is demand-safe, i.e. the
  /// low output bytes depend only on equally-low input bytes.
  static bool demandSafe(Op O);

private:
  /// Bytes of the value of operand \p SrcIndex that instruction \p I needs
  /// in order to produce \p OutDemand correct output bytes.
  unsigned operandDemand(const Instruction &I, unsigned SrcIndex,
                         unsigned OutDemand) const;

  const Function &F;
  const ReachingDefs &RD;
  Options Opts;
  std::vector<unsigned> Bytes;
};

} // namespace og

#endif // OG_VRP_USEFULWIDTH_H
