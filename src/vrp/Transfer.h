//===- vrp/Transfer.h - Per-instruction range transfer -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-instruction pieces of VRP (paper Section 2.2): forward output
/// ranges from input ranges, backward input refinement from output ranges
/// (addition/subtraction/moves, Section 2.2.1), and branch-condition edge
/// refinement (Section 2.2.4).
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRP_TRANSFER_H
#define OG_VRP_TRANSFER_H

#include "isa/Instruction.h"
#include "vrp/ValueRange.h"

#include <vector>

namespace og {

/// Forward transfer: range of the destination of \p I given operand ranges.
/// \p A is the Ra operand range (or the immediate for ldi), \p B the
/// Rb/immediate operand range, \p OldRd the previous destination range
/// (cmovs). \p MayWrap is set when the width-W computation may wrap, in
/// which case the result is the conservative width hull and the backward
/// rules must not invert through this instruction.
ValueRange forwardTransfer(const Instruction &I, const ValueRange &A,
                           const ValueRange &B, const ValueRange &OldRd,
                           bool &MayWrap);

/// Backward refinement through exactly-invertible operations
/// (add/sub/mov/sext/mul-by-constant): given that the output of \p I lies
/// in \p Out, tightens \p A / \p B in place. No-op for other opcodes.
/// Must only be called when the forward transfer reported !MayWrap.
void backwardTransfer(const Instruction &I, const ValueRange &Out,
                      ValueRange &A, ValueRange &B);

/// A branch-derived fact: on some CFG edge, register \p R lies in \p Range
/// (paper: "if (X >= 7) places a lower bound on X along the true path").
/// Constraints derived from a narrow compare only describe the low bytes
/// the compare read; they apply to the register's value only when the
/// current range already fits \p FitWidth (always true for Q).
struct EdgeConstraint {
  Reg R = RegZero;
  ValueRange Range;
  Width FitWidth = Width::Q;
};

/// Computes the constraints implied by taking (\p OnTaken = true) or
/// falling through (\p OnTaken = false) the conditional branch \p Br,
/// where \p CmpDef is the compare instruction defining the branch
/// condition register in the same block (nullptr when the branch tests a
/// data register directly). Constraints are appended to \p Out; at most
/// one per register.
void branchConstraints(const Instruction &Br, const Instruction *CmpDef,
                       bool OnTaken, std::vector<EdgeConstraint> &Out);

} // namespace og

#endif // OG_VRP_TRANSFER_H
