//===- vrp/UsefulWidth.cpp ------------------------------------------------==//

#include "vrp/UsefulWidth.h"

#include <algorithm>
#include <cassert>

using namespace og;

namespace {

/// Smallest b with V <= 2^(8b)-1, for V >= 0 (zero-extended byte length).
unsigned bytesUnsigned(int64_t V) {
  assert(V >= 0);
  for (unsigned B = 1; B < 8; ++B)
    if (static_cast<uint64_t>(V) < (uint64_t(1) << (8 * B)))
      return B;
  return 8;
}

/// Low bytes of a value OR'd with constant \p M that still matter: bytes at
/// or above the first all-ones run ending at the top are forced.
unsigned lowUnforcedBytes(int64_t M) {
  uint64_t U = static_cast<uint64_t>(M);
  unsigned K = 8;
  while (K > 0) {
    uint8_t TopByte = static_cast<uint8_t>(U >> (8 * (K - 1)));
    if (TopByte != 0xFF)
      break;
    --K;
  }
  return K == 0 ? 1 : K;
}

} // namespace

bool UsefulWidth::demandSafe(Op O) {
  switch (O) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Bic:
  case Op::Sll:
  case Op::Mov:
  case Op::Sext:
  case Op::Ldi:
  case Op::Msk:
    return true;
  default:
    // Right shifts read high input bytes; compares/cmovs/branches read
    // whole values; memory widths are semantic.
    return false;
  }
}

unsigned UsefulWidth::operandDemand(const Instruction &I, unsigned SrcIndex,
                                    unsigned OutDemand) const {
  const OpInfo &Info = I.info();
  // Identify the role of this source: Ra, Rb, or the cmov old-dest.
  enum class Role { Ra, Rb, OldRd } R;
  {
    unsigned Idx = SrcIndex;
    if (Info.ReadsRa && Idx == 0) {
      R = Role::Ra;
    } else {
      if (Info.ReadsRa)
        --Idx;
      if (I.readsRbRegister() && Idx == 0)
        R = Role::Rb;
      else
        R = Role::OldRd;
    }
  }

  switch (I.Opc) {
  case Op::St:
    return R == Role::Ra ? 8 : widthBytes(I.W); // address vs stored value
  case Op::Ld:
    return 8; // address
  case Op::Beq:
  case Op::Bne:
  case Op::Blt:
  case Op::Ble:
  case Op::Bgt:
  case Op::Bge:
  case Op::Out:
    return 8;
  case Op::CmpEq:
  case Op::CmpLt:
  case Op::CmpLe:
  case Op::CmpUlt:
  case Op::CmpUle:
    return 8; // whole values decide comparisons
  case Op::CmovEq:
  case Op::CmovNe:
  case Op::CmovLt:
  case Op::CmovGe:
    return R == Role::Ra ? 8 : OutDemand; // condition vs moved/kept value
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
    // Paper 2.2.5: no useful propagation through arithmetic by default.
    return Opts.ThroughArithmetic ? OutDemand : 8;
  case Op::And:
    // AND with a nonnegative constant mask zeroes everything above the
    // mask (the paper's flagship example).
    if (I.UseImm && I.Imm >= 0)
      return std::min(OutDemand, bytesUnsigned(I.Imm));
    return OutDemand;
  case Op::Or:
    // OR with a constant whose top bytes are all ones forces them.
    if (I.UseImm)
      return std::min(OutDemand, lowUnforcedBytes(I.Imm));
    return OutDemand;
  case Op::Xor:
  case Op::Bic:
    return OutDemand;
  case Op::Sll:
    // Shift amounts occupy 6 bits (paper 2.2.5's "limited width fields").
    if (R == Role::Rb)
      return 1;
    return OutDemand;
  case Op::Srl:
  case Op::Sra:
    if (R == Role::Rb)
      return 1;
    if (I.UseImm) {
      unsigned NeedBits = 8 * OutDemand + static_cast<unsigned>(I.Imm & 63);
      return std::min(8u, (NeedBits + 7) / 8);
    }
    return 8;
  case Op::Msk: {
    unsigned Field = std::min(OutDemand, widthBytes(I.W));
    return std::min<unsigned>(8, static_cast<unsigned>(I.Imm) + Field);
  }
  case Op::Sext:
  case Op::Mov:
    return std::min(OutDemand, widthBytes(I.W));
  default:
    return 8;
  }
}

UsefulWidth::UsefulWidth(const Function &F, const ReachingDefs &RD,
                         Options Opts)
    : F(F), RD(RD), Opts(Opts) {
  size_t N = RD.numInsts();
  Bytes.assign(N, 1);

  // Registers read implicitly (not via numRegSources): calls read
  // arguments and sp, returns read v0 and callee-saved registers. Any
  // definition of such a register escapes at full width whenever the
  // function contains a call/return at all (conservative).
  bool HasCall = false, HasRet = false;
  for (const BasicBlock &BB : F.Blocks)
    for (const Instruction &I : BB.Insts) {
      HasCall |= I.isCall();
      HasRet |= I.Opc == Op::Ret;
    }
  auto escapesFullWidth = [&](Reg R) {
    if (HasCall && ((R >= RegA0 && R < RegA0 + NumArgRegs) || R == RegSP))
      return true;
    if (HasRet && (R == RegV0 || isCalleeSaved(R)))
      return true;
    // Other caller-visible flows (e.g. values live across calls in
    // callee-saved registers) are covered by the cases above.
    return false;
  };

  // Monotone fixpoint: demands only grow, bounded by 8 each.
  unsigned Guard = 0;
  bool Changed = true;
  while (Changed && Guard++ < Opts.MaxIterations * 8) {
    Changed = false;
    for (size_t Id = N; Id-- > 0;) {
      const Instruction &D = RD.inst(Id);
      if (!D.hasDest() || D.Rd == RegZero || D.isCall())
        continue;
      unsigned Demand = escapesFullWidth(D.Rd) ? 8 : 1;
      for (size_t UId : RD.usesOf(Id)) {
        const Instruction &U = RD.inst(UId);
        unsigned NSrc = U.numRegSources();
        for (unsigned S = 0; S < NSrc; ++S) {
          if (U.regSource(S) != D.Rd)
            continue;
          Demand = std::max(Demand, operandDemand(U, S, Bytes[UId]));
        }
        if (Demand >= 8)
          break;
      }
      if (Demand > Bytes[Id]) {
        Bytes[Id] = Demand;
        Changed = true;
      }
    }
  }
}
