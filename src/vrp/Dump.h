//===- vrp/Dump.h - Analysis result printing ---------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dumps of range-analysis results, in the style of the
/// paper's Figure 1 walkthrough: each instruction with its operand and
/// result ranges. Used by `ogate-opt --print-ranges` and by debugging
/// sessions.
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRP_DUMP_H
#define OG_VRP_DUMP_H

#include <iosfwd>

namespace og {

struct Program;
struct Function;
class RangeAnalysis;

/// Prints every instruction of \p F with its recorded input/output ranges
/// and wrap flags.
void dumpFunctionRanges(const Program &P, const Function &F,
                        const RangeAnalysis &RA, std::ostream &OS);

/// Whole-program variant (all functions, plus interprocedural summaries).
void dumpProgramRanges(const Program &P, const RangeAnalysis &RA,
                       std::ostream &OS);

} // namespace og

#endif // OG_VRP_DUMP_H
