//===- vrp/Narrowing.cpp --------------------------------------------------==//

#include "vrp/Narrowing.h"

#include <algorithm>
#include <cassert>

using namespace og;

namespace {

/// Smallest b with V <= 2^(8b)-1, for V >= 0.
unsigned bytesUnsignedValue(int64_t V) {
  assert(V >= 0);
  for (unsigned B = 1; B < 8; ++B)
    if (static_cast<uint64_t>(V) < (uint64_t(1) << (8 * B)))
      return B;
  return 8;
}

} // namespace

unsigned og::rangeRequiredBytes(const Instruction &I, const ValueRange &InA,
                                const ValueRange &InB, const ValueRange &Out,
                                bool MayWrap) {
  auto maxBytes = [](const ValueRange &X, const ValueRange &Y) {
    return std::max(X.bytes(), Y.bytes());
  };

  switch (I.Opc) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
    // Exact at width w iff inputs and the true (unwrapped) result fit w.
    if (MayWrap)
      return 8;
    return std::max(maxBytes(InA, InB), Out.bytes());
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Bic:
    // Bitwise on width-fitting operands is exact; the result fits too.
    return maxBytes(InA, InB);
  case Op::Sll:
    if (MayWrap)
      return 8;
    // The amount operand reads 6 bits at any width.
    return std::max(InA.bytes(), Out.bytes());
  case Op::Srl:
    // Exact iff the zero-extended narrow operand equals the value.
    if (InA.isNonNegative() && !InA.isFull())
      return std::max(InA.bytes(), Out.bytes());
    return 8;
  case Op::Sra:
    return InA.bytes();
  case Op::CmpEq:
  case Op::CmpLt:
  case Op::CmpLe:
    return maxBytes(InA, InB);
  case Op::CmpUlt:
  case Op::CmpUle:
    // Sign extension preserves unsigned order between two values that both
    // fit the narrow width, so the signed-fit bound works here as well.
    return maxBytes(InA, InB);
  case Op::CmovEq:
  case Op::CmovNe:
  case Op::CmovLt:
  case Op::CmovGe:
    // Condition and moved value must both be exact; the kept-old-value
    // path is untouched at any width.
    return maxBytes(InA, InB);
  case Op::Msk: {
    // Shrinkable when the input has no set bits above offset + m bytes.
    unsigned Cur = widthBytes(I.W);
    if (InA.isNonNegative() && !InA.isFull()) {
      unsigned Above = bytesUnsignedValue(InA.max());
      unsigned Offset = static_cast<unsigned>(I.Imm);
      unsigned Needed = Above > Offset ? Above - Offset : 1;
      return std::min(Cur, std::max(1u, Needed));
    }
    return Cur;
  }
  case Op::Sext:
  case Op::Mov:
    // Lossless shrink when the operand already fits fewer bytes.
    return std::min(widthBytes(I.W), InA.bytes());
  case Op::Ldi:
    return significantBytes(I.Imm);
  case Op::Ld:
  case Op::St:
    // Memory widths are semantic; VRP uses them, it does not change them.
    return widthBytes(I.W);
  default:
    return 8;
  }
}

unsigned og::requiredBytes(const Instruction &I, const ValueRange &InA,
                           const ValueRange &InB, const ValueRange &Out,
                           bool MayWrap, unsigned UsefulBytes) {
  unsigned RangePath = rangeRequiredBytes(I, InA, InB, Out, MayWrap);
  unsigned UsefulPath = UsefulWidth::demandSafe(I.Opc) ? UsefulBytes : 8;
  if (I.Opc == Op::Ld || I.Opc == Op::St)
    UsefulPath = 8; // memory widths stay untouched
  return std::max(1u, std::min(RangePath, UsefulPath));
}

NarrowingReport og::narrowProgram(Program &P, AnalysisManager &AM,
                                  const NarrowingOptions &Opts) {
  RangeAnalysis RA(AM, Opts.Range);
  for (const EdgeSeed &S : Opts.Seeds)
    RA.addEdgeConstraint(S.Func, S.From, S.To, S.R, ValueRange(S.Min, S.Max));
  RA.run();

  NarrowingReport Report;
  for (Function &F : P.Funcs) {
    const UsefulWidth &UW = AM.usefulWidth(F.Id, Opts.UsefulThroughArith);
    const FunctionRanges &FR = RA.func(F.Id);
    bool Changed = false;

    for (BasicBlock &BB : F.Blocks) {
      for (size_t II = 0; II < BB.Insts.size(); ++II) {
        Instruction &I = BB.Insts[II];
        ++Report.NumInsts;
        if (!I.info().HasWidth) {
          continue;
        }
        ++Report.NumWidthBearing;
        size_t Id = FR.idOf(BB.Id, static_cast<int32_t>(II));
        unsigned Useful =
            Opts.UseUsefulWidths ? UW.usefulBytes(Id) : 8;
        unsigned Bytes = requiredBytes(I, FR.InA[Id], FR.InB[Id],
                                       FR.Out[Id], FR.MayWrap[Id], Useful);
        Width Wanted = widthForBytes(Bytes);
        Width Encodable =
            encodableWidths(I.Opc, Opts.Policy).narrowestAtLeast(Wanted);
        // Never widen: the current width is semantic for already-narrow
        // code.
        Width Final = std::min(I.W, Encodable);
        if (Final != I.W) {
          ++Report.NumNarrowed;
          Changed = true;
        }
        I.W = Final;
        ++Report.StaticWidth[static_cast<unsigned>(I.W)];
      }
    }
    if (Changed) {
      F.bumpEpoch();
      AM.invalidate(F.Id, PreservedAnalyses::widthRewrite());
    }
  }
  return Report;
}

NarrowingReport og::narrowProgram(Program &P, const NarrowingOptions &Opts) {
  AnalysisManager AM(P);
  return narrowProgram(P, AM, Opts);
}
