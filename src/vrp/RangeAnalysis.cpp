//===- vrp/RangeAnalysis.cpp ----------------------------------------------==//

#include "vrp/RangeAnalysis.h"

#include <cassert>

using namespace og;

RangeAnalysis::RangeAnalysis(AnalysisManager &AM, Options Opts)
    : P(AM.program()), Opts(Opts), AM(&AM) {
  init();
}

RangeAnalysis::RangeAnalysis(const Program &P, Options Opts)
    : P(P), Opts(Opts), OwnedAM(new AnalysisManager(P)), AM(OwnedAM.get()) {
  init();
}

void RangeAnalysis::init() {
  size_t N = P.Funcs.size();
  Ctx.resize(N);
  Results.resize(N);
  RefinedOut.resize(N);
  EntryStates.resize(N);
  EntryStateValid.resize(N);
  ArgSummary.resize(N);
  RetSummary.assign(N, ValueRange::full());
  NextArgs.resize(N);
  NextArgsSeen.assign(N, 0);
  NextRet.assign(N, ValueRange::full());
  NextRetSeen.assign(N, 0);
  for (auto &A : ArgSummary)
    A.fill(ValueRange::full());

  for (const Function &F : P.Funcs) {
    FuncContext &C = Ctx[F.Id];
    C.G = &AM->cfg(F.Id);
    C.LI = &AM->loops(F.Id);
    C.RD = &AM->reachingDefs(F.Id);

    FunctionRanges &R = Results[F.Id];
    R.BlockBase.resize(F.Blocks.size());
    size_t Count = 0;
    for (size_t BB = 0; BB < F.Blocks.size(); ++BB) {
      R.BlockBase[BB] = Count;
      Count += F.Blocks[BB].Insts.size();
    }
    R.Out.assign(Count, ValueRange::full());
    R.InA.assign(Count, ValueRange::full());
    R.InB.assign(Count, ValueRange::full());
    R.OldRd.assign(Count, ValueRange::full());
    R.MayWrap.assign(Count, 1);
    RefinedOut[F.Id].assign(Count, ValueRange::full());
  }
}

void RangeAnalysis::addEdgeConstraint(int32_t Func, int32_t From, int32_t To,
                                      Reg R, ValueRange Range) {
  EdgeSeeds[{Func, From, To}].push_back({R, Range, Width::Q});
}

ValueRange RangeAnalysis::argRange(int32_t F, unsigned ArgIndex) const {
  assert(ArgIndex < NumArgRegs && "arg index out of range");
  return ArgSummary[F][ArgIndex];
}

ValueRange RangeAnalysis::returnRange(int32_t F) const {
  return RetSummary[F];
}

const Instruction *RangeAnalysis::findCmpDef(const BasicBlock &BB) const {
  const Instruction *Term = BB.terminator();
  if (!Term || !Term->isCondBranch() || Term->Ra == RegZero)
    return nullptr;
  // Nearest in-block definition of the branch condition register; only a
  // compare yields refinement.
  for (size_t II = BB.Insts.size() - 1; II-- > 0;) {
    const Instruction &I = BB.Insts[II];
    if (!I.hasDest() || I.Rd != Term->Ra)
      continue;
    return isCompare(I.Opc) ? &I : nullptr;
  }
  return nullptr;
}

RangeAnalysis::RegState RangeAnalysis::entryState(int32_t F) const {
  RegState S;
  S.fill(ValueRange::full());
  S[RegZero] = ValueRange::constant(0);
  if (Opts.Interprocedural)
    for (unsigned A = 0; A < NumArgRegs; ++A)
      S[RegA0 + A] = ArgSummary[F][A];
  return S;
}

void RangeAnalysis::applyEdge(int32_t F, int32_t From, int32_t To,
                              RegState &State) const {
  // VRS guard-edge seeds.
  auto SeedIt = EdgeSeeds.find({F, From, To});
  if (SeedIt != EdgeSeeds.end())
    for (const EdgeConstraint &C : SeedIt->second)
      State[C.R] = State[C.R].intersectWith(C.Range);

  const BasicBlock &Pred = P.Funcs[F].Blocks[From];
  const Instruction *Term = Pred.terminator();
  if (!Term || !Term->isCondBranch())
    return;
  bool OnTaken = Term->Target == To;
  bool OnFall = Pred.FallthroughSucc == To;
  // A branch whose two targets coincide provides no information.
  if (OnTaken == OnFall)
    return;
  std::vector<EdgeConstraint> Cs;
  branchConstraints(*Term, findCmpDef(Pred), OnTaken, Cs);
  for (const EdgeConstraint &C : Cs) {
    // Narrow-compare facts only bind values that fit the compare width.
    if (!State[C.R].fitsBytes(widthBytes(C.FitWidth)))
      continue;
    State[C.R] = State[C.R].intersectWith(C.Range);
  }
}

void RangeAnalysis::transferInst(int32_t F, const Instruction &I, size_t Id,
                                 RegState &State, bool Record) {
  FunctionRanges &R = Results[F];
  const OpInfo &Info = I.info();

  ValueRange A = Info.ReadsRa ? State[I.Ra] : ValueRange::full();
  if (I.Opc == Op::Ldi)
    A = ValueRange::constant(I.Imm);
  ValueRange B = I.UseImm ? ValueRange::constant(I.Imm)
                          : (Info.ReadsRb ? State[I.Rb]
                                          : ValueRange::full());
  ValueRange Old = Info.RdIsInput ? State[I.Rd] : ValueRange::full();

  if (Record) {
    R.InA[Id] = A;
    R.InB[Id] = B;
    R.OldRd[Id] = Old;
  }

  if (I.isCall()) {
    // Record argument contributions for the callee summary.
    if (Opts.Interprocedural) {
      for (unsigned AI = 0; AI < NumArgRegs; ++AI) {
        ValueRange V = State[RegA0 + AI];
        if (NextArgsSeen[I.Callee])
          NextArgs[I.Callee][AI] = NextArgs[I.Callee][AI].unionWith(V);
        else
          NextArgs[I.Callee][AI] = V;
      }
      NextArgsSeen[I.Callee] = 1;
    }
    // The callee may clobber every caller-saved register; the return value
    // takes the callee's summary.
    for (Reg RR = 0; RR < NumRegs; ++RR)
      if (isCallerSaved(RR))
        State[RR] = ValueRange::full();
    State[RegV0] =
        Opts.Interprocedural ? RetSummary[I.Callee] : ValueRange::full();
    return;
  }
  if (I.Opc == Op::Ret) {
    if (Opts.Interprocedural) {
      if (NextRetSeen[F])
        NextRet[F] = NextRet[F].unionWith(State[RegV0]);
      else
        NextRet[F] = State[RegV0];
      NextRetSeen[F] = 1;
    }
    return;
  }
  if (I.Opc == Op::St) {
    if (Record) {
      bool W = false;
      R.Out[Id] = forwardTransfer(I, A, B, Old, W);
      // Store "output" = the truncated stored value; used for statistics
      // only. Record the stored operand truncated to the store width.
      ValueRange Stored = State[I.Rb];
      unsigned Bytes = widthBytes(I.W);
      if (Stored.fitsBytes(Bytes))
        R.Out[Id] = Stored;
      else
        R.Out[Id] = ValueRange::ofWidth(I.W);
      R.MayWrap[Id] = 0;
    }
    return;
  }
  if (!Info.HasDest)
    return;

  bool MayWrap = false;
  ValueRange OutR = forwardTransfer(I, A, B, Old, MayWrap);
  // Backward-pass facts: values outside RefinedOut never occur at runtime.
  OutR = OutR.intersectWith(RefinedOut[F][Id]);
  State[I.Rd] = I.Rd == RegZero ? ValueRange::constant(0) : OutR;
  if (Record) {
    R.Out[Id] = OutR;
    R.MayWrap[Id] = MayWrap;
  }
}

void RangeAnalysis::forwardPass(int32_t F, bool Record) {
  const Function &Fn = P.Funcs[F];
  const Cfg &G = *Ctx[F].G;
  const LoopInfo &LI = *Ctx[F].LI;
  FunctionRanges &R = Results[F];

  auto &Entry = EntryStates[F];
  auto &Valid = EntryStateValid[F];
  Entry.assign(Fn.Blocks.size(), RegState());
  Valid.assign(Fn.Blocks.size(), 0);
  std::vector<RegState> Exit(Fn.Blocks.size());
  std::vector<uint8_t> ExitValid(Fn.Blocks.size(), 0);
  std::vector<unsigned> Visits(Fn.Blocks.size(), 0);

  // Iterate RPO sweeps to a bounded fixpoint.
  unsigned MaxSweeps = Opts.WidenAfter + 4;
  for (unsigned Sweep = 0; Sweep < MaxSweeps; ++Sweep) {
    bool Changed = false;
    for (int32_t BB : G.rpo()) {
      // Meet over predecessors with edge refinement.
      RegState In;
      bool HaveIn = false;
      if (BB == Fn.EntryBlock) {
        In = entryState(F);
        HaveIn = true;
      }
      for (int32_t Pr : G.predecessors(BB)) {
        if (!ExitValid[Pr])
          continue;
        RegState EdgeState = Exit[Pr];
        applyEdge(F, Pr, BB, EdgeState);
        if (!HaveIn) {
          In = EdgeState;
          HaveIn = true;
        } else {
          for (unsigned RR = 0; RR < NumRegs; ++RR)
            In[RR] = In[RR].unionWith(EdgeState[RR]);
        }
      }
      if (!HaveIn)
        continue; // nothing reaches this block yet

      // Sound per-block facts re-applied after any widening: affine-loop
      // iterator pins (§2.3).
      auto applyFacts = [&](RegState &S) {
        if (Opts.UseLoopBounds) {
          const Loop *L = LI.loopWithHeader(BB);
          if (L && L->Iterator) {
            const AffineIterator &It = *L->Iterator;
            // The init value is the meet over non-latch predecessors.
            ValueRange Init = ValueRange::full();
            bool HaveInit = false;
            for (int32_t Pr : G.predecessors(BB)) {
              bool IsLatch = false;
              for (int32_t La : L->Latches)
                IsLatch |= La == Pr;
              if (IsLatch || !ExitValid[Pr])
                continue;
              RegState EdgeState = Exit[Pr];
              applyEdge(F, Pr, BB, EdgeState);
              Init = HaveInit ? Init.unionWith(EdgeState[It.X])
                              : EdgeState[It.X];
              HaveInit = true;
            }
            if (BB == Fn.EntryBlock)
              HaveInit = false; // entry loops have an implicit full init
            IteratorBounds Bounds;
            if (HaveInit && Init.isConstant() &&
                computeIteratorBounds(It, Init.min(), Bounds)) {
              // Intersect: branch-refined back edges may already be
              // tighter than the trip-count hull.
              S[It.X] = S[It.X].intersectWith(
                  ValueRange(Bounds.HeaderMin, Bounds.HeaderMax));
            }
          }
        }
        S[RegZero] = ValueRange::constant(0);
      };

      applyFacts(In);

      if (Valid[BB] && In == Entry[BB] && ExitValid[BB])
        continue; // stable

      // Classic widening after several visits: keep the previous value
      // when the new one only shrank (pins can tighten a meet after a
      // widen, which must not count as change), jump to full on growth.
      // Sound facts are re-applied afterwards.
      if (Visits[BB] >= Opts.WidenAfter && Valid[BB]) {
        for (unsigned RR = 0; RR < NumRegs; ++RR) {
          if (In[RR] == Entry[BB][RR])
            continue;
          if (Entry[BB][RR].contains(In[RR]))
            In[RR] = Entry[BB][RR]; // shrink: stay monotone
          else
            In[RR] = ValueRange::full();
        }
        applyFacts(In);
      }
      ++Visits[BB];

      Entry[BB] = In;
      Valid[BB] = 1;

      RegState S = In;
      const BasicBlock &Block = Fn.Blocks[BB];
      for (size_t II = 0; II < Block.Insts.size(); ++II)
        transferInst(F, Block.Insts[II], R.idOf(BB, II), S, false);
      if (!ExitValid[BB] || !(S == Exit[BB])) {
        Exit[BB] = S;
        ExitValid[BB] = 1;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // Descending ("narrowing") sweeps: recompute each block once per sweep
  // from the now-stable exits, without widening. This undoes transient
  // over-widening that leaked downstream during the ascending phase; each
  // recomputation only uses sound inputs, so the result stays sound.
  for (unsigned Sweep = 0; Sweep < 2; ++Sweep) {
    for (int32_t BB : G.rpo()) {
      RegState In;
      bool HaveIn = false;
      if (BB == Fn.EntryBlock) {
        In = entryState(F);
        HaveIn = true;
      }
      for (int32_t Pr : G.predecessors(BB)) {
        if (!ExitValid[Pr])
          continue;
        RegState EdgeState = Exit[Pr];
        applyEdge(F, Pr, BB, EdgeState);
        if (!HaveIn) {
          In = EdgeState;
          HaveIn = true;
        } else {
          for (unsigned RR = 0; RR < NumRegs; ++RR)
            In[RR] = In[RR].unionWith(EdgeState[RR]);
        }
      }
      if (!HaveIn)
        continue;
      // Re-apply block facts (loop pins) exactly as the ascending phase
      // did, minus widening.
      {
        if (Opts.UseLoopBounds) {
          const Loop *L = LI.loopWithHeader(BB);
          if (L && L->Iterator) {
            const AffineIterator &It = *L->Iterator;
            ValueRange Init = ValueRange::full();
            bool HaveInit = false;
            for (int32_t Pr : G.predecessors(BB)) {
              bool IsLatch = false;
              for (int32_t La : L->Latches)
                IsLatch |= La == Pr;
              if (IsLatch || !ExitValid[Pr])
                continue;
              RegState EdgeState = Exit[Pr];
              applyEdge(F, Pr, BB, EdgeState);
              Init = HaveInit ? Init.unionWith(EdgeState[It.X])
                              : EdgeState[It.X];
              HaveInit = true;
            }
            if (BB == Fn.EntryBlock)
              HaveInit = false;
            IteratorBounds Bounds;
            if (HaveInit && Init.isConstant() &&
                computeIteratorBounds(It, Init.min(), Bounds))
              In[It.X] = In[It.X].intersectWith(
                  ValueRange(Bounds.HeaderMin, Bounds.HeaderMax));
          }
        }
        In[RegZero] = ValueRange::constant(0);
      }
      Entry[BB] = In;
      Valid[BB] = 1;
      RegState S = In;
      const BasicBlock &Block = Fn.Blocks[BB];
      for (size_t II = 0; II < Block.Insts.size(); ++II)
        transferInst(F, Block.Insts[II], R.idOf(BB, II), S, false);
      Exit[BB] = S;
      ExitValid[BB] = 1;
    }
  }

  if (!Record)
    return;
  // Recording pass over the stable entry states.
  for (int32_t BB : G.rpo()) {
    if (!Valid[BB])
      continue;
    RegState S = Entry[BB];
    const BasicBlock &Block = Fn.Blocks[BB];
    for (size_t II = 0; II < Block.Insts.size(); ++II)
      transferInst(F, Block.Insts[II], R.idOf(BB, II), S, true);
  }
}

void RangeAnalysis::backwardPass(int32_t F) {
  const Function &Fn = P.Funcs[F];
  const ReachingDefs &RD = *Ctx[F].RD;
  FunctionRanges &R = Results[F];

  // Registers whose values may escape through implicit reads (calls read
  // a0..a5/sp, returns read v0 and callee-saved): never refined backwards.
  auto escapes = [](Reg RR) {
    return RR == RegV0 || (RR >= RegA0 && RR < RegA0 + NumArgRegs) ||
           isCalleeSaved(RR) || RR == RegRA;
  };

  // Reverse layout order approximates a bottom-up dependence walk; the
  // outer alternation loop supplies the fixpoint iterations.
  for (size_t Id = R.numInsts(); Id-- > 0;) {
    InstRef Ref = RD.instRef(Id);
    const Instruction &D = Fn.Blocks[Ref.Block].Insts[Ref.Index];
    if (!D.hasDest() || D.Rd == RegZero || D.isCall())
      continue;
    if (escapes(D.Rd))
      continue;
    const std::vector<size_t> &Uses = RD.usesOf(Id);
    if (Uses.empty())
      continue;

    // Demand = union over uses of the range the use permits for this
    // operand (paper 2.2.1: apply to all dependent instructions, choose
    // the min/max).
    bool HaveDemand = false;
    ValueRange Demand = ValueRange::full();
    for (size_t UId : Uses) {
      InstRef URef = RD.instRef(UId);
      const Instruction &U = Fn.Blocks[URef.Block].Insts[URef.Index];
      ValueRange Contribution = ValueRange::full();
      // Invertible consumers refine; everything else contributes full.
      if (!R.MayWrap[UId] &&
          (U.Opc == Op::Add || U.Opc == Op::Sub || U.Opc == Op::Mul ||
           U.Opc == Op::Mov || U.Opc == Op::Sext)) {
        ValueRange UA = R.InA[UId];
        ValueRange UB = R.InB[UId];
        ValueRange UOut = R.Out[UId].intersectWith(RefinedOut[F][UId]);
        backwardTransfer(U, UOut, UA, UB);
        // The refined operand slot(s) matching our register contribute.
        bool Matched = false;
        if (U.info().ReadsRa && U.Ra == D.Rd) {
          Contribution = UA;
          Matched = true;
        }
        if (U.info().ReadsRb && !U.UseImm && U.Rb == D.Rd) {
          Contribution = Matched ? Contribution.unionWith(UB) : UB;
          Matched = true;
        }
        if (!Matched)
          Contribution = ValueRange::full();
      }
      Demand = HaveDemand ? Demand.unionWith(Contribution) : Contribution;
      HaveDemand = true;
    }
    if (!HaveDemand)
      continue;
    ValueRange New = RefinedOut[F][Id].intersectWith(Demand);
    RefinedOut[F][Id] = New;
  }
}

void RangeAnalysis::analyzeFunction(int32_t F) {
  forwardPass(F, /*Record=*/true);
  for (unsigned Alt = 0; Alt < Opts.Alternations; ++Alt) {
    backwardPass(F);
    forwardPass(F, /*Record=*/true);
  }
}

void RangeAnalysis::runImpl() {
  const CallGraph CG(P);
  unsigned Rounds = Opts.Interprocedural ? Opts.MaxInterRounds : 1;
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    // Reset per-round contributions.
    for (auto &A : NextArgs)
      A.fill(ValueRange::full());
    NextArgsSeen.assign(P.Funcs.size(), 0);
    NextRet.assign(P.Funcs.size(), ValueRange::full());
    NextRetSeen.assign(P.Funcs.size(), 0);

    for (int32_t F : CG.bottomUpOrder())
      analyzeFunction(F);

    if (!Opts.Interprocedural)
      return;

    // Install new summaries; the entry function keeps full arguments.
    bool ChangedSummaries = false;
    for (const Function &Fn : P.Funcs) {
      std::array<ValueRange, NumArgRegs> NewArgs;
      NewArgs.fill(ValueRange::full());
      if (Fn.Id != P.EntryFunc && NextArgsSeen[Fn.Id])
        NewArgs = NextArgs[Fn.Id];
      ValueRange NewRet =
          NextRetSeen[Fn.Id] ? NextRet[Fn.Id] : ValueRange::full();
      if (!(NewArgs == ArgSummary[Fn.Id]) || NewRet != RetSummary[Fn.Id])
        ChangedSummaries = true;
      ArgSummary[Fn.Id] = NewArgs;
      RetSummary[Fn.Id] = NewRet;
    }
    if (!ChangedSummaries && Round > 0)
      return;
  }
  // One final pass with the settled summaries so recorded ranges match.
  for (int32_t F : CG.bottomUpOrder())
    analyzeFunction(F);
}

void RangeAnalysis::run() {
  runImpl();
  // Drop the borrowed views: a later pass invalidating the shared
  // manager must not leave this object holding dangling analysis
  // pointers. Anything still reachable (func()/argRange()/returnRange())
  // reads RangeAnalysis-owned storage; an accidental re-run() faults on
  // the nulls instead of silently using freed memory.
  for (FuncContext &C : Ctx)
    C = FuncContext();
}
