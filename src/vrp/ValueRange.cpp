//===- vrp/ValueRange.cpp -------------------------------------------------==//

#include "vrp/ValueRange.h"

#include <cstdio>

using namespace og;

namespace {

/// Clamps a 128-bit exact interval into the int64 domain; sets Wrapped and
/// degrades to full when it does not fit (wrap-around can then produce any
/// bit pattern in the worst case).
ValueRange clamp128(__int128 Lo, __int128 Hi, bool &Wrapped) {
  if (Lo < INT64_MIN || Hi > INT64_MAX) {
    Wrapped = true;
    return ValueRange::full();
  }
  return ValueRange(static_cast<int64_t>(Lo), static_cast<int64_t>(Hi));
}

/// Smallest power-of-two-minus-one covering \p V (V >= 0): the tightest
/// "all bits below k" bound used for or/xor of nonnegative ranges.
int64_t bitCeilMask(int64_t V) {
  assert(V >= 0);
  uint64_t U = static_cast<uint64_t>(V);
  U |= U >> 1;
  U |= U >> 2;
  U |= U >> 4;
  U |= U >> 8;
  U |= U >> 16;
  U |= U >> 32;
  return static_cast<int64_t>(U);
}

} // namespace

ValueRange ValueRange::add(const ValueRange &A, const ValueRange &B,
                           bool &Wrapped) {
  return clamp128(static_cast<__int128>(A.Min) + B.Min,
                  static_cast<__int128>(A.Max) + B.Max, Wrapped);
}

ValueRange ValueRange::sub(const ValueRange &A, const ValueRange &B,
                           bool &Wrapped) {
  return clamp128(static_cast<__int128>(A.Min) - B.Max,
                  static_cast<__int128>(A.Max) - B.Min, Wrapped);
}

ValueRange ValueRange::mul(const ValueRange &A, const ValueRange &B,
                           bool &Wrapped) {
  // Full operands would overflow the corner products; bail out directly.
  if (A.isFull() || B.isFull()) {
    Wrapped = true;
    return full();
  }
  __int128 C[4] = {static_cast<__int128>(A.Min) * B.Min,
                   static_cast<__int128>(A.Min) * B.Max,
                   static_cast<__int128>(A.Max) * B.Min,
                   static_cast<__int128>(A.Max) * B.Max};
  __int128 Lo = C[0], Hi = C[0];
  for (int I = 1; I < 4; ++I) {
    Lo = std::min(Lo, C[I]);
    Hi = std::max(Hi, C[I]);
  }
  return clamp128(Lo, Hi, Wrapped);
}

ValueRange ValueRange::bitAnd(const ValueRange &A, const ValueRange &B) {
  if (A.isConstant() && B.isConstant())
    return constant(A.Min & B.Min);
  // Clearing bits of a nonnegative value can only shrink it toward zero.
  if (A.isNonNegative() && B.isNonNegative())
    return ValueRange(0, std::min(A.Max, B.Max));
  if (A.isNonNegative())
    return ValueRange(0, A.Max);
  if (B.isNonNegative())
    return ValueRange(0, B.Max);
  return full();
}

ValueRange ValueRange::bitOr(const ValueRange &A, const ValueRange &B) {
  if (A.isConstant() && B.isConstant())
    return constant(A.Min | B.Min);
  if (A.isNonNegative() && B.isNonNegative()) {
    // Result keeps all set bits and cannot exceed the bit-ceiling of the
    // larger operand.
    int64_t Hi = bitCeilMask(std::max(A.Max, B.Max));
    return ValueRange(std::max(A.Min, B.Min), Hi);
  }
  if (A.Max < 0 && B.Max < 0)
    return ValueRange(std::max(A.Min, B.Min), -1);
  return full();
}

ValueRange ValueRange::bitXor(const ValueRange &A, const ValueRange &B) {
  if (A.isConstant() && B.isConstant())
    return constant(A.Min ^ B.Min);
  if (A.isNonNegative() && B.isNonNegative())
    return ValueRange(0, bitCeilMask(std::max(A.Max, B.Max)));
  return full();
}

ValueRange ValueRange::bitClear(const ValueRange &A, const ValueRange &B) {
  if (A.isConstant() && B.isConstant())
    return constant(A.Min & ~B.Min);
  if (A.isNonNegative())
    return ValueRange(0, A.Max);
  return full();
}

ValueRange ValueRange::shiftLeft(const ValueRange &A, const ValueRange &Amt,
                                 bool &Wrapped) {
  if (Amt.isConstant() && Amt.Min >= 0 && Amt.Min <= 62) {
    bool W2 = false;
    ValueRange Factor = constant(int64_t(1) << Amt.Min);
    ValueRange R = mul(A, Factor, W2);
    Wrapped |= W2;
    return R;
  }
  Wrapped = true;
  return full();
}

ValueRange ValueRange::shiftRightLogical(const ValueRange &A,
                                         const ValueRange &Amt) {
  if (!A.isNonNegative()) {
    // A negative input exposes huge unsigned values; only the "always
    // nonnegative result for amt > 0" bound would remain, and amt may be 0.
    return full();
  }
  if (Amt.isConstant() && Amt.Min >= 0 && Amt.Min <= 63)
    return ValueRange(A.Min >> Amt.Min, A.Max >> Amt.Min);
  return ValueRange(0, A.Max);
}

ValueRange ValueRange::shiftRightArith(const ValueRange &A,
                                       const ValueRange &Amt) {
  if (Amt.isConstant() && Amt.Min >= 0 && Amt.Min <= 63)
    return ValueRange(A.Min >> Amt.Min, A.Max >> Amt.Min);
  // Arbitrary amounts shrink magnitude toward 0 / -1; the hull always stays
  // within [min(A.Min, -1|0), max(A.Max, 0)].
  int64_t Lo = std::min<int64_t>(A.Min, A.Min < 0 ? -1 : 0);
  int64_t Hi = std::max<int64_t>(A.Max, 0);
  return ValueRange(Lo, Hi);
}

std::string ValueRange::str() const {
  if (isFull())
    return "full";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%lld..%lld",
                static_cast<long long>(Min), static_cast<long long>(Max));
  return Buf;
}
