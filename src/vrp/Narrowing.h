//===- vrp/Narrowing.h - Opcode width assignment -----------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The final step of VRP: "opcodes are assigned using the minimum required
/// width". For each instruction the pass combines
///  - the range-based width (exact-semantics narrowing: every operand range
///    and the result range fit, and the computation cannot wrap), and
///  - the useful-based width (demand-safe narrowing: consumers only ever
///    read that many low bytes),
/// takes the minimum, and picks the narrowest encodable opcode under the
/// chosen IsaPolicy (paper Section 4.3 discusses the required opcode
/// extensions; BaseAlpha models the unextended ISA for the ablation).
///
/// Loads, stores and other semantics-bearing widths are never changed; no
/// width is ever increased (re-narrowing already-narrow code can only
/// shrink further).
///
//===----------------------------------------------------------------------===//

#ifndef OG_VRP_NARROWING_H
#define OG_VRP_NARROWING_H

#include "support/Hash.h"
#include "vrp/RangeAnalysis.h"
#include "vrp/UsefulWidth.h"

namespace og {

/// A guard-established fact injected into the analysis (used by VRS for
/// specialized regions): on edge From -> To of function Func, register R
/// lies in [Min, Max].
struct EdgeSeed {
  int32_t Func;
  int32_t From;
  int32_t To;
  Reg R;
  int64_t Min;
  int64_t Max;
};

/// Knobs of the narrowing pipeline.
struct NarrowingOptions {
  IsaPolicy Policy = IsaPolicy::Extended;
  /// false = "conventional VRP" (ranges only); true = the paper's proposed
  /// VRP with useful-range propagation (Figure 2 compares the two).
  bool UseUsefulWidths = true;
  /// Ablation: propagate useful demand through arithmetic (off per §2.2.5).
  bool UsefulThroughArith = false;
  RangeAnalysis::Options Range;
  std::vector<EdgeSeed> Seeds;
};

/// Folds every NarrowingOptions field (including the nested
/// RangeAnalysis::Options and the Seeds list) into \p H, in declaration
/// order. Content keys (service/CellKey.h) depend on this; a new field
/// added above MUST be folded here too.
inline void hashNarrowingOptions(Fnv1a &H, const NarrowingOptions &O) {
  H.u64(static_cast<uint64_t>(O.Policy));
  H.u64(O.UseUsefulWidths ? 1 : 0);
  H.u64(O.UsefulThroughArith ? 1 : 0);
  H.u64(O.Range.Interprocedural ? 1 : 0);
  H.u64(O.Range.UseLoopBounds ? 1 : 0);
  H.u64(O.Range.Alternations);
  H.u64(O.Range.MaxInterRounds);
  H.u64(O.Range.WidenAfter);
  H.u64(O.Seeds.size());
  for (const EdgeSeed &S : O.Seeds) {
    H.u64(static_cast<uint64_t>(S.Func));
    H.u64(static_cast<uint64_t>(S.From));
    H.u64(static_cast<uint64_t>(S.To));
    H.u64(static_cast<uint64_t>(S.R));
    H.u64(static_cast<uint64_t>(S.Min));
    H.u64(static_cast<uint64_t>(S.Max));
  }
}

/// Static width distribution and a few counters.
struct NarrowingReport {
  uint64_t StaticWidth[4] = {}; ///< instructions per final width
  uint64_t NumWidthBearing = 0;
  uint64_t NumNarrowed = 0; ///< instructions whose width shrank
  uint64_t NumInsts = 0;
};

/// Width required by the range-based (exact-semantics) rule for an
/// instruction with the given analysis facts; 8 when no narrowing is
/// justified. Exposed separately so VRS can re-evaluate it under a
/// hypothetical input range.
unsigned rangeRequiredBytes(const Instruction &I, const ValueRange &InA,
                            const ValueRange &InB, const ValueRange &Out,
                            bool MayWrap);

/// Final required bytes combining both rules. \p UsefulBytes is the demand
/// on the instruction's output (pass 8 to disable the useful rule).
unsigned requiredBytes(const Instruction &I, const ValueRange &InA,
                       const ValueRange &InB, const ValueRange &Out,
                       bool MayWrap, unsigned UsefulBytes);

/// Runs RangeAnalysis (+ UsefulWidth) over \p P and re-encodes every
/// width-bearing instruction with its minimum encodable width. Analyses
/// come from \p AM; functions whose widths actually changed get their
/// epoch bumped with a width-rewrite preservation declaration
/// (Cfg/Dominators/Loops/Liveness/ReachingDefs survive, UsefulWidth is
/// dropped), so a re-narrow over an untouched function reuses everything.
NarrowingReport narrowProgram(Program &P, AnalysisManager &AM,
                              const NarrowingOptions &Opts = {});

/// Convenience without a shared manager (tests, examples): runs over a
/// private AnalysisManager.
NarrowingReport narrowProgram(Program &P,
                              const NarrowingOptions &Opts = {});

} // namespace og

#endif // OG_VRP_NARROWING_H
