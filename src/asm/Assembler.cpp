//===- asm/Assembler.cpp --------------------------------------------------==//

#include "asm/Assembler.h"

#include "program/Verifier.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <vector>

using namespace og;

namespace {

/// One tokenized, label-stripped source line.
struct Line {
  unsigned Number = 0;
  std::vector<std::string> Tokens; ///< mnemonic/directive + operands
};

/// Parser state for the whole translation unit.
class Parser {
public:
  explicit Parser(const std::string &Source) : Source(Source) {}

  Expected<Program> run();

private:
  // --- Diagnostics.
  template <typename T> Expected<T> err(unsigned LineNo, std::string Msg) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "line %u: ", LineNo);
    return makeError<T>(Buf + std::move(Msg));
  }

  // --- Per-function assembly state.
  struct PendingBranch {
    int32_t Block;
    size_t Inst;
    std::string Taken;
    std::string Fall; ///< empty = next block in text order
    unsigned LineNo;
  };
  struct PendingCall {
    int32_t FuncId;
    int32_t Block;
    size_t Inst;
    std::string Callee;
    unsigned LineNo;
  };
  struct PendingImm {
    int32_t FuncId;
    int32_t Block;
    size_t Inst;
    std::string DataLabel;
    unsigned LineNo;
  };

  Program P;
  std::map<std::string, uint64_t> DataLabels;
  std::vector<PendingCall> Calls;
  std::vector<PendingImm> ImmFixups;
  std::string EntryName;

  const std::string &Source;
};

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '.' || C == '$';
}

/// Splits a raw source line into label (optional) and tokens. Returns false
/// on lexical garbage.
bool lexLine(const std::string &Raw, std::string &Label,
             std::vector<std::string> &Tokens) {
  Label.clear();
  Tokens.clear();
  std::string Text = Raw;
  // Strip comments (';' only: '#' introduces immediates).
  for (size_t I = 0; I < Text.size(); ++I) {
    if (Text[I] == ';') {
      Text.resize(I);
      break;
    }
  }
  size_t Pos = 0;
  auto skipWs = [&]() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  };
  skipWs();
  // Leading label?
  size_t Start = Pos;
  while (Pos < Text.size() && isIdentChar(Text[Pos]))
    ++Pos;
  if (Pos > Start && Pos < Text.size() && Text[Pos] == ':') {
    Label = Text.substr(Start, Pos - Start);
    ++Pos;
  } else {
    Pos = Start;
  }
  // Tokens: identifiers/numbers/#imm/=label/(reg) split on space and comma.
  while (true) {
    skipWs();
    if (Pos >= Text.size())
      break;
    char C = Text[Pos];
    if (C == ',') {
      ++Pos;
      continue;
    }
    if (C == '(' || C == ')') {
      Tokens.push_back(std::string(1, C));
      ++Pos;
      continue;
    }
    Start = Pos;
    if (C == '#' || C == '=' || C == '-' || C == '+')
      ++Pos;
    // '#' and '=' may prefix a signed literal ("#-1607"): keep the sign
    // in the same token.
    if ((C == '#' || C == '=') && Pos < Text.size() &&
        (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() && isIdentChar(Text[Pos]))
      ++Pos;
    if (Pos == Start)
      return false; // stray character
    Tokens.push_back(Text.substr(Start, Pos - Start));
  }
  return true;
}

/// Parses a signed integer literal (decimal or 0x...); true on success.
bool parseInt(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  size_t I = 0;
  bool Neg = false;
  if (S[I] == '-' || S[I] == '+') {
    Neg = S[I] == '-';
    ++I;
  }
  if (I >= S.size())
    return false;
  uint64_t Value = 0;
  if (S.size() > I + 2 && S[I] == '0' && (S[I + 1] == 'x' || S[I + 1] == 'X')) {
    for (size_t J = I + 2; J < S.size(); ++J) {
      char C = static_cast<char>(
          std::tolower(static_cast<unsigned char>(S[J])));
      unsigned D;
      if (C >= '0' && C <= '9')
        D = unsigned(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = unsigned(C - 'a') + 10;
      else
        return false;
      Value = Value * 16 + D;
    }
  } else {
    for (size_t J = I; J < S.size(); ++J) {
      if (S[J] < '0' || S[J] > '9')
        return false;
      Value = Value * 10 + unsigned(S[J] - '0');
    }
  }
  Out = Neg ? -static_cast<int64_t>(Value) : static_cast<int64_t>(Value);
  return true;
}

/// Splits a width-suffixed mnemonic ("addb") into base op and width.
/// Mnemonics of width-less ops ("br", "ret") match directly. "mov" and
/// "ldi" default to Q.
bool parseMnemonic(const std::string &Name, Op &O, Width &W) {
  if (parseOpMnemonic(Name, O)) {
    W = Width::Q;
    // Width-bearing ops written without a suffix default to Q.
    return true;
  }
  if (Name.size() < 2)
    return false;
  char Suffix = Name.back();
  Width Parsed;
  switch (Suffix) {
  case 'b':
    Parsed = Width::B;
    break;
  case 'h':
    Parsed = Width::H;
    break;
  case 'w':
    Parsed = Width::W;
    break;
  case 'q':
    Parsed = Width::Q;
    break;
  default:
    return false;
  }
  std::string Base = Name.substr(0, Name.size() - 1);
  if (!parseOpMnemonic(Base, O))
    return false;
  if (!opInfo(O).HasWidth)
    return false;
  W = Parsed;
  return true;
}

} // namespace

Expected<Program> Parser::run() {
  // Split into raw lines first so every diagnostic has a line number.
  std::vector<std::string> RawLines;
  {
    std::string Cur;
    for (char C : Source) {
      if (C == '\n') {
        RawLines.push_back(Cur);
        Cur.clear();
      } else {
        Cur += C;
      }
    }
    RawLines.push_back(Cur);
  }

  enum class Section { None, Data, Func };
  Section Sec = Section::None;
  Function *F = nullptr;
  int32_t CurBlock = NoTarget;
  std::map<std::string, int32_t> BlockIds;
  std::vector<PendingBranch> Branches;
  // Blocks in text order, to resolve implicit fallthroughs.
  std::vector<int32_t> TextOrder;

  auto finishFunction = [&](unsigned LineNo, std::string &Error) -> bool {
    if (!F)
      return true;
    for (const PendingBranch &B : Branches) {
      auto It = BlockIds.find(B.Taken);
      if (It == BlockIds.end()) {
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "line %u: ", B.LineNo);
        Error = Buf + ("undefined label '" + B.Taken + "'");
        return false;
      }
      Instruction &I = F->Blocks[B.Block].Insts[B.Inst];
      I.Target = It->second;
      if (I.isCondBranch()) {
        int32_t Fall = NoTarget;
        if (!B.Fall.empty()) {
          auto FIt = BlockIds.find(B.Fall);
          if (FIt == BlockIds.end()) {
            char Buf[32];
            std::snprintf(Buf, sizeof(Buf), "line %u: ", B.LineNo);
            Error = Buf + ("undefined label '" + B.Fall + "'");
            return false;
          }
          Fall = FIt->second;
        } else {
          // Next block in text order.
          for (size_t TI = 0; TI + 1 < TextOrder.size(); ++TI)
            if (TextOrder[TI] == B.Block)
              Fall = TextOrder[TI + 1];
          if (Fall == NoTarget) {
            char Buf[32];
            std::snprintf(Buf, sizeof(Buf), "line %u: ", B.LineNo);
            Error = Buf + std::string("conditional branch at end of "
                                      "function needs explicit fallthrough");
            return false;
          }
        }
        F->Blocks[B.Block].FallthroughSucc = Fall;
      }
    }
    // Plain fallthrough blocks: successor = next block in text order.
    for (size_t TI = 0; TI < TextOrder.size(); ++TI) {
      BasicBlock &BB = F->Blocks[TextOrder[TI]];
      if (!BB.terminator() && BB.FallthroughSucc == NoTarget) {
        if (TI + 1 >= TextOrder.size()) {
          char Buf[32];
          std::snprintf(Buf, sizeof(Buf), "line %u: ", LineNo);
          Error = Buf + (F->Name + ": control falls off the end");
          return false;
        }
        BB.FallthroughSucc = TextOrder[TI + 1];
      }
    }
    Branches.clear();
    BlockIds.clear();
    TextOrder.clear();
    F = nullptr;
    CurBlock = NoTarget;
    return true;
  };

  auto startBlock = [&](const std::string &Label,
                        unsigned LineNo) -> bool {
    (void)LineNo;
    auto It = BlockIds.find(Label);
    int32_t Id;
    if (It != BlockIds.end()) {
      Id = It->second;
    } else {
      BasicBlock &BB = F->addBlock(Label);
      Id = BB.Id;
      BlockIds.emplace(Label, Id);
    }
    CurBlock = Id;
    TextOrder.push_back(Id);
    return true;
  };

  unsigned AnonCounter = 0;

  for (unsigned LineNo = 1; LineNo <= RawLines.size(); ++LineNo) {
    std::string Label;
    std::vector<std::string> Tokens;
    if (!lexLine(RawLines[LineNo - 1], Label, Tokens))
      return err<Program>(LineNo, "unrecognized character");
    if (Label.empty() && Tokens.empty())
      continue;

    // Directives.
    if (!Tokens.empty() && Tokens[0][0] == '.') {
      const std::string &Dir = Tokens[0];
      if (Dir == ".data") {
        std::string Error;
        if (!finishFunction(LineNo, Error))
          return makeError<Program>(Error);
        Sec = Section::Data;
        continue;
      }
      if (Dir == ".func") {
        if (Tokens.size() != 2)
          return err<Program>(LineNo, ".func needs a name");
        std::string Error;
        if (!finishFunction(LineNo, Error))
          return makeError<Program>(Error);
        if (P.findFunction(Tokens[1]))
          return err<Program>(LineNo,
                              "redefinition of function '" + Tokens[1] + "'");
        F = &P.addFunction(Tokens[1]);
        if (EntryName.empty())
          EntryName = Tokens[1];
        Sec = Section::Func;
        continue;
      }
      if (Dir == ".entry") {
        if (Tokens.size() != 2)
          return err<Program>(LineNo, ".entry needs a name");
        EntryName = Tokens[1];
        continue;
      }
      if (Dir == ".quad" || Dir == ".byte" || Dir == ".zero") {
        if (Sec != Section::Data)
          return err<Program>(LineNo, Dir + " outside .data");
        if (!Label.empty())
          DataLabels[Label] = Program::DataBase + P.Data.size() +
                              (P.Data.size() % 8 ? 8 - P.Data.size() % 8 : 0);
        if (Dir == ".zero") {
          int64_t N;
          if (Tokens.size() != 2 || !parseInt(Tokens[1], N) || N < 0)
            return err<Program>(LineNo, ".zero needs a nonnegative count");
          P.addZeroData(static_cast<size_t>(N));
          continue;
        }
        std::vector<int64_t> Values;
        for (size_t TI = 1; TI < Tokens.size(); ++TI) {
          int64_t V;
          if (!parseInt(Tokens[TI], V))
            return err<Program>(LineNo, "bad integer '" + Tokens[TI] + "'");
          Values.push_back(V);
        }
        if (Dir == ".quad") {
          P.addQuadData(Values);
        } else {
          std::vector<uint8_t> Bytes;
          for (int64_t V : Values) {
            if (V < 0 || V > 255)
              return err<Program>(LineNo, ".byte value out of range");
            Bytes.push_back(static_cast<uint8_t>(V));
          }
          P.addByteData(Bytes);
        }
        continue;
      }
      return err<Program>(LineNo, "unknown directive '" + Dir + "'");
    }

    // Data label on its own line.
    if (Sec == Section::Data && !Label.empty() && Tokens.empty()) {
      DataLabels[Label] = Program::DataBase + P.Data.size() +
                          (P.Data.size() % 8 ? 8 - P.Data.size() % 8 : 0);
      continue;
    }

    if (Sec != Section::Func || !F)
      return err<Program>(LineNo, "instruction outside .func");

    if (!Label.empty()) {
      if (!startBlock(Label, LineNo))
        return err<Program>(LineNo, "bad label");
    }
    if (Tokens.empty())
      continue;
    if (CurBlock == NoTarget) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), ".L%u", AnonCounter++);
      startBlock(Buf, LineNo);
    }
    // A terminated block followed by more instructions starts an anonymous
    // fallthrough-target block.
    if (F->Blocks[CurBlock].terminator()) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), ".L%u", AnonCounter++);
      startBlock(Buf, LineNo);
    }

    Op O;
    Width W;
    if (!parseMnemonic(Tokens[0], O, W))
      return err<Program>(LineNo, "unknown mnemonic '" + Tokens[0] + "'");
    const OpInfo &Info = opInfo(O);

    auto wantReg = [&](size_t Idx, Reg &R) -> bool {
      if (Idx >= Tokens.size())
        return false;
      R = parseRegName(Tokens[Idx]);
      return R < NumRegs;
    };

    Instruction I;
    I.Opc = O;
    I.W = W;
    size_t NTok = Tokens.size();

    switch (O) {
    case Op::Ldi: {
      Reg Rd;
      if (!wantReg(1, Rd) || NTok != 3)
        return err<Program>(LineNo, "ldi needs 'rd, #imm' or 'rd, =label'");
      I.Rd = Rd;
      I.UseImm = true;
      if (Tokens[2][0] == '=') {
        ImmFixups.push_back({F->Id, CurBlock,
                             F->Blocks[CurBlock].Insts.size(),
                             Tokens[2].substr(1), LineNo});
      } else {
        std::string ImmTok =
            Tokens[2][0] == '#' ? Tokens[2].substr(1) : Tokens[2];
        if (!parseInt(ImmTok, I.Imm))
          return err<Program>(LineNo, "bad immediate '" + Tokens[2] + "'");
      }
      break;
    }
    case Op::Msk: {
      Reg Rd, Ra;
      if (!wantReg(1, Rd) || !wantReg(2, Ra) || NTok != 4 ||
          Tokens[3][0] != '#')
        return err<Program>(LineNo, "msk needs 'rd, ra, #byteoff'");
      I.Rd = Rd;
      I.Ra = Ra;
      I.UseImm = true;
      if (!parseInt(Tokens[3].substr(1), I.Imm) || I.Imm < 0 || I.Imm > 7)
        return err<Program>(LineNo, "msk byte offset out of range");
      break;
    }
    case Op::Sext:
    case Op::Mov: {
      Reg Rd, Ra;
      if (!wantReg(1, Rd) || !wantReg(2, Ra) || NTok != 3)
        return err<Program>(LineNo,
                            std::string(Info.Mnemonic) + " needs 'rd, ra'");
      I.Rd = Rd;
      I.Ra = Ra;
      break;
    }
    case Op::Ld:
    case Op::St: {
      // ldq rd, off(base) / stq rs, off(base)
      Reg RVal, Base;
      if (!wantReg(1, RVal) || NTok != 6 || Tokens[3] != "(" ||
          Tokens[5] != ")")
        return err<Program>(LineNo, "memory op needs 'r, off(base)'");
      if (!parseInt(Tokens[2], I.Imm))
        return err<Program>(LineNo, "bad offset '" + Tokens[2] + "'");
      Base = parseRegName(Tokens[4]);
      if (Base >= NumRegs)
        return err<Program>(LineNo, "bad base register");
      I.UseImm = true;
      I.Ra = Base;
      if (O == Op::Ld)
        I.Rd = RVal;
      else
        I.Rb = RVal;
      break;
    }
    case Op::Br: {
      if (NTok != 2)
        return err<Program>(LineNo, "br needs a label");
      Branches.push_back({CurBlock, F->Blocks[CurBlock].Insts.size(),
                          Tokens[1], "", LineNo});
      I.Target = 0; // patched by finishFunction
      break;
    }
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Ble:
    case Op::Bgt:
    case Op::Bge: {
      Reg Ra;
      if (!wantReg(1, Ra) || (NTok != 3 && NTok != 4))
        return err<Program>(LineNo, "branch needs 'ra, label[, fall]'");
      I.Ra = Ra;
      Branches.push_back({CurBlock, F->Blocks[CurBlock].Insts.size(),
                          Tokens[2], NTok == 4 ? Tokens[3] : "", LineNo});
      I.Target = 0; // patched by finishFunction
      break;
    }
    case Op::Jsr: {
      if (NTok != 2)
        return err<Program>(LineNo, "jsr needs a function name");
      Calls.push_back({F->Id, CurBlock, F->Blocks[CurBlock].Insts.size(),
                       Tokens[1], LineNo});
      I.Callee = 0; // patched below
      break;
    }
    case Op::Ret:
    case Op::Halt:
    case Op::Nop: {
      if (NTok != 1)
        return err<Program>(LineNo, "unexpected operands");
      break;
    }
    case Op::Out: {
      Reg Ra;
      if (!wantReg(1, Ra) || NTok != 2)
        return err<Program>(LineNo, "out needs a register");
      I.Ra = Ra;
      break;
    }
    default: {
      // Generic 3-operand ALU: op rd, ra, (rb | #imm).
      Reg Rd, Ra;
      if (!wantReg(1, Rd) || !wantReg(2, Ra) || NTok != 4)
        return err<Program>(LineNo, std::string(Info.Mnemonic) +
                                        " needs 'rd, ra, rb|#imm'");
      I.Rd = Rd;
      I.Ra = Ra;
      if (Tokens[3][0] == '#') {
        I.UseImm = true;
        if (!parseInt(Tokens[3].substr(1), I.Imm))
          return err<Program>(LineNo, "bad immediate '" + Tokens[3] + "'");
      } else {
        Reg Rb = parseRegName(Tokens[3]);
        if (Rb >= NumRegs)
          return err<Program>(LineNo, "bad register '" + Tokens[3] + "'");
        I.Rb = Rb;
      }
      break;
    }
    }

    F->Blocks[CurBlock].Insts.push_back(I);
  }

  std::string Error;
  if (!finishFunction(static_cast<unsigned>(RawLines.size()), Error))
    return makeError<Program>(Error);

  if (P.Funcs.empty())
    return makeError<Program>("no functions defined");

  // Resolve calls.
  for (const PendingCall &C : Calls) {
    Function *Callee = P.findFunction(C.Callee);
    if (!Callee) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "line %u: ", C.LineNo);
      return makeError<Program>(Buf +
                                ("call to undefined function '" + C.Callee +
                                 "'"));
    }
    P.Funcs[C.FuncId].Blocks[C.Block].Insts[C.Inst].Callee = Callee->Id;
  }
  // Resolve '=label' immediates.
  for (const PendingImm &Fix : ImmFixups) {
    auto It = DataLabels.find(Fix.DataLabel);
    if (It == DataLabels.end()) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "line %u: ", Fix.LineNo);
      return makeError<Program>(
          Buf + ("undefined data label '" + Fix.DataLabel + "'"));
    }
    P.Funcs[Fix.FuncId].Blocks[Fix.Block].Insts[Fix.Inst].Imm =
        static_cast<int64_t>(It->second);
  }
  const Function *Entry = P.findFunction(EntryName);
  if (!Entry)
    return makeError<Program>("entry function '" + EntryName +
                              "' not defined");
  P.EntryFunc = Entry->Id;

  std::string Diag;
  if (!verifyProgram(P, &Diag))
    return makeError<Program>("verifier: " + Diag);
  return std::move(P);
}

Expected<Program> og::assembleProgram(const std::string &Source) {
  Parser Prsr(Source);
  return Prsr.run();
}
