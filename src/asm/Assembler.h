//===- asm/Assembler.h - Text assembly -> Program ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the project's textual assembly into a Program. The syntax is
/// deliberately close to Alpha assembly with width-suffixed mnemonics:
///
/// \code
///   .data
///   table:  .quad 1, 2, 3
///   buf:    .zero 64
///
///   .func main
///   entry:
///     ldi   a0, =table       ; '=' takes a data label's address
///     ldq   t0, 0(a0)
///     addb  t1, t0, #1
///     bne   t1, done         ; fallthrough = next label
///   body:
///     out   t1
///   done:
///     halt
/// \endcode
///
/// Conditional branches may name an explicit fallthrough as a third
/// operand ("bne t1, done, body"); otherwise the textually-next block is
/// used. The disassembler always emits the explicit form, so its output
/// re-assembles exactly.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ASM_ASSEMBLER_H
#define OG_ASM_ASSEMBLER_H

#include "program/Program.h"
#include "support/Error.h"

#include <string>

namespace og {

/// Assembles \p Source; on failure the error message carries a line number,
/// e.g. "line 12: unknown mnemonic 'adq'".
Expected<Program> assembleProgram(const std::string &Source);

} // namespace og

#endif // OG_ASM_ASSEMBLER_H
