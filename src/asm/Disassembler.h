//===- asm/Disassembler.h - Program -> text assembly -------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints a Program in the assembler's input syntax. Branch targets use
/// block labels when present and "bbN" otherwise; conditional branches are
/// printed with explicit taken and fallthrough labels so the output
/// round-trips through the assembler unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ASM_DISASSEMBLER_H
#define OG_ASM_DISASSEMBLER_H

#include <iosfwd>
#include <string>

namespace og {

struct Program;
struct Function;

/// Prints one function.
void disassembleFunction(const Program &P, const Function &F,
                         std::ostream &OS);

/// Prints the whole program (data segment as .byte runs, then functions).
void disassembleProgram(const Program &P, std::ostream &OS);

/// Convenience: whole program to a string.
std::string disassembleToString(const Program &P);

} // namespace og

#endif // OG_ASM_DISASSEMBLER_H
