//===- asm/Disassembler.cpp -----------------------------------------------==//

#include "asm/Disassembler.h"

#include "program/Program.h"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

using namespace og;

namespace {

std::string blockName(const Function &F, int32_t Id) {
  if (Id >= 0 && static_cast<size_t>(Id) < F.Blocks.size() &&
      !F.Blocks[Id].Label.empty())
    return F.Blocks[Id].Label;
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "bb%d", Id);
  return Buf;
}

std::string immStr(int64_t Imm) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "#%lld", static_cast<long long>(Imm));
  return Buf;
}

void printInst(const Program &P, const Function &F, const BasicBlock &BB,
               const Instruction &I, std::ostream &OS) {
  const OpInfo &Info = I.info();
  std::string M = Info.Mnemonic;
  if (Info.HasWidth)
    M += widthSuffix(I.W);
  OS << "  " << M;

  switch (I.Opc) {
  case Op::Ldi:
    OS << " " << regName(I.Rd) << ", " << immStr(I.Imm);
    break;
  case Op::Msk:
    OS << " " << regName(I.Rd) << ", " << regName(I.Ra) << ", "
       << immStr(I.Imm);
    break;
  case Op::Sext:
  case Op::Mov:
    OS << " " << regName(I.Rd) << ", " << regName(I.Ra);
    break;
  case Op::Ld:
    OS << " " << regName(I.Rd) << ", " << I.Imm << "(" << regName(I.Ra)
       << ")";
    break;
  case Op::St:
    OS << " " << regName(I.Rb) << ", " << I.Imm << "(" << regName(I.Ra)
       << ")";
    break;
  case Op::Br:
    OS << " " << blockName(F, I.Target);
    break;
  case Op::Beq:
  case Op::Bne:
  case Op::Blt:
  case Op::Ble:
  case Op::Bgt:
  case Op::Bge:
    OS << " " << regName(I.Ra) << ", " << blockName(F, I.Target) << ", "
       << blockName(F, BB.FallthroughSucc);
    break;
  case Op::Jsr:
    OS << " " << P.Funcs[I.Callee].Name;
    break;
  case Op::Ret:
  case Op::Halt:
  case Op::Nop:
    break;
  case Op::Out:
    OS << " " << regName(I.Ra);
    break;
  default:
    // Generic ALU.
    OS << " " << regName(I.Rd) << ", " << regName(I.Ra) << ", ";
    if (I.UseImm)
      OS << immStr(I.Imm);
    else
      OS << regName(I.Rb);
    break;
  }
  OS << "\n";
}

} // namespace

void og::disassembleFunction(const Program &P, const Function &F,
                             std::ostream &OS) {
  OS << ".func " << F.Name << "\n";
  for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const BasicBlock &BB = F.Blocks[BI];
    OS << blockName(F, BB.Id) << ":\n";
    for (const Instruction &I : BB.Insts)
      printInst(P, F, BB, I, OS);
    // Make implicit fallthrough explicit when the successor is not the next
    // block in layout, so the text round-trips exactly.
    if (!BB.terminator() && BB.FallthroughSucc != NoTarget &&
        BB.FallthroughSucc != static_cast<int32_t>(BI + 1))
      OS << "  br " << blockName(F, BB.FallthroughSucc) << "\n";
  }
}

void og::disassembleProgram(const Program &P, std::ostream &OS) {
  if (!P.Data.empty()) {
    OS << ".data\n";
    // Dump as .byte runs of 16.
    for (size_t I = 0; I < P.Data.size(); I += 16) {
      OS << "  .byte ";
      for (size_t J = I; J < P.Data.size() && J < I + 16; ++J) {
        if (J != I)
          OS << ", ";
        OS << unsigned(P.Data[J]);
      }
      OS << "\n";
    }
  }
  if (P.EntryFunc != 0 ||
      (!P.Funcs.empty() && P.Funcs[0].Id != P.EntryFunc))
    OS << ".entry " << P.Funcs[P.EntryFunc].Name << "\n";
  else if (!P.Funcs.empty())
    OS << ".entry " << P.Funcs[P.EntryFunc].Name << "\n";
  for (const Function &F : P.Funcs) {
    disassembleFunction(P, F, OS);
    OS << "\n";
  }
}

std::string og::disassembleToString(const Program &P) {
  std::ostringstream OS;
  disassembleProgram(P, OS);
  return OS.str();
}
