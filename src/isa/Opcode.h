//===- isa/Opcode.h - Operation kinds and metadata ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set is an Alpha-like 64-bit integer RISC. An opcode is a
/// pair (Op, Width): the base operation plus an operand width, mirroring the
/// paper's "opcodes that specify operand lengths (e.g. load byte, add
/// halfword)". Which (Op, Width) pairs are encodable is a property of the
/// IsaPolicy: BaseAlpha models the stock Alpha ISA, Extended adds exactly the
/// opcodes the paper proposes in Section 4.3.
///
/// Notable Alpha-isms preserved because the analyses rely on them:
///  - no integer divide (Alpha has none);
///  - byte/halfword loads zero-extend, word loads sign-extend;
///  - conditional branches test a register against zero; comparisons are
///    separate CMP* instructions producing 0/1;
///  - MSK extracts a zero-extended byte field (Section 2.2.5's useful-range
///    source).
///
//===----------------------------------------------------------------------===//

#ifndef OG_ISA_OPCODE_H
#define OG_ISA_OPCODE_H

#include "isa/Width.h"

#include <cstdint>
#include <string>

namespace og {

/// Base operations. Keep the order stable: tables index by this.
enum class Op : uint8_t {
  // ALU, width-bearing. rd <- op(ra, rb|imm) at width W, result
  // sign-extended to 64 bits.
  Add,
  Sub,
  Mul,
  And,
  Or,
  Xor,
  Bic, ///< and-not: ra & ~rb
  Sll,
  Srl,
  Sra,
  CmpEq,
  CmpLt,  ///< signed
  CmpLe,  ///< signed
  CmpUlt, ///< unsigned
  CmpUle, ///< unsigned
  // Conditional moves: rd <- rb|imm if cc(ra) else rd (rd is also an input).
  CmovEq,
  CmovNe,
  CmovLt,
  CmovGe,
  /// Byte-field extract: rd <- zext(W-wide field of ra at byte offset imm).
  Msk,
  /// Explicit sign extension: rd <- signExtend(ra, W).
  Sext,
  /// Register move (BIS in Alpha): rd <- ra at width W.
  Mov,
  /// Load immediate: rd <- imm (stands for Alpha LDA/LDAH idioms).
  Ldi,
  // Memory, width-bearing. Address = ra + imm.
  Ld, ///< B/H zero-extend, W sign-extends, Q full (Alpha LDBU/LDWU/LDL/LDQ)
  St, ///< stores low W bytes of rb
  // Control flow. Branches test ra against zero; Target is a block id.
  Br, ///< unconditional
  Beq,
  Bne,
  Blt,
  Ble,
  Bgt,
  Bge,
  Jsr, ///< direct call, Callee is a function id
  Ret,
  Halt,
  /// Appends ra to the machine's output stream; the observable effect used
  /// by the output-equivalence oracle.
  Out,
  Nop,
};

constexpr unsigned NumOps = static_cast<unsigned>(Op::Nop) + 1;

/// Operation classes, matching the rows of the paper's Table 3 plus the
/// non-ALU categories.
enum class OpClass : uint8_t {
  Add,
  Sub,
  Mul,
  And, ///< includes Bic
  Or,
  Xor,
  Shift,
  Cmp,
  Cmov,
  Msk, ///< includes Sext/Mov/Ldi (field/move class)
  Load,
  Store,
  Branch,
  Call,
  Ret,
  Halt,
  Out,
  Nop,
};

/// Which functional unit executes the op (for the timing model).
enum class ExecUnit : uint8_t { IntAlu, IntMul, LoadPort, StorePort, None };

/// Static metadata for a base operation.
struct OpInfo {
  const char *Mnemonic;   ///< base mnemonic, no width suffix
  OpClass Class;
  ExecUnit Unit;
  bool HasWidth;          ///< carries a meaningful Width field
  bool HasDest;           ///< writes Rd
  bool ReadsRa;
  bool ReadsRb;           ///< reads Rb when UseImm is false
  bool RdIsInput;         ///< Cmov: old Rd value is an input
  bool IsCondBranch;
  bool IsTerminator;      ///< must be the last instruction of a block
  unsigned LatencyCycles; ///< execute latency in the timing model
};

/// Metadata accessor; total over all Ops.
const OpInfo &opInfo(Op O);

/// Convenience queries.
inline bool isCompare(Op O) {
  return O >= Op::CmpEq && O <= Op::CmpUle;
}
inline bool isCmov(Op O) { return O >= Op::CmovEq && O <= Op::CmovGe; }
inline bool isCondBranch(Op O) { return opInfo(O).IsCondBranch; }
inline bool isShift(Op O) { return O == Op::Sll || O == Op::Srl || O == Op::Sra; }

/// Human-readable class name ("ADD", "MSK", ... as in Table 3).
const char *opClassName(OpClass C);

/// Which width variants of each op are encodable.
enum class IsaPolicy : uint8_t {
  /// Stock Alpha: all memory and MSK widths; W/Q add/sub/mul; Q-only
  /// logicals, shifts, compares and cmovs.
  BaseAlpha,
  /// Paper Section 4.3 extension: + byte/halfword add, byte sub, byte/word
  /// logicals, byte/word shifts, cmovs and comparisons.
  Extended,
};

/// The encodable width set for \p O under \p Policy. Ops without a width
/// return the Q-only set.
WidthSet encodableWidths(Op O, IsaPolicy Policy);

/// Parses a base mnemonic ("add", "cmplt", ...); returns false on failure.
bool parseOpMnemonic(const std::string &Name, Op &O);

} // namespace og

#endif // OG_ISA_OPCODE_H
