//===- isa/Registers.h - Register file and ABI roles ------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 32 integer registers with Alpha-like ABI roles. r31 reads as zero and
/// ignores writes. The calling convention matters to the interprocedural
/// VRP of Section 2.4: argument and return-value registers carry ranges
/// across calls; caller-saved registers are clobbered to the full range.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ISA_REGISTERS_H
#define OG_ISA_REGISTERS_H

#include <cstdint>
#include <string>

namespace og {

using Reg = uint8_t;

constexpr unsigned NumRegs = 32;

/// ABI roles (Alpha-flavored).
constexpr Reg RegV0 = 0;    ///< return value
constexpr Reg RegT0 = 1;    ///< t0..t7 = r1..r8, caller-saved temporaries
constexpr Reg RegT1 = 2;
constexpr Reg RegT2 = 3;
constexpr Reg RegT3 = 4;
constexpr Reg RegT4 = 5;
constexpr Reg RegT5 = 6;
constexpr Reg RegT6 = 7;
constexpr Reg RegT7 = 8;
constexpr Reg RegS0 = 9;    ///< s0..s5 = r9..r14, callee-saved
constexpr Reg RegS1 = 10;
constexpr Reg RegS2 = 11;
constexpr Reg RegS3 = 12;
constexpr Reg RegS4 = 13;
constexpr Reg RegS5 = 14;
constexpr Reg RegFP = 15;   ///< frame pointer (callee-saved)
constexpr Reg RegA0 = 16;   ///< a0..a5 = r16..r21, arguments
constexpr Reg RegA1 = 17;
constexpr Reg RegA2 = 18;
constexpr Reg RegA3 = 19;
constexpr Reg RegA4 = 20;
constexpr Reg RegA5 = 21;
constexpr Reg RegT8 = 22;   ///< t8..t11 = r22..r25, caller-saved
constexpr Reg RegT9 = 23;
constexpr Reg RegT10 = 24;
constexpr Reg RegT11 = 25;
constexpr Reg RegRA = 26;   ///< return address
constexpr Reg RegT12 = 27;  ///< caller-saved scratch
constexpr Reg RegAT = 28;   ///< assembler temporary (caller-saved)
constexpr Reg RegGP = 29;   ///< global pointer
constexpr Reg RegSP = 30;   ///< stack pointer (callee-saved)
constexpr Reg RegZero = 31; ///< hardwired zero

constexpr unsigned NumArgRegs = 6;

/// True for registers a callee must preserve (s0..s5, fp, sp).
inline bool isCalleeSaved(Reg R) {
  return (R >= RegS0 && R <= RegFP) || R == RegSP;
}

/// True for registers a call may clobber (everything not callee-saved,
/// except the hardwired zero which cannot change).
inline bool isCallerSaved(Reg R) {
  return R != RegZero && !isCalleeSaved(R);
}

/// Canonical textual name ("v0", "t3", "a1", "sp", "zero", ...).
std::string regName(Reg R);

/// Parses a register name (either an ABI alias or "rNN"); returns NumRegs
/// on failure.
Reg parseRegName(const std::string &Name);

} // namespace og

#endif // OG_ISA_REGISTERS_H
