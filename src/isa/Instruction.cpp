//===- isa/Instruction.cpp ------------------------------------------------==//

#include "isa/Instruction.h"

#include <cassert>
#include <cstdio>

using namespace og;

bool Instruction::readsRbRegister() const {
  // Stores read Rb (the stored value) in addition to the immediate
  // offset; for every other op the immediate replaces Rb.
  return info().ReadsRb && (!UseImm || Opc == Op::St);
}

unsigned Instruction::numRegSources() const {
  const OpInfo &Info = info();
  unsigned N = 0;
  if (Info.ReadsRa)
    ++N;
  if (readsRbRegister())
    ++N;
  if (Info.RdIsInput)
    ++N;
  return N;
}

Reg Instruction::regSource(unsigned I) const {
  const OpInfo &Info = info();
  if (Info.ReadsRa) {
    if (I == 0)
      return Ra;
    --I;
  }
  if (readsRbRegister()) {
    if (I == 0)
      return Rb;
    --I;
  }
  assert(Info.RdIsInput && I == 0 && "source index out of range");
  return Rd;
}

std::string Instruction::str() const {
  const OpInfo &Info = info();
  std::string S = Info.Mnemonic;
  if (Info.HasWidth)
    S += widthSuffix(W);
  bool First = true;
  auto sep = [&]() {
    S += First ? " " : ", ";
    First = false;
  };
  if (Opc == Op::St) {
    // Stores read Rb as the value: print "stw value, off(base)".
    sep();
    S += regName(Rb);
  }
  if (Info.ReadsRa) {
    sep();
    S += regName(Ra);
  }
  if (Opc == Op::Ld || Opc == Op::St) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Imm));
    S += std::string("(") + Buf + ")";
  } else if (Info.ReadsRb) {
    sep();
    if (UseImm) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "#%lld", static_cast<long long>(Imm));
      S += Buf;
    } else {
      S += regName(Rb);
    }
  } else if (Opc == Op::Ldi || Opc == Op::Msk) {
    sep();
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "#%lld", static_cast<long long>(Imm));
    S += Buf;
  }
  if (Info.HasDest) {
    S += " -> ";
    S += regName(Rd);
  }
  if (Target != NoTarget) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " @bb%d", Target);
    S += Buf;
  }
  if (Callee != NoTarget) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " @fn%d", Callee);
    S += Buf;
  }
  return S;
}

Instruction Instruction::alu(Op O, Width W, Reg Rd, Reg Ra, Reg Rb) {
  assert(opInfo(O).HasDest && opInfo(O).ReadsRb && "not a 3-operand ALU op");
  Instruction I;
  I.Opc = O;
  I.W = W;
  I.Rd = Rd;
  I.Ra = Ra;
  I.Rb = Rb;
  return I;
}

Instruction Instruction::aluImm(Op O, Width W, Reg Rd, Reg Ra, int64_t Imm) {
  assert(opInfo(O).HasDest && opInfo(O).ReadsRb && "not a 3-operand ALU op");
  Instruction I;
  I.Opc = O;
  I.W = W;
  I.Rd = Rd;
  I.Ra = Ra;
  I.UseImm = true;
  I.Imm = Imm;
  return I;
}

Instruction Instruction::msk(Width W, Reg Rd, Reg Ra, unsigned ByteOffset) {
  assert(ByteOffset < 8 && "byte offset out of range");
  Instruction I;
  I.Opc = Op::Msk;
  I.W = W;
  I.Rd = Rd;
  I.Ra = Ra;
  I.UseImm = true;
  I.Imm = ByteOffset;
  return I;
}

Instruction Instruction::sext(Width W, Reg Rd, Reg Ra) {
  Instruction I;
  I.Opc = Op::Sext;
  I.W = W;
  I.Rd = Rd;
  I.Ra = Ra;
  return I;
}

Instruction Instruction::mov(Reg Rd, Reg Ra) {
  Instruction I;
  I.Opc = Op::Mov;
  I.Rd = Rd;
  I.Ra = Ra;
  return I;
}

Instruction Instruction::ldi(Reg Rd, int64_t Imm) {
  Instruction I;
  I.Opc = Op::Ldi;
  I.Rd = Rd;
  I.UseImm = true;
  I.Imm = Imm;
  return I;
}

Instruction Instruction::load(Width W, Reg Rd, Reg Base, int64_t Offset) {
  Instruction I;
  I.Opc = Op::Ld;
  I.W = W;
  I.Rd = Rd;
  I.Ra = Base;
  I.UseImm = true;
  I.Imm = Offset;
  return I;
}

Instruction Instruction::store(Width W, Reg Value, Reg Base, int64_t Offset) {
  Instruction I;
  I.Opc = Op::St;
  I.W = W;
  I.Ra = Base;
  I.Rb = Value;
  I.UseImm = true;
  I.Imm = Offset;
  return I;
}

Instruction Instruction::br(int32_t Target) {
  Instruction I;
  I.Opc = Op::Br;
  I.Target = Target;
  return I;
}

Instruction Instruction::condBr(Op O, Reg Ra, int32_t Target) {
  assert(opInfo(O).IsCondBranch && "not a conditional branch");
  Instruction I;
  I.Opc = O;
  I.Ra = Ra;
  I.Target = Target;
  return I;
}

Instruction Instruction::jsr(int32_t Callee) {
  Instruction I;
  I.Opc = Op::Jsr;
  I.Callee = Callee;
  return I;
}

Instruction Instruction::ret() {
  Instruction I;
  I.Opc = Op::Ret;
  return I;
}

Instruction Instruction::halt() {
  Instruction I;
  I.Opc = Op::Halt;
  return I;
}

Instruction Instruction::out(Reg Ra) {
  Instruction I;
  I.Opc = Op::Out;
  I.Ra = Ra;
  return I;
}

Instruction Instruction::nop() { return Instruction(); }
