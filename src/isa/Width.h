//===- isa/Width.h - Operand width (8/16/32/64 bit) -------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four operand widths of the paper: byte, halfword, word, doubleword
/// (Section 2: "opcodes may specify operand widths of a byte, halfword,
/// word, and doubleword"). Every width-bearing opcode carries one of these.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ISA_WIDTH_H
#define OG_ISA_WIDTH_H

#include "support/MathExtras.h"

#include <cassert>
#include <cstdint>
#include <initializer_list>

namespace og {

/// Operand width. Ordered narrow to wide so std::max picks the wider one.
enum class Width : uint8_t {
  B = 0, ///< byte, 8 bits
  H = 1, ///< halfword, 16 bits
  W = 2, ///< word, 32 bits
  Q = 3, ///< doubleword ("quad" in Alpha parlance), 64 bits
};

inline unsigned widthBytes(Width W) { return 1u << static_cast<unsigned>(W); }
inline unsigned widthBits(Width W) { return 8u * widthBytes(W); }

/// Smallest Width holding \p Bytes bytes (1..8).
inline Width widthForBytes(unsigned Bytes) {
  assert(Bytes >= 1 && Bytes <= 8 && "byte count out of range");
  if (Bytes <= 1)
    return Width::B;
  if (Bytes <= 2)
    return Width::H;
  if (Bytes <= 4)
    return Width::W;
  return Width::Q;
}

/// Smallest Width whose signed range covers [\p Min, \p Max].
inline Width widthForSignedRange(int64_t Min, int64_t Max) {
  return widthForBytes(bytesForSignedRange(Min, Max));
}

/// Most negative / most positive value representable at width \p W.
inline int64_t widthSignedMin(Width W) {
  return W == Width::Q ? INT64_MIN
                       : -(int64_t(1) << (widthBits(W) - 1));
}
inline int64_t widthSignedMax(Width W) {
  return W == Width::Q ? INT64_MAX
                       : (int64_t(1) << (widthBits(W) - 1)) - 1;
}

/// Largest zero-extended value at width \p W (UINT64_MAX folded to int64
/// only for Q, which callers must special-case; narrow widths fit easily).
inline uint64_t widthUnsignedMax(Width W) {
  return W == Width::Q ? UINT64_MAX
                       : (uint64_t(1) << widthBits(W)) - 1;
}

/// One-letter suffix used in assembly ("addb", "addh", "addw", "addq").
inline char widthSuffix(Width W) {
  switch (W) {
  case Width::B:
    return 'b';
  case Width::H:
    return 'h';
  case Width::W:
    return 'w';
  case Width::Q:
    return 'q';
  }
  assert(false && "covered switch");
  return '?';
}

/// A set of widths, used to describe which width variants of an opcode the
/// (extended) ISA encodes (paper Section 4.3 discusses which extensions are
/// worth adding).
class WidthSet {
public:
  constexpr WidthSet() = default;
  constexpr WidthSet(std::initializer_list<Width> Ws) {
    for (Width W : Ws)
      Bits |= 1u << static_cast<unsigned>(W);
  }

  constexpr bool contains(Width W) const {
    return Bits & (1u << static_cast<unsigned>(W));
  }

  /// Narrowest available width >= \p Wanted bytes; falls back widening until
  /// an encodable width is found (Q is always encodable).
  Width narrowestAtLeast(Width Wanted) const {
    for (unsigned I = static_cast<unsigned>(Wanted); I <= 3; ++I)
      if (contains(static_cast<Width>(I)))
        return static_cast<Width>(I);
    return Width::Q;
  }

  static constexpr WidthSet all() {
    return WidthSet{Width::B, Width::H, Width::W, Width::Q};
  }
  static constexpr WidthSet onlyQ() { return WidthSet{Width::Q}; }

private:
  uint8_t Bits = 0;
};

} // namespace og

#endif // OG_ISA_WIDTH_H
