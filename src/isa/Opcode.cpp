//===- isa/Opcode.cpp -----------------------------------------------------==//

#include "isa/Opcode.h"

#include <cassert>

using namespace og;

namespace {

// Keep in Op order. Latencies follow classic Alpha-ish values: 1-cycle ALU,
// 7-cycle pipelined multiply, load latency handled by the cache model.
const OpInfo Infos[NumOps] = {
    //                 Class           Unit                W      D      Ra     Rb     RdIn   CBr    Term  Lat
    {"add",    OpClass::Add,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"sub",    OpClass::Sub,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"mul",    OpClass::Mul,    ExecUnit::IntMul,    true,  true,  true,  true,  false, false, false, 7},
    {"and",    OpClass::And,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"or",     OpClass::Or,     ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"xor",    OpClass::Xor,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"bic",    OpClass::And,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"sll",    OpClass::Shift,  ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"srl",    OpClass::Shift,  ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"sra",    OpClass::Shift,  ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"cmpeq",  OpClass::Cmp,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"cmplt",  OpClass::Cmp,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"cmple",  OpClass::Cmp,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"cmpult", OpClass::Cmp,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"cmpule", OpClass::Cmp,    ExecUnit::IntAlu,    true,  true,  true,  true,  false, false, false, 1},
    {"cmoveq", OpClass::Cmov,   ExecUnit::IntAlu,    true,  true,  true,  true,  true,  false, false, 1},
    {"cmovne", OpClass::Cmov,   ExecUnit::IntAlu,    true,  true,  true,  true,  true,  false, false, 1},
    {"cmovlt", OpClass::Cmov,   ExecUnit::IntAlu,    true,  true,  true,  true,  true,  false, false, 1},
    {"cmovge", OpClass::Cmov,   ExecUnit::IntAlu,    true,  true,  true,  true,  true,  false, false, 1},
    {"msk",    OpClass::Msk,    ExecUnit::IntAlu,    true,  true,  true,  false, false, false, false, 1},
    {"sext",   OpClass::Msk,    ExecUnit::IntAlu,    true,  true,  true,  false, false, false, false, 1},
    {"mov",    OpClass::Msk,    ExecUnit::IntAlu,    true,  true,  true,  false, false, false, false, 1},
    {"ldi",    OpClass::Msk,    ExecUnit::IntAlu,    true,  true,  false, false, false, false, false, 1},
    {"ld",     OpClass::Load,   ExecUnit::LoadPort,  true,  true,  true,  false, false, false, false, 1},
    {"st",     OpClass::Store,  ExecUnit::StorePort, true,  false, true,  true,  false, false, false, 1},
    {"br",     OpClass::Branch, ExecUnit::IntAlu,    false, false, false, false, false, false, true,  1},
    {"beq",    OpClass::Branch, ExecUnit::IntAlu,    false, false, true,  false, false, true,  true,  1},
    {"bne",    OpClass::Branch, ExecUnit::IntAlu,    false, false, true,  false, false, true,  true,  1},
    {"blt",    OpClass::Branch, ExecUnit::IntAlu,    false, false, true,  false, false, true,  true,  1},
    {"ble",    OpClass::Branch, ExecUnit::IntAlu,    false, false, true,  false, false, true,  true,  1},
    {"bgt",    OpClass::Branch, ExecUnit::IntAlu,    false, false, true,  false, false, true,  true,  1},
    {"bge",    OpClass::Branch, ExecUnit::IntAlu,    false, false, true,  false, false, true,  true,  1},
    {"jsr",    OpClass::Call,   ExecUnit::IntAlu,    false, false, false, false, false, false, false, 1},
    {"ret",    OpClass::Ret,    ExecUnit::IntAlu,    false, false, false, false, false, false, true,  1},
    {"halt",   OpClass::Halt,   ExecUnit::None,      false, false, false, false, false, false, true,  1},
    {"out",    OpClass::Out,    ExecUnit::IntAlu,    false, false, true,  false, false, false, false, 1},
    {"nop",    OpClass::Nop,    ExecUnit::None,      false, false, false, false, false, false, false, 1},
};

} // namespace

const OpInfo &og::opInfo(Op O) {
  unsigned Idx = static_cast<unsigned>(O);
  assert(Idx < NumOps && "bad op");
  return Infos[Idx];
}

const char *og::opClassName(OpClass C) {
  switch (C) {
  case OpClass::Add:
    return "ADD";
  case OpClass::Sub:
    return "SUB";
  case OpClass::Mul:
    return "MUL";
  case OpClass::And:
    return "AND";
  case OpClass::Or:
    return "OR";
  case OpClass::Xor:
    return "XOR";
  case OpClass::Shift:
    return "SHIFT";
  case OpClass::Cmp:
    return "CMP";
  case OpClass::Cmov:
    return "CMOV";
  case OpClass::Msk:
    return "MSK";
  case OpClass::Load:
    return "LOAD";
  case OpClass::Store:
    return "STORE";
  case OpClass::Branch:
    return "BRANCH";
  case OpClass::Call:
    return "CALL";
  case OpClass::Ret:
    return "RET";
  case OpClass::Halt:
    return "HALT";
  case OpClass::Out:
    return "OUT";
  case OpClass::Nop:
    return "NOP";
  }
  assert(false && "covered switch");
  return "?";
}

WidthSet og::encodableWidths(Op O, IsaPolicy Policy) {
  const OpInfo &Info = opInfo(O);
  if (!Info.HasWidth)
    return WidthSet::onlyQ();

  // Memory, field-extract and sign-extension opcodes exist at every width in
  // stock Alpha (LDBU/LDWU/LDL/LDQ, MSKxL, SEXTB/SEXTW via BWX).
  switch (Info.Class) {
  case OpClass::Load:
  case OpClass::Store:
    return WidthSet::all();
  default:
    break;
  }
  if (O == Op::Msk || O == Op::Sext || O == Op::Ldi)
    return WidthSet::all();

  if (Policy == IsaPolicy::BaseAlpha) {
    // ADDL/SUBL/MULL give 32-bit variants; everything else is 64-bit only.
    switch (Info.Class) {
    case OpClass::Add:
    case OpClass::Sub:
    case OpClass::Mul:
      return WidthSet{Width::W, Width::Q};
    default:
      return WidthSet::onlyQ();
    }
  }

  // Extended ISA, paper Section 4.3: "byte and halfword addition; byte
  // subtraction; byte and word logical operations (and, or, xor), and byte
  // and word shifts, conditional moves and comparisons." MUL gains nothing.
  switch (Info.Class) {
  case OpClass::Add:
    return WidthSet::all();
  case OpClass::Sub:
    return WidthSet{Width::B, Width::W, Width::Q};
  case OpClass::Mul:
    return WidthSet{Width::W, Width::Q};
  case OpClass::And:
  case OpClass::Or:
  case OpClass::Xor:
  case OpClass::Shift:
  case OpClass::Cmp:
  case OpClass::Cmov:
    return WidthSet{Width::B, Width::W, Width::Q};
  case OpClass::Msk:
    return WidthSet::all();
  default:
    return WidthSet::onlyQ();
  }
}

bool og::parseOpMnemonic(const std::string &Name, Op &O) {
  for (unsigned I = 0; I < NumOps; ++I) {
    if (Name == Infos[I].Mnemonic) {
      O = static_cast<Op>(I);
      return true;
    }
  }
  return false;
}
