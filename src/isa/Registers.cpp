//===- isa/Registers.cpp --------------------------------------------------==//

#include "isa/Registers.h"

#include <cstdio>

using namespace og;

namespace {

struct RegAlias {
  const char *Name;
  Reg R;
};

// Alpha-flavored ABI names. Order matters only for printing preference.
const RegAlias Aliases[] = {
    {"v0", 0},   {"t0", 1},   {"t1", 2},   {"t2", 3},   {"t3", 4},
    {"t4", 5},   {"t5", 6},   {"t6", 7},   {"t7", 8},   {"s0", 9},
    {"s1", 10},  {"s2", 11},  {"s3", 12},  {"s4", 13},  {"s5", 14},
    {"fp", 15},  {"a0", 16},  {"a1", 17},  {"a2", 18},  {"a3", 19},
    {"a4", 20},  {"a5", 21},  {"t8", 22},  {"t9", 23},  {"t10", 24},
    {"t11", 25}, {"ra", 26},  {"t12", 27}, {"at", 28},  {"gp", 29},
    {"sp", 30},  {"zero", 31},
};

} // namespace

std::string og::regName(Reg R) {
  for (const RegAlias &A : Aliases)
    if (A.R == R)
      return A.Name;
  char Buf[8];
  std::snprintf(Buf, sizeof(Buf), "r%u", unsigned(R));
  return Buf;
}

Reg og::parseRegName(const std::string &Name) {
  for (const RegAlias &A : Aliases)
    if (Name == A.Name)
      return A.R;
  if (Name.size() >= 2 && Name[0] == 'r') {
    unsigned Value = 0;
    for (size_t I = 1; I < Name.size(); ++I) {
      if (Name[I] < '0' || Name[I] > '9')
        return NumRegs;
      Value = Value * 10 + unsigned(Name[I] - '0');
    }
    if (Value < NumRegs)
      return static_cast<Reg>(Value);
  }
  return NumRegs;
}
