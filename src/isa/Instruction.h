//===- isa/Instruction.h - Instruction value type ----------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single machine instruction: an (Op, Width) opcode plus register,
/// immediate and control-flow operands. Instructions are plain value types
/// stored inline in basic blocks; control-flow targets are structural
/// (block ids within the function, function ids for calls), so cloning and
/// rewriting never chase textual labels.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ISA_INSTRUCTION_H
#define OG_ISA_INSTRUCTION_H

#include "isa/Opcode.h"
#include "isa/Registers.h"

#include <cstdint>
#include <string>

namespace og {

/// Invalid block/function target sentinel.
constexpr int32_t NoTarget = -1;

/// One instruction. Field usage by kind:
///  - ALU:    Rd <- op(Ra, UseImm ? Imm : Rb) at width W
///  - Msk:    Rd <- zext(W-wide field of Ra at byte offset Imm)
///  - Ldi:    Rd <- Imm
///  - Ld:     Rd <- mem[Ra + Imm] (width W)
///  - St:     mem[Ra + Imm] <- Rb (width W)
///  - Bcc:    test Ra vs 0, taken target = Target (block id); fallthrough is
///            the block's FallthroughSucc
///  - Br:     Target (block id)
///  - Jsr:    Callee (function id); args in a0.., result in v0
struct Instruction {
  Op Opc = Op::Nop;
  Width W = Width::Q;
  Reg Rd = RegZero;
  Reg Ra = RegZero;
  Reg Rb = RegZero;
  bool UseImm = false;
  int64_t Imm = 0;
  int32_t Target = NoTarget; ///< taken-branch block id
  int32_t Callee = NoTarget; ///< called function id

  const OpInfo &info() const { return opInfo(Opc); }

  bool hasDest() const { return info().HasDest; }
  bool isTerminator() const { return info().IsTerminator; }
  bool isCondBranch() const { return info().IsCondBranch; }
  bool isLoad() const { return Opc == Op::Ld; }
  bool isStore() const { return Opc == Op::St; }
  bool isCall() const { return Opc == Op::Jsr; }

  /// True when Rb is read as a register even though UseImm is set (only
  /// stores: value register + immediate offset).
  bool readsRbRegister() const;

  /// Number of register source operands actually read (0..3, counting the
  /// cmov old-dest input).
  unsigned numRegSources() const;

  /// The I-th register source (0-based): Ra first, then Rb (if read and not
  /// immediate), then the cmov old-dest.
  Reg regSource(unsigned I) const;

  /// Compact debug string, e.g. "addb t0, t1, #4 -> t2". Full assembly
  /// printing (with labels) lives in asm/Disassembler.
  std::string str() const;

  // --- Factories (the builder API uses these; keeps call sites readable).
  static Instruction alu(Op O, Width W, Reg Rd, Reg Ra, Reg Rb);
  static Instruction aluImm(Op O, Width W, Reg Rd, Reg Ra, int64_t Imm);
  static Instruction msk(Width W, Reg Rd, Reg Ra, unsigned ByteOffset);
  static Instruction sext(Width W, Reg Rd, Reg Ra);
  static Instruction mov(Reg Rd, Reg Ra);
  static Instruction ldi(Reg Rd, int64_t Imm);
  static Instruction load(Width W, Reg Rd, Reg Base, int64_t Offset);
  static Instruction store(Width W, Reg Value, Reg Base, int64_t Offset);
  static Instruction br(int32_t Target);
  static Instruction condBr(Op O, Reg Ra, int32_t Target);
  static Instruction jsr(int32_t Callee);
  static Instruction ret();
  static Instruction halt();
  static Instruction out(Reg Ra);
  static Instruction nop();
};

} // namespace og

#endif // OG_ISA_INSTRUCTION_H
