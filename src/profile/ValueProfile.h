//===- profile/ValueProfile.h - Calder-style value profiling -----*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value-profiling table of paper Section 3.3, following Calder et
/// al. [MICRO'97]: a fixed-size table of (value, count) entries per
/// profiling point. New values enter while space remains; when full,
/// values are ignored until a periodic clean evicts the least frequently
/// used half, letting fresh values in. A separate counter tracks the total
/// number of executions of the point.
///
//===----------------------------------------------------------------------===//

#ifndef OG_PROFILE_VALUEPROFILE_H
#define OG_PROFILE_VALUEPROFILE_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace og {

/// One profiling point's value table.
class ValueProfileTable {
public:
  struct Entry {
    int64_t Value;
    uint64_t Count;
  };

  struct Config {
    unsigned Capacity = 16;     ///< fixed table size
    uint64_t CleanPeriod = 512; ///< executions between LFU cleanings
  };

  ValueProfileTable() : ValueProfileTable(Config()) {}
  explicit ValueProfileTable(Config C) : Cfg(C) {}

  /// Records one observed value.
  void record(int64_t Value);

  /// Total executions of the profiling point (including ignored values).
  uint64_t totalCount() const { return Total; }

  /// Entries sorted by descending count (ties: ascending value, for
  /// determinism).
  std::vector<Entry> sortedEntries() const;

  /// Fraction of executions whose value provably fell in [Min, Max]:
  /// the sum of matching table counts over the total. A lower bound, since
  /// evicted/ignored values are unknown (the conservative direction for
  /// the specialization benefit estimate).
  double freqInRange(int64_t Min, int64_t Max) const;

private:
  void clean();

  Config Cfg;
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  uint64_t SinceClean = 0;
};

} // namespace og

#endif // OG_PROFILE_VALUEPROFILE_H
