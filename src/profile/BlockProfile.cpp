//===- profile/BlockProfile.cpp -------------------------------------------==//

#include "profile/BlockProfile.h"

#include <cassert>

using namespace og;

ProgramProfile
og::collectProfile(const DecodedProgram &DP, const RunOptions &Options,
                   const std::vector<std::pair<int32_t, size_t>> &Candidates,
                   ValueProfileTable::Config TableCfg) {
  const Program &P = DP.program();
  ProgramProfile Profile;
  for (const auto &C : Candidates)
    Profile.Values.emplace(C, ValueProfileTable(TableCfg));

  // Dense per-function instruction numbering (layout order), to match
  // candidate ids.
  std::vector<std::vector<size_t>> BlockBase(P.Funcs.size());
  for (const Function &F : P.Funcs) {
    auto &Bases = BlockBase[F.Id];
    Bases.resize(F.Blocks.size());
    size_t N = 0;
    for (const BasicBlock &BB : F.Blocks) {
      Bases[BB.Id] = N;
      N += BB.Insts.size();
    }
  }

  RunOptions Opts = Options;
  FnTraceSink Recorder([&](const DynInst &D) {
    if (!D.WroteDest || Profile.Values.empty())
      return;
    size_t Id = BlockBase[D.Func][D.Block] + static_cast<size_t>(D.Index);
    auto It = Profile.Values.find({D.Func, Id});
    if (It == Profile.Values.end())
      return;
    It->second.record(D.Result);
  });
  // Without candidates the recorder would drop every record; leave the
  // sink detached so the run takes the no-trace fast path.
  if (!Profile.Values.empty())
    Opts.Sink = &Recorder;

  RunResult R = runProgram(DP, Opts);
  assert(R.Status == RunStatus::Halted && "profiling run did not halt");
  Profile.BlockCounts = std::move(R.Stats.BlockCounts);
  Profile.DynInsts = R.Stats.DynInsts;
  return Profile;
}

ProgramProfile
og::collectProfile(const Program &P, const RunOptions &Options,
                   const std::vector<std::pair<int32_t, size_t>> &Candidates,
                   ValueProfileTable::Config TableCfg) {
  DecodedProgram DP(P);
  return collectProfile(DP, Options, Candidates, TableCfg);
}
