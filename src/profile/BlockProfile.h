//===- profile/BlockProfile.h - Profiling runs -------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile collection for VRS (paper Section 3): basic-block counts from a
/// training run, plus per-candidate value profiles gathered through the
/// interpreter's trace hook. Candidates are identified by (function id,
/// dense instruction id).
///
//===----------------------------------------------------------------------===//

#ifndef OG_PROFILE_BLOCKPROFILE_H
#define OG_PROFILE_BLOCKPROFILE_H

#include "profile/ValueProfile.h"
#include "sim/ExecEngine.h"
#include "sim/Interpreter.h"

#include <map>
#include <utility>
#include <vector>

namespace og {

/// A whole-program profile from one (train-input) run.
struct ProgramProfile {
  /// Executions per [function][block].
  std::vector<std::vector<uint64_t>> BlockCounts;
  /// Value profiles of requested candidate points, keyed by
  /// (function, instruction id).
  std::map<std::pair<int32_t, size_t>, ValueProfileTable> Values;
  uint64_t DynInsts = 0;

  uint64_t blockCount(int32_t F, int32_t BB) const {
    return BlockCounts[F][BB];
  }
};

/// Runs \p P on the training input \p Options and collects block counts
/// plus value profiles at \p Candidates (function, instruction-id pairs;
/// instruction numbering is layout order as in FunctionRanges/
/// ReachingDefs). The run must halt cleanly; asserts otherwise.
ProgramProfile
collectProfile(const Program &P, const RunOptions &Options,
               const std::vector<std::pair<int32_t, size_t>> &Candidates,
               ValueProfileTable::Config TableCfg = {});

/// Same, over an already-decoded program (skips the per-call decode when
/// the caller profiles one binary repeatedly).
ProgramProfile
collectProfile(const DecodedProgram &DP, const RunOptions &Options,
               const std::vector<std::pair<int32_t, size_t>> &Candidates,
               ValueProfileTable::Config TableCfg = {});

} // namespace og

#endif // OG_PROFILE_BLOCKPROFILE_H
