//===- profile/ValueProfile.cpp -------------------------------------------==//

#include "profile/ValueProfile.h"

using namespace og;

void ValueProfileTable::record(int64_t Value) {
  ++Total;
  if (++SinceClean >= Cfg.CleanPeriod) {
    SinceClean = 0;
    clean();
  }
  for (Entry &E : Entries) {
    if (E.Value == Value) {
      ++E.Count;
      return;
    }
  }
  if (Entries.size() < Cfg.Capacity) {
    Entries.push_back({Value, 1});
    return;
  }
  // Table full: the value is ignored until the next clean frees space.
}

void ValueProfileTable::clean() {
  if (Entries.size() < Cfg.Capacity)
    return;
  // Evict the least frequently used half so new values can enter.
  std::sort(Entries.begin(), Entries.end(), [](const Entry &A,
                                               const Entry &B) {
    if (A.Count != B.Count)
      return A.Count > B.Count;
    return A.Value < B.Value;
  });
  Entries.resize(Entries.size() / 2);
}

std::vector<ValueProfileTable::Entry>
ValueProfileTable::sortedEntries() const {
  std::vector<Entry> Out = Entries;
  std::sort(Out.begin(), Out.end(), [](const Entry &A, const Entry &B) {
    if (A.Count != B.Count)
      return A.Count > B.Count;
    return A.Value < B.Value;
  });
  return Out;
}

double ValueProfileTable::freqInRange(int64_t Min, int64_t Max) const {
  if (Total == 0)
    return 0.0;
  uint64_t Matching = 0;
  for (const Entry &E : Entries)
    if (E.Value >= Min && E.Value <= Max)
      Matching += E.Count;
  return static_cast<double>(Matching) / static_cast<double>(Total);
}
