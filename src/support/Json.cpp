//===- support/Json.cpp ----------------------------------------------------==//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace og;

//===----------------------------------------------------------------------===//
// Value model
//===----------------------------------------------------------------------===//

JsonValue JsonValue::boolean(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

JsonValue JsonValue::integer(int64_t I) {
  JsonValue V;
  V.K = Kind::Number;
  V.IntNum = true;
  V.I = I;
  V.D = static_cast<double>(I);
  return V;
}

JsonValue JsonValue::number(double D) {
  if (std::isnan(D) || std::isinf(D))
    return null(); // the documented NaN/inf policy
  JsonValue V;
  V.K = Kind::Number;
  V.IntNum = false;
  V.D = D;
  return V;
}

JsonValue JsonValue::str(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.S = std::move(S);
  return V;
}

JsonValue JsonValue::array() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::object() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

bool JsonValue::asBool() const {
  assert(isBool() && "not a bool");
  return B;
}

double JsonValue::asNumber() const {
  assert(isNumber() && "not a number");
  return IntNum ? static_cast<double>(I) : D;
}

int64_t JsonValue::asInt() const {
  assert(isInteger() && "not an integer number");
  return I;
}

const std::string &JsonValue::asString() const {
  assert(isString() && "not a string");
  return S;
}

size_t JsonValue::size() const {
  if (K == Kind::Array)
    return Elems.size();
  if (K == Kind::Object)
    return Members.size();
  return 0;
}

const JsonValue &JsonValue::at(size_t Idx) const {
  assert(isArray() && Idx < Elems.size() && "bad array access");
  return Elems[Idx];
}

void JsonValue::push(JsonValue V) {
  assert(isArray() && "push on non-array");
  Elems.push_back(std::move(V));
}

void JsonValue::set(const std::string &Key, JsonValue V) {
  assert(isObject() && "set on non-object");
  for (auto &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const {
  assert(isObject() && "members on non-object");
  return Members;
}

bool JsonValue::operator==(const JsonValue &O) const {
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return B == O.B;
  case Kind::Number:
    if (IntNum != O.IntNum)
      return false;
    return IntNum ? I == O.I : formatDouble(D) == formatDouble(O.D);
  case Kind::String:
    return S == O.S;
  case Kind::Array:
    return Elems == O.Elems;
  case Kind::Object:
    return Members == O.Members;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string JsonValue::formatDouble(double D) {
  if (std::isnan(D) || std::isinf(D))
    return "null";
  // Shortest form that round-trips: try increasing precision until
  // strtod gives the bits back. Deterministic and locale-independent
  // (snprintf %g with the C locale the project runs under).
  char Buf[64];
  for (int Prec = 1; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, D);
    if (std::strtod(Buf, nullptr) == D)
      break;
  }
  std::string Out = Buf;
  // "3" would re-parse as an integer and break write/parse idempotence;
  // keep doubles visibly doubles.
  if (Out.find_first_of(".eE") == std::string::npos)
    Out += ".0";
  return Out;
}

namespace {

void writeEscaped(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\b':
      OS << "\\b";
      break;
    case '\f':
      OS << "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << static_cast<char>(C); // UTF-8 passes through raw
      }
    }
  }
  OS << '"';
}

void indentTo(std::ostream &OS, unsigned Indent) {
  for (unsigned J = 0; J < Indent; ++J)
    OS << ' ';
}

bool isScalar(const JsonValue &V) {
  return !V.isArray() && !V.isObject();
}

} // namespace

void JsonValue::write(std::ostream &OS, unsigned Indent) const {
  switch (K) {
  case Kind::Null:
    OS << "null";
    return;
  case Kind::Bool:
    OS << (B ? "true" : "false");
    return;
  case Kind::Number:
    if (IntNum)
      OS << I;
    else
      OS << formatDouble(D);
    return;
  case Kind::String:
    writeEscaped(OS, S);
    return;
  case Kind::Array: {
    if (Elems.empty()) {
      OS << "[]";
      return;
    }
    bool AllScalar = true;
    for (const JsonValue &E : Elems)
      AllScalar = AllScalar && isScalar(E);
    if (AllScalar) {
      OS << '[';
      for (size_t J = 0; J < Elems.size(); ++J) {
        if (J)
          OS << ", ";
        Elems[J].write(OS, 0);
      }
      OS << ']';
      return;
    }
    OS << "[\n";
    for (size_t J = 0; J < Elems.size(); ++J) {
      indentTo(OS, Indent + 2);
      Elems[J].write(OS, Indent + 2);
      OS << (J + 1 < Elems.size() ? ",\n" : "\n");
    }
    indentTo(OS, Indent);
    OS << ']';
    return;
  }
  case Kind::Object: {
    if (Members.empty()) {
      OS << "{}";
      return;
    }
    OS << "{\n";
    for (size_t J = 0; J < Members.size(); ++J) {
      indentTo(OS, Indent + 2);
      writeEscaped(OS, Members[J].first);
      OS << ": ";
      Members[J].second.write(OS, Indent + 2);
      OS << (J + 1 < Members.size() ? ",\n" : "\n");
    }
    indentTo(OS, Indent);
    OS << '}';
    return;
  }
  }
}

std::string JsonValue::toString() const {
  std::ostringstream OS;
  write(OS);
  OS << '\n';
  return OS.str();
}

void JsonValue::writeCompact(std::ostream &OS) const {
  switch (K) {
  case Kind::Null:
  case Kind::Bool:
  case Kind::Number:
  case Kind::String:
    write(OS, 0); // scalars never emit whitespace
    return;
  case Kind::Array:
    OS << '[';
    for (size_t J = 0; J < Elems.size(); ++J) {
      if (J)
        OS << ',';
      Elems[J].writeCompact(OS);
    }
    OS << ']';
    return;
  case Kind::Object:
    OS << '{';
    for (size_t J = 0; J < Members.size(); ++J) {
      if (J)
        OS << ',';
      writeEscaped(OS, Members[J].first);
      OS << ':';
      Members[J].second.writeCompact(OS);
    }
    OS << '}';
    return;
  }
}

std::string JsonValue::toCompactString() const {
  std::ostringstream OS;
  writeCompact(OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over the whole input string. Errors carry the
/// byte offset; good enough for files we generate ourselves.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  Expected<JsonValue> parse() {
    skipWs();
    JsonValue V;
    if (!parseValue(V))
      return makeError<JsonValue>(Err);
    skipWs();
    if (Pos != Text.size())
      return makeError<JsonValue>(at("trailing content after JSON value"));
    return V;
  }

private:
  std::string at(const std::string &What) {
    return "offset " + std::to_string(Pos) + ": " + What;
  }

  bool fail(const std::string &What) {
    if (Err.empty())
      Err = at(What);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t N = std::string(Lit).size();
    if (Text.compare(Pos, N, Lit) == 0) {
      Pos += N;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"')
      return parseString(Out);
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber(Out);
    if (literal("true")) {
      Out = JsonValue::boolean(true);
      return true;
    }
    if (literal("false")) {
      Out = JsonValue::boolean(false);
      return true;
    }
    if (literal("null")) {
      Out = JsonValue::null();
      return true;
    }
    return fail("unexpected character");
  }

  bool parseObject(JsonValue &Out) {
    ++Pos; // '{'
    Out = JsonValue::object();
    skipWs();
    if (consume('}'))
      return true;
    for (;;) {
      skipWs();
      JsonValue Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipWs();
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      if (Out.get(Key.asString()))
        return fail("duplicate object key '" + Key.asString() + "'");
      Out.set(Key.asString(), std::move(Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    ++Pos; // '['
    Out = JsonValue::array();
    skipWs();
    if (consume(']'))
      return true;
    for (;;) {
      skipWs();
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      Out.push(std::move(Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool hex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int J = 0; J < 4; ++J) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  void appendUtf8(std::string &S, unsigned CP) {
    if (CP < 0x80) {
      S += static_cast<char>(CP);
    } else if (CP < 0x800) {
      S += static_cast<char>(0xC0 | (CP >> 6));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      S += static_cast<char>(0xE0 | (CP >> 12));
      S += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (CP >> 18));
      S += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool parseString(JsonValue &Out) {
    ++Pos; // '"'
    std::string S;
    for (;;) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        break;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        S += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        S += '"';
        break;
      case '\\':
        S += '\\';
        break;
      case '/':
        S += '/';
        break;
      case 'n':
        S += '\n';
        break;
      case 't':
        S += '\t';
        break;
      case 'r':
        S += '\r';
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'u': {
        unsigned CP;
        if (!hex4(CP))
          return false;
        if (CP >= 0xD800 && CP <= 0xDBFF) {
          // High surrogate: must be followed by \uDC00..\uDFFF.
          if (!literal("\\u"))
            return fail("unpaired high surrogate");
          unsigned Lo;
          if (!hex4(Lo))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return fail("invalid low surrogate");
          CP = 0x10000 + ((CP - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (CP >= 0xDC00 && CP <= 0xDFFF) {
          return fail("unpaired low surrogate");
        }
        appendUtf8(S, CP);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    Out = JsonValue::str(std::move(S));
    return true;
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("malformed number");
    if (Text[Pos] == '0')
      ++Pos;
    else
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    bool IsInt = true;
    if (consume('.')) {
      IsInt = false;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digits required after decimal point");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsInt = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digits required in exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Tok = Text.substr(Start, Pos - Start);
    if (IsInt) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Tok.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = JsonValue::integer(static_cast<int64_t>(V));
        return true;
      }
      // Out-of-int64-range integers degrade to doubles.
    }
    double D = std::strtod(Tok.c_str(), nullptr);
    if (std::isinf(D) || std::isnan(D))
      return fail("number out of double range"); // 1e999 must not become null
    Out = JsonValue::number(D);
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

Expected<JsonValue> og::parseJson(const std::string &Text) {
  return Parser(Text).parse();
}

Expected<JsonValue> og::readJsonFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return makeError<JsonValue>("cannot open '" + Path + "'");
  std::stringstream Buf;
  Buf << In.rdbuf();
  Expected<JsonValue> V = parseJson(Buf.str());
  if (!V)
    return makeError<JsonValue>(Path + ": " + V.error());
  return V;
}

bool og::writeJsonFile(const std::string &Path, const JsonValue &V,
                       std::string *ErrorOut) {
  std::ofstream Out(Path);
  if (!Out) {
    if (ErrorOut)
      *ErrorOut = "cannot write '" + Path + "'";
    return false;
  }
  Out << V.toString();
  Out.flush();
  if (!Out) {
    if (ErrorOut)
      *ErrorOut = "I/O error writing '" + Path + "'";
    return false;
  }
  return true;
}
