//===- support/Hash.h - Deterministic content hashing ------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 64-bit FNV-1a accumulator, the substrate of every content key in the
/// system: the sample plan cache's stream keys (sample/SamplePlanCache.h)
/// and the sweep service's content-addressed cell keys (service/CellKey.h)
/// are FNV-1a folds over value-rendered struct fields. Two rules keep the
/// keys portable and stable:
///
///  - hash *values*, never object representations: field widths,
///    signedness and padding differ across the config structs, so every
///    integral field is widened to uint64 before folding (u64()), and
///    doubles are folded by their IEEE bit pattern (f64());
///  - every struct hashes through one helper owned by the struct's own
///    header (hashUarchConfig, hashRunOptions, hashPipelineConfig, ...),
///    so adding a field and forgetting to hash it is a review-visible
///    one-file mistake rather than a silent cross-subsystem drift.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_HASH_H
#define OG_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>

namespace og {

/// Incremental 64-bit FNV-1a. Cheap, deterministic across platforms and
/// compilers, and collision-safe enough for content addressing here: a
/// collision between two *different* cells would need ~2^32 distinct keys
/// in one store, and every consumer double-checks the full key alongside
/// the hash anyway.
class Fnv1a {
public:
  void bytes(const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 0x100000001b3ull;
    }
  }
  /// Folds the *value*, not the object representation (see file comment).
  void u64(uint64_t V) { bytes(&V, sizeof V); }
  /// Folds a double by its bit pattern (distinguishes -0.0 from 0.0; two
  /// NaNs with equal payloads hash alike, which is fine for config knobs
  /// that are never NaN by validation).
  void f64(double V) { bytes(&V, sizeof V); }
  uint64_t hash() const { return H; }

private:
  uint64_t H = 0xcbf29ce484222325ull;
};

} // namespace og

#endif // OG_SUPPORT_HASH_H
