//===- support/Table.cpp --------------------------------------------------==//

#include "support/Table.h"

#include <cassert>
#include <cstdio>
#include <ostream>

using namespace og;

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string TextTable::num(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string TextTable::pct(double Fraction, int Decimals) {
  return num(Fraction * 100.0, Decimals) + "%";
}

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      size_t Pad = Widths[I] - Row[I].size();
      if (I == 0) {
        // First column left-aligned.
        OS << Row[I] << std::string(Pad, ' ');
      } else {
        OS << std::string(Pad, ' ') << Row[I];
      }
      OS << (I + 1 == Row.size() ? "\n" : "  ");
    }
  };

  printRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  OS << std::string(Total > 2 ? Total - 2 : Total, '-') << "\n";
  for (const auto &Row : Rows)
    printRow(Row);
}
