//===- support/Rng.h - Deterministic RNG ------------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a tiny, fully deterministic generator. Workload input
/// generation and property tests use this so every run of the suite sees
/// exactly the same data (DESIGN.md: determinism).
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_RNG_H
#define OG_SUPPORT_RNG_H

#include <cstdint>
#include <cstdlib>

namespace og {

/// Seed override hook for randomized (property) tests: returns the value
/// of the \p Var environment variable when it is set and parses cleanly
/// (decimal, 0x hex, or 0 octal), \p Default otherwise. Tests print the
/// effective seed on failure so any run can be reproduced with
/// OGATE_SEED=<seed>.
inline uint64_t seedFromEnv(uint64_t Default,
                            const char *Var = "OGATE_SEED") {
  if (const char *S = std::getenv(Var)) {
    char *End = nullptr;
    uint64_t V = std::strtoull(S, &End, 0);
    if (End != S && *End == '\0')
      return V;
  }
  return Default;
}

/// SplitMix64 generator (public-domain constants).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound), Bound > 0.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] (inclusive), Lo <= Hi.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

private:
  uint64_t State;
};

} // namespace og

#endif // OG_SUPPORT_RNG_H
