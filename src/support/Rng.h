//===- support/Rng.h - Deterministic RNG ------------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a tiny, fully deterministic generator. Workload input
/// generation and property tests use this so every run of the suite sees
/// exactly the same data (DESIGN.md: determinism).
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_RNG_H
#define OG_SUPPORT_RNG_H

#include <cstdint>

namespace og {

/// SplitMix64 generator (public-domain constants).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound), Bound > 0.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] (inclusive), Lo <= Hi.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

private:
  uint64_t State;
};

} // namespace og

#endif // OG_SUPPORT_RNG_H
