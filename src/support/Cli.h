//===- support/Cli.h - Strict flag-value parsing -----------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strict flag-value parsers shared by every tool (ogate-sim,
/// ogate-opt, ogate-report, ogate-serve). One diagnostic shape and one
/// exit code for the whole family:
///
///   <tool>: bad <flag> value '<value>' (<what was wanted>)   -> exit 2
///
/// Exit 2 = malformed flag value, distinct from exit 1 (mode conflicts
/// and runtime failures) so scripts can tell usage mistakes apart. The
/// parsers are deliberately stricter than atoi/strtod call sites used to
/// be: the whole string must parse, ranges are checked, and overflow is
/// an error instead of a silent clamp or wrap — "--jobs=abc" never again
/// means "--jobs=1".
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_CLI_H
#define OG_SUPPORT_CLI_H

#include <cstdint>
#include <limits>
#include <string>

namespace og {

/// Flag parsing for one tool; carries the tool name every diagnostic is
/// prefixed with.
class CliTool {
public:
  explicit CliTool(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Prints the family's uniform diagnostic and exits 2.
  [[noreturn]] void badValue(const std::string &Flag, const std::string &Val,
                             const std::string &Want) const;

  /// Strict decimal parse for unsigned flag values: the whole string must
  /// be digits (no sign — strtoull silently wraps "-5" to a huge value),
  /// in [Min, Max], and must not overflow. Anything else exits 2.
  uint64_t
  parseU64(const std::string &Flag, const std::string &Val,
           const std::string &Want, uint64_t Min,
           uint64_t Max = std::numeric_limits<uint64_t>::max()) const;

  /// Strict decimal parse for signed flag values (--arg takes negatives).
  int64_t parseI64(const std::string &Flag, const std::string &Val,
                   const std::string &Want) const;

  /// Strict parse for scale-like flags: a finite decimal > 0.
  double parsePositive(const std::string &Flag, const std::string &Val,
                       const std::string &Want) const;

  /// Strict parse for tolerance-like flags: a finite decimal >= 0.
  double parseNonNegative(const std::string &Flag, const std::string &Val,
                          const std::string &Want) const;

private:
  std::string Name;
};

} // namespace og

#endif // OG_SUPPORT_CLI_H
