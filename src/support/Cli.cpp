//===- support/Cli.cpp ----------------------------------------------------==//

#include "support/Cli.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>

using namespace og;

void CliTool::badValue(const std::string &Flag, const std::string &Val,
                       const std::string &Want) const {
  std::cerr << Name << ": bad " << Flag << " value '" << Val << "' (" << Want
            << ")\n";
  std::exit(2);
}

uint64_t CliTool::parseU64(const std::string &Flag, const std::string &Val,
                           const std::string &Want, uint64_t Min,
                           uint64_t Max) const {
  if (Val.empty() || Val[0] < '0' || Val[0] > '9')
    badValue(Flag, Val, Want);
  errno = 0;
  char *End = nullptr;
  const unsigned long long V = std::strtoull(Val.c_str(), &End, 10);
  if (*End != '\0' || errno == ERANGE || V < Min || V > Max)
    badValue(Flag, Val, Want);
  return V;
}

int64_t CliTool::parseI64(const std::string &Flag, const std::string &Val,
                          const std::string &Want) const {
  const bool LeadOk =
      !Val.empty() &&
      ((Val[0] >= '0' && Val[0] <= '9') || (Val[0] == '-' && Val.size() > 1));
  if (!LeadOk)
    badValue(Flag, Val, Want);
  errno = 0;
  char *End = nullptr;
  const long long V = std::strtoll(Val.c_str(), &End, 10);
  if (*End != '\0' || errno == ERANGE)
    badValue(Flag, Val, Want);
  return V;
}

double CliTool::parsePositive(const std::string &Flag, const std::string &Val,
                              const std::string &Want) const {
  if (Val.empty() || Val[0] == '+' || Val[0] == ' ')
    badValue(Flag, Val, Want);
  errno = 0;
  char *End = nullptr;
  const double V = std::strtod(Val.c_str(), &End);
  if (End == Val.c_str() || *End != '\0' || errno == ERANGE ||
      !std::isfinite(V) || V <= 0.0)
    badValue(Flag, Val, Want);
  return V;
}

double CliTool::parseNonNegative(const std::string &Flag,
                                 const std::string &Val,
                                 const std::string &Want) const {
  if (Val.empty() || Val[0] == '+' || Val[0] == ' ')
    badValue(Flag, Val, Want);
  errno = 0;
  char *End = nullptr;
  const double V = std::strtod(Val.c_str(), &End);
  if (End == Val.c_str() || *End != '\0' || errno == ERANGE ||
      !std::isfinite(V) || V < 0.0)
    badValue(Flag, Val, Want);
  return V;
}
