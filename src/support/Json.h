//===- support/Json.h - Schema-agnostic JSON value model ---------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value model with a deterministic writer and a strict
/// parser, the substrate of the machine-readable report files under
/// src/report/. Design points that matter for regression gating:
///
///  - Objects preserve insertion order and the writer emits keys in that
///    order, so "same values => same bytes" holds and sweep reports stay
///    byte-identical across worker counts.
///  - Numbers keep their integerness: a value built from an (u)int64
///    prints without a decimal point and round-trips exactly, which is
///    what lets `ogate-report diff` compare counters with ==. Doubles
///    print with the shortest representation that parses back to the
///    same bits.
///  - NaN and infinity have no JSON encoding; they serialize as null
///    (the documented policy, asserted by ReportTest). Parsing never
///    produces them.
///  - write(parse(write(v))) == write(v): the writer/parser pair is
///    idempotent after the first write, so baselines can be regenerated
///    from parsed files without spurious diffs.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_JSON_H
#define OG_SUPPORT_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace og {

/// One JSON value (null / bool / number / string / array / object).
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  /// Defaults to null.
  JsonValue() = default;

  // --- Factories (named, so call sites read as the schema they build).
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B);
  /// An integer-valued number; prints without a decimal point. uint64
  /// values above INT64_MAX degrade to doubles (mirroring the parser's
  /// out-of-int64 handling) instead of wrapping negative.
  static JsonValue integer(int64_t I);
  static JsonValue integer(uint64_t U) {
    return U <= static_cast<uint64_t>(INT64_MAX)
               ? integer(static_cast<int64_t>(U))
               : number(static_cast<double>(U));
  }
  static JsonValue integer(int I) { return integer(static_cast<int64_t>(I)); }
  static JsonValue integer(unsigned U) { return integer(static_cast<int64_t>(U)); }
  /// A double-valued number. NaN/inf collapse to null (see file comment).
  static JsonValue number(double D);
  static JsonValue str(std::string S);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  /// True for numbers built from integers or parsed without '.'/exponent.
  bool isInteger() const { return K == Kind::Number && IntNum; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const;
  /// Numeric value as a double (integers convert).
  double asNumber() const;
  /// Numeric value as int64; must be isInteger().
  int64_t asInt() const;
  const std::string &asString() const;

  // --- Array access.
  size_t size() const;
  const JsonValue &at(size_t I) const;
  /// Appends to an array value.
  void push(JsonValue V);

  // --- Object access. Keys keep insertion order.
  /// Sets \p Key to \p V (replacing an existing entry in place).
  void set(const std::string &Key, JsonValue V);
  /// Member lookup; nullptr when absent (or not an object).
  const JsonValue *get(const std::string &Key) const;
  const std::vector<std::pair<std::string, JsonValue>> &members() const;

  /// Serializes with 2-space indentation. Deterministic: equal values
  /// produce equal bytes. Arrays whose elements are all scalars print on
  /// one line; everything else is multi-line.
  void write(std::ostream &OS, unsigned Indent = 0) const;

  /// write() into a string, with a trailing newline (file form).
  std::string toString() const;

  /// Serializes without any whitespace or newlines — one line no matter
  /// how nested. Same determinism contract as write(); this is the wire
  /// form of the sweep service's line-delimited protocol
  /// (tools/ogate-serve), where a value must never contain '\n'.
  void writeCompact(std::ostream &OS) const;

  /// writeCompact() into a string (no trailing newline — the protocol
  /// layer appends the line terminator).
  std::string toCompactString() const;

  /// Structural equality. Numbers with different integerness never
  /// compare equal (integer 3 prints "3", double 3.0 prints "3.0");
  /// doubles compare by their serialized form, so -0.0 == 0.0 iff they
  /// print identically (they do not).
  bool operator==(const JsonValue &O) const;
  bool operator!=(const JsonValue &O) const { return !(*this == O); }

  /// The shortest decimal form of \p D that parses back to the same
  /// double; "null" for NaN/inf (exposed for tests).
  static std::string formatDouble(double D);

private:
  Kind K = Kind::Null;
  bool B = false;
  bool IntNum = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Parses one JSON document (trailing whitespace allowed, anything else
/// after the value is an error). Strict: no comments, no trailing commas,
/// no NaN/inf literals.
Expected<JsonValue> parseJson(const std::string &Text);

/// Reads and parses \p Path; the error names the file.
Expected<JsonValue> readJsonFile(const std::string &Path);

/// Writes \p V to \p Path with a trailing newline. Returns false (and
/// leaves an error in \p ErrorOut when non-null) on I/O failure.
bool writeJsonFile(const std::string &Path, const JsonValue &V,
                   std::string *ErrorOut = nullptr);

} // namespace og

#endif // OG_SUPPORT_JSON_H
