//===- support/Statistic.cpp ----------------------------------------------==//

#include "support/Statistic.h"

#include <ostream>

using namespace og;

void StatisticSet::add(const std::string &Name, uint64_t Delta) {
  for (auto &E : Entries) {
    if (E.first == Name) {
      E.second += Delta;
      return;
    }
  }
  Entries.emplace_back(Name, Delta);
}

uint64_t StatisticSet::get(const std::string &Name) const {
  for (const auto &E : Entries)
    if (E.first == Name)
      return E.second;
  return 0;
}

void StatisticSet::clear() { Entries.clear(); }

void StatisticSet::print(std::ostream &OS) const {
  for (const auto &E : Entries)
    OS << E.second << "\t" << E.first << "\n";
}
