//===- support/Statistic.h - Named counters --------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny LLVM-Statistic-style registry of named counters. Passes bump
/// counters while running; tools dump them in deterministic (registration)
/// order. Unlike LLVM's, these are instance-based (a StatisticSet is passed
/// around explicitly) so tests stay hermetic.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_STATISTIC_H
#define OG_SUPPORT_STATISTIC_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace og {

/// A set of named uint64 counters with deterministic dump order.
class StatisticSet {
public:
  /// Adds \p Delta to the counter named \p Name, creating it at zero first
  /// if needed.
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Returns the current value of \p Name (0 if never touched).
  uint64_t get(const std::string &Name) const;

  /// Removes all counters.
  void clear();

  /// All counters in first-touch order.
  const std::vector<std::pair<std::string, uint64_t>> &entries() const {
    return Entries;
  }

  /// Prints "value  name" lines, LLVM -stats style.
  void print(std::ostream &OS) const;

private:
  std::vector<std::pair<std::string, uint64_t>> Entries;
};

} // namespace og

#endif // OG_SUPPORT_STATISTIC_H
