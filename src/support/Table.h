//===- support/Table.h - Text table printer ---------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aligned text tables for the benchmark harnesses that regenerate the
/// paper's tables/figures. Columns are right-aligned except the first.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_TABLE_H
#define OG_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace og {

/// A simple aligned text table: a header row plus data rows.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  /// Appends a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Formats a double with \p Decimals digits, e.g. for percentages.
  static std::string num(double Value, int Decimals = 2);

  /// Formats "12.34%".
  static std::string pct(double Fraction, int Decimals = 2);

  /// Prints the table with column alignment and a separator rule.
  void print(std::ostream &OS) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace og

#endif // OG_SUPPORT_TABLE_H
