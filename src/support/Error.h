//===- support/Error.h - Lightweight Expected<T> ----------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal Expected<T>: either a value or a diagnostic string. The project
/// follows the LLVM convention of no exceptions; recoverable errors (e.g.
/// assembler input) surface through this type, programmatic errors through
/// assert.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_ERROR_H
#define OG_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace og {

/// Either a T or an error message. Unlike llvm::Expected there is no
/// must-check enforcement; keep call sites simple.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs an error. Use the makeError free function for clarity.
  struct ErrorTag {};
  Expected(ErrorTag, std::string Message) : Message(std::move(Message)) {}

  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing an error Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing an error Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing an error Expected");
    return &*Value;
  }

  /// The diagnostic; only valid when in the error state.
  const std::string &error() const {
    assert(!Value && "no error present");
    return Message;
  }

private:
  std::optional<T> Value;
  std::string Message;
};

/// Builds an error-state Expected<T> carrying \p Message.
template <typename T> Expected<T> makeError(std::string Message) {
  return Expected<T>(typename Expected<T>::ErrorTag{}, std::move(Message));
}

} // namespace og

#endif // OG_SUPPORT_ERROR_H
