//===- support/MathExtras.h - Bit and integer helpers ----------*- C++ -*-===//
//
// Part of the ogate project: a reproduction of "Software-Controlled
// Operand-Gating" (Canal, Gonzalez, Smith; CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small integer utilities used throughout the project: sign extension,
/// truncation to a byte width, and "how many bytes does this value/range
/// need" queries. All narrow-value reasoning in the paper is in terms of
/// 2's-complement sign-extended byte widths (Section 2.4), so these helpers
/// are the single source of truth for that arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SUPPORT_MATHEXTRAS_H
#define OG_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace og {

/// Sign-extends the low \p Bits bits of \p V to a full int64_t.
inline int64_t signExtend(uint64_t V, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "bit count out of range");
  if (Bits == 64)
    return static_cast<int64_t>(V);
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  uint64_t Sign = uint64_t(1) << (Bits - 1);
  V &= Mask;
  return static_cast<int64_t>((V ^ Sign) - Sign);
}

/// Zero-extends the low \p Bits bits of \p V.
inline uint64_t zeroExtend(uint64_t V, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "bit count out of range");
  if (Bits == 64)
    return V;
  return V & ((uint64_t(1) << Bits) - 1);
}

/// Reinterprets \p V as a \p Bytes-byte 2's-complement value: keeps the low
/// 8*Bytes bits and sign-extends them to 64 bits. This is exactly what a
/// width-limited datapath produces for its result (DESIGN.md, narrow-op
/// semantics).
inline int64_t truncSignExtend(int64_t V, unsigned Bytes) {
  assert(Bytes >= 1 && Bytes <= 8 && "byte count out of range");
  return signExtend(static_cast<uint64_t>(V), Bytes * 8);
}

/// Returns true if \p V is exactly representable as a sign-extended
/// \p Bytes-byte value.
inline bool fitsSignedBytes(int64_t V, unsigned Bytes) {
  return truncSignExtend(V, Bytes) == V;
}

/// Returns true if \p V is representable as a zero-extended \p Bytes-byte
/// value, i.e. 0 <= V < 2^(8*Bytes).
inline bool fitsUnsignedBytes(int64_t V, unsigned Bytes) {
  assert(Bytes >= 1 && Bytes <= 8 && "byte count out of range");
  if (V < 0)
    return false;
  if (Bytes == 8)
    return true;
  return static_cast<uint64_t>(V) < (uint64_t(1) << (Bytes * 8));
}

/// Minimal number of bytes (1..8) such that \p V survives
/// truncate-and-sign-extend. This is the "significant bytes" definition used
/// by the hardware significance-compression scheme [Canal et al., MICRO'00].
///
/// Branch-free apart from the zero test: folding the sign into the
/// magnitude (V ^ (V >> 63)) reduces the query to "position of the highest
/// bit that differs from the sign", so one count-leading-zeros plus a
/// round-up gives the byte count. This sits on the engine's per-value hot
/// path (every produced/stored value feeds the Figure-12 histogram).
inline unsigned significantBytes(int64_t V) {
#if defined(__GNUC__) || defined(__clang__)
  uint64_t X = static_cast<uint64_t>(V) ^ static_cast<uint64_t>(V >> 63);
  if (X == 0)
    return 1; // 0 and -1 fit in one byte
  // Highest set bit of X is the highest bit differing from the sign; one
  // more bit is needed to keep the sign itself. X's bit 63 is always clear,
  // so the result never exceeds 8.
  unsigned Bits = 64 - static_cast<unsigned>(__builtin_clzll(X)) + 1;
  return (Bits + 7) / 8;
#else
  for (unsigned Bytes = 1; Bytes < 8; ++Bytes)
    if (fitsSignedBytes(V, Bytes))
      return Bytes;
  return 8;
#endif
}

/// Minimal number of bytes (1..8) needed to hold every value in
/// [\p Min, \p Max] as a sign-extended narrow value. Requires Min <= Max.
inline unsigned bytesForSignedRange(int64_t Min, int64_t Max) {
  assert(Min <= Max && "malformed range");
  unsigned A = significantBytes(Min);
  unsigned B = significantBytes(Max);
  return A > B ? A : B;
}

/// Saturating addition on int64_t (no UB on overflow).
inline int64_t saturatingAdd(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) + B;
  if (R > INT64_MAX)
    return INT64_MAX;
  if (R < INT64_MIN)
    return INT64_MIN;
  return static_cast<int64_t>(R);
}

/// Saturating subtraction on int64_t (no UB on overflow).
inline int64_t saturatingSub(int64_t A, int64_t B) {
  __int128 R = static_cast<__int128>(A) - B;
  if (R > INT64_MAX)
    return INT64_MAX;
  if (R < INT64_MIN)
    return INT64_MIN;
  return static_cast<int64_t>(R);
}

/// Wrapping (2's-complement) arithmetic helpers; signed overflow is UB in
/// C++, so route through unsigned.
inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

} // namespace og

#endif // OG_SUPPORT_MATHEXTRAS_H
