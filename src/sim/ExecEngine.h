//===- sim/ExecEngine.h - Pre-decoded execution engine -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flattened program representation the interpreter main loop
/// dispatches over. DecodedProgram lowers a verified Program's nested
/// Funcs[f].Blocks[b].Insts[i] structure into one contiguous array of
/// pre-decoded instructions: operand metadata (source registers, read
/// flags, class/width histogram slots) is resolved once, synthetic PCs are
/// assigned, and every control transfer — sequential advance, taken/
/// not-taken branch, call, and the structural fallthrough chains through
/// empty blocks — is pre-resolved to a flat instruction index plus the
/// exact list of basic-block-count increments the nested interpreter would
/// have performed along the way. Building it costs one pass over the
/// static code; it is immutable afterwards and can be cached and shared
/// across any number of runs (and threads) of the same Program.
///
/// The decode borrows nothing from the Program but pointers: the source
/// Program must outlive the DecodedProgram, and the per-instruction
/// `const Instruction *` handed to trace sinks points into it.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SIM_EXECENGINE_H
#define OG_SIM_EXECENGINE_H

#include "program/Program.h"
#include "sim/TraceSink.h"

#include <cstdint>
#include <vector>

namespace og {

class Machine;
struct RunOptions;
struct RunResult;

/// Architectural engine state at a dynamic-instruction boundary: the
/// registers, call stack, and position just before instruction DynIndex
/// executes. Together with a Machine whose memory holds the same
/// boundary's contents, this is everything a run needs to continue —
/// sample/ captures one per measurement window (plus memory deltas) and
/// replays windows independently through runProgramResumed. Memory is
/// deliberately not carried here: checkpoint chains share and delta-
/// compress it (sample/SampleRunner.h), while registers and frames are
/// small enough to snapshot whole.
struct ArchState {
  uint64_t DynIndex = 0; ///< dynamic index of the next (unexecuted) inst
  int32_t Flat = -1;     ///< flat index of that instruction
  int64_t Regs[NumRegs] = {};
  /// Call stack: the flat index of each active Jsr, outermost first
  /// (what Frame::JsrFlat holds inside the engine). Callee-saved
  /// snapshots are not carried — resumed runs reject CheckCalleeSaved.
  std::vector<int32_t> Frames;
  uint64_t OutputLen = 0; ///< output-stream length at DynIndex
};

/// Dense dispatch token assigned to every instruction at decode time. The
/// engine's inner loop dispatches on this instead of the sparser Op space:
/// one token per loop shape (all evalAluOp operations share HAlu), which
/// keeps the jump table dense for the switch fallback and one-load-indexed
/// for the computed-goto (threaded) path.
enum DHandler : uint8_t {
  HAlu = 0,
  HLdi,
  HMsk,
  HLd,
  HSt,
  HBr,
  HCondBr,
  HJsr,
  HRet,
  HHalt,
  HOut,
  HNop,
  HNumHandlers,
};

/// A Program flattened for execution: one contiguous instruction array
/// with pre-resolved control-flow edges and operand metadata.
class DecodedProgram {
public:
  /// Code addresses start here; 4 bytes per instruction, functions laid
  /// out in declaration order. Public so architectural-checkpoint
  /// consumers (sample/) can map a record Pc back to its flat index:
  /// flat == (Pc - CodeBase) / 4 by construction.
  static constexpr uint64_t CodeBase = 0x1000;

  /// Why following an edge terminates the run instead of landing on an
  /// instruction.
  enum class EdgeFault : uint8_t {
    None = 0,
    FellOffBlock, ///< fallthrough chain reached a block without successor
    EmptyCycle,   ///< fallthrough chain exceeded the empty-hop limit
  };

  /// One pre-resolved control transfer. Following an edge increments the
  /// block counts in [CountsBegin, CountsEnd) — the blocks the nested
  /// interpreter would have entered, including hops through empty blocks —
  /// and then either faults or continues at flat index Target.
  struct Edge {
    int32_t Target = -1;    ///< flat instruction index; -1 when faulting
    uint32_t CountsBegin = 0, CountsEnd = 0; ///< range into countedBlocks()
    EdgeFault Fault = EdgeFault::None;
    /// The architectural next-PC of the transfer, computed from the
    /// pre-chain position exactly as the nested interpreter did (a
    /// position one past a block end reports Pc + 4).
    uint64_t NextPc = 0;
  };

  /// One pre-decoded instruction. Field semantics match isa/Instruction;
  /// everything derivable from OpInfo or program layout is resolved here
  /// so the dispatch loop never touches the nested structure.
  struct DInst {
    const Instruction *I = nullptr; ///< source instruction (for sinks)
    uint64_t Pc = 0;
    int64_t Imm = 0;
    int32_t Func = 0, Block = 0, Index = 0;
    /// Control continues here when the instruction neither jumps nor
    /// stops; for a conditional branch this is the not-taken edge, for a
    /// call it is the return-site edge its Ret will follow.
    Edge Seq;
    /// Taken-branch / unconditional-branch / call-entry edge.
    Edge Taken;
    Op Opc = Op::Nop;
    Width W = Width::Q;
    uint8_t Handler = HNop; ///< DHandler dispatch token for Opc
    Reg Rd = 0, Ra = 0, Rb = 0;
    uint8_t NumSrcs = 0;
    Reg Srcs[3] = {};
    bool UseImm = false, ReadsRa = false, ReadsRb = false;
    bool RdIsInput = false;
    uint8_t ClassIdx = 0;  ///< ExecStats::ClassWidth row
    uint8_t WidthIdx = 0;  ///< ExecStats::ClassWidth column
    uint8_t WidthBytes = 8;
  };

  /// Flattens \p P. The Program must stay alive (and unmodified) for the
  /// lifetime of this object.
  explicit DecodedProgram(const Program &P);

  const Program &program() const { return *Prog; }

  const std::vector<DInst> &insts() const { return Insts; }
  size_t numInsts() const { return Insts.size(); }

  /// (function, block) pairs referenced by Edge count ranges.
  const std::vector<std::pair<int32_t, int32_t>> &countedBlocks() const {
    return Counted;
  }

  /// Flat block-count slot per countedBlocks() entry (engine internal:
  /// the run loop counts into one dense array and scatters at the end).
  const std::vector<uint32_t> &countSlots() const { return CountSlots; }
  size_t numBlockSlots() const { return NumBlockSlots; }

  /// Dense slot of (\p Func, \p Block) in the flat block-count space —
  /// the index basic-block-vector consumers (sample/IntervalProfiler)
  /// accumulate into. Inverse of countedBlocks()[slot].
  size_t blockSlot(int32_t Func, int32_t Block) const {
    return SlotBase[Func] + static_cast<size_t>(Block);
  }

  /// The edge entering \p Func at its entry block (counts the entry block
  /// and any structural fallthrough chain from it).
  const Edge &funcEntry(int32_t Func) const { return FuncEntries[Func]; }

  /// Program entry edge.
  const Edge &entry() const { return FuncEntries[Prog->EntryFunc]; }

  /// Sizes \p Counts to the program shape ([func][block]) and zeroes it.
  void initBlockCounts(std::vector<std::vector<uint64_t>> &Counts) const;

private:
  const Program *Prog;
  std::vector<DInst> Insts;
  std::vector<std::pair<int32_t, int32_t>> Counted;
  std::vector<uint32_t> CountSlots;
  std::vector<size_t> SlotBase; ///< per-function base into the flat slots
  size_t NumBlockSlots = 0;
  std::vector<Edge> FuncEntries;
};

/// Executes the decoded program under \p Options (see sim/Interpreter.h
/// for the options and result types). Equivalent to runProgram on the
/// source Program — bit-identical stats, output, and trace stream — but
/// skips the per-run decode, so repeated runs of one program amortize it.
RunResult runProgram(const DecodedProgram &DP, const RunOptions &Options);

/// One half-open range [Begin, End) of dynamic-instruction indices (0 =
/// the first executed instruction) inside which a windowed run delivers
/// the trace to its sink.
///
/// The first LightLen instructions of the window are delivered as
/// *light* records: only the fields a structure-warming or profiling
/// consumer needs (I, Func, Block, Pc, SeqPc, NextPc, IsMem/MemAddr,
/// IsBranch/Taken, plus the Result/WroteDest of the executed operation)
/// are filled — NumSrcs stays 0 and the per-operand register-file reads
/// are skipped, which is most of a full record's cost. Sampled
/// simulation uses this for warm-up shadows and checkpoint-capture
/// passes, and — because Func/Block are filled — for the interval
/// profiling pass itself (IntervalProfiler reads nothing a light record
/// lacks), all of which would be wasteful at full-record (let alone
/// full-simulation) price. A mis-sorted or overlapping window list makes
/// runProgramWindowed throw std::invalid_argument (always on, not an
/// assert — Release sweeps must not silently diverge).
struct SampleWindow {
  uint64_t Begin = 0;
  uint64_t End = 0;
  uint64_t LightLen = 0; ///< light-record prefix length (<= End - Begin)
};

/// Executes \p DP exactly like runProgram — identical functional result
/// (status, stats, output) — but hands Options.Sink only the instructions
/// whose dynamic index falls inside one of \p Windows. Outside the
/// windows the loop runs at no-sink speed (no DynInst materialization),
/// which is what makes sampled estimation cheap: fast-forward is ~3x
/// cheaper than a sink-fed run and ~9x cheaper than the full OoO+power
/// stack. \p Windows must be sorted by Begin and pairwise disjoint;
/// empty windows are skipped. The batch the sink sees flushes at every
/// window end, so (unlike a full run) batches shorter than
/// TraceBatchCapacity can appear mid-stream — one per window.
/// \p WindowEntry, when given, must parallel \p Windows: at the dynamic
/// index where window i begins, the machine's register file is replaced
/// with (*WindowEntry)[i]->Regs (null entries inject nothing). Sampled
/// replay-vs-fast-forward comparisons use this to pin both modes to the
/// same captured window-entry registers, so their detailed record
/// streams match bit-for-bit even where the binaries' dead register
/// bytes diverge. Injection breaks the callee-saved snapshot contract,
/// so combining it with CheckCalleeSaved throws.
RunResult runProgramWindowed(
    const DecodedProgram &DP, const RunOptions &Options,
    const std::vector<SampleWindow> &Windows,
    const std::vector<const ArchState *> *WindowEntry = nullptr);

/// Continues a run from \p From instead of the program entry: \p M must
/// already hold the boundary's memory image (and any register/output
/// state the caller wants observed — the engine overwrites registers
/// from From.Regs and touches nothing else before dispatching). The run
/// delivers \p Windows to Options.Sink exactly as runProgramWindowed
/// would have from dynamic index From.DynIndex onward, and
/// Options.Fuel counts from the resume point — so Fuel = End −
/// From.DynIndex ends the run (status OutOfFuel) precisely at a
/// window's end. Stats.DynInsts continues from From.DynIndex; class/
/// width/value histograms, block counts, and Output cover only the
/// resumed stretch. Requires a sink and a nonempty window list (this
/// entry point exists for window replay, not general resumption) and
/// throws std::invalid_argument on CheckCalleeSaved (the engine cannot
/// reconstruct callee-saved snapshots for inherited frames).
RunResult runProgramResumed(const DecodedProgram &DP,
                            const RunOptions &Options,
                            const std::vector<SampleWindow> &Windows,
                            const ArchState &From, Machine &M);

} // namespace og

#endif // OG_SIM_EXECENGINE_H
