//===- sim/ExecEngine.cpp -------------------------------------------------==//
//
// DecodedProgram construction and the flat dispatch loop. The contract is
// bit-exact equivalence with the historical nested interpreter: the same
// RunResult (status, message, stats, output) and the same DynInst stream,
// for every program including ones that fault or run out of fuel.
//
//===----------------------------------------------------------------------===//

#include "sim/ExecEngine.h"

#include "sim/AluOps.h"
#include "sim/Interpreter.h"
#include "sim/Superblock.h"
#include "support/MathExtras.h"

#include <cassert>
#include <stdexcept>

using namespace og;

namespace {

/// Flush threshold for light (warming-shadow) records in windowed runs:
/// 256 records keep the working set of the engine-write / warmer-read
/// loop at ~24KB instead of the full batch buffer's ~390KB.
constexpr size_t LightBatchCapacity = 256;

/// Dispatch token for \p O (see DHandler in the header).
uint8_t handlerFor(Op O) {
  switch (O) {
  case Op::Ldi:
    return HLdi;
  case Op::Msk:
    return HMsk;
  case Op::Ld:
    return HLd;
  case Op::St:
    return HSt;
  case Op::Br:
    return HBr;
  case Op::Beq:
  case Op::Bne:
  case Op::Blt:
  case Op::Ble:
  case Op::Bgt:
  case Op::Bge:
    return HCondBr;
  case Op::Jsr:
    return HJsr;
  case Op::Ret:
    return HRet;
  case Op::Halt:
    return HHalt;
  case Op::Out:
    return HOut;
  case Op::Nop:
    return HNop;
  default:
    return HAlu;
  }
}

} // namespace

DecodedProgram::DecodedProgram(const Program &P) : Prog(&P) {
  const size_t NumFuncs = P.Funcs.size();

  // Dense layout: per-block instruction bases within each function, the
  // function PC bases, and each function's base into the flat array.
  std::vector<std::vector<size_t>> BlockBase(NumFuncs);
  std::vector<uint64_t> FuncPcBase(NumFuncs);
  std::vector<size_t> GlobalBase(NumFuncs);
  uint64_t Pc = CodeBase;
  size_t Flat = 0;
  for (const Function &F : P.Funcs) {
    FuncPcBase[F.Id] = Pc;
    GlobalBase[F.Id] = Flat;
    auto &Bases = BlockBase[F.Id];
    Bases.resize(F.Blocks.size());
    size_t N = 0;
    for (const BasicBlock &BB : F.Blocks) {
      Bases[BB.Id] = N;
      N += BB.Insts.size();
    }
    Pc += N * 4;
    Flat += N;
  }

  // Flat slot per (function, block) for the engine's block-count array.
  SlotBase.resize(NumFuncs);
  NumBlockSlots = 0;
  for (const Function &F : P.Funcs) {
    SlotBase[F.Id] = NumBlockSlots;
    NumBlockSlots += F.Blocks.size();
  }

  auto pcOf = [&](int32_t F, int32_t B, int32_t I) {
    return FuncPcBase[F] +
           (BlockBase[F][B] + static_cast<size_t>(I)) * 4;
  };
  auto flatOf = [&](int32_t F, int32_t B, int32_t I) {
    return static_cast<int32_t>(GlobalBase[F] + BlockBase[F][B] +
                                static_cast<size_t>(I));
  };
  auto countBlock = [&](int32_t F, int32_t B) {
    Counted.emplace_back(F, B);
    CountSlots.push_back(static_cast<uint32_t>(SlotBase[F] + B));
  };

  // Structural fallthrough from an exhausted block: hop FallthroughSucc
  // links, counting every block entered, until a block with instructions
  // is reached — or the chain faults. Mirrors the nested loop exactly,
  // including the empty-hop limit that detects cycles of empty blocks.
  auto chain = [&](int32_t F, int32_t B, Edge &E) {
    const Function &Fn = P.Funcs[F];
    size_t EmptyHops = 0;
    int32_t Cur = B;
    while (true) {
      const BasicBlock &BB = Fn.Blocks[Cur];
      if (BB.FallthroughSucc == NoTarget) {
        E.Fault = EdgeFault::FellOffBlock;
        return;
      }
      if (++EmptyHops > Fn.Blocks.size() + 1) {
        E.Fault = EdgeFault::EmptyCycle;
        return;
      }
      Cur = BB.FallthroughSucc;
      countBlock(F, Cur);
      if (!Fn.Blocks[Cur].Insts.empty()) {
        E.Target = flatOf(F, Cur, 0);
        return;
      }
    }
  };

  // A jump to the start of a block: counts the block itself (the nested
  // interpreter bumped the count on every taken transfer), then chains if
  // it is empty. An out-of-range block id (possible only in unverified
  // programs) becomes a deterministic fault edge instead of wild reads.
  auto jumpEdge = [&](int32_t F, int32_t B) {
    Edge E;
    E.CountsBegin = E.CountsEnd = static_cast<uint32_t>(Counted.size());
    if (B < 0 || static_cast<size_t>(B) >= P.Funcs[F].Blocks.size()) {
      E.Fault = EdgeFault::FellOffBlock;
      return E;
    }
    E.NextPc = pcOf(F, B, 0);
    countBlock(F, B);
    if (P.Funcs[F].Blocks[B].Insts.empty())
      chain(F, B, E);
    else
      E.Target = flatOf(F, B, 0);
    E.CountsEnd = static_cast<uint32_t>(Counted.size());
    return E;
  };

  // Sequential advance to (B, NextI): a direct neighbor while inside the
  // block, the fallthrough chain once past its end. No count for the
  // block itself — re-entering a block mid-way (returns) never counted.
  auto seqEdge = [&](int32_t F, int32_t B, int32_t NextI) {
    Edge E;
    E.CountsBegin = static_cast<uint32_t>(Counted.size());
    E.NextPc = pcOf(F, B, NextI);
    const BasicBlock &BB = P.Funcs[F].Blocks[B];
    if (static_cast<size_t>(NextI) < BB.Insts.size())
      E.Target = flatOf(F, B, NextI);
    else
      chain(F, B, E);
    E.CountsEnd = static_cast<uint32_t>(Counted.size());
    return E;
  };

  // Function entries first so call edges can copy them.
  FuncEntries.reserve(NumFuncs);
  for (const Function &F : P.Funcs) {
    if (F.Blocks.empty()) {
      // Degenerate (unverified) function: entering it can only fall off.
      Edge E;
      E.CountsBegin = E.CountsEnd = static_cast<uint32_t>(Counted.size());
      E.Fault = EdgeFault::FellOffBlock;
      FuncEntries.push_back(E);
      continue;
    }
    FuncEntries.push_back(jumpEdge(F.Id, F.EntryBlock));
  }

  Insts.reserve(Flat);
  for (const Function &F : P.Funcs) {
    for (const BasicBlock &BB : F.Blocks) {
      for (size_t K = 0; K < BB.Insts.size(); ++K) {
        const Instruction &I = BB.Insts[K];
        const OpInfo &Info = I.info();
        DInst D;
        D.I = &I;
        D.Func = F.Id;
        D.Block = BB.Id;
        D.Index = static_cast<int32_t>(K);
        D.Pc = pcOf(F.Id, BB.Id, D.Index);
        D.Imm = I.Imm;
        D.Opc = I.Opc;
        D.W = I.W;
        D.Handler = handlerFor(I.Opc);
        D.Rd = I.Rd;
        D.Ra = I.Ra;
        D.Rb = I.Rb;
        D.UseImm = I.UseImm;
        D.ReadsRa = Info.ReadsRa;
        D.ReadsRb = Info.ReadsRb;
        D.RdIsInput = Info.RdIsInput;
        D.NumSrcs = static_cast<uint8_t>(I.numRegSources());
        for (unsigned S = 0; S < D.NumSrcs; ++S)
          D.Srcs[S] = I.regSource(S);
        D.ClassIdx = static_cast<uint8_t>(Info.Class);
        D.WidthIdx = static_cast<uint8_t>(I.W);
        D.WidthBytes = static_cast<uint8_t>(widthBytes(I.W));

        if (Info.IsCondBranch) {
          D.Taken = jumpEdge(F.Id, I.Target);
          D.Seq = jumpEdge(F.Id, BB.FallthroughSucc);
        } else if (I.Opc == Op::Br) {
          D.Taken = jumpEdge(F.Id, I.Target);
          D.Seq = seqEdge(F.Id, BB.Id, D.Index + 1); // unused (terminator)
        } else if (I.Opc == Op::Jsr) {
          D.Taken = FuncEntries[I.Callee]; // call entry
          D.Seq = seqEdge(F.Id, BB.Id, D.Index + 1); // the Ret's edge
        } else {
          D.Seq = seqEdge(F.Id, BB.Id, D.Index + 1);
        }
        Insts.push_back(D);
      }
    }
  }
}

void DecodedProgram::initBlockCounts(
    std::vector<std::vector<uint64_t>> &Counts) const {
  Counts.resize(Prog->Funcs.size());
  for (const Function &F : Prog->Funcs)
    Counts[F.Id].assign(F.Blocks.size(), 0);
}

namespace {

struct Frame {
  int32_t JsrFlat;            ///< flat index of the calling Jsr
  int64_t SavedCalleeRegs[8]; ///< s0..s5, fp, sp (checked mode)
};

} // namespace

/// Dispatch plumbing. Under OG_HAS_COMPUTED_GOTO every handler carries a
/// computed-goto label right next to its switch case (jumping into a
/// switch body is legal — no initialization is skipped), so the threaded
/// and switch strategies share one loop body and stay bit-identical by
/// construction. The Threaded template parameter selects the strategy at
/// compile time; builds without computed goto compile the macros away and
/// every mode runs the portable switch.
#ifdef OG_HAS_COMPUTED_GOTO
#define OG_LBL(L) L:
#define OG_GOTO_DISPATCH(Tbl, H)                                               \
  do {                                                                         \
    if constexpr (Threaded)                                                    \
      goto *Tbl[H];                                                            \
  } while (0)
#else
#define OG_LBL(L)
#define OG_GOTO_DISPATCH(Tbl, H)                                               \
  do {                                                                         \
  } while (0)
#endif

/// Advance to the next fused instruction. Threaded builds jump straight
/// to its handler (token threading: one indirect branch per handler site,
/// so the predictor learns per-handler successor patterns); the portable
/// path re-enters the dispatch loop's switch.
#define OG_SB_NEXT()                                                           \
  {                                                                            \
    ++SP;                                                                      \
    OG_GOTO_DISPATCH(SbTbl, SP->H);                                            \
    continue;                                                                  \
  }

/// Superblock ALU handler, generated per opcode and operand shape so
/// evalAluOpImpl's switch constant-folds to the one op's arithmetic
/// (sim/AluOps.h) and the Cmov-only old-Rd read vanishes elsewhere.
#define OG_SB_ALU_CASE(OP, SUF, BEXPR)                                         \
  case SbH_##OP##_##SUF:                                                       \
    OG_LBL(SBL_##OP##_##SUF) {                                                 \
      const SInst &SI = *SP;                                                   \
      int64_t Val =                                                            \
          evalAluOpImpl(Op::OP, SI.WidthBytes, M.readReg(SI.Ra), (BEXPR),      \
                        aluReadsOldRd(Op::OP) ? M.readReg(SI.Rd) : 0);         \
      M.writeReg(SI.Rd, Val);                                                  \
      ++Vsb[significantBytes(Val)];                                            \
      OG_SB_NEXT()                                                             \
    }
#define OG_SB_ALU_CASES(OP)                                                    \
  OG_SB_ALU_CASE(OP, RR, M.readReg(SI.Rb))                                     \
  OG_SB_ALU_CASE(OP, RI, SI.Imm)

/// Superblock branch handler: COND is the continue-predicate ("stay on
/// trace"); leaving the trace reconciles and resumes generically.
#define OG_SB_BR_CASE(NAME, COND)                                              \
  case SbH_Br##NAME:                                                           \
    OG_LBL(SBL_Br##NAME) {                                                     \
      int64_t A = M.readReg(SP->Ra);                                           \
      if (!(COND))                                                             \
        goto SbSideExit;                                                       \
      if (SP->Flags & SbFlagLast)                                              \
        goto SbPassEnd;                                                        \
      OG_SB_NEXT()                                                             \
    }

namespace {

#ifdef OG_HAS_COMPUTED_GOTO
// An indirect `goto *Tbl[...]` makes GCC assume any address-taken label in
// the function is a possible target, so locals live around the *other*
// dispatch table's labels are flagged maybe-uninitialized. The generic and
// superblock tables are disjoint by construction; silence the false
// positive for this function only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// The dispatch loop. \p HasSink statically selects whether DynInst
/// records are materialized at all; \p Windowed additionally gates the
/// materialization at runtime on the sample windows (\p Windows), so the
/// out-of-window stretches run at no-sink speed; \p Threaded selects
/// computed-goto token threading over the portable switch; \p Resumed
/// continues from \p Resume's architectural state in the caller-owned
/// machine \p ExtM instead of a fresh machine at the program entry (the
/// sampled window-replay path). Stretches that materialize no records
/// may additionally run through fused superblocks (Options.Superblocks)
/// — same stats, output, and record stream, fewer dispatches.
template <bool HasSink, bool Windowed, bool Threaded, bool Resumed = false>
RunResult execute(const DecodedProgram &DP, const RunOptions &Options,
                  const std::vector<SampleWindow> *Windows,
                  const ArchState *Resume = nullptr, Machine *ExtM = nullptr,
                  const std::vector<const ArchState *> *EntryRegs = nullptr) {
  using Edge = DecodedProgram::Edge;
  using EdgeFault = DecodedProgram::EdgeFault;
  using DInst = DecodedProgram::DInst;

  RunResult Result;
  const Program &P = DP.program();
  // Resumed runs borrow the caller's materialized machine; the local one
  // then never allocates (zero-byte memory) and the reference choice
  // constant-folds per instantiation.
  Machine LocalM(Resumed ? MachineConfig{0} : Options.Machine);
  Machine &M = Resumed ? *ExtM : LocalM;
  if constexpr (!Resumed) {
    M.installData(Program::DataBase, P.Data);
    // Initial state: SP at the top of memory, arguments in a0..a5.
    M.writeReg(RegSP, static_cast<int64_t>(M.memSize()) - 64);
    for (size_t I = 0; I < Options.ArgRegs.size() && I < NumArgRegs; ++I)
      M.writeReg(static_cast<Reg>(RegA0 + I), Options.ArgRegs[I]);
  } else {
    M.setRegs(Resume->Regs);
  }

  ExecStats &Stats = Result.Stats;
  std::vector<uint64_t> FlatCounts(DP.numBlockSlots(), 0);
  const uint32_t *CountSlots = DP.countSlots().data();
  const DInst *Insts = DP.insts().data();

  std::vector<Frame> Frames;

  TraceSink *Sink = Options.Sink;
  std::vector<DynInst> Batch;
  size_t BatchN = 0;
  if constexpr (HasSink)
    Batch.resize(TraceBatchCapacity);

  // Windowed-mode state: WinIdx points at the window being entered or
  // occupied, InWindow says whether the next instruction's records are
  // materialized, and NextBoundary is the dynamic index at which the
  // state flips next (~0 once past the last window).
  [[maybe_unused]] size_t WinIdx = 0;
  [[maybe_unused]] bool InWindow = false;
  [[maybe_unused]] uint64_t NextBoundary = ~uint64_t(0);
  [[maybe_unused]] uint64_t LightEnd = 0; ///< light-fill until this index
  [[maybe_unused]] auto advanceWindow = [&](uint64_t DynIdx) {
    if (InWindow) {
      // Leaving a window: flush so the sink sees window-aligned batches.
      if (BatchN) {
        Sink->onBatch(Batch.data(), BatchN);
        BatchN = 0;
      }
      InWindow = false;
      ++WinIdx;
    }
    while (WinIdx < Windows->size()) {
      const SampleWindow &W = (*Windows)[WinIdx];
      if (W.End <= W.Begin) { // empty window: nothing to record
        ++WinIdx;
        continue;
      }
      if (DynIdx < W.Begin) {
        NextBoundary = W.Begin;
        return;
      }
      // Entering the window. Optional per-window register injection
      // (see runProgramWindowed): only at an exact entry — the engine
      // always stops at Begin, so a mid-window DynIdx can only mean a
      // resumed run that starts inside, which carries its own state.
      if (EntryRegs && DynIdx == W.Begin)
        if (const ArchState *S = (*EntryRegs)[WinIdx])
          M.setRegs(S->Regs);
      InWindow = true;
      NextBoundary = W.End;
      LightEnd = W.Begin + W.LightLen;
      return;
    }
    NextBoundary = ~uint64_t(0);
  };
  if constexpr (Resumed) {
    Stats.DynInsts = Resume->DynIndex;
    Frames.reserve(Resume->Frames.size());
    for (int32_t J : Resume->Frames)
      Frames.push_back(Frame{J, {}});
  }
  if constexpr (Windowed)
    advanceWindow(Stats.DynInsts);

  auto saveCalleeRegs = [&](Frame &Fr) {
    int Slot = 0;
    for (Reg R = RegS0; R <= RegFP; ++R)
      Fr.SavedCalleeRegs[Slot++] = M.readReg(R);
    Fr.SavedCalleeRegs[Slot] = M.readReg(RegSP);
  };
  auto calleeRegsIntact = [&](const Frame &Fr) {
    int Slot = 0;
    for (Reg R = RegS0; R <= RegFP; ++R)
      if (Fr.SavedCalleeRegs[Slot++] != M.readReg(R))
        return false;
    return Fr.SavedCalleeRegs[Slot] == M.readReg(RegSP);
  };

  // Applies a pre-resolved transfer: block counts first (they accrue even
  // when the transfer then faults, as the nested hop loop did), then
  // either land or terminate the run.
  int32_t Cur = -1;
  auto follow = [&](const Edge &E) -> bool {
    for (uint32_t Ci = E.CountsBegin; Ci != E.CountsEnd; ++Ci)
      ++FlatCounts[CountSlots[Ci]];
    if (E.Fault != EdgeFault::None) {
      Result.Status = RunStatus::Fault;
      Result.Message = E.Fault == EdgeFault::FellOffBlock
                           ? "control fell off a block without successor"
                           : "cycle of empty blocks";
      return false;
    }
    Cur = E.Target;
    return true;
  };

  uint64_t Fuel = Options.Fuel;

  // ---- Superblock fast path (sim/Superblock.h). Engaged only where no
  // trace records are materialized — plain no-sink runs and the
  // fast-forward stretches of windowed runs — so the record stream a sink
  // observes is bit-identical with and without a plan.
  const SuperblockPlan *Plan = Options.Superblocks;
  if constexpr (HasSink && !Windowed)
    Plan = nullptr; // every instruction is recorded: no quiet stretches
  if (Plan && Plan->size() == 0)
    Plan = nullptr;
  const Superblock *SbArr = nullptr;
  const SInst *SiArr = nullptr;
  const uint32_t *SbRaw = nullptr;
  const uint8_t *SbCw = nullptr;
  const SbCwDelta *SbCwd = nullptr;
  const SbSlotDelta *SbPass = nullptr;
  const int32_t *SbEntry = nullptr;
  if (Plan) {
    SbArr = Plan->superblocks().data();
    SiArr = Plan->sinsts().data();
    SbRaw = Plan->rawSlots().data();
    SbCw = Plan->cwSeq().data();
    SbCwd = Plan->cwDeltas().data();
    SbPass = Plan->passSlots().data();
    SbEntry = Plan->entryMap().data();
    Result.Engine.SuperblocksFormed = Plan->size();
  }
  uint64_t *CwFlat = &Stats.ClassWidth[0][0]; // flat slot = row * 4 + col
  uint64_t *Vsb = Stats.ValueSizeBytes;
  EngineCounters &EC = Result.Engine;
  const SInst *SP = nullptr;        // superblock cursor
  const Superblock *CurSb = nullptr;
  int64_t SbFaultVal = 0; // result value of a faulting fused Ld/St
  // Full passes only count here; their pass-invariant aggregates (class/
  // width deltas, internal block counts, the final edge's block counts)
  // are applied as aggregate * passes once at RunEnd, so the per-pass
  // epilogue stays a handful of scalar ops even for short traces.
  std::vector<uint64_t> SbPassCount(Plan ? Plan->size() : 0, 0);

#ifdef OG_HAS_COMPUTED_GOTO
  // Label-address dispatch tables (GNU computed goto). Declared before any
  // goto so no jump crosses their initialization; unused (but initialized)
  // in the Threaded=false instantiations.
  [[maybe_unused]] const void *const GTbl[HNumHandlers] = {
      &&GL_Alu,    &&GL_Ldi, &&GL_Msk, &&GL_Ld,   &&GL_St,  &&GL_Br,
      &&GL_CondBr, &&GL_Jsr, &&GL_Ret, &&GL_Halt, &&GL_Out, &&GL_Nop};
#define OG_SB_TBL(OP) &&SBL_##OP##_RR, &&SBL_##OP##_RI,
  [[maybe_unused]] const void *const SbTbl[SbH_NumHandlers] = {
      OG_SB_ALU_OPS(OG_SB_TBL) &&SBL_Ldi, &&SBL_Msk,  &&SBL_Ld,   &&SBL_LdW,
      &&SBL_St,   &&SBL_Out,  &&SBL_BrEq, &&SBL_BrNe, &&SBL_BrLt, &&SBL_BrLe,
      &&SBL_BrGt, &&SBL_BrGe, &&SBL_End};
#undef OG_SB_TBL
#endif

  if constexpr (Resumed)
    Cur = Resume->Flat; // the boundary's next instruction: no entry edge
  else if (!follow(DP.entry()))
    goto RunEnd;

  while (true) {
    // The window state flips before the fuel gate (the historical loop
    // checked fuel first): when fuel runs out exactly at a boundary the
    // flushed batch content is identical either way, and hoisting the
    // check lets the superblock gate below see the post-flip state.
    if constexpr (Windowed) {
      if (Stats.DynInsts == NextBoundary)
        advanceWindow(Stats.DynInsts);
    }

    // Superblock entry: only on quiet (record-free) stretches, only with
    // fuel for a full pass, and — windowed — only when a full pass cannot
    // cross into the next window (fission keeps sampling exact).
    if (SbEntry) {
      bool Quiet;
      if constexpr (!HasSink)
        Quiet = true;
      else if constexpr (Windowed)
        Quiet = !InWindow;
      else
        Quiet = false;
      if (Quiet) {
        int32_t SbId = SbEntry[Cur];
        if (SbId >= 0) {
          const Superblock &SB = SbArr[SbId];
          if (Fuel >= SB.DynLen) {
            bool WinOk = true;
            if constexpr (Windowed)
              WinOk = SB.DynLen <= NextBoundary - Stats.DynInsts;
            if (WinOk) {
              // No entry counter here: every entry ends in exactly one
              // pass or side exit, so Entries = Passes + SideExits is
              // reconstructed at RunEnd.
              CurSb = &SB;
              SP = SiArr + SB.SBegin;
              goto SbExec;
            }
            ++EC.WindowFissions;
          }
        }
      }
    }

    // ---- Generic (per-instruction) path ----
    {
      if (Fuel == 0) {
        Result.Status = RunStatus::OutOfFuel;
        Result.Message = "dynamic instruction budget exhausted";
        goto RunEnd;
      }
      --Fuel;

      const DInst &DI = Insts[Cur];

      DynInst *D = nullptr;
      [[maybe_unused]] bool LightRec = false;
      if constexpr (HasSink) {
        if (!Windowed || InWindow) {
          D = &Batch[BatchN];
          if (!Windowed || Stats.DynInsts >= LightEnd) {
            *D = DynInst();
            D->I = DI.I;
            D->Func = DI.Func;
            D->Block = DI.Block;
            D->Index = DI.Index;
            D->Pc = DI.Pc;
            D->SeqPc = DI.Pc + 4;
            D->NumSrcs = DI.NumSrcs;
            for (unsigned S = 0; S < DI.NumSrcs; ++S)
              D->SrcVals[S] = M.readReg(DI.Srcs[S]);
          } else {
            // Light record: only the warming- and profiling-relevant
            // fields are written (no struct zeroing, no register-file
            // reads); the source values carry unspecified leftovers.
            // Func/Block make the light stream sufficient for
            // IntervalProfiler, so the sampler's profiling pass runs at
            // light cost.
            LightRec = true;
            D->I = DI.I;
            D->Func = DI.Func;
            D->Block = DI.Block;
            D->Pc = DI.Pc;
            D->SeqPc = DI.Pc + 4;
            D->NumSrcs = 0;
            D->IsMem = false;
            D->IsBranch = false;
            D->Taken = false;
          }
        }
      }

      int64_t A = DI.ReadsRa ? M.readReg(DI.Ra) : 0;
      int64_t B = DI.UseImm ? DI.Imm : (DI.ReadsRb ? M.readReg(DI.Rb) : 0);

      int64_t Val = 0;
      bool WroteDest = false;
      bool Stop = false;
      const Edge *Next = &DI.Seq;

      OG_GOTO_DISPATCH(GTbl, DI.Handler);
      switch (DI.Handler) {
      case HLdi:
        OG_LBL(GL_Ldi)
        Val = truncSignExtend(DI.Imm, DI.WidthBytes);
        M.writeReg(DI.Rd, Val);
        WroteDest = true;
        break;
      case HMsk:
        OG_LBL(GL_Msk) {
          unsigned Bytes = DI.WidthBytes;
          uint64_t Field = static_cast<uint64_t>(A) >> (8 * DI.Imm);
          Val = static_cast<int64_t>(
              Bytes == 8 ? Field : Field & ((uint64_t(1) << (8 * Bytes)) - 1));
          M.writeReg(DI.Rd, Val);
          WroteDest = true;
          break;
        }
      case HLd:
        OG_LBL(GL_Ld) {
          uint64_t Addr = static_cast<uint64_t>(A + DI.Imm);
          uint64_t Raw = M.loadBytes(Addr, DI.WidthBytes);
          // Alpha semantics: LDBU/LDWU zero-extend, LDL sign-extends, LDQ
          // raw.
          Val = DI.W == Width::W ? signExtend(Raw, 32)
                                 : static_cast<int64_t>(Raw);
          M.writeReg(DI.Rd, Val);
          WroteDest = true;
          if constexpr (HasSink) {
            if (D) {
              D->IsMem = true;
              D->MemAddr = Addr;
            }
          }
          break;
        }
      case HSt:
        OG_LBL(GL_St) {
          uint64_t Addr = static_cast<uint64_t>(A + DI.Imm);
          int64_t Value = M.readReg(DI.Rb);
          M.storeBytes(Addr, DI.WidthBytes, static_cast<uint64_t>(Value));
          Val = truncSignExtend(Value, DI.WidthBytes);
          if constexpr (HasSink) {
            if (D) {
              D->IsMem = true;
              D->MemAddr = Addr;
            }
          }
          break;
        }
      case HBr:
        OG_LBL(GL_Br)
        Next = &DI.Taken;
        break;
      case HCondBr:
        OG_LBL(GL_CondBr) {
          bool Taken = false;
          switch (DI.Opc) {
          case Op::Beq:
            Taken = A == 0;
            break;
          case Op::Bne:
            Taken = A != 0;
            break;
          case Op::Blt:
            Taken = A < 0;
            break;
          case Op::Ble:
            Taken = A <= 0;
            break;
          case Op::Bgt:
            Taken = A > 0;
            break;
          default:
            Taken = A >= 0;
            break;
          }
          if constexpr (HasSink) {
            if (D) {
              D->IsBranch = true;
              D->Taken = Taken;
            }
          }
          Next = Taken ? &DI.Taken : &DI.Seq;
          break;
        }
      case HJsr:
        OG_LBL(GL_Jsr) {
          if (Frames.size() >= Options.MaxCallDepth) {
            Result.Status = RunStatus::Fault;
            Result.Message = "call depth limit exceeded";
            Stop = true;
            break;
          }
          Frame Fr{Cur, {}};
          if (Options.CheckCalleeSaved)
            saveCalleeRegs(Fr);
          Frames.push_back(Fr);
          Next = &DI.Taken;
          break;
        }
      case HRet:
        OG_LBL(GL_Ret) {
          if (Frames.empty()) {
            // Returning from the entry function terminates the program.
            Stop = true;
            Result.Status = RunStatus::Halted;
            break;
          }
          Frame Fr = Frames.back();
          Frames.pop_back();
          if (Options.CheckCalleeSaved && !calleeRegsIntact(Fr)) {
            Result.Status = RunStatus::CalleeSaveViolation;
            Result.Message = "callee-saved register clobbered by " +
                             P.Funcs[DI.Func].Name;
            Stop = true;
            break;
          }
          Next = &Insts[Fr.JsrFlat].Seq;
          break;
        }
      case HHalt:
        OG_LBL(GL_Halt)
        Stop = true;
        Result.Status = RunStatus::Halted;
        break;
      case HOut:
        OG_LBL(GL_Out)
        M.Output.push_back(A);
        break;
      case HNop:
        OG_LBL(GL_Nop)
        break;
      default:
        OG_LBL(GL_Alu) {
          // Generic ALU (arithmetic, logical, shifts, compares, cmovs,
          // sext, mov).
          int64_t OldRd = DI.RdIsInput ? M.readReg(DI.Rd) : 0;
          Val = evalAluOp(DI.Opc, DI.W, A, B, OldRd);
          M.writeReg(DI.Rd, Val);
          WroteDest = true;
          break;
        }
      }

      if (M.faulted()) {
        Result.Status = RunStatus::Fault;
        Result.Message = M.faultMessage();
        Stop = true;
      }

      // Statistics.
      ++Stats.DynInsts;
      ++Stats.ClassWidth[DI.ClassIdx][DI.WidthIdx];
      if (WroteDest || DI.Opc == Op::St)
        ++Stats.ValueSizeBytes[significantBytes(Val)];

      if constexpr (HasSink) {
        if (D) {
          D->WroteDest = WroteDest;
          D->Result = Val;
          D->NextPc = Stop ? DI.Pc + 4 : Next->NextPc;
          ++BatchN;
          // Light (warming-shadow) stretches flush in small batches so
          // the record buffer stays cache-resident through the
          // engine-write / warmer-read round trip; full batches keep the
          // one-virtual-call-per-4096 contract.
          if (BatchN == TraceBatchCapacity ||
              (Windowed && LightRec && BatchN >= LightBatchCapacity)) {
            Sink->onBatch(Batch.data(), BatchN);
            BatchN = 0;
          }
        }
      }

      if (Stop)
        goto RunEnd;
      if (!follow(*Next))
        goto RunEnd;
      continue;
    }

    // ---- Superblock executor ----
    // Fuel for a full pass is pre-checked at entry; side exits reconcile
    // the executed prefix exactly, so no per-instruction checks run here.
  SbExec:
    for (;;) {
      OG_GOTO_DISPATCH(SbTbl, SP->H);
      switch (SP->H) {
        OG_SB_ALU_OPS(OG_SB_ALU_CASES)
      case SbH_Ldi:
        OG_LBL(SBL_Ldi) {
          // Imm holds the pre-truncated value (decode-time constant fold).
          M.writeReg(SP->Rd, SP->Imm);
          ++Vsb[significantBytes(SP->Imm)];
          OG_SB_NEXT()
        }
      case SbH_Msk:
        OG_LBL(SBL_Msk) {
          const SInst &SI = *SP;
          uint64_t Field =
              static_cast<uint64_t>(M.readReg(SI.Ra)) >> (8 * SI.Imm);
          int64_t Val = static_cast<int64_t>(
              SI.WidthBytes == 8
                  ? Field
                  : Field & ((uint64_t(1) << (8 * SI.WidthBytes)) - 1));
          M.writeReg(SI.Rd, Val);
          ++Vsb[significantBytes(Val)];
          OG_SB_NEXT()
        }
      case SbH_Ld:
        OG_LBL(SBL_Ld) {
          const SInst &SI = *SP;
          uint64_t Addr = static_cast<uint64_t>(M.readReg(SI.Ra) + SI.Imm);
          int64_t Val = static_cast<int64_t>(M.loadBytes(Addr, SI.WidthBytes));
          M.writeReg(SI.Rd, Val);
          if (M.faulted()) {
            SbFaultVal = Val;
            goto SbFault;
          }
          ++Vsb[significantBytes(Val)];
          OG_SB_NEXT()
        }
      case SbH_LdW:
        OG_LBL(SBL_LdW) {
          const SInst &SI = *SP;
          uint64_t Addr = static_cast<uint64_t>(M.readReg(SI.Ra) + SI.Imm);
          int64_t Val = signExtend(M.loadBytes(Addr, 4), 32);
          M.writeReg(SI.Rd, Val);
          if (M.faulted()) {
            SbFaultVal = Val;
            goto SbFault;
          }
          ++Vsb[significantBytes(Val)];
          OG_SB_NEXT()
        }
      case SbH_St:
        OG_LBL(SBL_St) {
          const SInst &SI = *SP;
          uint64_t Addr = static_cast<uint64_t>(M.readReg(SI.Ra) + SI.Imm);
          int64_t Value = M.readReg(SI.Rb);
          M.storeBytes(Addr, SI.WidthBytes, static_cast<uint64_t>(Value));
          int64_t Val = truncSignExtend(Value, SI.WidthBytes);
          if (M.faulted()) {
            SbFaultVal = Val;
            goto SbFault;
          }
          ++Vsb[significantBytes(Val)];
          OG_SB_NEXT()
        }
      case SbH_Out:
        OG_LBL(SBL_Out) {
          M.Output.push_back(M.readReg(SP->Ra));
          OG_SB_NEXT()
        }
        OG_SB_BR_CASE(Eq, A == 0)
        OG_SB_BR_CASE(Ne, A != 0)
        OG_SB_BR_CASE(Lt, A < 0)
        OG_SB_BR_CASE(Le, A <= 0)
        OG_SB_BR_CASE(Gt, A > 0)
        OG_SB_BR_CASE(Ge, A >= 0)
      case SbH_End:
        OG_LBL(SBL_End)
        goto SbPassEnd;
      }
    }

  SbPassEnd: {
    // Full pass: bump the pass counter (aggregates — including DynInsts
    // and the diagnostic counters — are applied lazily at RunEnd) and
    // take the final edge inline: its counts are part of the deferred
    // aggregate, and its target is constant (a back edge to the entry
    // re-enters this superblock at the loop top). Only windowed runs need
    // DynInsts current mid-run, for the boundary checks.
    const Superblock &SB = *CurSb;
    if constexpr (Windowed)
      Stats.DynInsts += SB.DynLen;
    Fuel -= SB.DynLen;
    ++SbPassCount[CurSb - SbArr];
    const Edge &FE = *SB.FinalEdge;
    if (FE.Fault != EdgeFault::None) {
      Result.Status = RunStatus::Fault;
      Result.Message = FE.Fault == EdgeFault::FellOffBlock
                           ? "control fell off a block without successor"
                           : "cycle of empty blocks";
      goto RunEnd;
    }
    Cur = FE.Target;
    continue;
  }

  SbSideExit: {
    // A branch left the trace after executing positions [0, SeqPos]:
    // replay their stats from the per-position sequences and resume
    // generically on the off-trace edge. Side exits are rare, so inline
    // accounting is fine here.
    const Superblock &SB = *CurSb;
    const uint32_t N = SP->SeqPos + 1;
    Stats.DynInsts += N;
    Fuel -= N;
    EC.SuperblockInsts += N;
    ++EC.SideExits;
    const uint8_t *Cw = SbCw + SB.CwBegin;
    for (uint32_t I = 0; I != N; ++I)
      ++CwFlat[Cw[I]];
    const uint32_t *Raw = SbRaw + SB.RawBegin;
    for (uint32_t I = 0; I != SP->SlotsBefore; ++I)
      ++FlatCounts[Raw[I]];
    const DInst &BDI = Insts[SP->OrigFlat];
    const Edge *Out =
        (SP->Flags & SbFlagOffTraceTaken) ? &BDI.Taken : &BDI.Seq;
    if (!follow(*Out))
      goto RunEnd;
    continue;
  }

  SbFault: {
    // A fused Ld/St faulted: like a side exit, except the faulting
    // instruction still counts its produced value (the generic loop bumps
    // stats after the fault check) and the run terminates.
    const Superblock &SB = *CurSb;
    const uint32_t N = SP->SeqPos + 1;
    Stats.DynInsts += N;
    Fuel -= N;
    EC.SuperblockInsts += N;
    ++EC.SideExits;
    const uint8_t *Cw = SbCw + SB.CwBegin;
    for (uint32_t I = 0; I != N; ++I)
      ++CwFlat[Cw[I]];
    const uint32_t *Raw = SbRaw + SB.RawBegin;
    for (uint32_t I = 0; I != SP->SlotsBefore; ++I)
      ++FlatCounts[Raw[I]];
    ++Vsb[significantBytes(SbFaultVal)];
    Result.Status = RunStatus::Fault;
    Result.Message = M.faultMessage();
    goto RunEnd;
  }
  }

RunEnd:
  if constexpr (HasSink) if (BatchN)
    Sink->onBatch(Batch.data(), BatchN);

  // Deferred full-pass aggregates: every completed pass of superblock I —
  // including one whose final edge faulted — executed the same internal
  // edges and followed the same final edge, so counts apply as
  // aggregate * passes. Windowed runs already advanced DynInsts per pass
  // (the boundary checks need it current); everything else accrues here.
  if (Plan) {
    for (size_t I = 0, E = Plan->size(); I != E; ++I) {
      uint64_t C = SbPassCount[I];
      if (!C)
        continue;
      const Superblock &SB = SbArr[I];
      EC.SuperblockPasses += C;
      EC.SuperblockInsts += SB.DynLen * C;
      if constexpr (!Windowed)
        Stats.DynInsts += SB.DynLen * C;
      for (uint32_t K = SB.CwdBegin; K != SB.CwdEnd; ++K)
        CwFlat[SbCwd[K].Slot] += SbCwd[K].N * C;
      for (uint32_t K = SB.PassBegin; K != SB.PassEnd; ++K)
        FlatCounts[SbPass[K].Slot] += SbPass[K].N * C;
      const Edge &FE = *SB.FinalEdge;
      for (uint32_t Ci = FE.CountsBegin; Ci != FE.CountsEnd; ++Ci)
        FlatCounts[CountSlots[Ci]] += C;
    }
    EC.SuperblockEntries = EC.SuperblockPasses + EC.SideExits;
  }

  // Scatter the flat block counters back into the per-function shape the
  // profile consumers expect.
  DP.initBlockCounts(Stats.BlockCounts);
  {
    size_t Slot = 0;
    for (auto &FuncCounts : Stats.BlockCounts)
      for (uint64_t &C : FuncCounts)
        C = FlatCounts[Slot++];
  }

  Result.Output = std::move(M.Output);
  return Result;
}

#ifdef OG_HAS_COMPUTED_GOTO
#pragma GCC diagnostic pop
#endif

#undef OG_LBL
#undef OG_GOTO_DISPATCH
#undef OG_SB_NEXT
#undef OG_SB_ALU_CASE
#undef OG_SB_ALU_CASES
#undef OG_SB_BR_CASE

/// A plan built for another decode would index foreign edge/slot spaces;
/// always-on check (Release sweeps must not silently corrupt counters).
void checkPlan(const DecodedProgram &DP, const RunOptions &Options) {
  if (Options.Superblocks &&
      &Options.Superblocks->decodedProgram() != &DP)
    throw std::invalid_argument(
        "runProgram: superblock plan was built for a different decode");
}

/// Resolves the runtime dispatch choice onto the Threaded template
/// parameter. Without computed-goto support both instantiations compile
/// to the identical switch loop, so Threaded degrades to Switch for free.
template <bool HasSink, bool Windowed>
RunResult dispatchExecute(const DecodedProgram &DP, const RunOptions &Options,
                          const std::vector<SampleWindow> *Windows,
                          const std::vector<const ArchState *> *EntryRegs =
                              nullptr) {
  if (resolveDispatchMode(Options.Dispatch) == DispatchMode::Threaded)
    return execute<HasSink, Windowed, true>(DP, Options, Windows, nullptr,
                                            nullptr, EntryRegs);
  return execute<HasSink, Windowed, false>(DP, Options, Windows, nullptr,
                                           nullptr, EntryRegs);
}

/// Resumed runs exist for sampled window replay only, so just the
/// sink+windowed shape is instantiated (runProgramResumed enforces it).
RunResult dispatchResumed(const DecodedProgram &DP, const RunOptions &Options,
                          const std::vector<SampleWindow> *Windows,
                          const ArchState &From, Machine &M) {
  if (resolveDispatchMode(Options.Dispatch) == DispatchMode::Threaded)
    return execute<true, true, true, true>(DP, Options, Windows, &From, &M);
  return execute<true, true, false, true>(DP, Options, Windows, &From, &M);
}

} // namespace

bool og::engineHasThreadedDispatch() {
#ifdef OG_HAS_COMPUTED_GOTO
  return true;
#else
  return false;
#endif
}

DispatchMode og::resolveDispatchMode(DispatchMode M) {
  if (M == DispatchMode::Switch)
    return DispatchMode::Switch;
  return engineHasThreadedDispatch() ? DispatchMode::Threaded
                                     : DispatchMode::Switch;
}

const char *og::dispatchModeName(DispatchMode M) {
  switch (M) {
  case DispatchMode::Auto:
    return "auto";
  case DispatchMode::Switch:
    return "switch";
  case DispatchMode::Threaded:
    return "threaded";
  }
  return "unknown";
}

RunResult og::runProgram(const DecodedProgram &DP, const RunOptions &Options) {
  checkPlan(DP, Options);
  return Options.Sink ? dispatchExecute<true, false>(DP, Options, nullptr)
                      : dispatchExecute<false, false>(DP, Options, nullptr);
}

namespace {

/// Always-on (not assert): a mis-sorted window list would silently
/// deliver a wrong instruction stream in Release builds.
void checkWindows(const std::vector<SampleWindow> &Windows) {
  for (size_t I = 1; I < Windows.size(); ++I)
    if (Windows[I - 1].End > Windows[I].Begin)
      throw std::invalid_argument(
          "runProgramWindowed: sample windows must be sorted by Begin "
          "and pairwise disjoint");
}

} // namespace

RunResult og::runProgramWindowed(
    const DecodedProgram &DP, const RunOptions &Options,
    const std::vector<SampleWindow> &Windows,
    const std::vector<const ArchState *> *WindowEntry) {
  checkPlan(DP, Options);
  checkWindows(Windows);
  if (WindowEntry) {
    if (WindowEntry->size() != Windows.size())
      throw std::invalid_argument(
          "runProgramWindowed: WindowEntry must parallel Windows");
    if (Options.CheckCalleeSaved)
      throw std::invalid_argument(
          "runProgramWindowed: register injection breaks the callee-saved "
          "snapshot contract");
  }
  // No sink (or no windows) degenerates to the plain no-sink run (the
  // superblock plan, if any, stays engaged).
  if (!Options.Sink || Windows.empty()) {
    RunOptions NoSink = Options;
    NoSink.Sink = nullptr;
    return dispatchExecute<false, false>(DP, NoSink, nullptr);
  }
  return dispatchExecute<true, true>(DP, Options, &Windows, WindowEntry);
}

RunResult og::runProgramResumed(const DecodedProgram &DP,
                                const RunOptions &Options,
                                const std::vector<SampleWindow> &Windows,
                                const ArchState &From, Machine &M) {
  checkPlan(DP, Options);
  checkWindows(Windows);
  if (!Options.Sink || Windows.empty())
    throw std::invalid_argument(
        "runProgramResumed: a sink and a nonempty window list are required");
  if (Options.CheckCalleeSaved)
    throw std::invalid_argument(
        "runProgramResumed: callee-saved snapshots cannot be reconstructed "
        "for inherited frames");
  if (From.Flat < 0 || static_cast<size_t>(From.Flat) >= DP.numInsts())
    throw std::invalid_argument(
        "runProgramResumed: resume point is outside the program");
  return dispatchResumed(DP, Options, &Windows, From, M);
}
