//===- sim/ExecEngine.cpp -------------------------------------------------==//
//
// DecodedProgram construction and the flat dispatch loop. The contract is
// bit-exact equivalence with the historical nested interpreter: the same
// RunResult (status, message, stats, output) and the same DynInst stream,
// for every program including ones that fault or run out of fuel.
//
//===----------------------------------------------------------------------===//

#include "sim/ExecEngine.h"

#include "sim/Interpreter.h"
#include "support/MathExtras.h"

#include <cassert>
#include <stdexcept>

using namespace og;

namespace {

/// Code addresses start here; 4 bytes per instruction, functions laid out
/// in declaration order. Matches the layout every consumer (fetch model,
/// branch predictor indexing) has always seen.
constexpr uint64_t CodeBase = 0x1000;

/// Flush threshold for light (warming-shadow) records in windowed runs:
/// 256 records keep the working set of the engine-write / warmer-read
/// loop at ~24KB instead of the full batch buffer's ~390KB.
constexpr size_t LightBatchCapacity = 256;

} // namespace

DecodedProgram::DecodedProgram(const Program &P) : Prog(&P) {
  const size_t NumFuncs = P.Funcs.size();

  // Dense layout: per-block instruction bases within each function, the
  // function PC bases, and each function's base into the flat array.
  std::vector<std::vector<size_t>> BlockBase(NumFuncs);
  std::vector<uint64_t> FuncPcBase(NumFuncs);
  std::vector<size_t> GlobalBase(NumFuncs);
  uint64_t Pc = CodeBase;
  size_t Flat = 0;
  for (const Function &F : P.Funcs) {
    FuncPcBase[F.Id] = Pc;
    GlobalBase[F.Id] = Flat;
    auto &Bases = BlockBase[F.Id];
    Bases.resize(F.Blocks.size());
    size_t N = 0;
    for (const BasicBlock &BB : F.Blocks) {
      Bases[BB.Id] = N;
      N += BB.Insts.size();
    }
    Pc += N * 4;
    Flat += N;
  }

  // Flat slot per (function, block) for the engine's block-count array.
  SlotBase.resize(NumFuncs);
  NumBlockSlots = 0;
  for (const Function &F : P.Funcs) {
    SlotBase[F.Id] = NumBlockSlots;
    NumBlockSlots += F.Blocks.size();
  }

  auto pcOf = [&](int32_t F, int32_t B, int32_t I) {
    return FuncPcBase[F] +
           (BlockBase[F][B] + static_cast<size_t>(I)) * 4;
  };
  auto flatOf = [&](int32_t F, int32_t B, int32_t I) {
    return static_cast<int32_t>(GlobalBase[F] + BlockBase[F][B] +
                                static_cast<size_t>(I));
  };
  auto countBlock = [&](int32_t F, int32_t B) {
    Counted.emplace_back(F, B);
    CountSlots.push_back(static_cast<uint32_t>(SlotBase[F] + B));
  };

  // Structural fallthrough from an exhausted block: hop FallthroughSucc
  // links, counting every block entered, until a block with instructions
  // is reached — or the chain faults. Mirrors the nested loop exactly,
  // including the empty-hop limit that detects cycles of empty blocks.
  auto chain = [&](int32_t F, int32_t B, Edge &E) {
    const Function &Fn = P.Funcs[F];
    size_t EmptyHops = 0;
    int32_t Cur = B;
    while (true) {
      const BasicBlock &BB = Fn.Blocks[Cur];
      if (BB.FallthroughSucc == NoTarget) {
        E.Fault = EdgeFault::FellOffBlock;
        return;
      }
      if (++EmptyHops > Fn.Blocks.size() + 1) {
        E.Fault = EdgeFault::EmptyCycle;
        return;
      }
      Cur = BB.FallthroughSucc;
      countBlock(F, Cur);
      if (!Fn.Blocks[Cur].Insts.empty()) {
        E.Target = flatOf(F, Cur, 0);
        return;
      }
    }
  };

  // A jump to the start of a block: counts the block itself (the nested
  // interpreter bumped the count on every taken transfer), then chains if
  // it is empty. An out-of-range block id (possible only in unverified
  // programs) becomes a deterministic fault edge instead of wild reads.
  auto jumpEdge = [&](int32_t F, int32_t B) {
    Edge E;
    E.CountsBegin = E.CountsEnd = static_cast<uint32_t>(Counted.size());
    if (B < 0 || static_cast<size_t>(B) >= P.Funcs[F].Blocks.size()) {
      E.Fault = EdgeFault::FellOffBlock;
      return E;
    }
    E.NextPc = pcOf(F, B, 0);
    countBlock(F, B);
    if (P.Funcs[F].Blocks[B].Insts.empty())
      chain(F, B, E);
    else
      E.Target = flatOf(F, B, 0);
    E.CountsEnd = static_cast<uint32_t>(Counted.size());
    return E;
  };

  // Sequential advance to (B, NextI): a direct neighbor while inside the
  // block, the fallthrough chain once past its end. No count for the
  // block itself — re-entering a block mid-way (returns) never counted.
  auto seqEdge = [&](int32_t F, int32_t B, int32_t NextI) {
    Edge E;
    E.CountsBegin = static_cast<uint32_t>(Counted.size());
    E.NextPc = pcOf(F, B, NextI);
    const BasicBlock &BB = P.Funcs[F].Blocks[B];
    if (static_cast<size_t>(NextI) < BB.Insts.size())
      E.Target = flatOf(F, B, NextI);
    else
      chain(F, B, E);
    E.CountsEnd = static_cast<uint32_t>(Counted.size());
    return E;
  };

  // Function entries first so call edges can copy them.
  FuncEntries.reserve(NumFuncs);
  for (const Function &F : P.Funcs) {
    if (F.Blocks.empty()) {
      // Degenerate (unverified) function: entering it can only fall off.
      Edge E;
      E.CountsBegin = E.CountsEnd = static_cast<uint32_t>(Counted.size());
      E.Fault = EdgeFault::FellOffBlock;
      FuncEntries.push_back(E);
      continue;
    }
    FuncEntries.push_back(jumpEdge(F.Id, F.EntryBlock));
  }

  Insts.reserve(Flat);
  for (const Function &F : P.Funcs) {
    for (const BasicBlock &BB : F.Blocks) {
      for (size_t K = 0; K < BB.Insts.size(); ++K) {
        const Instruction &I = BB.Insts[K];
        const OpInfo &Info = I.info();
        DInst D;
        D.I = &I;
        D.Func = F.Id;
        D.Block = BB.Id;
        D.Index = static_cast<int32_t>(K);
        D.Pc = pcOf(F.Id, BB.Id, D.Index);
        D.Imm = I.Imm;
        D.Opc = I.Opc;
        D.W = I.W;
        D.Rd = I.Rd;
        D.Ra = I.Ra;
        D.Rb = I.Rb;
        D.UseImm = I.UseImm;
        D.ReadsRa = Info.ReadsRa;
        D.ReadsRb = Info.ReadsRb;
        D.RdIsInput = Info.RdIsInput;
        D.NumSrcs = static_cast<uint8_t>(I.numRegSources());
        for (unsigned S = 0; S < D.NumSrcs; ++S)
          D.Srcs[S] = I.regSource(S);
        D.ClassIdx = static_cast<uint8_t>(Info.Class);
        D.WidthIdx = static_cast<uint8_t>(I.W);
        D.WidthBytes = static_cast<uint8_t>(widthBytes(I.W));

        if (Info.IsCondBranch) {
          D.Taken = jumpEdge(F.Id, I.Target);
          D.Seq = jumpEdge(F.Id, BB.FallthroughSucc);
        } else if (I.Opc == Op::Br) {
          D.Taken = jumpEdge(F.Id, I.Target);
          D.Seq = seqEdge(F.Id, BB.Id, D.Index + 1); // unused (terminator)
        } else if (I.Opc == Op::Jsr) {
          D.Taken = FuncEntries[I.Callee]; // call entry
          D.Seq = seqEdge(F.Id, BB.Id, D.Index + 1); // the Ret's edge
        } else {
          D.Seq = seqEdge(F.Id, BB.Id, D.Index + 1);
        }
        Insts.push_back(D);
      }
    }
  }
}

void DecodedProgram::initBlockCounts(
    std::vector<std::vector<uint64_t>> &Counts) const {
  Counts.resize(Prog->Funcs.size());
  for (const Function &F : Prog->Funcs)
    Counts[F.Id].assign(F.Blocks.size(), 0);
}

namespace {

struct Frame {
  int32_t JsrFlat;            ///< flat index of the calling Jsr
  int64_t SavedCalleeRegs[8]; ///< s0..s5, fp, sp (checked mode)
};

/// The dispatch loop. \p HasSink statically selects whether DynInst
/// records are materialized at all; \p Windowed additionally gates the
/// materialization at runtime on the sample windows (\p Windows), so the
/// out-of-window stretches run at no-sink speed. The exact modes
/// (<false,false> and <true,false>) compile to the historical loops
/// unchanged.
template <bool HasSink, bool Windowed>
RunResult execute(const DecodedProgram &DP, const RunOptions &Options,
                  const std::vector<SampleWindow> *Windows) {
  using Edge = DecodedProgram::Edge;
  using EdgeFault = DecodedProgram::EdgeFault;
  using DInst = DecodedProgram::DInst;

  RunResult Result;
  const Program &P = DP.program();
  Machine M(Options.Machine);
  M.installData(Program::DataBase, P.Data);

  // Initial state: SP at the top of memory, arguments in a0..a5.
  M.writeReg(RegSP, static_cast<int64_t>(M.memSize()) - 64);
  for (size_t I = 0; I < Options.ArgRegs.size() && I < NumArgRegs; ++I)
    M.writeReg(static_cast<Reg>(RegA0 + I), Options.ArgRegs[I]);

  ExecStats &Stats = Result.Stats;
  std::vector<uint64_t> FlatCounts(DP.numBlockSlots(), 0);
  const uint32_t *CountSlots = DP.countSlots().data();
  const DInst *Insts = DP.insts().data();

  std::vector<Frame> Frames;

  TraceSink *Sink = Options.Sink;
  std::vector<DynInst> Batch;
  size_t BatchN = 0;
  if constexpr (HasSink)
    Batch.resize(TraceBatchCapacity);

  // Windowed-mode state: WinIdx points at the window being entered or
  // occupied, InWindow says whether the next instruction's records are
  // materialized, and NextBoundary is the dynamic index at which the
  // state flips next (~0 once past the last window).
  [[maybe_unused]] size_t WinIdx = 0;
  [[maybe_unused]] bool InWindow = false;
  [[maybe_unused]] uint64_t NextBoundary = ~uint64_t(0);
  [[maybe_unused]] uint64_t LightEnd = 0; ///< light-fill until this index
  [[maybe_unused]] auto advanceWindow = [&](uint64_t DynIdx) {
    if (InWindow) {
      // Leaving a window: flush so the sink sees window-aligned batches.
      if (BatchN) {
        Sink->onBatch(Batch.data(), BatchN);
        BatchN = 0;
      }
      InWindow = false;
      ++WinIdx;
    }
    while (WinIdx < Windows->size()) {
      const SampleWindow &W = (*Windows)[WinIdx];
      if (W.End <= W.Begin) { // empty window: nothing to record
        ++WinIdx;
        continue;
      }
      if (DynIdx < W.Begin) {
        NextBoundary = W.Begin;
        return;
      }
      InWindow = true;
      NextBoundary = W.End;
      LightEnd = W.Begin + W.LightLen;
      return;
    }
    NextBoundary = ~uint64_t(0);
  };
  if constexpr (Windowed)
    advanceWindow(0);

  auto saveCalleeRegs = [&](Frame &Fr) {
    int Slot = 0;
    for (Reg R = RegS0; R <= RegFP; ++R)
      Fr.SavedCalleeRegs[Slot++] = M.readReg(R);
    Fr.SavedCalleeRegs[Slot] = M.readReg(RegSP);
  };
  auto calleeRegsIntact = [&](const Frame &Fr) {
    int Slot = 0;
    for (Reg R = RegS0; R <= RegFP; ++R)
      if (Fr.SavedCalleeRegs[Slot++] != M.readReg(R))
        return false;
    return Fr.SavedCalleeRegs[Slot] == M.readReg(RegSP);
  };

  // Applies a pre-resolved transfer: block counts first (they accrue even
  // when the transfer then faults, as the nested hop loop did), then
  // either land or terminate the run.
  int32_t Cur = -1;
  auto follow = [&](const Edge &E) -> bool {
    for (uint32_t Ci = E.CountsBegin; Ci != E.CountsEnd; ++Ci)
      ++FlatCounts[CountSlots[Ci]];
    if (E.Fault != EdgeFault::None) {
      Result.Status = RunStatus::Fault;
      Result.Message = E.Fault == EdgeFault::FellOffBlock
                           ? "control fell off a block without successor"
                           : "cycle of empty blocks";
      return false;
    }
    Cur = E.Target;
    return true;
  };

  uint64_t Fuel = Options.Fuel;

  if (follow(DP.entry())) {
    while (true) {
      if (Fuel == 0) {
        Result.Status = RunStatus::OutOfFuel;
        Result.Message = "dynamic instruction budget exhausted";
        break;
      }
      --Fuel;

      const DInst &DI = Insts[Cur];

      if constexpr (Windowed) {
        if (Stats.DynInsts == NextBoundary)
          advanceWindow(Stats.DynInsts);
      }

      DynInst *D = nullptr;
      [[maybe_unused]] bool LightRec = false;
      if constexpr (HasSink) {
        if (!Windowed || InWindow) {
          D = &Batch[BatchN];
          if (!Windowed || Stats.DynInsts >= LightEnd) {
            *D = DynInst();
            D->I = DI.I;
            D->Func = DI.Func;
            D->Block = DI.Block;
            D->Index = DI.Index;
            D->Pc = DI.Pc;
            D->SeqPc = DI.Pc + 4;
            D->NumSrcs = DI.NumSrcs;
            for (unsigned S = 0; S < DI.NumSrcs; ++S)
              D->SrcVals[S] = M.readReg(DI.Srcs[S]);
          } else {
            // Light record: only the warming- and profiling-relevant
            // fields are written (no struct zeroing, no register-file
            // reads); the source values carry unspecified leftovers.
            // Func/Block make the light stream sufficient for
            // IntervalProfiler, so the sampler's profiling pass runs at
            // light cost.
            LightRec = true;
            D->I = DI.I;
            D->Func = DI.Func;
            D->Block = DI.Block;
            D->Pc = DI.Pc;
            D->SeqPc = DI.Pc + 4;
            D->NumSrcs = 0;
            D->IsMem = false;
            D->IsBranch = false;
            D->Taken = false;
          }
        }
      }

      int64_t A = DI.ReadsRa ? M.readReg(DI.Ra) : 0;
      int64_t B = DI.UseImm ? DI.Imm : (DI.ReadsRb ? M.readReg(DI.Rb) : 0);

      int64_t Val = 0;
      bool WroteDest = false;
      bool Stop = false;
      const Edge *Next = &DI.Seq;

      switch (DI.Opc) {
      case Op::Ldi:
        Val = truncSignExtend(DI.Imm, DI.WidthBytes);
        M.writeReg(DI.Rd, Val);
        WroteDest = true;
        break;
      case Op::Msk: {
        unsigned Bytes = DI.WidthBytes;
        uint64_t Field = static_cast<uint64_t>(A) >> (8 * DI.Imm);
        Val = static_cast<int64_t>(
            Bytes == 8 ? Field : Field & ((uint64_t(1) << (8 * Bytes)) - 1));
        M.writeReg(DI.Rd, Val);
        WroteDest = true;
        break;
      }
      case Op::Ld: {
        uint64_t Addr = static_cast<uint64_t>(A + DI.Imm);
        uint64_t Raw = M.loadBytes(Addr, DI.WidthBytes);
        // Alpha semantics: LDBU/LDWU zero-extend, LDL sign-extends, LDQ raw.
        Val = DI.W == Width::W ? signExtend(Raw, 32)
                               : static_cast<int64_t>(Raw);
        M.writeReg(DI.Rd, Val);
        WroteDest = true;
        if constexpr (HasSink) {
          if (D) {
            D->IsMem = true;
            D->MemAddr = Addr;
          }
        }
        break;
      }
      case Op::St: {
        uint64_t Addr = static_cast<uint64_t>(A + DI.Imm);
        int64_t Value = M.readReg(DI.Rb);
        M.storeBytes(Addr, DI.WidthBytes, static_cast<uint64_t>(Value));
        Val = truncSignExtend(Value, DI.WidthBytes);
        if constexpr (HasSink) {
          if (D) {
            D->IsMem = true;
            D->MemAddr = Addr;
          }
        }
        break;
      }
      case Op::Br:
        Next = &DI.Taken;
        break;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Ble:
      case Op::Bgt:
      case Op::Bge: {
        bool Taken = false;
        switch (DI.Opc) {
        case Op::Beq:
          Taken = A == 0;
          break;
        case Op::Bne:
          Taken = A != 0;
          break;
        case Op::Blt:
          Taken = A < 0;
          break;
        case Op::Ble:
          Taken = A <= 0;
          break;
        case Op::Bgt:
          Taken = A > 0;
          break;
        default:
          Taken = A >= 0;
          break;
        }
        if constexpr (HasSink) {
          if (D) {
            D->IsBranch = true;
            D->Taken = Taken;
          }
        }
        Next = Taken ? &DI.Taken : &DI.Seq;
        break;
      }
      case Op::Jsr: {
        if (Frames.size() >= Options.MaxCallDepth) {
          Result.Status = RunStatus::Fault;
          Result.Message = "call depth limit exceeded";
          Stop = true;
          break;
        }
        Frame Fr{Cur, {}};
        if (Options.CheckCalleeSaved)
          saveCalleeRegs(Fr);
        Frames.push_back(Fr);
        Next = &DI.Taken;
        break;
      }
      case Op::Ret: {
        if (Frames.empty()) {
          // Returning from the entry function terminates the program.
          Stop = true;
          Result.Status = RunStatus::Halted;
          break;
        }
        Frame Fr = Frames.back();
        Frames.pop_back();
        if (Options.CheckCalleeSaved && !calleeRegsIntact(Fr)) {
          Result.Status = RunStatus::CalleeSaveViolation;
          Result.Message = "callee-saved register clobbered by " +
                           P.Funcs[DI.Func].Name;
          Stop = true;
          break;
        }
        Next = &Insts[Fr.JsrFlat].Seq;
        break;
      }
      case Op::Halt:
        Stop = true;
        Result.Status = RunStatus::Halted;
        break;
      case Op::Out:
        M.Output.push_back(A);
        break;
      case Op::Nop:
        break;
      default: {
        // Generic ALU (arithmetic, logical, shifts, compares, cmovs, sext,
        // mov).
        int64_t OldRd = DI.RdIsInput ? M.readReg(DI.Rd) : 0;
        Val = evalAluOp(DI.Opc, DI.W, A, B, OldRd);
        M.writeReg(DI.Rd, Val);
        WroteDest = true;
        break;
      }
      }

      if (M.faulted()) {
        Result.Status = RunStatus::Fault;
        Result.Message = M.faultMessage();
        Stop = true;
      }

      // Statistics.
      ++Stats.DynInsts;
      ++Stats.ClassWidth[DI.ClassIdx][DI.WidthIdx];
      if (WroteDest || DI.Opc == Op::St)
        ++Stats.ValueSizeBytes[significantBytes(Val)];

      if constexpr (HasSink) {
        if (D) {
          D->WroteDest = WroteDest;
          D->Result = Val;
          D->NextPc = Stop ? DI.Pc + 4 : Next->NextPc;
          ++BatchN;
          // Light (warming-shadow) stretches flush in small batches so
          // the record buffer stays cache-resident through the
          // engine-write / warmer-read round trip; full batches keep the
          // one-virtual-call-per-4096 contract.
          if (BatchN == TraceBatchCapacity ||
              (Windowed && LightRec && BatchN >= LightBatchCapacity)) {
            Sink->onBatch(Batch.data(), BatchN);
            BatchN = 0;
          }
        }
      }

      if (Stop)
        break;
      if (!follow(*Next))
        break;
    }
  }

  if constexpr (HasSink) if (BatchN)
    Sink->onBatch(Batch.data(), BatchN);

  // Scatter the flat block counters back into the per-function shape the
  // profile consumers expect.
  DP.initBlockCounts(Stats.BlockCounts);
  {
    size_t Slot = 0;
    for (auto &FuncCounts : Stats.BlockCounts)
      for (uint64_t &C : FuncCounts)
        C = FlatCounts[Slot++];
  }

  Result.Output = std::move(M.Output);
  return Result;
}

} // namespace

RunResult og::runProgram(const DecodedProgram &DP, const RunOptions &Options) {
  return Options.Sink ? execute<true, false>(DP, Options, nullptr)
                      : execute<false, false>(DP, Options, nullptr);
}

RunResult og::runProgramWindowed(const DecodedProgram &DP,
                                 const RunOptions &Options,
                                 const std::vector<SampleWindow> &Windows) {
  // Always-on (not assert): a mis-sorted window list would silently
  // deliver a wrong instruction stream in Release builds.
  for (size_t I = 1; I < Windows.size(); ++I)
    if (Windows[I - 1].End > Windows[I].Begin)
      throw std::invalid_argument(
          "runProgramWindowed: sample windows must be sorted by Begin "
          "and pairwise disjoint");
  // No sink (or no windows) degenerates to the plain no-sink run.
  if (!Options.Sink || Windows.empty()) {
    RunOptions NoSink = Options;
    NoSink.Sink = nullptr;
    return execute<false, false>(DP, NoSink, nullptr);
  }
  return execute<true, true>(DP, Options, &Windows);
}
