//===- sim/Interpreter.cpp ------------------------------------------------==//

#include "sim/Interpreter.h"

#include "sim/ExecEngine.h"
#include "support/MathExtras.h"

#include <cassert>

using namespace og;

uint64_t ExecStats::classWidthTotal() const {
  uint64_t N = 0;
  for (const auto &Row : ClassWidth)
    for (uint64_t V : Row)
      N += V;
  return N;
}

int64_t og::evalAluOp(Op O, Width W, int64_t A, int64_t B, int64_t OldRd) {
  unsigned Bytes = widthBytes(W);
  unsigned Bits = 8 * Bytes;
  int64_t Sa = truncSignExtend(A, Bytes);
  int64_t Sb = truncSignExtend(B, Bytes);
  uint64_t Za = zeroExtend(static_cast<uint64_t>(A), Bits);
  uint64_t Zb = zeroExtend(static_cast<uint64_t>(B), Bits);

  switch (O) {
  case Op::Add:
    return truncSignExtend(wrapAdd(A, B), Bytes);
  case Op::Sub:
    return truncSignExtend(wrapSub(A, B), Bytes);
  case Op::Mul:
    return truncSignExtend(wrapMul(A, B), Bytes);
  case Op::And:
    return truncSignExtend(A & B, Bytes);
  case Op::Or:
    return truncSignExtend(A | B, Bytes);
  case Op::Xor:
    return truncSignExtend(A ^ B, Bytes);
  case Op::Bic:
    return truncSignExtend(A & ~B, Bytes);
  case Op::Sll: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    uint64_t Shifted = Amt >= 64 ? 0 : static_cast<uint64_t>(A) << Amt;
    return truncSignExtend(static_cast<int64_t>(Shifted), Bytes);
  }
  case Op::Srl: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    uint64_t Shifted = Amt >= Bits ? 0 : Za >> Amt;
    return signExtend(Shifted, Bits);
  }
  case Op::Sra: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    if (Amt > 63)
      Amt = 63;
    return Sa >> Amt;
  }
  case Op::CmpEq:
    return Sa == Sb;
  case Op::CmpLt:
    return Sa < Sb;
  case Op::CmpLe:
    return Sa <= Sb;
  case Op::CmpUlt:
    return Za < Zb;
  case Op::CmpUle:
    return Za <= Zb;
  case Op::CmovEq:
    return Sa == 0 ? Sb : OldRd;
  case Op::CmovNe:
    return Sa != 0 ? Sb : OldRd;
  case Op::CmovLt:
    return Sa < 0 ? Sb : OldRd;
  case Op::CmovGe:
    return Sa >= 0 ? Sb : OldRd;
  case Op::Sext:
  case Op::Mov:
    return Sa;
  case Op::Ldi:
    return Sa; // A carries the immediate
  default:
    assert(false && "not an ALU op");
    return 0;
  }
}

RunResult og::runProgram(const Program &P, const RunOptions &Options) {
  // Decode-and-run convenience path. Callers that execute one program many
  // times should build the DecodedProgram once (sim/ExecEngine.h) and use
  // the overload taking it; the decode is a single pass over the static
  // code, so for one-shot runs this wrapper costs next to nothing.
  DecodedProgram DP(P);
  return runProgram(DP, Options);
}
