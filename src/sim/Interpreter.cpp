//===- sim/Interpreter.cpp ------------------------------------------------==//

#include "sim/Interpreter.h"

#include "support/MathExtras.h"

#include <cassert>

using namespace og;

uint64_t ExecStats::classWidthTotal() const {
  uint64_t N = 0;
  for (const auto &Row : ClassWidth)
    for (uint64_t V : Row)
      N += V;
  return N;
}

int64_t og::evalAluOp(Op O, Width W, int64_t A, int64_t B, int64_t OldRd) {
  unsigned Bytes = widthBytes(W);
  unsigned Bits = 8 * Bytes;
  int64_t Sa = truncSignExtend(A, Bytes);
  int64_t Sb = truncSignExtend(B, Bytes);
  uint64_t Za = zeroExtend(static_cast<uint64_t>(A), Bits);
  uint64_t Zb = zeroExtend(static_cast<uint64_t>(B), Bits);

  switch (O) {
  case Op::Add:
    return truncSignExtend(wrapAdd(A, B), Bytes);
  case Op::Sub:
    return truncSignExtend(wrapSub(A, B), Bytes);
  case Op::Mul:
    return truncSignExtend(wrapMul(A, B), Bytes);
  case Op::And:
    return truncSignExtend(A & B, Bytes);
  case Op::Or:
    return truncSignExtend(A | B, Bytes);
  case Op::Xor:
    return truncSignExtend(A ^ B, Bytes);
  case Op::Bic:
    return truncSignExtend(A & ~B, Bytes);
  case Op::Sll: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    uint64_t Shifted = Amt >= 64 ? 0 : static_cast<uint64_t>(A) << Amt;
    return truncSignExtend(static_cast<int64_t>(Shifted), Bytes);
  }
  case Op::Srl: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    uint64_t Shifted = Amt >= Bits ? 0 : Za >> Amt;
    return signExtend(Shifted, Bits);
  }
  case Op::Sra: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    if (Amt > 63)
      Amt = 63;
    return Sa >> Amt;
  }
  case Op::CmpEq:
    return Sa == Sb;
  case Op::CmpLt:
    return Sa < Sb;
  case Op::CmpLe:
    return Sa <= Sb;
  case Op::CmpUlt:
    return Za < Zb;
  case Op::CmpUle:
    return Za <= Zb;
  case Op::CmovEq:
    return Sa == 0 ? Sb : OldRd;
  case Op::CmovNe:
    return Sa != 0 ? Sb : OldRd;
  case Op::CmovLt:
    return Sa < 0 ? Sb : OldRd;
  case Op::CmovGe:
    return Sa >= 0 ? Sb : OldRd;
  case Op::Sext:
  case Op::Mov:
    return Sa;
  case Op::Ldi:
    return Sa; // A carries the immediate
  default:
    assert(false && "not an ALU op");
    return 0;
  }
}

namespace {

constexpr uint64_t CodeBase = 0x1000;

/// Precomputed code layout: dense instruction ids and synthetic PCs.
struct CodeLayout {
  std::vector<std::vector<size_t>> BlockBase; ///< [func][block] -> inst id
  std::vector<uint64_t> FuncPcBase;           ///< [func] -> base PC

  explicit CodeLayout(const Program &P) {
    BlockBase.resize(P.Funcs.size());
    FuncPcBase.resize(P.Funcs.size());
    uint64_t Pc = CodeBase;
    for (const Function &F : P.Funcs) {
      FuncPcBase[F.Id] = Pc;
      auto &Bases = BlockBase[F.Id];
      Bases.resize(F.Blocks.size());
      size_t N = 0;
      for (const BasicBlock &BB : F.Blocks) {
        Bases[BB.Id] = N;
        N += BB.Insts.size();
      }
      Pc += N * 4;
    }
  }

  uint64_t pcOf(int32_t Func, int32_t Block, int32_t Index) const {
    return FuncPcBase[Func] +
           (BlockBase[Func][Block] + static_cast<size_t>(Index)) * 4;
  }
};

struct Frame {
  int32_t Func;
  int32_t Block;
  int32_t Index;
  int64_t SavedCalleeRegs[8]; ///< s0..s5, fp, sp (checked mode)
};

} // namespace

RunResult og::runProgram(const Program &P, const RunOptions &Options) {
  RunResult Result;
  Machine M(Options.Machine);
  M.installData(Program::DataBase, P.Data);
  CodeLayout Layout(P);

  ExecStats &Stats = Result.Stats;
  Stats.BlockCounts.resize(P.Funcs.size());
  for (const Function &F : P.Funcs)
    Stats.BlockCounts[F.Id].assign(F.Blocks.size(), 0);

  // Initial state: SP at the top of memory, arguments in a0..a5.
  M.writeReg(RegSP, static_cast<int64_t>(M.memSize()) - 64);
  for (size_t I = 0; I < Options.ArgRegs.size() && I < NumArgRegs; ++I)
    M.writeReg(static_cast<Reg>(RegA0 + I), Options.ArgRegs[I]);

  std::vector<Frame> Frames;
  int32_t Func = P.EntryFunc;
  int32_t Block = P.Funcs[Func].EntryBlock;
  int32_t Index = 0;
  ++Stats.BlockCounts[Func][Block];

  auto saveCalleeRegs = [&](Frame &Fr) {
    int Slot = 0;
    for (Reg R = RegS0; R <= RegFP; ++R)
      Fr.SavedCalleeRegs[Slot++] = M.readReg(R);
    Fr.SavedCalleeRegs[Slot] = M.readReg(RegSP);
  };
  auto calleeRegsIntact = [&](const Frame &Fr) {
    int Slot = 0;
    for (Reg R = RegS0; R <= RegFP; ++R)
      if (Fr.SavedCalleeRegs[Slot++] != M.readReg(R))
        return false;
    return Fr.SavedCalleeRegs[Slot] == M.readReg(RegSP);
  };

  uint64_t Fuel = Options.Fuel;
  size_t EmptyHops = 0;

  while (true) {
    const Function &F = P.Funcs[Func];
    const BasicBlock &BB = F.Blocks[Block];

    // Block exhausted: structural fallthrough (no instruction executes).
    if (static_cast<size_t>(Index) >= BB.Insts.size()) {
      if (BB.FallthroughSucc == NoTarget) {
        Result.Status = RunStatus::Fault;
        Result.Message = "control fell off a block without successor";
        break;
      }
      if (++EmptyHops > F.Blocks.size() + 1) {
        Result.Status = RunStatus::Fault;
        Result.Message = "cycle of empty blocks";
        break;
      }
      Block = BB.FallthroughSucc;
      Index = 0;
      ++Stats.BlockCounts[Func][Block];
      continue;
    }
    EmptyHops = 0;

    if (Fuel == 0) {
      Result.Status = RunStatus::OutOfFuel;
      Result.Message = "dynamic instruction budget exhausted";
      break;
    }
    --Fuel;

    const Instruction &I = BB.Insts[Index];
    const OpInfo &Info = I.info();

    DynInst D;
    bool WantTrace = static_cast<bool>(Options.Trace);
    D.I = &I;
    D.Func = Func;
    D.Block = Block;
    D.Index = Index;
    D.Pc = Layout.pcOf(Func, Block, Index);
    D.SeqPc = D.Pc + 4;

    // Gather sources (also feeds the trace).
    unsigned NSrc = I.numRegSources();
    D.NumSrcs = NSrc;
    for (unsigned S = 0; S < NSrc; ++S)
      D.SrcVals[S] = M.readReg(I.regSource(S));

    int64_t A = Info.ReadsRa ? M.readReg(I.Ra) : 0;
    int64_t B = I.UseImm ? I.Imm : (Info.ReadsRb ? M.readReg(I.Rb) : 0);

    // Next position defaults to sequential.
    int32_t NextFunc = Func, NextBlock = Block, NextIndex = Index + 1;
    bool Stop = false;
    bool Jumped = false;

    switch (I.Opc) {
    case Op::Ldi:
      D.Result = truncSignExtend(I.Imm, widthBytes(I.W));
      M.writeReg(I.Rd, D.Result);
      D.WroteDest = true;
      break;
    case Op::Msk: {
      unsigned Bytes = widthBytes(I.W);
      uint64_t Field = static_cast<uint64_t>(A) >> (8 * I.Imm);
      D.Result = static_cast<int64_t>(
          Bytes == 8 ? Field : Field & ((uint64_t(1) << (8 * Bytes)) - 1));
      M.writeReg(I.Rd, D.Result);
      D.WroteDest = true;
      break;
    }
    case Op::Ld: {
      uint64_t Addr = static_cast<uint64_t>(A + I.Imm);
      unsigned Bytes = widthBytes(I.W);
      uint64_t Raw = M.loadBytes(Addr, Bytes);
      // Alpha semantics: LDBU/LDWU zero-extend, LDL sign-extends, LDQ raw.
      D.Result = I.W == Width::W ? signExtend(Raw, 32)
                                 : static_cast<int64_t>(Raw);
      M.writeReg(I.Rd, D.Result);
      D.WroteDest = true;
      D.IsMem = true;
      D.MemAddr = Addr;
      break;
    }
    case Op::St: {
      uint64_t Addr = static_cast<uint64_t>(A + I.Imm);
      unsigned Bytes = widthBytes(I.W);
      int64_t Value = M.readReg(I.Rb);
      M.storeBytes(Addr, Bytes, static_cast<uint64_t>(Value));
      D.Result = truncSignExtend(Value, Bytes);
      D.IsMem = true;
      D.MemAddr = Addr;
      break;
    }
    case Op::Br:
      NextBlock = I.Target;
      NextIndex = 0;
      Jumped = true;
      break;
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Ble:
    case Op::Bgt:
    case Op::Bge: {
      bool Taken = false;
      switch (I.Opc) {
      case Op::Beq:
        Taken = A == 0;
        break;
      case Op::Bne:
        Taken = A != 0;
        break;
      case Op::Blt:
        Taken = A < 0;
        break;
      case Op::Ble:
        Taken = A <= 0;
        break;
      case Op::Bgt:
        Taken = A > 0;
        break;
      default:
        Taken = A >= 0;
        break;
      }
      D.IsBranch = true;
      D.Taken = Taken;
      NextBlock = Taken ? I.Target : BB.FallthroughSucc;
      NextIndex = 0;
      Jumped = true;
      break;
    }
    case Op::Jsr: {
      if (Frames.size() >= Options.MaxCallDepth) {
        Result.Status = RunStatus::Fault;
        Result.Message = "call depth limit exceeded";
        Stop = true;
        break;
      }
      Frame Fr{Func, Block, Index + 1, {}};
      if (Options.CheckCalleeSaved)
        saveCalleeRegs(Fr);
      Frames.push_back(Fr);
      NextFunc = I.Callee;
      NextBlock = P.Funcs[I.Callee].EntryBlock;
      NextIndex = 0;
      Jumped = true;
      break;
    }
    case Op::Ret: {
      if (Frames.empty()) {
        // Returning from the entry function terminates the program.
        Stop = true;
        Result.Status = RunStatus::Halted;
        break;
      }
      Frame Fr = Frames.back();
      Frames.pop_back();
      if (Options.CheckCalleeSaved && !calleeRegsIntact(Fr)) {
        Result.Status = RunStatus::CalleeSaveViolation;
        Result.Message = "callee-saved register clobbered by " +
                         P.Funcs[Func].Name;
        Stop = true;
        break;
      }
      NextFunc = Fr.Func;
      NextBlock = Fr.Block;
      NextIndex = Fr.Index;
      break;
    }
    case Op::Halt:
      Stop = true;
      Result.Status = RunStatus::Halted;
      break;
    case Op::Out:
      M.Output.push_back(A);
      break;
    case Op::Nop:
      break;
    default: {
      // Generic ALU (arithmetic, logical, shifts, compares, cmovs, sext,
      // mov).
      int64_t OldRd = Info.RdIsInput ? M.readReg(I.Rd) : 0;
      int64_t SrcA = I.Opc == Op::Ldi ? I.Imm : A;
      D.Result = evalAluOp(I.Opc, I.W, SrcA, B, OldRd);
      M.writeReg(I.Rd, D.Result);
      D.WroteDest = true;
      break;
    }
    }

    if (M.faulted()) {
      Result.Status = RunStatus::Fault;
      Result.Message = M.faultMessage();
      Stop = true;
    }

    // Statistics.
    ++Stats.DynInsts;
    ++Stats.ClassWidth[static_cast<unsigned>(Info.Class)]
                      [static_cast<unsigned>(I.W)];
    if (D.WroteDest || I.Opc == Op::St)
      ++Stats.ValueSizeBytes[significantBytes(D.Result)];

    if (WantTrace) {
      D.NextPc = Stop ? D.Pc + 4
                      : Layout.pcOf(NextFunc, NextBlock, NextIndex);
      // A trailing position one past the block end resolves to the next
      // block's fallthrough; pcOf stays monotone in that case, good enough
      // for the fetch model.
      Options.Trace(D);
    }

    if (Stop)
      break;

    Func = NextFunc;
    Block = NextBlock;
    Index = NextIndex;
    if (Jumped && NextIndex == 0)
      ++Stats.BlockCounts[Func][Block];
  }

  Result.Output = std::move(M.Output);
  return Result;
}
