//===- sim/Interpreter.cpp ------------------------------------------------==//

#include "sim/Interpreter.h"

#include "sim/AluOps.h"
#include "sim/ExecEngine.h"
#include "support/MathExtras.h"

#include <cassert>

using namespace og;

uint64_t ExecStats::classWidthTotal() const {
  uint64_t N = 0;
  for (const auto &Row : ClassWidth)
    for (uint64_t V : Row)
      N += V;
  return N;
}

int64_t og::evalAluOp(Op O, Width W, int64_t A, int64_t B, int64_t OldRd) {
  // Shared body (sim/AluOps.h): the superblock executor instantiates the
  // same implementation per constant opcode, so both paths agree bit for
  // bit by construction.
  return evalAluOpImpl(O, widthBytes(W), A, B, OldRd);
}

RunResult og::runProgram(const Program &P, const RunOptions &Options) {
  // Decode-and-run convenience path. Callers that execute one program many
  // times should build the DecodedProgram once (sim/ExecEngine.h) and use
  // the overload taking it; the decode is a single pass over the static
  // code, so for one-shot runs this wrapper costs next to nothing.
  DecodedProgram DP(P);
  return runProgram(DP, Options);
}
