//===- sim/Superblock.h - Profile-driven superblock fusion -------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace-driven superblock formation over a DecodedProgram. A superblock
/// is a hot straight-line chain of dynamic instruction positions — grown
/// from a block-profile seed through unconditional jumps, fallthrough
/// chains, and strongly biased conditional branches — fused into a single
/// dispatch unit the engine executes without per-instruction fuel checks,
/// window checks, or edge following:
///
///  - intra-superblock control transfers are pre-resolved ("the next SInst
///    is *SP+1"), with unconditional branches and nops elided entirely;
///  - the block-count increments of every internal edge are pre-aggregated
///    into one (slot, delta) list applied per full pass;
///  - the per-instruction class/width histogram bumps are pre-aggregated
///    the same way, so a full pass updates ExecStats with a handful of
///    additions instead of one pair of increments per instruction.
///
/// Exits are exact: a conditional branch leaving the trace, or a faulting
/// memory access, reconciles the prefix it actually executed from the
/// per-position sequences kept alongside (CwSeq / RawSlots), so stats and
/// block counts are bit-identical with the generic loop for every run,
/// including ones that fault or run out of fuel. The executor lives in
/// sim/ExecEngine.cpp; a plan is immutable and tied to the DecodedProgram
/// it was built from (the engine rejects mismatched plans).
///
//===----------------------------------------------------------------------===//

#ifndef OG_SIM_SUPERBLOCK_H
#define OG_SIM_SUPERBLOCK_H

#include "sim/ExecEngine.h"

#include <cstdint>
#include <vector>

namespace og {

struct RunOptions;

/// Formation policy. Defaults are deliberately permissive: a side exit
/// reconciles with two cheap array walks, so extending a trace past a
/// moderately biased branch costs little even when the exit is taken.
struct SuperblockPolicy {
  /// Minimum profile count of a block (or a call-site's block, for the
  /// post-call continuation seed) to seed a superblock. Low on purpose:
  /// an unused superblock costs nothing at run time, and lukewarm code
  /// dominates the uncovered remainder on branchy workloads.
  uint64_t MinBlockCount = 4;
  /// Continue through a conditional branch only when the hotter successor
  /// holds at least this fraction of the two successors' combined counts.
  /// Near 0.5: a side exit reconciles with two cheap array walks, so
  /// extending through weakly biased branches still wins on balance.
  double SuccessorBias = 0.52;
  /// Caps per superblock: dynamic positions per pass / block transitions.
  /// MaxDynLen doubles as the unroll budget — a trace that returns to its
  /// own entry keeps growing through whole loop-body copies while they
  /// fit, so a single pass covers many loop iterations.
  unsigned MaxDynLen = 512;
  unsigned MaxBlocks = 128;
  /// Discard traces shorter than this many dynamic positions.
  unsigned MinDynLen = 2;
};

/// ALU opcodes a superblock dispatches per-opcode (Op order, Msk excluded —
/// it has bespoke field-extract semantics and its own handler).
#define OG_SB_ALU_OPS(X)                                                       \
  X(Add) X(Sub) X(Mul) X(And) X(Or) X(Xor) X(Bic) X(Sll) X(Srl) X(Sra)         \
  X(CmpEq) X(CmpLt) X(CmpLe) X(CmpUlt) X(CmpUle)                               \
  X(CmovEq) X(CmovNe) X(CmovLt) X(CmovGe) X(Sext) X(Mov)

/// Superblock handler tokens. ALU ops split register/immediate so the
/// executor's per-token bodies are branch-free on operand shape; loads
/// split on the word variant's sign extension; conditional branches are
/// normalized to a continue-predicate ("stay on trace iff pred(ra)"), so
/// one token set covers both on-trace directions.
enum SbHandler : uint8_t {
#define OG_SB_ENUM(OP) SbH_##OP##_RR, SbH_##OP##_RI,
  OG_SB_ALU_OPS(OG_SB_ENUM)
#undef OG_SB_ENUM
  SbH_Ldi,
  SbH_Msk,
  SbH_Ld,  ///< byte/half/quad load (zero-extended / raw)
  SbH_LdW, ///< word load (sign-extends, Alpha LDL)
  SbH_St,
  SbH_Out,
  SbH_BrEq, ///< continue iff ra == 0
  SbH_BrNe,
  SbH_BrLt,
  SbH_BrLe,
  SbH_BrGt,
  SbH_BrGe,
  SbH_End, ///< pass complete: apply aggregates, follow the final edge
  SbH_NumHandlers,
};

/// SInst::Flags bits.
enum : uint8_t {
  /// The side exit of this branch follows the Taken edge (i.e. the trace
  /// continues on the not-taken direction).
  SbFlagOffTraceTaken = 1,
  /// This branch is the last position: its on-trace direction completes
  /// the pass instead of advancing to the next SInst.
  SbFlagLast = 2,
};

/// One fused instruction: 32 bytes (vs ~104 for a DInst) so a pass streams
/// through a third of the cache lines. Ra/Rb are pre-normalized to RegZero
/// when the op does not read them (reads of RegZero yield 0), Ldi's value
/// is pre-truncated into Imm, and SeqPos/SlotsBefore locate the
/// instruction in the reconciliation sequences on a side exit.
struct SInst {
  int64_t Imm = 0;          ///< immediate / pre-computed Ldi value
  int32_t OrigFlat = -1;    ///< source DInst flat index (exit edges)
  uint32_t SlotsBefore = 0; ///< RawSlots prefix length before this position
  uint32_t SeqPos = 0;      ///< dynamic position within the superblock
  uint8_t H = SbH_End;      ///< SbHandler token
  uint8_t WidthBytes = 8;
  uint8_t Rd = 0, Ra = 0, Rb = 0;
  uint8_t Flags = 0;
};

/// Aggregated ExecStats::ClassWidth delta: flat slot (row*4+col) += N.
struct SbCwDelta {
  uint8_t Slot = 0;
  uint32_t N = 0;
};

/// Aggregated flat block-count delta: FlatCounts[Slot] += N.
struct SbSlotDelta {
  uint32_t Slot = 0;
  uint32_t N = 0;
};

/// One formed superblock; all ranges index the plan's pooled arrays.
struct Superblock {
  int32_t EntryFlat = -1; ///< flat index the fast path intercepts
  uint32_t DynLen = 0;    ///< dynamic instructions per full pass
  /// Edge followed after a full pass (never counted in PassSlots; the
  /// engine follows it generically, so a back edge to EntryFlat re-enters
  /// this superblock on the next loop-top check).
  const DecodedProgram::Edge *FinalEdge = nullptr;
  uint32_t SBegin = 0;   ///< first SInst (list ends with an SbH_End token)
  uint32_t RawBegin = 0; ///< base into rawSlots(); SlotsBefore is relative
  uint32_t CwBegin = 0;  ///< base into cwSeq(); position k at CwBegin + k
  uint32_t CwdBegin = 0, CwdEnd = 0;   ///< range into cwDeltas()
  uint32_t PassBegin = 0, PassEnd = 0; ///< range into passSlots()
};

/// An immutable set of superblocks formed over one DecodedProgram from a
/// basic-block profile. Thread-safe to share across concurrent runs.
class SuperblockPlan {
public:
  /// Forms superblocks over \p DP using \p BlockCounts (per-function,
  /// per-block execution counts — ExecStats::BlockCounts of any prior run
  /// of the same-shaped program). Throws std::invalid_argument when the
  /// profile's shape does not match the program.
  SuperblockPlan(const DecodedProgram &DP,
                 const std::vector<std::vector<uint64_t>> &BlockCounts,
                 const SuperblockPolicy &Policy = {});

  const DecodedProgram &decodedProgram() const { return *DP; }
  const SuperblockPolicy &policy() const { return Pol; }
  size_t size() const { return Sbs.size(); }

  const std::vector<Superblock> &superblocks() const { return Sbs; }
  const std::vector<SInst> &sinsts() const { return Pool; }
  /// Block-count slot bumps of the internal edges, in execution order.
  const std::vector<uint32_t> &rawSlots() const { return RawSlots; }
  /// Flat ClassWidth slot of each dynamic position, in execution order.
  const std::vector<uint8_t> &cwSeq() const { return CwSeq; }
  const std::vector<SbCwDelta> &cwDeltas() const { return CwDeltas; }
  const std::vector<SbSlotDelta> &passSlots() const { return PassSlots; }
  /// Superblock id entered at each flat instruction index, -1 when none.
  const std::vector<int32_t> &entryMap() const { return EntrySb; }

private:
  const DecodedProgram *DP;
  SuperblockPolicy Pol;
  std::vector<Superblock> Sbs;
  std::vector<SInst> Pool;
  std::vector<uint32_t> RawSlots;
  std::vector<uint8_t> CwSeq;
  std::vector<SbCwDelta> CwDeltas;
  std::vector<SbSlotDelta> PassSlots;
  std::vector<int32_t> EntrySb;
};

/// Profiles \p DP with a cheap capped-fuel no-sink run (same machine
/// config and arguments as \p Opts, no sink, no plan) and forms a plan
/// from the observed block counts. This is the self-profiling path for
/// callers without a prior profile; runners that already hold
/// ExecStats::BlockCounts should construct SuperblockPlan directly.
SuperblockPlan buildSelfProfiledPlan(const DecodedProgram &DP,
                                     const RunOptions &Opts,
                                     uint64_t ProfileFuel = 50'000'000,
                                     const SuperblockPolicy &Policy = {});

} // namespace og

#endif // OG_SIM_SUPERBLOCK_H
