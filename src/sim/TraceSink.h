//===- sim/TraceSink.h - Dynamic trace consumers -----------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-instruction record the interpreter produces and the batched
/// sink interface through which every trace consumer (profiler, timing
/// model, power model) receives it. The engine buffers executed
/// instructions and hands them over in fixed-size batches — one virtual
/// call per TraceBatchCapacity instructions instead of one std::function
/// call per instruction — which keeps the interpreter hot loop free of
/// indirect calls. DynInst is self-contained (no live machine state is
/// referenced), so deferring delivery by up to a batch is observationally
/// equivalent to the old per-instruction callback.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SIM_TRACESINK_H
#define OG_SIM_TRACESINK_H

#include "isa/Instruction.h"

#include <cstdint>
#include <functional>
#include <utility>

namespace og {

/// One executed instruction, as seen by trace consumers (profiler, timing
/// model, power model).
struct DynInst {
  const Instruction *I = nullptr;
  int32_t Func = 0;
  int32_t Block = 0;
  int32_t Index = 0;
  uint64_t Pc = 0;       ///< synthetic code address (4 bytes/instruction)
  uint64_t NextPc = 0;   ///< address of the next executed instruction
  uint64_t SeqPc = 0;    ///< address of the sequentially-next instruction
  unsigned NumSrcs = 0;
  int64_t SrcVals[3] = {};
  bool WroteDest = false;
  int64_t Result = 0;
  bool IsMem = false;
  uint64_t MemAddr = 0;
  bool IsBranch = false; ///< conditional branch
  bool Taken = false;
};

/// Instructions per onBatch() delivery; the final batch of a run may be
/// shorter.
constexpr size_t TraceBatchCapacity = 4096;

/// Receiver of the dynamic instruction stream. The engine calls onBatch()
/// with consecutive, program-ordered slices: every batch holds
/// TraceBatchCapacity records except possibly the last one of the run.
/// Pointers into the batch are valid only for the duration of the call.
class TraceSink {
public:
  virtual ~TraceSink();
  virtual void onBatch(const DynInst *Batch, size_t N) = 0;
};

/// Adapter for call sites that want the old per-instruction-callback
/// ergonomics: wraps a function and invokes it once per record, in order.
class FnTraceSink final : public TraceSink {
public:
  explicit FnTraceSink(std::function<void(const DynInst &)> Fn)
      : Fn(std::move(Fn)) {}

  void onBatch(const DynInst *Batch, size_t N) override {
    for (size_t I = 0; I < N; ++I)
      Fn(Batch[I]);
  }

private:
  std::function<void(const DynInst &)> Fn;
};

} // namespace og

#endif // OG_SIM_TRACESINK_H
