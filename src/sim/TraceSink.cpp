//===- sim/TraceSink.cpp --------------------------------------------------==//

#include "sim/TraceSink.h"

using namespace og;

// Out-of-line key function so the vtable has one home.
TraceSink::~TraceSink() = default;
