//===- sim/Machine.cpp ----------------------------------------------------==//

#include "sim/Machine.h"

#include <cstdio>

using namespace og;

Machine::Machine(const MachineConfig &Config) : Mem(Config.MemBytes, 0) {}

void Machine::fault(const char *What, uint64_t Addr) {
  if (Faulted)
    return;
  Faulted = true;
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s at address 0x%llx", What,
                static_cast<unsigned long long>(Addr));
  FaultMessage = Buf;
}

uint64_t Machine::loadBytes(uint64_t Addr, unsigned Bytes) {
  if (Addr + Bytes > Mem.size() || Addr + Bytes < Addr) {
    fault("load fault", Addr);
    return 0;
  }
  uint64_t V = 0;
  for (unsigned I = 0; I < Bytes; ++I)
    V |= static_cast<uint64_t>(Mem[Addr + I]) << (8 * I);
  return V;
}

void Machine::storeBytes(uint64_t Addr, unsigned Bytes, uint64_t Value) {
  if (Addr + Bytes > Mem.size() || Addr + Bytes < Addr) {
    fault("store fault", Addr);
    return;
  }
  for (unsigned I = 0; I < Bytes; ++I)
    Mem[Addr + I] = static_cast<uint8_t>(Value >> (8 * I));
}

void Machine::installData(uint64_t Addr, const std::vector<uint8_t> &Data) {
  if (Addr + Data.size() > Mem.size()) {
    fault("data segment overflow", Addr);
    return;
  }
  for (size_t I = 0; I < Data.size(); ++I)
    Mem[Addr + I] = Data[I];
}
