//===- sim/Machine.cpp ----------------------------------------------------==//

#include "sim/Machine.h"

#include <cstdio>

using namespace og;

Machine::Machine(const MachineConfig &Config) : Mem(Config.MemBytes, 0) {}

void Machine::fault(const char *What, uint64_t Addr) {
  if (Faulted)
    return;
  Faulted = true;
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s at address 0x%llx", What,
                static_cast<unsigned long long>(Addr));
  FaultMessage = Buf;
}

void Machine::installData(uint64_t Addr, const std::vector<uint8_t> &Data) {
  if (Addr + Data.size() > Mem.size()) {
    fault("data segment overflow", Addr);
    return;
  }
  for (size_t I = 0; I < Data.size(); ++I)
    Mem[Addr + I] = Data[I];
}
