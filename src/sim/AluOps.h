//===- sim/AluOps.h - Inline ALU operation semantics -------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for width-w ALU semantics: a width-w
/// operation reads the low w bits of its sources, computes modulo 2^w, and
/// sign-extends the result to 64 bits. Both the generic interpreter
/// dispatch (sim/Interpreter.cpp's evalAluOp) and the superblock executor's
/// per-opcode handlers call evalAluOpImpl — the superblock handlers with a
/// compile-time-constant Op, which lets the compiler fold the switch away
/// and inline just that opcode's arithmetic. Keeping one body guarantees
/// the two dispatch paths stay bit-identical by construction.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SIM_ALUOPS_H
#define OG_SIM_ALUOPS_H

#include "isa/Opcode.h"
#include "support/MathExtras.h"

#include <cassert>

namespace og {

/// True for the ops whose old destination value is an input (Cmov family).
/// constexpr so superblock handlers instantiated per-opcode can skip the
/// Rd read entirely for everything else.
constexpr bool aluReadsOldRd(Op O) {
  return O == Op::CmovEq || O == Op::CmovNe || O == Op::CmovLt ||
         O == Op::CmovGe;
}

/// Evaluates ALU op \p O at a width of \p Bytes bytes. \p A and \p B are
/// the full 64-bit source values (B is the immediate when the instruction
/// uses one); \p OldRd is the previous destination value (Cmov only).
/// Returns the sign-extended 64-bit result.
inline int64_t evalAluOpImpl(Op O, unsigned Bytes, int64_t A, int64_t B,
                             int64_t OldRd) {
  unsigned Bits = 8 * Bytes;
  int64_t Sa = truncSignExtend(A, Bytes);
  int64_t Sb = truncSignExtend(B, Bytes);
  uint64_t Za = zeroExtend(static_cast<uint64_t>(A), Bits);
  uint64_t Zb = zeroExtend(static_cast<uint64_t>(B), Bits);

  switch (O) {
  case Op::Add:
    return truncSignExtend(wrapAdd(A, B), Bytes);
  case Op::Sub:
    return truncSignExtend(wrapSub(A, B), Bytes);
  case Op::Mul:
    return truncSignExtend(wrapMul(A, B), Bytes);
  case Op::And:
    return truncSignExtend(A & B, Bytes);
  case Op::Or:
    return truncSignExtend(A | B, Bytes);
  case Op::Xor:
    return truncSignExtend(A ^ B, Bytes);
  case Op::Bic:
    return truncSignExtend(A & ~B, Bytes);
  case Op::Sll: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    uint64_t Shifted = Amt >= 64 ? 0 : static_cast<uint64_t>(A) << Amt;
    return truncSignExtend(static_cast<int64_t>(Shifted), Bytes);
  }
  case Op::Srl: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    uint64_t Shifted = Amt >= Bits ? 0 : Za >> Amt;
    return signExtend(Shifted, Bits);
  }
  case Op::Sra: {
    unsigned Amt = static_cast<unsigned>(B & 63);
    if (Amt > 63)
      Amt = 63;
    return Sa >> Amt;
  }
  case Op::CmpEq:
    return Sa == Sb;
  case Op::CmpLt:
    return Sa < Sb;
  case Op::CmpLe:
    return Sa <= Sb;
  case Op::CmpUlt:
    return Za < Zb;
  case Op::CmpUle:
    return Za <= Zb;
  case Op::CmovEq:
    return Sa == 0 ? Sb : OldRd;
  case Op::CmovNe:
    return Sa != 0 ? Sb : OldRd;
  case Op::CmovLt:
    return Sa < 0 ? Sb : OldRd;
  case Op::CmovGe:
    return Sa >= 0 ? Sb : OldRd;
  case Op::Sext:
  case Op::Mov:
    return Sa;
  case Op::Ldi:
    return Sa; // A carries the immediate
  default:
    assert(false && "not an ALU op");
    return 0;
  }
}

} // namespace og

#endif // OG_SIM_ALUOPS_H
