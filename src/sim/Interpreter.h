//===- sim/Interpreter.h - Functional simulator ------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Program to completion, implementing the narrow-operand
/// semantics the whole project depends on: a width-w operation reads the
/// low w bits of its sources, computes modulo 2^w, and sign-extends the
/// result to 64 bits (loads follow Alpha: byte/halfword zero-extend, word
/// sign-extends). Because opcode widths change program state in this model,
/// running the original and the narrowed binaries and comparing their
/// output streams is a complete end-to-end check of VRP/VRS soundness.
///
/// The interpreter drives everything downstream: it collects the dynamic
/// opcode/width histograms (Table 3, Figures 2/7), per-block execution
/// counts (basic-block profiles for VRS), the dynamic value-size histogram
/// (Figure 12), and can stream the full dynamic trace — in batches,
/// through a TraceSink — into the out-of-order timing model.
///
/// Execution dispatches over a flattened, pre-decoded form of the program
/// (sim/ExecEngine.h). The Program overload below decodes on every call;
/// callers that run one program repeatedly should build a DecodedProgram
/// once and use the overload taking it.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SIM_INTERPRETER_H
#define OG_SIM_INTERPRETER_H

#include "program/Program.h"
#include "sim/Machine.h"
#include "sim/TraceSink.h"
#include "support/Hash.h"

#include <cstdint>
#include <string>
#include <vector>

namespace og {

class SuperblockPlan;

/// How the engine's inner loop dispatches on instruction kind.
enum class DispatchMode : uint8_t {
  Auto,     ///< threaded when the build supports it, switch otherwise
  Switch,   ///< portable dense switch over pre-decoded handler tokens
  Threaded, ///< computed-goto token threading (OG_HAS_COMPUTED_GOTO builds)
};

/// True when this build carries the computed-goto dispatch path
/// (OG_HAS_COMPUTED_GOTO was detected and not force-disabled).
bool engineHasThreadedDispatch();

/// Resolves Auto to the fastest mode this build supports; demotes Threaded
/// to Switch on builds without computed goto (portable fallback, never an
/// error).
DispatchMode resolveDispatchMode(DispatchMode M);

/// Short stable name ("switch" / "threaded") of a resolved mode.
const char *dispatchModeName(DispatchMode M);

/// Execution-engine self-observation counters: how much of the run the
/// superblock fast path carried and why it fell out. Purely diagnostic —
/// two runs that differ only in these are functionally identical.
struct EngineCounters {
  uint64_t SuperblocksFormed = 0;  ///< static superblocks in the plan
  uint64_t SuperblockEntries = 0;  ///< times the fast path was entered
  uint64_t SuperblockPasses = 0;   ///< full front-to-exit passes
  uint64_t SuperblockInsts = 0;    ///< dynamic instructions executed inside
  uint64_t SideExits = 0;          ///< off-trace branch / fault departures
  uint64_t WindowFissions = 0;     ///< entries declined at window boundaries

  bool empty() const {
    return SuperblocksFormed == 0 && SuperblockEntries == 0 &&
           SuperblockPasses == 0 && SuperblockInsts == 0 && SideExits == 0 &&
           WindowFissions == 0;
  }
  /// Fraction of \p DynInsts executed inside superblocks (0 when none ran).
  double coverage(uint64_t DynInsts) const {
    return DynInsts ? static_cast<double>(SuperblockInsts) / DynInsts : 0.0;
  }
};

/// Terminal states of a run.
enum class RunStatus : uint8_t {
  Halted,      ///< executed HALT (or returned from the entry function)
  OutOfFuel,   ///< dynamic instruction budget exhausted
  Fault,       ///< memory fault / stack overflow / missing return
  CalleeSaveViolation, ///< checked mode: callee clobbered s0..s5/sp
};

/// Aggregate statistics of one run.
struct ExecStats {
  uint64_t DynInsts = 0;
  /// Dynamic counts by operation class and opcode width.
  uint64_t ClassWidth[18][4] = {};
  /// Histogram of significant byte-lengths of produced/stored values
  /// (index 1..8), the quantity of paper Figure 12.
  uint64_t ValueSizeBytes[9] = {};
  /// Per-function, per-block execution counts (basic-block profile).
  std::vector<std::vector<uint64_t>> BlockCounts;

  uint64_t classWidthTotal() const;
};

/// Result of a run.
struct RunResult {
  RunStatus Status = RunStatus::Halted;
  std::string Message;
  ExecStats Stats;
  std::vector<int64_t> Output;
  /// Diagnostic dispatch/superblock counters (never affects Stats/Output).
  EngineCounters Engine;
};

/// Options for one run.
struct RunOptions {
  uint64_t Fuel = 200'000'000; ///< max dynamic instructions
  MachineConfig Machine;
  std::vector<int64_t> ArgRegs;  ///< initial a0..a5 (unset = 0)
  bool CheckCalleeSaved = false; ///< verify the ABI contract (test mode)
  unsigned MaxCallDepth = 4096;
  /// Optional dynamic trace consumer; receives every executed instruction
  /// in order, in batches of up to TraceBatchCapacity (sim/TraceSink.h).
  /// Wrap a per-instruction callback in FnTraceSink for the old ergonomics.
  TraceSink *Sink = nullptr;
  /// Inner-loop dispatch selection. Auto resolves to the fastest mode the
  /// build supports; every mode is bit-identical in results.
  DispatchMode Dispatch = DispatchMode::Auto;
  /// Optional superblock plan (sim/Superblock.h) built over the same
  /// DecodedProgram. When set, stretches of the run that materialize no
  /// trace records (no-sink runs, and the fast-forward gaps of windowed
  /// runs) execute through fused superblocks. Stats, output, and the
  /// record stream a sink sees are unchanged; runProgram throws
  /// std::invalid_argument if the plan was built for another decode.
  const SuperblockPlan *Superblocks = nullptr;
};

/// Folds the semantic run-context fields of \p O into \p H: everything
/// that shapes the dynamic instruction stream (fuel, memory size, initial
/// arguments, call-depth limit, ABI checking). Execution plumbing that
/// cannot change results — Sink, Dispatch, Superblocks — is deliberately
/// excluded, so content keys (sample/SamplePlanCache.h,
/// service/CellKey.h) stay stable across dispatch modes.
inline void hashRunOptions(Fnv1a &H, const RunOptions &O) {
  H.u64(O.Fuel);
  H.u64(O.Machine.MemBytes);
  H.u64(O.MaxCallDepth);
  H.u64(O.CheckCalleeSaved ? 1 : 0);
  H.u64(O.ArgRegs.size());
  for (int64_t A : O.ArgRegs)
    H.u64(static_cast<uint64_t>(A));
}

/// Executes \p P under \p Options. Decodes the program first; see
/// sim/ExecEngine.h for the overload that reuses a cached decode.
RunResult runProgram(const Program &P, const RunOptions &Options);

/// Computes the same per-instruction width-w ALU result the interpreter
/// would (exposed so tests and the VRP transfer functions can cross-check
/// against it). Returns the sign-extended 64-bit result.
int64_t evalAluOp(Op O, Width W, int64_t A, int64_t B, int64_t OldRd);

} // namespace og

#endif // OG_SIM_INTERPRETER_H
