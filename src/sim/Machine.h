//===- sim/Machine.h - Architectural machine state ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural state for the functional simulator: 32 integer registers
/// (r31 hardwired to zero), a flat little-endian memory, and the output
/// stream written by the OUT instruction. The output stream is the
/// observable behavior that every program transformation must preserve —
/// the project's end-to-end correctness oracle.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SIM_MACHINE_H
#define OG_SIM_MACHINE_H

#include "isa/Registers.h"

#include <cstdint>
#include <string>
#include <vector>

namespace og {

/// Sizing knobs for the simulated machine.
struct MachineConfig {
  size_t MemBytes = 8u << 20; ///< flat memory size
};

/// Registers + memory + output stream.
class Machine {
public:
  explicit Machine(const MachineConfig &Config);

  /// Regs[RegZero] is never written (writeReg guards it) and starts zero,
  /// so reads need no special case — this sits on the hottest path of the
  /// dispatch loop.
  int64_t readReg(Reg R) const { return Regs[R]; }
  void writeReg(Reg R, int64_t V) {
    if (R != RegZero)
      Regs[R] = V;
  }

  size_t memSize() const { return Mem.size(); }

  /// Little-endian load of \p Bytes (1/2/4/8) at \p Addr. Sets the fault
  /// flag and returns 0 when out of bounds. Inline and, on little-endian
  /// hosts, a single wide load + mask — the dispatch loop's memory ops all
  /// land here. The byte loop remains as the portable fallback (and covers
  /// the last 7 bytes of memory, which a wide load would overrun).
  uint64_t loadBytes(uint64_t Addr, unsigned Bytes) {
    if (Addr + Bytes > Mem.size() || Addr + Bytes < Addr) {
      fault("load fault", Addr);
      return 0;
    }
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    if (Addr + 8 <= Mem.size()) {
      uint64_t V;
      __builtin_memcpy(&V, Mem.data() + Addr, 8);
      return Bytes == 8 ? V : V & ((uint64_t(1) << (8 * Bytes)) - 1);
    }
#endif
    uint64_t V = 0;
    for (unsigned I = 0; I < Bytes; ++I)
      V |= static_cast<uint64_t>(Mem[Addr + I]) << (8 * I);
    return V;
  }

  /// Little-endian store of the low \p Bytes of \p Value.
  void storeBytes(uint64_t Addr, unsigned Bytes, uint64_t Value) {
    if (Addr + Bytes > Mem.size() || Addr + Bytes < Addr) {
      fault("store fault", Addr);
      return;
    }
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    switch (Bytes) {
    case 1: {
      Mem[Addr] = static_cast<uint8_t>(Value);
      return;
    }
    case 2: {
      uint16_t V16 = static_cast<uint16_t>(Value);
      __builtin_memcpy(Mem.data() + Addr, &V16, 2);
      return;
    }
    case 4: {
      uint32_t V32 = static_cast<uint32_t>(Value);
      __builtin_memcpy(Mem.data() + Addr, &V32, 4);
      return;
    }
    case 8:
      __builtin_memcpy(Mem.data() + Addr, &Value, 8);
      return;
    default:
      break; // non-power-of-two widths fall through to the byte loop
    }
#endif
    for (unsigned I = 0; I < Bytes; ++I)
      Mem[Addr + I] = static_cast<uint8_t>(Value >> (8 * I));
  }

  /// Copies \p Data into memory at \p Addr (used to install the program's
  /// data segment).
  void installData(uint64_t Addr, const std::vector<uint8_t> &Data);

  /// Raw memory access for architectural checkpointing (sample/): the
  /// capture pass snapshots dirty pages out of one machine and replay
  /// splices them into another. Not for instruction semantics — loads
  /// and stores go through the bounds-checked accessors above.
  const uint8_t *memData() const { return Mem.data(); }
  uint8_t *memData() { return Mem.data(); }

  /// Whole register file, for checkpoint capture. Regs[RegZero] is
  /// always zero by the writeReg invariant.
  const int64_t *regs() const { return Regs; }

  /// Bulk register-file restore, for checkpoint replay. Keeps the
  /// RegZero invariant regardless of what \p V carries.
  void setRegs(const int64_t (&V)[NumRegs]) {
    for (unsigned R = 0; R < NumRegs; ++R)
      Regs[R] = V[R];
    Regs[RegZero] = 0;
  }

  bool faulted() const { return Faulted; }
  const std::string &faultMessage() const { return FaultMessage; }

  /// The observable output stream (appended by OUT).
  std::vector<int64_t> Output;

private:
  void fault(const char *What, uint64_t Addr);

  int64_t Regs[NumRegs] = {};
  std::vector<uint8_t> Mem;
  bool Faulted = false;
  std::string FaultMessage;
};

} // namespace og

#endif // OG_SIM_MACHINE_H
