//===- sim/Machine.h - Architectural machine state ---------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural state for the functional simulator: 32 integer registers
/// (r31 hardwired to zero), a flat little-endian memory, and the output
/// stream written by the OUT instruction. The output stream is the
/// observable behavior that every program transformation must preserve —
/// the project's end-to-end correctness oracle.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SIM_MACHINE_H
#define OG_SIM_MACHINE_H

#include "isa/Registers.h"

#include <cstdint>
#include <string>
#include <vector>

namespace og {

/// Sizing knobs for the simulated machine.
struct MachineConfig {
  size_t MemBytes = 8u << 20; ///< flat memory size
};

/// Registers + memory + output stream.
class Machine {
public:
  explicit Machine(const MachineConfig &Config);

  int64_t readReg(Reg R) const { return R == RegZero ? 0 : Regs[R]; }
  void writeReg(Reg R, int64_t V) {
    if (R != RegZero)
      Regs[R] = V;
  }

  size_t memSize() const { return Mem.size(); }

  /// Little-endian load of \p Bytes (1/2/4/8) at \p Addr. Sets the fault
  /// flag and returns 0 when out of bounds.
  uint64_t loadBytes(uint64_t Addr, unsigned Bytes);

  /// Little-endian store of the low \p Bytes of \p Value.
  void storeBytes(uint64_t Addr, unsigned Bytes, uint64_t Value);

  /// Copies \p Data into memory at \p Addr (used to install the program's
  /// data segment).
  void installData(uint64_t Addr, const std::vector<uint8_t> &Data);

  bool faulted() const { return Faulted; }
  const std::string &faultMessage() const { return FaultMessage; }

  /// The observable output stream (appended by OUT).
  std::vector<int64_t> Output;

private:
  void fault(const char *What, uint64_t Addr);

  int64_t Regs[NumRegs] = {};
  std::vector<uint8_t> Mem;
  bool Faulted = false;
  std::string FaultMessage;
};

} // namespace og

#endif // OG_SIM_MACHINE_H
