//===- sim/Superblock.cpp -------------------------------------------------==//
//
// Superblock formation: hottest-first seeding over a basic-block profile,
// straight-line growth through unconditional control flow and biased
// conditional branches (with loop-body unrolling up to the dynamic-length
// cap), and materialization into the pooled arrays the executor streams
// through. Formation is deterministic for a given (DecodedProgram,
// BlockCounts, Policy): seeds are processed in (count desc, flat index
// asc) order and every aggregate is emitted in slot order.
//
// Hottest-first seeding is what keeps hot self-loops intact: a looping
// block's own count strictly exceeds any single predecessor's (it includes
// the back edges), so the loop head forms its own superblock before a
// colder predecessor's trace could swallow one iteration of it; the
// predecessor's trace then stops at the loop head's entry and falls
// through to it.
//
//===----------------------------------------------------------------------===//

#include "sim/Superblock.h"

#include "isa/Registers.h"
#include "sim/Interpreter.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

using namespace og;

namespace {

using DInst = DecodedProgram::DInst;
using Edge = DecodedProgram::Edge;
using EdgeFault = DecodedProgram::EdgeFault;

/// Profile count of the block an edge jumps into (its first counted
/// block); 0 for faulting or count-free edges.
uint64_t edgeTargetCount(const DecodedProgram &DP, const Edge &E,
                         const std::vector<std::vector<uint64_t>> &Counts) {
  if (E.CountsBegin == E.CountsEnd)
    return 0;
  auto [F, B] = DP.countedBlocks()[E.CountsBegin];
  return Counts[F][B];
}

/// Handler token for an ALU op evalAluOpImpl handles. OG_SB_ALU_OPS lists
/// the ops in Op order with Msk skipped, two tokens (RR, RI) per op.
uint8_t aluToken(Op O, bool UseImm) {
  unsigned Idx = static_cast<unsigned>(O);
  if (O == Op::Sext || O == Op::Mov)
    --Idx; // skip over Msk's slot
  assert(Idx <= static_cast<unsigned>(Op::Mov) && "not a fused ALU op");
  return static_cast<uint8_t>(Idx * 2 + (UseImm ? 1 : 0));
}

/// Continue-predicate token: "stay on trace iff pred(ra)". When the trace
/// continues on the not-taken side the branch condition is negated.
uint8_t branchToken(Op O, bool OnTraceTaken) {
  unsigned Idx =
      static_cast<unsigned>(O) - static_cast<unsigned>(Op::Beq); // Eq..Ge
  static const uint8_t Negated[6] = {1, 0, 5, 4, 3, 2}; // Eq<->Ne Lt<->Ge...
  if (!OnTraceTaken)
    Idx = Negated[Idx];
  return static_cast<uint8_t>(SbH_BrEq + Idx);
}

/// One position of a trace being grown, before materialization.
struct TPos {
  int32_t Flat;
  uint8_t Kind;  // KElide / KInst / KBr
  uint8_t Token; // branch continue-predicate (KBr only)
  uint8_t Flags; // SInst flags (KBr only)
};
enum : uint8_t { KElide, KInst, KBr };

} // namespace

SuperblockPlan::SuperblockPlan(
    const DecodedProgram &Decoded,
    const std::vector<std::vector<uint64_t>> &Counts,
    const SuperblockPolicy &Policy)
    : DP(&Decoded), Pol(Policy) {
  const Program &P = Decoded.program();
  // Always-on shape check (not an assert): plans may be built from shared
  // profiles, and a mismatched profile must not silently misform traces.
  bool ShapeOk = Counts.size() == P.Funcs.size();
  for (const Function &F : P.Funcs)
    ShapeOk = ShapeOk && Counts[F.Id].size() == F.Blocks.size();
  if (!ShapeOk)
    throw std::invalid_argument(
        "SuperblockPlan: block-count profile shape does not match program");

  const std::vector<DInst> &Insts = Decoded.insts();
  const std::vector<uint32_t> &CountSlots = Decoded.countSlots();
  EntrySb.assign(Insts.size(), -1);

  // ---- Seeds: starts of hot blocks, plus the continuation point after
  // every hot call site (return targets enter mid-block, which no block
  // start covers). Hottest first, flat index as the deterministic
  // tie-break.
  struct Seed {
    uint64_t Cnt;
    int32_t Flat;
  };
  std::vector<Seed> Seeds;
  for (size_t I = 0; I < Insts.size(); ++I) {
    const DInst &DI = Insts[I];
    uint64_t C = Counts[DI.Func][DI.Block];
    if (C < Pol.MinBlockCount)
      continue;
    if (DI.Index == 0)
      Seeds.push_back({C, static_cast<int32_t>(I)});
    if (DI.Opc == Op::Jsr && DI.Seq.Target >= 0)
      Seeds.push_back({C, DI.Seq.Target});
  }
  std::sort(Seeds.begin(), Seeds.end(), [](const Seed &A, const Seed &B) {
    if (A.Cnt != B.Cnt)
      return A.Cnt > B.Cnt;
    return A.Flat < B.Flat;
  });

  std::vector<uint8_t> Claimed(Insts.size(), 0);
  std::vector<TPos> Walk;
  std::vector<const Edge *> Internal; // edge after position i, at index i

  for (const Seed &S : Seeds) {
    if (EntrySb[S.Flat] >= 0 || Claimed[S.Flat])
      continue;
    Walk.clear();
    Internal.clear();
    const Edge *FinalEdge = nullptr;
    const Edge *Pending = nullptr; // edge that led to Cur
    int32_t Cur = S.Flat;
    unsigned BlockHops = 0;
    size_t CopyLen = 0; // positions per loop iteration (set at first return)

    while (true) {
      // Stop *before* this position when the trace reaches another
      // superblock's entry (fall through and let that one take over) or
      // hits a cap. A return to the trace's own entry instead *unrolls*:
      // growth continues through whole copies of the loop body while they
      // fit, so a pass covers many iterations and the per-pass epilogue
      // amortizes. The final edge then is the back edge itself, which
      // re-enters this superblock immediately.
      if (Cur == S.Flat && !Walk.empty()) {
        if (CopyLen == 0)
          CopyLen = Walk.size();
        if (Walk.size() + CopyLen > Pol.MaxDynLen) {
          FinalEdge = Pending;
          break;
        }
      } else if (Cur != S.Flat && EntrySb[Cur] >= 0) {
        FinalEdge = Pending;
        break;
      }
      if (Walk.size() >= Pol.MaxDynLen || BlockHops >= Pol.MaxBlocks) {
        FinalEdge = Pending;
        break;
      }
      const DInst &DI = Insts[Cur];
      // Calls, returns, and halts bound every trace.
      if (DI.Opc == Op::Jsr || DI.Opc == Op::Ret || DI.Opc == Op::Halt) {
        FinalEdge = Pending;
        break;
      }

      if (Pending)
        Internal.push_back(Pending);

      TPos Position{Cur, KInst, 0, 0};
      const Edge *Out = nullptr;
      bool CloseAfter = false;
      switch (DI.Opc) {
      case Op::Br:
        Position.Kind = KElide; // deterministic jump: no work at run time
        Out = &DI.Taken;
        CloseAfter = DI.Taken.Fault != EdgeFault::None || DI.Taken.Target < 0;
        break;
      case Op::Nop:
        Position.Kind = KElide;
        Out = &DI.Seq;
        CloseAfter = DI.Seq.Fault != EdgeFault::None || DI.Seq.Target < 0;
        break;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Ble:
      case Op::Bgt:
      case Op::Bge: {
        uint64_t CntT = edgeTargetCount(Decoded, DI.Taken, Counts);
        uint64_t CntF = edgeTargetCount(Decoded, DI.Seq, Counts);
        bool DirTaken = CntT >= CntF;
        const Edge &Dir = DirTaken ? DI.Taken : DI.Seq;
        uint64_t CntD = DirTaken ? CntT : CntF;
        uint64_t Sum = CntT + CntF;
        bool Extend = Sum > 0 &&
                      static_cast<double>(CntD) >=
                          Pol.SuccessorBias * static_cast<double>(Sum) &&
                      Dir.Fault == EdgeFault::None && Dir.Target >= 0;
        Position.Kind = KBr;
        Position.Token = branchToken(DI.Opc, DirTaken);
        Position.Flags = DirTaken ? 0 : SbFlagOffTraceTaken;
        Out = &Dir;
        if (!Extend) {
          Position.Flags |= SbFlagLast;
          CloseAfter = true;
        }
        break;
      }
      default:
        // Straight-line (ALU / Ldi / Msk / Ld / St / Out).
        Out = &DI.Seq;
        CloseAfter = DI.Seq.Fault != EdgeFault::None || DI.Seq.Target < 0;
        break;
      }

      Walk.push_back(Position);
      if (Out->CountsBegin != Out->CountsEnd)
        ++BlockHops;
      if (CloseAfter) {
        FinalEdge = Out;
        break;
      }
      Pending = Out;
      Cur = Out->Target;
    }

    if (!FinalEdge || Walk.size() < Pol.MinDynLen)
      continue;

    // ---- Materialize into the pools.
    Superblock SB;
    SB.EntryFlat = S.Flat;
    SB.DynLen = static_cast<uint32_t>(Walk.size());
    SB.FinalEdge = FinalEdge;
    SB.SBegin = static_cast<uint32_t>(Pool.size());
    SB.RawBegin = static_cast<uint32_t>(RawSlots.size());
    SB.CwBegin = static_cast<uint32_t>(CwSeq.size());

    uint32_t CwAgg[18 * 4] = {};
    for (size_t I = 0; I < Walk.size(); ++I) {
      const TPos &Position = Walk[I];
      const DInst &DI = Insts[Position.Flat];
      uint8_t CwSlot = static_cast<uint8_t>(DI.ClassIdx * 4 + DI.WidthIdx);
      CwSeq.push_back(CwSlot);
      ++CwAgg[CwSlot];

      if (Position.Kind != KElide) {
        SInst SI;
        SI.OrigFlat = Position.Flat;
        SI.SeqPos = static_cast<uint32_t>(I);
        SI.SlotsBefore = static_cast<uint32_t>(RawSlots.size()) - SB.RawBegin;
        SI.WidthBytes = DI.WidthBytes;
        SI.Rd = DI.Rd;
        SI.Ra = DI.ReadsRa ? DI.Ra : RegZero;
        SI.Rb = (!DI.UseImm && DI.ReadsRb) ? DI.Rb : RegZero;
        SI.Imm = DI.Imm;
        SI.Flags = Position.Flags;
        switch (DI.Opc) {
        case Op::Ldi:
          SI.H = SbH_Ldi;
          SI.Imm = truncSignExtend(DI.Imm, DI.WidthBytes); // pre-computed
          break;
        case Op::Msk:
          SI.H = SbH_Msk;
          break;
        case Op::Ld:
          SI.H = DI.W == Width::W ? SbH_LdW : SbH_Ld;
          break;
        case Op::St:
          SI.H = SbH_St;
          SI.Rb = DI.Rb; // data operand, read regardless of UseImm
          break;
        case Op::Out:
          SI.H = SbH_Out;
          break;
        default:
          SI.H = Position.Kind == KBr ? Position.Token
                                      : aluToken(DI.Opc, DI.UseImm);
          break;
        }
        Pool.push_back(SI);
      }

      if (I + 1 < Walk.size()) {
        const Edge *E = Internal[I];
        for (uint32_t Ci = E->CountsBegin; Ci != E->CountsEnd; ++Ci)
          RawSlots.push_back(CountSlots[Ci]);
      }
    }

    // Terminator: reached only when the last position was not a
    // pass-ending branch (those jump straight to the epilogue).
    SInst End;
    End.H = SbH_End;
    End.SeqPos = static_cast<uint32_t>(Walk.size());
    End.SlotsBefore = static_cast<uint32_t>(RawSlots.size()) - SB.RawBegin;
    Pool.push_back(End);

    SB.CwdBegin = static_cast<uint32_t>(CwDeltas.size());
    for (unsigned Slot = 0; Slot < 18 * 4; ++Slot)
      if (CwAgg[Slot])
        CwDeltas.push_back({static_cast<uint8_t>(Slot), CwAgg[Slot]});
    SB.CwdEnd = static_cast<uint32_t>(CwDeltas.size());

    SB.PassBegin = static_cast<uint32_t>(PassSlots.size());
    {
      std::vector<uint32_t> Tmp(RawSlots.begin() + SB.RawBegin,
                                RawSlots.end());
      std::sort(Tmp.begin(), Tmp.end());
      for (size_t I = 0; I < Tmp.size();) {
        size_t J = I;
        while (J < Tmp.size() && Tmp[J] == Tmp[I])
          ++J;
        PassSlots.push_back({Tmp[I], static_cast<uint32_t>(J - I)});
        I = J;
      }
    }
    SB.PassEnd = static_cast<uint32_t>(PassSlots.size());

    EntrySb[S.Flat] = static_cast<int32_t>(Sbs.size());
    for (const TPos &Position : Walk)
      Claimed[Position.Flat] = 1;
    Sbs.push_back(SB);
  }
}

SuperblockPlan og::buildSelfProfiledPlan(const DecodedProgram &DP,
                                         const RunOptions &Opts,
                                         uint64_t ProfileFuel,
                                         const SuperblockPolicy &Policy) {
  RunOptions ProfOpts = Opts;
  ProfOpts.Sink = nullptr;
  ProfOpts.Superblocks = nullptr;
  ProfOpts.Fuel = std::min(Opts.Fuel, ProfileFuel);
  RunResult R = runProgram(DP, ProfOpts);
  return SuperblockPlan(DP, R.Stats.BlockCounts, Policy);
}
