//===- analysis/Cfg.cpp ---------------------------------------------------==//

#include "analysis/Cfg.h"

#include <cassert>

using namespace og;

Cfg::Cfg(const Function &F) : F(&F) {
  size_t N = F.Blocks.size();
  Succs.resize(N);
  Preds.resize(N);
  RpoIndex.assign(N, SIZE_MAX);

  std::vector<int32_t> Tmp;
  for (size_t BI = 0; BI < N; ++BI) {
    F.Blocks[BI].successors(Tmp);
    Succs[BI] = Tmp;
    for (int32_t S : Tmp)
      Preds[S].push_back(static_cast<int32_t>(BI));
  }

  // Iterative postorder DFS from the entry, then reverse.
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<int32_t, size_t>> Stack;
  std::vector<int32_t> Post;
  Stack.emplace_back(F.EntryBlock, 0);
  State[F.EntryBlock] = 1;
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    if (NextSucc < Succs[BB].size()) {
      int32_t S = Succs[BB][NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
    } else {
      State[BB] = 2;
      Post.push_back(BB);
      Stack.pop_back();
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
}
